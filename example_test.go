package dae_test

import (
	"fmt"

	"dae"
)

// ExampleCompile shows the minimal compile-and-generate flow: the paper's
// Listing 1 kernel becomes a task plus its compiler-generated access phase.
func ExampleCompile() {
	src := `
task lu(float A[N][N], int N) {
	for (int i = 0; i < N; i++) {
		for (int j = i+1; j < N; j++) {
			A[j][i] /= A[i][i];
			for (int k = i+1; k < N; k++) {
				A[j][k] -= A[j][i] * A[i][k];
			}
		}
	}
}
`
	mod, err := dae.Compile(src, "demo")
	if err != nil {
		panic(err)
	}
	opts := dae.DefaultOptions()
	opts.ParamHints = map[string]int64{"N": 16}
	results, err := dae.GenerateAccess(mod, opts)
	if err != nil {
		panic(err)
	}
	r := results["lu"]
	fmt.Println("strategy:", r.Strategy)
	fmt.Println("affine loops:", r.AffineLoops, "of", r.TotalLoops)
	fmt.Println("profitability: NConvUn", r.NConvUn, "NOrig", r.NOrig)
	// Output:
	// strategy: affine
	// affine loops: 3 of 3
	// profitability: NConvUn 256 NOrig 256
}

// ExampleEvaluate runs a small workload coupled and decoupled and compares
// the energy-delay product under the paper's policies.
func ExampleEvaluate() {
	src := `
task scale(float A[n], int n, int lo, int hi) {
	for (int i = lo; i < hi; i++) {
		A[i] = A[i] * 1.01;
	}
}
`
	mod, _ := dae.Compile(src, "demo")
	opts := dae.DefaultOptions()
	opts.ParamHints = map[string]int64{"n": 32768, "lo": 0, "hi": 1024}
	results, _ := dae.GenerateAccess(mod, opts)

	h := dae.NewHeap()
	a := h.AllocFloat("A", 32768)
	var tasks []dae.Task
	for lo := 0; lo < 32768; lo += 1024 {
		tasks = append(tasks, dae.Task{Name: "scale", Args: []dae.Value{
			dae.Ptr(a), dae.Int(32768), dae.Int(int64(lo)), dae.Int(int64(lo + 1024)),
		}})
	}
	w := &dae.Workload{
		Name:    "scale",
		Module:  mod,
		Access:  map[string]*dae.Func{"scale": results["scale"].Access},
		Batches: [][]dae.Task{tasks},
	}

	cfg := dae.DefaultTraceConfig()
	trDAE, _ := dae.Run(w, cfg)
	cfg.Decoupled = false
	trCAE, _ := dae.Run(w, cfg)

	m := dae.DefaultMachine()
	base := dae.Evaluate(trCAE, m, dae.PolicyFixed)
	opt := dae.Evaluate(trDAE, m, dae.PolicyOptimalEDP)
	fmt.Printf("DAE saves energy: %v\n", opt.Energy < base.Energy)
	fmt.Printf("DAE improves EDP: %v\n", opt.EDP < base.EDP)
	// Output:
	// DAE saves energy: true
	// DAE improves EDP: true
}
