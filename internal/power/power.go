// Package power implements the paper's calibrated power model (§3.2): the
// processor's effective capacitance is a linear function of IPC,
//
//	Ceff = 0.19·IPC + 1.64   [nF]
//	Pdyn = Ceff · f · V²     [W, with f in GHz]
//
// and static power is a linear function of V·f per active core. Energy is
// Time·P and the paper's headline metric is EDP = Time²·P.
package power

import "dae/internal/dvfs"

// Model holds the calibrated coefficients.
type Model struct {
	// CeffSlope and CeffBase define Ceff(IPC) in nF (paper: 0.19, 1.64).
	CeffSlope float64
	CeffBase  float64
	// StaticBase is the per-core static power floor in W.
	StaticBase float64
	// StaticPerVF is the per-core static coefficient in W per (V·GHz).
	StaticPerVF float64
	// UncoreStatic is the package-level constant power in W.
	UncoreStatic float64
}

// Default returns the Sandybridge-calibrated model of Koukos et al. [14]
// with representative static coefficients.
func Default() Model {
	return Model{
		CeffSlope:    0.19,
		CeffBase:     1.64,
		StaticBase:   0.4,
		StaticPerVF:  0.3,
		UncoreStatic: 3.0,
	}
}

// Ceff returns the effective capacitance in nF at the given IPC.
func (m Model) Ceff(ipc float64) float64 { return m.CeffSlope*ipc + m.CeffBase }

// Dynamic returns one core's dynamic power in W at operating point l and
// the given IPC.
func (m Model) Dynamic(ipc float64, l dvfs.Level) float64 {
	return m.Ceff(ipc) * l.Freq * l.Volt * l.Volt
}

// StaticCore returns one active core's static power in W at point l.
func (m Model) StaticCore(l dvfs.Level) float64 {
	return m.StaticBase + m.StaticPerVF*l.Volt*l.Freq
}

// CorePower returns one active core's total power at point l and IPC.
func (m Model) CorePower(ipc float64, l dvfs.Level) float64 {
	return m.Dynamic(ipc, l) + m.StaticCore(l)
}

// IdleCorePower returns the power of a core that executes nothing (e.g.
// during a DVFS transition, §6.1: "we count only the static energy").
func (m Model) IdleCorePower(l dvfs.Level) float64 { return m.StaticCore(l) }

// EnergyBound converts a static worst-case cycle bound into a worst-case
// core energy bound in joules at operating point l: the cycles take
// cycles/(f·1e9) seconds, charged at the core's full power with the
// pipeline's sustained IPC (the worst case for dynamic power under the
// linear Ceff model — observed IPC can only be lower). This is the static
// mirror of the simulator's per-phase Energy(T, CorePower) charge.
func (m Model) EnergyBound(cycles, issueWidth float64, l dvfs.Level) float64 {
	t := cycles / (l.Freq * 1e9)
	return Energy(t, m.CorePower(issueWidth, l))
}

// Energy returns E = T·P in joules.
func Energy(timeSec, watts float64) float64 { return timeSec * watts }

// EDP returns the energy-delay product T²·P = E·T in J·s.
func EDP(timeSec, energyJ float64) float64 { return timeSec * energyJ }
