package power

import (
	"math"
	"testing"

	"dae/internal/dvfs"
)

func TestCeffMatchesPaper(t *testing.T) {
	m := Default()
	if got := m.Ceff(1.0); math.Abs(got-1.83) > 1e-9 {
		t.Errorf("Ceff(1) = %g, want 1.83 (0.19·IPC + 1.64)", got)
	}
	if got := m.Ceff(0); got != 1.64 {
		t.Errorf("Ceff(0) = %g, want 1.64", got)
	}
}

func TestDynamicPowerQuadraticInVoltage(t *testing.T) {
	m := Default()
	lo := dvfs.Level{Freq: 2.0, Volt: 1.0}
	hi := dvfs.Level{Freq: 2.0, Volt: 1.2}
	ratio := m.Dynamic(1, hi) / m.Dynamic(1, lo)
	if math.Abs(ratio-1.44) > 1e-9 {
		t.Errorf("V² scaling ratio = %g, want 1.44", ratio)
	}
}

func TestPowerMonotonicInFrequency(t *testing.T) {
	m := Default()
	tab := dvfs.Default()
	prev := 0.0
	for _, l := range tab.Levels {
		p := m.CorePower(1.5, l)
		if p <= prev {
			t.Errorf("power at %g GHz = %g W not increasing", l.Freq, p)
		}
		prev = p
	}
}

func TestPlausibleAbsolutePower(t *testing.T) {
	m := Default()
	fmax := dvfs.Default().Fmax()
	// 4 cores at IPC 2 plus uncore: a quad-core Sandybridge under load
	// draws tens of watts.
	total := 4*m.CorePower(2.0, fmax) + m.UncoreStatic
	if total < 25 || total > 120 {
		t.Errorf("4-core package power = %.1f W, want a plausible 25–120 W", total)
	}
	// At fmin with memory-bound IPC the core draw collapses.
	fmin := dvfs.Default().Fmin()
	low := m.CorePower(0.3, fmin)
	if low > 5 {
		t.Errorf("memory-bound core at fmin = %.2f W, want < 5 W", low)
	}
}

func TestIdlePowerIsStaticOnly(t *testing.T) {
	m := Default()
	l := dvfs.Default().Fmax()
	if m.IdleCorePower(l) != m.StaticCore(l) {
		t.Error("idle power should equal static power")
	}
	if m.IdleCorePower(l) >= m.CorePower(1.0, l) {
		t.Error("idle power should be below active power")
	}
}

func TestEnergyAndEDP(t *testing.T) {
	if Energy(2.0, 10.0) != 20.0 {
		t.Error("Energy = T·P")
	}
	if EDP(2.0, 20.0) != 40.0 {
		t.Error("EDP = T·E = T²·P")
	}
	// EDP favours keeping performance: at constant power, doubling time
	// quadruples EDP (T²·P), so a 2× slowdown needs >4× power savings.
	fast := EDP(1.0, Energy(1.0, 20.0))
	slow := EDP(2.0, Energy(2.0, 20.0))
	if slow != 4*fast {
		t.Errorf("EDP at 2× time = %g, want 4× of %g", slow, fast)
	}
	slowQuarterPower := EDP(2.0, Energy(2.0, 4.9))
	if slowQuarterPower >= fast {
		t.Error("more-than-4× power savings should win EDP at 2× time")
	}
}

func TestDVFSTableShape(t *testing.T) {
	tab := dvfs.Default()
	if tab.Fmin().Freq != 1.6 || tab.Fmax().Freq != 3.4 {
		t.Errorf("range = [%g, %g], want [1.6, 3.4]", tab.Fmin().Freq, tab.Fmax().Freq)
	}
	if len(tab.Levels) != 6 {
		t.Errorf("levels = %d, want 6 (400 MHz steps)", len(tab.Levels))
	}
	for i := 1; i < len(tab.Levels); i++ {
		if tab.Levels[i].Freq <= tab.Levels[i-1].Freq || tab.Levels[i].Volt <= tab.Levels[i-1].Volt {
			t.Error("levels must be ascending in f and V")
		}
	}
	if tab.TransitionLatency != 500e-9 {
		t.Error("default transition latency should be 500 ns")
	}
	if dvfs.Ideal().TransitionLatency != 0 {
		t.Error("ideal transitions should be instantaneous")
	}
	if _, err := tab.ByFreq(2.4); err != nil {
		t.Error("ByFreq(2.4) should exist")
	}
	if _, err := tab.ByFreq(5.0); err == nil {
		t.Error("ByFreq(5.0) should fail")
	}
}

func TestEnergyBoundMirrorsPhaseCharge(t *testing.T) {
	m := Default()
	l := dvfs.Level{Freq: 2.0, Volt: 1.0}
	const cycles, width = 2e9, 4.0
	// 2e9 cycles at 2 GHz is one second at the core's full-IPC power.
	want := Energy(1.0, m.CorePower(width, l))
	if got := m.EnergyBound(cycles, width, l); math.Abs(got-want) > 1e-12 {
		t.Errorf("EnergyBound = %g, want %g", got, want)
	}
	// The bound dominates any observed-IPC charge of the same cycle count.
	if got, obs := m.EnergyBound(cycles, width, l), Energy(1.0, m.CorePower(1.3, l)); got < obs {
		t.Errorf("bound %g below observed-IPC energy %g", got, obs)
	}
}
