// Package ir defines a small SSA intermediate representation in the style of
// LLVM IR, sufficient to host the decoupled access-execute (DAE)
// transformation described in Jimborean et al., CGO 2014.
//
// A Module holds Funcs; a Func holds Blocks of Instrs. Scalar locals are
// introduced as Allocas by the front end and promoted to SSA registers by the
// mem2reg pass (internal/passes). Array accesses are expressed with GEP
// instructions that carry explicit (possibly symbolic) dimension sizes, which
// is what the scalar-evolution and polyhedral analyses consume.
package ir

import "fmt"

// TypeKind enumerates the primitive type kinds of the IR.
type TypeKind uint8

// Type kinds.
const (
	VoidKind TypeKind = iota
	BoolKind
	IntKind   // 64-bit signed integer
	FloatKind // 64-bit IEEE float
	PtrKind   // pointer to Elem
)

// Type describes an IR type. Types are interned: compare with ==.
type Type struct {
	K    TypeKind
	Elem *Type // element type for PtrKind, nil otherwise
}

// Interned singleton types.
var (
	VoidT  = &Type{K: VoidKind}
	BoolT  = &Type{K: BoolKind}
	IntT   = &Type{K: IntKind}
	FloatT = &Type{K: FloatKind}

	ptrToInt   = &Type{K: PtrKind, Elem: IntT}
	ptrToFloat = &Type{K: PtrKind, Elem: FloatT}
)

// PtrTo returns the (interned) pointer type to elem. Only pointers to Int and
// Float are supported; the IR has no aggregates or pointer-to-pointer.
func PtrTo(elem *Type) *Type {
	switch elem {
	case IntT:
		return ptrToInt
	case FloatT:
		return ptrToFloat
	}
	panic(fmt.Sprintf("ir: unsupported pointer element type %v", elem))
}

// IsPtr reports whether t is a pointer type.
func (t *Type) IsPtr() bool { return t.K == PtrKind }

// IsInt reports whether t is the 64-bit integer type.
func (t *Type) IsInt() bool { return t.K == IntKind }

// IsFloat reports whether t is the 64-bit float type.
func (t *Type) IsFloat() bool { return t.K == FloatKind }

// IsBool reports whether t is the boolean type.
func (t *Type) IsBool() bool { return t.K == BoolKind }

// IsVoid reports whether t is the void type.
func (t *Type) IsVoid() bool { return t.K == VoidKind }

// String returns the textual form of the type.
func (t *Type) String() string {
	switch t.K {
	case VoidKind:
		return "void"
	case BoolKind:
		return "i1"
	case IntKind:
		return "i64"
	case FloatKind:
		return "f64"
	case PtrKind:
		return t.Elem.String() + "*"
	}
	return "?"
}
