package ir

import (
	"strings"
	"testing"
)

// buildCountLoop builds:
//
//	func i64 @sum(i64 %n):
//	  entry: br loop
//	  loop:  i = phi [0,entry],[i1,loop]; s = phi [0,entry],[s1,loop]
//	         s1 = add s, i; i1 = add i, 1; c = lt i1, n; br c, loop, exit
//	  exit:  ret s1
func buildCountLoop(t *testing.T) (*Func, *Block, *Block, *Block) {
	t.Helper()
	n := &Param{Nam: "n", Typ: IntT}
	f := NewFunc("sum", IntT, []*Param{n})
	bd := NewBuilder(f)
	entry := bd.NewBlock("entry")
	loop := bd.NewBlock("loop")
	exit := bd.NewBlock("exit")

	bd.SetBlock(entry)
	bd.Br(loop)

	bd.SetBlock(loop)
	i := bd.Phi(IntT, "i")
	s := bd.Phi(IntT, "s")
	s1 := bd.Bin(IAdd, s, i)
	i1 := bd.Bin(IAdd, i, CI(1))
	c := bd.Cmp(LT, i1, n)
	bd.CondBr(c, loop, exit)
	i.AddIncoming(CI(0), entry)
	i.AddIncoming(i1, loop)
	s.AddIncoming(CI(0), entry)
	s.AddIncoming(s1, loop)

	bd.SetBlock(exit)
	bd.Ret(s1)
	return f, entry, loop, exit
}

func TestVerifyCountLoop(t *testing.T) {
	f, _, _, _ := buildCountLoop(t)
	if err := f.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, f)
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	f := NewFunc("f", VoidT, nil)
	b := f.NewBlock("entry")
	b.Append(NewBin(IAdd, CI(1), CI(2)))
	if err := f.Verify(); err == nil {
		t.Fatal("expected error for missing terminator")
	}
}

func TestVerifyCatchesTypeMismatch(t *testing.T) {
	f := NewFunc("f", VoidT, nil)
	bd := NewBuilder(f)
	bd.SetBlock(bd.NewBlock("entry"))
	bd.Bin(FAdd, CI(1), CI(2)) // int operands to float op
	bd.Ret(nil)
	if err := f.Verify(); err == nil {
		t.Fatal("expected error for fadd of integers")
	}
}

func TestVerifyCatchesUseBeforeDef(t *testing.T) {
	f := NewFunc("f", VoidT, nil)
	bd := NewBuilder(f)
	b1 := bd.NewBlock("entry")
	b2 := bd.NewBlock("next")

	// Define v in b2 but use it in b1.
	v := NewBin(IAdd, CI(1), CI(2))
	use := NewBin(IMul, v, CI(3))

	b1.Append(use)
	b1.Append(NewBr(b2))
	b2.Append(v)
	b2.Append(NewRet(nil))

	if err := f.Verify(); err == nil {
		t.Fatalf("expected dominance error\n%s", f)
	}
}

func TestVerifyCatchesPhiPredMismatch(t *testing.T) {
	f, entry, loop, _ := buildCountLoop(t)
	// Drop one incoming edge from the first phi.
	loop.Phis()[0].RemoveIncoming(entry)
	if err := f.Verify(); err == nil {
		t.Fatal("expected error for phi/pred mismatch")
	}
}

func TestDominators(t *testing.T) {
	f, entry, loop, exit := buildCountLoop(t)
	dt := NewDomTree(f)
	if dt.IDom(loop) != entry {
		t.Errorf("idom(loop) = %v, want entry", dt.IDom(loop).Name)
	}
	if dt.IDom(exit) != loop {
		t.Errorf("idom(exit) = %v, want loop", dt.IDom(exit).Name)
	}
	if !dt.Dominates(entry, exit) {
		t.Error("entry should dominate exit")
	}
	if dt.Dominates(exit, loop) {
		t.Error("exit should not dominate loop")
	}
}

func TestDominanceFrontier(t *testing.T) {
	// Diamond: entry -> a, b -> join
	f := NewFunc("f", VoidT, []*Param{{Nam: "c", Typ: BoolT}})
	bd := NewBuilder(f)
	entry := bd.NewBlock("entry")
	a := bd.NewBlock("a")
	b := bd.NewBlock("b")
	join := bd.NewBlock("join")
	bd.SetBlock(entry)
	bd.CondBr(f.Params[0], a, b)
	bd.SetBlock(a)
	bd.Br(join)
	bd.SetBlock(b)
	bd.Br(join)
	bd.SetBlock(join)
	bd.Ret(nil)

	dt := NewDomTree(f)
	df := dt.Frontiers()
	if len(df[a]) != 1 || df[a][0] != join {
		t.Errorf("DF(a) = %v, want [join]", names(df[a]))
	}
	if len(df[b]) != 1 || df[b][0] != join {
		t.Errorf("DF(b) = %v, want [join]", names(df[b]))
	}
	if len(df[entry]) != 0 {
		t.Errorf("DF(entry) = %v, want empty", names(df[entry]))
	}
}

func names(bs []*Block) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name
	}
	return out
}

func TestFindLoops(t *testing.T) {
	f, _, loop, _ := buildCountLoop(t)
	dt := NewDomTree(f)
	li := FindLoops(f, dt)
	if len(li.Top) != 1 {
		t.Fatalf("found %d top loops, want 1", len(li.Top))
	}
	l := li.Top[0]
	if l.Header != loop {
		t.Errorf("loop header = %s, want loop", l.Header.Name)
	}
	if l.Depth() != 1 {
		t.Errorf("depth = %d, want 1", l.Depth())
	}
	if ph := l.Preheader(); ph == nil || ph.Name != "entry" {
		t.Errorf("preheader = %v, want entry", ph)
	}
	if len(l.Exits()) != 1 || l.Exits()[0].Name != "exit" {
		t.Errorf("exits = %v", names(l.Exits()))
	}
}

func TestNestedLoops(t *testing.T) {
	// for i { for j { } }
	f := NewFunc("nest", VoidT, []*Param{{Nam: "n", Typ: IntT}})
	n := f.Params[0]
	bd := NewBuilder(f)
	entry := bd.NewBlock("entry")
	oh := bd.NewBlock("outer")
	ih := bd.NewBlock("inner")
	ol := bd.NewBlock("outer.latch")
	exit := bd.NewBlock("exit")

	bd.SetBlock(entry)
	bd.Br(oh)

	bd.SetBlock(oh)
	i := bd.Phi(IntT, "i")
	bd.Br(ih)

	bd.SetBlock(ih)
	j := bd.Phi(IntT, "j")
	j1 := bd.Bin(IAdd, j, CI(1))
	cj := bd.Cmp(LT, j1, n)
	bd.CondBr(cj, ih, ol)
	j.AddIncoming(CI(0), oh)
	j.AddIncoming(j1, ih)

	bd.SetBlock(ol)
	i1 := bd.Bin(IAdd, i, CI(1))
	ci := bd.Cmp(LT, i1, n)
	bd.CondBr(ci, oh, exit)
	i.AddIncoming(CI(0), entry)
	i.AddIncoming(i1, ol)

	bd.SetBlock(exit)
	bd.Ret(nil)

	if err := f.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, f)
	}
	dt := NewDomTree(f)
	li := FindLoops(f, dt)
	if len(li.Top) != 1 {
		t.Fatalf("top loops = %d, want 1", len(li.Top))
	}
	outer := li.Top[0]
	if len(outer.Children) != 1 {
		t.Fatalf("outer children = %d, want 1", len(outer.Children))
	}
	inner := outer.Children[0]
	if inner.Header != ih {
		t.Errorf("inner header = %s", inner.Header.Name)
	}
	if inner.Depth() != 2 {
		t.Errorf("inner depth = %d, want 2", inner.Depth())
	}
	if li.Of[ih] != inner {
		t.Error("Of[inner header] should be inner loop")
	}
	if li.Of[oh] != outer {
		t.Error("Of[outer header] should be outer loop")
	}
}

func TestCloneFunc(t *testing.T) {
	f, _, _, _ := buildCountLoop(t)
	g := CloneFunc(f, "sum_clone")
	if err := g.Verify(); err != nil {
		t.Fatalf("clone verify: %v\n%s", err, g)
	}
	if g.Name != "sum_clone" {
		t.Errorf("clone name = %s", g.Name)
	}
	if g.NumInstrs() != f.NumInstrs() {
		t.Errorf("clone instrs = %d, want %d", g.NumInstrs(), f.NumInstrs())
	}
	// No instruction sharing.
	orig := make(map[Instr]bool)
	f.Instrs(func(in Instr) { orig[in] = true })
	g.Instrs(func(in Instr) {
		if orig[in] {
			t.Fatalf("clone shares instruction %s", FormatInstr(in))
		}
	})
	// Clone operands must not reference original instructions or params.
	origParams := map[Value]bool{}
	for _, p := range f.Params {
		origParams[p] = true
	}
	g.Instrs(func(in Instr) {
		for _, op := range in.Operands() {
			if orig[toInstr(op)] || origParams[op] {
				t.Fatalf("clone references original value in %s", FormatInstr(in))
			}
		}
	})
}

func toInstr(v Value) Instr {
	in, _ := v.(Instr)
	return in
}

func TestReplaceAllUses(t *testing.T) {
	f, _, loop, _ := buildCountLoop(t)
	phis := loop.Phis()
	iPhi := phis[0]
	f.ReplaceAllUses(iPhi, CI(7))
	found := false
	f.Instrs(func(in Instr) {
		for _, op := range in.Operands() {
			if op == iPhi {
				found = true
			}
		}
	})
	if found {
		t.Error("uses of phi remain after ReplaceAllUses")
	}
}

func TestRemoveUnreachable(t *testing.T) {
	f, _, _, _ := buildCountLoop(t)
	dead := f.NewBlock("dead")
	bd := NewBuilder(f)
	bd.SetBlock(dead)
	bd.Ret(CI(0))
	if n := f.RemoveUnreachable(); n != 1 {
		t.Errorf("removed %d blocks, want 1", n)
	}
	if len(f.Blocks) != 3 {
		t.Errorf("blocks = %d, want 3", len(f.Blocks))
	}
}

func TestPrinting(t *testing.T) {
	f, _, _, _ := buildCountLoop(t)
	s := f.String()
	for _, want := range []string{"task", "func i64 @sum(i64 %n)", "phi", "add", "icmp lt", "ret"} {
		if want == "task" {
			continue
		}
		if !strings.Contains(s, want) {
			t.Errorf("printed function missing %q:\n%s", want, s)
		}
	}
	m := NewModule("m")
	m.AddFunc(f)
	if !strings.Contains(m.String(), "; module m") {
		t.Error("module header missing")
	}
}

func TestModuleFuncLookup(t *testing.T) {
	m := NewModule("m")
	f, _, _, _ := buildCountLoop(t)
	f.IsTask = true
	m.AddFunc(f)
	if m.Func("sum") != f {
		t.Error("Func lookup failed")
	}
	if m.Func("nope") != nil {
		t.Error("Func lookup of missing name should be nil")
	}
	if len(m.Tasks()) != 1 {
		t.Error("Tasks should return the task")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddFunc should panic")
		}
	}()
	m.AddFunc(CloneFunc(f, "sum"))
}

func TestGEPOperands(t *testing.T) {
	a := &Param{Nam: "A", Typ: PtrTo(FloatT)}
	n := &Param{Nam: "n", Typ: IntT}
	g := NewGEP(a, []Value{n, n}, []Value{CI(1), CI(2)})
	ops := g.Operands()
	if len(ops) != 5 {
		t.Fatalf("gep operands = %d, want 5", len(ops))
	}
	g.SetOperand(0, a)
	g.SetOperand(1, CI(9))
	g.SetOperand(3, CI(8))
	if v, _ := ConstIntValue(g.Dims[0]); v != 9 {
		t.Error("SetOperand(1) should set Dims[0]")
	}
	if v, _ := ConstIntValue(g.Idx[0]); v != 8 {
		t.Error("SetOperand(3) should set Idx[0]")
	}
}

func TestUseCounts(t *testing.T) {
	f, _, loop, _ := buildCountLoop(t)
	uses := f.UseCounts()
	s1 := loop.Instrs[2] // s1 = add s, i
	// s1 used by: s phi incoming, ret.
	if uses[s1] != 2 {
		t.Errorf("uses(s1) = %d, want 2", uses[s1])
	}
}

func TestConstHelpers(t *testing.T) {
	if v, ok := ConstIntValue(CI(5)); !ok || v != 5 {
		t.Error("ConstIntValue")
	}
	if v, ok := ConstFloatValue(CF(2.5)); !ok || v != 2.5 {
		t.Error("ConstFloatValue")
	}
	if v, ok := ConstBoolValue(CB(true)); !ok || !v {
		t.Error("ConstBoolValue")
	}
	if !SameConst(CI(3), CI(3)) || SameConst(CI(3), CI(4)) || SameConst(CI(3), CF(3)) {
		t.Error("SameConst")
	}
	if !IsConst(CI(0)) || IsConst(&Param{Nam: "x", Typ: IntT}) {
		t.Error("IsConst")
	}
}

func TestTypeString(t *testing.T) {
	cases := map[*Type]string{
		VoidT: "void", BoolT: "i1", IntT: "i64", FloatT: "f64",
		PtrTo(IntT): "i64*", PtrTo(FloatT): "f64*",
	}
	for ty, want := range cases {
		if ty.String() != want {
			t.Errorf("%v.String() = %q, want %q", ty.K, ty.String(), want)
		}
	}
	if PtrTo(IntT) != PtrTo(IntT) {
		t.Error("pointer types should be interned")
	}
}

func TestInsertBeforeAndRemove(t *testing.T) {
	f := NewFunc("f", VoidT, nil)
	bd := NewBuilder(f)
	b := bd.NewBlock("entry")
	bd.SetBlock(b)
	x := bd.Bin(IAdd, CI(1), CI(2))
	bd.Ret(nil)

	y := NewBin(IMul, CI(3), CI(4))
	b.InsertBefore(y, x.(Instr))
	if b.Instrs[0] != y {
		t.Error("InsertBefore should place y first")
	}
	b.Remove(y)
	if len(b.Instrs) != 2 {
		t.Errorf("after Remove len = %d, want 2", len(b.Instrs))
	}
}
