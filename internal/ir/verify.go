package ir

import (
	"errors"
	"fmt"
)

// Verify checks structural well-formedness of every function in the module.
func (m *Module) Verify() error {
	for _, f := range m.Funcs {
		if err := f.Verify(); err != nil {
			return fmt.Errorf("func @%s: %w", f.Name, err)
		}
	}
	return nil
}

// Verify checks the function for structural errors: missing/misplaced
// terminators, phi edges not matching CFG predecessors, type mismatches on
// operands, and SSA definitions that do not dominate their uses.
func (f *Func) Verify() error {
	if len(f.Blocks) == 0 {
		return errors.New("no blocks")
	}
	blockSet := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		blockSet[b] = true
	}
	preds := f.Preds()
	for _, b := range f.Blocks {
		if err := f.verifyBlock(b, blockSet, preds); err != nil {
			return fmt.Errorf("block %%%s: %w", b.Name, err)
		}
	}
	return f.verifyDominance()
}

func (f *Func) verifyBlock(b *Block, blockSet map[*Block]bool, preds map[*Block][]*Block) error {
	if len(b.Instrs) == 0 {
		return errors.New("empty block")
	}
	nterm := 0
	for _, in := range b.Instrs {
		if IsTerminator(in) {
			nterm++
		}
	}
	if nterm != 1 {
		return fmt.Errorf("block has %d terminators, want exactly 1", nterm)
	}
	for i, in := range b.Instrs {
		isLast := i == len(b.Instrs)-1
		if IsTerminator(in) != isLast {
			if isLast {
				return fmt.Errorf("last instruction is not a terminator: %s", FormatInstr(in))
			}
			return fmt.Errorf("terminator in mid-block: %s", FormatInstr(in))
		}
		if in.Parent() != b {
			return fmt.Errorf("instruction parent link broken: %s", FormatInstr(in))
		}
		if phi, isPhi := in.(*Phi); isPhi {
			if i >= b.FirstNonPhi() {
				return fmt.Errorf("phi after non-phi: %s", FormatInstr(in))
			}
			// Structural edge-count check for every block, reachable or not
			// (verifyDominance re-checks reachable blocks with edge matching).
			if len(phi.In) != len(preds[b]) {
				return fmt.Errorf("phi %s has %d incoming, block has %d preds",
					phi.Ref(), len(phi.In), len(preds[b]))
			}
		}
		if err := verifyTypes(in); err != nil {
			return fmt.Errorf("%s: %w", FormatInstr(in), err)
		}
		if t, ok := in.(Terminator); ok {
			for _, tgt := range t.Targets() {
				if !blockSet[tgt] {
					return fmt.Errorf("branch to block not in function: %%%s", tgt.Name)
				}
			}
		}
	}
	return nil
}

func verifyTypes(in Instr) error {
	switch x := in.(type) {
	case *Load:
		if !x.Ptr.Type().IsPtr() {
			return errors.New("load of non-pointer")
		}
		if x.Type() != x.Ptr.Type().Elem {
			return errors.New("load result/pointer element type mismatch")
		}
	case *Store:
		if !x.Ptr.Type().IsPtr() {
			return errors.New("store to non-pointer")
		}
		if x.Ptr.Type().Elem != x.Val.Type() {
			return errors.New("store value/pointer element type mismatch")
		}
	case *Prefetch:
		if !x.Ptr.Type().IsPtr() {
			return errors.New("prefetch of non-pointer")
		}
		if e := x.Ptr.Type().Elem; e == nil || e.IsVoid() {
			return errors.New("prefetch pointer has no element type")
		}
	case *GEP:
		if !x.Base.Type().IsPtr() {
			return errors.New("gep base is not a pointer")
		}
		for _, v := range x.Idx {
			if !v.Type().IsInt() {
				return errors.New("gep index is not an integer")
			}
		}
		for _, v := range x.Dims {
			if !v.Type().IsInt() {
				return errors.New("gep dimension is not an integer")
			}
		}
	case *Bin:
		want := IntT
		if x.Op.IsFloat() {
			want = FloatT
		}
		if x.X.Type() != want || x.Y.Type() != want {
			return fmt.Errorf("%s operand types %s, %s", x.Op, x.X.Type(), x.Y.Type())
		}
	case *Cmp:
		if x.X.Type() != x.Y.Type() {
			return errors.New("cmp operand type mismatch")
		}
		if !x.X.Type().IsInt() && !x.X.Type().IsFloat() && !x.X.Type().IsBool() {
			return errors.New("cmp of unsupported type")
		}
	case *Math:
		if !x.X.Type().IsFloat() {
			return errors.New("math intrinsic of non-float")
		}
	case *Cast:
		if x.Op == IntToFloat && !x.X.Type().IsInt() {
			return errors.New("sitofp of non-integer")
		}
		if x.Op == FloatToInt && !x.X.Type().IsFloat() {
			return errors.New("fptosi of non-float")
		}
	case *Select:
		if !x.Cond.Type().IsBool() {
			return errors.New("select condition is not bool")
		}
		if x.X.Type() != x.Y.Type() {
			return errors.New("select arm type mismatch")
		}
	case *CondBr:
		if !x.Cond.Type().IsBool() {
			return errors.New("condbr condition is not bool")
		}
	case *Call:
		if len(x.Args) != len(x.Callee.Params) {
			return fmt.Errorf("call arity %d, want %d", len(x.Args), len(x.Callee.Params))
		}
		for i, a := range x.Args {
			if a.Type() != x.Callee.Params[i].Typ {
				return fmt.Errorf("call arg %d type %s, want %s", i, a.Type(), x.Callee.Params[i].Typ)
			}
		}
	}
	return nil
}

func (f *Func) verifyDominance() error {
	dt := NewDomTree(f)
	preds := f.Preds()

	for _, b := range f.Blocks {
		if !dt.Reachable(b) {
			continue
		}
		// Phi incoming edges must exactly match CFG predecessors.
		for _, p := range b.Phis() {
			if len(p.In) != len(preds[b]) {
				return fmt.Errorf("block %%%s: phi %s has %d incoming, block has %d preds",
					b.Name, p.Ref(), len(p.In), len(preds[b]))
			}
			for _, in := range p.In {
				if !blockInList(preds[b], in.Pred) {
					return fmt.Errorf("block %%%s: phi %s incoming from non-predecessor %%%s",
						b.Name, p.Ref(), in.Pred.Name)
				}
			}
		}
		for _, use := range b.Instrs {
			phi, isPhi := use.(*Phi)
			if isPhi {
				for _, in := range phi.In {
					def, ok := in.Val.(Instr)
					if !ok {
						continue
					}
					if !dt.Reachable(in.Pred) {
						continue
					}
					if !dt.DominatesInstr(def, use, in.Pred) {
						return fmt.Errorf("block %%%s: phi operand %s does not dominate edge from %%%s",
							b.Name, def.Ref(), in.Pred.Name)
					}
				}
				continue
			}
			for _, op := range use.Operands() {
				def, ok := op.(Instr)
				if !ok {
					continue
				}
				if !dt.DominatesInstr(def, use, nil) {
					return fmt.Errorf("block %%%s: operand %s of %s does not dominate use",
						b.Name, def.Ref(), FormatInstr(use))
				}
			}
		}
	}
	return nil
}

func blockInList(s []*Block, b *Block) bool {
	for _, x := range s {
		if x == b {
			return true
		}
	}
	return false
}
