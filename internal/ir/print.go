package ir

import (
	"fmt"
	"strings"
)

// String renders the module in a textual form close to LLVM assembly.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; module %s\n", m.Name)
	for _, f := range m.Funcs {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// String renders the function.
func (f *Func) String() string {
	var sb strings.Builder
	kw := "func"
	if f.IsTask {
		kw = "task"
	}
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = fmt.Sprintf("%s %%%s", p.Typ, p.Nam)
	}
	fmt.Fprintf(&sb, "%s %s @%s(%s) {\n", kw, f.RetType, f.Name, strings.Join(params, ", "))
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", FormatInstr(in))
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func ref(v Value) string {
	if v == nil {
		return "<nil>"
	}
	return v.Ref()
}

// FormatInstr renders one instruction.
func FormatInstr(in Instr) string {
	switch x := in.(type) {
	case *Alloca:
		return fmt.Sprintf("%s = alloca %s ; %s", x.Ref(), x.typ.Elem, x.Var)
	case *Load:
		return fmt.Sprintf("%s = load %s, %s", x.Ref(), x.typ, ref(x.Ptr))
	case *Store:
		return fmt.Sprintf("store %s, %s", ref(x.Val), ref(x.Ptr))
	case *Prefetch:
		return fmt.Sprintf("prefetch %s", ref(x.Ptr))
	case *GEP:
		dims := make([]string, len(x.Dims))
		for i, d := range x.Dims {
			dims[i] = ref(d)
		}
		idx := make([]string, len(x.Idx))
		for i, v := range x.Idx {
			idx[i] = ref(v)
		}
		return fmt.Sprintf("%s = gep %s dims[%s] idx[%s]", x.Ref(), ref(x.Base),
			strings.Join(dims, ", "), strings.Join(idx, ", "))
	case *Bin:
		return fmt.Sprintf("%s = %s %s, %s", x.Ref(), x.Op, ref(x.X), ref(x.Y))
	case *Cmp:
		ty := "icmp"
		if x.X != nil && x.X.Type().IsFloat() {
			ty = "fcmp"
		}
		return fmt.Sprintf("%s = %s %s %s, %s", x.Ref(), ty, x.Pred, ref(x.X), ref(x.Y))
	case *Math:
		return fmt.Sprintf("%s = %s %s", x.Ref(), x.Op, ref(x.X))
	case *Cast:
		op := "sitofp"
		if x.Op == FloatToInt {
			op = "fptosi"
		}
		return fmt.Sprintf("%s = %s %s", x.Ref(), op, ref(x.X))
	case *Select:
		return fmt.Sprintf("%s = select %s, %s, %s", x.Ref(), ref(x.Cond), ref(x.X), ref(x.Y))
	case *Phi:
		parts := make([]string, len(x.In))
		for i, in := range x.In {
			parts[i] = fmt.Sprintf("[%s, %%%s]", ref(in.Val), in.Pred.Name)
		}
		tag := ""
		if x.Var != "" {
			tag = " ; " + x.Var
		}
		return fmt.Sprintf("%s = phi %s %s%s", x.Ref(), x.typ, strings.Join(parts, ", "), tag)
	case *Call:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = ref(a)
		}
		if x.typ.IsVoid() {
			return fmt.Sprintf("call @%s(%s)", x.Callee.Name, strings.Join(args, ", "))
		}
		return fmt.Sprintf("%s = call @%s(%s)", x.Ref(), x.Callee.Name, strings.Join(args, ", "))
	case *Br:
		return fmt.Sprintf("br %%%s", x.Target.Name)
	case *CondBr:
		return fmt.Sprintf("br %s, %%%s, %%%s", ref(x.Cond), x.Then.Name, x.Else.Name)
	case *Ret:
		if x.X == nil {
			return "ret void"
		}
		return fmt.Sprintf("ret %s", ref(x.X))
	}
	return fmt.Sprintf("<unknown instr %T>", in)
}
