package ir

import "strconv"

// Value is anything that can appear as an instruction operand: constants,
// function parameters, and instructions themselves.
type Value interface {
	// Type returns the IR type of the value.
	Type() *Type
	// Ref returns the operand-position spelling of the value
	// (e.g. "%x", "42", "3.5").
	Ref() string
}

// ConstInt is a 64-bit integer constant.
type ConstInt struct{ V int64 }

// CI returns an integer constant value.
func CI(v int64) *ConstInt { return &ConstInt{V: v} }

// Type implements Value.
func (c *ConstInt) Type() *Type { return IntT }

// Ref implements Value.
func (c *ConstInt) Ref() string { return strconv.FormatInt(c.V, 10) }

// ConstFloat is a 64-bit floating-point constant.
type ConstFloat struct{ V float64 }

// CF returns a float constant value.
func CF(v float64) *ConstFloat { return &ConstFloat{V: v} }

// Type implements Value.
func (c *ConstFloat) Type() *Type { return FloatT }

// Ref implements Value. The spelling always carries a decimal point or
// exponent so float constants never collide with integer literals in the
// textual IR (required for round-tripping through the parser).
func (c *ConstFloat) Ref() string {
	s := strconv.FormatFloat(c.V, 'g', -1, 64)
	for _, r := range s {
		if r == '.' || r == 'e' || r == 'E' || r == 'n' || r == 'i' { // NaN/Inf
			return s
		}
	}
	return s + ".0"
}

// ConstBool is a boolean constant.
type ConstBool struct{ V bool }

// CB returns a boolean constant value.
func CB(v bool) *ConstBool { return &ConstBool{V: v} }

// Type implements Value.
func (c *ConstBool) Type() *Type { return BoolT }

// Ref implements Value.
func (c *ConstBool) Ref() string {
	if c.V {
		return "true"
	}
	return "false"
}

// Param is a function parameter. Array arguments are passed as pointers; the
// dimension sizes travel separately (also as parameters) and are referenced
// by GEP instructions.
type Param struct {
	Nam string
	Typ *Type
	// Index is the position of the parameter in Func.Params.
	Index int
}

// Type implements Value.
func (p *Param) Type() *Type { return p.Typ }

// Ref implements Value.
func (p *Param) Ref() string { return "%" + p.Nam }

// IsConst reports whether v is a constant value.
func IsConst(v Value) bool {
	switch v.(type) {
	case *ConstInt, *ConstFloat, *ConstBool:
		return true
	}
	return false
}

// ConstIntValue returns the integer value of v if v is a ConstInt.
func ConstIntValue(v Value) (int64, bool) {
	if c, ok := v.(*ConstInt); ok {
		return c.V, true
	}
	return 0, false
}

// ConstFloatValue returns the float value of v if v is a ConstFloat.
func ConstFloatValue(v Value) (float64, bool) {
	if c, ok := v.(*ConstFloat); ok {
		return c.V, true
	}
	return 0, false
}

// ConstBoolValue returns the bool value of v if v is a ConstBool.
func ConstBoolValue(v Value) (bool, bool) {
	if c, ok := v.(*ConstBool); ok {
		return c.V, true
	}
	return false, false
}

// SameConst reports whether a and b are equal constants of the same kind.
func SameConst(a, b Value) bool {
	switch ca := a.(type) {
	case *ConstInt:
		cb, ok := b.(*ConstInt)
		return ok && ca.V == cb.V
	case *ConstFloat:
		cb, ok := b.(*ConstFloat)
		return ok && ca.V == cb.V
	case *ConstBool:
		cb, ok := b.(*ConstBool)
		return ok && ca.V == cb.V
	}
	return false
}
