package ir

import "fmt"

// Pos is a TaskC source position attached to instructions for diagnostics.
// The zero Pos means "unknown" (synthesized instructions, parsed textual IR).
type Pos struct {
	Line int
	Col  int
}

// IsValid reports whether the position refers to a real source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders "line:col", or "-" for the unknown position.
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Instr is an IR instruction. Instructions are Values (their result can be
// used as an operand); void-typed instructions (stores, branches, prefetch)
// must not be used as operands.
type Instr interface {
	Value
	// Operands returns the operand list in a fixed order.
	Operands() []Value
	// SetOperand replaces operand i.
	SetOperand(i int, v Value)
	// Parent returns the block containing the instruction (nil if detached).
	Parent() *Block
	// Pos returns the TaskC source position (zero when unknown).
	Pos() Pos
	// SetPos attaches a TaskC source position.
	SetPos(p Pos)
	setParent(b *Block)
	setID(id int)
	id() int
}

// Terminator is implemented by instructions that end a basic block.
type Terminator interface {
	Instr
	// Targets returns the successor blocks.
	Targets() []*Block
	// SetTarget replaces successor i.
	SetTarget(i int, b *Block)
}

// instrBase carries the bookkeeping shared by all instructions.
type instrBase struct {
	blk *Block
	num int // SSA number for printing; assigned on insertion
	typ *Type
	pos Pos
}

func (b *instrBase) Type() *Type        { return b.typ }
func (b *instrBase) Parent() *Block     { return b.blk }
func (b *instrBase) Pos() Pos           { return b.pos }
func (b *instrBase) SetPos(p Pos)       { b.pos = p }
func (b *instrBase) setParent(p *Block) { b.blk = p }
func (b *instrBase) setID(id int)       { b.num = id }
func (b *instrBase) id() int            { return b.num }
func (b *instrBase) Ref() string        { return fmt.Sprintf("%%t%d", b.num) }

// ---------------------------------------------------------------------------
// Memory

// Alloca reserves a scalar stack slot. The front end uses allocas for all
// local variables; mem2reg promotes them to SSA registers. Var records the
// source-level variable name for diagnostics.
type Alloca struct {
	instrBase
	Var string
}

// NewAlloca returns a stack slot of element type elem (Int or Float or Bool).
func NewAlloca(varName string, elem *Type) *Alloca {
	a := &Alloca{Var: varName}
	a.typ = PtrTo(elem)
	return a
}

// Operands implements Instr.
func (a *Alloca) Operands() []Value { return nil }

// SetOperand implements Instr.
func (a *Alloca) SetOperand(i int, v Value) { panic("ir: alloca has no operands") }

// Load reads the element behind Ptr.
type Load struct {
	instrBase
	Ptr Value
}

// NewLoad returns a load of ptr, whose type must be a pointer.
func NewLoad(ptr Value) *Load {
	l := &Load{Ptr: ptr}
	l.typ = ptr.Type().Elem
	return l
}

// Operands implements Instr.
func (l *Load) Operands() []Value { return []Value{l.Ptr} }

// SetOperand implements Instr.
func (l *Load) SetOperand(i int, v Value) {
	if i != 0 {
		panic("ir: load operand index")
	}
	l.Ptr = v
}

// Store writes Val to the element behind Ptr. Stores are void-typed.
type Store struct {
	instrBase
	Val Value
	Ptr Value
}

// NewStore returns a store of val to ptr.
func NewStore(val, ptr Value) *Store {
	s := &Store{Val: val, Ptr: ptr}
	s.typ = VoidT
	return s
}

// Operands implements Instr.
func (s *Store) Operands() []Value { return []Value{s.Val, s.Ptr} }

// SetOperand implements Instr.
func (s *Store) SetOperand(i int, v Value) {
	switch i {
	case 0:
		s.Val = v
	case 1:
		s.Ptr = v
	default:
		panic("ir: store operand index")
	}
}

// Prefetch issues a non-binding prefetch of the element behind Ptr. It never
// faults and has no architectural effect; the machine model gives it
// memory-level parallelism beyond what blocking loads achieve.
type Prefetch struct {
	instrBase
	Ptr Value
}

// NewPrefetch returns a prefetch of ptr.
func NewPrefetch(ptr Value) *Prefetch {
	p := &Prefetch{Ptr: ptr}
	p.typ = VoidT
	return p
}

// Operands implements Instr.
func (p *Prefetch) Operands() []Value { return []Value{p.Ptr} }

// SetOperand implements Instr.
func (p *Prefetch) SetOperand(i int, v Value) {
	if i != 0 {
		panic("ir: prefetch operand index")
	}
	p.Ptr = v
}

// GEP computes the address of an element of a (possibly multi-dimensional)
// array. Base is a pointer; Idx holds one index per dimension and Dims holds
// the size of each dimension (Dims[0] is not used for address arithmetic but
// is kept so analyses can recover the full array shape). The address in
// elements is ((idx0*dims1+idx1)*dims2+idx2)... — row-major order.
type GEP struct {
	instrBase
	Base Value
	Dims []Value
	Idx  []Value
}

// NewGEP returns an address computation over base with the given shape.
func NewGEP(base Value, dims, idx []Value) *GEP {
	if len(dims) != len(idx) {
		panic("ir: gep dims/idx length mismatch")
	}
	g := &GEP{Base: base, Dims: dims, Idx: idx}
	g.typ = base.Type()
	return g
}

// Operands implements Instr. The order is Base, Dims..., Idx... .
func (g *GEP) Operands() []Value {
	ops := make([]Value, 0, 1+len(g.Dims)+len(g.Idx))
	ops = append(ops, g.Base)
	ops = append(ops, g.Dims...)
	ops = append(ops, g.Idx...)
	return ops
}

// SetOperand implements Instr.
func (g *GEP) SetOperand(i int, v Value) {
	switch {
	case i == 0:
		g.Base = v
	case i <= len(g.Dims):
		g.Dims[i-1] = v
	case i <= len(g.Dims)+len(g.Idx):
		g.Idx[i-1-len(g.Dims)] = v
	default:
		panic("ir: gep operand index")
	}
}

// ---------------------------------------------------------------------------
// Arithmetic

// BinOp identifies a binary arithmetic operation.
type BinOp uint8

// Binary operations. The I-prefixed forms are integer, F-prefixed are float.
const (
	IAdd BinOp = iota
	ISub
	IMul
	IDiv // truncated toward zero, like C
	IRem
	IAnd
	IOr
	IXor
	IShl
	IShr // arithmetic shift right
	IMin
	IMax
	FAdd
	FSub
	FMul
	FDiv
)

var binOpNames = [...]string{
	IAdd: "add", ISub: "sub", IMul: "mul", IDiv: "sdiv", IRem: "srem",
	IAnd: "and", IOr: "or", IXor: "xor", IShl: "shl", IShr: "ashr",
	IMin: "smin", IMax: "smax",
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv",
}

// String returns the mnemonic of the operation.
func (op BinOp) String() string { return binOpNames[op] }

// IsFloat reports whether the operation is a floating-point operation.
func (op BinOp) IsFloat() bool { return op >= FAdd }

// Bin is a two-operand arithmetic instruction.
type Bin struct {
	instrBase
	Op BinOp
	X  Value
	Y  Value
}

// NewBin returns the binary operation op(x, y).
func NewBin(op BinOp, x, y Value) *Bin {
	b := &Bin{Op: op, X: x, Y: y}
	if op.IsFloat() {
		b.typ = FloatT
	} else {
		b.typ = IntT
	}
	return b
}

// Operands implements Instr.
func (b *Bin) Operands() []Value { return []Value{b.X, b.Y} }

// SetOperand implements Instr.
func (b *Bin) SetOperand(i int, v Value) {
	switch i {
	case 0:
		b.X = v
	case 1:
		b.Y = v
	default:
		panic("ir: bin operand index")
	}
}

// CmpPred identifies a comparison predicate.
type CmpPred uint8

// Comparison predicates; the same set applies to integer and float operands.
const (
	EQ CmpPred = iota
	NE
	LT
	LE
	GT
	GE
)

var cmpPredNames = [...]string{EQ: "eq", NE: "ne", LT: "lt", LE: "le", GT: "gt", GE: "ge"}

// String returns the mnemonic of the predicate.
func (p CmpPred) String() string { return cmpPredNames[p] }

// Cmp compares two values of identical type and yields a bool.
type Cmp struct {
	instrBase
	Pred CmpPred
	X    Value
	Y    Value
}

// NewCmp returns the comparison pred(x, y).
func NewCmp(pred CmpPred, x, y Value) *Cmp {
	c := &Cmp{Pred: pred, X: x, Y: y}
	c.typ = BoolT
	return c
}

// Operands implements Instr.
func (c *Cmp) Operands() []Value { return []Value{c.X, c.Y} }

// SetOperand implements Instr.
func (c *Cmp) SetOperand(i int, v Value) {
	switch i {
	case 0:
		c.X = v
	case 1:
		c.Y = v
	default:
		panic("ir: cmp operand index")
	}
}

// CastOp identifies a conversion.
type CastOp uint8

// Conversions.
const (
	IntToFloat CastOp = iota
	FloatToInt
)

// Cast converts between the integer and float types.
type Cast struct {
	instrBase
	Op CastOp
	X  Value
}

// NewCast returns the conversion op(x).
func NewCast(op CastOp, x Value) *Cast {
	c := &Cast{Op: op, X: x}
	if op == IntToFloat {
		c.typ = FloatT
	} else {
		c.typ = IntT
	}
	return c
}

// Operands implements Instr.
func (c *Cast) Operands() []Value { return []Value{c.X} }

// SetOperand implements Instr.
func (c *Cast) SetOperand(i int, v Value) {
	if i != 0 {
		panic("ir: cast operand index")
	}
	c.X = v
}

// Select yields X when Cond is true and Y otherwise.
type Select struct {
	instrBase
	Cond Value
	X    Value
	Y    Value
}

// NewSelect returns the conditional select cond ? x : y.
func NewSelect(cond, x, y Value) *Select {
	s := &Select{Cond: cond, X: x, Y: y}
	s.typ = x.Type()
	return s
}

// Operands implements Instr.
func (s *Select) Operands() []Value { return []Value{s.Cond, s.X, s.Y} }

// SetOperand implements Instr.
func (s *Select) SetOperand(i int, v Value) {
	switch i {
	case 0:
		s.Cond = v
	case 1:
		s.X = v
	case 2:
		s.Y = v
	default:
		panic("ir: select operand index")
	}
}

// ---------------------------------------------------------------------------
// SSA and calls

// PhiIn is one incoming (value, predecessor) pair of a Phi.
type PhiIn struct {
	Val  Value
	Pred *Block
}

// Phi merges values flowing in from predecessor blocks.
type Phi struct {
	instrBase
	In  []PhiIn
	Var string // source variable name, for diagnostics
}

// NewPhi returns an empty phi of the given type.
func NewPhi(typ *Type, varName string) *Phi {
	p := &Phi{Var: varName}
	p.typ = typ
	return p
}

// AddIncoming appends an incoming edge.
func (p *Phi) AddIncoming(v Value, pred *Block) {
	p.In = append(p.In, PhiIn{Val: v, Pred: pred})
}

// Incoming returns the value flowing in from pred, or nil.
func (p *Phi) Incoming(pred *Block) Value {
	for _, in := range p.In {
		if in.Pred == pred {
			return in.Val
		}
	}
	return nil
}

// RemoveIncoming deletes the edge from pred, if present.
func (p *Phi) RemoveIncoming(pred *Block) {
	for i, in := range p.In {
		if in.Pred == pred {
			p.In = append(p.In[:i], p.In[i+1:]...)
			return
		}
	}
}

// Operands implements Instr.
func (p *Phi) Operands() []Value {
	ops := make([]Value, len(p.In))
	for i, in := range p.In {
		ops[i] = in.Val
	}
	return ops
}

// SetOperand implements Instr.
func (p *Phi) SetOperand(i int, v Value) { p.In[i].Val = v }

// Call invokes Callee with Args. The DAE pass requires calls to be inlined
// before an access version can be generated.
type Call struct {
	instrBase
	Callee *Func
	Args   []Value
}

// NewCall returns a call instruction.
func NewCall(callee *Func, args []Value) *Call {
	c := &Call{Callee: callee, Args: args}
	c.typ = callee.RetType
	return c
}

// Operands implements Instr.
func (c *Call) Operands() []Value { return c.Args }

// SetOperand implements Instr.
func (c *Call) SetOperand(i int, v Value) { c.Args[i] = v }

// ---------------------------------------------------------------------------
// Terminators

// Br branches unconditionally to Target.
type Br struct {
	instrBase
	Target *Block
}

// NewBr returns an unconditional branch.
func NewBr(target *Block) *Br {
	b := &Br{Target: target}
	b.typ = VoidT
	return b
}

// Operands implements Instr.
func (b *Br) Operands() []Value { return nil }

// SetOperand implements Instr.
func (b *Br) SetOperand(i int, v Value) { panic("ir: br has no value operands") }

// Targets implements Terminator.
func (b *Br) Targets() []*Block { return []*Block{b.Target} }

// SetTarget implements Terminator.
func (b *Br) SetTarget(i int, blk *Block) {
	if i != 0 {
		panic("ir: br target index")
	}
	b.Target = blk
}

// CondBr branches to Then when Cond is true and to Else otherwise.
type CondBr struct {
	instrBase
	Cond Value
	Then *Block
	Else *Block
}

// NewCondBr returns a conditional branch.
func NewCondBr(cond Value, then, els *Block) *CondBr {
	b := &CondBr{Cond: cond, Then: then, Else: els}
	b.typ = VoidT
	return b
}

// Operands implements Instr.
func (b *CondBr) Operands() []Value { return []Value{b.Cond} }

// SetOperand implements Instr.
func (b *CondBr) SetOperand(i int, v Value) {
	if i != 0 {
		panic("ir: condbr operand index")
	}
	b.Cond = v
}

// Targets implements Terminator.
func (b *CondBr) Targets() []*Block { return []*Block{b.Then, b.Else} }

// SetTarget implements Terminator.
func (b *CondBr) SetTarget(i int, blk *Block) {
	switch i {
	case 0:
		b.Then = blk
	case 1:
		b.Else = blk
	default:
		panic("ir: condbr target index")
	}
}

// Ret returns from the function, with X as the result unless the function is
// void (then X is nil).
type Ret struct {
	instrBase
	X Value
}

// NewRet returns a return instruction; x may be nil for void functions.
func NewRet(x Value) *Ret {
	r := &Ret{X: x}
	r.typ = VoidT
	return r
}

// Operands implements Instr.
func (r *Ret) Operands() []Value {
	if r.X == nil {
		return nil
	}
	return []Value{r.X}
}

// SetOperand implements Instr.
func (r *Ret) SetOperand(i int, v Value) {
	if i != 0 || r.X == nil {
		panic("ir: ret operand index")
	}
	r.X = v
}

// Targets implements Terminator.
func (r *Ret) Targets() []*Block { return nil }

// SetTarget implements Terminator.
func (r *Ret) SetTarget(i int, blk *Block) { panic("ir: ret has no targets") }

// IsTerminator reports whether in ends a basic block.
func IsTerminator(in Instr) bool {
	_, ok := in.(Terminator)
	return ok
}
