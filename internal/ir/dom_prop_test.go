package ir

import (
	"math/rand"
	"testing"
)

// randomCFG builds a function with n blocks and random branches; block 0 is
// the entry and every block ends in a Ret, Br, or CondBr to random targets.
func randomCFG(rng *rand.Rand, n int) *Func {
	c := &Param{Nam: "c", Typ: BoolT}
	f := NewFunc("g", VoidT, []*Param{c})
	blocks := make([]*Block, n)
	for i := 0; i < n; i++ {
		blocks[i] = f.NewBlock("")
	}
	for i, b := range blocks {
		switch rng.Intn(4) {
		case 0:
			b.Append(NewRet(nil))
		case 1:
			b.Append(NewBr(blocks[rng.Intn(n)]))
		default:
			b.Append(NewCondBr(c, blocks[rng.Intn(n)], blocks[rng.Intn(n)]))
		}
		_ = i
	}
	return f
}

// bruteDominates checks the textbook definition: a dominates b iff removing
// a makes b unreachable from the entry.
func bruteDominates(f *Func, a, b *Block) bool {
	if a == b {
		return true
	}
	seen := map[*Block]bool{a: true} // treat a as a wall
	var stack []*Block
	if f.Entry() != a {
		stack = append(stack, f.Entry())
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[x] {
			continue
		}
		seen[x] = true
		if x == b {
			return false // b reachable while avoiding a
		}
		for _, s := range x.Succs() {
			stack = append(stack, s)
		}
	}
	return true
}

func reachableSet(f *Func) map[*Block]bool {
	set := map[*Block]bool{}
	for _, b := range f.ReversePostorder() {
		set[b] = true
	}
	return set
}

// TestDominatorsMatchBruteForce compares the CHK dominator tree against the
// brute-force definition on random CFGs.
func TestDominatorsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		f := randomCFG(rng, 2+rng.Intn(9))
		dt := NewDomTree(f)
		reach := reachableSet(f)
		for _, a := range f.Blocks {
			if !reach[a] {
				continue
			}
			for _, b := range f.Blocks {
				if !reach[b] {
					continue
				}
				want := bruteDominates(f, a, b)
				got := dt.Dominates(a, b)
				if got != want {
					t.Fatalf("trial %d: Dominates(%s, %s) = %v, brute force %v\n%s",
						trial, a.Name, b.Name, got, want, f)
				}
			}
		}
	}
}

// TestLoopsAreCyclesProperty checks that every reported natural loop really
// contains a cycle through its header and that headers dominate their loop
// bodies.
func TestLoopsAreCyclesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 200; trial++ {
		f := randomCFG(rng, 3+rng.Intn(8))
		dt := NewDomTree(f)
		li := FindLoops(f, dt)
		for _, l := range li.AllLoops() {
			for _, b := range l.Blocks {
				if !dt.Dominates(l.Header, b) {
					t.Fatalf("trial %d: loop header %s does not dominate member %s\n%s",
						trial, l.Header.Name, b.Name, f)
				}
			}
			// The header must be reachable from some latch within the loop.
			if len(l.Latches) == 0 {
				t.Fatalf("trial %d: loop with no latches", trial)
			}
			for _, latch := range l.Latches {
				if !l.Contains(latch) {
					t.Fatalf("trial %d: latch outside loop", trial)
				}
				found := false
				for _, s := range latch.Succs() {
					if s == l.Header {
						found = true
					}
				}
				if !found {
					t.Fatalf("trial %d: latch does not branch to header", trial)
				}
			}
		}
	}
}
