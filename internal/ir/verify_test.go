package ir

import (
	"strings"
	"testing"
)

// wantVerifyError asserts that f.Verify fails with a message containing want.
func wantVerifyError(t *testing.T, f *Func, want string) {
	t.Helper()
	err := f.Verify()
	if err == nil {
		t.Fatalf("expected verify error containing %q\n%s", want, f)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("verify error %q does not contain %q", err, want)
	}
}

func TestVerifyCatchesDoubleTerminator(t *testing.T) {
	f := NewFunc("f", VoidT, nil)
	b1 := f.NewBlock("entry")
	b2 := f.NewBlock("exit")
	b1.Append(NewBr(b2))
	b1.Append(NewBr(b2))
	b2.Append(NewRet(nil))
	wantVerifyError(t, f, "2 terminators")
}

func TestVerifyCatchesTerminatorMidBlock(t *testing.T) {
	// Exactly one terminator, but not at the end of the block.
	f := NewFunc("f", VoidT, nil)
	b1 := f.NewBlock("entry")
	b2 := f.NewBlock("exit")
	b1.Append(NewBr(b2))
	b1.Append(NewBin(IAdd, CI(1), CI(2)))
	b2.Append(NewRet(nil))
	wantVerifyError(t, f, "terminator in mid-block")
}

func TestVerifyCatchesPhiOperandCountStructurally(t *testing.T) {
	// The phi/predecessor-count check must fire even in blocks the dominance
	// pass skips as unreachable.
	f := NewFunc("f", VoidT, nil)
	entry := f.NewBlock("entry")
	entry.Append(NewRet(nil))
	dead := f.NewBlock("dead") // no predecessors, unreachable
	phi := NewPhi(IntT, "x")
	phi.AddIncoming(CI(1), entry)
	dead.Append(phi)
	dead.Append(NewRet(nil))
	wantVerifyError(t, f, "has 1 incoming, block has 0 preds")
}

func TestVerifyCatchesPhiOperandCountEntry(t *testing.T) {
	f, entry, loop, _ := buildCountLoop(t)
	// Add a bogus extra incoming edge (same predecessor twice).
	p := loop.Phis()[0]
	p.AddIncoming(CI(0), entry)
	if err := f.Verify(); err == nil {
		t.Fatal("expected error for phi with extra incoming edge")
	}
}

func TestVerifyCatchesLoadResultTypeMismatch(t *testing.T) {
	intp := &Param{Nam: "p", Typ: PtrTo(IntT)}
	fltp := &Param{Nam: "q", Typ: PtrTo(FloatT)}
	f := NewFunc("f", VoidT, []*Param{intp, fltp})
	b := f.NewBlock("entry")
	ld := NewLoad(intp) // result type int
	ld.Ptr = fltp       // a broken pass rewires the pointer operand
	b.Append(ld)
	b.Append(NewRet(nil))
	wantVerifyError(t, f, "load result/pointer element type mismatch")
}

func TestVerifyCatchesStoreValueTypeMismatch(t *testing.T) {
	fltp := &Param{Nam: "q", Typ: PtrTo(FloatT)}
	f := NewFunc("f", VoidT, []*Param{fltp})
	b := f.NewBlock("entry")
	b.Append(NewStore(CI(1), fltp)) // int value into float cell
	b.Append(NewRet(nil))
	wantVerifyError(t, f, "store value/pointer element type mismatch")
}

func TestVerifyCatchesPrefetchWithoutElem(t *testing.T) {
	p := &Param{Nam: "p", Typ: &Type{K: PtrKind}} // pointer with no element type
	f := NewFunc("f", VoidT, []*Param{p})
	b := f.NewBlock("entry")
	b.Append(NewPrefetch(p))
	b.Append(NewRet(nil))
	wantVerifyError(t, f, "prefetch pointer has no element type")
}

func TestVerifyAcceptsWellFormedMemoryOps(t *testing.T) {
	intp := &Param{Nam: "p", Typ: PtrTo(IntT)}
	f := NewFunc("f", VoidT, []*Param{intp})
	bd := NewBuilder(f)
	bd.SetBlock(bd.NewBlock("entry"))
	v := bd.Load(intp)
	bd.Store(v, intp)
	bd.Prefetch(intp)
	bd.Ret(nil)
	if err := f.Verify(); err != nil {
		t.Fatalf("well-formed function rejected: %v\n%s", err, f)
	}
}
