package ir

import "strings"

var binOpByName = map[string]BinOp{
	"add": IAdd, "sub": ISub, "mul": IMul, "sdiv": IDiv, "srem": IRem,
	"and": IAnd, "or": IOr, "xor": IXor, "shl": IShl, "ashr": IShr,
	"smin": IMin, "smax": IMax,
	"fadd": FAdd, "fsub": FSub, "fmul": FMul, "fdiv": FDiv,
}

var cmpPredByName = map[string]CmpPred{
	"eq": EQ, "ne": NE, "lt": LT, "le": LE, "gt": GT, "ge": GE,
}

// instr parses one instruction line into block b.
func (p *irParser) instr(b *Block, line string) error {
	text, comment := cutComment(line)

	// Result-producing form: "%name = op ..."
	var resName string
	if strings.HasPrefix(text, "%") {
		if eq := strings.Index(text, " = "); eq > 0 {
			resName = text[:eq]
			text = strings.TrimSpace(text[eq+3:])
		}
	}

	op, rest, _ := strings.Cut(text, " ")
	rest = strings.TrimSpace(rest)

	appendDef := func(in Instr) {
		b.Append(in)
		if resName != "" {
			p.def(resName, in.(Value))
		}
	}

	switch op {
	case "alloca":
		t, err := p.typ(rest)
		if err != nil {
			return err
		}
		appendDef(NewAlloca(comment, t))
		return nil

	case "load":
		ty, ptr, ok := strings.Cut(rest, ",")
		if !ok {
			return p.errf("bad load %q", line)
		}
		t, err := p.typ(strings.TrimSpace(ty))
		if err != nil {
			return err
		}
		l := &Load{}
		l.typ = t
		b.Append(l)
		v, err := p.operand(ptr, l, 0, PtrTo(t))
		if err != nil {
			return err
		}
		l.Ptr = v
		if resName != "" {
			p.def(resName, l)
		}
		return nil

	case "store":
		val, ptr, ok := strings.Cut(rest, ",")
		if !ok {
			return p.errf("bad store %q", line)
		}
		s := NewStore(CI(0), placeholderFor(PtrTo(IntT)))
		b.Append(s)
		v, err := p.operand(val, s, 0, nil)
		if err != nil {
			return err
		}
		s.Val = v
		pv, err := p.operand(ptr, s, 1, nil)
		if err != nil {
			return err
		}
		s.Ptr = pv
		return nil

	case "prefetch":
		pf := NewPrefetch(placeholderFor(PtrTo(FloatT)))
		b.Append(pf)
		v, err := p.operand(rest, pf, 0, nil)
		if err != nil {
			return err
		}
		pf.Ptr = v
		return nil

	case "gep":
		return p.gep(b, rest, resName)

	case "icmp", "fcmp":
		predName, ops, _ := strings.Cut(rest, " ")
		pred, ok := cmpPredByName[predName]
		if !ok {
			return p.errf("bad compare predicate %q", predName)
		}
		a, bs, ok := strings.Cut(ops, ",")
		if !ok {
			return p.errf("bad compare %q", line)
		}
		want := IntT
		if op == "fcmp" {
			want = FloatT
		}
		c := NewCmp(pred, placeholderFor(want), placeholderFor(want))
		b.Append(c)
		x, err := p.operand(a, c, 0, want)
		if err != nil {
			return err
		}
		y, err := p.operand(bs, c, 1, want)
		if err != nil {
			return err
		}
		c.X, c.Y = x, y
		if resName != "" {
			p.def(resName, c)
		}
		return nil

	case "sitofp", "fptosi":
		co := IntToFloat
		want := IntT
		if op == "fptosi" {
			co = FloatToInt
			want = FloatT
		}
		c := NewCast(co, placeholderFor(want))
		b.Append(c)
		v, err := p.operand(rest, c, 0, want)
		if err != nil {
			return err
		}
		c.X = v
		if resName != "" {
			p.def(resName, c)
		}
		return nil

	case "select":
		parts := splitOperands(rest)
		if len(parts) != 3 {
			return p.errf("bad select %q", line)
		}
		s := NewSelect(placeholderFor(BoolT), CI(0), CI(0))
		b.Append(s)
		for i, part := range parts {
			v, err := p.operand(part, s, i, nil)
			if err != nil {
				return err
			}
			s.SetOperand(i, v)
		}
		if resName != "" {
			p.def(resName, s)
		}
		return nil

	case "phi":
		return p.phi(b, rest, resName, comment)

	case "call":
		return p.call(b, rest, resName)

	case "br":
		return p.br(b, rest)

	case "ret":
		if rest == "void" {
			b.Append(NewRet(nil))
			return nil
		}
		r := NewRet(CI(0))
		b.Append(r)
		v, err := p.operand(rest, r, 0, p.fn.RetType)
		if err != nil {
			return err
		}
		r.X = v
		return nil
	}

	if mo, ok := MathOpByName(op); ok {
		m := NewMath(mo, placeholderFor(FloatT))
		b.Append(m)
		v, err := p.operand(rest, m, 0, FloatT)
		if err != nil {
			return err
		}
		m.X = v
		if resName != "" {
			p.def(resName, m)
		}
		return nil
	}
	if bo, ok := binOpByName[op]; ok {
		a, bs, okc := strings.Cut(rest, ",")
		if !okc {
			return p.errf("bad %s %q", op, line)
		}
		want := IntT
		if bo.IsFloat() {
			want = FloatT
		}
		bin := NewBin(bo, placeholderFor(want), placeholderFor(want))
		b.Append(bin)
		x, err := p.operand(a, bin, 0, want)
		if err != nil {
			return err
		}
		y, err := p.operand(bs, bin, 1, want)
		if err != nil {
			return err
		}
		bin.X, bin.Y = x, y
		if resName != "" {
			p.def(resName, bin)
		}
		return nil
	}
	return p.errf("unknown instruction %q", line)
}

// gep parses "%base dims[a, b] idx[c, d]".
func (p *irParser) gep(b *Block, rest, resName string) error {
	di := strings.Index(rest, " dims[")
	ii := strings.Index(rest, "] idx[")
	if di < 0 || ii < di || !strings.HasSuffix(rest, "]") {
		return p.errf("bad gep %q", rest)
	}
	baseStr := strings.TrimSpace(rest[:di])
	dimsStr := rest[di+len(" dims[") : ii]
	idxStr := rest[ii+len("] idx[") : len(rest)-1]

	dims := splitOperands(dimsStr)
	idx := splitOperands(idxStr)
	if len(dims) != len(idx) {
		return p.errf("gep dims/idx mismatch in %q", rest)
	}
	g := &GEP{Dims: make([]Value, len(dims)), Idx: make([]Value, len(idx))}
	g.typ = PtrTo(FloatT) // retyped after fixups from the base operand
	b.Append(g)
	base, err := p.operand(baseStr, g, 0, PtrTo(FloatT))
	if err != nil {
		return err
	}
	g.Base = base
	for i, d := range dims {
		v, err := p.operand(d, g, 1+i, IntT)
		if err != nil {
			return err
		}
		g.Dims[i] = v
	}
	for i, s := range idx {
		v, err := p.operand(s, g, 1+len(dims)+i, IntT)
		if err != nil {
			return err
		}
		g.Idx[i] = v
	}
	if resName != "" {
		p.def(resName, g)
	}
	return nil
}

// phi parses "i64 [v, %pred], [v2, %pred2]".
func (p *irParser) phi(b *Block, rest, resName, comment string) error {
	tyStr, edges, ok := strings.Cut(rest, " ")
	if !ok {
		return p.errf("bad phi %q", rest)
	}
	t, err := p.typ(tyStr)
	if err != nil {
		return err
	}
	phi := NewPhi(t, comment)
	b.Append(phi)
	i := 0
	for _, part := range splitBrackets(edges) {
		inner := strings.TrimSuffix(strings.TrimPrefix(part, "["), "]")
		valStr, predStr, ok := strings.Cut(inner, ",")
		if !ok {
			return p.errf("bad phi edge %q", part)
		}
		predStr = strings.TrimSpace(predStr)
		if !strings.HasPrefix(predStr, "%") {
			return p.errf("bad phi predecessor %q", predStr)
		}
		phi.AddIncoming(placeholderFor(t), p.block(predStr[1:]))
		v, err := p.operand(valStr, phi, i, t)
		if err != nil {
			return err
		}
		phi.In[i].Val = v
		i++
	}
	if resName != "" {
		p.def(resName, phi)
	}
	return nil
}

// call parses "@callee(a, b)".
func (p *irParser) call(b *Block, rest, resName string) error {
	if !strings.HasPrefix(rest, "@") || !strings.HasSuffix(rest, ")") {
		return p.errf("bad call %q", rest)
	}
	open := strings.IndexByte(rest, '(')
	if open < 0 {
		return p.errf("bad call %q", rest)
	}
	name := rest[1:open]
	argsStr := strings.TrimSuffix(rest[open+1:], ")")
	c := &Call{}
	c.typ = VoidT // retyped when the callee resolves
	b.Append(c)
	if strings.TrimSpace(argsStr) != "" {
		parts := splitOperands(argsStr)
		c.Args = make([]Value, len(parts))
		for i, part := range parts {
			v, err := p.operand(part, c, i, nil)
			if err != nil {
				return err
			}
			c.Args[i] = v
		}
	}
	p.callFixups = append(p.callFixups, callFixup{call: c, name: name, line: p.line})
	if resName != "" {
		p.def(resName, c)
	}
	return nil
}

// br parses "%target" or "cond, %then, %else".
func (p *irParser) br(b *Block, rest string) error {
	parts := splitOperands(rest)
	switch len(parts) {
	case 1:
		if !strings.HasPrefix(parts[0], "%") {
			return p.errf("bad branch target %q", rest)
		}
		b.Append(NewBr(p.block(parts[0][1:])))
		return nil
	case 3:
		if !strings.HasPrefix(parts[1], "%") || !strings.HasPrefix(parts[2], "%") {
			return p.errf("bad conditional branch %q", rest)
		}
		cb := NewCondBr(placeholderFor(BoolT), p.block(parts[1][1:]), p.block(parts[2][1:]))
		b.Append(cb)
		v, err := p.operand(parts[0], cb, 0, BoolT)
		if err != nil {
			return err
		}
		cb.Cond = v
		return nil
	}
	return p.errf("bad branch %q", rest)
}

// cutComment splits "text ; comment".
func cutComment(line string) (string, string) {
	if i := strings.Index(line, " ; "); i >= 0 {
		return strings.TrimSpace(line[:i]), strings.TrimSpace(line[i+3:])
	}
	return line, ""
}

// splitOperands splits a comma-separated operand list (no nested brackets).
func splitOperands(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

// splitBrackets splits "[a, %b], [c, %d]" into bracketed chunks.
func splitBrackets(s string) []string {
	var out []string
	depth := 0
	start := -1
	for i, r := range s {
		switch r {
		case '[':
			if depth == 0 {
				start = i
			}
			depth++
		case ']':
			depth--
			if depth == 0 && start >= 0 {
				out = append(out, s[start:i+1])
				start = -1
			}
		}
	}
	return out
}
