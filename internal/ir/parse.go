package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseModule parses the textual form produced by Module.String back into an
// IR module. Together with the printer this gives a lossless round trip
// (modulo SSA register numbering), which golden tests and external tooling
// rely on.
func ParseModule(src string) (*Module, error) {
	p := &irParser{}
	return p.module(src)
}

// ParseFunc parses a single function definition.
func ParseFunc(src string) (*Func, error) {
	m, err := ParseModule(src)
	if err != nil {
		return nil, err
	}
	if len(m.Funcs) != 1 {
		return nil, fmt.Errorf("ir: expected exactly one function, found %d", len(m.Funcs))
	}
	return m.Funcs[0], nil
}

type irParser struct {
	mod  *Module
	line int

	// per-function state
	fn     *Func
	blocks map[string]*Block
	values map[string]Value
	// fixups are operand references to values defined later in the function
	// (phi incomings, loop-carried uses).
	fixups []fixup
	// callFixups resolve callee names after all signatures exist.
	callFixups []callFixup
}

type fixup struct {
	in   Instr
	idx  int
	name string
	line int
}

type callFixup struct {
	call *Call
	name string
	line int
}

func (p *irParser) errf(format string, args ...any) error {
	return fmt.Errorf("ir: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *irParser) module(src string) (*Module, error) {
	p.mod = NewModule("parsed")
	lines := strings.Split(src, "\n")

	// First pass: function signatures, so calls can resolve across bodies.
	for i, raw := range lines {
		p.line = i + 1
		line := strings.TrimSpace(raw)
		if name, ok := strings.CutPrefix(line, "; module "); ok {
			p.mod.Name = strings.TrimSpace(name)
			continue
		}
		if isFuncHeader(line) {
			f, err := p.signature(line)
			if err != nil {
				return nil, err
			}
			p.mod.AddFunc(f)
		}
	}

	// Second pass: bodies. Labels are pre-scanned per function so block
	// order matches the text even when branches reference blocks forward.
	var cur *Func
	var curBlock *Block
	fnIndex := 0
	for i, raw := range lines {
		p.line = i + 1
		line := strings.TrimSpace(raw)
		switch {
		case line == "" || strings.HasPrefix(line, ";"):
			continue
		case isFuncHeader(line):
			cur = p.mod.Funcs[fnIndex]
			fnIndex++
			p.beginFunc(cur, line)
			curBlock = nil
			// Pre-create the function's blocks in label order.
			for j := i + 1; j < len(lines); j++ {
				l := strings.TrimSpace(lines[j])
				if l == "}" {
					break
				}
				if strings.HasSuffix(l, ":") && !strings.Contains(l, " ") {
					p.block(strings.TrimSuffix(l, ":"))
				}
			}
		case line == "}":
			if cur == nil {
				return nil, p.errf("unexpected '}'")
			}
			if err := p.endFunc(); err != nil {
				return nil, err
			}
			cur = nil
		case strings.HasSuffix(line, ":") && !strings.Contains(line, " "):
			if cur == nil {
				return nil, p.errf("label outside function")
			}
			curBlock = p.block(strings.TrimSuffix(line, ":"))
		default:
			if cur == nil || curBlock == nil {
				return nil, p.errf("instruction outside block: %q", line)
			}
			if err := p.instr(curBlock, line); err != nil {
				return nil, err
			}
		}
	}
	if cur != nil {
		return nil, p.errf("missing closing '}'")
	}
	// Resolve calls.
	for _, cf := range p.callFixups {
		callee := p.mod.Func(cf.name)
		if callee == nil {
			return nil, fmt.Errorf("ir: line %d: call to undefined @%s", cf.line, cf.name)
		}
		cf.call.Callee = callee
		cf.call.typ = callee.RetType
	}
	if err := p.mod.Verify(); err != nil {
		return nil, fmt.Errorf("ir: parsed module invalid: %w", err)
	}
	return p.mod, nil
}

func isFuncHeader(line string) bool {
	return (strings.HasPrefix(line, "func ") || strings.HasPrefix(line, "task ")) &&
		strings.HasSuffix(line, "{")
}

// signature parses "task void @name(f64* %A, i64 %N) {".
func (p *irParser) signature(line string) (*Func, error) {
	isTask := strings.HasPrefix(line, "task ")
	rest := strings.TrimSpace(line[5 : len(line)-1]) // drop keyword and '{'
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return nil, p.errf("bad function header %q", line)
	}
	retT, err := p.typ(rest[:sp])
	if err != nil {
		return nil, err
	}
	rest = strings.TrimSpace(rest[sp+1:])
	if !strings.HasPrefix(rest, "@") {
		return nil, p.errf("missing @name in %q", line)
	}
	open := strings.IndexByte(rest, '(')
	closeIdx := strings.LastIndexByte(rest, ')')
	if open < 0 || closeIdx < open {
		return nil, p.errf("bad parameter list in %q", line)
	}
	name := rest[1:open]
	var params []*Param
	plist := strings.TrimSpace(rest[open+1 : closeIdx])
	if plist != "" {
		for _, part := range strings.Split(plist, ",") {
			fields := strings.Fields(strings.TrimSpace(part))
			if len(fields) != 2 || !strings.HasPrefix(fields[1], "%") {
				return nil, p.errf("bad parameter %q", part)
			}
			pt, err := p.typ(fields[0])
			if err != nil {
				return nil, err
			}
			params = append(params, &Param{Nam: fields[1][1:], Typ: pt})
		}
	}
	f := NewFunc(name, retT, params)
	f.IsTask = isTask
	return f, nil
}

func (p *irParser) typ(s string) (*Type, error) {
	switch s {
	case "void":
		return VoidT, nil
	case "i1":
		return BoolT, nil
	case "i64":
		return IntT, nil
	case "f64":
		return FloatT, nil
	case "i64*":
		return PtrTo(IntT), nil
	case "f64*":
		return PtrTo(FloatT), nil
	}
	return nil, p.errf("unknown type %q", s)
}

func (p *irParser) beginFunc(f *Func, header string) {
	p.fn = f
	p.blocks = make(map[string]*Block)
	p.values = make(map[string]Value)
	p.fixups = nil
	for _, prm := range f.Params {
		p.values["%"+prm.Nam] = prm
	}
	_ = header
}

func (p *irParser) endFunc() error {
	for _, fx := range p.fixups {
		v, ok := p.values[fx.name]
		if !ok {
			return fmt.Errorf("ir: line %d: undefined value %s", fx.line, fx.name)
		}
		fx.in.SetOperand(fx.idx, v)
	}
	// Retype instructions whose result type derives from operands that may
	// have been placeholders during parsing.
	p.fn.Instrs(func(in Instr) {
		switch x := in.(type) {
		case *GEP:
			if x.Base != nil && x.Base.Type().IsPtr() {
				x.typ = x.Base.Type()
			}
		case *Select:
			if x.X != nil {
				x.typ = x.X.Type()
			}
		}
	})
	p.fn = nil
	return nil
}

func (p *irParser) block(name string) *Block {
	if b, ok := p.blocks[name]; ok {
		return b
	}
	b := p.fn.NewBlock(name)
	// NewBlock may uniquify; we want the exact printed name.
	b.Name = name
	p.blocks[name] = b
	return b
}

// operand resolves a printed operand; for instruction results not yet seen
// it registers a fixup against a placeholder.
func (p *irParser) operand(s string, in Instr, idx int, want *Type) (Value, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "true":
		return CB(true), nil
	case s == "false":
		return CB(false), nil
	case strings.HasPrefix(s, "%"):
		if v, ok := p.values[s]; ok {
			return v, nil
		}
		p.fixups = append(p.fixups, fixup{in: in, idx: idx, name: s, line: p.line})
		return placeholderFor(want), nil
	}
	if looksFloat(s) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, p.errf("bad float literal %q", s)
		}
		return CF(v), nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return nil, p.errf("bad literal %q", s)
	}
	if want != nil && want.IsFloat() {
		return CF(float64(v)), nil
	}
	return CI(v), nil
}

func looksFloat(s string) bool {
	return strings.ContainsAny(s, ".eE") && !strings.HasPrefix(s, "%")
}

// placeholderFor keeps instruction constructors type-happy until fixups run.
func placeholderFor(want *Type) Value {
	if want == nil {
		return CI(0)
	}
	switch {
	case want.IsFloat():
		return CF(0)
	case want.IsBool():
		return CB(false)
	case want.IsPtr():
		return &Param{Nam: "\x00placeholder", Typ: want}
	}
	return CI(0)
}

// defName registers the result of an instruction under its printed name.
func (p *irParser) def(name string, v Value) { p.values[name] = v }
