package ir

// SplitBlock moves every instruction after at (exclusive) into a fresh block
// and returns it. The terminator moves too, so b is left unterminated;
// phi edges in b's former successors are repointed at the new block. at must
// be an instruction of b.
func (f *Func) SplitBlock(b *Block, at Instr) *Block {
	idx := -1
	for i, in := range b.Instrs {
		if in == at {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic("ir: SplitBlock: instruction not in block")
	}
	nb := f.NewBlock(b.Name + ".split")
	moved := append([]Instr{}, b.Instrs[idx+1:]...)
	b.Instrs = b.Instrs[:idx+1]
	for _, in := range moved {
		in.setParent(nb)
	}
	nb.Instrs = moved
	for _, s := range nb.Succs() {
		for _, phi := range s.Phis() {
			for i := range phi.In {
				if phi.In[i].Pred == b {
					phi.In[i].Pred = nb
				}
			}
		}
	}
	return nb
}

// Absorb transfers every block of g into f (renaming on collision) and
// returns g's former entry block. g is emptied. Values in the transferred
// blocks keep referencing g's params; callers are expected to rewrite them.
func (f *Func) Absorb(g *Func) *Block {
	entry := g.Entry()
	for _, b := range g.Blocks {
		b.Name = f.uniqueBlockName(b.Name)
		b.fn = f
		for _, in := range b.Instrs {
			in.setID(f.nextID())
		}
		f.Blocks = append(f.Blocks, b)
	}
	g.Blocks = nil
	return entry
}

// MoveBlockAfter reorders block b to come immediately after pos in the
// function's block list. Purely cosmetic (printing order); the CFG is
// unchanged.
func (f *Func) MoveBlockAfter(b, pos *Block) {
	bi := -1
	for i, x := range f.Blocks {
		if x == b {
			bi = i
			break
		}
	}
	if bi < 0 {
		panic("ir: MoveBlockAfter: block not in function")
	}
	f.Blocks = append(f.Blocks[:bi], f.Blocks[bi+1:]...)
	pi := -1
	for i, x := range f.Blocks {
		if x == pos {
			pi = i
			break
		}
	}
	if pi < 0 {
		panic("ir: MoveBlockAfter: position block not in function")
	}
	f.Blocks = append(f.Blocks[:pi+1], append([]*Block{b}, f.Blocks[pi+1:]...)...)
}
