package ir

// Builder appends instructions to a current block, mirroring LLVM's
// IRBuilder. All factory methods insert at the end of the current block and
// return the created instruction as a Value.
type Builder struct {
	fn  *Func
	cur *Block
	pos Pos
}

// NewBuilder returns a builder positioned at no block.
func NewBuilder(f *Func) *Builder { return &Builder{fn: f} }

// Func returns the function being built.
func (bd *Builder) Func() *Func { return bd.fn }

// SetBlock positions the builder at the end of b.
func (bd *Builder) SetBlock(b *Block) { bd.cur = b }

// Block returns the current insertion block.
func (bd *Builder) Block() *Block { return bd.cur }

// SetPos sets the TaskC source position stamped on subsequently inserted
// instructions (the zero Pos stops stamping).
func (bd *Builder) SetPos(p Pos) { bd.pos = p }

// Pos returns the position currently being stamped.
func (bd *Builder) Pos() Pos { return bd.pos }

// NewBlock creates a fresh block (without moving the insertion point).
func (bd *Builder) NewBlock(name string) *Block { return bd.fn.NewBlock(name) }

func (bd *Builder) insert(in Instr) Instr {
	if bd.cur == nil {
		panic("ir: builder has no insertion block")
	}
	if bd.cur.Term() != nil {
		panic("ir: inserting into terminated block " + bd.cur.Name)
	}
	in.SetPos(bd.pos)
	bd.cur.Append(in)
	return in
}

// Alloca inserts a stack slot for a scalar of type elem.
func (bd *Builder) Alloca(varName string, elem *Type) *Alloca {
	return bd.insert(NewAlloca(varName, elem)).(*Alloca)
}

// Load inserts a load of ptr.
func (bd *Builder) Load(ptr Value) Value { return bd.insert(NewLoad(ptr)).(Value) }

// Store inserts a store of val to ptr.
func (bd *Builder) Store(val, ptr Value) { bd.insert(NewStore(val, ptr)) }

// Prefetch inserts a prefetch of ptr.
func (bd *Builder) Prefetch(ptr Value) { bd.insert(NewPrefetch(ptr)) }

// GEP inserts an address computation.
func (bd *Builder) GEP(base Value, dims, idx []Value) Value {
	return bd.insert(NewGEP(base, dims, idx)).(Value)
}

// Bin inserts op(x, y).
func (bd *Builder) Bin(op BinOp, x, y Value) Value { return bd.insert(NewBin(op, x, y)).(Value) }

// Cmp inserts pred(x, y).
func (bd *Builder) Cmp(pred CmpPred, x, y Value) Value {
	return bd.insert(NewCmp(pred, x, y)).(Value)
}

// Cast inserts op(x).
func (bd *Builder) Cast(op CastOp, x Value) Value { return bd.insert(NewCast(op, x)).(Value) }

// Select inserts cond ? x : y.
func (bd *Builder) Select(cond, x, y Value) Value {
	return bd.insert(NewSelect(cond, x, y)).(Value)
}

// Phi inserts an empty phi at the head of the current block.
func (bd *Builder) Phi(typ *Type, varName string) *Phi {
	p := NewPhi(typ, varName)
	if bd.cur == nil {
		panic("ir: builder has no insertion block")
	}
	p.SetPos(bd.pos)
	p.setParent(bd.cur)
	p.setID(bd.fn.nextID())
	i := bd.cur.FirstNonPhi()
	bd.cur.Instrs = append(bd.cur.Instrs, nil)
	copy(bd.cur.Instrs[i+1:], bd.cur.Instrs[i:])
	bd.cur.Instrs[i] = p
	return p
}

// Call inserts a call to callee.
func (bd *Builder) Call(callee *Func, args []Value) Value {
	return bd.insert(NewCall(callee, args)).(Value)
}

// Br inserts an unconditional branch and leaves the block terminated.
func (bd *Builder) Br(target *Block) { bd.insert(NewBr(target)) }

// CondBr inserts a conditional branch and leaves the block terminated.
func (bd *Builder) CondBr(cond Value, then, els *Block) { bd.insert(NewCondBr(cond, then, els)) }

// Ret inserts a return; x may be nil for void functions.
func (bd *Builder) Ret(x Value) { bd.insert(NewRet(x)) }
