package ir

// CloneFunc returns a deep copy of f named newName. The copy shares no
// blocks or instructions with the original; parameters are fresh Params with
// identical names and types.
func CloneFunc(f *Func, newName string) *Func {
	params := make([]*Param, len(f.Params))
	for i, p := range f.Params {
		params[i] = &Param{Nam: p.Nam, Typ: p.Typ, Index: i}
	}
	nf := NewFunc(newName, f.RetType, params)
	nf.IsTask = f.IsTask

	vmap := make(map[Value]Value)
	for i, p := range f.Params {
		vmap[p] = params[i]
	}
	bmap := make(map[*Block]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		bmap[b] = nf.NewBlock(b.Name)
	}
	// First pass: clone instructions with operands possibly still pointing at
	// originals; fix up in a second pass (needed for phis of loop headers).
	var clones []Instr
	for _, b := range f.Blocks {
		nb := bmap[b]
		for _, in := range b.Instrs {
			c := cloneInstr(in, bmap)
			c.SetPos(in.Pos())
			nb.Append(c)
			vmap[in] = c
			clones = append(clones, c)
		}
	}
	for _, c := range clones {
		ops := c.Operands()
		for i, op := range ops {
			if nv, ok := vmap[op]; ok {
				c.SetOperand(i, nv)
			}
		}
	}
	return nf
}

// cloneInstr copies a single instruction. Operand Values are shared (the
// caller remaps them); block targets are remapped via bmap immediately.
func cloneInstr(in Instr, bmap map[*Block]*Block) Instr {
	switch x := in.(type) {
	case *Alloca:
		return NewAlloca(x.Var, x.Type().Elem)
	case *Load:
		return NewLoad(x.Ptr)
	case *Store:
		return NewStore(x.Val, x.Ptr)
	case *Prefetch:
		return NewPrefetch(x.Ptr)
	case *GEP:
		dims := make([]Value, len(x.Dims))
		copy(dims, x.Dims)
		idx := make([]Value, len(x.Idx))
		copy(idx, x.Idx)
		return NewGEP(x.Base, dims, idx)
	case *Bin:
		return NewBin(x.Op, x.X, x.Y)
	case *Cmp:
		return NewCmp(x.Pred, x.X, x.Y)
	case *Cast:
		return NewCast(x.Op, x.X)
	case *Math:
		return NewMath(x.Op, x.X)
	case *Select:
		return NewSelect(x.Cond, x.X, x.Y)
	case *Phi:
		p := NewPhi(x.Type(), x.Var)
		for _, in := range x.In {
			p.AddIncoming(in.Val, bmap[in.Pred])
		}
		return p
	case *Call:
		args := make([]Value, len(x.Args))
		copy(args, x.Args)
		return NewCall(x.Callee, args)
	case *Br:
		return NewBr(bmap[x.Target])
	case *CondBr:
		return NewCondBr(x.Cond, bmap[x.Then], bmap[x.Else])
	case *Ret:
		return NewRet(x.X)
	}
	panic("ir: cloneInstr: unknown instruction")
}
