package ir

// DomTree is the dominator tree of a function's CFG, computed with the
// Cooper–Harvey–Kennedy iterative algorithm over reverse postorder.
type DomTree struct {
	fn    *Func
	rpo   []*Block
	rpoIx map[*Block]int
	idom  map[*Block]*Block
	kids  map[*Block][]*Block
}

// NewDomTree computes the dominator tree of f. Unreachable blocks are not
// part of the tree.
func NewDomTree(f *Func) *DomTree {
	t := &DomTree{
		fn:    f,
		rpo:   f.ReversePostorder(),
		rpoIx: make(map[*Block]int),
		idom:  make(map[*Block]*Block),
		kids:  make(map[*Block][]*Block),
	}
	for i, b := range t.rpo {
		t.rpoIx[b] = i
	}
	preds := f.Preds()
	entry := f.Entry()
	t.idom[entry] = entry

	changed := true
	for changed {
		changed = false
		for _, b := range t.rpo {
			if b == entry {
				continue
			}
			var newIdom *Block
			for _, p := range preds[b] {
				if _, ok := t.idom[p]; !ok {
					continue // not yet processed or unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = t.intersect(p, newIdom)
				}
			}
			if newIdom == nil {
				continue
			}
			if t.idom[b] != newIdom {
				t.idom[b] = newIdom
				changed = true
			}
		}
	}
	for _, b := range t.rpo {
		if b == entry {
			continue
		}
		id := t.idom[b]
		t.kids[id] = append(t.kids[id], b)
	}
	return t
}

func (t *DomTree) intersect(a, b *Block) *Block {
	for a != b {
		for t.rpoIx[a] > t.rpoIx[b] {
			a = t.idom[a]
		}
		for t.rpoIx[b] > t.rpoIx[a] {
			b = t.idom[b]
		}
	}
	return a
}

// IDom returns the immediate dominator of b (the entry's IDom is itself).
func (t *DomTree) IDom(b *Block) *Block { return t.idom[b] }

// Children returns the blocks immediately dominated by b.
func (t *DomTree) Children(b *Block) []*Block { return t.kids[b] }

// Dominates reports whether a dominates b (reflexively).
func (t *DomTree) Dominates(a, b *Block) bool {
	for {
		if a == b {
			return true
		}
		id, ok := t.idom[b]
		if !ok || id == b {
			return false
		}
		b = id
	}
}

// Reachable reports whether b is reachable from the entry.
func (t *DomTree) Reachable(b *Block) bool {
	_, ok := t.rpoIx[b]
	return ok
}

// Frontiers computes the dominance frontier of every reachable block.
func (t *DomTree) Frontiers() map[*Block][]*Block {
	df := make(map[*Block][]*Block, len(t.rpo))
	preds := t.fn.Preds()
	for _, b := range t.rpo {
		if len(preds[b]) < 2 {
			continue
		}
		for _, p := range preds[b] {
			if !t.Reachable(p) {
				continue
			}
			runner := p
			for runner != t.idom[b] {
				if !containsBlock(df[runner], b) {
					df[runner] = append(df[runner], b)
				}
				next, ok := t.idom[runner]
				if !ok || next == runner {
					break
				}
				runner = next
			}
		}
	}
	return df
}

func containsBlock(s []*Block, b *Block) bool {
	for _, x := range s {
		if x == b {
			return true
		}
	}
	return false
}

// DominatesInstr reports whether definition def dominates use at instruction
// use (i.e. whether the value computed by def is available at use). Phi uses
// are considered to occur at the end of the corresponding predecessor.
func (t *DomTree) DominatesInstr(def Instr, use Instr, phiPred *Block) bool {
	db, ub := def.Parent(), use.Parent()
	if db == nil || ub == nil {
		return false
	}
	if _, isPhi := use.(*Phi); isPhi && phiPred != nil {
		// A phi's incoming value must dominate the predecessor edge.
		return t.Dominates(db, phiPred)
	}
	if db != ub {
		return t.Dominates(db, ub)
	}
	// Same block: def must come first.
	for _, in := range db.Instrs {
		if in == def {
			return true
		}
		if in == use {
			return false
		}
	}
	return false
}
