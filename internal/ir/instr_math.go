package ir

// MathOp identifies a unary floating-point math intrinsic.
type MathOp uint8

// Math intrinsics. All take and return f64.
const (
	Sqrt MathOp = iota
	Sin
	Cos
	Fabs
	Exp
	Log
	Floor
)

var mathOpNames = [...]string{
	Sqrt: "sqrt", Sin: "sin", Cos: "cos", Fabs: "fabs",
	Exp: "exp", Log: "log", Floor: "floor",
}

// String returns the mnemonic of the intrinsic.
func (op MathOp) String() string { return mathOpNames[op] }

// MathOpByName returns the intrinsic named name.
func MathOpByName(name string) (MathOp, bool) {
	for op, n := range mathOpNames {
		if n == name {
			return MathOp(op), true
		}
	}
	return 0, false
}

// Math is a unary floating-point intrinsic (sqrt, sin, ...). The machine
// model charges it as a heavyweight floating-point operation.
type Math struct {
	instrBase
	Op MathOp
	X  Value
}

// NewMath returns the intrinsic op(x).
func NewMath(op MathOp, x Value) *Math {
	m := &Math{Op: op, X: x}
	m.typ = FloatT
	return m
}

// Operands implements Instr.
func (m *Math) Operands() []Value { return []Value{m.X} }

// SetOperand implements Instr.
func (m *Math) SetOperand(i int, v Value) {
	if i != 0 {
		panic("ir: math operand index")
	}
	m.X = v
}

// Math inserts the intrinsic op(x).
func (bd *Builder) Math(op MathOp, x Value) Value { return bd.insert(NewMath(op, x)).(Value) }
