package ir

import "sort"

// Loop is a natural loop discovered from a back edge. Loops form a forest;
// Parent is nil for top-level loops.
type Loop struct {
	Header *Block
	// Latches are the in-loop predecessors of the header.
	Latches []*Block
	// Blocks is the set of blocks in the loop (including Header), in
	// function order.
	Blocks []*Block
	// Parent is the innermost enclosing loop, if any.
	Parent *Loop
	// Children are the loops nested immediately inside this one.
	Children []*Loop

	blockSet map[*Block]bool
}

// Contains reports whether b belongs to the loop.
func (l *Loop) Contains(b *Block) bool { return l.blockSet[b] }

// Depth returns the nesting depth (1 for a top-level loop).
func (l *Loop) Depth() int {
	d := 0
	for p := l; p != nil; p = p.Parent {
		d++
	}
	return d
}

// Preheader returns the unique out-of-loop predecessor of the header, or nil
// if there is none (or more than one).
func (l *Loop) Preheader() *Block {
	var ph *Block
	for _, p := range l.Header.fn.Preds()[l.Header] {
		if l.Contains(p) {
			continue
		}
		if ph != nil {
			return nil
		}
		ph = p
	}
	return ph
}

// Exits returns the out-of-loop successors of in-loop blocks, deduplicated.
func (l *Loop) Exits() []*Block {
	seen := make(map[*Block]bool)
	var exits []*Block
	for _, b := range l.Blocks {
		for _, s := range b.Succs() {
			if !l.Contains(s) && !seen[s] {
				seen[s] = true
				exits = append(exits, s)
			}
		}
	}
	return exits
}

// LoopInfo holds the loop forest of a function.
type LoopInfo struct {
	// Top holds the outermost loops in header order.
	Top []*Loop
	// ByHeader maps a header block to its loop.
	ByHeader map[*Block]*Loop
	// Of maps every block to the innermost loop containing it.
	Of map[*Block]*Loop
}

// FindLoops discovers the natural loops of f using its dominator tree.
// Back edges n→h with h dominating n define loops; loops sharing a header are
// merged, and the forest is built by containment.
func FindLoops(f *Func, dt *DomTree) *LoopInfo {
	li := &LoopInfo{ByHeader: make(map[*Block]*Loop), Of: make(map[*Block]*Loop)}
	preds := f.Preds()

	// Discover loops per header.
	order := f.ReversePostorder()
	index := make(map[*Block]int, len(order))
	for i, b := range order {
		index[b] = i
	}
	for _, b := range order {
		for _, s := range b.Succs() {
			if dt.Reachable(s) && dt.Dominates(s, b) {
				// Back edge b→s.
				l := li.ByHeader[s]
				if l == nil {
					l = &Loop{Header: s, blockSet: map[*Block]bool{s: true}}
					li.ByHeader[s] = l
				}
				l.Latches = append(l.Latches, b)
				// Walk predecessors backwards from the latch.
				work := []*Block{b}
				for len(work) > 0 {
					n := work[len(work)-1]
					work = work[:len(work)-1]
					if l.blockSet[n] {
						continue
					}
					l.blockSet[n] = true
					for _, p := range preds[n] {
						if dt.Reachable(p) {
							work = append(work, p)
						}
					}
				}
			}
		}
	}

	// Materialize Blocks slices in stable (RPO) order.
	var loops []*Loop
	for _, l := range li.ByHeader {
		for _, b := range order {
			if l.blockSet[b] {
				l.Blocks = append(l.Blocks, b)
			}
		}
		loops = append(loops, l)
	}
	// Sort by size ascending so that the innermost loop claims blocks first.
	sort.Slice(loops, func(i, j int) bool {
		if len(loops[i].Blocks) != len(loops[j].Blocks) {
			return len(loops[i].Blocks) < len(loops[j].Blocks)
		}
		return index[loops[i].Header] < index[loops[j].Header]
	})
	for _, l := range loops {
		for _, b := range l.Blocks {
			if li.Of[b] == nil {
				li.Of[b] = l
			}
		}
	}
	// Build the parent relation: the parent of l is the smallest loop that
	// strictly contains l's header and is not l itself.
	for _, l := range loops {
		var best *Loop
		for _, cand := range loops {
			if cand == l || !cand.blockSet[l.Header] {
				continue
			}
			if !containsAll(cand.blockSet, l.Blocks) {
				continue
			}
			if best == nil || len(cand.Blocks) < len(best.Blocks) {
				best = cand
			}
		}
		l.Parent = best
		if best != nil {
			best.Children = append(best.Children, l)
		} else {
			li.Top = append(li.Top, l)
		}
	}
	sort.Slice(li.Top, func(i, j int) bool { return index[li.Top[i].Header] < index[li.Top[j].Header] })
	for _, l := range loops {
		sort.Slice(l.Children, func(i, j int) bool {
			return index[l.Children[i].Header] < index[l.Children[j].Header]
		})
	}
	return li
}

func containsAll(set map[*Block]bool, blocks []*Block) bool {
	for _, b := range blocks {
		if !set[b] {
			return false
		}
	}
	return true
}

// LoopDepth returns the nesting depth of b (0 when outside all loops).
func (li *LoopInfo) LoopDepth(b *Block) int {
	l := li.Of[b]
	if l == nil {
		return 0
	}
	return l.Depth()
}

// AllLoops returns every loop in the forest, outermost first.
func (li *LoopInfo) AllLoops() []*Loop {
	var all []*Loop
	var walk func(l *Loop)
	walk = func(l *Loop) {
		all = append(all, l)
		for _, c := range l.Children {
			walk(c)
		}
	}
	for _, l := range li.Top {
		walk(l)
	}
	return all
}
