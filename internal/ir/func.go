package ir

import "fmt"

// Block is a basic block: a straight-line sequence of instructions ending in
// exactly one terminator.
type Block struct {
	Name   string
	Instrs []Instr
	fn     *Func
}

// Func returns the function containing the block.
func (b *Block) Func() *Func { return b.fn }

// Term returns the block's terminator, or nil if the block is unterminated.
func (b *Block) Term() Terminator {
	if len(b.Instrs) == 0 {
		return nil
	}
	t, _ := b.Instrs[len(b.Instrs)-1].(Terminator)
	return t
}

// Pos returns the block's best source position: the first instruction that
// carries a valid one. Diagnostics that point at blocks (e.g. loop headers in
// the WCEC analysis) use this to stay clickable after passes rewrite the CFG.
func (b *Block) Pos() Pos {
	for _, in := range b.Instrs {
		if p := in.Pos(); p.IsValid() {
			return p
		}
	}
	return Pos{}
}

// Succs returns the successor blocks.
func (b *Block) Succs() []*Block {
	t := b.Term()
	if t == nil {
		return nil
	}
	return t.Targets()
}

// Append adds in at the end of the block (before nothing; callers must keep
// the terminator last themselves — use the Builder for convenience).
func (b *Block) Append(in Instr) {
	in.setParent(b)
	in.setID(b.fn.nextID())
	b.Instrs = append(b.Instrs, in)
}

// InsertBefore inserts in immediately before pos. It panics if pos is not in
// the block.
func (b *Block) InsertBefore(in Instr, pos Instr) {
	for i, x := range b.Instrs {
		if x == pos {
			in.setParent(b)
			in.setID(b.fn.nextID())
			b.Instrs = append(b.Instrs, nil)
			copy(b.Instrs[i+1:], b.Instrs[i:])
			b.Instrs[i] = in
			return
		}
	}
	panic("ir: InsertBefore position not found")
}

// Remove deletes in from the block.
func (b *Block) Remove(in Instr) {
	for i, x := range b.Instrs {
		if x == in {
			b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
			in.setParent(nil)
			return
		}
	}
	panic("ir: Remove: instruction not in block")
}

// Phis returns the phi instructions at the head of the block.
func (b *Block) Phis() []*Phi {
	var phis []*Phi
	for _, in := range b.Instrs {
		p, ok := in.(*Phi)
		if !ok {
			break
		}
		phis = append(phis, p)
	}
	return phis
}

// FirstNonPhi returns the index of the first non-phi instruction.
func (b *Block) FirstNonPhi() int {
	for i, in := range b.Instrs {
		if _, ok := in.(*Phi); !ok {
			return i
		}
	}
	return len(b.Instrs)
}

// Func is an IR function. Blocks[0] is the entry block.
type Func struct {
	Name    string
	Params  []*Param
	RetType *Type
	Blocks  []*Block

	// IsTask marks functions that the runtime schedules as tasks; the DAE
	// pass only generates access versions for tasks.
	IsTask bool

	nid int
}

// NewFunc returns an empty function.
func NewFunc(name string, ret *Type, params []*Param) *Func {
	for i, p := range params {
		p.Index = i
	}
	return &Func{Name: name, Params: params, RetType: ret}
}

// NewBlock appends a fresh empty block named name to the function.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{Name: f.uniqueBlockName(name), fn: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

func (f *Func) uniqueBlockName(name string) string {
	if name == "" {
		name = "bb"
	}
	used := make(map[string]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		used[b.Name] = true
	}
	if !used[name] {
		return name
	}
	for i := 1; ; i++ {
		cand := fmt.Sprintf("%s.%d", name, i)
		if !used[cand] {
			return cand
		}
	}
}

// Entry returns the entry block.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// nextID hands out SSA numbers for printing.
func (f *Func) nextID() int {
	f.nid++
	return f.nid
}

// RemoveBlock deletes b from the function and drops phi edges from it in all
// successors.
func (f *Func) RemoveBlock(b *Block) {
	for _, s := range b.Succs() {
		for _, p := range s.Phis() {
			p.RemoveIncoming(b)
		}
	}
	for i, x := range f.Blocks {
		if x == b {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			return
		}
	}
	panic("ir: RemoveBlock: block not in function")
}

// Preds returns the predecessor map of the function's CFG.
func (f *Func) Preds() map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		preds[b] = nil
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// Instrs calls fn for every instruction, in block order.
func (f *Func) Instrs(fn func(Instr)) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			fn(in)
		}
	}
}

// NumInstrs returns the total number of instructions in the function.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Param returns the parameter named name, or nil.
func (f *Func) Param(name string) *Param {
	for _, p := range f.Params {
		if p.Nam == name {
			return p
		}
	}
	return nil
}

// UseCounts returns, for every instruction result used anywhere in f, the
// number of operand slots that reference it.
func (f *Func) UseCounts() map[Value]int {
	uses := make(map[Value]int)
	f.Instrs(func(in Instr) {
		for _, op := range in.Operands() {
			if op == nil {
				continue
			}
			if _, ok := op.(Instr); ok {
				uses[op]++
			}
		}
	})
	return uses
}

// ReplaceAllUses rewrites every operand that references old to new, across
// the whole function.
func (f *Func) ReplaceAllUses(old, new Value) {
	f.Instrs(func(in Instr) {
		ops := in.Operands()
		for i, op := range ops {
			if op == old {
				in.SetOperand(i, new)
			}
		}
	})
}

// ReversePostorder returns the blocks of f in reverse postorder of a DFS from
// the entry. Unreachable blocks are omitted.
func (f *Func) ReversePostorder() []*Block {
	seen := make(map[*Block]bool, len(f.Blocks))
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs() {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if e := f.Entry(); e != nil {
		dfs(e)
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// RemoveUnreachable deletes blocks not reachable from the entry and cleans up
// phi edges that referenced them. It returns the number of removed blocks.
func (f *Func) RemoveUnreachable() int {
	reach := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.ReversePostorder() {
		reach[b] = true
	}
	var dead []*Block
	for _, b := range f.Blocks {
		if !reach[b] {
			dead = append(dead, b)
		}
	}
	for _, b := range dead {
		f.RemoveBlock(b)
	}
	return len(dead)
}

// Module is a collection of functions.
type Module struct {
	Name  string
	Funcs []*Func
}

// NewModule returns an empty module.
func NewModule(name string) *Module { return &Module{Name: name} }

// AddFunc appends f to the module. It panics on duplicate names.
func (m *Module) AddFunc(f *Func) {
	if m.Func(f.Name) != nil {
		panic("ir: duplicate function " + f.Name)
	}
	m.Funcs = append(m.Funcs, f)
}

// RemoveFunc deletes the function named name, reporting whether it existed.
// The caller is responsible for ensuring no remaining call references it.
func (m *Module) RemoveFunc(name string) bool {
	for i, f := range m.Funcs {
		if f.Name == name {
			m.Funcs = append(m.Funcs[:i], m.Funcs[i+1:]...)
			return true
		}
	}
	return false
}

// Func returns the function named name, or nil.
func (m *Module) Func(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Tasks returns the functions marked as tasks, in module order.
func (m *Module) Tasks() []*Func {
	var ts []*Func
	for _, f := range m.Funcs {
		if f.IsTask {
			ts = append(ts, f)
		}
	}
	return ts
}
