package ir

import (
	"strings"
	"testing"
)

func TestParseCountLoopRoundTrip(t *testing.T) {
	f, _, _, _ := buildCountLoop(t)
	m := NewModule("m")
	m.AddFunc(f)

	s1 := m.String()
	m2, err := ParseModule(s1)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, s1)
	}
	s2 := m2.String()
	m3, err := ParseModule(s2)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, s2)
	}
	s3 := m3.String()
	if s2 != s3 {
		t.Errorf("printing is not idempotent after parse:\n--- s2:\n%s\n--- s3:\n%s", s2, s3)
	}
	if m2.Name != "m" {
		t.Errorf("module name = %q", m2.Name)
	}
	g := m2.Func("sum")
	if g == nil {
		t.Fatal("parsed module lacks @sum")
	}
	if len(g.Blocks) != 3 {
		t.Errorf("blocks = %d, want 3", len(g.Blocks))
	}
	if g.Entry().Name != "entry" {
		t.Errorf("entry = %q", g.Entry().Name)
	}
}

func TestParsePreservesSemantics(t *testing.T) {
	// A function exercising every instruction kind that can appear in task
	// code: arithmetic, compares, casts, math, select, memory, phis, calls.
	src := `; module demo
func f64 @helper(f64 %x) {
entry:
  %t1 = fmul %x, 2.5
  ret %t1
}
task void @k(f64* %A, i64* %B, i64 %n) {
entry:
  %t0 = alloca i64 ; tmp
  store 7, %t0
  br %loop
loop:
  %t2 = phi i64 [0, %entry], [%t9, %loop] ; i
  %t3 = gep %B dims[%n] idx[%t2]
  %t4 = load i64, %t3
  %t5 = gep %A dims[%n] idx[%t4]
  prefetch %t5
  %t6 = load f64, %t5
  %t7 = call @helper(%t6)
  %t8 = sitofp %t2
  %t10 = fadd %t7, %t8
  %t11 = sqrt %t10
  store %t11, %t5
  %t9 = add %t2, 1
  %t12 = icmp lt %t9, %n
  br %t12, %loop, %exit
exit:
  %t13 = load i64, %t0
  %t14 = icmp gt %t13, 0
  %t15 = select %t14, 1.5, 2.5
  %t16 = gep %A dims[%n] idx[0]
  store %t15, %t16
  ret void
}
`
	m, err := ParseModule(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	k := m.Func("k")
	if !k.IsTask {
		t.Error("@k should be a task")
	}
	if m.Func("helper").IsTask {
		t.Error("@helper should not be a task")
	}
	// Round trip preserves structure counts.
	m2, err := ParseModule(m.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, m)
	}
	if m2.Func("k").NumInstrs() != k.NumInstrs() {
		t.Errorf("instruction count changed: %d vs %d", m2.Func("k").NumInstrs(), k.NumInstrs())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"bad type", "func i32 @f() {\nentry:\n  ret void\n}", "unknown type"},
		{"bad instr", "func void @f() {\nentry:\n  frobnicate 1, 2\n  ret void\n}", "unknown instruction"},
		{"undefined value", "func void @f() {\nentry:\n  %t1 = add %nope, 1\n  ret void\n}", "undefined value"},
		{"undefined callee", "func void @f() {\nentry:\n  call @ghost()\n  ret void\n}", "undefined"},
		{"no close", "func void @f() {\nentry:\n  ret void\n", "missing closing"},
		{"bad float", "func void @f() {\nentry:\n  %t1 = fadd 1.x, 2.0\n  ret void\n}", "bad float"},
		{"bad pred", "func void @f() {\nentry:\n  %t1 = icmp zz 1, 2\n  ret void\n}", "predicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseModule(tc.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseFuncSingle(t *testing.T) {
	f, err := ParseFunc("func i64 @id(i64 %x) {\nentry:\n  ret %x\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "id" || len(f.Params) != 1 {
		t.Errorf("parsed signature wrong: %s", f)
	}
	if _, err := ParseFunc("func void @a() {\nentry:\n  ret void\n}\nfunc void @b() {\nentry:\n  ret void\n}\n"); err == nil {
		t.Error("ParseFunc should reject multiple functions")
	}
}

func TestFloatConstantsRoundTrip(t *testing.T) {
	// The printer must keep float constants distinguishable from ints.
	for _, v := range []float64{1, 0, -3, 2.5, 1e20, 1e-20, 0.1} {
		ref := CF(v).Ref()
		if !strings.ContainsAny(ref, ".eE") {
			t.Errorf("CF(%g).Ref() = %q is ambiguous with an integer", v, ref)
		}
	}
	src := "func f64 @f() {\nentry:\n  %t1 = fadd 1.0, 2.0\n  ret %t1\n}\n"
	f, err := ParseFunc(src)
	if err != nil {
		t.Fatal(err)
	}
	bin := f.Entry().Instrs[0].(*Bin)
	if _, ok := bin.X.(*ConstFloat); !ok {
		t.Errorf("1.0 parsed as %T, want ConstFloat", bin.X)
	}
}
