package ir

import "testing"

func TestSplitBlock(t *testing.T) {
	f := NewFunc("f", IntT, []*Param{{Nam: "x", Typ: IntT}})
	x := f.Params[0]
	bd := NewBuilder(f)
	entry := bd.NewBlock("entry")
	bd.SetBlock(entry)
	a := bd.Bin(IAdd, x, CI(1))
	b := bd.Bin(IMul, a, CI(2))
	bd.Ret(b)

	nb := f.SplitBlock(entry, a.(Instr))
	if len(entry.Instrs) != 1 {
		t.Fatalf("entry retains %d instrs, want 1 (the add)", len(entry.Instrs))
	}
	if entry.Term() != nil {
		t.Error("entry must be unterminated after split")
	}
	if len(nb.Instrs) != 2 {
		t.Fatalf("new block has %d instrs, want mul+ret", len(nb.Instrs))
	}
	// Re-terminate and verify.
	entry.Append(NewBr(nb))
	if err := f.Verify(); err != nil {
		t.Fatalf("verify after split: %v\n%s", err, f)
	}
}

func TestSplitBlockFixesPhiEdges(t *testing.T) {
	// entry(condbr) → then → join(phi); splitting entry... rather: split the
	// `then` block and check the phi's pred is re-pointed at the new tail.
	c := &Param{Nam: "c", Typ: BoolT}
	f := NewFunc("f", IntT, []*Param{c})
	bd := NewBuilder(f)
	entry := bd.NewBlock("entry")
	then := bd.NewBlock("then")
	join := bd.NewBlock("join")

	bd.SetBlock(entry)
	bd.CondBr(c, then, join)

	bd.SetBlock(then)
	v := bd.Bin(IAdd, CI(1), CI(2))
	bd.Br(join)

	bd.SetBlock(join)
	phi := bd.Phi(IntT, "r")
	phi.AddIncoming(v, then)
	phi.AddIncoming(CI(0), entry)
	bd.Ret(phi)

	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	tail := f.SplitBlock(then, v.(Instr))
	then.Append(NewBr(tail))
	if phi.Incoming(tail) != v {
		t.Errorf("phi edge should move to the split tail:\n%s", f)
	}
	if phi.Incoming(then) != nil {
		t.Error("phi edge from the split head must be gone")
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, f)
	}
}

func TestAbsorb(t *testing.T) {
	g := NewFunc("g", IntT, []*Param{{Nam: "y", Typ: IntT}})
	bd := NewBuilder(g)
	ge := bd.NewBlock("entry")
	bd.SetBlock(ge)
	v := bd.Bin(IAdd, g.Params[0], CI(5))
	bd.Ret(v)

	f := NewFunc("f", IntT, []*Param{{Nam: "x", Typ: IntT}})
	fbd := NewBuilder(f)
	fe := fbd.NewBlock("entry")
	_ = fe

	entry := g.Entry()
	got := f.Absorb(g)
	if got != entry {
		t.Error("Absorb should return g's former entry")
	}
	if len(g.Blocks) != 0 {
		t.Error("g should be emptied")
	}
	if len(f.Blocks) != 2 {
		t.Fatalf("f has %d blocks, want 2", len(f.Blocks))
	}
	// Name collision resolved.
	if f.Blocks[0].Name == f.Blocks[1].Name {
		t.Error("absorbed block names must be unique")
	}
	if f.Blocks[1].Func() != f {
		t.Error("absorbed block must belong to f")
	}
}

func TestMoveBlockAfter(t *testing.T) {
	f := NewFunc("f", VoidT, nil)
	bd := NewBuilder(f)
	a := bd.NewBlock("a")
	b := bd.NewBlock("b")
	c := bd.NewBlock("c")
	bd.SetBlock(a)
	bd.Br(b)
	bd.SetBlock(b)
	bd.Br(c)
	bd.SetBlock(c)
	bd.Ret(nil)

	f.MoveBlockAfter(c, a) // order: a, c, b
	if f.Blocks[0] != a || f.Blocks[1] != c || f.Blocks[2] != b {
		t.Errorf("order = %s, %s, %s", f.Blocks[0].Name, f.Blocks[1].Name, f.Blocks[2].Name)
	}
	// CFG unchanged; still verifies.
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}
