package eval

import (
	"fmt"
	"sort"
	"strings"

	"dae/internal/analysis"
	"dae/internal/bench"
	"dae/internal/mem"
	"dae/internal/rt"
)

// CoverageRow cross-validates the compile-time prefetch-coverage figure of
// one task against the dynamically measured line coverage — the static
// companion to Table 1's TA% column.
type CoverageRow struct {
	// App and Task identify the benchmark task.
	App, Task string
	// Strategy is the access-generation path ("affine", "skeleton", "none").
	Strategy string
	// Exact is true when every sampled invocation's static figure came from
	// polyhedral enumeration rather than the may-read approximation.
	Exact bool
	// Static and Dynamic are line-coverage fractions in [0,1], aggregated
	// over the sampled invocations.
	Static, Dynamic float64
	// Invocations is the number of task instances sampled.
	Invocations int
}

// CoverageReport computes per-task static and dynamic prefetch coverage for
// the named apps (all seven when names is empty), sampling up to perTask
// invocations of each task type from the workload's batches. The static
// analysis instantiates each invocation's integer arguments; the dynamic
// measurement replays the same invocation on cloned data.
func CoverageReport(names []string, perTask int) ([]CoverageRow, error) {
	if perTask <= 0 {
		perTask = 3
	}
	lineBytes := int64(mem.EvalHierarchy().L1.LineBytes)
	var rows []CoverageRow
	for _, app := range bench.Apps() {
		if len(names) > 0 && !containsFold(names, app.Name) {
			continue
		}
		b, err := app.Build(bench.Auto)
		if err != nil {
			return nil, fmt.Errorf("eval: build %s: %w", app.Name, err)
		}
		appRows, err := coverageRows(app.Name, b, lineBytes, perTask)
		if err != nil {
			return nil, err
		}
		rows = append(rows, appRows...)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].App != rows[j].App {
			return rows[i].App < rows[j].App
		}
		return rows[i].Task < rows[j].Task
	})
	return rows, nil
}

// coverageRows samples invocations of each task type of one built benchmark.
// Exact static figures aggregate line-weighted (sum of covered lines over sum
// of read lines across invocations, mirroring the dynamic aggregation); once
// any invocation falls back to the may-read approximation the row reports the
// mean per-invocation fraction instead, since approximate "line counts" are
// reference counts, not lines, and must not be mixed into line sums.
func coverageRows(appName string, b *bench.Built, lineBytes int64, perTask int) ([]CoverageRow, error) {
	type agg struct {
		row         CoverageRow
		readS, covS int     // static line sums (exact invocations)
		readD, covD int     // dynamic line sums
		fracS       float64 // per-invocation static fraction sum
		exact       bool
	}
	aggs := make(map[string]*agg)
	for _, batch := range b.W.Batches {
		for _, t := range batch {
			a := aggs[t.Name]
			if a != nil && a.row.Invocations >= perTask {
				continue
			}
			fn := b.W.Module.Func(t.Name)
			if fn == nil {
				continue
			}
			if a == nil {
				strategy := "none"
				if res := b.Results[t.Name]; res != nil {
					strategy = res.Strategy.String()
				}
				a = &agg{
					row:   CoverageRow{App: appName, Task: t.Name, Strategy: strategy},
					exact: true,
				}
				aggs[t.Name] = a
			}
			access := b.W.Access[t.Name]
			env := make(map[string]int64)
			for i, p := range fn.Params {
				if i < len(t.Args) && p.Typ.IsInt() && t.Args[i].IsInt() {
					env[p.Nam] = t.Args[i].Int64()
				}
			}
			cov := analysis.StaticCoverage(fn, access, env, lineBytes, 0)
			read, covered, err := analysis.DynamicCoverage(b.W.Module, fn, access, b.Heap, t.Args, lineBytes)
			if err != nil {
				return nil, fmt.Errorf("eval: dynamic coverage of %s/%s: %w", appName, t.Name, err)
			}
			a.row.Invocations++
			a.readD += read
			a.covD += covered
			a.fracS += cov.Fraction()
			if cov.Exact {
				a.readS += cov.ReadLines
				a.covS += cov.CoveredLines
			} else {
				a.exact = false
			}
		}
	}
	var rows []CoverageRow
	for _, a := range aggs {
		r := a.row
		r.Exact = a.exact
		if a.exact {
			r.Static = fraction(a.covS, a.readS)
		} else {
			r.Static = a.fracS / float64(r.Invocations)
		}
		r.Dynamic = fraction(a.covD, a.readD)
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Task < rows[j].Task })
	return rows, nil
}

func fraction(cov, read int) float64 {
	if read == 0 {
		return 1
	}
	return float64(cov) / float64(read)
}

func containsFold(names []string, name string) bool {
	for _, n := range names {
		if strings.EqualFold(n, name) {
			return true
		}
	}
	return false
}

// FormatCoverage renders the cross-validation table.
func FormatCoverage(rows []CoverageRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-14s %-9s %6s %8s %8s %5s\n",
		"app", "task", "strategy", "kind", "static", "dynamic", "inst")
	for _, r := range rows {
		kind := "exact"
		if !r.Exact {
			kind = "may"
		}
		fmt.Fprintf(&sb, "%-10s %-14s %-9s %6s %7.1f%% %7.1f%% %5d\n",
			r.App, r.Task, r.Strategy, kind, 100*r.Static, 100*r.Dynamic, r.Invocations)
	}
	return sb.String()
}

// RaceReport runs the polyhedral task-overlap detector over the named apps'
// workloads (all seven when names is empty), returning per-app diagnostics.
// The paper's benchmarks are data-race free by construction, so any SevError
// diagnostic here points at a bug in either the benchmark or the detector.
func RaceReport(names []string) (map[string][]analysis.Diagnostic, error) {
	out := make(map[string][]analysis.Diagnostic)
	for _, app := range bench.Apps() {
		if len(names) > 0 && !containsFold(names, app.Name) {
			continue
		}
		b, err := app.Build(bench.Auto)
		if err != nil {
			return nil, fmt.Errorf("eval: build %s: %w", app.Name, err)
		}
		out[app.Name] = rt.CheckRaces(b.W)
	}
	return out, nil
}
