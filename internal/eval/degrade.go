package eval

import (
	"fmt"
	"sort"
	"strings"

	"dae/internal/rt"
)

// DegradationRow summarizes runtime supervision outcomes for one traced run:
// which task types lost their access variant (and to what fault class), and
// how many task executions ran degraded or failed.
type DegradationRow struct {
	// App and Run identify the traced run ("coupled", "manual-dae",
	// "compiler-dae").
	App, Run string
	// Quarantined maps quarantined task types to their fault class.
	Quarantined map[string]string
	// DegradedTasks counts task executions demoted to coupled.
	DegradedTasks int
	// FailedTasks counts task executions whose execute phase faulted.
	FailedTasks int
}

// DegradationRows scans collected data for supervision outcomes, returning
// one row per run that degraded (none for a fully healthy collection), in
// deterministic app-then-run order.
func DegradationRows(data []*AppData) []DegradationRow {
	var rows []DegradationRow
	for _, d := range data {
		for _, run := range []struct {
			kind  string
			trace *rt.Trace
		}{
			{runCAE.String(), d.CAE},
			{runManual.String(), d.Manual},
			{runAuto.String(), d.Auto},
		} {
			if run.trace == nil || !run.trace.Degraded() {
				continue
			}
			row := DegradationRow{App: d.Name, Run: run.kind, Quarantined: run.trace.Quarantined}
			for i := range run.trace.Records {
				if run.trace.Records[i].Degraded {
					row.DegradedTasks++
				}
				if run.trace.Records[i].Failed {
					row.FailedTasks++
				}
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// AnyDegraded reports whether any run in the collection degraded.
func AnyDegraded(data []*AppData) bool {
	return len(DegradationRows(data)) > 0
}

// FormatDegradation renders the degradation summary table the CLIs print
// when a collection completes degraded (exit code 3): one line per degraded
// run naming the quarantined task types with their fault classes.
func FormatDegradation(rows []DegradationRow) string {
	if len(rows) == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d run(s) completed degraded:\n", len(rows))
	fmt.Fprintf(&sb, "  %-10s %-14s %9s %7s %s\n", "app", "run", "degraded", "failed", "quarantined tasks")
	for _, r := range rows {
		names := make([]string, 0, len(r.Quarantined))
		for name := range r.Quarantined {
			names = append(names, name)
		}
		sort.Strings(names)
		var q []string
		for _, name := range names {
			q = append(q, fmt.Sprintf("%s (%s)", name, r.Quarantined[name]))
		}
		detail := "-"
		if len(q) > 0 {
			detail = strings.Join(q, ", ")
		}
		fmt.Fprintf(&sb, "  %-10s %-14s %9d %7d %s\n", r.App, r.Run, r.DegradedTasks, r.FailedTasks, detail)
	}
	sb.WriteString("(degraded tasks ran coupled at the fixed frequency; their DVFS benefit is lost)\n")
	return sb.String()
}
