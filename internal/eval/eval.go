// Package eval reproduces the paper's evaluation: Table 1 (application
// characteristics), Figure 3 (time/energy/EDP of the five configurations
// normalized to coupled execution at fmax), Figure 4 (per-frequency runtime
// and energy profiles for Cholesky, FFT and LibQ), and the §6.1 zero-latency
// projection. One trace per program version feeds every frequency policy,
// exactly as the paper combines per-frequency profiling with its power model.
package eval

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"time"

	"dae/internal/bench"
	"dae/internal/dae"
	"dae/internal/fault"
	"dae/internal/fault/inject"
	"dae/internal/rt"
)

// AppData bundles the three traces of one benchmark.
type AppData struct {
	Name string
	// CAE is the coupled trace (no access phases).
	CAE *rt.Trace
	// Manual is the decoupled trace with hand-written access versions.
	Manual *rt.Trace
	// Auto is the decoupled trace with compiler-generated access versions.
	Auto *rt.Trace
	// Results describes the compiler's per-task generation decisions. When
	// the data came from an on-disk trace-cache entry, only the summary
	// fields are populated (the IR functions are not persisted).
	Results map[string]*dae.Result
}

// RefineSpec requests profile-guided prefetch pruning (dae.RefineAccess) on
// the compiler-generated access versions before the decoupled Auto trace.
type RefineSpec struct {
	Options dae.RefineOptions
	// PerTask is the number of representative task instances profiled per
	// task type.
	PerTask int
}

// CollectOptions configure the trace-collection pipeline.
type CollectOptions struct {
	// Workers bounds the number of concurrent (app, run) trace collections;
	// values <= 0 mean runtime.GOMAXPROCS(0). Every run is self-contained
	// (own build, heap, interpreter environments and caches), so results are
	// byte-identical to a sequential collection regardless of Workers.
	Workers int
	// Cache, when non-nil, memoizes each (app, run, config) trace so that
	// repeated collections — e.g. the refined re-trace, which changes only
	// the Auto run — reuse prior work instead of re-simulating.
	Cache *TraceCache
	// Refine, when non-nil, applies profile-guided pruning to the Auto run.
	Refine *RefineSpec
	// RunTimeout, when positive, bounds each individual (app, run)
	// collection; a run that exceeds it fails with fault.ErrTimeout while
	// the other runs complete normally.
	RunTimeout time.Duration
	// Inject, when non-nil, is the fault-injection hook consulted at every
	// pipeline boundary (tests only; nil in production).
	Inject inject.Hook
	// InjectPhase, when non-nil, is consulted by the runtime supervisor
	// immediately before every task phase of every run, with the run's app
	// and kind bound in (tests only; nil in production). An inject.Injector's
	// PhaseFunc has exactly this signature.
	InjectPhase func(app, kind, task string, access bool) error
}

// runKind identifies one of the three independent traced runs of an app.
type runKind int

const (
	runCAE    runKind = iota // compiler build, coupled (no access phases)
	runManual                // manual build, decoupled
	runAuto                  // compiler build, decoupled
	numRunKinds
)

func (k runKind) String() string {
	switch k {
	case runCAE:
		return "coupled"
	case runManual:
		return "manual-dae"
	default:
		return "compiler-dae"
	}
}

// runOutput is the cacheable product of one traced run. Results is set only
// for runCAE (one copy per app is enough; it is identical for every compiler
// build of the same benchmark).
type runOutput struct {
	Trace   *rt.Trace
	Results map[string]*dae.Result
}

// guard runs one pipeline stage under panic-to-error recovery and, when an
// injection hook is installed, lets the hook fail (or crash) the stage
// first. A panic anywhere below fn — front end, optimizer, generator,
// interpreter — degrades to a typed fault.ErrPanic error on this one run
// instead of taking down the whole collection.
func guard(site inject.Site, app string, kind runKind, hook inject.Hook, fn func() error) (err error) {
	defer fault.Recover(&err, string(site))
	if hook != nil {
		if ierr := hook(site, app, kind.String()); ierr != nil {
			return ierr
		}
	}
	return fn()
}

// collectRun builds and traces one (app, kind) pair, verifying the computed
// output against the Go reference. Each of the three pipeline boundaries —
// compile, access generation, trace run — is individually guarded.
func collectRun(ctx context.Context, app bench.App, kind runKind, cfg rt.TraceConfig, opts CollectOptions) (*runOutput, error) {
	if opts.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.RunTimeout)
		defer cancel()
	}
	v := bench.Auto
	if kind == runManual {
		v = bench.Manual
	}
	var b *bench.Built
	if err := guard(inject.SiteCompile, app.Name, kind, opts.Inject, func() (err error) {
		b, err = app.Build(v)
		return err
	}); err != nil {
		return nil, err
	}
	if kind == runAuto && opts.Refine != nil {
		if err := guard(inject.SiteAccessGen, app.Name, kind, opts.Inject, func() error {
			_, err := b.Refine(opts.Refine.Options, opts.Refine.PerTask)
			return err
		}); err != nil {
			return nil, err
		}
	}
	c := cfg
	c.Decoupled = kind != runCAE
	if opts.InjectPhase != nil {
		app, kind := app.Name, kind.String()
		c.PhaseHook = func(task string, access bool) error {
			return opts.InjectPhase(app, kind, task, access)
		}
	}
	var tr *rt.Trace
	if err := guard(inject.SiteTraceRun, app.Name, kind, opts.Inject, func() error {
		var err error
		tr, err = rt.RunContext(ctx, b.W, c)
		if err != nil {
			return err
		}
		return b.Verify()
	}); err != nil {
		return nil, err
	}
	out := &runOutput{Trace: tr}
	if kind == runCAE {
		out.Results = b.Results
	}
	return out, nil
}

// cachedRun resolves one run through the cache (when present). Concurrent
// collections that miss on the same key — two goroutines, two experiments,
// two server requests sharing a cache — collapse onto one simulation via the
// cache's singleflight; the others wait and share the result.
func cachedRun(ctx context.Context, app bench.App, kind runKind, cfg rt.TraceConfig, opts CollectOptions) (*runOutput, error) {
	if err := ctx.Err(); err != nil {
		// The collection was canceled before this run started; fail fast so
		// the pool drains without touching the simulator.
		return nil, fault.Wrap(fault.KindTimeout, err)
	}
	if opts.Cache == nil {
		return collectRun(ctx, app, kind, cfg, opts)
	}
	key := runKey(app.Name, kind, cfg, opts.Refine)
	for {
		out, err, shared := opts.Cache.resolve(key, func() (*runOutput, error) {
			return collectRun(ctx, app, kind, cfg, opts)
		})
		if shared && err != nil && errors.Is(err, fault.ErrTimeout) && ctx.Err() == nil {
			// The in-flight collection we joined timed out under the
			// *leader's* context, not ours: retry under our own. The loop
			// terminates because each pass either makes us the leader
			// (terminal either way) or follows a fresh flight whose leader
			// had a live context when it started.
			continue
		}
		return out, err
	}
}

// forEachJob runs do(0..n-1) on a bounded worker pool. workers <= 0 selects
// runtime.GOMAXPROCS(0); a single worker degenerates to a plain loop.
func forEachJob(n, workers int, do func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			do(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				do(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// collectApps fans the (app, run) pairs of apps out over the worker pool and
// reassembles them in deterministic app order. All failures are reported as
// *RunError values, joined in job order, so one broken benchmark does not
// mask the others and summaries stay deterministic under any worker count.
// Cancellation fails the not-yet-started runs fast (cachedRun's entry check)
// and interrupts in-flight interpretation, so the pool always drains.
func collectApps(ctx context.Context, apps []bench.App, cfg rt.TraceConfig, opts CollectOptions) ([]*AppData, error) {
	n := len(apps) * int(numRunKinds)
	outs := make([]*runOutput, n)
	errs := make([]error, n)
	forEachJob(n, opts.Workers, func(i int) {
		app, kind := apps[i/int(numRunKinds)], runKind(i%int(numRunKinds))
		out, err := cachedRun(ctx, app, kind, cfg, opts)
		if err != nil {
			errs[i] = &RunError{App: app.Name, Kind: kind.String(), Err: err}
			return
		}
		outs[i] = out
	})
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	data := make([]*AppData, len(apps))
	for ai, app := range apps {
		base := ai * int(numRunKinds)
		data[ai] = &AppData{
			Name:    app.Name,
			CAE:     outs[base+int(runCAE)].Trace,
			Manual:  outs[base+int(runManual)].Trace,
			Auto:    outs[base+int(runAuto)].Trace,
			Results: outs[base+int(runCAE)].Results,
		}
	}
	return data, nil
}

// Collect builds and traces all three versions of one app, verifying each
// run's computed output against the Go reference.
func Collect(app bench.App, cfg rt.TraceConfig) (*AppData, error) {
	return CollectWith(context.Background(), app, cfg, CollectOptions{})
}

// CollectWith is Collect with explicit pipeline options, under ctx:
// cancellation interrupts in-flight interpretation and fails the remaining
// runs fast with fault.KindTimeout errors.
func CollectWith(ctx context.Context, app bench.App, cfg rt.TraceConfig, opts CollectOptions) (*AppData, error) {
	data, err := collectApps(ctx, []bench.App{app}, cfg, opts)
	if err != nil {
		return nil, err
	}
	return data[0], nil
}

// CollectRefined is Collect with profile-guided prefetch pruning
// (dae.RefineAccess) applied to the compiler-generated access versions
// before the decoupled trace.
func CollectRefined(app bench.App, cfg rt.TraceConfig, ropts dae.RefineOptions, perTask int) (*AppData, error) {
	return CollectWith(context.Background(), app, cfg,
		CollectOptions{Refine: &RefineSpec{Options: ropts, PerTask: perTask}})
}

// CollectAll gathers every benchmark, collecting traces in parallel across
// runtime.GOMAXPROCS(0) workers.
func CollectAll(cfg rt.TraceConfig) ([]*AppData, error) {
	return CollectAllWith(context.Background(), cfg, CollectOptions{})
}

// CollectAllWith is CollectAll with explicit pipeline options, under ctx
// (see CollectWith).
func CollectAllWith(ctx context.Context, cfg rt.TraceConfig, opts CollectOptions) ([]*AppData, error) {
	return collectApps(ctx, bench.Apps(), cfg, opts)
}

// GeoMean returns the geometric mean of xs.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Table1Row is one application-characteristics row (Table 1).
type Table1Row struct {
	App string
	// AffineLoops / TotalLoops is the per-task-type loop classification
	// aggregated over the app's tasks.
	AffineLoops int
	TotalLoops  int
	// Tasks is the number of task executions.
	Tasks int
	// TAPercent is the fraction of busy time spent in access phases, in
	// percent, under the min/max policy.
	TAPercent float64
	// TAMicros is the mean access-phase duration in µs.
	TAMicros float64
	// DegradedTasks counts task executions the runtime supervisor demoted to
	// coupled (quarantined access variant). Degraded tasks contribute no
	// access time, so a nonzero count deflates TA% — the column says so.
	DegradedTasks int
	// FailedTasks counts task executions whose execute phase faulted under
	// full degradation.
	FailedTasks int
	// EDPMinMax, EDPOptimal, and EDPRWCEC compare the frequency policies on
	// the compiler-DAE trace: EDP normalized to coupled execution at fmax.
	// EDPRWCEC is the intra-task remaining-WCEC policy driven by the static
	// bounds of internal/analysis/wcec; NaN (rendered "-") means the bounds
	// could not be computed for this app.
	EDPMinMax  float64
	EDPOptimal float64
	EDPRWCEC   float64
}

// Table1 computes the application characteristics from the Auto traces. The
// policy-EDP columns are evaluated sequentially from the traces (and, for
// rwcec, from a deterministic rebuild of the static bounds), so rows are
// byte-identical regardless of the Workers count used for collection.
func Table1(data []*AppData, m rt.Machine) []Table1Row {
	var rows []Table1Row
	for _, d := range data {
		met := rt.Evaluate(d.Auto, m, rt.PolicyMinMax)
		base := rt.Evaluate(d.CAE, m, rt.PolicyFixed)
		row := Table1Row{
			App:           d.Name,
			Tasks:         met.Tasks,
			TAPercent:     met.TAFraction() * 100,
			TAMicros:      met.MeanAccessSeconds() * 1e6,
			DegradedTasks: met.DegradedTasks,
			FailedTasks:   met.FailedTasks,
			EDPMinMax:     met.EDP / base.EDP,
			EDPOptimal:    rt.Evaluate(d.Auto, m, rt.PolicyOptimalEDP).EDP / base.EDP,
			EDPRWCEC:      rwcecEDP(d, m, base.EDP),
		}
		for _, r := range d.Results {
			row.AffineLoops += r.AffineLoops
			row.TotalLoops += r.TotalLoops
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig3Config identifies one of the five evaluated configurations.
type Fig3Config int

// Figure 3 configurations, in the paper's legend order.
const (
	CAEOptimal Fig3Config = iota
	ManualMinMax
	ManualOptimal
	AutoMinMax
	AutoOptimal
	NumFig3Configs
)

// String returns the legend label.
func (c Fig3Config) String() string {
	switch c {
	case CAEOptimal:
		return "CAE (Optimal f.)"
	case ManualMinMax:
		return "Manual DAE (Min/Max f.)"
	case ManualOptimal:
		return "Manual DAE (Optimal f.)"
	case AutoMinMax:
		return "Compiler DAE (Min/Max f.)"
	default:
		return "Compiler DAE (Optimal f.)"
	}
}

// Fig3Row holds, for one app, the three metrics of every configuration
// normalized to coupled execution at maximum frequency.
type Fig3Row struct {
	App    string
	Time   [NumFig3Configs]float64
	Energy [NumFig3Configs]float64
	EDP    [NumFig3Configs]float64
}

// Fig3 evaluates the five configurations for every app and appends a
// geometric-mean row.
func Fig3(data []*AppData, m rt.Machine) []Fig3Row {
	rows := make([]Fig3Row, 0, len(data)+1)
	for _, d := range data {
		base := rt.Evaluate(d.CAE, m, rt.PolicyFixed) // CAE @ fmax
		row := Fig3Row{App: d.Name}
		set := func(c Fig3Config, met rt.Metrics) {
			row.Time[c] = met.Time / base.Time
			row.Energy[c] = met.Energy / base.Energy
			row.EDP[c] = met.EDP / base.EDP
		}
		set(CAEOptimal, rt.Evaluate(d.CAE, m, rt.PolicyOptimalEDP))
		set(ManualMinMax, rt.Evaluate(d.Manual, m, rt.PolicyMinMax))
		set(ManualOptimal, rt.Evaluate(d.Manual, m, rt.PolicyOptimalEDP))
		set(AutoMinMax, rt.Evaluate(d.Auto, m, rt.PolicyMinMax))
		set(AutoOptimal, rt.Evaluate(d.Auto, m, rt.PolicyOptimalEDP))
		rows = append(rows, row)
	}
	gm := Fig3Row{App: "G.Mean"}
	for c := Fig3Config(0); c < NumFig3Configs; c++ {
		var ts, es, ps []float64
		for _, r := range rows {
			ts = append(ts, r.Time[c])
			es = append(es, r.Energy[c])
			ps = append(ps, r.EDP[c])
		}
		gm.Time[c] = GeoMean(ts)
		gm.Energy[c] = GeoMean(es)
		gm.EDP[c] = GeoMean(ps)
	}
	return append(rows, gm)
}

// Fig4Point is one bar of a Figure 4 profile: the per-core-average runtime
// (and energy) split into Prefetch (access phases), Task (execute phases),
// and O.S.I. (overhead/sequential/idle: DVFS transitions plus barrier idle).
type Fig4Point struct {
	ExecFreq  float64
	Prefetch  float64
	Task      float64
	OSI       float64
	PrefetchE float64
	TaskE     float64
	OSIE      float64
}

// Total returns the bar height (makespan).
func (p Fig4Point) Total() float64 { return p.Prefetch + p.Task + p.OSI }

// TotalE returns the total energy.
func (p Fig4Point) TotalE() float64 { return p.PrefetchE + p.TaskE + p.OSIE }

// Fig4Profile holds one benchmark's three per-frequency series.
type Fig4Profile struct {
	App    string
	CAE    []Fig4Point
	Manual []Fig4Point
	Auto   []Fig4Point
}

// Fig4 sweeps the execute frequency from fmin to fmax (access fixed at fmin
// for the DAE versions; CAE coupled at the swept frequency).
func Fig4(d *AppData, m rt.Machine) Fig4Profile {
	prof := Fig4Profile{App: d.Name}
	for _, lvl := range m.DVFS.Levels {
		mm := m
		mm.FixedFreq = lvl.Freq
		prof.CAE = append(prof.CAE, toFig4Point(rt.Evaluate(d.CAE, mm, rt.PolicyFixed), lvl.Freq, d.CAE.Cores))
		prof.Manual = append(prof.Manual, toFig4Point(rt.Evaluate(d.Manual, mm, rt.PolicyMinFixed), lvl.Freq, d.Manual.Cores))
		prof.Auto = append(prof.Auto, toFig4Point(rt.Evaluate(d.Auto, mm, rt.PolicyMinFixed), lvl.Freq, d.Auto.Cores))
	}
	return prof
}

func toFig4Point(met rt.Metrics, f float64, cores int) Fig4Point {
	c := float64(cores)
	p := Fig4Point{
		ExecFreq:  f,
		Prefetch:  met.AccessTime / c,
		Task:      met.ExecuteTime / c,
		PrefetchE: met.AccessEnergy,
		TaskE:     met.ExecuteEnergy,
		OSIE:      met.OtherEnergy,
	}
	p.OSI = met.Time - p.Prefetch - p.Task
	if p.OSI < 0 {
		p.OSI = 0
	}
	return p
}
