// Package eval reproduces the paper's evaluation: Table 1 (application
// characteristics), Figure 3 (time/energy/EDP of the five configurations
// normalized to coupled execution at fmax), Figure 4 (per-frequency runtime
// and energy profiles for Cholesky, FFT and LibQ), and the §6.1 zero-latency
// projection. One trace per program version feeds every frequency policy,
// exactly as the paper combines per-frequency profiling with its power model.
package eval

import (
	"fmt"
	"math"

	"dae/internal/bench"
	"dae/internal/dae"
	"dae/internal/rt"
)

// AppData bundles the three traces of one benchmark.
type AppData struct {
	Name string
	// CAE is the coupled trace (no access phases).
	CAE *rt.Trace
	// Manual is the decoupled trace with hand-written access versions.
	Manual *rt.Trace
	// Auto is the decoupled trace with compiler-generated access versions.
	Auto *rt.Trace
	// Results describes the compiler's per-task generation decisions.
	Results map[string]*dae.Result
}

// Collect builds and traces all three versions of one app, verifying each
// run's computed output against the Go reference.
func Collect(app bench.App, cfg rt.TraceConfig) (*AppData, error) {
	return collectApp(app, cfg, nil)
}

// CollectRefined is Collect with profile-guided prefetch pruning
// (dae.RefineAccess) applied to the compiler-generated access versions
// before the decoupled trace.
func CollectRefined(app bench.App, cfg rt.TraceConfig, ropts dae.RefineOptions, perTask int) (*AppData, error) {
	return collectApp(app, cfg, func(b *bench.Built) error {
		_, err := b.Refine(ropts, perTask)
		return err
	})
}

func collectApp(app bench.App, cfg rt.TraceConfig, refineAuto func(*bench.Built) error) (*AppData, error) {
	data := &AppData{Name: app.Name}

	run := func(v bench.Variant, decoupled bool) (*rt.Trace, map[string]*dae.Result, error) {
		b, err := app.Build(v)
		if err != nil {
			return nil, nil, err
		}
		if v == bench.Auto && decoupled && refineAuto != nil {
			if err := refineAuto(b); err != nil {
				return nil, nil, err
			}
		}
		c := cfg
		c.Decoupled = decoupled
		tr, err := rt.Run(b.W, c)
		if err != nil {
			return nil, nil, err
		}
		if err := b.Verify(); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", app.Name, err)
		}
		return tr, b.Results, nil
	}

	var err error
	if data.CAE, data.Results, err = run(bench.Auto, false); err != nil {
		return nil, err
	}
	if data.Manual, _, err = run(bench.Manual, true); err != nil {
		return nil, err
	}
	if data.Auto, _, err = run(bench.Auto, true); err != nil {
		return nil, err
	}
	return data, nil
}

// CollectAll gathers every benchmark.
func CollectAll(cfg rt.TraceConfig) ([]*AppData, error) {
	var out []*AppData
	for _, app := range bench.Apps() {
		d, err := Collect(app, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// GeoMean returns the geometric mean of xs.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Table1Row is one application-characteristics row (Table 1).
type Table1Row struct {
	App string
	// AffineLoops / TotalLoops is the per-task-type loop classification
	// aggregated over the app's tasks.
	AffineLoops int
	TotalLoops  int
	// Tasks is the number of task executions.
	Tasks int
	// TAPercent is the fraction of busy time spent in access phases, in
	// percent, under the min/max policy.
	TAPercent float64
	// TAMicros is the mean access-phase duration in µs.
	TAMicros float64
}

// Table1 computes the application characteristics from the Auto traces.
func Table1(data []*AppData, m rt.Machine) []Table1Row {
	var rows []Table1Row
	for _, d := range data {
		met := rt.Evaluate(d.Auto, m, rt.PolicyMinMax)
		row := Table1Row{
			App:       d.Name,
			Tasks:     met.Tasks,
			TAPercent: met.TAFraction() * 100,
			TAMicros:  met.MeanAccessSeconds() * 1e6,
		}
		for _, r := range d.Results {
			row.AffineLoops += r.AffineLoops
			row.TotalLoops += r.TotalLoops
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig3Config identifies one of the five evaluated configurations.
type Fig3Config int

// Figure 3 configurations, in the paper's legend order.
const (
	CAEOptimal Fig3Config = iota
	ManualMinMax
	ManualOptimal
	AutoMinMax
	AutoOptimal
	NumFig3Configs
)

// String returns the legend label.
func (c Fig3Config) String() string {
	switch c {
	case CAEOptimal:
		return "CAE (Optimal f.)"
	case ManualMinMax:
		return "Manual DAE (Min/Max f.)"
	case ManualOptimal:
		return "Manual DAE (Optimal f.)"
	case AutoMinMax:
		return "Compiler DAE (Min/Max f.)"
	default:
		return "Compiler DAE (Optimal f.)"
	}
}

// Fig3Row holds, for one app, the three metrics of every configuration
// normalized to coupled execution at maximum frequency.
type Fig3Row struct {
	App    string
	Time   [NumFig3Configs]float64
	Energy [NumFig3Configs]float64
	EDP    [NumFig3Configs]float64
}

// Fig3 evaluates the five configurations for every app and appends a
// geometric-mean row.
func Fig3(data []*AppData, m rt.Machine) []Fig3Row {
	rows := make([]Fig3Row, 0, len(data)+1)
	for _, d := range data {
		base := rt.Evaluate(d.CAE, m, rt.PolicyFixed) // CAE @ fmax
		row := Fig3Row{App: d.Name}
		set := func(c Fig3Config, met rt.Metrics) {
			row.Time[c] = met.Time / base.Time
			row.Energy[c] = met.Energy / base.Energy
			row.EDP[c] = met.EDP / base.EDP
		}
		set(CAEOptimal, rt.Evaluate(d.CAE, m, rt.PolicyOptimalEDP))
		set(ManualMinMax, rt.Evaluate(d.Manual, m, rt.PolicyMinMax))
		set(ManualOptimal, rt.Evaluate(d.Manual, m, rt.PolicyOptimalEDP))
		set(AutoMinMax, rt.Evaluate(d.Auto, m, rt.PolicyMinMax))
		set(AutoOptimal, rt.Evaluate(d.Auto, m, rt.PolicyOptimalEDP))
		rows = append(rows, row)
	}
	gm := Fig3Row{App: "G.Mean"}
	for c := Fig3Config(0); c < NumFig3Configs; c++ {
		var ts, es, ps []float64
		for _, r := range rows {
			ts = append(ts, r.Time[c])
			es = append(es, r.Energy[c])
			ps = append(ps, r.EDP[c])
		}
		gm.Time[c] = GeoMean(ts)
		gm.Energy[c] = GeoMean(es)
		gm.EDP[c] = GeoMean(ps)
	}
	return append(rows, gm)
}

// Fig4Point is one bar of a Figure 4 profile: the per-core-average runtime
// (and energy) split into Prefetch (access phases), Task (execute phases),
// and O.S.I. (overhead/sequential/idle: DVFS transitions plus barrier idle).
type Fig4Point struct {
	ExecFreq  float64
	Prefetch  float64
	Task      float64
	OSI       float64
	PrefetchE float64
	TaskE     float64
	OSIE      float64
}

// Total returns the bar height (makespan).
func (p Fig4Point) Total() float64 { return p.Prefetch + p.Task + p.OSI }

// TotalE returns the total energy.
func (p Fig4Point) TotalE() float64 { return p.PrefetchE + p.TaskE + p.OSIE }

// Fig4Profile holds one benchmark's three per-frequency series.
type Fig4Profile struct {
	App    string
	CAE    []Fig4Point
	Manual []Fig4Point
	Auto   []Fig4Point
}

// Fig4 sweeps the execute frequency from fmin to fmax (access fixed at fmin
// for the DAE versions; CAE coupled at the swept frequency).
func Fig4(d *AppData, m rt.Machine) Fig4Profile {
	prof := Fig4Profile{App: d.Name}
	for _, lvl := range m.DVFS.Levels {
		mm := m
		mm.FixedFreq = lvl.Freq
		prof.CAE = append(prof.CAE, toFig4Point(rt.Evaluate(d.CAE, mm, rt.PolicyFixed), lvl.Freq, d.CAE.Cores))
		prof.Manual = append(prof.Manual, toFig4Point(rt.Evaluate(d.Manual, mm, rt.PolicyMinFixed), lvl.Freq, d.Manual.Cores))
		prof.Auto = append(prof.Auto, toFig4Point(rt.Evaluate(d.Auto, mm, rt.PolicyMinFixed), lvl.Freq, d.Auto.Cores))
	}
	return prof
}

func toFig4Point(met rt.Metrics, f float64, cores int) Fig4Point {
	c := float64(cores)
	p := Fig4Point{
		ExecFreq:  f,
		Prefetch:  met.AccessTime / c,
		Task:      met.ExecuteTime / c,
		PrefetchE: met.AccessEnergy,
		TaskE:     met.ExecuteEnergy,
		OSIE:      met.OtherEnergy,
	}
	p.OSI = met.Time - p.Prefetch - p.Task
	if p.OSI < 0 {
		p.OSI = 0
	}
	return p
}
