package eval

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"dae/internal/bench"
	"dae/internal/fault"
	"dae/internal/fault/inject"
	"dae/internal/rt"
)

// encodeAll serializes every trace of a collection so runs can be compared
// byte-for-byte against a baseline.
func encodeAll(t *testing.T, data []*AppData) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	for _, d := range data {
		for _, run := range []struct {
			kind  string
			trace *rt.Trace
		}{
			{runCAE.String(), d.CAE},
			{runManual.String(), d.Manual},
			{runAuto.String(), d.Auto},
		} {
			if run.trace == nil {
				continue
			}
			b, err := rt.EncodeTrace(run.trace)
			if err != nil {
				t.Fatalf("encode %s/%s: %v", d.Name, run.kind, err)
			}
			out[d.Name+"/"+run.kind] = b
		}
	}
	return out
}

// TestAccessFaultsDegradeCollection is the PR's acceptance scenario:
// injecting an access-phase fault into 2 of the 21 benchmark runs must yield
// a complete, error-free collection where the affected task types are
// quarantined and re-run coupled, the other 19 runs are byte-identical to a
// fault-free baseline, and the degradation summary names the quarantined
// task types with their fault kinds.
func TestAccessFaultsDegradeCollection(t *testing.T) {
	ctx := context.Background()
	cfg := rt.DefaultTraceConfig()
	cfg.Degrade = rt.DegradeAccess

	baseline, err := CollectAllWith(ctx, cfg, CollectOptions{Workers: 4})
	if err != nil {
		t.Fatalf("fault-free baseline: %v", err)
	}
	if AnyDegraded(baseline) {
		t.Fatal("fault-free baseline reports degradation")
	}

	in := inject.New(
		inject.Rule{Site: inject.SiteAccessPhase, App: "LU", Kind: "compiler-dae",
			Mode: inject.ModeTrap, Trap: fault.TrapOutOfBounds, Once: true},
		inject.Rule{Site: inject.SiteAccessPhase, App: "FFT", Kind: "manual-dae",
			Mode: inject.ModePanic, Once: true},
	)
	data, err := CollectAllWith(ctx, cfg, CollectOptions{Workers: 4, InjectPhase: in.PhaseFunc()})
	if err != nil {
		t.Fatalf("supervised collection must complete despite access faults, got: %v", err)
	}
	if !AnyDegraded(data) {
		t.Fatal("injected access faults left no degradation mark")
	}

	rows := DegradationRows(data)
	if len(rows) != 2 {
		t.Fatalf("degraded rows = %d, want exactly the 2 injected runs: %+v", len(rows), rows)
	}
	// Rows follow app-then-run order: LU (app 0) before FFT (app 2).
	if rows[0].App != "LU" || rows[0].Run != "compiler-dae" {
		t.Errorf("rows[0] = %s/%s, want LU/compiler-dae", rows[0].App, rows[0].Run)
	}
	if rows[1].App != "FFT" || rows[1].Run != "manual-dae" {
		t.Errorf("rows[1] = %s/%s, want FFT/manual-dae", rows[1].App, rows[1].Run)
	}
	wantKind := []string{"trap", "panic"}
	for i, row := range rows {
		if len(row.Quarantined) == 0 {
			t.Errorf("%s/%s: no task type quarantined", row.App, row.Run)
		}
		for task, class := range row.Quarantined {
			if class != wantKind[i] {
				t.Errorf("%s/%s task %s quarantined as %q, want %q",
					row.App, row.Run, task, class, wantKind[i])
			}
		}
		if row.DegradedTasks == 0 {
			t.Errorf("%s/%s: quarantined run has no degraded task executions", row.App, row.Run)
		}
		if row.FailedTasks != 0 {
			t.Errorf("%s/%s: access faults must not fail tasks, got %d failed",
				row.App, row.Run, row.FailedTasks)
		}
	}

	// The 19 untouched runs are byte-identical to the fault-free baseline.
	base, got := encodeAll(t, baseline), encodeAll(t, data)
	if len(base) != len(got) {
		t.Fatalf("run count changed: baseline %d, degraded collection %d", len(base), len(got))
	}
	degraded := map[string]bool{"LU/compiler-dae": true, "FFT/manual-dae": true}
	same := 0
	for name, b := range base {
		if degraded[name] {
			if bytes.Equal(got[name], b) {
				t.Errorf("%s: expected a degraded trace, got bytes identical to baseline", name)
			}
			continue
		}
		if !bytes.Equal(got[name], b) {
			t.Errorf("%s: healthy run diverged from fault-free baseline", name)
		}
		same++
	}
	if same != len(base)-2 {
		t.Errorf("byte-identical healthy runs = %d, want %d", same, len(base)-2)
	}

	// The summary table names the quarantined task types and fault kinds.
	summary := FormatDegradation(rows)
	if !strings.Contains(summary, "2 run(s) completed degraded") {
		t.Errorf("summary missing degraded-run count:\n%s", summary)
	}
	for i, row := range rows {
		for task := range row.Quarantined {
			if !strings.Contains(summary, task+" ("+wantKind[i]+")") {
				t.Errorf("summary missing quarantined task %q (%s):\n%s", task, wantKind[i], summary)
			}
		}
	}
}

// TestExecuteFaultIsNeverSilentlyDegraded pins the no-masking rule at the
// collection level: an execute-phase fault must fail its run in every
// degradation mode, never quietly demote it.
func TestExecuteFaultIsNeverSilentlyDegraded(t *testing.T) {
	app, err := bench.AppByName("LibQ")
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []rt.DegradeMode{rt.DegradeOff, rt.DegradeAccess, rt.DegradeFull} {
		cfg := rt.DefaultTraceConfig()
		cfg.Degrade = mode
		in := inject.New(inject.Rule{Site: inject.SiteExecPhase, App: "LibQ", Kind: "coupled",
			Mode: inject.ModeTrap, Trap: fault.TrapDivByZero, Once: true})
		_, err := CollectWith(context.Background(), app, cfg,
			CollectOptions{Workers: 3, InjectPhase: in.PhaseFunc()})
		if err == nil {
			t.Fatalf("degrade=%s: execute-phase fault was silently absorbed", mode)
		}
		if !errors.Is(err, fault.ErrTrap) {
			t.Errorf("degrade=%s: error lost its trap class: %v", mode, err)
		}
		fails := Failures(err)
		if len(fails) != 1 || fails[0].App != "LibQ" || fails[0].Kind != "coupled" {
			t.Errorf("degrade=%s: failures = %+v, want exactly LibQ/coupled", mode, fails)
		}
	}
}

// TestDegradedTraceNotCached: a trace that degraded under injection must not
// poison the cache — a later fault-free collection through the same cache
// re-traces and comes back healthy.
func TestDegradedTraceNotCached(t *testing.T) {
	app, err := bench.AppByName("LU")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rt.DefaultTraceConfig()
	cfg.Degrade = rt.DegradeAccess
	cache := NewTraceCache("")
	ctx := context.Background()

	in := inject.New(inject.Rule{Site: inject.SiteAccessPhase, App: "LU", Kind: "compiler-dae",
		Mode: inject.ModeTrap, Trap: fault.TrapOutOfBounds, Once: true})
	hurt, err := CollectWith(ctx, app, cfg,
		CollectOptions{Workers: 3, Cache: cache, InjectPhase: in.PhaseFunc()})
	if err != nil {
		t.Fatalf("supervised collection: %v", err)
	}
	if hurt.Auto == nil || !hurt.Auto.Degraded() {
		t.Fatal("injected run did not degrade")
	}

	healed, err := CollectWith(ctx, app, cfg, CollectOptions{Workers: 3, Cache: cache})
	if err != nil {
		t.Fatalf("fault-free re-collection: %v", err)
	}
	if healed.Auto == nil || healed.Auto.Degraded() {
		t.Fatal("degraded trace was served from the cache on a fault-free re-collection")
	}
	if len(healed.Auto.Quarantined) != 0 {
		t.Fatalf("healed trace still carries quarantine set %v", healed.Auto.Quarantined)
	}
}

// TestTable1ReportsDegradedTasks: the Table 1 rendering must flag degraded
// runs and carry the forfeited-DVFS footnote, so degraded TA%/EDP numbers
// are never presented as healthy operation.
func TestTable1ReportsDegradedTasks(t *testing.T) {
	cfg := rt.DefaultTraceConfig()
	cfg.Degrade = rt.DegradeAccess
	app, err := bench.AppByName("LU")
	if err != nil {
		t.Fatal(err)
	}
	in := inject.New(inject.Rule{Site: inject.SiteAccessPhase, App: "LU", Kind: "compiler-dae",
		Mode: inject.ModeTrap, Trap: fault.TrapOutOfBounds, Once: true})
	data, err := CollectWith(context.Background(), app, cfg,
		CollectOptions{Workers: 3, InjectPhase: in.PhaseFunc()})
	if err != nil {
		t.Fatal(err)
	}
	rows := Table1([]*AppData{data}, rt.DefaultMachine())
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	if rows[0].DegradedTasks == 0 {
		t.Fatal("Table1 row does not count degraded tasks")
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "degraded") {
		t.Errorf("Table 1 missing degraded column:\n%s", out)
	}
	if !strings.Contains(out, "forfeit the DVFS benefit") {
		t.Errorf("Table 1 missing degradation footnote:\n%s", out)
	}
}
