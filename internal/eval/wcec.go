package eval

import (
	"fmt"
	"math"
	"strings"

	"dae/internal/analysis"
	"dae/internal/analysis/wcec"
	"dae/internal/bench"
	"dae/internal/rt"
)

// This file is the WCEC soundness gate: for every task record of every
// (app, version) run it asserts `static WCEC >= observed cycles` under the
// shared cost model — the analysis is worthless as a policy input if the
// bound can be violated. The gate is honest about what it can assert:
// profile-kind bounds (derived from observation) and unbounded verdicts are
// *excluded with an explicit reason* rather than circularly certified, and
// failed records (no observed work) are excluded likewise. Every record is
// therefore either asserted sound or listed with the reason it was not.

// WCECCheck is the verdict for one phase of one task record.
type WCECCheck struct {
	App  string
	Run  string // "coupled", "manual-dae", "compiler-dae"
	Task string
	// Index is the record index within the run's trace.
	Index int
	// Phase is "exec" or "access".
	Phase string
	// Kind is the bound's provenance ("exact", "static", "profile",
	// "unbounded"), or "" when no bound was computed.
	Kind     string
	Bound    float64
	Observed float64
	// Excluded records are not asserted; Reason says why.
	Excluded bool
	Reason   string
	// Violated is set when an asserted bound was below the observation.
	Violated bool
}

// Tightness returns bound/observed (how loose the bound is), or 0 when the
// check was excluded or the observation empty.
func (c WCECCheck) Tightness() float64 {
	if c.Excluded || c.Observed <= 0 {
		return 0
	}
	return c.Bound / c.Observed
}

// WCECRunSummary aggregates one (app, run) pair.
type WCECRunSummary struct {
	App, Run                       string
	Asserted, Excluded, Violations int
	// MinTightness/MaxTightness cover the asserted execute-phase checks.
	MinTightness, MaxTightness float64
}

// WCECReport is the gate's full result.
type WCECReport struct {
	Checks []WCECCheck
	Runs   []WCECRunSummary
	// Diags carries one SevError diagnostic per violation (the CI gate fails
	// on any) plus the analyzers' own wcec warnings for unbounded tasks.
	Diags []analysis.Diagnostic
}

// Violations counts asserted checks that failed.
func (r *WCECReport) Violations() int {
	n := 0
	for _, c := range r.Checks {
		if c.Violated {
			n++
		}
	}
	return n
}

// WCECSoundness checks every record of every run in data against the static
// bounds. Builds are reconstructed per app (deterministically, like the
// traces themselves), so the gate works on cached trace data too.
func WCECSoundness(data []*AppData, m rt.Machine) (*WCECReport, error) {
	rep := &WCECReport{}
	an := wcec.New(wcec.NewCostModel(m.CPU))
	for _, d := range data {
		app, err := bench.AppByName(d.Name)
		if err != nil {
			return nil, err
		}
		auto, err := app.Build(bench.Auto)
		if err != nil {
			return nil, fmt.Errorf("wcec gate: rebuild %s (auto): %w", d.Name, err)
		}
		manual, err := app.Build(bench.Manual)
		if err != nil {
			return nil, fmt.Errorf("wcec gate: rebuild %s (manual): %w", d.Name, err)
		}
		runs := []struct {
			run string
			tr  *rt.Trace
			w   *rt.Workload
		}{
			{"coupled", d.CAE, auto.W},
			{"manual-dae", d.Manual, manual.W},
			{"compiler-dae", d.Auto, auto.W},
		}
		for _, r := range runs {
			bs := rt.WorkloadBounds(r.w, an)
			rep.checkRun(d.Name, r.run, r.tr, bs)
		}
	}
	return rep, nil
}

// checkRun verifies one trace against its aligned bound set.
func (rep *WCECReport) checkRun(app, run string, tr *rt.Trace, bs *rt.BoundSet) {
	sum := WCECRunSummary{App: app, Run: run}
	if len(bs.Exec) != len(tr.Records) {
		// Misalignment means the rebuilt workload diverged from the traced
		// one — a gate bug, reported loudly rather than skipped quietly.
		rep.Diags = append(rep.Diags, analysis.Diagnostic{
			Pass: "wcec-gate", Sev: analysis.SevError, Task: app,
			Msg: fmt.Sprintf("%s/%s: %d bounds for %d records (workload rebuild diverged)",
				app, run, len(bs.Exec), len(tr.Records)),
		})
		rep.Runs = append(rep.Runs, sum)
		return
	}
	add := func(c WCECCheck) {
		rep.Checks = append(rep.Checks, c)
		switch {
		case c.Excluded:
			sum.Excluded++
		case c.Violated:
			sum.Violations++
			rep.Diags = append(rep.Diags, analysis.Diagnostic{
				Pass: "wcec-gate", Sev: analysis.SevError, Task: c.Task,
				Msg: fmt.Sprintf("%s/%s record %d %s phase: static bound %.0f cycles < observed %.0f (kind %s)",
					c.App, c.Run, c.Index, c.Phase, c.Bound, c.Observed, c.Kind),
			})
		default:
			sum.Asserted++
			if c.Phase == "exec" {
				t := c.Tightness()
				if sum.MinTightness == 0 || t < sum.MinTightness {
					sum.MinTightness = t
				}
				if t > sum.MaxTightness {
					sum.MaxTightness = t
				}
			}
		}
	}
	check := func(i int, phase string, b *wcec.Bound, observed float64, excludeReason string) {
		rec := &tr.Records[i]
		c := WCECCheck{App: app, Run: run, Task: rec.Name, Index: i, Phase: phase, Observed: observed}
		if b != nil {
			c.Kind = b.Kind.String()
			c.Bound = b.Cycles
		}
		switch {
		case excludeReason != "":
			c.Excluded, c.Reason = true, excludeReason
		case b == nil:
			c.Excluded, c.Reason = true, "no static bound computed"
		case b.Kind == wcec.BoundUnbounded:
			c.Excluded, c.Reason = true, unboundedReason(b)
		case b.Kind == wcec.BoundProfile:
			c.Excluded, c.Reason = true, "profile-derived bound (would certify the observation against itself)"
		case b.Cycles < observed:
			c.Violated = true
		}
		add(c)
	}
	for i := range tr.Records {
		rec := &tr.Records[i]
		execReason := ""
		if rec.Failed {
			execReason = fmt.Sprintf("execute phase faulted (%s): no observed work to compare", rec.FaultKind)
		}
		// Degraded records ran coupled, but the execute phase still ran the
		// task function the bound covers — assert it as usual.
		check(i, "exec", bs.Exec[i], bs.Model.Cycles(rec.ExecWork.Counts), execReason)
		switch {
		case rec.Degraded:
			check(i, "access", bs.Access[i], 0,
				fmt.Sprintf("access phase degraded (%s): phase did not run", rec.FaultKind))
		case rec.HasAccess:
			check(i, "access", bs.Access[i], bs.Model.Cycles(rec.AccessWork.Counts), "")
		}
	}
	rep.Runs = append(rep.Runs, sum)
}

func unboundedReason(b *wcec.Bound) string {
	for _, d := range b.Diags {
		return "unbounded: " + d.Msg
	}
	return "unbounded: no finite static bound"
}

// FormatWCEC renders the gate report: per-run summary rows, then every
// exclusion with its reason, then every violation.
func FormatWCEC(rep *WCECReport) string {
	var sb strings.Builder
	sb.WriteString("WCEC soundness (static bound vs observed cycles, shared cost model)\n")
	fmt.Fprintf(&sb, "%-10s %-14s %9s %9s %11s %16s\n",
		"app", "run", "asserted", "excluded", "violations", "tightness")
	for _, s := range rep.Runs {
		tight := "-"
		if s.MinTightness > 0 {
			tight = fmt.Sprintf("%.2f..%.2f", s.MinTightness, s.MaxTightness)
		}
		fmt.Fprintf(&sb, "%-10s %-14s %9d %9d %11d %16s\n",
			s.App, s.Run, s.Asserted, s.Excluded, s.Violations, tight)
	}
	var excluded, violated []WCECCheck
	for _, c := range rep.Checks {
		switch {
		case c.Violated:
			violated = append(violated, c)
		case c.Excluded:
			excluded = append(excluded, c)
		}
	}
	if len(excluded) > 0 {
		sb.WriteString("excluded from assertion:\n")
		seen := make(map[string]bool)
		for _, c := range excluded {
			// One line per (app, run, task, phase, reason): batches repeat
			// task types with identical verdicts.
			key := c.App + "/" + c.Run + "/" + c.Task + "/" + c.Phase + "/" + c.Reason
			if seen[key] {
				continue
			}
			seen[key] = true
			fmt.Fprintf(&sb, "  %s/%s task %s (%s): %s\n", c.App, c.Run, c.Task, c.Phase, c.Reason)
		}
	}
	for _, c := range violated {
		fmt.Fprintf(&sb, "VIOLATION %s/%s record %d task %s (%s): bound %.0f < observed %.0f\n",
			c.App, c.Run, c.Index, c.Task, c.Phase, c.Bound, c.Observed)
	}
	if len(violated) == 0 {
		sb.WriteString("soundness: PASS (all asserted bounds hold)\n")
	}
	return sb.String()
}

// rwcecEDP evaluates the intra-task RWCEC policy for one app's compiler-DAE
// trace, returning the EDP normalized to base. The bounds come from a fresh
// deterministic rebuild; profile fallback fills skeleton-path tasks from the
// trace itself (margin 1.2). NaN reports an evaluation failure — rendered as
// "-" in the table, never silently zero.
func rwcecEDP(d *AppData, m rt.Machine, baseEDP float64) float64 {
	app, err := bench.AppByName(d.Name)
	if err != nil {
		return math.NaN()
	}
	b, err := app.Build(bench.Auto)
	if err != nil {
		return math.NaN()
	}
	bs := rt.WorkloadBounds(b.W, wcec.New(wcec.NewCostModel(m.CPU)))
	rt.FillProfileBounds(bs, d.Auto, 1.2)
	met := rt.EvaluateWithBounds(d.Auto, m, rt.PolicyRWCEC, bs)
	if met.EDP <= 0 || baseEDP <= 0 {
		return math.NaN()
	}
	return met.EDP / baseEDP
}
