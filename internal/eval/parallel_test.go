package eval

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"dae/internal/bench"
	daepass "dae/internal/dae"
	"dae/internal/rt"
)

// sameTraces reports whether two collections produced byte-identical traces
// and equal generation summaries, in the same app order.
func sameTraces(t *testing.T, a, b []*AppData) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("collections differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("app %d: name %q vs %q (order must be deterministic)", i, a[i].Name, b[i].Name)
		}
		for _, tr := range []struct {
			kind string
			x, y *rt.Trace
		}{{"CAE", a[i].CAE, b[i].CAE}, {"Manual", a[i].Manual, b[i].Manual}, {"Auto", a[i].Auto, b[i].Auto}} {
			if !reflect.DeepEqual(tr.x, tr.y) {
				t.Errorf("%s: %s traces differ between collections", a[i].Name, tr.kind)
			}
		}
		if len(a[i].Results) != len(b[i].Results) {
			t.Errorf("%s: result counts differ", a[i].Name)
			continue
		}
		for name, ra := range a[i].Results {
			rb := b[i].Results[name]
			if rb == nil {
				t.Errorf("%s: missing result for %s", a[i].Name, name)
				continue
			}
			if ra.Strategy != rb.Strategy || ra.AffineLoops != rb.AffineLoops ||
				ra.TotalLoops != rb.TotalLoops || ra.NConvUn != rb.NConvUn {
				t.Errorf("%s/%s: generation summaries differ", a[i].Name, name)
			}
		}
	}
}

// TestParallelCollectionDeterminism is the hidden-shared-state regression
// test: a sequential collection and a 4-worker collection of every benchmark
// must produce deeply equal traces. Run under -race it additionally proves
// the per-run state (interp envs, heaps, caches) is not shared.
func TestParallelCollectionDeterminism(t *testing.T) {
	cfg := rt.DefaultTraceConfig()
	seq, err := CollectAllWith(context.Background(), cfg, CollectOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := CollectAllWith(context.Background(), cfg, CollectOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sameTraces(t, seq, par)
	// Table 1 — including the rwcec policy column, whose bounds come from a
	// deterministic per-app rebuild — must be byte-identical across worker
	// counts.
	m := rt.DefaultMachine()
	t1, t2 := FormatTable1(Table1(seq, m)), FormatTable1(Table1(par, m))
	if t1 != t2 {
		t.Errorf("Table 1 differs across worker counts:\n--- workers=1\n%s--- workers=4\n%s", t1, t2)
	}
}

// TestCollectAggregatesErrors: a failing benchmark must not mask the other
// failures — every app's error surfaces in the joined result.
func TestCollectAggregatesErrors(t *testing.T) {
	errA := errors.New("boom-A")
	errB := errors.New("boom-B")
	apps := []bench.App{
		{Name: "BrokenA", Build: func(bench.Variant) (*bench.Built, error) { return nil, errA }},
		{Name: "BrokenB", Build: func(bench.Variant) (*bench.Built, error) { return nil, errB }},
	}
	for _, workers := range []int{1, 4} {
		_, err := collectApps(context.Background(), apps, rt.DefaultTraceConfig(), CollectOptions{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: expected an error", workers)
		}
		if !errors.Is(err, errA) || !errors.Is(err, errB) {
			t.Errorf("workers=%d: joined error should wrap both failures, got: %v", workers, err)
		}
		msg := err.Error()
		if !strings.Contains(msg, "BrokenA") || !strings.Contains(msg, "BrokenB") {
			t.Errorf("workers=%d: error should name both apps, got: %q", workers, msg)
		}
	}
}

// TestTraceCacheSharing: a refined collection only re-traces the compiler-DAE
// decoupled runs; the coupled and manual traces come from the shared cache
// (same pointers), and a repeated plain collection is served entirely from
// the cache.
func TestTraceCacheSharing(t *testing.T) {
	app, err := bench.AppByName("LibQ")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rt.DefaultTraceConfig()
	cache := NewTraceCache("")

	plain, err := CollectWith(context.Background(), app, cfg, CollectOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	again, err := CollectWith(context.Background(), app, cfg, CollectOptions{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if again.CAE != plain.CAE || again.Manual != plain.Manual || again.Auto != plain.Auto {
		t.Error("repeated collection should be served from the cache (same trace pointers)")
	}

	refined, err := CollectWith(context.Background(), app, cfg, CollectOptions{
		Cache:  cache,
		Refine: &RefineSpec{Options: daepass.DefaultRefine(), PerTask: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if refined.CAE != plain.CAE {
		t.Error("refined collection should reuse the cached coupled trace")
	}
	if refined.Manual != plain.Manual {
		t.Error("refined collection should reuse the cached manual trace")
	}
	if refined.Auto == plain.Auto {
		t.Error("refined collection must re-trace the compiler-DAE run")
	}
}
