package eval

import (
	"fmt"
	"strings"

	"dae/internal/rt"
)

// FormatRunReport renders the single-app evaluation report — the policy
// comparison table, the compiler-DAE characteristics line, and the
// generation-strategy summary — exactly as the daerun CLI prints it. The
// daed server returns this same rendering in its simulate responses, so a
// remote run is byte-identical to a local one: one formatter, one trace
// semantics, two transports.
func FormatRunReport(data *AppData, m rt.Machine) string {
	var b strings.Builder
	base := rt.Evaluate(data.CAE, m, rt.PolicyFixed)
	fmt.Fprintf(&b, "\n%-28s %10s %10s %12s %8s %8s\n", "configuration", "time(ms)", "energy(J)", "EDP(mJ*s)", "T/Tbase", "EDP/base")
	show := func(label string, met rt.Metrics) {
		fmt.Fprintf(&b, "%-28s %10.4f %10.4f %12.6f %8.3f %8.3f\n",
			label, met.Time*1e3, met.Energy, met.EDP*1e3, met.Time/base.Time, met.EDP/base.EDP)
	}
	show("CAE (max f.)", base)
	show("CAE (optimal f.)", rt.Evaluate(data.CAE, m, rt.PolicyOptimalEDP))
	show("Manual DAE (min/max f.)", rt.Evaluate(data.Manual, m, rt.PolicyMinMax))
	show("Manual DAE (optimal f.)", rt.Evaluate(data.Manual, m, rt.PolicyOptimalEDP))
	show("Compiler DAE (min/max f.)", rt.Evaluate(data.Auto, m, rt.PolicyMinMax))
	show("Compiler DAE (optimal f.)", rt.Evaluate(data.Auto, m, rt.PolicyOptimalEDP))

	met := rt.Evaluate(data.Auto, m, rt.PolicyMinMax)
	fmt.Fprintf(&b, "\ncompiler DAE: %d tasks, TA=%.2f%%, mean access phase %.2f us, %d DVFS switches\n",
		met.Tasks, met.TAFraction()*100, met.MeanAccessSeconds()*1e6, met.Transitions)
	fmt.Fprint(&b, "\n", FormatStrategies([]*AppData{data}))
	return b.String()
}
