package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dae/internal/dae"
)

// edpCell renders a normalized policy EDP, with "-" for NaN (the policy
// could not be evaluated — e.g. no static bounds for rwcec).
func edpCell(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

// FormatTable1 renders Table 1 in the paper's layout, extended with the
// policy-EDP comparison columns (normalized to CAE @ fmax): min/max f.,
// locally-optimal EDP, and the intra-task RWCEC policy.
func FormatTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table 1. Application characteristics\n")
	sb.WriteString(fmt.Sprintf("%-10s %14s %10s %8s %10s %9s %9s %9s %9s\n",
		"Application", "#affine/total", "#tasks", "TA%", "TA(usec)", "degraded",
		"EDP(mm)", "EDP(opt)", "EDP(rwcec)"))
	degraded := false
	for _, r := range rows {
		deg := "-"
		if r.DegradedTasks > 0 || r.FailedTasks > 0 {
			deg = fmt.Sprintf("%d", r.DegradedTasks)
			if r.FailedTasks > 0 {
				deg += fmt.Sprintf("+%df", r.FailedTasks)
			}
			degraded = true
		}
		sb.WriteString(fmt.Sprintf("%-10s %10d/%-3d %10d %8.2f %10.2f %9s %9s %9s %9s\n",
			r.App, r.AffineLoops, r.TotalLoops, r.Tasks, r.TAPercent, r.TAMicros, deg,
			edpCell(r.EDPMinMax), edpCell(r.EDPOptimal), edpCell(r.EDPRWCEC)))
	}
	if degraded {
		sb.WriteString("(degraded tasks ran coupled at the fixed frequency and forfeit the DVFS benefit;\n" +
			" TA% and EDP for those apps understate healthy operation)\n")
	}
	return sb.String()
}

// FormatFig3 renders one metric of Figure 3 (time, energy, or EDP) as a
// table: apps in rows, configurations in columns, normalized to CAE@fmax.
func FormatFig3(rows []Fig3Row, metric string) string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("Figure 3: %s (normalized to CAE @ max frequency)\n", metric))
	sb.WriteString(fmt.Sprintf("%-10s", "App"))
	for c := Fig3Config(0); c < NumFig3Configs; c++ {
		sb.WriteString(fmt.Sprintf(" %26s", c))
	}
	sb.WriteByte('\n')
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-10s", r.App))
		for c := Fig3Config(0); c < NumFig3Configs; c++ {
			v := r.Time[c]
			switch metric {
			case "Energy":
				v = r.Energy[c]
			case "EDP":
				v = r.EDP[c]
			}
			sb.WriteString(fmt.Sprintf(" %26.3f", v))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FormatFig4 renders one benchmark's runtime and energy profiles.
func FormatFig4(p Fig4Profile) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 4: %s profile (fmin -> fmax; access at fmin for DAE)\n", p.App)
	series := []struct {
		name string
		pts  []Fig4Point
	}{{"CAE", p.CAE}, {"Manual DAE", p.Manual}, {"Auto DAE", p.Auto}}
	fmt.Fprintf(&sb, "%-12s %6s %12s %12s %12s %12s | %12s %12s %12s %12s\n",
		"config", "f(GHz)", "prefetch(ms)", "task(ms)", "OSI(ms)", "total(ms)",
		"prefE(J)", "taskE(J)", "OSIE(J)", "totalE(J)")
	for _, s := range series {
		for _, pt := range s.pts {
			fmt.Fprintf(&sb, "%-12s %6.1f %12.4f %12.4f %12.4f %12.4f | %12.4f %12.4f %12.4f %12.4f\n",
				s.name, pt.ExecFreq,
				1e3*pt.Prefetch, 1e3*pt.Task, 1e3*pt.OSI, 1e3*pt.Total(),
				pt.PrefetchE, pt.TaskE, pt.OSIE, pt.TotalE())
		}
	}
	return sb.String()
}

// Headline summarizes the paper's §6.1 numbers for a machine configuration:
// the geometric-mean EDP improvement of Manual and Auto DAE with the optimal
// policy, and their mean time overheads, all versus CAE@fmax.
type Headline struct {
	ManualEDPGain  float64 // e.g. 0.23 = 23% EDP reduction
	AutoEDPGain    float64
	ManualTimeLoss float64 // e.g. 0.04 = 4% slower
	AutoTimeLoss   float64
}

// ComputeHeadline extracts the headline geomeans from Figure 3 rows (the
// last row must be the G.Mean row).
func ComputeHeadline(rows []Fig3Row) Headline {
	gm := rows[len(rows)-1]
	return Headline{
		ManualEDPGain:  1 - gm.EDP[ManualOptimal],
		AutoEDPGain:    1 - gm.EDP[AutoOptimal],
		ManualTimeLoss: gm.Time[ManualOptimal] - 1,
		AutoTimeLoss:   gm.Time[AutoOptimal] - 1,
	}
}

// FormatHeadline renders the headline comparison.
func FormatHeadline(h Headline, label string) string {
	return fmt.Sprintf("%s: Manual DAE EDP gain %.1f%% (time %+.1f%%), Compiler DAE EDP gain %.1f%% (time %+.1f%%)\n",
		label, 100*h.ManualEDPGain, 100*h.ManualTimeLoss, 100*h.AutoEDPGain, 100*h.AutoTimeLoss)
}

// FormatStrategies summarizes the compiler's decisions per app. Tasks are
// listed in sorted order so the report is deterministic.
func FormatStrategies(data []*AppData) string {
	var sb strings.Builder
	sb.WriteString("Access-version generation decisions\n")
	for _, d := range data {
		names := make([]string, 0, len(d.Results))
		for name := range d.Results {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			r := d.Results[name]
			fmt.Fprintf(&sb, "%-10s %-14s %-9s loops %d/%d", d.Name, name, r.Strategy, r.AffineLoops, r.TotalLoops)
			if r.Strategy == dae.StrategyAffine {
				fmt.Fprintf(&sb, " classes=%d nests=%d NConvUn=%d NOrig=%d", r.Classes, r.MergedNests, r.NConvUn, r.NOrig)
			}
			if r.Reason != "" {
				fmt.Fprintf(&sb, " (%s)", r.Reason)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
