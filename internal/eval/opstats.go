package eval

import (
	"context"

	"dae/internal/bench"
	"dae/internal/interp"
	"dae/internal/rt"
)

// CollectOpStats traces every (app, version) run of apps on the tree engine
// with a dynamic op-histogram collector installed and returns the merged op
// and op-pair counts. nil apps means every benchmark. The histogram measures
// the unfused compiled-op stream — the measurement that justifies the
// bytecode engine's superinstruction selection — so the engine choice in cfg
// is overridden to the tree oracle. Runs execute sequentially with a fresh
// collector each (the collector is not synchronized), and the trace cache is
// bypassed: a cached trace records no op stream.
func CollectOpStats(ctx context.Context, apps []bench.App, cfg rt.TraceConfig, opts CollectOptions) (*interp.OpStats, error) {
	if apps == nil {
		apps = bench.Apps()
	}
	cfg.Engine = interp.EngineTree
	opts.Cache = nil
	total := &interp.OpStats{}
	for _, app := range apps {
		for kind := runKind(0); kind < numRunKinds; kind++ {
			st := &interp.OpStats{}
			c := cfg
			c.OpStats = st
			if _, err := collectRun(ctx, app, kind, c, opts); err != nil {
				return nil, &RunError{App: app.Name, Kind: kind.String(), Err: err}
			}
			total.Merge(st)
		}
	}
	return total, nil
}
