package eval

import (
	"context"
	"strings"
	"testing"

	"dae/internal/fault"
	"dae/internal/fault/inject"
	"dae/internal/rt"
)

// TestWCECSoundnessAllRuns is the gate's acceptance scenario: for every task
// record in all 21 (app, version) runs the static bound must hold against the
// observed cycle count, and every record that cannot be asserted must carry
// an explicit exclusion reason. Affine-path (exact) bounds must additionally
// be within 2x of the observation on the dense-kernel apps.
func TestWCECSoundnessAllRuns(t *testing.T) {
	data := collect(t)
	m := rt.DefaultMachine()
	rep, err := WCECSoundness(data, m)
	if err != nil {
		t.Fatal(err)
	}
	if n := rep.Violations(); n != 0 {
		t.Fatalf("%d soundness violations:\n%s", n, FormatWCEC(rep))
	}
	if len(rep.Runs) != 3*len(data) {
		t.Fatalf("%d run summaries, want %d", len(rep.Runs), 3*len(data))
	}
	asserted := 0
	for _, c := range rep.Checks {
		if c.Excluded {
			if c.Reason == "" {
				t.Errorf("%s/%s task %s (%s): excluded without a reason", c.App, c.Run, c.Task, c.Phase)
			}
			continue
		}
		asserted++
		if c.Bound < c.Observed {
			t.Errorf("%s/%s record %d (%s): asserted check not flagged: %.0f < %.0f",
				c.App, c.Run, c.Index, c.Phase, c.Bound, c.Observed)
		}
	}
	if asserted == 0 {
		t.Fatal("gate asserted nothing — every check was excluded")
	}
	// Affine nests produce exact bounds; those must be tight (within 2x) on
	// the dense kernels, or the analysis is too conservative to drive DVFS.
	tight := map[string]bool{"LU": true, "Cholesky": true, "CG": true}
	for _, c := range rep.Checks {
		if c.Excluded || c.Phase != "exec" || c.Kind != "exact" || !tight[c.App] {
			continue
		}
		if r := c.Tightness(); r > 2.0 {
			t.Errorf("%s/%s task %s: exact bound %.2fx observed (want <= 2x)", c.App, c.Run, c.Task, r)
		}
	}
	out := FormatWCEC(rep)
	if !strings.Contains(out, "soundness: PASS") {
		t.Errorf("report missing PASS line:\n%s", out)
	}
	for _, d := range data {
		if !strings.Contains(out, d.Name) {
			t.Errorf("report missing app %s", d.Name)
		}
	}
	t.Logf("wcec gate: %d checks asserted across %d runs", asserted, len(rep.Runs))
}

// TestWCECSoundnessUnderDegradation covers the gate's behavior when a run
// degrades: the quarantined task's execute phase still ran the bounded
// function (coupled), so it stays asserted; its access phase never ran and
// must be excluded with an explicit reason — never silently dropped and
// never counted as a violation.
func TestWCECSoundnessUnderDegradation(t *testing.T) {
	ctx := context.Background()
	cfg := rt.DefaultTraceConfig()
	cfg.Degrade = rt.DegradeAccess
	in := inject.New(inject.Rule{
		Site: inject.SiteAccessPhase, App: "LU", Kind: "compiler-dae",
		Mode: inject.ModeTrap, Trap: fault.TrapOutOfBounds, Once: true,
	})
	data, err := CollectAllWith(ctx, cfg, CollectOptions{Workers: 4, InjectPhase: in.PhaseFunc()})
	if err != nil {
		t.Fatal(err)
	}
	if !AnyDegraded(data) {
		t.Fatal("injection produced no degradation")
	}
	rep, err := WCECSoundness(data, rt.DefaultMachine())
	if err != nil {
		t.Fatal(err)
	}
	if n := rep.Violations(); n != 0 {
		t.Fatalf("degraded collection: %d violations:\n%s", n, FormatWCEC(rep))
	}
	sawDegradedAccess, sawDegradedExec := false, false
	for _, c := range rep.Checks {
		if c.App != "LU" || c.Run != "compiler-dae" {
			continue
		}
		if c.Phase == "access" && c.Excluded && strings.Contains(c.Reason, "access phase degraded") {
			sawDegradedAccess = true
		}
		if c.Phase == "exec" && !c.Excluded {
			sawDegradedExec = true
		}
	}
	if !sawDegradedAccess {
		t.Error("no access check excluded with a degradation reason for LU/compiler-dae")
	}
	if !sawDegradedExec {
		t.Error("no exec check asserted for LU/compiler-dae despite degradation (coupled exec still runs)")
	}
	if out := FormatWCEC(rep); !strings.Contains(out, "access phase degraded") {
		t.Errorf("report does not surface the degradation exclusion:\n%s", out)
	}
}
