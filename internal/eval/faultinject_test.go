package eval

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"dae/internal/bench"
	"dae/internal/fault"
	"dae/internal/fault/inject"
	"dae/internal/rt"
)

// TestInjectedFaultIsolatesRun is the acceptance regression test for the
// hardened pipeline (run under -race in CI): an injected panic in one of the
// 21 (app, run) collections and an injected trap in another must fail
// exactly those two runs — everything else completes, and a follow-up
// collection over the survivors' cache reproduces traces byte-identical to
// a fault-free collection.
func TestInjectedFaultIsolatesRun(t *testing.T) {
	ctx := context.Background()
	cfg := rt.DefaultTraceConfig()

	baseline, err := CollectAllWith(ctx, cfg, CollectOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	in := inject.New(
		inject.Rule{Site: inject.SiteTraceRun, App: "FFT", Kind: "compiler-dae", Mode: inject.ModePanic},
		inject.Rule{Site: inject.SiteTraceRun, App: "LU", Kind: "coupled", Mode: inject.ModeTrap, Trap: fault.TrapOutOfBounds},
	)
	cache := NewTraceCache("") // collects the 19 surviving runs
	_, err = CollectAllWith(ctx, cfg, CollectOptions{Workers: 4, Cache: cache, Inject: in.Hook()})
	if err == nil {
		t.Fatal("injected faults did not surface")
	}
	fails := Failures(err)
	if len(fails) != 2 {
		t.Fatalf("got %d failures, want exactly the 2 injected ones: %v", len(fails), err)
	}
	// Joined in job order: LU (app 0) before FFT.
	if fails[0].App != "LU" || fails[0].Kind != "coupled" || fails[0].Class() != "trap" {
		t.Errorf("failure 0 = %s/%s/%s, want LU/coupled/trap", fails[0].App, fails[0].Kind, fails[0].Class())
	}
	if fails[1].App != "FFT" || fails[1].Kind != "compiler-dae" || fails[1].Class() != "panic" {
		t.Errorf("failure 1 = %s/%s/%s, want FFT/compiler-dae/panic", fails[1].App, fails[1].Kind, fails[1].Class())
	}
	if !errors.Is(err, fault.ErrTrap) || !errors.Is(err, fault.ErrPanic) {
		t.Error("joined error does not expose the fault classes via errors.Is")
	}
	if got := len(in.Fired()); got != 2 {
		t.Errorf("injector fired %d times, want 2: %v", got, in.Fired())
	}

	// Heal: same cache, injection off. Only the two failed runs re-simulate;
	// every output must be byte-identical to the fault-free baseline.
	healed, err := CollectAllWith(ctx, cfg, CollectOptions{Workers: 4, Cache: cache})
	if err != nil {
		t.Fatalf("healing collection failed: %v", err)
	}
	sameTraces(t, baseline, healed)
}

// TestInjectionDeterministicOrder: the same rule set produces the same
// failure sequence (apps, kinds, classes) for any worker count, because
// failures are joined in job order, not completion order.
func TestInjectionDeterministicOrder(t *testing.T) {
	rules := []inject.Rule{
		{Site: inject.SiteCompile, Kind: "coupled", Mode: inject.ModeError},
		{Site: inject.SiteCompile, Kind: "manual-dae", Mode: inject.ModeStepBudget},
		{Site: inject.SiteCompile, Kind: "compiler-dae", Mode: inject.ModeHeapBudget},
	}
	type flatFail struct{ App, Kind, Class string }
	collect := func(workers int) []flatFail {
		in := inject.New(rules...)
		_, err := CollectAllWith(context.Background(), rt.DefaultTraceConfig(),
			CollectOptions{Workers: workers, Inject: in.Hook()})
		if err == nil {
			t.Fatalf("workers=%d: injection did not fire", workers)
		}
		var out []flatFail
		for _, f := range Failures(err) {
			out = append(out, flatFail{f.App, f.Kind, f.Class()})
		}
		return out
	}
	seq := collect(1)
	if len(seq) != 21 {
		t.Fatalf("got %d failures, want all 21 runs", len(seq))
	}
	for _, workers := range []int{4, 8} {
		if got := collect(workers); !reflect.DeepEqual(got, seq) {
			t.Errorf("workers=%d: failure order differs from sequential:\n%v\nvs\n%v", workers, got, seq)
		}
	}
	// Classes came through typed.
	for _, f := range seq {
		want := map[string]string{
			"coupled":      "error",
			"manual-dae":   "step-budget",
			"compiler-dae": "heap-budget",
		}[f.Kind]
		if f.Class != want {
			t.Errorf("%s/%s class = %s, want %s", f.App, f.Kind, f.Class, want)
		}
	}
}

// TestPerRunTimeout: a tiny RunTimeout fails each run with a typed timeout
// fault while the pool still drains all jobs cleanly.
func TestPerRunTimeout(t *testing.T) {
	app, err := bench.AppByName("LibQ")
	if err != nil {
		t.Fatal(err)
	}
	_, err = collectApps(context.Background(), []bench.App{app}, rt.DefaultTraceConfig(),
		CollectOptions{Workers: 3, RunTimeout: time.Nanosecond})
	if err == nil {
		t.Fatal("expected timeout failures")
	}
	fails := Failures(err)
	if len(fails) != 3 {
		t.Fatalf("got %d failures, want 3 (one per run)", len(fails))
	}
	for _, f := range fails {
		if !errors.Is(f, fault.ErrTimeout) {
			t.Errorf("%s/%s: %v is not a timeout fault", f.App, f.Kind, f.Err)
		}
		if f.Class() != "timeout" {
			t.Errorf("%s/%s class = %s, want timeout", f.App, f.Kind, f.Class())
		}
	}
}

// TestCollectionCancel: canceling the collection context fails the
// remaining runs fast with timeout faults and the pool drains.
func TestCollectionCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: every run must fail fast, none may hang
	_, err := CollectAllWith(ctx, rt.DefaultTraceConfig(), CollectOptions{Workers: 4})
	if err == nil {
		t.Fatal("expected cancellation failures")
	}
	fails := Failures(err)
	if len(fails) != 21 {
		t.Fatalf("got %d failures, want all 21 runs", len(fails))
	}
	for _, f := range fails {
		if !errors.Is(f, context.Canceled) {
			t.Errorf("%s/%s: %v does not wrap context.Canceled", f.App, f.Kind, f.Err)
		}
	}
}
