package eval

import (
	"math"
	"testing"

	"dae/internal/analysis"
)

// TestStaticDynamicCoverage cross-validates the compile-time coverage figure
// against the dynamically measured one. For the affine apps (LU, Cholesky,
// CG) the static analysis enumerates the exact polyhedral access sets, so the
// figures must agree to within 10 percentage points (slack for line-boundary
// effects between the byte-granular enumeration and the traced hierarchy).
func TestStaticDynamicCoverage(t *testing.T) {
	affine := []string{"LU", "Cholesky", "CG"}
	rows, err := CoverageReport(affine, 2)
	if err != nil {
		t.Fatalf("CoverageReport: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("no coverage rows")
	}
	seen := make(map[string]bool)
	for _, r := range rows {
		seen[r.App] = true
		t.Logf("%s/%s strategy=%s exact=%v static=%.1f%% dynamic=%.1f%% n=%d",
			r.App, r.Task, r.Strategy, r.Exact, 100*r.Static, 100*r.Dynamic, r.Invocations)
		if r.Strategy != "affine" {
			continue
		}
		if !r.Exact {
			t.Errorf("%s/%s: affine task fell back to may-read approximation", r.App, r.Task)
		}
		if diff := math.Abs(r.Static - r.Dynamic); diff > 0.10 {
			t.Errorf("%s/%s: static %.1f%% vs dynamic %.1f%% differ by %.1f points (limit 10)",
				r.App, r.Task, 100*r.Static, 100*r.Dynamic, 100*diff)
		}
	}
	for _, app := range affine {
		if !seen[app] {
			t.Errorf("no rows for %s", app)
		}
	}
}

// TestRaceReportCleanOnBenchmarks asserts the overlap detector finds no races
// in the paper benchmarks: tasks within a batch are independent by
// construction, so every SevError diagnostic would be a false positive (or a
// real benchmark bug).
func TestRaceReportCleanOnBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark race sweep")
	}
	diags, err := RaceReport(nil)
	if err != nil {
		t.Fatalf("RaceReport: %v", err)
	}
	for app, ds := range diags {
		for _, d := range ds {
			if d.Sev == analysis.SevError {
				t.Errorf("%s: unexpected race diagnostic: %s", app, d)
			} else {
				t.Logf("%s: %s", app, d)
			}
		}
	}
}
