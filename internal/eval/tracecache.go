package eval

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dae/internal/dae"
	"dae/internal/fault"
	"dae/internal/flight"
	"dae/internal/rt"
)

// TraceCache memoizes collected traces, content-keyed by (app, run kind,
// trace configuration, refinement options). Every daebench experiment that
// needs the same trace — table1, fig3, fig4, zerolat all evaluate the same
// frequency-independent profile — then shares one collection, and the
// refined re-trace reuses the coupled and manual runs it does not change.
//
// The cache is safe for concurrent use. With a non-empty directory, entries
// additionally persist to disk as versioned JSON envelopes, so separate
// daebench invocations skip re-simulation entirely.
type TraceCache struct {
	dir string
	mu  sync.Mutex
	mem map[string]*runOutput
	// flights collapses concurrent misses on one key onto a single
	// collection: the second goroutine waits for the first instead of
	// re-running the simulation and re-writing the disk envelope.
	flights flight.Group[string, *runOutput]
	// saveFault, when non-nil, is consulted before each disk-save attempt
	// with the 0-based attempt number; a non-nil return fails that attempt.
	// Tests use it to exercise the write-retry path.
	saveFault func(attempt int) error
}

// NewTraceCache returns a cache. dir may be empty for a purely in-memory
// cache; otherwise entries are persisted under dir (created on first put).
func NewTraceCache(dir string) *TraceCache {
	return &TraceCache{dir: dir, mem: make(map[string]*runOutput)}
}

// runKey builds the content key of one traced run. The refinement options
// only affect the compiler-generated decoupled run, so the other kinds share
// entries between plain and refined collections.
func runKey(app string, kind runKind, cfg rt.TraceConfig, refine *RefineSpec) string {
	key := fmt.Sprintf("v%d;app=%s;kind=%d;%s", cacheVersion, app, kind, cfg.Fingerprint())
	if kind == runAuto && refine != nil {
		h := refine.Options.Hierarchy
		key += fmt.Sprintf(";refine=%g/%d-%d-%d/%d-%d-%d/%d-%d-%d/%d",
			refine.Options.MinMissRatio,
			h.L1.SizeBytes, h.L1.LineBytes, h.L1.Assoc,
			h.L2.SizeBytes, h.L2.LineBytes, h.L2.Assoc,
			h.L3.SizeBytes, h.L3.LineBytes, h.L3.Assoc,
			refine.PerTask)
	}
	return key
}

// cacheVersion is bumped whenever the trace semantics or the envelope layout
// change, invalidating stale on-disk entries. v2 added the content checksum
// and the MaxSteps field to the TraceConfig fingerprint; v3 added the
// supervision fields (trace format v2, Degrade in the fingerprint); v4 marks
// the bytecode execution engine becoming the default tracer (engines are
// byte-identical, so Engine itself stays out of the fingerprint — the bump
// just retires entries written before the differential tests enforced that).
const cacheVersion = 4

// saveAttempts is how many times a failed envelope write is tried in total;
// disk writes are best-effort (the cache degrades to memory-only) but
// transient errors — a full temp dir being cleaned, a racing rename —
// deserve one more try before giving up.
const saveAttempts = 2

// envelope is the on-disk form of one cache entry. Sum is the hex SHA-256
// of the trace payload plus the serialized results (ResultSummary, the
// shared persistable projection of dae.Result), so bit rot or a torn
// write anywhere in the content is detected on load and degraded to a cache
// miss rather than silently feeding a damaged trace into the evaluation.
type envelope struct {
	Version int                      `json:"version"`
	Key     string                   `json:"key"`
	Sum     string                   `json:"sum"`
	Trace   json.RawMessage          `json:"trace"`
	Results map[string]ResultSummary `json:"results,omitempty"`
}

// contentSum computes the envelope's content checksum over the trace bytes
// and the (deterministically marshaled) results map.
func contentSum(trace json.RawMessage, results map[string]ResultSummary) (string, error) {
	h := sha256.New()
	h.Write(trace)
	if results != nil {
		// encoding/json sorts map keys, so this is deterministic.
		rb, err := json.Marshal(results)
		if err != nil {
			return "", err
		}
		h.Write(rb)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// resolve returns the entry for key, computing it with collect on a miss.
// Concurrent resolve calls for the same key collapse onto one in-flight
// collection — exactly one simulation runs and exactly one disk envelope is
// written; the other callers wait and share the result. Degraded outputs
// are returned to every waiter but never stored (transient runtime faults
// must not poison the cache). shared reports whether the result came from
// another caller's in-flight collection rather than this caller's own —
// shared failures may be scoped to the leader (its deadline, its
// cancellation) and are the callers' cue to retry under their own context.
func (tc *TraceCache) resolve(key string, collect func() (*runOutput, error)) (out *runOutput, err error, shared bool) {
	out, err, leader := tc.flights.Do(key, func() (*runOutput, error) {
		if out, ok := tc.get(key); ok {
			return out, nil
		}
		out, err := collect()
		if err != nil {
			return nil, err
		}
		if out.Trace != nil && out.Trace.Degraded() {
			// Degradation reflects transient runtime faults, not trace
			// content: never cache it, so a later fault-free collection
			// re-traces cleanly instead of replaying the quarantine forever.
			return out, nil
		}
		tc.put(key, out)
		return out, nil
	})
	return out, err, !leader
}

// get returns the entry for key, consulting memory first and then disk.
func (tc *TraceCache) get(key string) (*runOutput, bool) {
	tc.mu.Lock()
	out, ok := tc.mem[key]
	tc.mu.Unlock()
	if ok {
		return out, true
	}
	if tc.dir == "" {
		return nil, false
	}
	out, err := tc.load(key)
	if err != nil || out == nil {
		// Unreadable, stale, or corrupt (fault.ErrCacheCorrupt) entries are
		// treated as misses; the fresh collection overwrites them.
		return nil, false
	}
	tc.mu.Lock()
	tc.mem[key] = out
	tc.mu.Unlock()
	return out, true
}

// put stores the entry in memory and, when persistence is enabled, on disk.
// Disk write failures are retried once and then non-fatal: the cache
// degrades to memory-only.
func (tc *TraceCache) put(key string, out *runOutput) {
	tc.mu.Lock()
	tc.mem[key] = out
	tc.mu.Unlock()
	if tc.dir == "" {
		return
	}
	// Save failures are treated as retryable infra faults, with the backoff
	// jitter seeded by the key so two workers retrying distinct entries (or
	// racing the same one) do not stay in lockstep.
	sum := sha256.Sum256([]byte(key))
	backoff := fault.Backoff(time.Millisecond, binary.LittleEndian.Uint64(sum[:8]))
	attempt := 0
	_ = fault.Retry(context.Background(), saveAttempts, backoff, func() error {
		a := attempt
		attempt++
		if tc.saveFault != nil {
			if err := tc.saveFault(a); err != nil {
				return fault.MarkRetryable(err)
			}
		}
		return fault.MarkRetryable(tc.save(key, out))
	})
}

// path maps a key to its cache file.
func (tc *TraceCache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(tc.dir, hex.EncodeToString(sum[:16])+".json")
}

func (tc *TraceCache) load(key string) (*runOutput, error) {
	b, err := os.ReadFile(tc.path(key))
	if err != nil {
		return nil, err
	}
	var env envelope
	if err := json.Unmarshal(b, &env); err != nil {
		// A torn write leaves unparseable JSON: classify as corruption.
		return nil, fault.Wrap(fault.KindCacheCorrupt, err)
	}
	if env.Version != cacheVersion || env.Key != key {
		return nil, nil
	}
	sum, err := contentSum(env.Trace, env.Results)
	if err != nil {
		return nil, err
	}
	if sum != env.Sum {
		return nil, fault.New(fault.KindCacheCorrupt,
			"cache entry %s: checksum mismatch (have %.12s, want %.12s)", tc.path(key), env.Sum, sum)
	}
	tr, err := rt.DecodeTrace(env.Trace)
	if err != nil {
		return nil, err
	}
	out := &runOutput{Trace: tr}
	if env.Results != nil {
		out.Results = make(map[string]*dae.Result, len(env.Results))
		for name, rj := range env.Results {
			out.Results[name] = rj.result()
		}
	}
	return out, nil
}

func (tc *TraceCache) save(key string, out *runOutput) error {
	raw, err := rt.EncodeTrace(out.Trace)
	if err != nil {
		return err
	}
	env := envelope{Version: cacheVersion, Key: key, Trace: raw}
	if out.Results != nil {
		env.Results = make(map[string]ResultSummary, len(out.Results))
		for name, r := range out.Results {
			env.Results[name] = summarizeResult(r)
		}
	}
	// Marshaling the envelope re-compacts the embedded raw trace (an
	// encoder's trailing newline, whitespace, HTML escaping), so the bytes a
	// later load sees are not raw. Round-trip once and checksum the stored
	// form — the form load validates against.
	pre, err := json.Marshal(env)
	if err != nil {
		return err
	}
	var stored envelope
	if err := json.Unmarshal(pre, &stored); err != nil {
		return err
	}
	env.Sum, err = contentSum(stored.Trace, stored.Results)
	if err != nil {
		return err
	}
	b, err := json.Marshal(env)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(tc.dir, 0o755); err != nil {
		return err
	}
	// Write-then-rename keeps the final path atomic: a concurrent reader (or
	// another process sharing the directory) sees either the previous
	// complete envelope or the new one, never a partial file, and a crash
	// mid-write leaves only a uniquely named temp file behind. The deferred
	// remove reaps that temp on every failure path — after a successful
	// rename the name no longer exists and the remove is a no-op.
	tmp, err := os.CreateTemp(tc.dir, "entry-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmpName, tc.path(key))
}
