package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
)

// csvEDP renders a normalized policy EDP for CSV ("" for NaN).
func csvEDP(v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	return fmt.Sprintf("%.6f", v)
}

// WriteTable1CSV writes Table 1 as CSV.
func WriteTable1CSV(w io.Writer, rows []Table1Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "affine_loops", "total_loops", "tasks", "ta_percent", "ta_usec", "edp_minmax", "edp_optimal", "edp_rwcec"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.App,
			fmt.Sprintf("%d", r.AffineLoops),
			fmt.Sprintf("%d", r.TotalLoops),
			fmt.Sprintf("%d", r.Tasks),
			fmt.Sprintf("%.4f", r.TAPercent),
			fmt.Sprintf("%.4f", r.TAMicros),
			csvEDP(r.EDPMinMax),
			csvEDP(r.EDPOptimal),
			csvEDP(r.EDPRWCEC),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig3CSV writes one Figure 3 metric ("Time", "Energy", or "EDP") as
// CSV with one row per app and one column per configuration.
func WriteFig3CSV(w io.Writer, rows []Fig3Row, metric string) error {
	cw := csv.NewWriter(w)
	header := []string{"app"}
	for c := Fig3Config(0); c < NumFig3Configs; c++ {
		header = append(header, c.String())
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.App}
		for c := Fig3Config(0); c < NumFig3Configs; c++ {
			v := r.Time[c]
			switch metric {
			case "Energy":
				v = r.Energy[c]
			case "EDP":
				v = r.EDP[c]
			}
			rec = append(rec, fmt.Sprintf("%.6f", v))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig4CSV writes a benchmark's Figure 4 profile as long-format CSV:
// config, exec frequency, and the stacked time/energy components.
func WriteFig4CSV(w io.Writer, p Fig4Profile) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"app", "config", "exec_ghz",
		"prefetch_s", "task_s", "osi_s", "total_s",
		"prefetch_j", "task_j", "osi_j", "total_j",
	}); err != nil {
		return err
	}
	series := []struct {
		name string
		pts  []Fig4Point
	}{{"CAE", p.CAE}, {"ManualDAE", p.Manual}, {"AutoDAE", p.Auto}}
	for _, s := range series {
		for _, pt := range s.pts {
			rec := []string{
				p.App, s.name,
				fmt.Sprintf("%.1f", pt.ExecFreq),
				fmt.Sprintf("%.9f", pt.Prefetch),
				fmt.Sprintf("%.9f", pt.Task),
				fmt.Sprintf("%.9f", pt.OSI),
				fmt.Sprintf("%.9f", pt.Total()),
				fmt.Sprintf("%.9f", pt.PrefetchE),
				fmt.Sprintf("%.9f", pt.TaskE),
				fmt.Sprintf("%.9f", pt.OSIE),
				fmt.Sprintf("%.9f", pt.TotalE()),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
