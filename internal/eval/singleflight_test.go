package eval

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dae/internal/bench"
	"dae/internal/fault"
	"dae/internal/rt"
)

// TestConcurrentCollectionsSingleflight is the satellite contract for shared
// caches: two full CollectAllWith runs racing on one cache directory must
// produce byte-identical outputs with exactly one simulation and one disk
// write per key — the second goroutine to miss on a key waits for the first
// instead of recollecting and rewriting the envelope. Run under -race it
// additionally proves the flight hand-off is properly synchronized.
func TestConcurrentCollectionsSingleflight(t *testing.T) {
	tc := NewTraceCache(t.TempDir())
	var saves atomic.Int64
	tc.saveFault = func(int) error { saves.Add(1); return nil }

	cfg := rt.DefaultTraceConfig()
	var a, b []*AppData
	var errA, errB error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		a, errA = CollectAllWith(context.Background(), cfg, CollectOptions{Workers: 2, Cache: tc})
	}()
	go func() {
		defer wg.Done()
		b, errB = CollectAllWith(context.Background(), cfg, CollectOptions{Workers: 2, Cache: tc})
	}()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("collections failed: %v / %v", errA, errB)
	}
	sameTraces(t, a, b)

	wantKeys := len(bench.Apps()) * int(numRunKinds)
	if got := saves.Load(); got != int64(wantKeys) {
		t.Errorf("disk writes = %d, want exactly %d (one per key)", got, wantKeys)
	}
	entries, err := filepath.Glob(filepath.Join(tc.dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != wantKeys {
		t.Errorf("cache dir holds %d envelopes, want %d", len(entries), wantKeys)
	}
}

// TestCrossProcessCacheRace models two *processes* sharing a cache directory:
// two independent TraceCache instances (no shared in-process singleflight)
// race a collection of the same app. Both must succeed with byte-identical
// traces, the racing atomic renames must leave every envelope loadable by a
// third instance, and no temp files may survive.
func TestCrossProcessCacheRace(t *testing.T) {
	dir := t.TempDir()
	app, err := bench.AppByName("FFT")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rt.DefaultTraceConfig()

	var a, b *AppData
	var errA, errB error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		a, errA = CollectWith(context.Background(), app, cfg, CollectOptions{Workers: 2, Cache: NewTraceCache(dir)})
	}()
	go func() {
		defer wg.Done()
		b, errB = CollectWith(context.Background(), app, cfg, CollectOptions{Workers: 2, Cache: NewTraceCache(dir)})
	}()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("collections failed: %v / %v", errA, errB)
	}
	sameTraces(t, []*AppData{a}, []*AppData{b})

	leftovers, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) > 0 {
		t.Errorf("temp files survived the rename race: %v", leftovers)
	}

	// A third "process" must load every envelope cleanly (no torn writes),
	// serving the whole collection from disk without re-simulating.
	fresh := NewTraceCache(dir)
	fresh.saveFault = func(int) error {
		t.Error("warm collection wrote to disk; expected pure cache hits")
		return nil
	}
	c, err := CollectWith(context.Background(), app, cfg, CollectOptions{Cache: fresh})
	if err != nil {
		t.Fatal(err)
	}
	sameTraces(t, []*AppData{a}, []*AppData{c})
}

// TestResolveRetriesSharedTimeout exercises cachedRun's retry contract at
// the resolve level: a follower that inherits the leader's timeout failure
// while its own context is alive retries and completes on a fresh flight.
func TestResolveRetriesSharedTimeout(t *testing.T) {
	tc := NewTraceCache("")
	leaderIn := make(chan struct{})
	block := make(chan struct{})
	go tc.resolve("k", func() (*runOutput, error) {
		close(leaderIn)
		<-block
		return nil, fault.New(fault.KindTimeout, "leader deadline expired")
	})
	<-leaderIn

	done := make(chan *runOutput, 1)
	go func() {
		ctx := context.Background()
		for { // cachedRun's loop, verbatim
			out, err, shared := tc.resolve("k", func() (*runOutput, error) {
				return &runOutput{}, nil
			})
			if shared && err != nil && errors.Is(err, fault.ErrTimeout) && ctx.Err() == nil {
				continue
			}
			if err != nil {
				t.Errorf("follower failed permanently: %v", err)
			}
			done <- out
			return
		}
	}()
	time.Sleep(100 * time.Millisecond) // let the follower park on the flight
	close(block)
	select {
	case out := <-done:
		if out == nil {
			t.Fatal("follower returned no output")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("follower never completed after leader timeout")
	}
}

// TestCollectSharedCacheConcurrentSameApp: many goroutines collecting the
// same app through one shared cache trigger exactly one simulation (and one
// disk write) per run kind.
func TestCollectSharedCacheConcurrentSameApp(t *testing.T) {
	tc := NewTraceCache(t.TempDir())
	var saves atomic.Int64
	tc.saveFault = func(int) error { saves.Add(1); return nil }
	app, err := bench.AppByName("LU")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rt.DefaultTraceConfig()

	const callers = 8
	results := make([]*AppData, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = CollectWith(context.Background(), app, cfg, CollectOptions{Workers: 3, Cache: tc})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	for i := 1; i < callers; i++ {
		sameTraces(t, []*AppData{results[0]}, []*AppData{results[i]})
	}
	if got := saves.Load(); got != int64(numRunKinds) {
		t.Errorf("disk writes = %d, want exactly %d (one per run kind)", got, numRunKinds)
	}
}
