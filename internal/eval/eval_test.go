package eval

import (
	"bytes"
	"encoding/csv"
	"math"
	"strings"
	"testing"

	"dae/internal/bench"
	"dae/internal/dae"
	"dae/internal/dvfs"
	"dae/internal/rt"
)

// collectOnce caches the (expensive) full collection across tests.
var collected []*AppData

func collect(t *testing.T) []*AppData {
	t.Helper()
	if collected != nil {
		return collected
	}
	data, err := CollectAll(rt.DefaultTraceConfig())
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	collected = data
	return data
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Errorf("geomean(1,4) = %g, want 2", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Error("geomean of empty should be 0")
	}
	if g := GeoMean([]float64{3}); math.Abs(g-3) > 1e-12 {
		t.Error("geomean of singleton")
	}
}

func TestTable1Shape(t *testing.T) {
	data := collect(t)
	m := rt.DefaultMachine()
	rows := Table1(data, m)
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	byApp := map[string]Table1Row{}
	for _, r := range rows {
		byApp[r.App] = r
		if r.Tasks == 0 {
			t.Errorf("%s: no tasks", r.App)
		}
		if r.TAPercent <= 0 || r.TAPercent >= 100 {
			t.Errorf("%s: TA%% = %g out of range", r.App, r.TAPercent)
		}
		if r.TAMicros <= 0.3 || r.TAMicros > 200 {
			t.Errorf("%s: TA = %g µs implausible (paper range ~2-30 µs)", r.App, r.TAMicros)
		}
	}
	// LU and Cholesky fully affine; FFT/LBM skeleton-dominated.
	if byApp["LU"].AffineLoops != byApp["LU"].TotalLoops {
		t.Errorf("LU should be fully affine: %d/%d", byApp["LU"].AffineLoops, byApp["LU"].TotalLoops)
	}
	if byApp["Cholesky"].AffineLoops != byApp["Cholesky"].TotalLoops {
		t.Errorf("Cholesky should be fully affine")
	}
	if byApp["FFT"].AffineLoops != 0 {
		t.Errorf("FFT affine loops = %d, want 0", byApp["FFT"].AffineLoops)
	}
	if byApp["LBM"].AffineLoops != 0 {
		t.Errorf("LBM affine loops = %d, want 0", byApp["LBM"].AffineLoops)
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "LU") || !strings.Contains(out, "TA%") {
		t.Error("formatted table missing content")
	}
}

func TestFig3Shape(t *testing.T) {
	data := collect(t)
	m := rt.DefaultMachine()
	rows := Fig3(data, m)
	if len(rows) != 8 { // 7 apps + geomean
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	gm := rows[len(rows)-1]
	if gm.App != "G.Mean" {
		t.Fatal("last row must be the geometric mean")
	}

	// Headline claims (paper §6.1, 500 ns transitions): both DAE optimal
	// configurations improve mean EDP by roughly a quarter with only a few
	// percent time loss; the compiler version is at least competitive with
	// the expert's.
	h := ComputeHeadline(rows)
	t.Logf("%s", FormatHeadline(h, "500ns"))
	if h.AutoEDPGain < 0.15 || h.AutoEDPGain > 0.60 {
		t.Errorf("Compiler DAE mean EDP gain = %.1f%%, want roughly 25%% (15-60%%)", 100*h.AutoEDPGain)
	}
	if h.ManualEDPGain < 0.10 {
		t.Errorf("Manual DAE mean EDP gain = %.1f%%, want > 10%%", 100*h.ManualEDPGain)
	}
	// Our hand-written baseline prefetches at cache-line granularity in
	// every kernel (stronger than the paper's expert versions), so the
	// compiler is required to stay within a few points of it overall; the
	// per-app §6.2 claims are asserted below.
	if h.AutoEDPGain < h.ManualEDPGain-0.05 {
		t.Errorf("Compiler DAE (%.1f%%) should be within 5 points of Manual DAE (%.1f%%) on mean EDP",
			100*h.AutoEDPGain, 100*h.ManualEDPGain)
	}
	// §6.2.1/§6.2.2: on the affine apps and FFT the compiler matches or
	// beats the expert.
	for _, r := range rows[:7] {
		switch r.App {
		case "LU", "Cholesky":
			if r.EDP[AutoOptimal] > r.EDP[ManualOptimal]+0.01 {
				t.Errorf("%s: compiler EDP %.3f should beat manual %.3f (§6.2.1)",
					r.App, r.EDP[AutoOptimal], r.EDP[ManualOptimal])
			}
		case "FFT":
			if r.EDP[AutoOptimal] > r.EDP[ManualOptimal]*1.10 {
				t.Errorf("FFT: compiler EDP %.3f should be competitive with manual %.3f (§6.2.2)",
					r.EDP[AutoOptimal], r.EDP[ManualOptimal])
			}
		}
	}
	if h.AutoTimeLoss > 0.12 {
		t.Errorf("Compiler DAE mean time loss = %.1f%%, want small (< 12%%)", 100*h.AutoTimeLoss)
	}

	// Per-app sanity: normalized values are positive; CAE optimal saves
	// energy but costs time on every app.
	for _, r := range rows[:7] {
		if r.Time[CAEOptimal] < 1.0 {
			t.Errorf("%s: CAE optimal time %.3f should not beat fmax", r.App, r.Time[CAEOptimal])
		}
		if r.Energy[CAEOptimal] > 1.0 {
			t.Errorf("%s: CAE optimal energy %.3f should save energy", r.App, r.Energy[CAEOptimal])
		}
	}

	// The LBM exception: coupled optimal EDP at least rivals compiler DAE.
	for _, r := range rows[:7] {
		if r.App == "LBM" {
			if r.EDP[CAEOptimal] > r.EDP[AutoOptimal]*1.15 {
				t.Errorf("LBM: CAE optimal EDP %.3f should rival DAE %.3f (paper's exception)",
					r.EDP[CAEOptimal], r.EDP[AutoOptimal])
			}
		}
	}

	for _, metric := range []string{"Time", "Energy", "EDP"} {
		out := FormatFig3(rows, metric)
		if !strings.Contains(out, "G.Mean") {
			t.Errorf("formatted %s table missing geomean", metric)
		}
	}
}

func TestZeroLatencyImprovesOnRealistic(t *testing.T) {
	data := collect(t)
	real := rt.DefaultMachine()
	ideal := real
	ideal.DVFS = dvfs.Ideal()

	hReal := ComputeHeadline(Fig3(data, real))
	hIdeal := ComputeHeadline(Fig3(data, ideal))
	t.Logf("%s%s", FormatHeadline(hReal, "500ns"), FormatHeadline(hIdeal, "0ns"))

	// §6.1: with zero transition latency both DAE variants gain a few more
	// EDP points and lose less time.
	if hIdeal.AutoEDPGain < hReal.AutoEDPGain {
		t.Errorf("zero-latency EDP gain %.3f should exceed 500ns gain %.3f",
			hIdeal.AutoEDPGain, hReal.AutoEDPGain)
	}
	if hIdeal.AutoTimeLoss > hReal.AutoTimeLoss {
		t.Errorf("zero-latency time loss %.3f should be below 500ns loss %.3f",
			hIdeal.AutoTimeLoss, hReal.AutoTimeLoss)
	}
}

func TestFig4Profiles(t *testing.T) {
	data := collect(t)
	m := rt.DefaultMachine()
	for _, name := range []string{"Cholesky", "FFT", "LibQ"} {
		var d *AppData
		for _, x := range data {
			if x.Name == name {
				d = x
			}
		}
		if d == nil {
			t.Fatalf("no data for %s", name)
		}
		p := Fig4(d, m)
		if len(p.CAE) != 6 || len(p.Auto) != 6 || len(p.Manual) != 6 {
			t.Fatalf("%s: expected 6 frequency points per series", name)
		}
		// CAE has no prefetch component; DAE versions do.
		for _, pt := range p.CAE {
			if pt.Prefetch != 0 {
				t.Errorf("%s CAE prefetch time should be 0", name)
			}
		}
		for _, pt := range p.Auto {
			if pt.Prefetch <= 0 {
				t.Errorf("%s Auto DAE should spend time prefetching", name)
			}
		}
		// CAE total time decreases monotonically with frequency.
		for i := 1; i < len(p.CAE); i++ {
			if p.CAE[i].Total() >= p.CAE[i-1].Total() {
				t.Errorf("%s CAE time should fall as f rises (points %d,%d)", name, i-1, i)
			}
		}
		// DAE task (execute) time decreases with execute frequency while the
		// prefetch time stays constant (access pinned at fmin).
		first, last := p.Auto[0], p.Auto[len(p.Auto)-1]
		if last.Task >= first.Task {
			t.Errorf("%s Auto DAE execute time should fall with f", name)
		}
		if math.Abs(last.Prefetch-first.Prefetch) > 1e-9*first.Prefetch {
			t.Errorf("%s Auto DAE prefetch time should not depend on execute f", name)
		}
		// Energy at fmax exceeds energy at intermediate frequencies for the
		// CAE series on at least one app (the V² effect) — checked globally
		// in Fig3; here just require positive totals.
		for _, pt := range append(append([]Fig4Point{}, p.CAE...), p.Auto...) {
			if pt.TotalE() <= 0 || pt.Total() <= 0 {
				t.Errorf("%s: non-positive profile point", name)
			}
		}
		out := FormatFig4(p)
		if !strings.Contains(out, name) || !strings.Contains(out, "Auto DAE") {
			t.Error("formatted Fig4 missing content")
		}
	}
}

// TestCholeskyAutoVsManualStory reproduces §6.2.1: the automatically
// generated Cholesky access version prefetches more data than the expert's
// (longer access phase) but ends with equal-or-better energy and EDP.
func TestCholeskyAutoVsManualStory(t *testing.T) {
	data := collect(t)
	var d *AppData
	for _, x := range data {
		if x.Name == "Cholesky" {
			d = x
		}
	}
	m := rt.DefaultMachine()
	man := rt.Evaluate(d.Manual, m, rt.PolicyOptimalEDP)
	auto := rt.Evaluate(d.Auto, m, rt.PolicyOptimalEDP)
	t.Logf("Cholesky manual: %s", man)
	t.Logf("Cholesky auto:   %s", auto)
	if auto.AccessTime <= man.AccessTime {
		t.Errorf("auto access phase (%.4g) should be longer than manual (%.4g): it prefetches more",
			auto.AccessTime, man.AccessTime)
	}
	if auto.EDP > man.EDP*1.05 {
		t.Errorf("auto EDP %.4g should be competitive with manual %.4g", auto.EDP, man.EDP)
	}
}

func TestFormatStrategies(t *testing.T) {
	data := collect(t)
	out := FormatStrategies(data)
	for _, want := range []string{"affine", "skeleton", "LU", "FFT"} {
		if !strings.Contains(out, want) {
			t.Errorf("strategies report missing %q", want)
		}
	}
}

func TestCSVOutputs(t *testing.T) {
	data := collect(t)
	m := rt.DefaultMachine()

	var buf bytes.Buffer
	if err := WriteTable1CSV(&buf, Table1(data, m)); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatalf("table1 csv unparsable: %v", err)
	}
	if len(recs) != 8 || len(recs[0]) != 9 {
		t.Errorf("table1 csv shape %dx%d, want 8x9 (policy EDP columns included)", len(recs), len(recs[0]))
	}

	rows := Fig3(data, m)
	for _, metric := range []string{"Time", "Energy", "EDP"} {
		buf.Reset()
		if err := WriteFig3CSV(&buf, rows, metric); err != nil {
			t.Fatal(err)
		}
		recs, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
		if err != nil {
			t.Fatalf("fig3 %s csv unparsable: %v", metric, err)
		}
		if len(recs) != 9 || len(recs[0]) != 6 {
			t.Errorf("fig3 %s csv shape %dx%d, want 9x6", metric, len(recs), len(recs[0]))
		}
	}

	buf.Reset()
	if err := WriteFig4CSV(&buf, Fig4(data[1], m)); err != nil {
		t.Fatal(err)
	}
	recs, err = csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatalf("fig4 csv unparsable: %v", err)
	}
	if len(recs) != 1+3*6 {
		t.Errorf("fig4 csv rows = %d, want 19", len(recs))
	}
}

func TestCollectRefined(t *testing.T) {
	app, err := bench.AppByName("Cigar")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Collect(app, rt.DefaultTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	refined, err := CollectRefined(app, rt.DefaultTraceConfig(), dae.DefaultRefine(), 4)
	if err != nil {
		t.Fatal(err)
	}
	m := rt.DefaultMachine()
	mp := rt.Evaluate(plain.Auto, m, rt.PolicyOptimalEDP)
	mr := rt.Evaluate(refined.Auto, m, rt.PolicyOptimalEDP)
	// Refinement prunes the resident-table prefetches of ga_eval, so the
	// refined access phases are cheaper and EDP does not get worse.
	if mr.AccessTime >= mp.AccessTime {
		t.Errorf("refined access time %.4g should undercut plain %.4g", mr.AccessTime, mp.AccessTime)
	}
	if mr.EDP > mp.EDP*1.01 {
		t.Errorf("refined EDP %.4g should not regress plain %.4g", mr.EDP, mp.EDP)
	}
}

// TestDeterminism: two independent collections must produce identical
// Figure 3 numbers — the whole pipeline (compilation, generation, tracing,
// scheduling, models) is deterministic by construction.
func TestDeterminism(t *testing.T) {
	app, err := bench.AppByName("FFT")
	if err != nil {
		t.Fatal(err)
	}
	m := rt.DefaultMachine()
	run := func() Fig3Row {
		d, err := Collect(app, rt.DefaultTraceConfig())
		if err != nil {
			t.Fatal(err)
		}
		return Fig3([]*AppData{d}, m)[0]
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two collections differ:\n%+v\n%+v", a, b)
	}
}
