package eval

import (
	"encoding/json"
	"fmt"

	"dae/internal/dae"
	"dae/internal/rt"
)

// ResultSummary is the persistable/wire summary of a dae.Result: the
// Table 1 and strategy-report fields. The generated IR functions are
// process-local and never serialized, so a decoded Result carries summaries
// only (HasAccess records whether an access version existed).
//
// It is shared by the trace-cache envelope and the /v1/trace wire format,
// so a daed node and a local cache agree byte-for-byte on what a stored
// result looks like.
type ResultSummary struct {
	Strategy    int    `json:"strategy"`
	Reason      string `json:"reason,omitempty"`
	TotalLoops  int    `json:"total_loops"`
	AffineLoops int    `json:"affine_loops"`
	Classes     int    `json:"classes"`
	MergedNests int    `json:"merged_nests"`
	NConvUn     int64  `json:"n_conv_un"`
	NOrig       int64  `json:"n_orig"`
	HasAccess   bool   `json:"has_access"`
}

// summarizeResult projects a dae.Result onto its serializable summary.
func summarizeResult(r *dae.Result) ResultSummary {
	return ResultSummary{
		Strategy:    int(r.Strategy),
		Reason:      r.Reason,
		TotalLoops:  r.TotalLoops,
		AffineLoops: r.AffineLoops,
		Classes:     r.Classes,
		MergedNests: r.MergedNests,
		NConvUn:     r.NConvUn,
		NOrig:       r.NOrig,
		HasAccess:   r.Access != nil,
	}
}

// result reconstructs the summary-only dae.Result.
func (rj ResultSummary) result() *dae.Result {
	return &dae.Result{
		Strategy:    dae.Strategy(rj.Strategy),
		Reason:      rj.Reason,
		TotalLoops:  rj.TotalLoops,
		AffineLoops: rj.AffineLoops,
		Classes:     rj.Classes,
		MergedNests: rj.MergedNests,
		NConvUn:     rj.NConvUn,
		NOrig:       rj.NOrig,
	}
}

// AppDataWire is the JSON wire form of one AppData: the three encoded
// traces plus the compiler's per-task result summaries. It is what daed's
// POST /v1/trace returns, letting a remote daebench reconstruct the exact
// trace set a local collection would produce and evaluate it client-side.
type AppDataWire struct {
	Name    string                   `json:"name"`
	CAE     json.RawMessage          `json:"cae"`
	Manual  json.RawMessage          `json:"manual"`
	Auto    json.RawMessage          `json:"auto"`
	Results map[string]ResultSummary `json:"results,omitempty"`
}

// EncodeAppData serializes one collected AppData for the wire.
func EncodeAppData(d *AppData) (*AppDataWire, error) {
	w := &AppDataWire{Name: d.Name}
	var err error
	if w.CAE, err = rt.EncodeTrace(d.CAE); err != nil {
		return nil, fmt.Errorf("eval: encode %s coupled trace: %w", d.Name, err)
	}
	if w.Manual, err = rt.EncodeTrace(d.Manual); err != nil {
		return nil, fmt.Errorf("eval: encode %s manual trace: %w", d.Name, err)
	}
	if w.Auto, err = rt.EncodeTrace(d.Auto); err != nil {
		return nil, fmt.Errorf("eval: encode %s auto trace: %w", d.Name, err)
	}
	if d.Results != nil {
		w.Results = make(map[string]ResultSummary, len(d.Results))
		for name, r := range d.Results {
			w.Results[name] = summarizeResult(r)
		}
	}
	return w, nil
}

// Decode reconstructs the AppData. The traces are validated by
// rt.DecodeTrace exactly as cache loads are, so a damaged wire payload
// fails here instead of corrupting an evaluation.
func (w *AppDataWire) Decode() (*AppData, error) {
	d := &AppData{Name: w.Name}
	var err error
	if d.CAE, err = rt.DecodeTrace(w.CAE); err != nil {
		return nil, fmt.Errorf("eval: decode %s coupled trace: %w", w.Name, err)
	}
	if d.Manual, err = rt.DecodeTrace(w.Manual); err != nil {
		return nil, fmt.Errorf("eval: decode %s manual trace: %w", w.Name, err)
	}
	if d.Auto, err = rt.DecodeTrace(w.Auto); err != nil {
		return nil, fmt.Errorf("eval: decode %s auto trace: %w", w.Name, err)
	}
	if w.Results != nil {
		d.Results = make(map[string]*dae.Result, len(w.Results))
		for name, rj := range w.Results {
			d.Results[name] = rj.result()
		}
	}
	return d, nil
}
