package eval

import (
	"fmt"
	"strings"

	"dae/internal/fault"
)

// RunError is the failure of one (app, run) collection. The collection API
// returns an errors.Join of RunErrors in deterministic job order, so callers
// can render a per-run summary instead of parsing the joined string.
type RunError struct {
	// App is the benchmark name.
	App string
	// Kind is the run kind: "coupled", "manual-dae", or "compiler-dae".
	Kind string
	// Err is the underlying failure (usually a *fault.Error).
	Err error
}

// Error implements error.
func (e *RunError) Error() string { return fmt.Sprintf("%s (%s): %v", e.App, e.Kind, e.Err) }

// Unwrap exposes the cause, so errors.Is sees through to the fault class.
func (e *RunError) Unwrap() error { return e.Err }

// Class returns the short fault class of the failure ("trap",
// "step-budget", "panic", ... or "error" when unclassified).
func (e *RunError) Class() string { return fault.ClassOf(e.Err) }

// Failures flattens an error returned by the collection API into its
// per-run failures, in the deterministic job order they were joined in. A
// nil error yields nil; an error with no RunErrors in its tree yields nil
// (callers fall back to the plain error string).
func Failures(err error) []*RunError {
	var out []*RunError
	var walk func(error)
	walk = func(err error) {
		if err == nil {
			return
		}
		if re, ok := err.(*RunError); ok {
			out = append(out, re)
			return
		}
		switch x := err.(type) {
		case interface{ Unwrap() []error }:
			for _, sub := range x.Unwrap() {
				walk(sub)
			}
		case interface{ Unwrap() error }:
			walk(x.Unwrap())
		}
	}
	walk(err)
	return out
}

// FormatFailures renders the per-run failure summary the CLIs print before
// exiting nonzero: one line per failed run with app, run kind, and error
// class, followed by the first line of each underlying error.
func FormatFailures(err error) string {
	fails := Failures(err)
	if len(fails) == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d run(s) failed:\n", len(fails))
	fmt.Fprintf(&sb, "  %-10s %-14s %-14s %s\n", "app", "run", "class", "error")
	for _, f := range fails {
		msg := ""
		if f.Err != nil {
			msg = f.Err.Error()
		}
		if i := strings.IndexByte(msg, '\n'); i >= 0 {
			msg = msg[:i]
		}
		fmt.Fprintf(&sb, "  %-10s %-14s %-14s %s\n", f.App, f.Kind, f.Class(), msg)
	}
	return sb.String()
}

// FormatFailuresVerbose is FormatFailures followed by the captured panic
// stack of every failure that has one (fault.Recover attaches stacks to
// panic-kind faults at each pipeline boundary). The CLIs print this form
// under -v.
func FormatFailuresVerbose(err error) string {
	out := FormatFailures(err)
	if out == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteString(out)
	for _, f := range Failures(err) {
		if st := fault.StackOf(f.Err); len(st) > 0 {
			fmt.Fprintf(&sb, "\n--- stack of %s (%s):\n%s", f.App, f.Kind, st)
		}
	}
	return sb.String()
}
