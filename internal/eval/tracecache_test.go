package eval

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"dae/internal/fault"
	"dae/internal/fault/inject"

	"dae/internal/bench"
	"dae/internal/rt"
)

// TestTraceCacheDiskRoundtrip: a cache directory written by one cache
// instance serves a fresh instance (a later process) without re-simulation,
// reproducing identical traces and the Table 1 / strategy summaries.
func TestTraceCacheDiskRoundtrip(t *testing.T) {
	app, err := bench.AppByName("LibQ")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rt.DefaultTraceConfig()
	dir := t.TempDir()

	first, err := CollectWith(context.Background(), app, cfg, CollectOptions{Cache: NewTraceCache(dir)})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("cache dir holds %d entries, want 3 (one per run)", len(entries))
	}

	// A fresh cache over the same directory simulates a new process.
	second, err := CollectWith(context.Background(), app, cfg, CollectOptions{Cache: NewTraceCache(dir)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.CAE, second.CAE) ||
		!reflect.DeepEqual(first.Manual, second.Manual) ||
		!reflect.DeepEqual(first.Auto, second.Auto) {
		t.Error("disk-loaded traces differ from the originals")
	}
	if len(second.Results) != len(first.Results) {
		t.Fatalf("disk-loaded results have %d tasks, want %d", len(second.Results), len(first.Results))
	}
	for name, r := range first.Results {
		lr := second.Results[name]
		if lr == nil {
			t.Fatalf("missing loaded result for %s", name)
		}
		if lr.Strategy != r.Strategy || lr.AffineLoops != r.AffineLoops ||
			lr.TotalLoops != r.TotalLoops || lr.Classes != r.Classes ||
			lr.MergedNests != r.MergedNests || lr.NConvUn != r.NConvUn ||
			lr.NOrig != r.NOrig || lr.Reason != r.Reason {
			t.Errorf("%s: loaded summary differs from original", name)
		}
	}

	// The loaded data must feed the downstream evaluation identically.
	m := rt.DefaultMachine()
	a := Fig3([]*AppData{first}, m)
	b := Fig3([]*AppData{second}, m)
	if !reflect.DeepEqual(a, b) {
		t.Error("Fig3 rows differ between fresh and disk-loaded data")
	}
	if FormatStrategies([]*AppData{first}) != FormatStrategies([]*AppData{second}) {
		t.Error("strategy report differs between fresh and disk-loaded data")
	}
}

// TestTraceCacheFreshEntryLoads: every entry a collection just wrote must
// load back with a valid checksum. Guards against checksumming a different
// byte form than the one stored (the envelope marshal re-compacts the
// embedded raw trace) — that bug silently degraded every warm run to a full
// re-simulation, which no output-equality test can catch.
func TestTraceCacheFreshEntryLoads(t *testing.T) {
	app, err := bench.AppByName("LibQ")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rt.DefaultTraceConfig()
	dir := t.TempDir()
	if _, err := CollectWith(context.Background(), app, cfg, CollectOptions{Cache: NewTraceCache(dir)}); err != nil {
		t.Fatal(err)
	}
	tc := NewTraceCache(dir) // fresh instance: memory empty, disk only
	for _, kind := range []runKind{runCAE, runManual, runAuto} {
		key := runKey("LibQ", kind, cfg, nil)
		out, err := tc.load(key)
		if err != nil {
			t.Errorf("load(%s) failed on a just-written entry: %v", kind, err)
		} else if out == nil {
			t.Errorf("load(%s) missed a just-written entry", kind)
		}
	}
}

// TestTraceCacheCorruptEntry: unreadable cache files degrade to a miss and
// are overwritten, never an error.
func TestTraceCacheCorruptEntry(t *testing.T) {
	app, err := bench.AppByName("LibQ")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rt.DefaultTraceConfig()
	dir := t.TempDir()
	if _, err := CollectWith(context.Background(), app, cfg, CollectOptions{Cache: NewTraceCache(dir)}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := os.WriteFile(dir+"/"+e.Name(), []byte("not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := CollectWith(context.Background(), app, cfg, CollectOptions{Cache: NewTraceCache(dir)}); err != nil {
		t.Fatalf("corrupt cache entries must be treated as misses, got: %v", err)
	}
}

// TestRunKeyDistinguishesConfigs: the content key must change whenever a
// field that influences the trace changes.
func TestRunKeyDistinguishesConfigs(t *testing.T) {
	base := rt.DefaultTraceConfig()
	keys := map[string]string{}
	add := func(label, key string) {
		for prev, pk := range keys {
			if pk == key {
				t.Errorf("key collision between %q and %q: %s", prev, label, key)
			}
		}
		keys[label] = key
	}
	add("base", runKey("LU", runAuto, base, nil))
	add("other-app", runKey("FFT", runAuto, base, nil))
	add("other-kind", runKey("LU", runCAE, base, nil))
	c := base
	c.Cores = 8
	add("cores", runKey("LU", runAuto, c, nil))
	c = base
	c.Hierarchy.L1.SizeBytes *= 2
	add("l1", runKey("LU", runAuto, c, nil))
	c = base
	c.Place = rt.PlaceLeastLoaded
	add("place", runKey("LU", runAuto, c, nil))
	r := &RefineSpec{PerTask: 4}
	add("refined", runKey("LU", runAuto, base, r))
	r2 := &RefineSpec{PerTask: 8}
	add("refined-8", runKey("LU", runAuto, base, r2))

	// Refinement must NOT influence the coupled/manual keys: those runs are
	// identical with and without it, which is what the refined experiment's
	// cache reuse relies on.
	if runKey("LU", runCAE, base, r) != runKey("LU", runCAE, base, nil) {
		t.Error("refine options must not key the coupled run")
	}
	if runKey("LU", runManual, base, r) != runKey("LU", runManual, base, nil) {
		t.Error("refine options must not key the manual run")
	}
}

// TestTraceCacheChecksumMismatch: an envelope whose content no longer
// matches its recorded checksum — valid JSON, silently rotted payload — is
// classified fault.ErrCacheCorrupt by load and degraded to a cache miss;
// the recollection reproduces the original traces exactly.
func TestTraceCacheChecksumMismatch(t *testing.T) {
	app, err := bench.AppByName("LibQ")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rt.DefaultTraceConfig()
	dir := t.TempDir()
	first, err := CollectWith(context.Background(), app, cfg, CollectOptions{Cache: NewTraceCache(dir)})
	if err != nil {
		t.Fatal(err)
	}

	// Replace each entry's checksum with a wrong-but-well-formed value, so
	// the JSON still parses and only the content validation can catch it.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, e := range entries {
		path := filepath.Join(dir, e.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var env map[string]any
		if err := json.Unmarshal(b, &env); err != nil {
			t.Fatal(err)
		}
		env["sum"] = strings.Repeat("ab", 32)
		keys = append(keys, env["key"].(string))
		nb, err := json.Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, nb, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// load must classify the damage as cache corruption...
	tc := NewTraceCache(dir)
	for _, key := range keys {
		if _, err := tc.load(key); !errors.Is(err, fault.ErrCacheCorrupt) {
			t.Errorf("load(%q) = %v, want ErrCacheCorrupt", key, err)
		}
	}

	// ...and the collection path must treat it as a miss and re-simulate to
	// identical traces.
	second, err := CollectWith(context.Background(), app, cfg, CollectOptions{Cache: NewTraceCache(dir)})
	if err != nil {
		t.Fatalf("checksum mismatch must degrade to a miss, got: %v", err)
	}
	if !reflect.DeepEqual(first.Auto, second.Auto) || !reflect.DeepEqual(first.CAE, second.CAE) {
		t.Error("recollected traces differ from the originals")
	}
}

// TestTraceCacheTruncatedEntry: a torn write (file cut mid-envelope) is
// also a clean miss, via the injection harness's corruption helper.
func TestTraceCacheTruncatedEntry(t *testing.T) {
	app, err := bench.AppByName("LibQ")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rt.DefaultTraceConfig()
	dir := t.TempDir()
	first, err := CollectWith(context.Background(), app, cfg, CollectOptions{Cache: NewTraceCache(dir)})
	if err != nil {
		t.Fatal(err)
	}
	n, err := inject.CorruptCacheDir(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("corrupted %d entries, want 3", n)
	}
	second, err := CollectWith(context.Background(), app, cfg, CollectOptions{Cache: NewTraceCache(dir)})
	if err != nil {
		t.Fatalf("truncated cache entries must be treated as misses, got: %v", err)
	}
	if !reflect.DeepEqual(first.Auto, second.Auto) {
		t.Error("recollected traces differ from the originals")
	}
}

// smallOutput builds a minimal but valid cache entry for write-path tests.
func smallOutput(t *testing.T) *runOutput {
	t.Helper()
	return &runOutput{Trace: &rt.Trace{Workload: "write-test", Cores: 1}}
}

// TestTraceCacheWriteRetry: a transient failure of the first disk-save
// attempt is retried, and the retried write lands on disk (a fresh cache
// instance — a later process — gets a hit).
func TestTraceCacheWriteRetry(t *testing.T) {
	dir := t.TempDir()
	tc := NewTraceCache(dir)
	failed := 0
	tc.saveFault = func(attempt int) error {
		if attempt == 0 {
			failed++
			return errors.New("transient write failure")
		}
		return nil
	}
	tc.put("retry-key", smallOutput(t))
	if failed != 1 {
		t.Fatalf("first save attempt consulted %d times, want 1", failed)
	}
	if _, ok := NewTraceCache(dir).get("retry-key"); !ok {
		t.Fatal("retried write did not persist the entry")
	}
}

// TestTraceCacheWriteFailureDegradesToMemory: when every save attempt
// fails, the entry stays usable in memory and nothing lands on disk — the
// cache degrades instead of failing the collection.
func TestTraceCacheWriteFailureDegradesToMemory(t *testing.T) {
	dir := t.TempDir()
	tc := NewTraceCache(dir)
	attempts := 0
	tc.saveFault = func(int) error {
		attempts++
		return errors.New("disk gone")
	}
	tc.put("doomed-key", smallOutput(t))
	if attempts != saveAttempts {
		t.Fatalf("save tried %d times, want %d", attempts, saveAttempts)
	}
	if _, ok := tc.get("doomed-key"); !ok {
		t.Error("entry lost from memory after disk-save failure")
	}
	if _, ok := NewTraceCache(dir).get("doomed-key"); ok {
		t.Error("failed write left a disk entry")
	}
}

// TestTraceCachePutRace: two goroutines racing put on the same key must not
// corrupt the entry (write-then-rename keeps each write atomic). Run under
// -race in tier 1.
func TestTraceCachePutRace(t *testing.T) {
	dir := t.TempDir()
	tc := NewTraceCache(dir)
	out := smallOutput(t)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tc.put("raced-key", out)
		}()
	}
	wg.Wait()
	fresh := NewTraceCache(dir)
	got, ok := fresh.get("raced-key")
	if !ok {
		t.Fatal("racing puts lost the entry")
	}
	if got.Trace == nil || got.Trace.Workload != "write-test" {
		t.Fatalf("racing puts corrupted the entry: %+v", got)
	}
}
