package eval

import (
	"os"
	"reflect"
	"testing"

	"dae/internal/bench"
	"dae/internal/rt"
)

// TestTraceCacheDiskRoundtrip: a cache directory written by one cache
// instance serves a fresh instance (a later process) without re-simulation,
// reproducing identical traces and the Table 1 / strategy summaries.
func TestTraceCacheDiskRoundtrip(t *testing.T) {
	app, err := bench.AppByName("LibQ")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rt.DefaultTraceConfig()
	dir := t.TempDir()

	first, err := CollectWith(app, cfg, CollectOptions{Cache: NewTraceCache(dir)})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("cache dir holds %d entries, want 3 (one per run)", len(entries))
	}

	// A fresh cache over the same directory simulates a new process.
	second, err := CollectWith(app, cfg, CollectOptions{Cache: NewTraceCache(dir)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.CAE, second.CAE) ||
		!reflect.DeepEqual(first.Manual, second.Manual) ||
		!reflect.DeepEqual(first.Auto, second.Auto) {
		t.Error("disk-loaded traces differ from the originals")
	}
	if len(second.Results) != len(first.Results) {
		t.Fatalf("disk-loaded results have %d tasks, want %d", len(second.Results), len(first.Results))
	}
	for name, r := range first.Results {
		lr := second.Results[name]
		if lr == nil {
			t.Fatalf("missing loaded result for %s", name)
		}
		if lr.Strategy != r.Strategy || lr.AffineLoops != r.AffineLoops ||
			lr.TotalLoops != r.TotalLoops || lr.Classes != r.Classes ||
			lr.MergedNests != r.MergedNests || lr.NConvUn != r.NConvUn ||
			lr.NOrig != r.NOrig || lr.Reason != r.Reason {
			t.Errorf("%s: loaded summary differs from original", name)
		}
	}

	// The loaded data must feed the downstream evaluation identically.
	m := rt.DefaultMachine()
	a := Fig3([]*AppData{first}, m)
	b := Fig3([]*AppData{second}, m)
	if !reflect.DeepEqual(a, b) {
		t.Error("Fig3 rows differ between fresh and disk-loaded data")
	}
	if FormatStrategies([]*AppData{first}) != FormatStrategies([]*AppData{second}) {
		t.Error("strategy report differs between fresh and disk-loaded data")
	}
}

// TestTraceCacheCorruptEntry: unreadable cache files degrade to a miss and
// are overwritten, never an error.
func TestTraceCacheCorruptEntry(t *testing.T) {
	app, err := bench.AppByName("LibQ")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rt.DefaultTraceConfig()
	dir := t.TempDir()
	if _, err := CollectWith(app, cfg, CollectOptions{Cache: NewTraceCache(dir)}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := os.WriteFile(dir+"/"+e.Name(), []byte("not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := CollectWith(app, cfg, CollectOptions{Cache: NewTraceCache(dir)}); err != nil {
		t.Fatalf("corrupt cache entries must be treated as misses, got: %v", err)
	}
}

// TestRunKeyDistinguishesConfigs: the content key must change whenever a
// field that influences the trace changes.
func TestRunKeyDistinguishesConfigs(t *testing.T) {
	base := rt.DefaultTraceConfig()
	keys := map[string]string{}
	add := func(label, key string) {
		for prev, pk := range keys {
			if pk == key {
				t.Errorf("key collision between %q and %q: %s", prev, label, key)
			}
		}
		keys[label] = key
	}
	add("base", runKey("LU", runAuto, base, nil))
	add("other-app", runKey("FFT", runAuto, base, nil))
	add("other-kind", runKey("LU", runCAE, base, nil))
	c := base
	c.Cores = 8
	add("cores", runKey("LU", runAuto, c, nil))
	c = base
	c.Hierarchy.L1.SizeBytes *= 2
	add("l1", runKey("LU", runAuto, c, nil))
	c = base
	c.Place = rt.PlaceLeastLoaded
	add("place", runKey("LU", runAuto, c, nil))
	r := &RefineSpec{PerTask: 4}
	add("refined", runKey("LU", runAuto, base, r))
	r2 := &RefineSpec{PerTask: 8}
	add("refined-8", runKey("LU", runAuto, base, r2))

	// Refinement must NOT influence the coupled/manual keys: those runs are
	// identical with and without it, which is what the refined experiment's
	// cache reuse relies on.
	if runKey("LU", runCAE, base, r) != runKey("LU", runCAE, base, nil) {
		t.Error("refine options must not key the coupled run")
	}
	if runKey("LU", runManual, base, r) != runKey("LU", runManual, base, nil) {
		t.Error("refine options must not key the manual run")
	}
}
