package eval

import (
	"context"
	"strings"
	"testing"

	"dae/internal/bench"
	"dae/internal/interp"
	"dae/internal/rt"
)

// TestEngineDifferentialAllRuns is the tentpole acceptance gate: the
// register-bytecode engine and the tree oracle must produce byte-identical
// traces — records, work counts, memory statistics, quarantine state — on
// all 21 (app, version) runs. Both collections run on 4 workers, so under
// -race this additionally proves the engines share no hidden mutable state
// (the Program snapshot is read from many goroutines).
func TestEngineDifferentialAllRuns(t *testing.T) {
	cfg := rt.DefaultTraceConfig()
	cfg.Engine = interp.EngineBytecode
	byc, err := CollectAllWith(context.Background(), cfg, CollectOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = interp.EngineTree
	tree, err := CollectAllWith(context.Background(), cfg, CollectOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sameTraces(t, byc, tree)
}

// TestCollectOpStatsHistogram: the dynamic op histogram of a fixed app must
// record the op classes every benchmark kernel executes, pair counts must be
// consistent with op counts, and the rendering must be deterministic.
func TestCollectOpStatsHistogram(t *testing.T) {
	app, err := bench.AppByName("LibQ")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rt.DefaultTraceConfig()
	st, err := CollectOpStats(context.Background(), []bench.App{app}, cfg, CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Total() == 0 {
		t.Fatal("histogram is empty")
	}
	again, err := CollectOpStats(context.Background(), []bench.App{app}, cfg, CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Format() != again.Format() {
		t.Error("op histogram is not deterministic across collections")
	}
	out := st.Format()
	for _, want := range []string{"dynamic op histogram", "top op pairs", "loadF", "condbr", "prefetch"} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram output missing %q:\n%s", want, out)
		}
	}
}
