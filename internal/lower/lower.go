// Package lower translates checked TaskC files into the SSA IR. Scalar
// locals become allocas (promoted to registers by the mem2reg pass); array
// accesses become GEP+load/store with explicit dimension operands so that the
// scalar-evolution and polyhedral analyses can recover the access shape.
package lower

import (
	"fmt"

	"dae/internal/ir"
	"dae/internal/taskc"
)

// File lowers a checked TaskC file into a fresh IR module named name.
func File(file *taskc.File, info *taskc.Info, name string) (*ir.Module, error) {
	m := ir.NewModule(name)
	l := &lowerer{info: info, funcs: make(map[*taskc.FuncDecl]*ir.Func)}

	// Create all signatures first so calls can be resolved.
	for _, fd := range file.Funcs {
		f := ir.NewFunc(fd.Name, irType(fd.Ret), irParams(fd))
		f.IsTask = fd.IsTask
		m.AddFunc(f)
		l.funcs[fd] = f
	}
	for _, fd := range file.Funcs {
		if err := l.lowerFunc(fd); err != nil {
			return nil, err
		}
	}
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("lower: generated invalid IR: %w", err)
	}
	return m, nil
}

// Compile is a convenience that parses, checks, and lowers src.
func Compile(src, name string) (*ir.Module, error) {
	file, err := taskc.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := taskc.Check(file)
	if err != nil {
		return nil, err
	}
	return File(file, info, name)
}

func irType(t taskc.TypeName) *ir.Type {
	switch t {
	case taskc.IntType:
		return ir.IntT
	case taskc.FloatType:
		return ir.FloatT
	}
	return ir.VoidT
}

func irPos(p taskc.Pos) ir.Pos { return ir.Pos{Line: p.Line, Col: p.Col} }

func irParams(fd *taskc.FuncDecl) []*ir.Param {
	params := make([]*ir.Param, len(fd.Params))
	for i, pd := range fd.Params {
		t := irType(pd.Type)
		if pd.IsArray() {
			t = ir.PtrTo(t)
		}
		params[i] = &ir.Param{Nam: pd.Name, Typ: t}
	}
	return params
}

type lowerer struct {
	info  *taskc.Info
	funcs map[*taskc.FuncDecl]*ir.Func

	fd     *taskc.FuncDecl
	f      *ir.Func
	bd     *ir.Builder
	params map[*taskc.ParamDecl]*ir.Param
	slots  map[*taskc.DeclStmt]*ir.Alloca
	dims   map[*taskc.ParamDecl][]ir.Value
}

func (l *lowerer) lowerFunc(fd *taskc.FuncDecl) error {
	l.fd = fd
	l.f = l.funcs[fd]
	l.bd = ir.NewBuilder(l.f)
	l.params = make(map[*taskc.ParamDecl]*ir.Param, len(fd.Params))
	l.slots = make(map[*taskc.DeclStmt]*ir.Alloca)
	l.dims = make(map[*taskc.ParamDecl][]ir.Value)
	for i, pd := range fd.Params {
		l.params[pd] = l.f.Params[i]
	}

	entry := l.bd.NewBlock("entry")
	l.bd.SetBlock(entry)

	// Evaluate array dimensions once in the entry block. Dimension
	// expressions reference earlier parameters only, so they are available
	// here, and keeping them loop-invariant lets analyses treat them as
	// symbolic constants.
	for _, pd := range fd.Params {
		if !pd.IsArray() {
			continue
		}
		dims := make([]ir.Value, len(pd.Dims))
		for i, e := range pd.Dims {
			v, err := l.rvalue(e)
			if err != nil {
				return err
			}
			dims[i] = v
		}
		l.dims[pd] = dims
	}

	if err := l.stmt(fd.Body); err != nil {
		return err
	}
	if l.bd.Block().Term() == nil {
		switch fd.Ret {
		case taskc.VoidType:
			l.bd.Ret(nil)
		case taskc.IntType:
			l.bd.Ret(ir.CI(0))
		default:
			l.bd.Ret(ir.CF(0))
		}
	}
	l.f.RemoveUnreachable()
	return nil
}

// startBlockIfTerminated keeps the builder usable after a mid-block return.
func (l *lowerer) startBlockIfTerminated() {
	if l.bd.Block().Term() != nil {
		b := l.bd.NewBlock("dead")
		l.bd.SetBlock(b)
	}
}

func (l *lowerer) stmt(s taskc.Stmt) error {
	l.startBlockIfTerminated()
	// Stamp statement position on subsequently built instructions; address
	// and rvalue refine it to expression granularity for memory operations.
	l.bd.SetPos(irPos(taskc.StmtPos(s)))
	switch st := s.(type) {
	case *taskc.BlockStmt:
		for _, sub := range st.Stmts {
			if err := l.stmt(sub); err != nil {
				return err
			}
		}
		return nil

	case *taskc.DeclStmt:
		slot := l.bd.Alloca(st.Name, irType(st.Type))
		l.slots[st] = slot
		if st.Init != nil {
			v, err := l.rvalueAs(st.Init, irType(st.Type))
			if err != nil {
				return err
			}
			l.bd.Store(v, slot)
		}
		return nil

	case *taskc.AssignStmt:
		return l.assign(st)

	case *taskc.PrefetchStmt:
		ptr, err := l.address(st.Addr)
		if err != nil {
			return err
		}
		l.bd.Prefetch(ptr)
		return nil

	case *taskc.IfStmt:
		thenB := l.bd.NewBlock("if.then")
		joinB := l.bd.NewBlock("if.end")
		elseB := joinB
		if st.Else != nil {
			elseB = l.bd.NewBlock("if.else")
		}
		if err := l.condBranch(st.Cond, thenB, elseB); err != nil {
			return err
		}
		l.bd.SetBlock(thenB)
		if err := l.stmt(st.Then); err != nil {
			return err
		}
		if l.bd.Block().Term() == nil {
			l.bd.Br(joinB)
		}
		if st.Else != nil {
			l.bd.SetBlock(elseB)
			if err := l.stmt(st.Else); err != nil {
				return err
			}
			if l.bd.Block().Term() == nil {
				l.bd.Br(joinB)
			}
		}
		l.bd.SetBlock(joinB)
		return nil

	case *taskc.ForStmt:
		if st.Init != nil {
			if err := l.stmt(st.Init); err != nil {
				return err
			}
		}
		condB := l.bd.NewBlock("for.cond")
		bodyB := l.bd.NewBlock("for.body")
		postB := l.bd.NewBlock("for.post")
		exitB := l.bd.NewBlock("for.end")
		l.bd.Br(condB)

		l.bd.SetBlock(condB)
		if st.Cond != nil {
			if err := l.condBranch(st.Cond, bodyB, exitB); err != nil {
				return err
			}
		} else {
			l.bd.Br(bodyB)
		}

		l.bd.SetBlock(bodyB)
		if err := l.stmt(st.Body); err != nil {
			return err
		}
		if l.bd.Block().Term() == nil {
			l.bd.Br(postB)
		}

		l.bd.SetBlock(postB)
		if st.Post != nil {
			if err := l.stmt(st.Post); err != nil {
				return err
			}
		}
		l.startBlockIfTerminated() // defensive; post cannot return
		l.bd.Br(condB)

		l.bd.SetBlock(exitB)
		return nil

	case *taskc.WhileStmt:
		condB := l.bd.NewBlock("while.cond")
		bodyB := l.bd.NewBlock("while.body")
		exitB := l.bd.NewBlock("while.end")
		l.bd.Br(condB)

		l.bd.SetBlock(condB)
		if err := l.condBranch(st.Cond, bodyB, exitB); err != nil {
			return err
		}

		l.bd.SetBlock(bodyB)
		if err := l.stmt(st.Body); err != nil {
			return err
		}
		if l.bd.Block().Term() == nil {
			l.bd.Br(condB)
		}

		l.bd.SetBlock(exitB)
		return nil

	case *taskc.ReturnStmt:
		if st.X == nil {
			l.bd.Ret(nil)
			return nil
		}
		v, err := l.rvalueAs(st.X, irType(l.fd.Ret))
		if err != nil {
			return err
		}
		l.bd.Ret(v)
		return nil

	case *taskc.ExprStmt:
		_, err := l.rvalue(st.X)
		return err
	}
	return fmt.Errorf("lower: unhandled statement %T", s)
}

func (l *lowerer) assign(st *taskc.AssignStmt) error {
	var ptr ir.Value
	var elem *ir.Type
	switch lhs := st.LHS.(type) {
	case *taskc.Ident:
		ds := l.info.Locals[lhs]
		if ds == nil {
			return fmt.Errorf("lower: %s: unresolved assignment target %q", lhs.Pos, lhs.Name)
		}
		ptr = l.slots[ds]
		elem = irType(ds.Type)
	case *taskc.IndexExpr:
		p, err := l.address(lhs)
		if err != nil {
			return err
		}
		ptr = p
		elem = ptr.Type().Elem
	default:
		return fmt.Errorf("lower: bad assignment target %T", st.LHS)
	}

	rhs, err := l.rvalue(st.RHS)
	if err != nil {
		return err
	}
	var val ir.Value
	if st.Op == taskc.Assign {
		val = l.convert(rhs, elem)
	} else {
		cur := l.bd.Load(ptr)
		if elem.IsFloat() {
			rhs = l.convert(rhs, ir.FloatT)
			var op ir.BinOp
			switch st.Op {
			case taskc.AddAssign:
				op = ir.FAdd
			case taskc.SubAssign:
				op = ir.FSub
			case taskc.MulAssign:
				op = ir.FMul
			default:
				op = ir.FDiv
			}
			val = l.bd.Bin(op, cur, rhs)
		} else {
			var op ir.BinOp
			switch st.Op {
			case taskc.AddAssign:
				op = ir.IAdd
			case taskc.SubAssign:
				op = ir.ISub
			case taskc.MulAssign:
				op = ir.IMul
			default:
				op = ir.IDiv
			}
			val = l.bd.Bin(op, cur, rhs)
		}
	}
	// The rhs lowering may have restamped the builder position (its own array
	// reads); the store itself belongs to the assignment target.
	l.bd.SetPos(irPos(taskc.ExprPos(st.LHS)))
	l.bd.Store(val, ptr)
	return nil
}

// address lowers an IndexExpr to a GEP.
func (l *lowerer) address(ix *taskc.IndexExpr) (ir.Value, error) {
	pd := l.info.Arrays[ix]
	if pd == nil {
		return nil, fmt.Errorf("lower: %s: unresolved array %q", ix.Pos, ix.Base.Name)
	}
	base := l.params[pd]
	dims := l.dims[pd]
	idx := make([]ir.Value, len(ix.Idx))
	for i, e := range ix.Idx {
		v, err := l.rvalue(e)
		if err != nil {
			return nil, err
		}
		idx[i] = v
	}
	dimsCopy := make([]ir.Value, len(dims))
	copy(dimsCopy, dims)
	l.bd.SetPos(irPos(ix.Pos))
	return l.bd.GEP(base, dimsCopy, idx), nil
}

// convert inserts an int↔float cast when v's type differs from want.
func (l *lowerer) convert(v ir.Value, want *ir.Type) ir.Value {
	if v.Type() == want {
		return v
	}
	if v.Type().IsInt() && want.IsFloat() {
		if c, ok := v.(*ir.ConstInt); ok {
			return ir.CF(float64(c.V))
		}
		return l.bd.Cast(ir.IntToFloat, v)
	}
	if v.Type().IsFloat() && want.IsInt() {
		if c, ok := v.(*ir.ConstFloat); ok {
			return ir.CI(int64(c.V))
		}
		return l.bd.Cast(ir.FloatToInt, v)
	}
	panic(fmt.Sprintf("lower: cannot convert %s to %s", v.Type(), want))
}

func (l *lowerer) rvalueAs(e taskc.Expr, want *ir.Type) (ir.Value, error) {
	v, err := l.rvalue(e)
	if err != nil {
		return nil, err
	}
	return l.convert(v, want), nil
}

// condBranch lowers a condition with short-circuit control flow.
func (l *lowerer) condBranch(e taskc.Expr, thenB, elseB *ir.Block) error {
	switch x := e.(type) {
	case *taskc.BinExpr:
		switch x.Op {
		case taskc.LAnd:
			mid := l.bd.NewBlock("land.rhs")
			if err := l.condBranch(x.X, mid, elseB); err != nil {
				return err
			}
			l.bd.SetBlock(mid)
			return l.condBranch(x.Y, thenB, elseB)
		case taskc.LOr:
			mid := l.bd.NewBlock("lor.rhs")
			if err := l.condBranch(x.X, thenB, mid); err != nil {
				return err
			}
			l.bd.SetBlock(mid)
			return l.condBranch(x.Y, thenB, elseB)
		}
	case *taskc.UnExpr:
		if x.Op == taskc.Not {
			return l.condBranch(x.X, elseB, thenB)
		}
	}
	v, err := l.rvalue(e)
	if err != nil {
		return err
	}
	v = l.truthy(v)
	l.bd.CondBr(v, thenB, elseB)
	return nil
}

// truthy converts an int value to bool by comparing with zero.
func (l *lowerer) truthy(v ir.Value) ir.Value {
	if v.Type().IsBool() {
		return v
	}
	return l.bd.Cmp(ir.NE, v, ir.CI(0))
}

func (l *lowerer) rvalue(e taskc.Expr) (ir.Value, error) {
	switch x := e.(type) {
	case *taskc.IntLit:
		return ir.CI(x.V), nil
	case *taskc.FloatLit:
		return ir.CF(x.V), nil

	case *taskc.Ident:
		if ds := l.info.Locals[x]; ds != nil {
			return l.bd.Load(l.slots[ds]), nil
		}
		if pd := l.info.Params[x]; pd != nil {
			return l.params[pd], nil
		}
		return nil, fmt.Errorf("lower: %s: unresolved identifier %q", x.Pos, x.Name)

	case *taskc.IndexExpr:
		ptr, err := l.address(x)
		if err != nil {
			return nil, err
		}
		return l.bd.Load(ptr), nil

	case *taskc.BinExpr:
		return l.binExpr(x)

	case *taskc.UnExpr:
		v, err := l.rvalue(x.X)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case taskc.Neg:
			if v.Type().IsFloat() {
				return l.bd.Bin(ir.FSub, ir.CF(0), v), nil
			}
			return l.bd.Bin(ir.ISub, ir.CI(0), v), nil
		default: // Not
			b := l.truthy(v)
			return l.bd.Select(b, ir.CB(false), ir.CB(true)), nil
		}

	case *taskc.CallExpr:
		if name, ok := l.info.MathCalls[x]; ok {
			arg, err := l.rvalueAs(x.Args[0], ir.FloatT)
			if err != nil {
				return nil, err
			}
			op, _ := ir.MathOpByName(name)
			return l.bd.Math(op, arg), nil
		}
		fd := l.info.Calls[x]
		if fd == nil {
			return nil, fmt.Errorf("lower: %s: unresolved call %q", x.Pos, x.Name)
		}
		callee := l.funcs[fd]
		args := make([]ir.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := l.rvalueAs(a, callee.Params[i].Typ)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return l.bd.Call(callee, args), nil
	}
	return nil, fmt.Errorf("lower: unhandled expression %T", e)
}

func (l *lowerer) binExpr(x *taskc.BinExpr) (ir.Value, error) {
	// Logical operators only occur in condition position: the type checker
	// rejects them as values (bool cannot be stored or compared), and
	// condBranch lowers them structurally with short-circuit control flow.
	if x.Op == taskc.LAnd || x.Op == taskc.LOr {
		return nil, fmt.Errorf("lower: %s: logical operator outside condition position", x.Pos)
	}

	xv, err := l.rvalue(x.X)
	if err != nil {
		return nil, err
	}
	yv, err := l.rvalue(x.Y)
	if err != nil {
		return nil, err
	}

	switch x.Op {
	case taskc.Eq, taskc.Ne, taskc.Lt, taskc.Le, taskc.Gt, taskc.Ge:
		if xv.Type().IsFloat() || yv.Type().IsFloat() {
			xv = l.convert(xv, ir.FloatT)
			yv = l.convert(yv, ir.FloatT)
		}
		var pred ir.CmpPred
		switch x.Op {
		case taskc.Eq:
			pred = ir.EQ
		case taskc.Ne:
			pred = ir.NE
		case taskc.Lt:
			pred = ir.LT
		case taskc.Le:
			pred = ir.LE
		case taskc.Gt:
			pred = ir.GT
		default:
			pred = ir.GE
		}
		return l.bd.Cmp(pred, xv, yv), nil

	case taskc.BitAnd, taskc.BitOr, taskc.BitXor, taskc.Shl, taskc.Shr, taskc.Rem:
		var op ir.BinOp
		switch x.Op {
		case taskc.BitAnd:
			op = ir.IAnd
		case taskc.BitOr:
			op = ir.IOr
		case taskc.BitXor:
			op = ir.IXor
		case taskc.Shl:
			op = ir.IShl
		case taskc.Shr:
			op = ir.IShr
		default:
			op = ir.IRem
		}
		return l.bd.Bin(op, xv, yv), nil

	default: // Add Sub Mul Div
		if xv.Type().IsFloat() || yv.Type().IsFloat() {
			xv = l.convert(xv, ir.FloatT)
			yv = l.convert(yv, ir.FloatT)
			var op ir.BinOp
			switch x.Op {
			case taskc.Add:
				op = ir.FAdd
			case taskc.Sub:
				op = ir.FSub
			case taskc.Mul:
				op = ir.FMul
			default:
				op = ir.FDiv
			}
			return l.bd.Bin(op, xv, yv), nil
		}
		var op ir.BinOp
		switch x.Op {
		case taskc.Add:
			op = ir.IAdd
		case taskc.Sub:
			op = ir.ISub
		case taskc.Mul:
			op = ir.IMul
		default:
			op = ir.IDiv
		}
		return l.bd.Bin(op, xv, yv), nil
	}
}
