package lower

import (
	"strings"
	"testing"

	"dae/internal/ir"
)

func mustCompile(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := Compile(src, "t")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func blockNames(f *ir.Func) []string {
	var out []string
	for _, b := range f.Blocks {
		out = append(out, b.Name)
	}
	return out
}

func TestForLoopShape(t *testing.T) {
	m := mustCompile(t, `
task k(float A[n], int n) {
	for (int i = 0; i < n; i++) {
		A[i] = 0.0;
	}
}`)
	f := m.Func("k")
	names := strings.Join(blockNames(f), ",")
	for _, want := range []string{"entry", "for.cond", "for.body", "for.post", "for.end"} {
		if !strings.Contains(names, want) {
			t.Errorf("missing block %q in %s", want, names)
		}
	}
	// The condition block is the single loop header.
	dt := ir.NewDomTree(f)
	li := ir.FindLoops(f, dt)
	if len(li.Top) != 1 || !strings.HasPrefix(li.Top[0].Header.Name, "for.cond") {
		t.Errorf("loop header should be for.cond: %v", names)
	}
}

func TestShortCircuitLoweringShape(t *testing.T) {
	// a && b must evaluate b only when a holds: the CFG contains a land.rhs
	// block between the two tests.
	m := mustCompile(t, `
task k(int A[n], int n) {
	int i = 0;
	while (i < n && A[i] != 0) {
		i++;
	}
}`)
	f := m.Func("k")
	names := strings.Join(blockNames(f), ",")
	if !strings.Contains(names, "land.rhs") {
		t.Errorf("missing short-circuit block: %s", names)
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDimsEvaluatedOnceInEntry(t *testing.T) {
	// Array dimension expressions are evaluated in the entry block so that
	// GEP dims stay loop-invariant symbols for the analyses.
	m := mustCompile(t, `
task k(float A[n*2], int n) {
	for (int i = 0; i < n; i++) {
		A[i] = 0.0;
	}
}`)
	f := m.Func("k")
	entry := f.Entry()
	foundMul := false
	for _, in := range entry.Instrs {
		if b, ok := in.(*ir.Bin); ok && b.Op == ir.IMul {
			foundMul = true
		}
	}
	if !foundMul {
		t.Errorf("dimension expression n*2 should be computed in entry:\n%s", f)
	}
	// Every GEP's dim operand must be that entry computation, not a
	// recomputation inside the loop.
	f.Instrs(func(in ir.Instr) {
		g, ok := in.(*ir.GEP)
		if !ok {
			return
		}
		d, ok := g.Dims[0].(ir.Instr)
		if !ok {
			t.Fatalf("dim is not an instruction: %s", ir.FormatInstr(g))
		}
		if d.Parent() != entry {
			t.Errorf("GEP dim computed outside entry:\n%s", f)
		}
	})
}

func TestImplicitReturnValues(t *testing.T) {
	m := mustCompile(t, `
int f(int n) {
	if (n > 0) {
		return n;
	}
}
float g(int n) {
	if (n > 0) {
		return 1.5;
	}
}
task h(int n) { }
`)
	// Functions that can fall off the end return zero values; the verifier
	// accepted them already, so just check terminators exist everywhere.
	for _, name := range []string{"f", "g", "h"} {
		f := m.Func(name)
		for _, b := range f.Blocks {
			if b.Term() == nil {
				t.Errorf("@%s block %s unterminated", name, b.Name)
			}
		}
	}
}

func TestCompoundAssignSingleAddress(t *testing.T) {
	// A[i] += x must compute the address once (one GEP feeding both the
	// load and the store).
	m := mustCompile(t, `
task k(float A[n], int n) {
	for (int i = 0; i < n; i++) {
		A[i] += 1.0;
	}
}`)
	f := m.Func("k")
	geps := 0
	f.Instrs(func(in ir.Instr) {
		if _, ok := in.(*ir.GEP); ok {
			geps++
		}
	})
	if geps != 1 {
		t.Errorf("compound assignment should emit one GEP, got %d:\n%s", geps, f)
	}
}

func TestNegationAndNot(t *testing.T) {
	m := mustCompile(t, `
int f(int a, int b) {
	int x = -a;
	if (!(a < b)) {
		x = -x;
	}
	return x;
}`)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestCompileReportsFrontEndErrors(t *testing.T) {
	if _, err := Compile("task t(", "bad"); err == nil {
		t.Error("parse errors must surface")
	}
	if _, err := Compile("task t(int n) { y = 1; }", "bad"); err == nil {
		t.Error("check errors must surface")
	}
}
