package dae

import (
	"strings"
	"testing"

	"dae/internal/interp"
	"dae/internal/ir"
	"dae/internal/lower"
)

// genFromSrc compiles src, optimizes it, and generates access versions for
// all tasks with the given hints.
func genFromSrc(t *testing.T, src string, hints map[string]int64) (*ir.Module, map[string]*Result) {
	t.Helper()
	m, err := lower.Compile(src, "test")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	opts := Defaults()
	opts.ParamHints = hints
	results, err := GenerateModule(m, opts)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return m, results
}

// addrTracer records distinct element addresses by event kind.
type addrTracer struct {
	loads      map[int64]bool
	stores     map[int64]bool
	prefetches map[int64]bool
}

func newAddrTracer() *addrTracer {
	return &addrTracer{loads: map[int64]bool{}, stores: map[int64]bool{}, prefetches: map[int64]bool{}}
}

func (a *addrTracer) Load(addr int64)     { a.loads[addr] = true }
func (a *addrTracer) Store(addr int64)    { a.stores[addr] = true }
func (a *addrTracer) Prefetch(addr int64) { a.prefetches[addr] = true }

// checkCoverage runs the execute and access versions and asserts that the
// access version prefetches every address the execute version loads, and
// that the access version itself writes nothing.
func checkCoverage(t *testing.T, m *ir.Module, task string, args ...interp.Value) {
	t.Helper()
	prog := interp.NewProgram(m)

	trAcc := newAddrTracer()
	env := interp.NewEnv(prog, trAcc)
	if _, err := env.Call(m.Func(task+"_access"), args...); err != nil {
		t.Fatalf("access run: %v", err)
	}
	if len(trAcc.stores) != 0 {
		t.Fatalf("access version wrote %d addresses; must write nothing", len(trAcc.stores))
	}

	trExe := newAddrTracer()
	env.SetTracer(trExe)
	if _, err := env.Call(m.Func(task), args...); err != nil {
		t.Fatalf("execute run: %v", err)
	}

	missing := 0
	for a := range trExe.loads {
		if !trAcc.prefetches[a] && !trAcc.loads[a] {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("access version misses %d of %d loaded addresses", missing, len(trExe.loads))
	}
}

func countLoops(f *ir.Func) int {
	dt := ir.NewDomTree(f)
	return len(ir.FindLoops(f, dt).AllLoops())
}

const luListing1a = `
task lu(float A[N][N], int N) {
	for (int i = 0; i < N; i++) {
		for (int j = i+1; j < N; j++) {
			A[j][i] /= A[i][i];
			for (int k = i+1; k < N; k++) {
				A[j][k] -= A[j][i] * A[i][k];
			}
		}
	}
}
`

func TestListing1aLU(t *testing.T) {
	m, res := genFromSrc(t, luListing1a, map[string]int64{"N": 12})
	r := res["lu"]
	if r.Strategy != StrategyAffine {
		t.Fatalf("strategy = %s (%s), want affine", r.Strategy, r.Reason)
	}
	if r.TotalLoops != 3 || r.AffineLoops != 3 {
		t.Errorf("loops = %d/%d, want 3/3 (Table 1 row for LU)", r.AffineLoops, r.TotalLoops)
	}
	// The paper's key claim for Listing 1: a 3-deep execute nest is
	// prefetched by a 2-deep access nest covering the whole matrix.
	acc := m.Func("lu_access")
	if acc == nil {
		t.Fatal("no access version in module")
	}
	if got := countLoops(acc); got != 2 {
		t.Errorf("access nest depth = %d loops, want 2:\n%s", got, acc)
	}
	// Whole-matrix hull: NConvUn == NOrig == N².
	if r.NConvUn != r.NOrig || r.NConvUn != 12*12 {
		t.Errorf("NConvUn=%d NOrig=%d, want both 144", r.NConvUn, r.NOrig)
	}

	h := interp.NewHeap()
	a := h.AllocFloat("A", 12*12)
	for i := range a.F {
		a.F[i] = float64(i%7) + 1
	}
	checkCoverage(t, m, "lu", interp.Ptr(a), interp.Int(12))
}

const luListing1b = `
task lublock(float A[N][N], int N, int Block) {
	for (int i = 0; i < Block; i++) {
		for (int j = i+1; j < Block; j++) {
			A[j][i] /= A[i][i];
			for (int k = i+1; k < Block; k++) {
				A[j][k] -= A[j][i] * A[i][k];
			}
		}
	}
}
`

func TestListing1bBlock(t *testing.T) {
	m, res := genFromSrc(t, luListing1b, map[string]int64{"N": 64, "Block": 8})
	r := res["lublock"]
	if r.Strategy != StrategyAffine {
		t.Fatalf("strategy = %s (%s), want affine", r.Strategy, r.Reason)
	}
	// Hull covers Block², not Block rows of N (the §5.1.1 range-analysis
	// failure mode).
	if r.NConvUn != 64 {
		t.Errorf("NConvUn = %d, want 64 (Block²)", r.NConvUn)
	}
	h := interp.NewHeap()
	a := h.AllocFloat("A", 64*64)
	for i := range a.F {
		a.F[i] = float64(i%5) + 1
	}
	checkCoverage(t, m, "lublock", interp.Ptr(a), interp.Int(64), interp.Int(8))

	// The access version must NOT prefetch beyond the block's bounding box:
	// count prefetched addresses == Block².
	tr := newAddrTracer()
	env := interp.NewEnv(interp.NewProgram(m), tr)
	if _, err := env.Call(m.Func("lublock_access"), interp.Ptr(a), interp.Int(64), interp.Int(8)); err != nil {
		t.Fatal(err)
	}
	if len(tr.prefetches) != 64 {
		t.Errorf("prefetched %d distinct addresses, want 64", len(tr.prefetches))
	}
}

const listing2 = `
task mul(float A[N][N], float D[N][N], int N, int Block) {
	for (int i = 0; i < Block; i++) {
		for (int j = i+1; j < Block; j++) {
			for (int k = 0; k < Block; k++) {
				A[j][k] -= D[j][i] * A[i][k];
			}
		}
	}
}
`

func TestListing2MultipleArrays(t *testing.T) {
	m, res := genFromSrc(t, listing2, map[string]int64{"N": 32, "Block": 8})
	r := res["mul"]
	if r.Strategy != StrategyAffine {
		t.Fatalf("strategy = %s (%s), want affine", r.Strategy, r.Reason)
	}
	if r.Classes != 2 {
		t.Errorf("classes = %d, want 2 (A and D)", r.Classes)
	}
	if r.MergedNests != 1 {
		t.Errorf("merged nests = %d, want 1 (Listing 2(b))", r.MergedNests)
	}
	acc := m.Func("mul_access")
	if got := countLoops(acc); got != 2 {
		t.Errorf("access loops = %d, want 2:\n%s", got, acc)
	}
	h := interp.NewHeap()
	a := h.AllocFloat("A", 32*32)
	d := h.AllocFloat("D", 32*32)
	for i := range a.F {
		a.F[i] = 1
		d.F[i] = 2
	}
	checkCoverage(t, m, "mul", interp.Ptr(a), interp.Ptr(d), interp.Int(32), interp.Int(8))
}

const listing3 = `
task blocks(float A[N][N], int N, int Block, int Ax, int Ay, int Dx, int Dy) {
	for (int i = 0; i < Block; i++) {
		for (int j = i+1; j < Block; j++) {
			for (int k = i+1; k < Block; k++) {
				A[Ax+j][Ay+k] -= A[Dx+j][Dy+i] * A[Ax+i][Ay+k];
			}
		}
	}
}
`

func TestListing3BlocksOfSameArray(t *testing.T) {
	hints := map[string]int64{"N": 64, "Block": 8, "Ax": 0, "Ay": 0, "Dx": 32, "Dy": 32}
	m, res := genFromSrc(t, listing3, hints)
	r := res["blocks"]
	if r.Strategy != StrategyAffine {
		t.Fatalf("strategy = %s (%s), want affine", r.Strategy, r.Reason)
	}
	if r.Classes != 2 {
		t.Errorf("classes = %d, want 2 (classA, classD of Fig. 2)", r.Classes)
	}
	if r.MergedNests != 1 {
		t.Errorf("merged nests = %d, want 1 (Listing 3(b))", r.MergedNests)
	}

	h := interp.NewHeap()
	a := h.AllocFloat("A", 64*64)
	for i := range a.F {
		a.F[i] = float64(i%3) + 1
	}
	args := []interp.Value{interp.Ptr(a), interp.Int(64), interp.Int(8),
		interp.Int(0), interp.Int(0), interp.Int(32), interp.Int(32)}
	checkCoverage(t, m, "blocks", args...)

	// The in-between region (Fig. 2 light grey) must not be prefetched: the
	// two classes together cover at most 2·Block² cells (their own boxes),
	// never the convex hull spanning both blocks (which would be ≥ 32²).
	tr := newAddrTracer()
	env := interp.NewEnv(interp.NewProgram(m), tr)
	if _, err := env.Call(m.Func("blocks_access"), args...); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.prefetches); got < int(r.NOrig) || got > 2*8*8 {
		t.Errorf("prefetched %d cells, want within [NOrig=%d, 2·Block²=128]", got, r.NOrig)
	}
}

func TestHullRejectionDiagonal(t *testing.T) {
	// Only the diagonal is touched: NOrig = N but the box hull is N².
	// The §5.1.2 profitability test must reject the hull and fall back to
	// the skeleton strategy.
	src := `
task diag(float A[N][N], int N) {
	for (int i = 0; i < N; i++) {
		A[0][0] += A[i][i];
	}
}
`
	m, res := genFromSrc(t, src, map[string]int64{"N": 16})
	r := res["diag"]
	if r.Strategy != StrategySkeleton {
		t.Fatalf("strategy = %s, want skeleton (hull rejected); reason=%q", r.Strategy, r.Reason)
	}
	if !strings.Contains(r.Reason, "hull too wide") {
		t.Errorf("reason = %q, want hull rejection", r.Reason)
	}
	h := interp.NewHeap()
	a := h.AllocFloat("A", 16*16)
	checkCoverage(t, m, "diag", interp.Ptr(a), interp.Int(16))
}

func TestSkeletonIndirection(t *testing.T) {
	// CG-style gather: y[i] += V[j]*x[C[j]].
	src := `
task spmv(float Y[n], float V[nnz], int C[nnz], float X[m], int R[n1], int n, int nnz, int m, int n1) {
	for (int i = 0; i < n; i++) {
		float s = 0;
		for (int j = R[i]; j < R[i+1]; j++) {
			s += V[j] * X[C[j]];
		}
		Y[i] = Y[i] + s;
	}
}
`
	m, res := genFromSrc(t, src, map[string]int64{})
	r := res["spmv"]
	if r.Strategy != StrategySkeleton {
		t.Fatalf("strategy = %s (%s), want skeleton", r.Strategy, r.Reason)
	}
	acc := m.Func("spmv_access")
	if acc == nil {
		t.Fatal("no access version")
	}
	// The skeleton must keep the loads of R and C (address chains) and must
	// not contain stores.
	hasStore := false
	acc.Instrs(func(in ir.Instr) {
		if _, ok := in.(*ir.Store); ok {
			hasStore = true
		}
	})
	if hasStore {
		t.Errorf("skeleton contains stores:\n%s", acc)
	}

	// Semantic coverage on a small CSR matrix.
	h := interp.NewHeap()
	n, mcols := 4, 6
	rptr := h.AllocInt("R", n+1)
	copy(rptr.I, []int64{0, 2, 3, 5, 6})
	nnz := 6
	col := h.AllocInt("C", nnz)
	copy(col.I, []int64{0, 3, 1, 2, 5, 4})
	v := h.AllocFloat("V", nnz)
	x := h.AllocFloat("X", mcols)
	y := h.AllocFloat("Y", n)
	for i := range v.F {
		v.F[i] = float64(i + 1)
	}
	for i := range x.F {
		x.F[i] = float64(10 * i)
	}
	checkCoverage(t, m, "spmv",
		interp.Ptr(y), interp.Ptr(v), interp.Ptr(col), interp.Ptr(x), interp.Ptr(rptr),
		interp.Int(int64(n)), interp.Int(int64(nnz)), interp.Int(int64(mcols)), interp.Int(int64(n+1)))
}

func TestSkeletonDropsBodyConditionals(t *testing.T) {
	src := `
task cond(float A[n], float B[n], float Out[one], int n, int one) {
	float s = 0;
	for (int i = 0; i < n; i++) {
		if (A[i] > 0.5) {
			s += B[i];
		}
	}
	Out[0] = s;
}
`
	m, res := genFromSrc(t, src, map[string]int64{})
	r := res["cond"]
	if r.Strategy != StrategySkeleton {
		t.Fatalf("strategy = %s (%s), want skeleton", r.Strategy, r.Reason)
	}
	acc := m.Func("cond_access")
	// After CFG simplification the only conditional left is the loop header:
	// exactly one CondBr.
	nCond := 0
	prefetchBases := map[string]bool{}
	acc.Instrs(func(in ir.Instr) {
		switch x := in.(type) {
		case *ir.CondBr:
			nCond++
		case *ir.Prefetch:
			if g, ok := x.Ptr.(*ir.GEP); ok {
				if p, ok := g.Base.(*ir.Param); ok {
					prefetchBases[p.Nam] = true
				}
			}
		}
	})
	if nCond != 1 {
		t.Errorf("conditionals in access version = %d, want 1 (loop header only):\n%s", nCond, acc)
	}
	// A[i] is guaranteed-accessed → prefetched; B[i] is conditional → not.
	if !prefetchBases["A"] {
		t.Errorf("A not prefetched: %v\n%s", prefetchBases, acc)
	}
	if prefetchBases["B"] {
		t.Errorf("conditional access B must not be prefetched (guaranteed-only rule):\n%s", acc)
	}
}

func TestSkeletonPointerChasing(t *testing.T) {
	src := `
task chase(int Next[n], float Val[n], float Out[one], int n, int one, int start, int steps) {
	int p = start;
	float s = 0;
	for (int k = 0; k < steps; k++) {
		s += Val[p];
		p = Next[p];
	}
	Out[0] = s;
}
`
	m, res := genFromSrc(t, src, map[string]int64{})
	r := res["chase"]
	if r.Strategy != StrategySkeleton {
		t.Fatalf("strategy = %s (%s), want skeleton", r.Strategy, r.Reason)
	}
	acc := m.Func("chase_access")
	// The Next[p] load must survive (it feeds the next address).
	nLoads := 0
	acc.Instrs(func(in ir.Instr) {
		if _, ok := in.(*ir.Load); ok {
			nLoads++
		}
	})
	if nLoads == 0 {
		t.Errorf("pointer-chasing load was removed:\n%s", acc)
	}

	h := interp.NewHeap()
	n := 8
	next := h.AllocInt("Next", n)
	val := h.AllocFloat("Val", n)
	out := h.AllocFloat("Out", 1)
	for i := 0; i < n; i++ {
		next.I[i] = int64((i + 3) % n)
		val.F[i] = float64(i)
	}
	checkCoverage(t, m, "chase",
		interp.Ptr(next), interp.Ptr(val), interp.Ptr(out),
		interp.Int(int64(n)), interp.Int(1), interp.Int(0), interp.Int(20))
}

func TestNoAccessVersionWhenAddressDependsOnWrites(t *testing.T) {
	// The read X[P[i]] chases addresses through P, which the task itself
	// writes: with stores dropped, the skeleton would chase stale pointers,
	// so no access version may be generated (§5.2.2 step 5).
	src := `
task selfmod(int P[n], float X[n], float Out[n], int n) {
	for (int i = 1; i < n; i++) {
		P[i] = P[i-1] + 1;
		Out[i] = X[P[i]];
	}
}
`
	m, res := genFromSrc(t, src, map[string]int64{})
	r := res["selfmod"]
	if r.Strategy != StrategyNone {
		t.Fatalf("strategy = %s, want none (address depends on task writes)", r.Strategy)
	}
	if r.Access != nil || m.Func("selfmod_access") != nil {
		t.Error("no access function should be added")
	}
	if r.Reason == "" {
		t.Error("expected a reason")
	}
}

func TestNoAccessVersionControlDependsOnWrites(t *testing.T) {
	src := `
task ctrl(int A[n], int n) {
	int i = 0;
	while (i < n && A[i] != 0) {
		A[i] = 0;
		i++;
	}
}
`
	_, res := genFromSrc(t, src, map[string]int64{})
	r := res["ctrl"]
	if r.Strategy != StrategyNone {
		t.Fatalf("strategy = %s, want none (loop control reads written array)", r.Strategy)
	}
}

func TestForceSkeletonAblation(t *testing.T) {
	m, err := lower.Compile(luListing1a, "t")
	if err != nil {
		t.Fatal(err)
	}
	opts := Defaults()
	opts.ParamHints = map[string]int64{"N": 12}
	opts.ForceSkeleton = true
	res, err := GenerateModule(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res["lu"].Strategy != StrategySkeleton {
		t.Errorf("strategy = %s, want skeleton (forced)", res["lu"].Strategy)
	}
	h := interp.NewHeap()
	a := h.AllocFloat("A", 12*12)
	for i := range a.F {
		a.F[i] = float64(i%7) + 1
	}
	checkCoverage(t, m, "lu", interp.Ptr(a), interp.Int(12))
}

func TestAccessLeanerThanExecute(t *testing.T) {
	// The affine access version must execute far fewer instructions than
	// the task itself (the whole point of a lean access phase).
	m, _ := genFromSrc(t, luListing1a, map[string]int64{"N": 24})
	prog := interp.NewProgram(m)
	h := interp.NewHeap()
	a := h.AllocFloat("A", 24*24)
	for i := range a.F {
		a.F[i] = float64(i%7) + 1
	}
	env := interp.NewEnv(prog, nil)
	if _, err := env.Call(m.Func("lu_access"), interp.Ptr(a), interp.Int(24)); err != nil {
		t.Fatal(err)
	}
	accessOps := env.Counts().Total()
	env.ResetCounts()
	if _, err := env.Call(m.Func("lu"), interp.Ptr(a), interp.Int(24)); err != nil {
		t.Fatal(err)
	}
	executeOps := env.Counts().Total()
	if accessOps*2 >= executeOps {
		t.Errorf("access version not lean: %d ops vs execute %d", accessOps, executeOps)
	}
}

func TestGenerateRejectsNonTask(t *testing.T) {
	m, err := lower.Compile(`int f(int x) { return x; }`, "t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(m.Func("f"), Defaults()); err == nil {
		t.Error("expected error for non-task")
	}
}

func TestStridedLoopAffine(t *testing.T) {
	src := `
task strided(float A[n], float Out[one], int n, int one) {
	float s = 0;
	for (int i = 0; i < n; i += 4) {
		s += A[i];
	}
	Out[0] = s;
}
`
	m, res := genFromSrc(t, src, map[string]int64{"n": 64, "one": 1})
	r := res["strided"]
	// A box hull over a stride-4 access covers 4× the touched cells: the
	// profitability test must reject it.
	if r.Strategy != StrategySkeleton {
		t.Fatalf("strategy = %s (%s), want skeleton via hull rejection", r.Strategy, r.Reason)
	}
	h := interp.NewHeap()
	a := h.AllocFloat("A", 64)
	out := h.AllocFloat("Out", 1)
	checkCoverage(t, m, "strided", interp.Ptr(a), interp.Ptr(out), interp.Int(64), interp.Int(1))
}

func TestDownCountingLoopAffine(t *testing.T) {
	src := `
task rev(float A[n], float B[n], int n) {
	for (int i = n - 1; i >= 0; i--) {
		B[i] = A[i];
	}
}
`
	m, res := genFromSrc(t, src, map[string]int64{"n": 16})
	r := res["rev"]
	if r.Strategy != StrategyAffine {
		t.Fatalf("strategy = %s (%s), want affine", r.Strategy, r.Reason)
	}
	h := interp.NewHeap()
	a := h.AllocFloat("A", 16)
	b := h.AllocFloat("B", 16)
	checkCoverage(t, m, "rev", interp.Ptr(a), interp.Ptr(b), interp.Int(16))
}
