package dae

import (
	"fmt"
	"sort"
	"strings"

	"dae/internal/fault"
)

// TaskLadder is one task's outcome on the degradation ladder.
type TaskLadder struct {
	// Task is the task name.
	Task string
	// Strategy is the rung the task landed on.
	Strategy Strategy
	// Rejections lists the higher rungs that were rejected, in ladder order.
	Rejections []Rejection
}

// Faulted reports whether the task lost a rung to a real fault (rather than
// an expected analysis decision).
func (l TaskLadder) Faulted() bool {
	for _, r := range l.Rejections {
		if r.Faulted() {
			return true
		}
	}
	return false
}

// DegradationReport summarizes, per task, which ladder rung was used and why
// higher rungs were rejected. Build one with NewDegradationReport.
type DegradationReport struct {
	// Tasks is sorted by task name.
	Tasks []TaskLadder
}

// NewDegradationReport collects GenerateModule results into a report.
func NewDegradationReport(results map[string]*Result) *DegradationReport {
	rep := &DegradationReport{}
	for name, res := range results {
		rep.Tasks = append(rep.Tasks, TaskLadder{
			Task:       name,
			Strategy:   res.Strategy,
			Rejections: res.Rejections,
		})
	}
	sort.Slice(rep.Tasks, func(i, j int) bool { return rep.Tasks[i].Task < rep.Tasks[j].Task })
	return rep
}

// Faulted reports whether any task lost a rung to a real fault. A report
// where every rejection is an expected analysis decision is a healthy
// compilation, not a degraded one.
func (r *DegradationReport) Faulted() bool {
	for _, t := range r.Tasks {
		if t.Faulted() {
			return true
		}
	}
	return false
}

// String renders the report as an aligned table, one task per line, with
// each rejected rung's fault class and message:
//
//	task      strategy  rejected rungs
//	triad     skeleton  affine: degraded (non-affine loop bounds)
func (r *DegradationReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-9s %s\n", "task", "strategy", "rejected rungs")
	for _, t := range r.Tasks {
		var rej []string
		for _, rj := range t.Rejections {
			msg := ""
			if rj.Err != nil {
				msg = rj.Err.Error()
			}
			rej = append(rej, fmt.Sprintf("%s: %s (%s)", rj.Strategy, fault.ClassOf(rj.Err), msg))
		}
		detail := "-"
		if len(rej) > 0 {
			detail = strings.Join(rej, "; ")
		}
		fmt.Fprintf(&b, "%-16s %-9s %s\n", t.Task, t.Strategy, detail)
	}
	return b.String()
}
