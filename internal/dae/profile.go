package dae

import (
	"fmt"

	"dae/internal/interp"
	"dae/internal/ir"
	"dae/internal/mem"
	"dae/internal/passes"
)

// PrefetchProfile records, for one static prefetch instruction, how its
// dynamic instances were serviced during a profiling run.
type PrefetchProfile struct {
	// Total is the number of executed instances.
	Total int64
	// Misses counts instances whose line was not in the core's private
	// caches (serviced by the L3 or DRAM).
	Misses int64
}

// MissRatio returns Misses/Total (0 for never-executed instructions).
func (p PrefetchProfile) MissRatio() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Misses) / float64(p.Total)
}

// profiler attributes prefetch events to static instructions through a
// scratch cache hierarchy.
type profiler struct {
	hier  *mem.Hierarchy
	stats map[ir.Instr]*PrefetchProfile
}

func (p *profiler) hook(src ir.Instr, addr int64) {
	st := p.stats[src]
	if st == nil {
		st = &PrefetchProfile{}
		p.stats[src] = st
	}
	st.Total++
	if level := p.hier.Access(addr, mem.Prefetch); level >= mem.L3 {
		st.Misses++
	}
}

// loads and stores during profiling still warm the hierarchy so the miss
// attribution reflects realistic cache contents.
func (p *profiler) Load(addr int64)     { p.hier.Access(addr, mem.Load) }
func (p *profiler) Store(addr int64)    { p.hier.Access(addr, mem.Store) }
func (p *profiler) Prefetch(addr int64) { p.hier.Access(addr, mem.Prefetch) }

// ProfileAccess executes the access version once per provided argument set
// against a scratch hierarchy and returns per-prefetch-instruction service
// statistics. Access versions write nothing, so profiling is safe on live
// benchmark data.
func ProfileAccess(access *ir.Func, hier mem.HierarchyConfig, argSets ...[]interp.Value) (map[ir.Instr]*PrefetchProfile, error) {
	if access == nil {
		return nil, fmt.Errorf("dae: no access version to profile")
	}
	mod := ir.NewModule("profile")
	prog := interp.NewProgram(mod)
	l3 := mem.NewCache(hier.L3)
	p := &profiler{hier: mem.NewHierarchy(hier, l3), stats: make(map[ir.Instr]*PrefetchProfile)}
	env := interp.NewEnv(prog, p)
	env.SetPrefetchHook(p.hook)
	for _, args := range argSets {
		if _, err := env.Call(access, args...); err != nil {
			return nil, fmt.Errorf("dae: profiling run failed: %w", err)
		}
	}
	return p.stats, nil
}

// RefineOptions configure profile-guided pruning.
type RefineOptions struct {
	// MinMissRatio is the smallest private-cache miss ratio a prefetch
	// instruction must exhibit to be kept. Instructions below the threshold
	// prefetch lines that are (almost) always already cached — redundant
	// same-line prefetches or cache-resident tables — and are removed, the
	// expert knowledge of §6.2.3 automated through profiling (the paper's
	// stated future work, §7).
	MinMissRatio float64
	// Hierarchy is the cache configuration profiled against.
	Hierarchy mem.HierarchyConfig
}

// DefaultRefine returns the standard refinement configuration.
func DefaultRefine() RefineOptions {
	return RefineOptions{MinMissRatio: 0.02, Hierarchy: mem.EvalHierarchy()}
}

// RefineAccess profiles res.Access on the given representative argument sets
// and deletes prefetch instructions whose miss ratio falls below
// opts.MinMissRatio, followed by the standard cleanups (which also remove
// address chains that only fed deleted prefetches). It returns the number of
// static prefetch instructions removed. Tasks without an access version are
// a no-op.
func RefineAccess(res *Result, opts RefineOptions, argSets ...[]interp.Value) (int, error) {
	if res.Access == nil {
		return 0, nil
	}
	if len(argSets) == 0 {
		return 0, fmt.Errorf("dae: RefineAccess needs at least one representative argument set")
	}
	stats, err := ProfileAccess(res.Access, opts.Hierarchy, argSets...)
	if err != nil {
		return 0, err
	}

	removed := 0
	for _, b := range res.Access.Blocks {
		for _, in := range append([]ir.Instr{}, b.Instrs...) {
			pf, ok := in.(*ir.Prefetch)
			if !ok {
				continue
			}
			st := stats[pf]
			if st == nil {
				// Never executed under the profile: keep (unknown).
				continue
			}
			if st.MissRatio() < opts.MinMissRatio {
				b.Remove(pf)
				removed++
			}
		}
	}
	if removed > 0 {
		passes.CleanupOnly(res.Access)
		if err := res.Access.Verify(); err != nil {
			return removed, fmt.Errorf("dae: refined access version invalid: %w", err)
		}
	}
	return removed, nil
}
