package dae

import (
	"testing"

	"dae/internal/interp"
	"dae/internal/ir"
	"dae/internal/lower"
)

// Three-dimensional arrays exercise rank-3 GEPs end to end: lowering,
// scalar evolution per dimension, FM bounds in 3-D index space, and the
// generated rank-3 prefetch nest.
func TestAffine3DArray(t *testing.T) {
	src := `
task stencil3d(float A[D][H][W], float B[D][H][W], int D, int H, int W) {
	for (int z = 1; z < D-1; z++) {
		for (int y = 1; y < H-1; y++) {
			for (int x = 1; x < W-1; x++) {
				B[z][y][x] = A[z][y][x]
					+ A[z-1][y][x] + A[z+1][y][x]
					+ A[z][y-1][x] + A[z][y+1][x]
					+ A[z][y][x-1] + A[z][y][x+1];
			}
		}
	}
}
`
	m, res := genFromSrc(t, src, map[string]int64{"D": 8, "H": 8, "W": 8})
	r := res["stencil3d"]
	if r.Strategy != StrategyAffine {
		t.Fatalf("strategy = %s (%s), want affine", r.Strategy, r.Reason)
	}
	// Seven A accesses with identical offsets collapse into one class; the
	// generated nest has rank 3.
	if r.Classes != 1 {
		t.Errorf("classes = %d, want 1 (all A accesses share offsets)", r.Classes)
	}
	acc := m.Func("stencil3d_access")
	if got := countLoops(acc); got != 3 {
		t.Errorf("access nest rank = %d, want 3:\n%s", got, acc)
	}

	const n = 8
	h := interp.NewHeap()
	a := h.AllocFloat("A", n*n*n)
	b := h.AllocFloat("B", n*n*n)
	for i := range a.F {
		a.F[i] = float64(i % 11)
	}
	checkCoverage(t, m, "stencil3d",
		interp.Ptr(a), interp.Ptr(b), interp.Int(n), interp.Int(n), interp.Int(n))

	// The bounding hull is the full cube; the exact union of the seven
	// shifted interior boxes is the cross-shaped region (no corners):
	// 6·6·8 + 6·8·6 + 8·6·6 − 2·(6·6·6) = 432 cells. Ratio 512/432 ≈ 1.19
	// passes the profitability test.
	if r.NConvUn != n*n*n {
		t.Errorf("NConvUn = %d, want %d (full cube)", r.NConvUn, n*n*n)
	}
	if r.NOrig != 432 {
		t.Errorf("NOrig = %d, want 432 (union of shifted boxes)", r.NOrig)
	}

	// Semantics: verify against a Go stencil.
	prog := interp.NewProgram(m)
	env := interp.NewEnv(prog, nil)
	if _, err := env.Call(m.Func("stencil3d"),
		interp.Ptr(a), interp.Ptr(b), interp.Int(n), interp.Int(n), interp.Int(n)); err != nil {
		t.Fatal(err)
	}
	at := func(z, y, x int) float64 { return a.F[(z*n+y)*n+x] }
	for z := 1; z < n-1; z++ {
		for y := 1; y < n-1; y++ {
			for x := 1; x < n-1; x++ {
				want := at(z, y, x) + at(z-1, y, x) + at(z+1, y, x) +
					at(z, y-1, x) + at(z, y+1, x) + at(z, y, x-1) + at(z, y, x+1)
				if got := b.F[(z*n+y)*n+x]; got != want {
					t.Fatalf("B[%d][%d][%d] = %g, want %g", z, y, x, got, want)
				}
			}
		}
	}
}

// TestCacheLineStrideCoversAllLines checks the §5.2.3 per-line option:
// striding by 8 must still touch every cache line the per-element version
// touches.
func TestCacheLineStrideCoversAllLines(t *testing.T) {
	src := `
task sweep(float A[n], int n) {
	for (int i = 0; i < n; i++) {
		A[i] = A[i] + 1.0;
	}
}
`
	lines := func(stride int) map[int64]bool {
		m, err := compileAndGen(t, src, map[string]int64{"n": 4096}, stride)
		if err != nil {
			t.Fatal(err)
		}
		h := interp.NewHeap()
		a := h.AllocFloat("A", 4096)
		tr := newAddrTracer()
		env := interp.NewEnv(interp.NewProgram(m), tr)
		if _, err := env.Call(m.Func("sweep_access"), interp.Ptr(a), interp.Int(4096)); err != nil {
			t.Fatal(err)
		}
		out := map[int64]bool{}
		for addr := range tr.prefetches {
			out[addr>>6] = true
		}
		return out
	}
	perElem := lines(0)
	perLine := lines(8)
	if len(perLine) != len(perElem) {
		t.Fatalf("per-line stride covers %d lines, per-element %d", len(perLine), len(perElem))
	}
	for ln := range perElem {
		if !perLine[ln] {
			t.Fatalf("line %d missed by the strided access version", ln)
		}
	}
}

func compileAndGen(t *testing.T, src string, hints map[string]int64, stride int) (*ir.Module, error) {
	t.Helper()
	m, err := lower.Compile(src, "t")
	if err != nil {
		return nil, err
	}
	opts := Defaults()
	opts.ParamHints = hints
	opts.CacheLineStride = stride
	if _, err := GenerateModule(m, opts); err != nil {
		return nil, err
	}
	return m, nil
}
