package dae

import (
	"fmt"
	"strings"

	"dae/internal/interp"
	"dae/internal/ir"
)

// VizAccessMap renders the paper's Figure 1/2 style cell map for one 2-D
// array: which cells the execute version touches and which the access
// version prefetches, on one concrete task invocation.
//
//	.  untouched
//	#  accessed and prefetched (the goal)
//	P  prefetched but never accessed (over-prefetching, Fig. 1(b)/Fig. 2 grey)
//	A  accessed but not prefetched (a coverage gap, e.g. a dropped
//	   conditional access)
//
// The execute version runs on cloned data so the caller's arrays are
// untouched. seg must be the array to visualize, laid out row-major as
// rows×cols.
func VizAccessMap(task, access *ir.Func, args []interp.Value, seg *interp.Seg, rows, cols int) (string, error) {
	if rows*cols > seg.Len() {
		return "", fmt.Errorf("dae: grid %dx%d exceeds array of %d elements", rows, cols, seg.Len())
	}
	prog := interp.NewProgram(ir.NewModule("viz"))

	inSeg := func(addr int64) (int, bool) {
		idx := (addr - seg.Addr(0)) / interp.WordSize
		if idx < 0 || idx >= int64(rows*cols) {
			return 0, false
		}
		return int(idx), true
	}

	prefetched := make([]bool, rows*cols)
	accessed := make([]bool, rows*cols)

	if access != nil {
		tr := &vizTracer{}
		env := interp.NewEnv(prog, tr)
		if _, err := env.Call(access, args...); err != nil {
			return "", fmt.Errorf("dae: access run: %w", err)
		}
		for _, a := range tr.prefetches {
			if i, ok := inSeg(a); ok {
				prefetched[i] = true
			}
		}
	}

	// The execute phase mutates its arrays; run it on clones. Addresses
	// recorded belong to the cloned segment, so translate through the clone.
	scratch := interp.NewHeap()
	cloned := interp.CloneArgs(scratch, args)
	var clonedSeg *interp.Seg
	for _, s := range scratch.Segs() {
		if s.Name() == seg.Name()+".clone" {
			clonedSeg = s
		}
	}
	if clonedSeg == nil {
		return "", fmt.Errorf("dae: array %q is not an argument of the task", seg.Name())
	}
	tr := &vizTracer{}
	env := interp.NewEnv(prog, tr)
	if _, err := env.Call(task, cloned...); err != nil {
		return "", fmt.Errorf("dae: execute run: %w", err)
	}
	inClone := func(addr int64) (int, bool) {
		idx := (addr - clonedSeg.Addr(0)) / interp.WordSize
		if idx < 0 || idx >= int64(rows*cols) {
			return 0, false
		}
		return int(idx), true
	}
	for _, a := range append(tr.loads, tr.stores...) {
		if i, ok := inClone(a); ok {
			accessed[i] = true
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (%dx%d): '#' accessed+prefetched, 'A' accessed only, 'P' prefetched only\n",
		seg.Name(), rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := r*cols + c
			switch {
			case accessed[i] && prefetched[i]:
				sb.WriteByte('#')
			case accessed[i]:
				sb.WriteByte('A')
			case prefetched[i]:
				sb.WriteByte('P')
			default:
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}

type vizTracer struct {
	loads, stores, prefetches []int64
}

func (t *vizTracer) Load(a int64)     { t.loads = append(t.loads, a) }
func (t *vizTracer) Store(a int64)    { t.stores = append(t.stores, a) }
func (t *vizTracer) Prefetch(a int64) { t.prefetches = append(t.prefetches, a) }
