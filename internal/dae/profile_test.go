package dae

import (
	"testing"

	"dae/internal/interp"
	"dae/internal/ir"
	"dae/internal/mem"
)

// countPrefetchInstrs counts static prefetch instructions.
func countPrefetchInstrs(f *ir.Func) int {
	n := 0
	f.Instrs(func(in ir.Instr) {
		if _, ok := in.(*ir.Prefetch); ok {
			n++
		}
	})
	return n
}

func TestRefinePrunesResidentTablePrefetch(t *testing.T) {
	// The CIGAR fitness pattern: Pop streams (always missing), Lut is a
	// small resident table (its prefetches almost never miss). Profiling
	// must drop the Lut prefetch — and with it the Pop load feeding its
	// index — while keeping the Pop stream prefetch. That reproduces the
	// expert's manual version automatically (§6.2.3 / §7 future work).
	src := `
task eval(int Pop[P][L], float Lut[K], float Fit[P], int P, int L, int K, int lo, int hi) {
	for (int p = lo; p < hi; p++) {
		float s = 0;
		for (int g = 0; g < L; g++) {
			s += Lut[Pop[p][g] & (K-1)];
		}
		Fit[p] = s;
	}
}
`
	m, res := genFromSrc(t, src, map[string]int64{})
	r := res["eval"]
	if r.Strategy != StrategySkeleton {
		t.Fatalf("strategy = %s (%s)", r.Strategy, r.Reason)
	}
	before := countPrefetchInstrs(r.Access)
	if before < 2 {
		t.Fatalf("expected Pop and Lut prefetches, got %d:\n%s", before, r.Access)
	}

	const P, L, K = 64, 256, 256 // Lut = 2 KiB: resident
	h := interp.NewHeap()
	pop := h.AllocInt("Pop", P*L)
	lut := h.AllocFloat("Lut", K)
	fit := h.AllocFloat("Fit", P)
	for i := range pop.I {
		pop.I[i] = int64(i * 7)
	}

	// Profile over several chunks so the table is warm for most of the run.
	var argSets [][]interp.Value
	for lo := 0; lo < P; lo += 16 {
		argSets = append(argSets, []interp.Value{
			interp.Ptr(pop), interp.Ptr(lut), interp.Ptr(fit),
			interp.Int(P), interp.Int(L), interp.Int(K),
			interp.Int(int64(lo)), interp.Int(int64(lo + 16)),
		})
	}
	removed, err := RefineAccess(r, DefaultRefine(), argSets...)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatalf("expected the Lut prefetch to be pruned:\n%s", r.Access)
	}
	after := countPrefetchInstrs(r.Access)
	if after == 0 {
		t.Fatalf("the streaming Pop prefetch must survive:\n%s", r.Access)
	}
	if after >= before {
		t.Errorf("prefetch instrs %d → %d, want fewer", before, after)
	}

	// The refined access version must still cover the Pop stream: run it
	// and check the prefetched addresses include every Pop element read.
	tr := newAddrTracer()
	env := interp.NewEnv(interp.NewProgram(m), tr)
	if _, err := env.Call(r.Access, argSets[0]...); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < L; g++ {
		if !tr.prefetches[pop.Addr(int64(g))] {
			t.Fatalf("refined access no longer prefetches Pop[0][%d]", g)
		}
	}
	// And it must not write anything.
	if len(tr.stores) != 0 {
		t.Error("refined access version writes memory")
	}
}

func TestRefineKeepsStreamingPrefetches(t *testing.T) {
	// A pure streaming kernel: every prefetch line is fresh; nothing may be
	// pruned.
	src := `
task copy(float D[n], float S[n], int n, int lo, int hi) {
	for (int i = lo; i < hi; i++) {
		D[i] = S[i];
	}
}
`
	_, res := genFromSrc(t, src, map[string]int64{"n": 8192, "lo": 0, "hi": 1024})
	r := res["copy"]
	h := interp.NewHeap()
	d := h.AllocFloat("D", 8192)
	s := h.AllocFloat("S", 8192)
	var argSets [][]interp.Value
	for lo := 0; lo < 8192; lo += 1024 {
		argSets = append(argSets, []interp.Value{
			interp.Ptr(d), interp.Ptr(s), interp.Int(8192),
			interp.Int(int64(lo)), interp.Int(int64(lo + 1024)),
		})
	}
	before := countPrefetchInstrs(r.Access)
	// Per-element prefetching means 7/8 same-line hits, ratio 0.125 — above
	// the 0.02 threshold, so the prefetch stays.
	removed, err := RefineAccess(r, DefaultRefine(), argSets...)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 || countPrefetchInstrs(r.Access) != before {
		t.Errorf("streaming prefetches must survive refinement (removed %d)", removed)
	}
}

func TestProfileAccessStats(t *testing.T) {
	src := `
task k(float A[n], int n, int lo, int hi) {
	float s = 0;
	for (int i = lo; i < hi; i++) {
		s += A[i];
	}
	A[lo] = s;
}
`
	_, res := genFromSrc(t, src, map[string]int64{"n": 4096, "lo": 0, "hi": 512})
	r := res["k"]
	h := interp.NewHeap()
	a := h.AllocFloat("A", 4096)
	stats, err := ProfileAccess(r.Access, mem.EvalHierarchy(),
		[]interp.Value{interp.Ptr(a), interp.Int(4096), interp.Int(0), interp.Int(512)})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("no prefetch statistics collected")
	}
	for in, st := range stats {
		if st.Total != 512 {
			t.Errorf("%s: total = %d, want 512", ir.FormatInstr(in), st.Total)
		}
		// 512 elements = 64 lines cold-missed out of 512 prefetches.
		if got := st.MissRatio(); got < 0.1 || got > 0.15 {
			t.Errorf("miss ratio = %.3f, want ≈ 0.125", got)
		}
	}
	if (PrefetchProfile{}).MissRatio() != 0 {
		t.Error("zero-total profile should have ratio 0")
	}
}

func TestRefineNoAccessNoop(t *testing.T) {
	res := &Result{}
	n, err := RefineAccess(res, DefaultRefine())
	if err != nil || n != 0 {
		t.Errorf("refining a task without access version should be a no-op, got %d, %v", n, err)
	}
}
