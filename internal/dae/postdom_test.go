package dae

import (
	"testing"

	"dae/internal/ir"
)

// diamond builds entry → (a|b) → join → ret and returns the blocks.
func diamond(t *testing.T) (*ir.Func, *ir.Block, *ir.Block, *ir.Block, *ir.Block) {
	t.Helper()
	c := &ir.Param{Nam: "c", Typ: ir.BoolT}
	f := ir.NewFunc("f", ir.VoidT, []*ir.Param{c})
	bd := ir.NewBuilder(f)
	entry := bd.NewBlock("entry")
	a := bd.NewBlock("a")
	b := bd.NewBlock("b")
	join := bd.NewBlock("join")
	bd.SetBlock(entry)
	bd.CondBr(c, a, b)
	bd.SetBlock(a)
	bd.Br(join)
	bd.SetBlock(b)
	bd.Br(join)
	bd.SetBlock(join)
	bd.Ret(nil)
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	return f, entry, a, b, join
}

func TestPostDomDiamond(t *testing.T) {
	f, entry, a, b, join := diamond(t)
	pd := newPostDom(f)
	if got := pd.ipdom(entry); got != join {
		t.Errorf("ipdom(entry) = %v, want join", name(got))
	}
	if got := pd.ipdom(a); got != join {
		t.Errorf("ipdom(a) = %v, want join", name(got))
	}
	if got := pd.ipdom(b); got != join {
		t.Errorf("ipdom(b) = %v, want join", name(got))
	}
	if got := pd.ipdom(join); got != nil {
		t.Errorf("ipdom(join) = %v, want nil (exit)", name(got))
	}
}

func TestPostDomMultipleExits(t *testing.T) {
	// entry branches to two separate return blocks: its only post-dominator
	// is the virtual exit, so ipdom must be nil.
	c := &ir.Param{Nam: "c", Typ: ir.BoolT}
	f := ir.NewFunc("f", ir.IntT, []*ir.Param{c})
	bd := ir.NewBuilder(f)
	entry := bd.NewBlock("entry")
	a := bd.NewBlock("a")
	b := bd.NewBlock("b")
	bd.SetBlock(entry)
	bd.CondBr(c, a, b)
	bd.SetBlock(a)
	bd.Ret(ir.CI(1))
	bd.SetBlock(b)
	bd.Ret(ir.CI(2))
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	pd := newPostDom(f)
	if got := pd.ipdom(entry); got != nil {
		t.Errorf("ipdom(entry) = %v, want nil (paths reach different exits)", name(got))
	}
}

func TestPostDomChain(t *testing.T) {
	f := ir.NewFunc("f", ir.VoidT, nil)
	bd := ir.NewBuilder(f)
	b1 := bd.NewBlock("b1")
	b2 := bd.NewBlock("b2")
	b3 := bd.NewBlock("b3")
	bd.SetBlock(b1)
	bd.Br(b2)
	bd.SetBlock(b2)
	bd.Br(b3)
	bd.SetBlock(b3)
	bd.Ret(nil)
	pd := newPostDom(f)
	if pd.ipdom(b1) != b2 || pd.ipdom(b2) != b3 || pd.ipdom(b3) != nil {
		t.Errorf("chain ipdoms wrong: %v %v %v",
			name(pd.ipdom(b1)), name(pd.ipdom(b2)), name(pd.ipdom(b3)))
	}
}

func TestPostDomLoop(t *testing.T) {
	// entry → header ⇄ body; header → exit. The loop header post-dominates
	// the body and entry.
	f := ir.NewFunc("f", ir.VoidT, []*ir.Param{{Nam: "c", Typ: ir.BoolT}})
	bd := ir.NewBuilder(f)
	entry := bd.NewBlock("entry")
	header := bd.NewBlock("header")
	body := bd.NewBlock("body")
	exit := bd.NewBlock("exit")
	bd.SetBlock(entry)
	bd.Br(header)
	bd.SetBlock(header)
	bd.CondBr(f.Params[0], body, exit)
	bd.SetBlock(body)
	bd.Br(header)
	bd.SetBlock(exit)
	bd.Ret(nil)

	pd := newPostDom(f)
	if got := pd.ipdom(entry); got != header {
		t.Errorf("ipdom(entry) = %v, want header", name(got))
	}
	if got := pd.ipdom(body); got != header {
		t.Errorf("ipdom(body) = %v, want header", name(got))
	}
	if got := pd.ipdom(header); got != exit {
		t.Errorf("ipdom(header) = %v, want exit", name(got))
	}
}

func name(b *ir.Block) string {
	if b == nil {
		return "<nil>"
	}
	return b.Name
}

func TestRegionBetween(t *testing.T) {
	f, entry, a, b, join := diamond(t)
	region := regionBetween(f, entry, join)
	if len(region) != 2 {
		t.Fatalf("region = %d blocks, want 2", len(region))
	}
	seen := map[*ir.Block]bool{}
	for _, blk := range region {
		seen[blk] = true
	}
	if !seen[a] || !seen[b] {
		t.Error("region should contain both branch blocks")
	}
	if seen[join] || seen[entry] {
		t.Error("region must exclude the branch point and the join")
	}
}
