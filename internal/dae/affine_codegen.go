package dae

import (
	"fmt"

	"dae/internal/ir"
	"dae/internal/poly"
)

// nestGroup is a set of classes prefetched by one shared loop nest
// (the merge optimization of §5.1.2, trade-offs 2 and 3).
type nestGroup struct {
	rank    int
	classes []*accessClass
}

// mergeClasses groups classes whose per-dimension iteration counts match
// within tol. Extent equality is checked symbolically when the bound
// expressions are syntactically equal, and numerically at the parameter
// hints otherwise. The merged nest iterates each dimension's largest extent.
func mergeClasses(info *affineInfo, hints []int64, haveHints bool, tol int64) []*nestGroup {
	var groups []*nestGroup
	for _, cl := range info.classes {
		placed := false
		for _, g := range groups {
			if g.rank != cl.rank {
				continue
			}
			if extentsMatch(g.classes[0], cl, hints, haveHints, tol) {
				g.classes = append(g.classes, cl)
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, &nestGroup{rank: cl.rank, classes: []*accessClass{cl}})
		}
	}
	return groups
}

// extentsMatch reports whether two classes have per-dimension iteration
// counts within tol of each other.
func extentsMatch(a, b *accessClass, hints []int64, haveHints bool, tol int64) bool {
	for d := 0; d < a.rank; d++ {
		if symbolicExtentEqual(a, b, d) {
			continue
		}
		if !haveHints {
			return false
		}
		alo, ahi, ok1 := classDimRange(a, d, hints)
		blo, bhi, ok2 := classDimRange(b, d, hints)
		if !ok1 || !ok2 {
			return false
		}
		diff := (ahi - alo) - (bhi - blo)
		if diff < 0 {
			diff = -diff
		}
		if diff > tol {
			return false
		}
	}
	return true
}

// symbolicExtentEqual holds when both classes have single-access single-bound
// ranges whose (upper - lower) differences are syntactically equal.
func symbolicExtentEqual(a, b *accessClass, d int) bool {
	ea, ok := singleExtent(a, d)
	if !ok {
		return false
	}
	eb, ok := singleExtent(b, d)
	if !ok {
		return false
	}
	return ea.Equal(eb)
}

func singleExtent(cl *accessClass, d int) (poly.ParamExpr, bool) {
	if len(cl.accesses) != 1 {
		return poly.ParamExpr{}, false
	}
	if len(cl.bounds[d].lowers[0]) != 1 || len(cl.bounds[d].uppers[0]) != 1 {
		return poly.ParamExpr{}, false
	}
	lo := cl.bounds[d].lowers[0][0]
	hi := cl.bounds[d].uppers[0][0]
	if lo.Den != 1 || hi.Den != 1 {
		return poly.ParamExpr{}, false
	}
	return hi.Num.Sub(lo.Num), true
}

// generateAffineAccess emits the access function: one loop nest per group,
// each scanning [0, extent_d) per dimension and prefetching every class of
// the group at (lower_d + t_d).
func generateAffineAccess(f *ir.Func, info *affineInfo, groups []*nestGroup, opts Options) (*ir.Func, error) {
	params := make([]*ir.Param, len(f.Params))
	for i, p := range f.Params {
		params[i] = &ir.Param{Nam: p.Nam, Typ: p.Typ}
	}
	af := ir.NewFunc(f.Name+"_access", ir.VoidT, params)
	bd := ir.NewBuilder(af)
	entry := bd.NewBlock("entry")
	bd.SetBlock(entry)
	im := newImporter(f, af, bd)

	type classAddr struct {
		cl     *accessClass
		lowers []ir.Value // per dim
		base   ir.Value
		dims   []ir.Value
	}

	for gi, g := range groups {
		// The group nest iterates each dimension's largest class extent;
		// every class anchors addresses at its own lower bounds.
		extents := make([]ir.Value, g.rank)
		var addrs []classAddr
		for _, cl := range g.classes {
			ca := classAddr{cl: cl}
			rep := info.repGEP[cl]
			baseV, err := im.value(rep.Base)
			if err != nil {
				return nil, err
			}
			ca.base = baseV
			for _, dv := range rep.Dims {
				nv, err := im.value(dv)
				if err != nil {
					return nil, err
				}
				ca.dims = append(ca.dims, nv)
			}
			for d := 0; d < g.rank; d++ {
				lo, hi, err := classBoundIR(im, bd, info, cl, d)
				if err != nil {
					return nil, err
				}
				ca.lowers = append(ca.lowers, lo)
				ext := bd.Bin(ir.IAdd, bd.Bin(ir.ISub, hi, lo), ir.CI(1))
				if extents[d] == nil {
					extents[d] = ext
				} else {
					extents[d] = bd.Bin(ir.IMax, extents[d], ext)
				}
			}
			addrs = append(addrs, ca)
		}

		// Build the nest: for t_d in [0, extent_d) { prefetch ... }.
		cur := bd.Block()
		var phis []*ir.Phi
		var headers, latches []*ir.Block
		exit := bd.NewBlock(fmt.Sprintf("g%d.done", gi))
		for d := 0; d < g.rank; d++ {
			header := bd.NewBlock(fmt.Sprintf("g%d.h%d", gi, d))
			latch := bd.NewBlock(fmt.Sprintf("g%d.l%d", gi, d))
			headers = append(headers, header)
			latches = append(latches, latch)

			if d == 0 {
				// The preheader (bounds block) falls into the outer header;
				// inner headers are entered by the enclosing header's
				// conditional branch, added below.
				bd.SetBlock(cur)
				bd.Br(header)
			}
			pred := cur
			if d > 0 {
				pred = headers[d-1]
			}
			bd.SetBlock(header)
			t := bd.Phi(ir.IntT, fmt.Sprintf("t%d", d))
			t.AddIncoming(ir.CI(0), pred)
			phis = append(phis, t)
		}

		// Innermost body.
		body := bd.NewBlock(fmt.Sprintf("g%d.body", gi))
		bd.SetBlock(body)
		emitted := map[string]bool{}
		for _, ca := range addrs {
			idx := make([]ir.Value, g.rank)
			for d := 0; d < g.rank; d++ {
				idx[d] = bd.Bin(ir.IAdd, ca.lowers[d], phis[d])
			}
			key := prefetchKey(ca.base, idx)
			if opts.Dedup && emitted[key] {
				continue
			}
			emitted[key] = true
			// Stamp the prefetch with a representative member access so
			// position-based analyses (may-read coverage matching) can pair
			// it with the task-side load it covers.
			if len(ca.cl.accesses) > 0 {
				bd.SetPos(ca.cl.accesses[0].instr.Pos())
			}
			addr := bd.GEP(ca.base, ca.dims, idx)
			bd.Prefetch(addr)
		}

		// Wire headers: header_d branches to header_{d+1} (or body) while
		// t_d < extent_d, else to latch_{d-1} (or the group exit).
		for d := 0; d < g.rank; d++ {
			bd.SetBlock(headers[d])
			cond := bd.Cmp(ir.LT, phis[d], extents[d])
			var inner *ir.Block
			if d == g.rank-1 {
				inner = body
			} else {
				inner = headers[d+1]
			}
			var out *ir.Block
			if d == 0 {
				out = exit
			} else {
				out = latches[d-1]
			}
			bd.CondBr(cond, inner, out)
		}
		// Body falls into the innermost latch.
		bd.SetBlock(body)
		bd.Br(latches[g.rank-1])
		// Latches increment and re-enter their header.
		for d := 0; d < g.rank; d++ {
			bd.SetBlock(latches[d])
			step := int64(1)
			if opts.CacheLineStride > 1 && d == g.rank-1 {
				step = int64(opts.CacheLineStride)
			}
			next := bd.Bin(ir.IAdd, phis[d], ir.CI(step))
			phis[d].AddIncoming(next, latches[d])
			bd.Br(headers[d])
		}

		bd.SetBlock(exit)
	}
	bd.Ret(nil)

	if err := af.Verify(); err != nil {
		return nil, fmt.Errorf("dae: generated affine access version is invalid: %w\n%s", err, af)
	}
	return af, nil
}

// classBoundIR materializes the class's dimension-d lower and upper bounds
// as IR values: lower = min over accesses of (max over FM lower bounds),
// upper = max over accesses of (min over FM upper bounds).
func classBoundIR(im *importer, bd *ir.Builder, info *affineInfo, cl *accessClass, d int) (ir.Value, ir.Value, error) {
	var lo, hi ir.Value
	for i := range cl.accesses {
		accLo, err := reduceBounds(im, bd, info, cl.bounds[d].lowers[i], ir.IMax)
		if err != nil {
			return nil, nil, err
		}
		accHi, err := reduceBounds(im, bd, info, cl.bounds[d].uppers[i], ir.IMin)
		if err != nil {
			return nil, nil, err
		}
		if i == 0 {
			lo, hi = accLo, accHi
		} else {
			lo = bd.Bin(ir.IMin, lo, accLo)
			hi = bd.Bin(ir.IMax, hi, accHi)
		}
	}
	return lo, hi, nil
}

func reduceBounds(im *importer, bd *ir.Builder, info *affineInfo, bounds []poly.Bound, op ir.BinOp) (ir.Value, error) {
	var acc ir.Value
	for i, b := range bounds {
		v, err := paramExprIR(im, bd, info, b.Num)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			acc = v
		} else {
			acc = bd.Bin(op, acc, v)
		}
	}
	return acc, nil
}

// paramExprIR renders a ParamExpr over the symbol space as IR.
func paramExprIR(im *importer, bd *ir.Builder, info *affineInfo, e poly.ParamExpr) (ir.Value, error) {
	var acc ir.Value = ir.CI(e.Const)
	for j, c := range e.Coef {
		if c == 0 {
			continue
		}
		sym, err := im.value(info.sp.syms[j])
		if err != nil {
			return nil, err
		}
		term := sym
		if c != 1 {
			term = bd.Bin(ir.IMul, ir.CI(c), sym)
		}
		acc = bd.Bin(ir.IAdd, acc, term)
	}
	return acc, nil
}

func prefetchKey(base ir.Value, idx []ir.Value) string {
	s := fmt.Sprintf("%p", base)
	for _, v := range idx {
		s += fmt.Sprintf("/%p", v)
	}
	return s
}
