package dae

import (
	"testing"

	"dae/internal/cpu"
	"dae/internal/interp"
	"dae/internal/ir"
	"dae/internal/lower"
	"dae/internal/mem"
)

// condSrc reads B[i] only when A[i] exceeds a threshold: the simplified
// variant prefetches A only; the full variant replicates the branch and
// prefetches B on taken iterations.
const condSrc = `
task cond(float A[n], float B[n], float Out[one], int n, int one) {
	float s = 0;
	for (int i = 0; i < n; i++) {
		if (A[i] > 0.5) {
			s += B[i];
		}
	}
	Out[0] = s;
}
`

func buildMultiVersion(t *testing.T) *Result {
	t.Helper()
	m, err := lower.Compile(condSrc, "mv")
	if err != nil {
		t.Fatal(err)
	}
	opts := Defaults()
	opts.MultiVersion = true
	results, err := GenerateModule(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	r := results["cond"]
	if r.Strategy != StrategySkeleton {
		t.Fatalf("strategy = %s (%s)", r.Strategy, r.Reason)
	}
	if r.AccessFull == nil {
		t.Fatalf("expected a full-CFG variant:\n%s", r.Access)
	}
	if m.Func("cond_access_full") == nil {
		t.Fatal("full variant not added to module")
	}
	return r
}

// makeArgs builds n elements with the branch taken at rate takenPct/100.
func makeArgs(takenPct int) [][]interp.Value {
	h := interp.NewHeap()
	const n = 8192
	a := h.AllocFloat("A", n)
	b := h.AllocFloat("B", n)
	out := h.AllocFloat("Out", 1)
	for i := 0; i < n; i++ {
		if i%100 < takenPct {
			a.F[i] = 1.0
		}
		b.F[i] = float64(i)
	}
	var sets [][]interp.Value
	for lo := 0; lo < n; lo += 2048 {
		// Chunked via Out reuse: the kernel iterates the whole array, so one
		// set suffices; use two identical for stability.
		_ = lo
	}
	sets = append(sets, []interp.Value{
		interp.Ptr(a), interp.Ptr(b), interp.Ptr(out), interp.Int(n), interp.Int(1),
	})
	return sets
}

func TestSelectAccessVariantHotBranch(t *testing.T) {
	r := buildMultiVersion(t)
	// Branch taken 95% of the time: the full variant's B prefetches pay off.
	choice, err := SelectAccessVariant(r, cpu.DefaultParams(), mem.EvalHierarchy(), 1.6, 3.4, makeArgs(95)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("hot branch: simplified %.4g s, full %.4g s", choice.SimplifiedScore, choice.FullScore)
	if choice.Simplified {
		t.Errorf("hot-branch profile should select the full-CFG variant (simplified %.4g vs full %.4g)",
			choice.SimplifiedScore, choice.FullScore)
	}
	if choice.Chosen != r.AccessFull {
		t.Error("Chosen should be the full variant")
	}
}

func TestSelectAccessVariantColdBranch(t *testing.T) {
	r := buildMultiVersion(t)
	// Branch taken 2% of the time: prefetching B is wasted work.
	choice, err := SelectAccessVariant(r, cpu.DefaultParams(), mem.EvalHierarchy(), 1.6, 3.4, makeArgs(2)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cold branch: simplified %.4g s, full %.4g s", choice.SimplifiedScore, choice.FullScore)
	if !choice.Simplified {
		t.Errorf("cold-branch profile should select the simplified variant (simplified %.4g vs full %.4g)",
			choice.SimplifiedScore, choice.FullScore)
	}
}

func TestSelectAccessVariantNoFull(t *testing.T) {
	// A branch-free kernel yields no full variant; selection is trivial.
	m, err := lower.Compile(`
task plain(float A[n], int n) {
	for (int i = 0; i < n; i++) {
		A[i] = A[i] + 1.0;
	}
}`, "mv2")
	if err != nil {
		t.Fatal(err)
	}
	opts := Defaults()
	opts.MultiVersion = true
	opts.HullTest = false
	opts.ForceSkeleton = true
	results, err := GenerateModule(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	r := results["plain"]
	if r.AccessFull != nil {
		t.Error("branch-free task should have no full variant")
	}
	choice, err := SelectAccessVariant(r, cpu.DefaultParams(), mem.EvalHierarchy(), 1.6, 3.4)
	if err != nil {
		t.Fatal(err)
	}
	if !choice.Simplified || choice.Chosen != r.Access {
		t.Error("trivial selection should return the simplified variant")
	}
}

// The full variant must still be safe: no stores, no faults.
func TestFullVariantSafety(t *testing.T) {
	r := buildMultiVersion(t)
	args := makeArgs(50)[0]
	tr := newAddrTracer()
	prog := interp.NewProgram(ir.NewModule("safety"))
	env := interp.NewEnv(prog, tr)
	if _, err := env.Call(r.AccessFull, args...); err != nil {
		t.Fatalf("full variant faulted: %v", err)
	}
	if len(tr.stores) != 0 {
		t.Error("full variant wrote memory")
	}
	// It must prefetch B on taken iterations (half of them here).
	if len(tr.prefetches) <= 8192 {
		t.Errorf("full variant should prefetch A plus taken-B: got %d distinct addresses", len(tr.prefetches))
	}
}
