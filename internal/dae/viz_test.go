package dae

import (
	"strings"
	"testing"

	"dae/internal/interp"
)

func TestVizAccessMapBlocks(t *testing.T) {
	// The Listing 3 / Figure 2 picture: two blocks of one array, nothing in
	// between.
	hints := map[string]int64{"N": 16, "Block": 4, "Ax": 0, "Ay": 0, "Dx": 8, "Dy": 8}
	m, res := genFromSrc(t, listing3, hints)
	r := res["blocks"]
	_ = m

	h := interp.NewHeap()
	a := h.AllocFloat("A", 16*16)
	for i := range a.F {
		a.F[i] = 1
	}
	args := []interp.Value{interp.Ptr(a), interp.Int(16), interp.Int(4),
		interp.Int(0), interp.Int(0), interp.Int(8), interp.Int(8)}

	out, err := VizAccessMap(r.Task, r.Access, args, a, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", out)
	lines := strings.Split(out, "\n")[1:] // drop header

	// No coverage gaps anywhere.
	if strings.Contains(out, "A") && strings.Count(out, "A (") == 0 {
		for _, l := range lines {
			if strings.ContainsRune(l, 'A') {
				t.Fatalf("coverage gap in map:\n%s", out)
			}
		}
	}
	// The region between the two blocks (e.g. row 5, columns 0..15) must be
	// completely untouched — the convex hull of the union would have filled
	// it (Fig. 2's light grey).
	for _, rc := range []int{5, 6, 7} {
		if strings.ContainsAny(lines[rc], "#AP") {
			t.Errorf("row %d between blocks should be empty: %q", rc, lines[rc])
		}
	}
	// Both blocks show up.
	if !strings.ContainsAny(lines[1], "#P") || !strings.ContainsAny(lines[9], "#P") {
		t.Errorf("expected marks in both block regions:\n%s", out)
	}
	// The original arrays are untouched (execute ran on a clone).
	for i := range a.F {
		if a.F[i] != 1 {
			t.Fatal("VizAccessMap mutated the caller's array")
		}
	}
}

func TestVizAccessMapConditionalGap(t *testing.T) {
	// A dropped conditional access shows up as 'A' cells (accessed by the
	// execute phase, not prefetched) — the readable diagnostic for the
	// guaranteed-only rule.
	src := `
task cond2(float A[n], float B[n], float Out[one], int n, int one) {
	float s = 0;
	for (int i = 0; i < n; i++) {
		if (A[i] > 0.5) {
			s += B[i];
		}
	}
	Out[0] = s;
}
`
	_, res := genFromSrc(t, src, map[string]int64{})
	r := res["cond2"]

	h := interp.NewHeap()
	a := h.AllocFloat("A", 64)
	b := h.AllocFloat("B", 64)
	out := h.AllocFloat("Out", 1)
	for i := range a.F {
		a.F[i] = 1 // every branch taken: every B[i] is accessed
	}
	args := []interp.Value{interp.Ptr(a), interp.Ptr(b), interp.Ptr(out), interp.Int(64), interp.Int(1)}

	grid := func(viz string) string {
		lines := strings.SplitN(viz, "\n", 2)
		return lines[1]
	}
	vizB, err := VizAccessMap(r.Task, r.Access, args, b, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(grid(vizB), "A") {
		t.Errorf("B's map should show accessed-not-prefetched cells:\n%s", vizB)
	}
	vizA, err := VizAccessMap(r.Task, r.Access, args, a, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(grid(vizA), "A") || !strings.Contains(grid(vizA), "#") {
		t.Errorf("A's map should be fully covered:\n%s", vizA)
	}
}

func TestVizErrors(t *testing.T) {
	src := `
task k(float A[n], int n) {
	for (int i = 0; i < n; i++) { A[i] = 0.0; }
}`
	_, res := genFromSrc(t, src, map[string]int64{"n": 16})
	r := res["k"]
	h := interp.NewHeap()
	a := h.AllocFloat("A", 16)
	other := h.AllocFloat("Other", 16)
	args := []interp.Value{interp.Ptr(a), interp.Int(16)}
	if _, err := VizAccessMap(r.Task, r.Access, args, a, 4, 4); err != nil {
		t.Errorf("4x4 view of 16 elements should work: %v", err)
	}
	if _, err := VizAccessMap(r.Task, r.Access, args, a, 100, 100); err == nil {
		t.Error("oversized grid should error")
	}
	if _, err := VizAccessMap(r.Task, r.Access, args, other, 4, 4); err == nil {
		t.Error("non-argument array should error")
	}
}
