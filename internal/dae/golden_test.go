package dae

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dae/internal/ir"
	"dae/internal/lower"
)

var updateGolden = flag.Bool("update", false, "rewrite golden access-version files")

// goldenCases pin the exact generated access IR for the paper's listings;
// any change to the generation pipeline that alters the output shows up as
// a readable diff against testdata/*.ir. Regenerate intentionally with
//
//	go test ./internal/dae -run Golden -update
var goldenCases = []struct {
	name  string
	src   string
	task  string
	hints map[string]int64
}{
	{
		name: "listing1a_lu",
		src: `
task lu(float A[N][N], int N) {
	for (int i = 0; i < N; i++) {
		for (int j = i+1; j < N; j++) {
			A[j][i] /= A[i][i];
			for (int k = i+1; k < N; k++) {
				A[j][k] -= A[j][i] * A[i][k];
			}
		}
	}
}`,
		task:  "lu",
		hints: map[string]int64{"N": 12},
	},
	{
		name: "listing2_multiarray",
		src: `
task mul(float A[N][N], float D[N][N], int N, int Block) {
	for (int i = 0; i < Block; i++) {
		for (int j = i+1; j < Block; j++) {
			for (int k = 0; k < Block; k++) {
				A[j][k] -= D[j][i] * A[i][k];
			}
		}
	}
}`,
		task:  "mul",
		hints: map[string]int64{"N": 32, "Block": 8},
	},
	{
		name: "listing3_classes",
		src: `
task blocks(float A[N][N], int N, int Block, int Ax, int Ay, int Dx, int Dy) {
	for (int i = 0; i < Block; i++) {
		for (int j = i+1; j < Block; j++) {
			for (int k = i+1; k < Block; k++) {
				A[Ax+j][Ay+k] -= A[Dx+j][Dy+i] * A[Ax+i][Ay+k];
			}
		}
	}
}`,
		task:  "blocks",
		hints: map[string]int64{"N": 64, "Block": 8, "Ax": 0, "Ay": 0, "Dx": 32, "Dy": 32},
	},
	{
		name: "skeleton_spmv",
		src: `
task spmv(float Y[n], float V[nnz], int C[nnz], float X[m], int R[n1], int n, int nnz, int m, int n1) {
	for (int i = 0; i < n; i++) {
		float s = 0;
		for (int j = R[i]; j < R[i+1]; j++) {
			s += V[j] * X[C[j]];
		}
		Y[i] = Y[i] + s;
	}
}`,
		task:  "spmv",
		hints: map[string]int64{},
	},
	{
		name: "skeleton_conditional",
		src: `
task cond(float A[n], float B[n], float Out[one], int n, int one) {
	float s = 0;
	for (int i = 0; i < n; i++) {
		if (A[i] > 0.5) {
			s += B[i];
		}
	}
	Out[0] = s;
}`,
		task:  "cond",
		hints: map[string]int64{},
	},
}

func TestGoldenAccessVersions(t *testing.T) {
	for _, tc := range goldenCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			m, err := lower.Compile(tc.src, tc.name)
			if err != nil {
				t.Fatal(err)
			}
			opts := Defaults()
			opts.ParamHints = tc.hints
			results, err := GenerateModule(m, opts)
			if err != nil {
				t.Fatal(err)
			}
			r := results[tc.task]
			if r.Access == nil {
				t.Fatalf("no access version (%s)", r.Reason)
			}
			// Canonicalize register numbering through a parser round trip.
			canon, err := ir.ParseFunc(r.Access.String())
			if err != nil {
				t.Fatalf("canonicalize: %v", err)
			}
			got := canon.String()

			path := filepath.Join("testdata", tc.name+".ir")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("access version changed.\n--- got:\n%s\n--- want:\n%s", got, want)
			}
		})
	}
}
