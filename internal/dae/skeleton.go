package dae

import (
	"fmt"

	"dae/internal/ir"
	"dae/internal/passes"
)

// generateSkeletonAccess builds the access version of a non-affine task as an
// optimized clone of the original (§5.2.2):
//
//  1. (calls were already inlined by the -O3 pipeline; reject leftovers)
//  2. clone the task,
//  3. mark reads of task-external data (loads through parameter pointers)
//     and attach a prefetch to each,
//  4. mark instructions preserving loop control flow,
//  5. close the marks over use-def chains; reject the task if an
//     address/control chain reads an array the task also writes (the
//     paper's "no visible side effects" condition),
//  6. simplify the CFG by removing loop-body conditionals that do not feed
//     loop control, then discard unmarked instructions and all stores, and
//     run the standard cleanups.
func generateSkeletonAccess(f *ir.Func, opts Options) (*ir.Func, error) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*ir.Call); ok {
				return nil, fmt.Errorf("dae: task @%s calls @%s which was not inlined", f.Name, c.Callee.Name)
			}
		}
	}

	af := ir.CloneFunc(f, f.Name+"_access")
	af.IsTask = false
	af.RemoveUnreachable()

	dt := ir.NewDomTree(af)
	loops := ir.FindLoops(af, dt)

	// Arrays the task writes.
	stored := map[ir.Value]bool{}
	af.Instrs(func(in ir.Instr) {
		if st, ok := in.(*ir.Store); ok {
			if base, ok := baseParamOf(st.Ptr); ok {
				stored[base] = true
			}
		}
	})

	// Control marks: closure over everything loop control depends on.
	ctl := map[ir.Instr]bool{}
	for _, l := range loops.AllLoops() {
		for _, b := range l.Blocks {
			cb, ok := b.Term().(*ir.CondBr)
			if !ok {
				continue
			}
			// A conditional inside a loop is loop control when at least one
			// target leaves the loop (header test or break-style exit).
			if !l.Contains(cb.Then) || !l.Contains(cb.Else) {
				markClosure(cb.Cond, ctl)
			}
		}
	}

	// The "no side effects" condition: a load feeding control from a stored
	// array would see different data once stores are dropped.
	for in := range ctl {
		if ld, ok := in.(*ir.Load); ok {
			if base, ok := baseParamOf(ld.Ptr); ok && stored[base] {
				return nil, fmt.Errorf("dae: loop control of @%s depends on array %%%s that the task writes", f.Name, base.Ref())
			}
		}
	}

	// Remove loop-body conditionals that do not maintain loop control flow
	// (§5.2.2 step 6 / "Simplified CFG"). Values computed under such
	// conditionals become unavailable; loads depending on them lose their
	// prefetch.
	if opts.SimplifyCFG {
		if err := dropBodyConditionals(af, ctl); err != nil {
			return nil, err
		}
		af.RemoveUnreachable()
		dt = ir.NewDomTree(af)
		loops = ir.FindLoops(af, dt)
	}

	// Root prefetches: every remaining load through a parameter pointer.
	type rootLoad struct {
		load *ir.Load
		gep  *ir.GEP
	}
	var roots []rootLoad
	af.Instrs(func(in ir.Instr) {
		ld, ok := in.(*ir.Load)
		if !ok {
			return
		}
		gep, ok := ld.Ptr.(*ir.GEP)
		if !ok {
			return
		}
		if _, ok := baseParamOf(gep); ok {
			roots = append(roots, rootLoad{load: ld, gep: gep})
		}
	})

	// Address marks: closure over the prefetch addresses. This keeps the
	// loads that feed indirection chains (pointer chasing) alive.
	addr := map[ir.Instr]bool{}
	for _, r := range roots {
		markClosure(r.gep, addr)
	}

	// Address chains reading written arrays are rejected for the same
	// reason as control chains (the skeleton would chase stale pointers).
	for in := range addr {
		if ld, ok := in.(*ir.Load); ok {
			if base, ok := baseParamOf(ld.Ptr); ok && stored[base] {
				return nil, fmt.Errorf("dae: address computation of @%s depends on array %%%s that the task writes", f.Name, base.Ref())
			}
		}
	}

	// Conditionals that survived CFG simplification (kept because loop
	// control lives in their region, or simplification was disabled) still
	// need their conditions; keep those chains alive too.
	for _, b := range af.Blocks {
		if cb, ok := b.Term().(*ir.CondBr); ok {
			markClosure(cb.Cond, ctl)
		}
	}

	// Insert prefetches next to the roots ("accompany, rather than replace,
	// each load", §5.2.1), deduplicating identical addresses per block.
	seen := map[string]bool{}
	for _, r := range roots {
		if opts.Dedup {
			key := fmt.Sprintf("%s/%p", r.load.Parent().Name, r.gep)
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		pf := ir.NewPrefetch(r.gep)
		pf.SetPos(r.load.Pos())
		r.load.Parent().InsertBefore(pf, r.load)
	}

	// Optionally prefetch store targets (off by default: §5.2.1 found write
	// prefetching not to help).
	if opts.PrefetchStores {
		af.Instrs(func(in ir.Instr) {
			if st, ok := in.(*ir.Store); ok {
				if g, ok := st.Ptr.(*ir.GEP); ok {
					if _, isParam := baseParamOf(g); isParam {
						pf := ir.NewPrefetch(g)
						pf.SetPos(st.Pos())
						st.Parent().InsertBefore(pf, st)
					}
				}
			}
		})
	}

	// Discard stores and every unmarked instruction; keep prefetches,
	// terminators, and the phis/values the marked sets depend on.
	keep := map[ir.Instr]bool{}
	for in := range ctl {
		keep[in] = true
	}
	for in := range addr {
		keep[in] = true
	}
	for _, b := range af.Blocks {
		for _, in := range append([]ir.Instr{}, b.Instrs...) {
			switch in.(type) {
			case *ir.Prefetch:
				continue
			case *ir.Store:
				b.Remove(in)
				continue
			}
			if ir.IsTerminator(in) {
				continue
			}
			if !keep[in] {
				b.Remove(in)
			}
		}
	}

	// Final cleanups (-O3 on the access version).
	passes.CleanupOnly(af)
	if err := af.Verify(); err != nil {
		return nil, fmt.Errorf("dae: generated skeleton access version is invalid: %w\n%s", err, af)
	}
	return af, nil
}

// baseParamOf walks GEP chains to the underlying parameter.
func baseParamOf(v ir.Value) (*ir.Param, bool) {
	for {
		switch x := v.(type) {
		case *ir.Param:
			return x, x.Typ.IsPtr()
		case *ir.GEP:
			v = x.Base
		default:
			return nil, false
		}
	}
}

// markClosure marks the defining instruction of v and, transitively, the
// definitions of every operand (including phi incomings).
func markClosure(v ir.Value, marks map[ir.Instr]bool) {
	in, ok := v.(ir.Instr)
	if !ok {
		return
	}
	if marks[in] {
		return
	}
	marks[in] = true
	for _, op := range in.Operands() {
		markClosure(op, marks)
	}
}

// dropBodyConditionals rewrites every conditional branch that stays inside
// its loop (or is outside all loops) into an unconditional branch to the
// join point (immediate post-dominator), unless the conditional region
// defines values that loop control depends on. Join-point phis that lose
// their definitions take the straight-path value when one exists from the
// rewritten edge; otherwise their dependents are dropped by the caller's
// mark logic (the phi is simply not marked).
func dropBodyConditionals(f *ir.Func, ctl map[ir.Instr]bool) error {
	for {
		changed := false
		dt := ir.NewDomTree(f)
		loops := ir.FindLoops(f, dt)
		pdt := newPostDom(f)

		for _, b := range f.Blocks {
			cb, ok := b.Term().(*ir.CondBr)
			if !ok {
				continue
			}
			l := loops.Of[b]
			if l != nil && (!l.Contains(cb.Then) || !l.Contains(cb.Else)) {
				continue // loop control: keep
			}
			join := pdt.ipdom(b)
			if join == nil || join == b {
				continue
			}
			// Region blocks: reachable from b without passing through join.
			region := regionBetween(f, b, join)
			// Keep the conditional if loop headers or control-marked values
			// live in the region.
			unsafe := false
			for _, rb := range region {
				if loops.ByHeader[rb] != nil {
					unsafe = true // a whole loop hides inside: keep (rare)
					break
				}
				for _, in := range rb.Instrs {
					if ctl[in] {
						unsafe = true
						break
					}
				}
				if unsafe {
					break
				}
			}
			if unsafe {
				continue
			}

			// Rewire: b jumps straight to join.
			b.Remove(cb)
			b.Append(ir.NewBr(join))
			// Region blocks become unreachable; detach them (this also
			// removes their phi edges into join).
			f.RemoveUnreachable()
			// Phis in join may now have a single incoming or refer only to
			// b; a phi missing an edge from b gets one poisoned with an
			// arbitrary surviving incoming value only if that value
			// dominates b — otherwise the phi is replaced by dropping its
			// dependents (handled by not marking them).
			fixJoinPhis(f, b, join)
			changed = true
			break
		}
		if !changed {
			return nil
		}
	}
}

// fixJoinPhis repairs join's phis after b was wired straight to it: each phi
// either already has an incoming for b, or it gains one. The value used is
// an incoming whose definition dominates b when available; otherwise the phi
// is conditional data — it is removed and its transitive users are deleted
// (dropping the corresponding prefetches, which matches the paper's "only
// data guaranteed to be accessed is prefetched").
func fixJoinPhis(f *ir.Func, b, join *ir.Block) {
	dt := ir.NewDomTree(f)
	preds := f.Preds()[join]
	for _, phi := range append([]*ir.Phi{}, join.Phis()...) {
		if phi.Incoming(b) != nil {
			// Drop incomings from removed predecessors.
			for _, in := range append([]ir.PhiIn{}, phi.In...) {
				if !blockInSlice(preds, in.Pred) {
					phi.RemoveIncoming(in.Pred)
				}
			}
			continue
		}
		// Find a surviving incoming whose def dominates b.
		var repl ir.Value
		for _, in := range phi.In {
			if def, ok := in.Val.(ir.Instr); ok {
				if def.Parent() != nil && dt.Reachable(def.Parent()) && dt.Dominates(def.Parent(), b) {
					repl = in.Val
					break
				}
			} else {
				repl = in.Val // constants/params always available
				break
			}
		}
		if repl != nil {
			f.ReplaceAllUses(phi, repl)
			join.Remove(phi)
			continue
		}
		deleteWithUsers(f, phi)
	}
	// Other phis' stale edges (defensive).
	for _, blk := range f.Blocks {
		ps := f.Preds()[blk]
		for _, phi := range append([]*ir.Phi{}, blk.Phis()...) {
			for _, in := range append([]ir.PhiIn{}, phi.In...) {
				if !blockInSlice(ps, in.Pred) {
					phi.RemoveIncoming(in.Pred)
				}
			}
		}
	}
}

// deleteWithUsers removes in and, transitively, every instruction that uses
// it. Terminators are never deleted (they cannot depend on dropped
// conditionals: control-marked regions are kept).
func deleteWithUsers(f *ir.Func, in ir.Instr) {
	users := map[ir.Instr][]ir.Instr{}
	f.Instrs(func(u ir.Instr) {
		for _, op := range u.Operands() {
			if def, ok := op.(ir.Instr); ok {
				users[def] = append(users[def], u)
			}
		}
	})
	var kill func(x ir.Instr)
	killed := map[ir.Instr]bool{}
	kill = func(x ir.Instr) {
		if killed[x] || ir.IsTerminator(x) {
			return
		}
		killed[x] = true
		for _, u := range users[x] {
			kill(u)
		}
		if x.Parent() != nil {
			x.Parent().Remove(x)
		}
	}
	kill(in)
}

func blockInSlice(s []*ir.Block, b *ir.Block) bool {
	for _, x := range s {
		if x == b {
			return true
		}
	}
	return false
}

// regionBetween returns the blocks reachable from b's successors without
// passing through join.
func regionBetween(f *ir.Func, b, join *ir.Block) []*ir.Block {
	seen := map[*ir.Block]bool{join: true, b: true}
	var out []*ir.Block
	var work []*ir.Block
	for _, s := range b.Succs() {
		work = append(work, s)
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
		for _, s := range n.Succs() {
			work = append(work, s)
		}
	}
	return out
}
