package dae

import (
	"errors"
	"strings"
	"testing"

	"dae/internal/fault"
	"dae/internal/ir"
)

const ladderSrc = `
task triad(float A[n], float B[n], float C[n], int n) {
	for (int i = 0; i < n; i++) {
		A[i] = B[i] + 2.5 * C[i];
	}
}
`

var ladderHints = map[string]int64{"n": 1024}

// TestLadderHealthyAffineHasNoRejections: a task that lands on the top rung
// records nothing.
func TestLadderHealthyAffineHasNoRejections(t *testing.T) {
	_, results := genFromSrc(t, ladderSrc, ladderHints)
	res := results["triad"]
	if res.Strategy != StrategyAffine {
		t.Fatalf("strategy = %v, want affine (%s)", res.Strategy, res.Reason)
	}
	if len(res.Rejections) != 0 {
		t.Errorf("healthy affine task has rejections: %v", res.Rejections)
	}
}

// TestLadderDegradesAffineFaultToSkeleton: a fault inside the affine rung
// (here a purity-style verify fault via the test hook) rejects the rung with
// its typed class and the task lands on the skeleton rung — compilation
// never fails hard.
func TestLadderDegradesAffineFaultToSkeleton(t *testing.T) {
	testRungHook = func(s Strategy, f *ir.Func) error {
		if s == StrategyAffine {
			return fault.New(fault.KindVerify, "injected impure affine slice")
		}
		return nil
	}
	defer func() { testRungHook = nil }()

	_, results := genFromSrc(t, ladderSrc, ladderHints)
	res := results["triad"]
	if res.Strategy != StrategySkeleton || res.Access == nil {
		t.Fatalf("did not degrade to skeleton: strategy=%v access=%v", res.Strategy, res.Access)
	}
	if len(res.Rejections) != 1 {
		t.Fatalf("rejections = %v, want exactly the affine rung", res.Rejections)
	}
	rej := res.Rejections[0]
	if rej.Strategy != StrategyAffine || !errors.Is(rej.Err, fault.ErrVerify) {
		t.Errorf("wrong rejection recorded: %+v", rej)
	}
	if !rej.Faulted() {
		t.Error("a verify fault must count as a real fault, not an analysis decision")
	}
}

// TestLadderPanicFaultsRungNotProcess: a panic inside a generation rung is
// recovered into a KindPanic rejection and the ladder keeps descending.
func TestLadderPanicFaultsRungNotProcess(t *testing.T) {
	testRungHook = func(s Strategy, f *ir.Func) error {
		if s == StrategyAffine {
			panic("injected codegen crash")
		}
		return nil
	}
	defer func() { testRungHook = nil }()

	_, results := genFromSrc(t, ladderSrc, ladderHints)
	res := results["triad"]
	if res.Strategy != StrategySkeleton {
		t.Fatalf("strategy = %v, want skeleton", res.Strategy)
	}
	if len(res.Rejections) != 1 || !errors.Is(res.Rejections[0].Err, fault.ErrPanic) {
		t.Errorf("panic not recorded as rejection: %v", res.Rejections)
	}
}

// TestLadderBottomsOutCoupled: when both rungs fault the task runs coupled
// (StrategyNone) with both rejections recorded — still no hard failure.
func TestLadderBottomsOutCoupled(t *testing.T) {
	testRungHook = func(s Strategy, f *ir.Func) error {
		return fault.New(fault.KindVerify, "injected fault on %v rung", s)
	}
	defer func() { testRungHook = nil }()

	_, results := genFromSrc(t, ladderSrc, ladderHints)
	res := results["triad"]
	if res.Strategy != StrategyNone || res.Access != nil {
		t.Fatalf("did not bottom out coupled: strategy=%v", res.Strategy)
	}
	if len(res.Rejections) != 2 {
		t.Fatalf("rejections = %v, want affine and skeleton", res.Rejections)
	}
	if res.Rejections[0].Strategy != StrategyAffine || res.Rejections[1].Strategy != StrategySkeleton {
		t.Errorf("rungs out of ladder order: %v", res.Rejections)
	}
	if res.Reason == "" {
		t.Error("coupled task must carry a Reason")
	}
}

// TestLadderAnalysisDecisionIsNotAFault: a task the affine analysis rejects
// by design (pointer chasing) lands on skeleton with a KindDegraded
// rejection that does not count as faulted.
func TestLadderAnalysisDecisionIsNotAFault(t *testing.T) {
	src := `
task chase(int next[n], float val[n], int n, int start, int hops) {
	int p = start;
	float acc = 0.0;
	for (int i = 0; i < hops; i++) {
		acc = acc + val[p];
		p = next[p];
	}
	val[start] = acc;
}
`
	_, results := genFromSrc(t, src, map[string]int64{"n": 256, "start": 0, "hops": 64})
	res := results["chase"]
	if res.Strategy != StrategySkeleton {
		t.Fatalf("strategy = %v, want skeleton (%s)", res.Strategy, res.Reason)
	}
	if len(res.Rejections) != 1 {
		t.Fatalf("rejections = %v", res.Rejections)
	}
	rej := res.Rejections[0]
	if !errors.Is(rej.Err, fault.ErrDegraded) || rej.Faulted() {
		t.Errorf("analysis decision misclassified as fault: %+v", rej)
	}
}

// TestDegradationReport: the module-level report is sorted, renders fault
// classes, and only counts real faults as degradation.
func TestDegradationReport(t *testing.T) {
	src := ladderSrc + `
task chase(int next[n], float val[n], int n, int start, int hops) {
	int p = start;
	float acc = 0.0;
	for (int i = 0; i < hops; i++) {
		acc = acc + val[p];
		p = next[p];
	}
	val[start] = acc;
}
`
	_, results := genFromSrc(t, src, map[string]int64{"n": 1024, "start": 0, "hops": 64})
	rep := NewDegradationReport(results)
	if len(rep.Tasks) != 2 || rep.Tasks[0].Task != "chase" || rep.Tasks[1].Task != "triad" {
		t.Fatalf("report not sorted by task: %+v", rep.Tasks)
	}
	if rep.Faulted() {
		t.Error("healthy module reported as faulted")
	}
	out := rep.String()
	for _, want := range []string{"task", "strategy", "chase", "skeleton", "triad", "affine", "degraded"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	// With an injected rung fault, the report flags the module.
	testRungHook = func(s Strategy, f *ir.Func) error {
		if s == StrategyAffine && f.Name == "triad" {
			return fault.New(fault.KindVerify, "injected")
		}
		return nil
	}
	defer func() { testRungHook = nil }()
	_, results = genFromSrc(t, src, map[string]int64{"n": 1024, "start": 0, "hops": 64})
	rep = NewDegradationReport(results)
	if !rep.Faulted() {
		t.Error("rung fault not reported")
	}
	if !strings.Contains(rep.String(), "verify") {
		t.Errorf("fault class missing from report:\n%s", rep.String())
	}
}
