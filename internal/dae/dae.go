package dae

import (
	"errors"
	"fmt"

	"dae/internal/analysis"
	"dae/internal/fault"
	"dae/internal/ir"
	"dae/internal/passes"
)

// Strategy identifies how an access version was generated.
type Strategy int

// Strategies.
const (
	// StrategyNone means no access version could be generated; the task
	// runs coupled (CAE).
	StrategyNone Strategy = iota
	// StrategyAffine is the polyhedral path of §5.1.
	StrategyAffine
	// StrategySkeleton is the optimized task-skeleton path of §5.2.
	StrategySkeleton
)

// String returns a readable name.
func (s Strategy) String() string {
	switch s {
	case StrategyAffine:
		return "affine"
	case StrategySkeleton:
		return "skeleton"
	}
	return "none"
}

// Options control access-version generation. The zero value enables the
// paper's default configuration via Defaults.
type Options struct {
	// ParamHints provides representative values for integer task parameters,
	// used to evaluate the NConvUn ≤ NOrig profitability test and numeric
	// nest-merge checks (the paper evaluates Ehrhart polynomials; we count
	// at instantiated parameters).
	ParamHints map[string]int64
	// HullTest enables the NConvUn ≤ NOrig profitability check (§5.1.2).
	HullTest bool
	// HullSlack relaxes the test to NConvUn ≤ HullSlack·NOrig. This is the
	// paper's threshold heuristic ("NConvUn − th ≤ NOrig"): the strict 1.0
	// setting would reject the paper's own Listing 2(b)/3(b) outputs, which
	// prefetch a triangular access class over its full bounding box (for
	// Block-sized triangles the box is < 2× the touched set). 2.0 accepts
	// exactly those cases while still rejecting sparse patterns such as
	// diagonals or large strides.
	HullSlack float64
	// SimplifyCFG drops loop-body conditionals in skeleton access versions
	// (§5.2.2).
	SimplifyCFG bool
	// PrefetchStores also prefetches written locations (off per §5.2.1).
	PrefetchStores bool
	// Dedup removes syntactically duplicate prefetches (§5.2.1).
	Dedup bool
	// MergeTol merges two per-class loop nests when their per-dimension
	// iteration counts differ by at most this much (the paper's relaxation
	// of the "same number of iterations" rule; its Listing 2(b) merges a
	// (Block−1)-trip triangular class with a Block-trip class). The merged
	// nest iterates the larger extent.
	MergeTol int64
	// CacheLineStride, when > 1, strides the innermost generated affine loop
	// by that many elements (the per-cache-line prefetch of §5.2.3).
	CacheLineStride int
	// ForceSkeleton disables the affine path (ablation).
	ForceSkeleton bool
	// MultiVersion additionally emits the full-CFG skeleton variant
	// (Result.AccessFull) when CFG simplification dropped conditionals, so
	// SelectAccessVariant can pick per task type by profiling — the
	// "multiple statically generated access versions" direction of §5.2.2.
	MultiVersion bool
}

// Defaults returns the configuration used in the paper's evaluation.
func Defaults() Options {
	return Options{
		HullTest:    true,
		HullSlack:   2.0,
		SimplifyCFG: true,
		Dedup:       true,
		MergeTol:    1,
	}
}

// Rejection records why one rung of the per-task degradation ladder
// (affine → skeleton → coupled) was not used.
type Rejection struct {
	// Strategy is the rejected rung.
	Strategy Strategy
	// Err explains the rejection. Expected analysis decisions (non-affine
	// loops, a failed profitability test, unsupported constructs) are
	// fault.KindDegraded; real faults — a codegen error, an impure generated
	// function, a recovered panic — keep their own kinds.
	Err error
}

// Faulted reports whether the rung fell to a real fault rather than an
// expected analysis decision.
func (r Rejection) Faulted() bool { return !errors.Is(r.Err, fault.ErrDegraded) }

// classifyRejection wraps plain errors as expected-decision rejections and
// leaves already-typed faults (verify, panic, ...) alone.
func classifyRejection(err error) error {
	var fe *fault.Error
	if errors.As(err, &fe) {
		return err
	}
	return fault.Wrap(fault.KindDegraded, err)
}

// testRungHook, when non-nil, runs inside each generation rung with the
// strategy under attempt; a non-nil return (or a panic) faults that rung so
// tests can exercise the ladder. Production code leaves it nil.
var testRungHook func(Strategy, *ir.Func) error

// Result describes the generated access version of one task.
type Result struct {
	// Task is the original task (the execute version).
	Task *ir.Func
	// Access is the generated access version; nil when Strategy is
	// StrategyNone.
	Access *ir.Func
	// AccessFull is the unsimplified skeleton variant (conditionals kept),
	// present only with Options.MultiVersion when it differs from Access.
	AccessFull *ir.Func
	// Strategy records which generation path was used.
	Strategy Strategy
	// Reason explains why the affine path was not used (or why no access
	// version exists at all).
	Reason string
	// Rejections records, rung by rung, why higher ladder strategies were
	// not used; empty when the affine path succeeded.
	Rejections []Rejection

	// TotalLoops and AffineLoops report the Table 1 loop classification.
	TotalLoops  int
	AffineLoops int
	// Classes and MergedNests describe the affine generation (§5.1.2).
	Classes     int
	MergedNests int
	// NConvUn and NOrig are the profitability counts at ParamHints
	// (0 when not evaluated).
	NConvUn int64
	NOrig   int64
}

// Generate builds the access version of task f. f must already be optimized
// (passes.Optimize); GenerateModule handles that for whole modules.
func Generate(f *ir.Func, opts Options) (*Result, error) {
	if !f.IsTask {
		return nil, fmt.Errorf("dae: @%s is not a task", f.Name)
	}
	res := &Result{Task: f, Strategy: StrategyNone}

	var info *affineInfo
	reason := "affine path disabled"
	if !opts.ForceSkeleton {
		info, reason = analyzeAffine(f, opts)
		if info != nil {
			res.TotalLoops = info.totalLoops
			res.AffineLoops = info.affineLoops
		}
	}

	if reason == "" {
		hints, haveHints := hintVector(info.sp, opts.ParamHints)
		ok := true
		if opts.HullTest {
			if !haveHints {
				ok = false
				reason = "hull profitability test requires parameter hints"
			} else {
				var nconv, norig int64
				for _, cl := range info.classes {
					nc, no, okc := classCounts(cl, hints)
					if !okc {
						ok = false
						reason = "unbounded class prevents counting"
						break
					}
					nconv += nc
					norig += no
				}
				res.NConvUn, res.NOrig = nconv, norig
				slack := opts.HullSlack
				if slack <= 0 {
					slack = 1.0
				}
				if ok && float64(nconv) > slack*float64(norig) {
					ok = false
					reason = fmt.Sprintf("hull too wide: NConvUn=%d > %.2g·NOrig=%d", nconv, slack, norig)
				}
			}
		}
		if ok {
			groups := mergeClasses(info, hints, haveHints, opts.MergeTol)
			// The affine rung is guarded: a codegen fault (error, impure
			// result, or panic) rejects the rung and the ladder descends to
			// the skeleton path instead of failing the whole compilation.
			af, aerr := func() (af *ir.Func, err error) {
				defer fault.Recover(&err, "affine-access-gen")
				if testRungHook != nil {
					if herr := testRungHook(StrategyAffine, f); herr != nil {
						return nil, herr
					}
				}
				af, err = generateAffineAccess(f, info, groups, opts)
				if err != nil {
					return nil, err
				}
				passes.CleanupOnly(af)
				if err := verifyAccessPure(af); err != nil {
					return nil, err
				}
				return af, nil
			}()
			if aerr == nil {
				res.Access = af
				res.Strategy = StrategyAffine
				res.Classes = len(info.classes)
				res.MergedNests = len(groups)
				res.AffineLoops = res.TotalLoops // the whole task is affine
				return res, nil
			}
			res.Rejections = append(res.Rejections, Rejection{StrategyAffine, classifyRejection(aerr)})
			reason = fmt.Sprintf("affine generation faulted (%s)", fault.ClassOf(aerr))
		}
	}
	if len(res.Rejections) == 0 {
		res.Rejections = append(res.Rejections,
			Rejection{StrategyAffine, fault.New(fault.KindDegraded, "%s", reason)})
	}
	res.Reason = reason

	// The skeleton rung is guarded the same way; when it too is rejected the
	// task simply runs coupled (the paper's own fallback, §5.2.2 step 5).
	af, serr := func() (af *ir.Func, err error) {
		defer fault.Recover(&err, "skeleton-access-gen")
		if testRungHook != nil {
			if herr := testRungHook(StrategySkeleton, f); herr != nil {
				return nil, herr
			}
		}
		af, err = generateSkeletonAccess(f, opts)
		if err != nil {
			return nil, err
		}
		if err := verifyAccessPure(af); err != nil {
			return nil, err
		}
		return af, nil
	}()
	if serr != nil {
		res.Rejections = append(res.Rejections, Rejection{StrategySkeleton, classifyRejection(serr)})
		res.Reason = serr.Error()
		return res, nil
	}
	res.Access = af
	res.Strategy = StrategySkeleton
	if opts.MultiVersion && opts.SimplifyCFG {
		fullOpts := opts
		fullOpts.SimplifyCFG = false
		if full, err := generateSkeletonAccess(f, fullOpts); err == nil && full.NumInstrs() != af.NumInstrs() {
			// An impure full variant is dropped rather than fatal: the
			// simplified (verified) variant already serves the task.
			if err := verifyAccessPure(full); err == nil {
				full.Name = f.Name + "_access_full"
				res.AccessFull = full
			}
		}
	}
	// Table 1's "# affine loops" counts loops handled by the polyhedral
	// approach; a skeleton task contributes none, even if some of its loops
	// have affine induction variables.
	res.AffineLoops = 0
	if res.TotalLoops == 0 {
		// Count loops for reporting even when the affine analysis bailed
		// before classifying.
		dt := ir.NewDomTree(f)
		res.TotalLoops = len(ir.FindLoops(f, dt).AllLoops())
	}
	return res, nil
}

// verifyAccessPure runs the static purity verifier over a freshly generated
// access version — the post-condition of both generation strategies. A
// violation means a compiler bug (a retained external store or call would
// make the decoupled run observably different from the coupled one), so it
// surfaces as a typed fault.ErrVerify error rather than a diagnostic the
// caller might ignore.
func verifyAccessPure(af *ir.Func) error {
	diags := analysis.VerifyAccessPurity(af)
	if !analysis.HasErrors(diags) {
		return nil
	}
	first := diags[0]
	fe := fault.New(fault.KindVerify, "generated access version is impure: %s", first.Msg)
	fe.Func = af.Name
	if first.Pos.IsValid() {
		fe.Pos = first.Pos.String()
	}
	return fe
}

// GenerateModule optimizes every function, generates access versions for all
// tasks, adds them to the module as "<task>_access", and returns the results
// keyed by task name.
func GenerateModule(m *ir.Module, opts Options) (map[string]*Result, error) {
	if _, err := passes.OptimizeModule(m); err != nil {
		return nil, err
	}
	out := make(map[string]*Result)
	for _, f := range m.Tasks() {
		res, err := Generate(f, opts)
		if err != nil {
			return nil, err
		}
		out[f.Name] = res
		if res.Access != nil {
			// Replace any stale access version (e.g. when regenerating a
			// module that came back through the IR parser).
			m.RemoveFunc(res.Access.Name)
			m.AddFunc(res.Access)
		}
		if res.AccessFull != nil {
			m.RemoveFunc(res.AccessFull.Name)
			m.AddFunc(res.AccessFull)
		}
	}
	return out, nil
}
