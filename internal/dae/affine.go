package dae

import (
	"fmt"
	"sort"
	"strings"

	"dae/internal/ir"
	"dae/internal/poly"
	"dae/internal/scev"
)

// access is one analyzed memory access of the task.
type access struct {
	instr   ir.Instr // the load or store
	gep     *ir.GEP
	base    *ir.Param
	isStore bool

	// dom is the iteration domain over this access's trip counters.
	dom *poly.Polyhedron
	// amap maps trip counters to index-space (one row per GEP dimension).
	amap *poly.AffineMap
	// offsets is the per-dimension symbolic (IV-free) part of each index,
	// used to split accesses into classes (§5.1.2, trade-off 3).
	offsets []scev.Affine
	// amapRowsPending holds the per-dimension index expressions between the
	// two analysis phases (the symbol space must be complete before the rows
	// can be rendered as fixed-width vectors).
	amapRowsPending []kAffine
}

// accessClass groups accesses to the same array with the same symbolic
// offsets; the class is prefetched by one loop nest over its bounding box.
type accessClass struct {
	base     *ir.Param
	rank     int
	accesses []*access
	// bounds[d] holds, per access, the FM-derived lower/upper bound lists of
	// index dimension d.
	bounds []classDimBounds
}

type classDimBounds struct {
	lowers [][]poly.Bound // per access
	uppers [][]poly.Bound
}

// affineInfo is the result of classifying a task for the affine strategy.
type affineInfo struct {
	sp      *space
	classes []*accessClass
	// repGEP supplies the Dims operands for address generation per class.
	repGEP map[*accessClass]*ir.GEP

	totalLoops  int
	affineLoops int
}

// analyzeAffine checks whether f is a pure affine loop nest and builds the
// polyhedral description of its (read) accesses. A nil result with reason
// means the affine strategy does not apply.
func analyzeAffine(f *ir.Func, opts Options) (*affineInfo, string) {
	an := scev.Analyze(f)
	total := len(an.Loops.AllLoops())
	info := &affineInfo{sp: newSpace(), repGEP: make(map[*accessClass]*ir.GEP), totalLoops: total}

	// Count affine loops for reporting (Table 1): loops with a well-formed
	// IV whose bounds are affine.
	for _, l := range an.Loops.AllLoops() {
		if iv := an.IVFor(l); iv != nil && iv.WellFormed() {
			info.affineLoops++
		}
	}

	// Structural check: every conditional branch must be a loop-header exit.
	for _, b := range f.Blocks {
		if _, ok := b.Term().(*ir.CondBr); !ok {
			continue
		}
		l := an.Loops.ByHeader[b]
		if l == nil {
			return info, "data-dependent control flow (conditional outside loop header)"
		}
		if iv := an.IVFor(l); iv == nil || !iv.WellFormed() {
			return info, fmt.Sprintf("loop at %%%s has no affine induction variable", b.Name)
		}
	}

	// No calls may remain.
	var reason string
	f.Instrs(func(in ir.Instr) {
		if _, ok := in.(*ir.Call); ok && reason == "" {
			reason = "task contains calls that were not inlined"
		}
	})
	if reason != "" {
		return info, reason
	}

	// Analyze every memory access.
	var accesses []*access
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			var gep *ir.GEP
			isStore := false
			switch x := in.(type) {
			case *ir.Load:
				g, ok := x.Ptr.(*ir.GEP)
				if !ok {
					return info, "load through a non-GEP pointer"
				}
				gep = g
			case *ir.Store:
				g, ok := x.Ptr.(*ir.GEP)
				if !ok {
					return info, "store through a non-GEP pointer"
				}
				gep = g
				isStore = true
			default:
				continue
			}
			base, ok := gep.Base.(*ir.Param)
			if !ok {
				return info, "access whose base is not a task parameter"
			}

			ivs, ok := an.LoopNestOf(b)
			if !ok {
				return info, fmt.Sprintf("access in %%%s is not enclosed in a well-formed nest", b.Name)
			}
			dom, sub, err := nestDomain(ivs, info.sp)
			if err != nil {
				return info, err.Error()
			}

			idxAff := make([]kAffine, len(gep.Idx))
			offsets := make([]scev.Affine, len(gep.Idx))
			for d, iv := range gep.Idx {
				a, okAff := an.AffineOf(iv)
				if !okAff {
					return info, fmt.Sprintf("non-affine subscript in %%%s", b.Name)
				}
				ka, err := sub.substAffine(a)
				if err != nil {
					return info, err.Error()
				}
				idxAff[d] = ka
				offsets[d] = a.SymbolPart()
			}
			acc := &access{
				instr: in, gep: gep, base: base, isStore: isStore,
				dom: dom, offsets: offsets,
			}
			// Defer building amap rows until the symbol space is complete.
			acc.amapRowsPending = idxAff
			accesses = append(accesses, acc)
		}
	}
	if len(accesses) == 0 {
		return info, "task performs no memory accesses"
	}

	// The symbol space is now complete; materialize maps and pad domains.
	npar := info.sp.nPar()
	for _, acc := range accesses {
		nk := acc.dom.NVar
		acc.dom = padParams(acc.dom, npar)
		rows := make([][]int64, len(acc.amapRowsPending))
		for d, ka := range acc.amapRowsPending {
			rows[d] = ka.vec(nk, npar)
		}
		acc.amap = &poly.AffineMap{NVar: nk, NPar: npar, Rows: rows}
	}

	// Group reads into classes (stores optionally included).
	classKey := func(a *access) string {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%s/%d", a.base.Nam, len(a.offsets))
		for _, off := range a.offsets {
			fmt.Fprintf(&sb, "|%s", off.String())
		}
		return sb.String()
	}
	byKey := make(map[string]*accessClass)
	var order []string
	for _, acc := range accesses {
		if acc.isStore && !opts.PrefetchStores {
			continue
		}
		k := classKey(acc)
		cl := byKey[k]
		if cl == nil {
			cl = &accessClass{base: acc.base, rank: len(acc.offsets)}
			byKey[k] = cl
			order = append(order, k)
			info.repGEP[cl] = acc.gep
		}
		cl.accesses = append(cl.accesses, acc)
	}
	if len(order) == 0 {
		return info, "no prefetchable (read) accesses"
	}
	sort.Strings(order)
	for _, k := range order {
		info.classes = append(info.classes, byKey[k])
	}

	// Per-class, per-dimension symbolic bounds via FM projection of the
	// graph polytope { (k, t) : k ∈ dom, t = index_d(k) }.
	for _, cl := range info.classes {
		cl.bounds = make([]classDimBounds, cl.rank)
		for d := 0; d < cl.rank; d++ {
			for _, acc := range cl.accesses {
				vb, err := indexBounds(acc, d)
				if err != nil {
					return info, err.Error()
				}
				if len(vb.Lower) == 0 || len(vb.Upper) == 0 {
					return info, "unbounded access index"
				}
				for _, bnd := range append(append([]poly.Bound{}, vb.Lower...), vb.Upper...) {
					if bnd.Den != 1 {
						return info, "access bound with non-unit divisor"
					}
				}
				cl.bounds[d].lowers = append(cl.bounds[d].lowers, vb.Lower)
				cl.bounds[d].uppers = append(cl.bounds[d].uppers, vb.Upper)
			}
		}
	}
	return info, ""
}

// padParams widens the polyhedron's parameter dimension to npar.
func padParams(p *poly.Polyhedron, npar int) *poly.Polyhedron {
	if p.NPar == npar {
		return p
	}
	q := poly.NewPolyhedron(p.NVar, npar)
	for _, c := range p.Cons {
		v := make([]int64, p.NVar+npar+1)
		copy(v, c.V[:p.NVar])
		copy(v[p.NVar:], c.V[p.NVar:p.NVar+p.NPar])
		v[len(v)-1] = c.V[len(c.V)-1]
		q.AddConstraint(v)
	}
	return q
}

// indexBounds computes the symbolic bounds of index dimension d of acc over
// its iteration domain: introduce t as an extra variable constrained to equal
// the index expression, then project away the trip counters.
func indexBounds(acc *access, d int) (poly.VarBounds, error) {
	dom := acc.dom
	nk, npar := dom.NVar, dom.NPar
	g := poly.NewPolyhedron(nk+1, npar) // vars: k_0..k_{nk-1}, t
	for _, c := range dom.Cons {
		v := make([]int64, nk+1+npar+1)
		copy(v, c.V[:nk])
		copy(v[nk+1:], c.V[nk:])
		g.AddConstraint(v)
	}
	row := acc.amap.Rows[d]
	// t - index(k) = 0
	eq := make([]int64, nk+1+npar+1)
	for i := 0; i < nk; i++ {
		eq[i] = -row[i]
	}
	eq[nk] = 1
	for j := 0; j < npar; j++ {
		eq[nk+1+j] = -row[nk+j]
	}
	eq[len(eq)-1] = -row[len(row)-1]
	g.AddEquality(eq)
	return g.BoundsOfVar(nk), nil
}

// classCounts evaluates NConvUn (bounding-box cells) and NOrig (exact
// distinct touched cells) for a class at the given parameter values.
func classCounts(cl *accessClass, params []int64) (nconv, norig int64, ok bool) {
	nconv = 1
	for d := 0; d < cl.rank; d++ {
		lo, hi, okd := classDimRange(cl, d, params)
		if !okd {
			return 0, 0, false
		}
		ext := hi - lo + 1
		if ext < 0 {
			ext = 0
		}
		nconv *= ext
	}
	doms := make([]*poly.Polyhedron, len(cl.accesses))
	maps := make([]*poly.AffineMap, len(cl.accesses))
	for i, acc := range cl.accesses {
		doms[i] = acc.dom
		maps[i] = acc.amap
	}
	norig = poly.CountDistinctImages(doms, maps, params)
	return nconv, norig, true
}

// classDimRange evaluates the class's index-space range in dimension d:
// [min over accesses of each access's max-lower, max over accesses of each
// access's min-upper].
func classDimRange(cl *accessClass, d int, params []int64) (int64, int64, bool) {
	var lo, hi int64
	for i := range cl.accesses {
		l, ok := (poly.VarBounds{Lower: cl.bounds[d].lowers[i]}).EvalLower(params)
		if !ok {
			return 0, 0, false
		}
		u, ok := (poly.VarBounds{Upper: cl.bounds[d].uppers[i]}).EvalUpper(params)
		if !ok {
			return 0, 0, false
		}
		if i == 0 || l < lo {
			lo = l
		}
		if i == 0 || u > hi {
			hi = u
		}
	}
	return lo, hi, true
}

// hintVector resolves Options.ParamHints against the symbol space. Symbols
// that are parameters use the hint by name; other symbols (entry-block
// computations) are unsupported for counting and make the hull test skip.
func hintVector(sp *space, hints map[string]int64) ([]int64, bool) {
	out := make([]int64, sp.nPar())
	for i, s := range sp.syms {
		p, ok := s.(*ir.Param)
		if !ok {
			return nil, false
		}
		v, ok := hints[p.Nam]
		if !ok {
			return nil, false
		}
		out[i] = v
	}
	return out, true
}
