// Package dae implements the paper's contribution: automatic generation of
// the access phase of a task under the decoupled access-execute model.
//
// Two strategies are implemented, mirroring §5 of the paper:
//
//   - The affine strategy (§5.1) applies when the task is a pure affine loop
//     nest. Using the polyhedral machinery of internal/poly it computes, per
//     access class, the convex union of the touched index-space cells,
//     checks the NConvUn ≤ NOrig profitability condition by exact counting,
//     merges compatible per-class loop nests, and regenerates a minimal-depth
//     prefetch loop nest.
//
//   - The skeleton strategy (§5.2) applies otherwise: it clones the task,
//     marks address computations and loop control through use-def chains,
//     simplifies away loop-body conditionals that do not affect loop control,
//     attaches a prefetch to every read of task-external data, drops stores,
//     and lets the standard cleanups (-O3) shrink the result.
package dae

import (
	"fmt"

	"dae/internal/ir"
	"dae/internal/poly"
	"dae/internal/scev"
)

// space maps scev symbols (loop-invariant ir.Values) to polyhedral parameter
// indices, shared by every access of a task so that classes and bounds are
// expressed over one coherent parameter vector.
type space struct {
	syms  []ir.Value
	index map[ir.Value]int
}

func newSpace() *space {
	return &space{index: make(map[ir.Value]int)}
}

func (s *space) symIndex(v ir.Value) int {
	if i, ok := s.index[v]; ok {
		return i
	}
	i := len(s.syms)
	s.syms = append(s.syms, v)
	s.index[v] = i
	return i
}

// intern registers every symbol of a so later vectors are sized consistently.
func (s *space) intern(a scev.Affine) {
	for v := range a.Sym {
		s.symIndex(v)
	}
}

// nPar returns the current parameter count.
func (s *space) nPar() int { return len(s.syms) }

// kAffine is an affine expression over the trip-counter variables k_0..k_{n-1}
// of one access's loop nest plus the shared symbols: KCoef·k + SymCoef·syms + Const.
type kAffine struct {
	K     []int64
	Sym   map[int]int64 // symbol index → coefficient
	Const int64
}

func newKAffine(nk int) kAffine {
	return kAffine{K: make([]int64, nk), Sym: map[int]int64{}}
}

func (a kAffine) clone() kAffine {
	b := newKAffine(len(a.K))
	copy(b.K, a.K)
	for k, v := range a.Sym {
		b.Sym[k] = v
	}
	b.Const = a.Const
	return b
}

func (a kAffine) add(b kAffine) kAffine {
	c := a.clone()
	for i := range b.K {
		c.K[i] += b.K[i]
	}
	for k, v := range b.Sym {
		c.Sym[k] += v
	}
	c.Const += b.Const
	return c
}

func (a kAffine) scale(k int64) kAffine {
	c := a.clone()
	for i := range c.K {
		c.K[i] *= k
	}
	for s, v := range c.Sym {
		c.Sym[s] = v * k
	}
	c.Const *= k
	return c
}

// vec renders the expression as a constraint-style vector over
// (k_0..k_{nk-1}, syms..., 1).
func (a kAffine) vec(nk, npar int) []int64 {
	v := make([]int64, nk+npar+1)
	copy(v, a.K)
	for s, c := range a.Sym {
		v[nk+s] = c
	}
	v[len(v)-1] = a.Const
	return v
}

// substitution rewrites IV references into trip-counter space.
type substitution struct {
	sp *space
	// ivExpr maps each IV phi to its expression over trip counters.
	ivExpr map[*ir.Phi]kAffine
	nk     int
}

// substAffine converts a scev.Affine into trip-counter space. It fails if
// the expression references an IV outside the substitution (an inner loop's
// IV seen from outside, which cannot happen for well-formed accesses).
func (s *substitution) substAffine(a scev.Affine) (kAffine, error) {
	out := newKAffine(s.nk)
	out.Const = a.Const
	for v, c := range a.Sym {
		out.Sym[s.sp.symIndex(v)] += c
	}
	for phi, c := range a.IV {
		e, ok := s.ivExpr[phi]
		if !ok {
			return kAffine{}, fmt.Errorf("dae: reference to IV %s outside its nest", phi.Ref())
		}
		out = out.add(e.scale(c))
	}
	return out, nil
}

// nestDomain builds, for a loop nest (outermost→innermost IVs), the
// iteration domain polytope over trip counters k_i ≥ 0 and the substitution
// from IV values to trip-counter expressions:
//
//	iv_i = lower_i + step_i · k_i
//
// with the loop-continuation condition translated into a constraint.
func nestDomain(ivs []*scev.IVInfo, sp *space) (*poly.Polyhedron, *substitution, error) {
	nk := len(ivs)
	sub := &substitution{sp: sp, ivExpr: make(map[*ir.Phi]kAffine), nk: nk}

	type pending struct {
		ivVec kAffine
		bound kAffine
		pred  ir.CmpPred
		step  int64
	}
	var rows []pending

	for i, iv := range ivs {
		lower, err := sub.substAffine(iv.Lower)
		if err != nil {
			return nil, nil, err
		}
		// iv = lower + step·k_i
		e := lower.clone()
		e.K[i] += iv.Step
		sub.ivExpr[iv.Phi] = e

		bound, err := sub.substAffine(iv.Bound)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, pending{ivVec: e, bound: bound, pred: iv.Pred, step: iv.Step})
	}

	dom := poly.NewPolyhedron(nk, sp.nPar())
	for i, r := range rows {
		// k_i >= 0
		k0 := newKAffine(nk)
		k0.K[i] = 1
		dom.AddConstraint(k0.vec(nk, sp.nPar()))

		// Continuation condition "iv pred bound" holds for every executed
		// iteration.
		pred := r.pred
		if pred == ir.NE {
			// With a constant step of ±1 the NE condition behaves like a
			// strict inequality in the step direction.
			if r.step > 0 {
				pred = ir.LT
			} else {
				pred = ir.GT
			}
		}
		var con kAffine
		switch pred {
		case ir.LT: // bound - iv - 1 >= 0
			con = r.bound.add(r.ivVec.scale(-1))
			con.Const--
		case ir.LE: // bound - iv >= 0
			con = r.bound.add(r.ivVec.scale(-1))
		case ir.GT: // iv - bound - 1 >= 0
			con = r.ivVec.add(r.bound.scale(-1))
			con.Const--
		case ir.GE: // iv - bound >= 0
			con = r.ivVec.add(r.bound.scale(-1))
		default:
			return nil, nil, fmt.Errorf("dae: unsupported loop predicate %s", r.pred)
		}
		dom.AddConstraint(con.vec(nk, sp.nPar()))
	}
	return dom, sub, nil
}

// importer rebuilds loop-invariant values of the original task inside the
// generated access function (parameters map one-to-one; entry-block
// computations are cloned on demand).
type importer struct {
	src  *ir.Func
	dst  *ir.Func
	bd   *ir.Builder
	memo map[ir.Value]ir.Value
}

func newImporter(src, dst *ir.Func, bd *ir.Builder) *importer {
	im := &importer{src: src, dst: dst, bd: bd, memo: make(map[ir.Value]ir.Value)}
	for i, p := range src.Params {
		im.memo[p] = dst.Params[i]
	}
	return im
}

// value imports v, cloning pure entry-block computations as needed.
func (im *importer) value(v ir.Value) (ir.Value, error) {
	if got, ok := im.memo[v]; ok {
		return got, nil
	}
	switch x := v.(type) {
	case *ir.ConstInt, *ir.ConstFloat, *ir.ConstBool:
		return v, nil
	case *ir.Bin:
		a, err := im.value(x.X)
		if err != nil {
			return nil, err
		}
		b, err := im.value(x.Y)
		if err != nil {
			return nil, err
		}
		nv := im.bd.Bin(x.Op, a, b)
		im.memo[v] = nv
		return nv, nil
	case *ir.Cast:
		a, err := im.value(x.X)
		if err != nil {
			return nil, err
		}
		nv := im.bd.Cast(x.Op, a)
		im.memo[v] = nv
		return nv, nil
	case *ir.Select:
		c, err := im.value(x.Cond)
		if err != nil {
			return nil, err
		}
		a, err := im.value(x.X)
		if err != nil {
			return nil, err
		}
		b, err := im.value(x.Y)
		if err != nil {
			return nil, err
		}
		nv := im.bd.Select(c, a, b)
		im.memo[v] = nv
		return nv, nil
	case *ir.Cmp:
		a, err := im.value(x.X)
		if err != nil {
			return nil, err
		}
		b, err := im.value(x.Y)
		if err != nil {
			return nil, err
		}
		nv := im.bd.Cmp(x.Pred, a, b)
		im.memo[v] = nv
		return nv, nil
	}
	return nil, fmt.Errorf("dae: cannot import value %s into access version", v.Ref())
}
