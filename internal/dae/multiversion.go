package dae

import (
	"fmt"

	"dae/internal/cpu"
	"dae/internal/interp"
	"dae/internal/ir"
	"dae/internal/mem"
)

// The paper's §5.2.2 closing remark proposes keeping conditionals when a
// branch is executed for the majority of iterations, selecting among
// "multiple statically generated access versions" at runtime. This file
// implements that: with Options.MultiVersion the skeleton path emits both
// the simplified-CFG variant (Result.Access) and the full-CFG variant
// (Result.AccessFull), and SelectAccessVariant picks between them by
// profiling representative task instances.

// VariantChoice reports the outcome of profile-based variant selection.
type VariantChoice struct {
	// Chosen is the selected access function.
	Chosen *ir.Func
	// Simplified is true when the simplified-CFG variant won.
	Simplified bool
	// SimplifiedScore and FullScore are the modeled per-profile-run times
	// (access at fAcc plus the following execute at fExe), in seconds.
	SimplifiedScore float64
	FullScore       float64
}

// SelectAccessVariant profiles both skeleton variants of res on the given
// representative argument sets: each variant's access phase runs before a
// cloned-data execution of the task, and the variant with the lower modeled
// total time (access at fAccGHz + execute at fExeGHz) wins. When res has no
// full variant the simplified one wins trivially.
func SelectAccessVariant(res *Result, p cpu.Params, hier mem.HierarchyConfig, fAccGHz, fExeGHz float64, argSets ...[]interp.Value) (VariantChoice, error) {
	if res.Access == nil {
		return VariantChoice{}, fmt.Errorf("dae: task @%s has no access version", res.Task.Name)
	}
	if res.AccessFull == nil {
		return VariantChoice{Chosen: res.Access, Simplified: true}, nil
	}
	if len(argSets) == 0 {
		return VariantChoice{}, fmt.Errorf("dae: variant selection needs representative argument sets")
	}

	score := func(access *ir.Func) (float64, error) {
		mod := ir.NewModule("select")
		prog := interp.NewProgram(mod)
		l3 := mem.NewCache(hier.L3)
		h := mem.NewHierarchy(hier, l3)
		tr := &coreTracerLite{h: h}
		env := interp.NewEnv(prog, tr)
		scratch := interp.NewHeap()
		total := 0.0
		for _, args := range argSets {
			cloned := interp.CloneArgs(scratch, args)

			env.ResetCounts()
			h.ResetStats()
			if _, err := env.Call(access, cloned...); err != nil {
				return 0, fmt.Errorf("dae: profiling access variant: %w", err)
			}
			accWork := cpu.PhaseWork{Counts: env.Counts(), Mem: h.Stats}

			env.ResetCounts()
			h.ResetStats()
			if _, err := env.Call(res.Task, cloned...); err != nil {
				return 0, fmt.Errorf("dae: profiling execute phase: %w", err)
			}
			exeWork := cpu.PhaseWork{Counts: env.Counts(), Mem: h.Stats}

			total += p.Time(accWork, fAccGHz) + p.Time(exeWork, fExeGHz)
		}
		return total, nil
	}

	simp, err := score(res.Access)
	if err != nil {
		return VariantChoice{}, err
	}
	full, err := score(res.AccessFull)
	if err != nil {
		return VariantChoice{}, err
	}
	out := VariantChoice{SimplifiedScore: simp, FullScore: full}
	if full < simp {
		out.Chosen = res.AccessFull
	} else {
		out.Chosen = res.Access
		out.Simplified = true
	}
	return out, nil
}

// coreTracerLite adapts interpreter events onto a hierarchy (local copy to
// avoid importing the runtime package).
type coreTracerLite struct{ h *mem.Hierarchy }

func (t *coreTracerLite) Load(a int64)     { t.h.Access(a, mem.Load) }
func (t *coreTracerLite) Store(a int64)    { t.h.Access(a, mem.Store) }
func (t *coreTracerLite) Prefetch(a int64) { t.h.Access(a, mem.Prefetch) }
