package dae

import "dae/internal/ir"

// postDom computes immediate post-dominators over the reversed CFG with a
// virtual exit joining all return blocks (and, defensively, blocks with no
// successors). It reuses the Cooper–Harvey–Kennedy scheme on reverse
// postorder of the reversed graph.
type postDom struct {
	order  []*ir.Block // reverse postorder of reversed CFG (exits first)
	index  map[*ir.Block]int
	ipdomM map[*ir.Block]*ir.Block
}

func newPostDom(f *ir.Func) *postDom {
	// successors in the reversed graph = predecessors in the original.
	preds := f.Preds()
	var exits []*ir.Block
	for _, b := range f.Blocks {
		if len(b.Succs()) == 0 {
			exits = append(exits, b)
		}
	}

	pd := &postDom{index: map[*ir.Block]int{}, ipdomM: map[*ir.Block]*ir.Block{}}

	// Postorder DFS from the virtual exit (i.e., from each real exit).
	seen := map[*ir.Block]bool{}
	var post []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b] = true
		for _, p := range preds[b] {
			if !seen[p] {
				dfs(p)
			}
		}
		post = append(post, b)
	}
	for _, e := range exits {
		if !seen[e] {
			dfs(e)
		}
	}
	// reverse postorder
	for i := len(post) - 1; i >= 0; i-- {
		pd.order = append(pd.order, post[i])
	}
	for i, b := range pd.order {
		pd.index[b] = i
	}

	// Virtual exit is the parent of every real exit.
	for _, e := range exits {
		pd.ipdomM[e] = e // roots point at themselves (virtual exit elided)
	}
	exitSet := map[*ir.Block]bool{}
	for _, e := range exits {
		exitSet[e] = true
	}

	changed := true
	for changed {
		changed = false
		for _, b := range pd.order {
			if exitSet[b] {
				continue
			}
			var newIdom *ir.Block
			for _, s := range b.Succs() {
				if _, ok := pd.ipdomM[s]; !ok {
					continue
				}
				if newIdom == nil {
					newIdom = s
				} else {
					newIdom = pd.intersect(s, newIdom, exitSet)
					if newIdom == nil {
						break
					}
				}
			}
			if newIdom == nil {
				continue
			}
			if pd.ipdomM[b] != newIdom {
				pd.ipdomM[b] = newIdom
				changed = true
			}
		}
	}
	return pd
}

// intersect walks the two candidates up the post-dominator tree; it returns
// nil when the only common post-dominator is the virtual exit (the two paths
// reach different return blocks).
func (pd *postDom) intersect(a, b *ir.Block, exitSet map[*ir.Block]bool) *ir.Block {
	for a != b {
		for pd.index[a] > pd.index[b] {
			if exitSet[a] {
				return nil
			}
			a = pd.ipdomM[a]
		}
		for pd.index[b] > pd.index[a] {
			if exitSet[b] {
				return nil
			}
			b = pd.ipdomM[b]
		}
		if a != b && exitSet[a] && exitSet[b] {
			return nil
		}
	}
	return a
}

// ipdom returns the immediate post-dominator of b, or nil when b is a return
// block or post-dominated only by the virtual exit.
func (pd *postDom) ipdom(b *ir.Block) *ir.Block {
	p, ok := pd.ipdomM[b]
	if !ok || p == b {
		return nil
	}
	return p
}
