package scev

import (
	"fmt"

	"dae/internal/ir"
)

// IVInfo describes one recognized induction variable: an add-recurrence
// {Lower, +, Step} whose trip range is bounded by the loop-exit comparison
// "iv Pred Bound" (the condition under which the loop continues).
type IVInfo struct {
	Loop *ir.Loop
	Phi  *ir.Phi
	// Step is the constant per-iteration increment (may be negative).
	Step int64
	// Lower is the value of the IV on loop entry.
	Lower Affine
	// Pred and Bound describe the continuation condition: the loop body
	// executes while "iv Pred Bound" holds.
	Pred  ir.CmpPred
	Bound Affine

	boundValue ir.Value
	preheader  *ir.Block
	lowerBad   bool
	boundBad   bool
}

// Analysis holds scalar-evolution results for one function.
type Analysis struct {
	Fn    *ir.Func
	DT    *ir.DomTree
	Loops *ir.LoopInfo
	// IVs maps each analyzable loop to its induction variable.
	IVs map[*ir.Loop]*IVInfo
	// ivOf maps the IV phi back to its info.
	ivOf map[*ir.Phi]*IVInfo

	cache map[ir.Value]*Affine
}

// Analyze builds scalar-evolution information for f. The function should be
// in optimized SSA form (after mem2reg/simplify) for best results.
func Analyze(f *ir.Func) *Analysis {
	dt := ir.NewDomTree(f)
	li := ir.FindLoops(f, dt)
	a := &Analysis{
		Fn: f, DT: dt, Loops: li,
		IVs:   make(map[*ir.Loop]*IVInfo),
		ivOf:  make(map[*ir.Phi]*IVInfo),
		cache: make(map[ir.Value]*Affine),
	}
	for _, l := range li.AllLoops() {
		if iv := a.findIV(l); iv != nil {
			a.IVs[l] = iv
			a.ivOf[iv.Phi] = iv
		}
	}
	// Lower/Bound expressions may reference other IVs; resolve them now that
	// all IV phis are known.
	for _, iv := range a.IVs {
		if lo, ok := a.AffineOf(iv.phiLowerValue()); ok {
			iv.Lower = lo
		} else {
			iv.Lower = Affine{}
			iv.lowerBad = true
		}
		if bd, ok := a.AffineOf(iv.boundValue); ok {
			iv.Bound = bd
		} else {
			iv.Bound = Affine{}
			iv.boundBad = true
		}
	}
	return a
}

// IVFor returns the IV of loop l, or nil.
func (a *Analysis) IVFor(l *ir.Loop) *IVInfo { return a.IVs[l] }

// IVOfPhi returns the IVInfo whose phi is p, or nil.
func (a *Analysis) IVOfPhi(p *ir.Phi) *IVInfo { return a.ivOf[p] }

// WellFormed reports whether the IV's bounds were themselves affine.
func (iv *IVInfo) WellFormed() bool { return !iv.lowerBad && !iv.boundBad }

// findIV recognizes the canonical induction variable of l: a header phi with
// exactly two incomings (preheader and latch), whose latch value is
// phi ± constant, and whose header terminator is a conditional exit
// comparing the phi against a loop-invariant bound.
func (a *Analysis) findIV(l *ir.Loop) *IVInfo {
	header := l.Header
	preds := a.Fn.Preds()[header]
	if len(preds) != 2 {
		return nil
	}
	var pre, latch *ir.Block
	for _, p := range preds {
		if l.Contains(p) {
			latch = p
		} else {
			pre = p
		}
	}
	if pre == nil || latch == nil {
		return nil
	}

	cb, ok := header.Term().(*ir.CondBr)
	if !ok {
		return nil
	}
	cmp, ok := cb.Cond.(*ir.Cmp)
	if !ok {
		return nil
	}
	// The continue edge must be Then and the exit edge Else; the front end
	// produces this shape and the cleanup passes preserve it.
	if !l.Contains(cb.Then) || l.Contains(cb.Else) {
		return nil
	}

	for _, phi := range header.Phis() {
		if !phi.Type().IsInt() {
			continue
		}
		latchVal := phi.Incoming(latch)
		step, ok := stepOf(phi, latchVal)
		if !ok {
			continue
		}
		var boundVal ir.Value
		var pred ir.CmpPred
		if cmp.X == phi {
			boundVal, pred = cmp.Y, cmp.Pred
		} else if cmp.Y == phi {
			boundVal, pred = cmp.X, swapPred(cmp.Pred)
		} else {
			continue
		}
		iv := &IVInfo{
			Loop:       l,
			Phi:        phi,
			Step:       step,
			Pred:       pred,
			boundValue: boundVal,
			preheader:  pre,
		}
		return iv
	}
	return nil
}

func (iv *IVInfo) phiLowerValue() ir.Value { return iv.Phi.Incoming(iv.preheader) }

func stepOf(phi *ir.Phi, latchVal ir.Value) (int64, bool) {
	bin, ok := latchVal.(*ir.Bin)
	if !ok {
		return 0, false
	}
	switch bin.Op {
	case ir.IAdd:
		if bin.X == phi {
			if c, ok := ir.ConstIntValue(bin.Y); ok {
				return c, true
			}
		}
		if bin.Y == phi {
			if c, ok := ir.ConstIntValue(bin.X); ok {
				return c, true
			}
		}
	case ir.ISub:
		if bin.X == phi {
			if c, ok := ir.ConstIntValue(bin.Y); ok {
				return -c, true
			}
		}
	}
	return 0, false
}

func swapPred(p ir.CmpPred) ir.CmpPred {
	switch p {
	case ir.LT:
		return ir.GT
	case ir.LE:
		return ir.GE
	case ir.GT:
		return ir.LT
	case ir.GE:
		return ir.LE
	}
	return p
}

// AffineOf expresses v as an affine function of induction variables and
// loop-invariant symbols. The second result is false when v is not affine
// (loads, float values, products of variables, non-IV phis, ...).
func (a *Analysis) AffineOf(v ir.Value) (Affine, bool) {
	if v == nil {
		return Affine{}, false
	}
	if cached, ok := a.cache[v]; ok {
		if cached == nil {
			return Affine{}, false
		}
		return *cached, true
	}
	a.cache[v] = nil // failure until proven otherwise (also recursion guard)
	res, ok := a.affineOf(v)
	if ok {
		r := res.Clone()
		a.cache[v] = &r
	}
	return res, ok
}

func (a *Analysis) affineOf(v ir.Value) (Affine, bool) {
	switch x := v.(type) {
	case *ir.ConstInt:
		return NewAffine(x.V), true
	case *ir.Param:
		if x.Typ.IsInt() {
			return NewSym(x), true
		}
		return Affine{}, false
	case *ir.Phi:
		if iv := a.ivOf[x]; iv != nil {
			return NewIV(x), true
		}
		return Affine{}, false
	case *ir.Bin:
		switch x.Op {
		case ir.IAdd, ir.ISub:
			l, ok := a.AffineOf(x.X)
			if !ok {
				return Affine{}, false
			}
			r, ok := a.AffineOf(x.Y)
			if !ok {
				return Affine{}, false
			}
			if x.Op == ir.IAdd {
				return l.Add(r), true
			}
			return l.Sub(r), true
		case ir.IMul:
			l, lok := a.AffineOf(x.X)
			r, rok := a.AffineOf(x.Y)
			if !lok || !rok {
				return Affine{}, false
			}
			switch {
			case l.IsConst():
				return r.Scale(l.Const), true
			case r.IsConst():
				return l.Scale(r.Const), true
			case !l.HasIVs() && !r.HasIVs():
				// Product of two loop-invariant symbolic expressions is
				// itself loop-invariant: treat the whole instruction as an
				// opaque symbol.
				return a.opaqueSymbol(x)
			}
			return Affine{}, false
		case ir.IShl:
			l, lok := a.AffineOf(x.X)
			if !lok {
				return Affine{}, false
			}
			if c, ok := ir.ConstIntValue(x.Y); ok && c >= 0 && c < 63 {
				return l.Scale(int64(1) << uint(c)), true
			}
			return Affine{}, false
		default:
			// Division, remainder, bit operations: affine only when loop
			// invariant, in which case we treat the value as opaque.
			return a.opaqueSymbol(x)
		}
	case *ir.Load, *ir.Cast, *ir.Select, *ir.Math, *ir.Call, *ir.GEP:
		if in, ok := v.(ir.Instr); ok {
			return a.opaqueSymbolInstr(in)
		}
	}
	return Affine{}, false
}

// opaqueSymbol treats a loop-invariant instruction as an atomic symbol.
func (a *Analysis) opaqueSymbol(in ir.Instr) (Affine, bool) {
	return a.opaqueSymbolInstr(in)
}

func (a *Analysis) opaqueSymbolInstr(in ir.Instr) (Affine, bool) {
	if _, isLoad := in.(*ir.Load); isLoad {
		// Loads are never symbols: their value can change between
		// iterations (the paper's data-dependent accesses).
		return Affine{}, false
	}
	if !in.Type().IsInt() {
		return Affine{}, false
	}
	if a.Loops.Of[in.Parent()] != nil {
		return Affine{}, false // inside some loop → not invariant in general
	}
	return NewSym(in), true
}

// LoopNestOf returns the stack of IVs for the loops enclosing block b,
// outermost first, or false if any enclosing loop lacks a well-formed IV.
func (a *Analysis) LoopNestOf(b *ir.Block) ([]*IVInfo, bool) {
	var ivs []*IVInfo
	for l := a.Loops.Of[b]; l != nil; l = l.Parent {
		iv := a.IVs[l]
		if iv == nil || !iv.WellFormed() {
			return nil, false
		}
		ivs = append(ivs, iv)
	}
	// reverse to outermost-first
	for i, j := 0, len(ivs)-1; i < j; i, j = i+1, j-1 {
		ivs[i], ivs[j] = ivs[j], ivs[i]
	}
	return ivs, true
}

// String renders the IV for diagnostics.
func (iv *IVInfo) String() string {
	return fmt.Sprintf("{%s, +, %d} while %s %s %s",
		iv.Lower, iv.Step, ivName(iv.Phi), iv.Pred, iv.Bound)
}
