// Package scev implements a scalar-evolution analysis in the role LLVM's
// ScalarEvolution pass plays in the paper: it recognizes loop induction
// variables as add-recurrences, expresses values as affine functions of the
// induction variables and loop-invariant symbols (task parameters and values
// computed before the loop nest), and classifies each memory access of a
// task as affine or not. The DAE pass uses this to choose between the
// polyhedral strategy (§5.1) and the task-skeleton strategy (§5.2).
package scev

import (
	"fmt"
	"sort"
	"strings"

	"dae/internal/ir"
)

// Affine is an affine expression: Const + Σ IV[phi]·phi + Σ Sym[v]·v, where
// the phis are recognized induction variables and the symbols are
// loop-invariant IR values.
type Affine struct {
	Const int64
	IV    map[*ir.Phi]int64
	Sym   map[ir.Value]int64
}

// NewAffine returns the constant affine expression c.
func NewAffine(c int64) Affine {
	return Affine{Const: c, IV: map[*ir.Phi]int64{}, Sym: map[ir.Value]int64{}}
}

// NewSym returns the affine expression 1·v.
func NewSym(v ir.Value) Affine {
	a := NewAffine(0)
	a.Sym[v] = 1
	return a
}

// NewIV returns the affine expression 1·phi.
func NewIV(phi *ir.Phi) Affine {
	a := NewAffine(0)
	a.IV[phi] = 1
	return a
}

// Clone returns a deep copy.
func (a Affine) Clone() Affine {
	b := NewAffine(a.Const)
	for k, v := range a.IV {
		b.IV[k] = v
	}
	for k, v := range a.Sym {
		b.Sym[k] = v
	}
	return b
}

// Add returns a + b.
func (a Affine) Add(b Affine) Affine {
	c := a.Clone()
	c.Const += b.Const
	for k, v := range b.IV {
		c.IV[k] += v
		if c.IV[k] == 0 {
			delete(c.IV, k)
		}
	}
	for k, v := range b.Sym {
		c.Sym[k] += v
		if c.Sym[k] == 0 {
			delete(c.Sym, k)
		}
	}
	return c
}

// Sub returns a - b.
func (a Affine) Sub(b Affine) Affine { return a.Add(b.Scale(-1)) }

// Scale returns k·a.
func (a Affine) Scale(k int64) Affine {
	c := NewAffine(a.Const * k)
	if k == 0 {
		return c
	}
	for p, v := range a.IV {
		c.IV[p] = v * k
	}
	for s, v := range a.Sym {
		c.Sym[s] = v * k
	}
	return c
}

// IsConst reports whether a has no IV or symbol terms.
func (a Affine) IsConst() bool { return len(a.IV) == 0 && len(a.Sym) == 0 }

// HasIVs reports whether a references any induction variable.
func (a Affine) HasIVs() bool { return len(a.IV) > 0 }

// IVCoeff returns the coefficient of phi.
func (a Affine) IVCoeff(phi *ir.Phi) int64 { return a.IV[phi] }

// DropIVs returns a with all IV terms removed (the symbolic offset part).
func (a Affine) DropIVs() Affine {
	c := a.Clone()
	c.IV = map[*ir.Phi]int64{}
	return c
}

// SymbolPart returns a with IV terms and the constant removed — the purely
// symbolic component that defines an access class (§5.1.2: accesses that
// differ only by constants or induction variables scan the same region, up
// to a shift, and share one prefetch nest).
func (a Affine) SymbolPart() Affine {
	c := a.DropIVs()
	c.Const = 0
	return c
}

// Equal reports structural equality.
func (a Affine) Equal(b Affine) bool {
	if a.Const != b.Const || len(a.IV) != len(b.IV) || len(a.Sym) != len(b.Sym) {
		return false
	}
	for k, v := range a.IV {
		if b.IV[k] != v {
			return false
		}
	}
	for k, v := range a.Sym {
		if b.Sym[k] != v {
			return false
		}
	}
	return true
}

// String renders the expression deterministically (sorted by operand name).
func (a Affine) String() string {
	var parts []string
	var ivs []*ir.Phi
	for p := range a.IV {
		ivs = append(ivs, p)
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Ref() < ivs[j].Ref() })
	for _, p := range ivs {
		parts = append(parts, coefStr(a.IV[p], ivName(p)))
	}
	var syms []ir.Value
	for s := range a.Sym {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].Ref() < syms[j].Ref() })
	for _, s := range syms {
		parts = append(parts, coefStr(a.Sym[s], s.Ref()))
	}
	if a.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", a.Const))
	}
	return strings.Join(parts, " + ")
}

func ivName(p *ir.Phi) string {
	if p.Var != "" {
		return p.Var
	}
	return p.Ref()
}

func coefStr(c int64, name string) string {
	if c == 1 {
		return name
	}
	return fmt.Sprintf("%d*%s", c, name)
}
