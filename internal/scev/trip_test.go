package scev

import (
	"strings"
	"testing"
)

// TestTripOfTable pins the trip-count edge cases the WCEC bound inherits:
// non-unit strides, downward-counting loops, != exits, and the unbounded
// verdicts that must be reported rather than clamped. Each source has a
// single top-level loop; the expectation is checked against TripOf at the
// given environment.
func TestTripOfTable(t *testing.T) {
	cases := []struct {
		name string
		src  string
		env  map[string]int64

		count     int64
		exact     bool
		unbounded bool
		reason    string // substring of the unbounded reason
	}{
		{
			name: "unit stride upward",
			src: `task k(float A[n], int n) {
				for (int i = 0; i < n; i++) { A[i] = 0.0; }
			}`,
			env:   map[string]int64{"n": 17},
			count: 17, exact: true,
		},
		{
			name: "non-unit stride needs ceil division",
			src: `task k(float A[n], int n) {
				for (int i = 0; i < n; i += 3) { A[i] = 0.0; }
			}`,
			env:   map[string]int64{"n": 10},
			count: 4, exact: true, // i = 0,3,6,9
		},
		{
			name: "non-unit stride exact multiple",
			src: `task k(float A[n], int n) {
				for (int i = 0; i < n; i += 3) { A[i] = 0.0; }
			}`,
			env:   map[string]int64{"n": 9},
			count: 3, exact: true, // i = 0,3,6
		},
		{
			name: "inclusive upper bound",
			src: `task k(float A[n], int n) {
				for (int i = 0; i <= n; i += 2) { A[i] = 0.0; }
			}`,
			env:   map[string]int64{"n": 8},
			count: 5, exact: true, // i = 0,2,4,6,8
		},
		{
			name: "downward counting exclusive",
			src: `task k(float A[n], int n) {
				for (int i = n - 1; i > 0; i--) { A[i] = 0.0; }
			}`,
			env:   map[string]int64{"n": 6},
			count: 5, exact: true, // i = 5..1
		},
		{
			name: "downward counting inclusive",
			src: `task k(float A[n], int n) {
				for (int i = n - 1; i >= 0; i--) { A[i] = 0.0; }
			}`,
			env:   map[string]int64{"n": 6},
			count: 6, exact: true, // i = 5..0
		},
		{
			name: "downward with stride two",
			src: `task k(float A[n], int n) {
				for (int i = n; i > 0; i -= 2) { A[i - 1] = 0.0; }
			}`,
			env:   map[string]int64{"n": 7},
			count: 4, exact: true, // i = 7,5,3,1
		},
		{
			name: "negative trip count clamps to zero",
			src: `task k(float A[n], int n) {
				for (int i = 8; i < n; i++) { A[i] = 0.0; }
			}`,
			env:   map[string]int64{"n": 3},
			count: 0, exact: true,
		},
		{
			name: "!= exit landing on the bound",
			src: `task k(float A[n], int n) {
				for (int i = 0; i != n; i++) { A[i] = 0.0; }
			}`,
			env:   map[string]int64{"n": 12},
			count: 12, exact: true,
		},
		{
			name: "!= exit with stride dividing the distance",
			src: `task k(float A[n], int n) {
				for (int i = 0; i != n; i += 4) { A[i] = 0.0; }
			}`,
			env:   map[string]int64{"n": 12},
			count: 3, exact: true, // i = 0,4,8
		},
		{
			name: "!= exit downward",
			src: `task k(float A[n], int n) {
				for (int i = n; i != 0; i -= 3) { A[i - 1] = 0.0; }
			}`,
			env:   map[string]int64{"n": 9},
			count: 3, exact: true, // i = 9,6,3
		},
		{
			name: "!= exit stride steps over the bound",
			src: `task k(float A[n], int n) {
				for (int i = 0; i != n; i += 4) { A[i & 7] = 0.0; }
			}`,
			env:       map[string]int64{"n": 10},
			unbounded: true, reason: "never lands on the bound",
		},
		{
			name: "!= exit starting past the bound",
			src: `task k(float A[n], int n) {
				for (int i = 8; i != n; i++) { A[i & 7] = 0.0; }
			}`,
			env:       map[string]int64{"n": 3},
			unbounded: true, reason: "starting past the bound",
		},
		{
			name: "!= exit already at the bound",
			src: `task k(float A[n], int n) {
				for (int i = 4; i != n; i++) { A[i & 7] = 0.0; }
			}`,
			env:   map[string]int64{"n": 4},
			count: 0, exact: true,
		},
		{
			name: "step moves away from the bound",
			src: `task k(float A[n], int n) {
				for (int i = 0; i < n; i -= 1) { A[i & 7] = 0.0; }
			}`,
			env:       map[string]int64{"n": 5},
			unbounded: true, reason: "moves away",
		},
		{
			name: "unknown parameter leaves the bound unevaluable",
			src: `task k(float A[n], int n) {
				for (int i = 0; i < n; i++) { A[i] = 0.0; }
			}`,
			env:       map[string]int64{},
			unbounded: true, reason: "not evaluable",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, f := analyzeTask(t, tc.src, "k")
			if len(a.Loops.Top) != 1 {
				t.Fatalf("top-level loops = %d, want 1:\n%s", len(a.Loops.Top), f)
			}
			tr := a.TripOf(a.Loops.Top[0], tc.env)
			if tr.Unbounded != tc.unbounded {
				t.Fatalf("unbounded = %v (reason %q), want %v", tr.Unbounded, tr.Reason, tc.unbounded)
			}
			if tc.unbounded {
				if !strings.Contains(tr.Reason, tc.reason) {
					t.Errorf("reason = %q, want substring %q", tr.Reason, tc.reason)
				}
				return
			}
			if tr.Count != tc.count {
				t.Errorf("count = %d, want %d", tr.Count, tc.count)
			}
			if tr.Exact != tc.exact {
				t.Errorf("exact = %v, want %v", tr.Exact, tc.exact)
			}
		})
	}
}

// TestTripOfTriangular checks interval evaluation of inner bounds that
// reference outer IVs: the inner count is a valid bound for every outer
// iteration, exact only when the dependence vanishes.
func TestTripOfTriangular(t *testing.T) {
	a, f := analyzeTask(t, `
task lu(float A[N][N], int N) {
	for (int i = 0; i < N; i++) {
		for (int j = i + 1; j < N; j++) {
			A[i][j] = 0.0;
		}
	}
}`, "lu")
	env := map[string]int64{"N": 8}
	outer := a.Loops.Top[0]
	tr := a.TripOf(outer, env)
	if tr.Unbounded || tr.Count != 8 || !tr.Exact {
		t.Fatalf("outer trip = %+v, want exact 8 (%s)", tr, f)
	}
	inner := outer.Children[0]
	itr := a.TripOf(inner, env)
	if itr.Unbounded {
		t.Fatalf("inner trip unbounded: %s", itr.Reason)
	}
	// j runs from i+1 to N-1: the worst case (i=0) is N-1 = 7 iterations,
	// and the dependence on i makes the per-entry count inexact.
	if itr.Count != 7 {
		t.Errorf("inner count = %d, want 7", itr.Count)
	}
	if itr.Exact {
		t.Error("inner count must not claim exactness (depends on outer IV)")
	}
}

// TestTripOfNoIV: a loop whose exit condition is data-dependent has no
// recognized IV and must report unbounded with the canonical reason.
func TestTripOfNoIV(t *testing.T) {
	a, _ := analyzeTask(t, `
task k(float A[n], int n) {
	int i = 0;
	while (A[i & 255] < 10.0) {
		A[i & 255] = A[i & 255] + 1.0;
		i = i + 1;
	}
}`, "k")
	if len(a.Loops.Top) != 1 {
		t.Skip("front end restructured the while loop")
	}
	tr := a.TripOf(a.Loops.Top[0], map[string]int64{"n": 256})
	if !tr.Unbounded {
		t.Fatalf("data-dependent loop must be unbounded, got count %d", tr.Count)
	}
}

// TestEvalInt covers the exported concrete evaluator directly.
func TestEvalInt(t *testing.T) {
	a, f := analyzeTask(t, `
task k(float A[n], int n, int b) {
	int lim = n / 2 + b * 3 - 1;
	for (int i = 0; i < lim; i++) { A[i] = 0.0; }
}`, "k")
	env := map[string]int64{"n": 10, "b": 4}
	iv := a.IVFor(a.Loops.Top[0])
	if iv == nil {
		t.Fatalf("no IV:\n%s", f)
	}
	tr := a.TripOf(a.Loops.Top[0], env)
	if tr.Unbounded || tr.Count != 16 { // 10/2 + 12 - 1
		t.Fatalf("trip = %+v, want 16", tr)
	}
	if _, ok := EvalInt(nil, env); ok {
		t.Error("EvalInt(nil) must fail")
	}
}
