package scev

import (
	"fmt"

	"dae/internal/ir"
)

// This file derives loop trip-count bounds from the recognized induction
// variables — the foundation of the WCEC cost analysis (internal/analysis/
// wcec). Every formula here is a *maximum* over the interval ranges of the
// IV's lower and upper expressions at concrete parameter values, so a
// returned count is an upper bound on the iterations of any single entry of
// the loop; it is additionally exact when both range endpoints are single
// points (rectangular bounds or fully concrete triangular corners).

// Trip is the trip-count verdict for one loop at concrete parameters.
type Trip struct {
	// Count bounds the iterations of one entry of the loop (valid only when
	// !Unbounded; always >= 0).
	Count int64
	// Exact reports that Count is the precise iteration count of every entry,
	// not just an upper bound.
	Exact bool
	// Unbounded is set when no finite static bound exists; Reason says why.
	Unbounded bool
	Reason    string
}

// TripOf bounds the iterations of one entry of loop l given concrete integer
// parameter values. It handles the shapes the front end produces plus the
// edge cases the WCEC bound inherits: non-unit strides (ceil division),
// downward-counting loops (gt/ge continuation with negative step), and
// != exit conditions (bounded only when the stride provably lands on the
// bound; a stride that steps over the bound wraps around and is reported
// Unbounded rather than silently clamped).
func (a *Analysis) TripOf(l *ir.Loop, env map[string]int64) Trip {
	return a.tripOf(l, env, make(map[*ir.Loop]bool))
}

func unbounded(format string, args ...any) Trip {
	return Trip{Unbounded: true, Reason: fmt.Sprintf(format, args...)}
}

func (a *Analysis) tripOf(l *ir.Loop, env map[string]int64, visiting map[*ir.Loop]bool) Trip {
	iv := a.IVs[l]
	if iv == nil {
		return unbounded("no recognized induction variable")
	}
	if !iv.WellFormed() {
		return unbounded("loop bounds are not affine")
	}
	if iv.Step == 0 {
		return unbounded("zero-step induction variable")
	}
	if visiting[l] {
		return unbounded("cyclic bound dependence")
	}
	visiting[l] = true
	defer delete(visiting, l)

	llo, lhi, ok := a.rangeOf(iv.Lower, env, visiting)
	if !ok {
		return unbounded("initial value %s not evaluable at these parameters", iv.Lower)
	}
	blo, bhi, ok := a.rangeOf(iv.Bound, env, visiting)
	if !ok {
		return unbounded("bound %s not evaluable at these parameters", iv.Bound)
	}
	exact := llo == lhi && blo == bhi
	s := iv.Step

	clamp := func(n int64) Trip {
		if n < 0 {
			n = 0
		}
		return Trip{Count: n, Exact: exact}
	}
	switch iv.Pred {
	case ir.LT:
		if s < 0 {
			return unbounded("negative step with ascending bound (iv moves away from exit)")
		}
		return clamp(ceilDiv(bhi-llo, s))
	case ir.LE:
		if s < 0 {
			return unbounded("negative step with ascending bound (iv moves away from exit)")
		}
		return clamp(floorDiv(bhi-llo, s) + 1)
	case ir.GT:
		if s > 0 {
			return unbounded("positive step with descending bound (iv moves away from exit)")
		}
		return clamp(ceilDiv(lhi-blo, -s))
	case ir.GE:
		if s > 0 {
			return unbounded("positive step with descending bound (iv moves away from exit)")
		}
		return clamp(floorDiv(lhi-blo, -s) + 1)
	case ir.NE:
		// The body runs while iv != bound: finite only when the stride
		// provably lands on the bound, which needs point-interval endpoints.
		if !exact {
			return unbounded("!= exit with interval-valued bounds")
		}
		diff := blo - llo
		if diff == 0 {
			return Trip{Count: 0, Exact: true}
		}
		if (diff > 0) != (s > 0) {
			return unbounded("!= exit with iv starting past the bound")
		}
		if diff%s != 0 {
			return unbounded("!= exit stride %d never lands on the bound (distance %d)", s, diff)
		}
		return Trip{Count: diff / s, Exact: true}
	case ir.EQ:
		// The body runs while iv == bound; a nonzero step leaves the bound
		// after one iteration, so the count is at most 1.
		if lhi < blo || bhi < llo {
			return Trip{Count: 0, Exact: exact}
		}
		return Trip{Count: 1, Exact: exact}
	}
	return unbounded("unsupported exit predicate %s", iv.Pred)
}

// ceilDiv returns ceil(a/b) for b > 0 and non-negative results of interest.
func ceilDiv(a, b int64) int64 {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// floorDiv returns floor(a/b) for b > 0, used only on a >= 0 paths (negative
// numerators are clamped to a zero trip count by the caller).
func floorDiv(a, b int64) int64 {
	if a < 0 {
		return -1 // caller adds 1 -> 0 trips
	}
	return a / b
}

// rangeOf evaluates an affine expression to an interval [lo, hi] at concrete
// parameter values. Symbol terms must evaluate exactly; IV terms of enclosing
// loops contribute the IV's full value range (derived from its own lower
// bound and trip count), which is what makes triangular bounds evaluable —
// conservatively, as an interval.
func (a *Analysis) rangeOf(af Affine, env map[string]int64, visiting map[*ir.Loop]bool) (lo, hi int64, ok bool) {
	lo, hi = af.Const, af.Const
	for sym, co := range af.Sym {
		v, ok := EvalInt(sym, env)
		if !ok {
			return 0, 0, false
		}
		lo += co * v
		hi += co * v
	}
	for phi, co := range af.IV {
		iv := a.ivOf[phi]
		if iv == nil {
			return 0, 0, false
		}
		rlo, rhi, ok := a.ivRange(iv, env, visiting)
		if !ok {
			return 0, 0, false
		}
		if co >= 0 {
			lo += co * rlo
			hi += co * rhi
		} else {
			lo += co * rhi
			hi += co * rlo
		}
	}
	return lo, hi, true
}

// ivRange bounds the values iv takes across all iterations of its loop.
func (a *Analysis) ivRange(iv *IVInfo, env map[string]int64, visiting map[*ir.Loop]bool) (lo, hi int64, ok bool) {
	llo, lhi, ok := a.rangeOf(iv.Lower, env, visiting)
	if !ok {
		return 0, 0, false
	}
	tr := a.tripOf(iv.Loop, env, visiting)
	if tr.Unbounded {
		return 0, 0, false
	}
	last := tr.Count - 1
	if last < 0 {
		last = 0
	}
	if iv.Step > 0 {
		return llo, lhi + last*iv.Step, true
	}
	return llo + last*iv.Step, lhi, true
}

// EvalInt evaluates a loop-invariant integer value at concrete parameter
// values (by parameter name). It covers the shapes the front end produces
// for dimensions and bounds: constants, int parameters, and integer
// arithmetic over them.
func EvalInt(v ir.Value, env map[string]int64) (int64, bool) {
	switch x := v.(type) {
	case *ir.ConstInt:
		return x.V, true
	case *ir.Param:
		if !x.Typ.IsInt() {
			return 0, false
		}
		val, ok := env[x.Nam]
		return val, ok
	case *ir.Bin:
		a, ok := EvalInt(x.X, env)
		if !ok {
			return 0, false
		}
		b, ok := EvalInt(x.Y, env)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case ir.IAdd:
			return a + b, true
		case ir.ISub:
			return a - b, true
		case ir.IMul:
			return a * b, true
		case ir.IDiv:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case ir.IRem:
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case ir.IAnd:
			return a & b, true
		case ir.IOr:
			return a | b, true
		case ir.IXor:
			return a ^ b, true
		case ir.IShl:
			if b < 0 || b > 62 {
				return 0, false
			}
			return a << uint(b), true
		case ir.IShr:
			if b < 0 || b > 62 {
				return 0, false
			}
			return a >> uint(b), true
		case ir.IMin:
			if a < b {
				return a, true
			}
			return b, true
		case ir.IMax:
			if a > b {
				return a, true
			}
			return b, true
		}
	}
	return 0, false
}
