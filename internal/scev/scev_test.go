package scev

import (
	"strings"
	"testing"
	"testing/quick"

	"dae/internal/ir"
	"dae/internal/lower"
	"dae/internal/passes"
)

// analyzeTask compiles src, optimizes, and analyzes the named function.
func analyzeTask(t *testing.T, src, name string) (*Analysis, *ir.Func) {
	t.Helper()
	m, err := lower.Compile(src, "t")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	f := m.Func(name)
	if f == nil {
		t.Fatalf("no function %q", name)
	}
	if _, err := passes.Optimize(f); err != nil {
		t.Fatalf("optimize: %v", err)
	}
	return Analyze(f), f
}

func TestSimpleIV(t *testing.T) {
	a, f := analyzeTask(t, `
task k(float A[n], int n) {
	for (int i = 0; i < n; i++) {
		A[i] = 0.0;
	}
}`, "k")
	if len(a.Loops.Top) != 1 {
		t.Fatalf("loops = %d, want 1", len(a.Loops.Top))
	}
	iv := a.IVFor(a.Loops.Top[0])
	if iv == nil {
		t.Fatalf("no IV found:\n%s", f)
	}
	if iv.Step != 1 {
		t.Errorf("step = %d, want 1", iv.Step)
	}
	if !iv.WellFormed() {
		t.Fatal("IV not well-formed")
	}
	if !iv.Lower.IsConst() || iv.Lower.Const != 0 {
		t.Errorf("lower = %s, want 0", iv.Lower)
	}
	if iv.Pred != ir.LT {
		t.Errorf("pred = %s, want lt", iv.Pred)
	}
	nParam := f.Param("n")
	if iv.Bound.Sym[nParam] != 1 || len(iv.Bound.Sym) != 1 || iv.Bound.Const != 0 {
		t.Errorf("bound = %s, want n", iv.Bound)
	}
}

func TestTriangularNest(t *testing.T) {
	a, f := analyzeTask(t, `
task lu(float A[N][N], int N) {
	for (int i = 0; i < N; i++) {
		for (int j = i+1; j < N; j++) {
			for (int k = i+1; k < N; k++) {
				A[j][k] -= A[j][i] * A[i][k];
			}
		}
	}
}`, "lu")
	all := a.Loops.AllLoops()
	if len(all) != 3 {
		t.Fatalf("loops = %d, want 3:\n%s", len(all), f)
	}
	for _, l := range all {
		iv := a.IVFor(l)
		if iv == nil || !iv.WellFormed() {
			t.Fatalf("loop at %s lacks well-formed IV", l.Header.Name)
		}
	}
	// Inner loops' lower bound must be i+1: affine with coefficient 1 on the
	// outer IV and constant 1.
	outer := a.Loops.Top[0]
	outerIV := a.IVFor(outer)
	inner := outer.Children[0]
	innerIV := a.IVFor(inner)
	if innerIV.Lower.Const != 1 || innerIV.Lower.IV[outerIV.Phi] != 1 {
		t.Errorf("inner lower = %s, want i + 1", innerIV.Lower)
	}
}

func TestAccessFunctionsAffine(t *testing.T) {
	a, f := analyzeTask(t, `
task blk(float A[N][N], int N, int Ax, int Ay) {
	for (int i = 0; i < 16; i++) {
		for (int j = 0; j < 16; j++) {
			A[Ax+i][Ay+j] = 0.0;
		}
	}
}`, "blk")
	var gep *ir.GEP
	f.Instrs(func(in ir.Instr) {
		if g, ok := in.(*ir.GEP); ok {
			gep = g
		}
	})
	if gep == nil {
		t.Fatal("no GEP found")
	}
	idx0, ok0 := a.AffineOf(gep.Idx[0])
	idx1, ok1 := a.AffineOf(gep.Idx[1])
	if !ok0 || !ok1 {
		t.Fatalf("indices not affine:\n%s", f)
	}
	ax := f.Param("Ax")
	ay := f.Param("Ay")
	if idx0.Sym[ax] != 1 || len(idx0.IV) != 1 {
		t.Errorf("idx0 = %s, want Ax + i", idx0)
	}
	if idx1.Sym[ay] != 1 || len(idx1.IV) != 1 {
		t.Errorf("idx1 = %s, want Ay + j", idx1)
	}
}

func TestNonAffineIndirection(t *testing.T) {
	a, f := analyzeTask(t, `
task gather(float X[n], int Ind[n], int n) {
	for (int i = 0; i < n; i++) {
		X[Ind[i]] = 0.0;
	}
}`, "gather")
	var geps []*ir.GEP
	f.Instrs(func(in ir.Instr) {
		if g, ok := in.(*ir.GEP); ok {
			geps = append(geps, g)
		}
	})
	affineCount := 0
	for _, g := range geps {
		if _, ok := a.AffineOf(g.Idx[0]); ok {
			affineCount++
		}
	}
	// Ind[i] is affine; X[Ind[i]] is not.
	if affineCount != 1 {
		t.Errorf("affine GEPs = %d, want exactly 1 (the Ind[i] access)", affineCount)
	}
}

func TestNonAffineBitReversal(t *testing.T) {
	a, f := analyzeTask(t, `
task bitrev(float X[n], int n, int shift) {
	for (int i = 0; i < n; i++) {
		int r = (i >> shift) | ((i & 255) << 2);
		X[r] = 0.0;
	}
}`, "bitrev")
	var gep *ir.GEP
	f.Instrs(func(in ir.Instr) {
		if g, ok := in.(*ir.GEP); ok {
			gep = g
		}
	})
	if _, ok := a.AffineOf(gep.Idx[0]); ok {
		t.Error("bit-reversal index should not be affine")
	}
}

func TestStrideTwoAndDownCounting(t *testing.T) {
	a, _ := analyzeTask(t, `
task k(float A[n], int n) {
	for (int i = 0; i < n; i += 2) {
		A[i] = 0.0;
	}
	for (int j = n - 1; j >= 0; j--) {
		A[j] = 1.0;
	}
}`, "k")
	if len(a.Loops.Top) != 2 {
		t.Fatalf("loops = %d, want 2", len(a.Loops.Top))
	}
	var steps []int64
	for _, l := range a.Loops.Top {
		iv := a.IVFor(l)
		if iv == nil {
			t.Fatal("missing IV")
		}
		steps = append(steps, iv.Step)
	}
	if !(steps[0] == 2 && steps[1] == -1) && !(steps[0] == -1 && steps[1] == 2) {
		t.Errorf("steps = %v, want {2, -1}", steps)
	}
}

func TestLoopInvariantOpaqueSymbol(t *testing.T) {
	a, f := analyzeTask(t, `
task k(float A[n], int n, int b) {
	int base = n / 2 + b * b;
	for (int i = 0; i < 8; i++) {
		A[base + i] = 0.0;
	}
}`, "k")
	var gep *ir.GEP
	f.Instrs(func(in ir.Instr) {
		if g, ok := in.(*ir.GEP); ok {
			gep = g
		}
	})
	aff, ok := a.AffineOf(gep.Idx[0])
	if !ok {
		t.Fatalf("index should be affine with opaque symbols:\n%s", f)
	}
	if len(aff.IV) != 1 || len(aff.Sym) == 0 {
		t.Errorf("affine = %s, want IV + symbols", aff)
	}
}

func TestLoadNotSymbol(t *testing.T) {
	a, f := analyzeTask(t, `
task k(float A[n], int P[one], int n, int one) {
	for (int i = 0; i < n; i++) {
		A[P[0] + i] = 0.0;
	}
}`, "k")
	// P[0] is loop-invariant in practice, but a load is never treated as a
	// symbol (another core may mutate it; the paper treats data-dependent
	// addresses as non-affine).
	var bad *ir.GEP
	f.Instrs(func(in ir.Instr) {
		g, ok := in.(*ir.GEP)
		if !ok {
			return
		}
		if g.Base == f.Param("A") {
			bad = g
		}
	})
	if _, ok := a.AffineOf(bad.Idx[0]); ok {
		t.Error("load-derived index must not be affine")
	}
}

func TestLoopNestOf(t *testing.T) {
	a, f := analyzeTask(t, `
task k(float A[N][N], int N) {
	for (int i = 0; i < N; i++) {
		for (int j = 0; j < N; j++) {
			A[i][j] = 0.0;
		}
	}
}`, "k")
	var store ir.Instr
	f.Instrs(func(in ir.Instr) {
		if _, ok := in.(*ir.Store); ok {
			store = in
		}
	})
	ivs, ok := a.LoopNestOf(store.Parent())
	if !ok || len(ivs) != 2 {
		t.Fatalf("nest depth = %d (ok=%v), want 2", len(ivs), ok)
	}
	if ivs[0].Loop.Depth() != 1 || ivs[1].Loop.Depth() != 2 {
		t.Error("nest should be outermost-first")
	}
}

func TestAffineAlgebraProperties(t *testing.T) {
	// Affine add/scale behave like the corresponding operations on the
	// evaluation at any symbol assignment.
	sym1 := &ir.Param{Nam: "p", Typ: ir.IntT}
	sym2 := &ir.Param{Nam: "q", Typ: ir.IntT}
	eval := func(a Affine, p, q int64) int64 {
		return a.Const + a.Sym[sym1]*p + a.Sym[sym2]*q
	}
	mk := func(c, cp, cq int64) Affine {
		a := NewAffine(c)
		if cp != 0 {
			a.Sym[sym1] = cp
		}
		if cq != 0 {
			a.Sym[sym2] = cq
		}
		return a
	}
	prop := func(c1, p1, q1, c2, p2, q2 int8, p, q int8, k int8) bool {
		a := mk(int64(c1), int64(p1), int64(q1))
		b := mk(int64(c2), int64(p2), int64(q2))
		pv, qv := int64(p), int64(q)
		if eval(a.Add(b), pv, qv) != eval(a, pv, qv)+eval(b, pv, qv) {
			return false
		}
		if eval(a.Sub(b), pv, qv) != eval(a, pv, qv)-eval(b, pv, qv) {
			return false
		}
		if eval(a.Scale(int64(k)), pv, qv) != int64(k)*eval(a, pv, qv) {
			return false
		}
		if !a.Add(b).Equal(b.Add(a)) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAffineString(t *testing.T) {
	p := &ir.Param{Nam: "N", Typ: ir.IntT}
	a := NewAffine(3).Add(NewSym(p).Scale(2))
	if got := a.String(); got != "2*%N + 3" {
		t.Errorf("String = %q", got)
	}
	if NewAffine(0).String() != "0" {
		t.Error("zero should print 0")
	}
}

func TestIVOfPhiAndString(t *testing.T) {
	a, f := analyzeTask(t, `
task k(float A[n], int n) {
	for (int i = 2; i < n; i += 3) {
		A[i] = 0.0;
	}
}`, "k")
	iv := a.IVFor(a.Loops.Top[0])
	if iv == nil {
		t.Fatalf("no IV:\n%s", f)
	}
	if a.IVOfPhi(iv.Phi) != iv {
		t.Error("IVOfPhi should invert IVFor")
	}
	if a.IVOfPhi(nil) != nil {
		t.Error("IVOfPhi(nil) should be nil")
	}
	s := iv.String()
	if !strings.Contains(s, "+, 3") || !strings.Contains(s, "lt") {
		t.Errorf("IV string %q should carry step and predicate", s)
	}
}

func TestAffineAccessors(t *testing.T) {
	p := &ir.Param{Nam: "N", Typ: ir.IntT}
	phi := ir.NewPhi(ir.IntT, "i")
	a := NewIV(phi).Scale(2).Add(NewSym(p)).Add(NewAffine(5))
	if a.IVCoeff(phi) != 2 {
		t.Errorf("IVCoeff = %d, want 2", a.IVCoeff(phi))
	}
	d := a.DropIVs()
	if d.HasIVs() || d.Sym[p] != 1 || d.Const != 5 {
		t.Errorf("DropIVs = %s", d)
	}
	sp := a.SymbolPart()
	if sp.Const != 0 || sp.Sym[p] != 1 || sp.HasIVs() {
		t.Errorf("SymbolPart = %s", sp)
	}
	// Equality discriminates on each component.
	if a.Equal(d) || !a.Equal(a.Clone()) {
		t.Error("Equal misbehaves")
	}
	b := a.Clone()
	b.Const++
	if a.Equal(b) {
		t.Error("Equal should catch constant difference")
	}
	c := a.Clone()
	c.Sym[p] = 9
	if a.Equal(c) {
		t.Error("Equal should catch symbol coefficient difference")
	}
	e := a.Clone()
	e.IV[phi] = 7
	if a.Equal(e) {
		t.Error("Equal should catch IV coefficient difference")
	}
}

func TestSwappedComparisonOperands(t *testing.T) {
	// "n > i" spells the same loop as "i < n": findIV must normalize via
	// predicate swapping.
	a, f := analyzeTask(t, `
task k(float A[n], int n) {
	for (int i = 0; n > i; i++) {
		A[i] = 0.0;
	}
}`, "k")
	if len(a.Loops.Top) != 1 {
		t.Fatalf("loops = %d:\n%s", len(a.Loops.Top), f)
	}
	iv := a.IVFor(a.Loops.Top[0])
	if iv == nil || !iv.WellFormed() {
		t.Fatalf("swapped comparison not recognized:\n%s", f)
	}
	if iv.Pred != ir.LT {
		t.Errorf("pred = %s, want lt (swapped from gt)", iv.Pred)
	}
}

func TestStepOnLeftOperand(t *testing.T) {
	// i = 2 + i (constant on the left of the latch add).
	a, f := analyzeTask(t, `
task k(float A[n], int n) {
	for (int i = 0; i < n; i = 2 + i) {
		A[i] = 0.0;
	}
}`, "k")
	iv := a.IVFor(a.Loops.Top[0])
	if iv == nil {
		t.Fatalf("no IV:\n%s", f)
	}
	if iv.Step != 2 {
		t.Errorf("step = %d, want 2", iv.Step)
	}
}

func TestShiftScaledIV(t *testing.T) {
	// A[i << 1] is affine with coefficient 2.
	a, f := analyzeTask(t, `
task k(float A[n], int n, int m) {
	for (int i = 0; i < m; i++) {
		A[i << 1] = 0.0;
	}
}`, "k")
	var gep *ir.GEP
	f.Instrs(func(in ir.Instr) {
		if g, ok := in.(*ir.GEP); ok {
			gep = g
		}
	})
	aff, ok := a.AffineOf(gep.Idx[0])
	if !ok {
		t.Fatalf("i<<1 should be affine:\n%s", f)
	}
	iv := a.IVFor(a.Loops.Top[0])
	if aff.IVCoeff(iv.Phi) != 2 {
		t.Errorf("coefficient = %d, want 2 (%s)", aff.IVCoeff(iv.Phi), aff)
	}
}
