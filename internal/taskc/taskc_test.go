package taskc

import (
	"strings"
	"testing"
)

const luSrc = `
// LU inner kernel, Listing 1(a) of the paper.
task lu(float A[N][N], int N) {
	for (int i = 0; i < N; i++) {
		for (int j = i+1; j < N; j++) {
			A[j][i] /= A[i][i];
			for (int k = i+1; k < N; k++) {
				A[j][k] -= A[j][i] * A[i][k];
			}
		}
	}
}
`

func TestParseLU(t *testing.T) {
	f, err := Parse(luSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(f.Funcs) != 1 {
		t.Fatalf("funcs = %d, want 1", len(f.Funcs))
	}
	fd := f.Funcs[0]
	if !fd.IsTask || fd.Name != "lu" {
		t.Errorf("decl = %v %q", fd.IsTask, fd.Name)
	}
	if len(fd.Params) != 2 {
		t.Fatalf("params = %d, want 2", len(fd.Params))
	}
	if !fd.Params[0].IsArray() || len(fd.Params[0].Dims) != 2 {
		t.Errorf("A should be a 2-D array param")
	}
	if fd.Params[1].IsArray() {
		t.Errorf("N should be scalar")
	}
	if _, err := Check(f); err != nil {
		t.Fatalf("check: %v", err)
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	src := `int f(int a, int b, int c) { return a + b * c; }`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ret := f.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	add, ok := ret.X.(*BinExpr)
	if !ok || add.Op != Add {
		t.Fatalf("top op = %T, want + BinExpr", ret.X)
	}
	mul, ok := add.Y.(*BinExpr)
	if !ok || mul.Op != Mul {
		t.Fatalf("rhs = %T, want * BinExpr", add.Y)
	}
}

func TestParseShiftAndBitOps(t *testing.T) {
	src := `int f(int a, int b) { return (a << 2) | (b & 7) ^ (a >> b); }`
	if _, err := Parse(src); err != nil {
		t.Fatalf("parse: %v", err)
	}
}

func TestParseComments(t *testing.T) {
	src := "task t(int n) { /* block\ncomment */ int x = 0; // line\n x = x + n; }"
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := Check(f); err != nil {
		t.Fatalf("check: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"missing paren", `task t(int n { }`, "expected"},
		{"bad char", `task t(int n) { $ }`, "unexpected character"},
		{"unterminated comment", `task t(int n) { /* }`, "unterminated"},
		{"missing semi", `task t(int n) { int x = 1 }`, "expected \";\""},
		{"void var", `task t(int n) { void x; }`, "void"},
		{"prefetch scalar", `task t(int n) { prefetch n; }`, "array element"},
		{"assign to literal", `task t(int n) { 3 = n; }`, "assignable"},
		{"eof in block", `task t(int n) {`, "end of file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatal("expected parse error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"undefined var", `task t(int n) { int x = y; }`, "undefined variable"},
		{"assign to param", `task t(int n) { n = 3; }`, "immutable"},
		{"float dim", `task t(float A[1.5], int n) { A[0] = 0; }`, "array dimension must be int"},
		{"float index2", `task t(int n, float A[n]) { A[1.5] = 0; }`, "index must be int"},
		{"rank mismatch", `task t(int n, float A[n][n]) { A[1] = 0; }`, "dimensions"},
		{"index scalar", `task t(int n) { n[0] = 1; }`, "not an array"},
		{"float to int", `task t(int n) { int x = 1.5; }`, "cannot assign float to int"},
		{"dup func", "task t(int n) { }\ntask t(int n) { }", "duplicate function"},
		{"dup param", `task t(int n, int n) { }`, "duplicate parameter"},
		{"redecl", `task t(int n) { int x; int x; }`, "redeclaration"},
		{"call task", "task a(int n) { }\ntask b(int n) { a(n); }", "scheduled by the runtime"},
		{"call arity", "int f(int a) { return a; }\ntask t(int n) { int x = f(n, n); }", "args"},
		{"undefined func", `task t(int n) { g(n); }`, "undefined function"},
		{"builtin shadow", `float sqrt(float x) { return x; }`, "shadows a builtin"},
		{"builtin arity", `task t(float A[n], int n) { A[0] = sqrt(1.0, 2.0); }`, "exactly one"},
		{"array unindexed", `task t(int n, float A[n]) { float x = A; }`, "must be indexed"},
		{"return in void", `task t(int n) { return 3; }`, "void function"},
		{"missing return value", `int f(int n) { return; }`, "missing return value"},
		{"compound float to int", `task t(int n) { int x = 0; x += 1.5; }`, "float operand to int"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := Parse(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			_, err = Check(f)
			if err == nil {
				t.Fatal("expected check error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCheckResolvesSymbols(t *testing.T) {
	src := `
task axpy(float X[n], float Y[n], int n, float a) {
	for (int i = 0; i < n; i++) {
		Y[i] = Y[i] + a * X[i];
	}
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if len(info.Arrays) != 3 {
		t.Errorf("arrays resolved = %d, want 3 (Y[i] lhs, Y[i] rhs, X[i])", len(info.Arrays))
	}
	for ix, pd := range info.Arrays {
		if pd.Name != ix.Base.Name {
			t.Errorf("IndexExpr %s resolved to param %s", ix.Base.Name, pd.Name)
		}
	}
}

func TestCheckMathBuiltins(t *testing.T) {
	src := `
task chol(float A[N][N], int N) {
	A[0][0] = sqrt(A[0][0]);
	A[0][1] = sin(1.0) + cos(2.0) + fabs(-1.0) + exp(0.5) + log(2.0) + floor(1.9);
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if len(info.MathCalls) != 7 {
		t.Errorf("math calls = %d, want 7", len(info.MathCalls))
	}
}

func TestCheckShortCircuitAndConditions(t *testing.T) {
	src := `
task t(int A[n], int n) {
	int i = 0;
	while (i < n && A[i] != 0) {
		i++;
	}
	if (i > 0 || n == 0) {
		i = 0;
	}
	if (!(i < n)) {
		i = 1;
	}
	if (n) { i = 2; }
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := Check(f); err != nil {
		t.Fatalf("check: %v", err)
	}
}

func TestCheckScoping(t *testing.T) {
	src := `
task t(int n) {
	int x = 1;
	{
		int x = 2;
		x = 3;
	}
	for (int i = 0; i < n; i++) {
		int y = i;
		y = y + x;
	}
	int i = 9; // loop variable out of scope again
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := Check(f); err != nil {
		t.Fatalf("check: %v", err)
	}
}

func TestCallArrayArgs(t *testing.T) {
	src := `
float get(float A[m], int m, int i) { return A[i]; }
task t(float B[n], int n) {
	B[0] = get(B, n, 1);
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if len(info.Calls) != 1 {
		t.Errorf("calls = %d, want 1", len(info.Calls))
	}
}

func TestIncrementDecrementSugar(t *testing.T) {
	src := `task t(int n) { int i = 0; i++; i--; for (int j = n; j > 0; j--) { } }`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := Check(f); err != nil {
		t.Fatalf("check: %v", err)
	}
	body := f.Funcs[0].Body
	inc := body.Stmts[1].(*AssignStmt)
	if inc.Op != AddAssign {
		t.Errorf("i++ should desugar to +=, got %v", inc.Op)
	}
}

func TestLexerNumbers(t *testing.T) {
	toks, err := lex("42 3.5 1e3 2.5e-2 .5")
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	kinds := []tokKind{tokInt, tokFloat, tokFloat, tokFloat, tokFloat, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("tokens = %d, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d kind = %v, want %v (%q)", i, toks[i].kind, k, toks[i].text)
		}
	}
	if toks[0].ival != 42 || toks[1].fval != 3.5 || toks[2].fval != 1000 {
		t.Error("literal values wrong")
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("task t(int n) {\n  x = 1;\n}")
	if err != nil {
		t.Fatalf("parse should succeed: %v", err)
	}
	f, _ := Parse("task t(int n) {\n  x = 1;\n}")
	_, err = Check(f)
	if err == nil {
		t.Fatal("expected check error")
	}
	fe, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if fe.Pos.Line != 2 {
		t.Errorf("error line = %d, want 2", fe.Pos.Line)
	}
}

// TestLexParseNeverPanics drives random byte soup through the front end:
// errors are fine, panics are not.
func TestLexParseNeverPanics(t *testing.T) {
	rng := uint64(12345)
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng >> 33
	}
	chars := []byte("taskintfloavd(){}[];,=+-*/%<>&|^! \n\t0123456789.xyzNAB_\"'$#@~`?:\\")
	for trial := 0; trial < 3000; trial++ {
		n := int(next() % 120)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = chars[next()%uint64(len(chars))]
		}
		src := string(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on input %q: %v", src, r)
				}
			}()
			if f, err := Parse(src); err == nil {
				_, _ = Check(f)
			}
		}()
	}
}
