// Package taskc implements the front end for TaskC, a small C-like language
// for writing task-based kernels. TaskC plays the role the C benchmarks play
// in the paper: it expresses loop nests over array parameters, indirection,
// and data-dependent control flow, and is lowered to the SSA IR on which the
// DAE transformation runs.
//
// Grammar sketch:
//
//	program  := decl*
//	decl     := ("task" | type) ident "(" params? ")" block
//	param    := type ident ("[" expr "]")*           // dims make it an array
//	stmt     := type ident ("=" expr)? ";"
//	          | lvalue assignop expr ";"
//	          | ident "++" ";" | ident "--" ";"
//	          | "prefetch" lvalue ";"
//	          | "if" "(" expr ")" stmt ("else" stmt)?
//	          | "for" "(" simplestmt ";" expr ";" simplestmt ")" stmt
//	          | "while" "(" expr ")" stmt
//	          | "return" expr? ";"
//	          | call ";"
//	          | block
//	expr     := C expressions with || && == != < <= > >= + - * / %
//	            & | ^ << >> unary - ! calls and indexing
//
// Task parameters are immutable inside the task body (arrays are accessed
// through them, scalars may be copied to locals); this keeps the IR free of
// pointers-to-pointers and matches the paper's task model in which all data
// reaches a task through its arguments.
package taskc

import "fmt"

// Pos is a source position.
type Pos struct {
	Line int
	Col  int
}

// String renders the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// TypeName is a TaskC source-level type.
type TypeName uint8

// Source types.
const (
	VoidType TypeName = iota
	IntType
	FloatType
)

// String returns the source spelling of the type.
func (t TypeName) String() string {
	switch t {
	case IntType:
		return "int"
	case FloatType:
		return "float"
	}
	return "void"
}

// File is a parsed TaskC source file.
type File struct {
	Funcs []*FuncDecl
}

// FuncDecl is a function or task declaration.
type FuncDecl struct {
	Pos    Pos
	Name   string
	IsTask bool
	Ret    TypeName
	Params []*ParamDecl
	Body   *BlockStmt
}

// ParamDecl is one parameter. A non-empty Dims means the parameter is an
// array of the element type; Dims expressions may reference parameters
// declared earlier in the list.
type ParamDecl struct {
	Pos  Pos
	Name string
	Type TypeName
	Dims []Expr
}

// IsArray reports whether the parameter is an array.
func (p *ParamDecl) IsArray() bool { return len(p.Dims) > 0 }

// Stmt is a TaskC statement.
type Stmt interface{ stmtPos() Pos }

// DeclStmt declares a scalar local, with optional initializer.
type DeclStmt struct {
	Pos  Pos
	Name string
	Type TypeName
	Init Expr // may be nil
}

// AssignOp is the operator of an assignment statement.
type AssignOp uint8

// Assignment operators.
const (
	Assign AssignOp = iota
	AddAssign
	SubAssign
	MulAssign
	DivAssign
)

var assignOpNames = [...]string{Assign: "=", AddAssign: "+=", SubAssign: "-=", MulAssign: "*=", DivAssign: "/="}

// String returns the source spelling.
func (op AssignOp) String() string { return assignOpNames[op] }

// AssignStmt assigns to a scalar local or an array element.
type AssignStmt struct {
	Pos Pos
	// LHS is an *Ident (scalar) or *IndexExpr (array element).
	LHS Expr
	Op  AssignOp
	RHS Expr
}

// PrefetchStmt issues an explicit software prefetch of an array element.
// It is how hand-written ("Manual DAE") access phases are expressed.
type PrefetchStmt struct {
	Pos  Pos
	Addr *IndexExpr
}

// IfStmt is a conditional.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// ForStmt is a C-style for loop. Init and Post may be nil.
type ForStmt struct {
	Pos  Pos
	Init Stmt // DeclStmt or AssignStmt
	Cond Expr
	Post Stmt // AssignStmt (including ++/-- sugar)
	Body Stmt
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// ReturnStmt returns from the function.
type ReturnStmt struct {
	Pos Pos
	X   Expr // may be nil
}

// ExprStmt evaluates a call for its side effects.
type ExprStmt struct {
	Pos Pos
	X   Expr // *CallExpr
}

// BlockStmt is a { } block.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

func (s *DeclStmt) stmtPos() Pos     { return s.Pos }
func (s *AssignStmt) stmtPos() Pos   { return s.Pos }
func (s *PrefetchStmt) stmtPos() Pos { return s.Pos }
func (s *IfStmt) stmtPos() Pos       { return s.Pos }
func (s *ForStmt) stmtPos() Pos      { return s.Pos }
func (s *WhileStmt) stmtPos() Pos    { return s.Pos }
func (s *ReturnStmt) stmtPos() Pos   { return s.Pos }
func (s *ExprStmt) stmtPos() Pos     { return s.Pos }
func (s *BlockStmt) stmtPos() Pos    { return s.Pos }

// StmtPos returns the source position of a statement.
func StmtPos(s Stmt) Pos { return s.stmtPos() }

// Expr is a TaskC expression.
type Expr interface{ exprPos() Pos }

// ExprPos returns the source position of an expression.
func ExprPos(e Expr) Pos { return e.exprPos() }

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	V   int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Pos Pos
	V   float64
}

// Ident references a local variable or parameter.
type Ident struct {
	Pos  Pos
	Name string
}

// IndexExpr is Base[Idx0][Idx1]... where Base names an array parameter.
type IndexExpr struct {
	Pos  Pos
	Base *Ident
	Idx  []Expr
}

// BinKind is a binary expression operator.
type BinKind uint8

// Binary operators, in increasing precedence groups.
const (
	LOr BinKind = iota
	LAnd
	Eq
	Ne
	Lt
	Le
	Gt
	Ge
	Add
	Sub
	BitOr
	BitXor
	Mul
	Div
	Rem
	BitAnd
	Shl
	Shr
)

var binKindNames = [...]string{
	LOr: "||", LAnd: "&&", Eq: "==", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
	Add: "+", Sub: "-", BitOr: "|", BitXor: "^", Mul: "*", Div: "/", Rem: "%",
	BitAnd: "&", Shl: "<<", Shr: ">>",
}

// String returns the source spelling.
func (k BinKind) String() string { return binKindNames[k] }

// BinExpr is X op Y.
type BinExpr struct {
	Pos Pos
	Op  BinKind
	X   Expr
	Y   Expr
}

// UnKind is a unary operator.
type UnKind uint8

// Unary operators.
const (
	Neg UnKind = iota
	Not
)

// UnExpr is op X.
type UnExpr struct {
	Pos Pos
	Op  UnKind
	X   Expr
}

// CallExpr calls a function or a math builtin (sqrt, sin, cos, fabs, exp,
// log, floor).
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

func (e *IntLit) exprPos() Pos    { return e.Pos }
func (e *FloatLit) exprPos() Pos  { return e.Pos }
func (e *Ident) exprPos() Pos     { return e.Pos }
func (e *IndexExpr) exprPos() Pos { return e.Pos }
func (e *BinExpr) exprPos() Pos   { return e.Pos }
func (e *UnExpr) exprPos() Pos    { return e.Pos }
func (e *CallExpr) exprPos() Pos  { return e.Pos }
