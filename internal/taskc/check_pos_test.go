package taskc

import (
	"errors"
	"strings"
	"testing"
)

// posOf returns the 1-based line:col of the n-th occurrence of marker in src.
func posOf(t *testing.T, src, marker string, n int) Pos {
	t.Helper()
	off := -1
	from := 0
	for i := 0; i < n; i++ {
		k := strings.Index(src[from:], marker)
		if k < 0 {
			t.Fatalf("marker %q (occurrence %d) not found", marker, n)
		}
		off = from + k
		from = off + 1
	}
	line, col := 1, 1
	for _, r := range src[:off] {
		if r == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return Pos{Line: line, Col: col}
}

// TestCheckErrorPositions asserts that every type-check error points at the
// offending token: the reported line:col must equal the marker's position in
// the source, not the statement's or the file's.
func TestCheckErrorPositions(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantMsg string
		marker  string // error must point at this substring...
		occ     int    // ...at its occ-th occurrence (1-based)
	}{
		{
			name:    "duplicate-parameter",
			src:     "task f(int a,\n\tint a) {\n}\n",
			wantMsg: "duplicate parameter",
			marker:  "int a", occ: 2,
		},
		{
			name:    "float-array-dimension",
			src:     "task f(float b,\n\tfloat A[b], int n) {\n}\n",
			wantMsg: "array dimension must be int",
			marker:  "b]", occ: 1,
		},
		{
			name:    "redeclaration",
			src:     "task f(int n) {\n\tint x = 0;\n\tint x = 1;\n}\n",
			wantMsg: "redeclaration",
			marker:  "int x = 1", occ: 1,
		},
		{
			name:    "undefined-variable",
			src:     "task f(int n) {\n\tint x = y;\n}\n",
			wantMsg: "undefined variable",
			marker:  "y;", occ: 1,
		},
		{
			name:    "assign-to-parameter",
			src:     "task f(int n) {\n\tn = 1;\n}\n",
			wantMsg: "task parameters are immutable",
			marker:  "n = 1", occ: 1,
		},
		{
			name:    "unindexed-array",
			src:     "task f(float A[n], int n) {\n\tfloat x = A;\n}\n",
			wantMsg: "must be indexed",
			marker:  "A;", occ: 1,
		},
		{
			name:    "float-condition",
			src:     "task f(float A[n], int n) {\n\tif (A[0]) {\n\t}\n}\n",
			wantMsg: "condition must be bool or int",
			marker:  "A[0]", occ: 1,
		},
		{
			name:    "float-modulo",
			src:     "task f(int n) {\n\tfloat z = 1.5 % 2.5;\n}\n",
			wantMsg: "must be int",
			marker:  "% 2.5", occ: 1, // binary-op errors point at the operator
		},
		{
			name:    "call-arity",
			src:     "void g(int a) {\n}\ntask f(int n) {\n\tg();\n}\n",
			wantMsg: "has 0 args, want 1",
			marker:  "g()", occ: 1,
		},
		{
			name:    "undefined-function",
			src:     "task f(int n) {\n\th(n);\n}\n",
			wantMsg: "undefined function",
			marker:  "h(n)", occ: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			file, err := Parse(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			_, err = Check(file)
			if err == nil {
				t.Fatalf("expected type-check error containing %q", tc.wantMsg)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("error %q does not contain %q", err, tc.wantMsg)
			}
			var te *Error
			if !errors.As(err, &te) {
				t.Fatalf("error %T is not a *taskc.Error", err)
			}
			want := posOf(t, tc.src, tc.marker, tc.occ)
			if te.Pos != want {
				t.Errorf("error at %s, want %s (marker %q)\n%q", te.Pos, want, tc.marker, err)
			}
		})
	}
}
