package taskc

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzTaskCParse drives arbitrary bytes through the whole TaskC front end —
// lexer, parser, checker. The front end must reject malformed input with an
// error, never a panic, an out-of-range token access, or a hang; accepted
// programs must also survive the checker without crashing.
func FuzzTaskCParse(f *testing.F) {
	f.Add("task t(float A[n], int n) { }")
	f.Add("task t(int n) { int i; i = 0; while (i < n) { i = i + 1; } }")
	f.Add("task t(float A[n], int n) { for (int i = 0; i < n; i = i + 1) { A[i] = A[i] * 2.0; } }")
	f.Add("task t(int n) { if (n > 0) { } else { } }")
	f.Add("task t(") // truncated
	f.Add("task t(int n) { n = ; }")
	f.Add("task 0x()")
	f.Add(strings.Repeat("{", 64))
	f.Add("task t(int n) { int x; x = n / 0; }")
	f.Add("/* unterminated")
	f.Add("task t(int n) { x = \x00\xff; }")
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(src)
		if err != nil {
			if file != nil {
				t.Errorf("Parse returned both a file and an error: %v", err)
			}
			return
		}
		if file == nil {
			t.Fatal("Parse returned nil file and nil error")
		}
		// Error messages must be printable positions, not raw indices.
		if _, err := Check(file); err != nil && !utf8.ValidString(err.Error()) {
			t.Errorf("checker error is not valid UTF-8: %q", err.Error())
		}
	})
}
