package taskc

// Parse parses a TaskC source file.
func Parse(src string) (*File, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	file := &File{}
	for !p.at(tokEOF) {
		fd, err := p.funcDecl()
		if err != nil {
			return nil, err
		}
		file.Funcs = append(file.Funcs, fd)
	}
	return file, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokKind) bool { return p.cur().kind == kind }

func (p *parser) atText(text string) bool {
	t := p.cur()
	return (t.kind == tokPunct || t.kind == tokKeyword) && t.text == text
}

func (p *parser) accept(text string) bool {
	if p.atText(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) (token, error) {
	if p.atText(text) {
		return p.next(), nil
	}
	return token{}, errf(p.cur().pos, "expected %q, found %s", text, p.cur())
}

func (p *parser) expectIdent() (token, error) {
	if p.at(tokIdent) {
		return p.next(), nil
	}
	return token{}, errf(p.cur().pos, "expected identifier, found %s", p.cur())
}

func (p *parser) typeName() (TypeName, bool) {
	switch {
	case p.accept("int"):
		return IntType, true
	case p.accept("float"):
		return FloatType, true
	case p.accept("void"):
		return VoidType, true
	}
	return VoidType, false
}

// funcDecl := ("task" | type) ident "(" params? ")" block
func (p *parser) funcDecl() (*FuncDecl, error) {
	start := p.cur().pos
	fd := &FuncDecl{Pos: start}
	if p.accept("task") {
		fd.IsTask = true
		fd.Ret = VoidType
	} else if t, ok := p.typeName(); ok {
		fd.Ret = t
	} else {
		return nil, errf(start, "expected 'task' or a type, found %s", p.cur())
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	fd.Name = name.text
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	if !p.atText(")") {
		for {
			pd, err := p.paramDecl()
			if err != nil {
				return nil, err
			}
			fd.Params = append(fd.Params, pd)
			if !p.accept(",") {
				break
			}
		}
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

// paramDecl := type ident ("[" expr "]")*
func (p *parser) paramDecl() (*ParamDecl, error) {
	start := p.cur().pos
	ty, ok := p.typeName()
	if !ok || ty == VoidType {
		return nil, errf(start, "expected parameter type, found %s", p.cur())
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	pd := &ParamDecl{Pos: start, Name: name.text, Type: ty}
	for p.accept("[") {
		dim, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		pd.Dims = append(pd.Dims, dim)
	}
	return pd, nil
}

func (p *parser) block() (*BlockStmt, error) {
	lb, err := p.expect("{")
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: lb.pos}
	for !p.atText("}") {
		if p.at(tokEOF) {
			return nil, errf(p.cur().pos, "unexpected end of file in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.next() // consume }
	return blk, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.atText("{"):
		return p.block()
	case p.atText("if"):
		return p.ifStmt()
	case p.atText("for"):
		return p.forStmt()
	case p.atText("while"):
		return p.whileStmt()
	case p.atText("return"):
		p.next()
		rs := &ReturnStmt{Pos: t.pos}
		if !p.atText(";") {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			rs.X = x
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return rs, nil
	case p.atText("prefetch"):
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		ix, ok := x.(*IndexExpr)
		if !ok {
			return nil, errf(t.pos, "prefetch target must be an array element")
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &PrefetchStmt{Pos: t.pos, Addr: ix}, nil
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// simpleStmt := decl | assignment | ++/-- | call   (no trailing ';')
func (p *parser) simpleStmt() (Stmt, error) {
	t := p.cur()
	if ty, ok := p.typeName(); ok {
		if ty == VoidType {
			return nil, errf(t.pos, "cannot declare a void variable")
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ds := &DeclStmt{Pos: t.pos, Name: name.text, Type: ty}
		if p.accept("=") {
			init, err := p.expr()
			if err != nil {
				return nil, err
			}
			ds.Init = init
		}
		return ds, nil
	}

	// Assignment, increment, or call.
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	switch {
	case p.accept("++"):
		id, err := lvalueIdent(x)
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: t.pos, LHS: id, Op: AddAssign, RHS: &IntLit{Pos: t.pos, V: 1}}, nil
	case p.accept("--"):
		id, err := lvalueIdent(x)
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: t.pos, LHS: id, Op: SubAssign, RHS: &IntLit{Pos: t.pos, V: 1}}, nil
	}
	for _, op := range []struct {
		text string
		op   AssignOp
	}{{"=", Assign}, {"+=", AddAssign}, {"-=", SubAssign}, {"*=", MulAssign}, {"/=", DivAssign}} {
		if p.accept(op.text) {
			if err := checkLValue(x); err != nil {
				return nil, err
			}
			rhs, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{Pos: t.pos, LHS: x, Op: op.op, RHS: rhs}, nil
		}
	}
	if _, ok := x.(*CallExpr); ok {
		return &ExprStmt{Pos: t.pos, X: x}, nil
	}
	return nil, errf(t.pos, "expected assignment or call statement")
}

func lvalueIdent(x Expr) (*Ident, error) {
	if id, ok := x.(*Ident); ok {
		return id, nil
	}
	return nil, errf(x.exprPos(), "++/-- target must be a scalar variable")
}

func checkLValue(x Expr) error {
	switch x.(type) {
	case *Ident, *IndexExpr:
		return nil
	}
	return errf(x.exprPos(), "left-hand side of assignment is not assignable")
}

func (p *parser) ifStmt() (Stmt, error) {
	t := p.next() // if
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.stmt()
	if err != nil {
		return nil, err
	}
	is := &IfStmt{Pos: t.pos, Cond: cond, Then: then}
	if p.accept("else") {
		els, err := p.stmt()
		if err != nil {
			return nil, err
		}
		is.Else = els
	}
	return is, nil
}

func (p *parser) forStmt() (Stmt, error) {
	t := p.next() // for
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	fs := &ForStmt{Pos: t.pos}
	if !p.atText(";") {
		init, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		fs.Init = init
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.atText(";") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		fs.Cond = cond
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.atText(")") {
		post, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		fs.Post = post
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	fs.Body = body
	return fs, nil
}

func (p *parser) whileStmt() (Stmt, error) {
	t := p.next() // while
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: t.pos, Cond: cond, Body: body}, nil
}

// Expression parsing: precedence climbing.

type level struct {
	ops []struct {
		text string
		kind BinKind
	}
}

var precLevels = []level{
	{ops: binops("||", LOr)},
	{ops: binops("&&", LAnd)},
	{ops: binops("|", BitOr)},
	{ops: binops("^", BitXor)},
	{ops: binops("&", BitAnd)},
	{ops: binops("==", Eq, "!=", Ne)},
	{ops: binops("<=", Le, ">=", Ge, "<", Lt, ">", Gt)},
	{ops: binops("<<", Shl, ">>", Shr)},
	{ops: binops("+", Add, "-", Sub)},
	{ops: binops("*", Mul, "/", Div, "%", Rem)},
}

func binops(pairs ...any) []struct {
	text string
	kind BinKind
} {
	var out []struct {
		text string
		kind BinKind
	}
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, struct {
			text string
			kind BinKind
		}{pairs[i].(string), pairs[i+1].(BinKind)})
	}
	return out
}

func (p *parser) expr() (Expr, error) { return p.binExpr(0) }

func (p *parser) binExpr(lvl int) (Expr, error) {
	if lvl >= len(precLevels) {
		return p.unary()
	}
	x, err := p.binExpr(lvl + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range precLevels[lvl].ops {
			if p.atText(op.text) {
				t := p.next()
				y, err := p.binExpr(lvl + 1)
				if err != nil {
					return nil, err
				}
				x = &BinExpr{Pos: t.pos, Op: op.kind, X: x, Y: y}
				matched = true
				break
			}
		}
		if !matched {
			return x, nil
		}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	switch {
	case p.accept("-"):
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Pos: t.pos, Op: Neg, X: x}, nil
	case p.accept("!"):
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Pos: t.pos, Op: Not, X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.next()
		return &IntLit{Pos: t.pos, V: t.ival}, nil
	case tokFloat:
		p.next()
		return &FloatLit{Pos: t.pos, V: t.fval}, nil
	case tokIdent:
		p.next()
		id := &Ident{Pos: t.pos, Name: t.text}
		switch {
		case p.atText("("):
			p.next()
			call := &CallExpr{Pos: t.pos, Name: t.text}
			if !p.atText(")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(",") {
						break
					}
				}
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			return call, nil
		case p.atText("["):
			ix := &IndexExpr{Pos: t.pos, Base: id}
			for p.accept("[") {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect("]"); err != nil {
					return nil, err
				}
				ix.Idx = append(ix.Idx, e)
			}
			return ix, nil
		}
		return id, nil
	case tokPunct:
		if t.text == "(" {
			p.next()
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			return x, nil
		}
	}
	return nil, errf(t.pos, "unexpected %s in expression", t)
}
