package taskc

// ExprType is the checked type of an expression: a scalar TypeName or Bool.
type ExprType uint8

// Checked expression types.
const (
	TInt ExprType = iota
	TFloat
	TBool
	TVoid
)

// String returns a readable name.
func (t ExprType) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TBool:
		return "bool"
	}
	return "void"
}

func typeOf(t TypeName) ExprType {
	switch t {
	case IntType:
		return TInt
	case FloatType:
		return TFloat
	}
	return TVoid
}

// Info is the result of type checking: expression types and resolved symbols,
// consumed by the lowering phase.
type Info struct {
	// Types records the checked type of every expression.
	Types map[Expr]ExprType
	// Arrays maps each IndexExpr to the array parameter it accesses.
	Arrays map[*IndexExpr]*ParamDecl
	// Locals maps each Ident that references a local to its declaration.
	Locals map[*Ident]*DeclStmt
	// Params maps each Ident that references a parameter to its declaration.
	Params map[*Ident]*ParamDecl
	// Calls maps each non-builtin CallExpr to its callee.
	Calls map[*CallExpr]*FuncDecl
	// MathCalls marks CallExprs that are math builtins.
	MathCalls map[*CallExpr]string
}

// mathBuiltins maps builtin name to arity (all are unary float→float).
var mathBuiltins = map[string]bool{
	"sqrt": true, "sin": true, "cos": true, "fabs": true,
	"exp": true, "log": true, "floor": true,
}

type checker struct {
	file *File
	info *Info
	fns  map[string]*FuncDecl

	fn     *FuncDecl
	scopes []map[string]any // *DeclStmt or *ParamDecl
}

// Check type-checks the file and returns the analysis results.
func Check(file *File) (*Info, error) {
	c := &checker{
		file: file,
		info: &Info{
			Types:     make(map[Expr]ExprType),
			Arrays:    make(map[*IndexExpr]*ParamDecl),
			Locals:    make(map[*Ident]*DeclStmt),
			Params:    make(map[*Ident]*ParamDecl),
			Calls:     make(map[*CallExpr]*FuncDecl),
			MathCalls: make(map[*CallExpr]string),
		},
		fns: make(map[string]*FuncDecl),
	}
	for _, fd := range file.Funcs {
		if mathBuiltins[fd.Name] {
			return nil, errf(fd.Pos, "function name %q shadows a builtin", fd.Name)
		}
		if _, dup := c.fns[fd.Name]; dup {
			return nil, errf(fd.Pos, "duplicate function %q", fd.Name)
		}
		c.fns[fd.Name] = fd
	}
	for _, fd := range file.Funcs {
		if err := c.checkFunc(fd); err != nil {
			return nil, err
		}
	}
	return c.info, nil
}

func (c *checker) checkFunc(fd *FuncDecl) error {
	c.fn = fd
	c.scopes = []map[string]any{{}}
	// Declare all parameters first: dimension expressions may reference any
	// scalar parameter regardless of declaration order, matching the
	// benchmark style "float A[N][N], int N".
	for _, pd := range fd.Params {
		if c.lookup(pd.Name) != nil {
			return errf(pd.Pos, "duplicate parameter %q", pd.Name)
		}
		c.scopes[0][pd.Name] = pd
	}
	for _, pd := range fd.Params {
		for _, dim := range pd.Dims {
			t, err := c.expr(dim)
			if err != nil {
				return err
			}
			if t != TInt {
				return errf(dim.exprPos(), "array dimension must be int, got %s", t)
			}
		}
	}
	return c.stmt(fd.Body)
}

func (c *checker) push()                   { c.scopes = append(c.scopes, map[string]any{}) }
func (c *checker) pop()                    { c.scopes = c.scopes[:len(c.scopes)-1] }
func (c *checker) declare(n string, d any) { c.scopes[len(c.scopes)-1][n] = d }

func (c *checker) lookup(name string) any {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if d, ok := c.scopes[i][name]; ok {
			return d
		}
	}
	return nil
}

func (c *checker) stmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		c.push()
		defer c.pop()
		for _, sub := range st.Stmts {
			if err := c.stmt(sub); err != nil {
				return err
			}
		}
		return nil

	case *DeclStmt:
		if st.Init != nil {
			t, err := c.expr(st.Init)
			if err != nil {
				return err
			}
			if err := c.assignable(typeOf(st.Type), t, st.Init.exprPos()); err != nil {
				return err
			}
		}
		if _, ok := c.scopes[len(c.scopes)-1][st.Name]; ok {
			return errf(st.Pos, "redeclaration of %q in the same scope", st.Name)
		}
		c.declare(st.Name, st)
		return nil

	case *AssignStmt:
		lt, err := c.lvalue(st.LHS)
		if err != nil {
			return err
		}
		rt, err := c.expr(st.RHS)
		if err != nil {
			return err
		}
		if st.Op != Assign && lt == TInt && rt == TFloat {
			return errf(st.Pos, "cannot apply %s with float operand to int lvalue", st.Op)
		}
		return c.assignable(lt, rt, st.RHS.exprPos())

	case *PrefetchStmt:
		_, err := c.expr(st.Addr)
		return err

	case *IfStmt:
		if err := c.cond(st.Cond); err != nil {
			return err
		}
		if err := c.stmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.stmt(st.Else)
		}
		return nil

	case *ForStmt:
		c.push()
		defer c.pop()
		if st.Init != nil {
			if err := c.stmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := c.cond(st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if err := c.stmt(st.Post); err != nil {
				return err
			}
		}
		return c.stmt(st.Body)

	case *WhileStmt:
		if err := c.cond(st.Cond); err != nil {
			return err
		}
		return c.stmt(st.Body)

	case *ReturnStmt:
		want := typeOf(c.fn.Ret)
		if st.X == nil {
			if want != TVoid {
				return errf(st.Pos, "missing return value in %s function", want)
			}
			return nil
		}
		if want == TVoid {
			return errf(st.Pos, "return with value in void function")
		}
		t, err := c.expr(st.X)
		if err != nil {
			return err
		}
		return c.assignable(want, t, st.X.exprPos())

	case *ExprStmt:
		call, ok := st.X.(*CallExpr)
		if !ok {
			return errf(st.Pos, "expression statement must be a call")
		}
		_, err := c.expr(call)
		return err
	}
	return errf(s.stmtPos(), "unhandled statement %T", s)
}

// cond checks a condition expression; int conditions are allowed and compare
// against zero, matching C.
func (c *checker) cond(e Expr) error {
	t, err := c.expr(e)
	if err != nil {
		return err
	}
	if t != TBool && t != TInt {
		return errf(e.exprPos(), "condition must be bool or int, got %s", t)
	}
	return nil
}

func (c *checker) assignable(dst, src ExprType, pos Pos) error {
	if dst == src {
		return nil
	}
	if dst == TFloat && src == TInt {
		return nil // implicit widening
	}
	return errf(pos, "cannot assign %s to %s", src, dst)
}

// lvalue checks an assignment target and returns its type.
func (c *checker) lvalue(e Expr) (ExprType, error) {
	switch lhs := e.(type) {
	case *Ident:
		d := c.lookup(lhs.Name)
		if d == nil {
			return TVoid, errf(lhs.Pos, "undefined variable %q", lhs.Name)
		}
		ds, ok := d.(*DeclStmt)
		if !ok {
			return TVoid, errf(lhs.Pos, "cannot assign to parameter %q (task parameters are immutable)", lhs.Name)
		}
		c.info.Locals[lhs] = ds
		t := typeOf(ds.Type)
		c.info.Types[lhs] = t
		return t, nil
	case *IndexExpr:
		return c.expr(lhs)
	}
	return TVoid, errf(e.exprPos(), "not an assignable expression")
}

func (c *checker) expr(e Expr) (ExprType, error) {
	t, err := c.exprInner(e)
	if err == nil {
		c.info.Types[e] = t
	}
	return t, err
}

func (c *checker) exprInner(e Expr) (ExprType, error) {
	switch x := e.(type) {
	case *IntLit:
		return TInt, nil
	case *FloatLit:
		return TFloat, nil

	case *Ident:
		d := c.lookup(x.Name)
		if d == nil {
			return TVoid, errf(x.Pos, "undefined variable %q", x.Name)
		}
		switch decl := d.(type) {
		case *DeclStmt:
			c.info.Locals[x] = decl
			return typeOf(decl.Type), nil
		case *ParamDecl:
			if decl.IsArray() {
				return TVoid, errf(x.Pos, "array %q must be indexed", x.Name)
			}
			c.info.Params[x] = decl
			return typeOf(decl.Type), nil
		}
		return TVoid, errf(x.Pos, "unknown symbol kind for %q", x.Name)

	case *IndexExpr:
		d := c.lookup(x.Base.Name)
		if d == nil {
			return TVoid, errf(x.Pos, "undefined array %q", x.Base.Name)
		}
		pd, ok := d.(*ParamDecl)
		if !ok || !pd.IsArray() {
			return TVoid, errf(x.Pos, "%q is not an array parameter", x.Base.Name)
		}
		if len(x.Idx) != len(pd.Dims) {
			return TVoid, errf(x.Pos, "array %q has %d dimensions, indexed with %d",
				x.Base.Name, len(pd.Dims), len(x.Idx))
		}
		for _, ix := range x.Idx {
			t, err := c.expr(ix)
			if err != nil {
				return TVoid, err
			}
			if t != TInt {
				return TVoid, errf(ix.exprPos(), "array index must be int, got %s", t)
			}
		}
		c.info.Arrays[x] = pd
		return typeOf(pd.Type), nil

	case *BinExpr:
		xt, err := c.expr(x.X)
		if err != nil {
			return TVoid, err
		}
		yt, err := c.expr(x.Y)
		if err != nil {
			return TVoid, err
		}
		switch x.Op {
		case LOr, LAnd:
			if (xt != TBool && xt != TInt) || (yt != TBool && yt != TInt) {
				return TVoid, errf(x.Pos, "operands of %s must be bool or int", x.Op)
			}
			return TBool, nil
		case Eq, Ne, Lt, Le, Gt, Ge:
			if xt == TBool || yt == TBool {
				return TVoid, errf(x.Pos, "cannot compare bool values with %s", x.Op)
			}
			return TBool, nil
		case BitAnd, BitOr, BitXor, Shl, Shr, Rem:
			if xt != TInt || yt != TInt {
				return TVoid, errf(x.Pos, "operands of %s must be int", x.Op)
			}
			return TInt, nil
		default: // Add Sub Mul Div
			if xt == TBool || yt == TBool {
				return TVoid, errf(x.Pos, "cannot use bool operand with %s", x.Op)
			}
			if xt == TFloat || yt == TFloat {
				return TFloat, nil
			}
			return TInt, nil
		}

	case *UnExpr:
		xt, err := c.expr(x.X)
		if err != nil {
			return TVoid, err
		}
		switch x.Op {
		case Neg:
			if xt != TInt && xt != TFloat {
				return TVoid, errf(x.Pos, "cannot negate %s", xt)
			}
			return xt, nil
		default: // Not
			if xt != TBool && xt != TInt {
				return TVoid, errf(x.Pos, "operand of ! must be bool or int")
			}
			return TBool, nil
		}

	case *CallExpr:
		if mathBuiltins[x.Name] {
			if len(x.Args) != 1 {
				return TVoid, errf(x.Pos, "%s takes exactly one argument", x.Name)
			}
			t, err := c.expr(x.Args[0])
			if err != nil {
				return TVoid, err
			}
			if t != TFloat && t != TInt {
				return TVoid, errf(x.Pos, "%s argument must be numeric", x.Name)
			}
			c.info.MathCalls[x] = x.Name
			return TFloat, nil
		}
		fd, ok := c.fns[x.Name]
		if !ok {
			return TVoid, errf(x.Pos, "undefined function %q", x.Name)
		}
		if fd.IsTask {
			return TVoid, errf(x.Pos, "cannot call task %q; tasks are scheduled by the runtime", x.Name)
		}
		if len(x.Args) != len(fd.Params) {
			return TVoid, errf(x.Pos, "call to %q has %d args, want %d", x.Name, len(x.Args), len(fd.Params))
		}
		for i, a := range x.Args {
			pd := fd.Params[i]
			if pd.IsArray() {
				id, ok := a.(*Ident)
				if !ok {
					return TVoid, errf(a.exprPos(), "argument %d of %q must be an array name", i+1, x.Name)
				}
				ad := c.lookup(id.Name)
				apd, ok := ad.(*ParamDecl)
				if !ok || !apd.IsArray() {
					return TVoid, errf(a.exprPos(), "argument %d of %q must be an array parameter", i+1, x.Name)
				}
				if apd.Type != pd.Type {
					return TVoid, errf(a.exprPos(), "array element type mismatch in call to %q", x.Name)
				}
				if len(apd.Dims) != len(pd.Dims) {
					return TVoid, errf(a.exprPos(), "array rank mismatch in call to %q", x.Name)
				}
				c.info.Params[id] = apd
				continue
			}
			t, err := c.expr(a)
			if err != nil {
				return TVoid, err
			}
			if err := c.assignable(typeOf(pd.Type), t, a.exprPos()); err != nil {
				return TVoid, err
			}
		}
		c.info.Calls[x] = fd
		return typeOf(fd.Ret), nil
	}
	return TVoid, errf(e.exprPos(), "unhandled expression %T", e)
}
