package taskc

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokKeyword
	tokPunct
)

type token struct {
	kind tokKind
	pos  Pos
	text string
	ival int64
	fval float64
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of file"
	case tokInt, tokFloat:
		return t.text
	default:
		return "'" + t.text + "'"
	}
}

var keywords = map[string]bool{
	"task": true, "int": true, "float": true, "void": true,
	"if": true, "else": true, "for": true, "while": true,
	"return": true, "prefetch": true,
}

// multi-character punctuation, longest first.
var puncts = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "++", "--",
	"(", ")", "{", "}", "[", "]", ";", ",",
	"+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^",
}

// Error is a front-end diagnostic carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes src. Comments are // to end of line and /* */.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	n := len(src)

	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += k
	}

	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			pos := Pos{line, col}
			advance(2)
			closed := false
			for i < n {
				if src[i] == '*' && i+1 < n && src[i+1] == '/' {
					advance(2)
					closed = true
					break
				}
				advance(1)
			}
			if !closed {
				return nil, errf(pos, "unterminated block comment")
			}
		case isIdentStart(rune(c)):
			pos := Pos{line, col}
			j := i
			for j < n && isIdentPart(rune(src[j])) {
				j++
			}
			text := src[i:j]
			kind := tokIdent
			if keywords[text] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind: kind, pos: pos, text: text})
			advance(j - i)
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9'):
			pos := Pos{line, col}
			j := i
			isFloat := false
			for j < n && (src[j] >= '0' && src[j] <= '9') {
				j++
			}
			if j < n && src[j] == '.' {
				isFloat = true
				j++
				for j < n && (src[j] >= '0' && src[j] <= '9') {
					j++
				}
			}
			if j < n && (src[j] == 'e' || src[j] == 'E') {
				isFloat = true
				j++
				if j < n && (src[j] == '+' || src[j] == '-') {
					j++
				}
				for j < n && (src[j] >= '0' && src[j] <= '9') {
					j++
				}
			}
			text := src[i:j]
			if isFloat {
				v, err := strconv.ParseFloat(text, 64)
				if err != nil {
					return nil, errf(pos, "bad float literal %q", text)
				}
				toks = append(toks, token{kind: tokFloat, pos: pos, text: text, fval: v})
			} else {
				v, err := strconv.ParseInt(text, 10, 64)
				if err != nil {
					return nil, errf(pos, "bad integer literal %q", text)
				}
				toks = append(toks, token{kind: tokInt, pos: pos, text: text, ival: v})
			}
			advance(j - i)
		default:
			pos := Pos{line, col}
			matched := ""
			for _, p := range puncts {
				if strings.HasPrefix(src[i:], p) {
					matched = p
					break
				}
			}
			if matched == "" {
				return nil, errf(pos, "unexpected character %q", string(c))
			}
			toks = append(toks, token{kind: tokPunct, pos: pos, text: matched})
			advance(len(matched))
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: Pos{line, col}})
	return toks, nil
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }
