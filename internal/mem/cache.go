// Package mem simulates the memory hierarchy of the evaluation machine
// (a quad-core Intel Sandybridge in the paper): per-core L1 and L2 caches, a
// shared L3, and DRAM. The interpreter's memory events are fed through a
// per-core Hierarchy; the hit-level statistics drive the interval timing
// model in internal/cpu. The simulator is deterministic.
package mem

// Level identifies where an access was satisfied.
type Level uint8

// Hit levels.
const (
	L1 Level = iota
	L2
	L3
	Mem
	NumLevels
)

// String returns the level name.
func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	}
	return "Mem"
}

// Config describes one cache.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the cache line size.
	LineBytes int
	// Assoc is the set associativity.
	Assoc int
}

// Cache is a set-associative cache with LRU replacement. Tags are line
// addresses; the cache stores no data (the interpreter holds the real
// values).
//
// Storage is one flat tag array (nsets x assoc, each set MRU-first, empty
// ways holding an invalid tag) so a probe touches a single contiguous run of
// memory, and the MRU way is checked first: the interpreter's spatial
// locality makes "same line as last time" the dominant outcome, and that
// case costs one compare. Hit/miss accounting and replacement order are
// identical to the per-set slice implementation this replaces.
type Cache struct {
	cfg   Config
	tags  []int64 // nsets*assoc line addresses, MRU first within each set
	nsets int64
	assoc int
	shift uint

	Hits   int64
	Misses int64
}

// invalidTag marks an empty way. Heap addresses start at 1<<20 (the heap
// never hands out address zero or below), so no real line address is
// negative.
const invalidTag = -1

// NewCache returns an empty cache. Sizes must make a power-of-two set count.
func NewCache(cfg Config) *Cache {
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic("mem: set count must be a positive power of two")
	}
	shift := uint(0)
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		shift++
	}
	c := &Cache{cfg: cfg, nsets: int64(nsets), assoc: cfg.Assoc, shift: shift}
	c.tags = make([]int64, nsets*cfg.Assoc)
	c.Flush()
	return c
}

// line maps a byte address to its line address.
func (c *Cache) line(addr int64) int64 { return addr >> c.shift }

// Lookup probes the cache and updates LRU and fills on miss. It reports
// whether the access hit.
func (c *Cache) Lookup(addr int64) bool {
	ln := addr >> c.shift
	base := int(ln&(c.nsets-1)) * c.assoc
	set := c.tags[base : base+c.assoc]
	if set[0] == ln {
		// MRU fast path: no reordering needed.
		c.Hits++
		return true
	}
	return c.lookupSlow(set, ln)
}

// lookupSlow scans the non-MRU ways, promoting a hit to MRU or filling the
// line on a miss (evicting the LRU way).
func (c *Cache) lookupSlow(set []int64, ln int64) bool {
	for i := 1; i < len(set); i++ {
		if set[i] == ln {
			// Move to MRU position.
			for j := i; j > 0; j-- {
				set[j] = set[j-1]
			}
			set[0] = ln
			c.Hits++
			return true
		}
	}
	c.Misses++
	// Shift every way down one (dropping the LRU or an empty way) and fill
	// the new line as MRU.
	for j := len(set) - 1; j > 0; j-- {
		set[j] = set[j-1]
	}
	set[0] = ln
	return false
}

// Contains probes without side effects.
func (c *Cache) Contains(addr int64) bool {
	ln := c.line(addr)
	base := int(ln&(c.nsets-1)) * c.assoc
	for _, tag := range c.tags[base : base+c.assoc] {
		if tag == ln {
			return true
		}
	}
	return false
}

// Flush empties the cache.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
}

// HierarchyConfig describes the full memory system.
type HierarchyConfig struct {
	L1 Config
	L2 Config
	L3 Config
}

// DefaultHierarchy mirrors the evaluation machine: 32 KiB 8-way L1,
// 256 KiB 8-way L2 (per core), 8 MiB 16-way shared L3, 64-byte lines.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1: Config{SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8},
		L2: Config{SizeBytes: 256 << 10, LineBytes: 64, Assoc: 8},
		L3: Config{SizeBytes: 8 << 20, LineBytes: 64, Assoc: 16},
	}
}

// EvalHierarchy is the downscaled machine used for the paper reproduction
// runs: capacities are divided by ~32-64 relative to the Sandybridge so that
// benchmark working sets scaled to interpreter-friendly sizes keep the same
// relationship to the caches (task working set just fits the private levels,
// §3.1; application footprint exceeds the LLC). Latency constants live in
// internal/cpu and are unchanged.
func EvalHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1: Config{SizeBytes: 16 << 10, LineBytes: 64, Assoc: 8},
		L2: Config{SizeBytes: 64 << 10, LineBytes: 64, Assoc: 8},
		L3: Config{SizeBytes: 128 << 10, LineBytes: 64, Assoc: 16},
	}
}

// AccessKind distinguishes the event types fed to the hierarchy.
type AccessKind uint8

// Access kinds.
const (
	Load AccessKind = iota
	Store
	Prefetch
	NumKinds
)

// Stats counts accesses by kind and service level.
type Stats struct {
	At [NumKinds][NumLevels]int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	for k := range s.At {
		for l := range s.At[k] {
			s.At[k][l] += other.At[k][l]
		}
	}
}

// Total returns the number of accesses of kind k.
func (s *Stats) Total(k AccessKind) int64 {
	var n int64
	for _, v := range s.At[k] {
		n += v
	}
	return n
}

// MissesBeyond returns accesses of kind k serviced at or beyond level l.
func (s *Stats) MissesBeyond(k AccessKind, l Level) int64 {
	var n int64
	for lv := l; lv < NumLevels; lv++ {
		n += s.At[k][lv]
	}
	return n
}

// Hierarchy is one core's view of the memory system: private L1/L2 and a
// shared L3. It implements the access accounting for the interval model.
type Hierarchy struct {
	L1c *Cache
	L2c *Cache
	L3c *Cache // shared; aliased across cores

	Stats Stats
}

// NewHierarchy builds a core-private hierarchy around a shared L3.
func NewHierarchy(cfg HierarchyConfig, sharedL3 *Cache) *Hierarchy {
	return &Hierarchy{
		L1c: NewCache(cfg.L1),
		L2c: NewCache(cfg.L2),
		L3c: sharedL3,
	}
}

// Access services one memory event and returns the level that satisfied it.
// All kinds (including prefetches) fill every level on their way in,
// modelling allocate-on-miss with inclusive fills.
//
// The L1 MRU-way probe is open-coded here: the interpreter's spatial
// locality makes "L1 hit in the most-recent way" the dominant outcome, and
// inlining it saves the nested Lookup call on the simulator's hottest path.
// Accounting is identical to routing through Cache.Lookup.
func (h *Hierarchy) Access(addr int64, kind AccessKind) Level {
	l1 := h.L1c
	ln := addr >> l1.shift
	base := int(ln&(l1.nsets-1)) * l1.assoc
	if l1.tags[base] == ln {
		l1.Hits++
		h.Stats.At[kind][L1]++
		return L1
	}
	return h.accessSlow(addr, kind, ln, base)
}

// AccessHit services a memory event only if it hits the L1 MRU way — the
// dominant outcome under the interpreter's spatial locality — and reports
// whether it did. On a miss it has no effect; the caller must fall back to
// Access. The split exists for the bytecode dispatch loop: AccessHit is
// small enough to inline there, so the common case costs no call, while the
// general Access (whose accessSlow call keeps it over the inlining budget)
// only runs on the miss path. Accounting across the pair is identical to
// calling Access alone.
func (h *Hierarchy) AccessHit(addr int64, kind AccessKind) bool {
	l1 := h.L1c
	ln := addr >> l1.shift
	if base := int(ln&(l1.nsets-1)) * l1.assoc; l1.tags[base] == ln {
		l1.Hits++
		h.Stats.At[kind][L1]++
		return true
	}
	return false
}

// accessSlow finishes an access that missed the L1 MRU way: the rest of the
// L1 set, then L2, then the shared L3, with allocate-on-miss fills.
func (h *Hierarchy) accessSlow(addr int64, kind AccessKind, ln int64, base int) Level {
	l1 := h.L1c
	level := Mem
	switch {
	case l1.lookupSlow(l1.tags[base:base+l1.assoc], ln):
		level = L1
	case h.L2c.Lookup(addr):
		level = L2
	case h.L3c.Lookup(addr):
		level = L3
	}
	h.Stats.At[kind][level]++
	return level
}

// ResetStats clears the statistics (used between task phases) without
// touching cache contents.
func (h *Hierarchy) ResetStats() { h.Stats = Stats{} }

// FlushAll empties the private levels and the shared L3.
func (h *Hierarchy) FlushAll() {
	h.L1c.Flush()
	h.L2c.Flush()
	h.L3c.Flush()
}
