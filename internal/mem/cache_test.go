package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallCache() *Cache {
	return NewCache(Config{SizeBytes: 1024, LineBytes: 64, Assoc: 2}) // 8 sets
}

func TestCacheHitAfterFill(t *testing.T) {
	c := smallCache()
	if c.Lookup(0) {
		t.Error("cold access should miss")
	}
	if !c.Lookup(0) {
		t.Error("second access should hit")
	}
	if !c.Lookup(63) {
		t.Error("same line should hit")
	}
	if c.Lookup(64) {
		t.Error("next line should miss")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits=%d misses=%d, want 2/2", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := smallCache() // 8 sets, 2-way: lines mapping to set 0 are multiples of 8*64=512
	a, b, d := int64(0), int64(512), int64(1024)
	c.Lookup(a)
	c.Lookup(b)
	c.Lookup(a) // a MRU
	c.Lookup(d) // evicts b (LRU)
	if !c.Contains(a) {
		t.Error("a should survive (MRU)")
	}
	if c.Contains(b) {
		t.Error("b should be evicted (LRU)")
	}
	if !c.Contains(d) {
		t.Error("d should be present")
	}
}

func TestCacheWorkingSetFits(t *testing.T) {
	c := NewCache(Config{SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8})
	// Touch 16 KiB twice: second pass must be all hits.
	for addr := int64(0); addr < 16<<10; addr += 8 {
		c.Lookup(addr)
	}
	h0 := c.Hits
	m0 := c.Misses
	for addr := int64(0); addr < 16<<10; addr += 8 {
		if !c.Lookup(addr) {
			t.Fatalf("second pass miss at %d", addr)
		}
	}
	if c.Misses != m0 {
		t.Error("second pass should not miss")
	}
	if c.Hits <= h0 {
		t.Error("second pass should hit")
	}
}

func TestCacheStreamingEvicts(t *testing.T) {
	c := NewCache(Config{SizeBytes: 1 << 10, LineBytes: 64, Assoc: 2})
	// Stream 64 KiB; then the first line must be gone.
	for addr := int64(0); addr < 64<<10; addr += 64 {
		c.Lookup(addr)
	}
	if c.Contains(0) {
		t.Error("first line should have been evicted by streaming")
	}
}

func TestHierarchyLevels(t *testing.T) {
	cfg := DefaultHierarchy()
	l3 := NewCache(cfg.L3)
	h := NewHierarchy(cfg, l3)

	if lv := h.Access(4096, Load); lv != Mem {
		t.Errorf("cold load level = %s, want Mem", lv)
	}
	if lv := h.Access(4096, Load); lv != L1 {
		t.Errorf("warm load level = %s, want L1", lv)
	}
	if h.Stats.At[Load][Mem] != 1 || h.Stats.At[Load][L1] != 1 {
		t.Errorf("stats = %+v", h.Stats.At[Load])
	}
}

func TestHierarchyPrefetchWarmsForLoads(t *testing.T) {
	cfg := DefaultHierarchy()
	l3 := NewCache(cfg.L3)
	h := NewHierarchy(cfg, l3)
	for addr := int64(0); addr < 4096; addr += 8 {
		h.Access(addr, Prefetch)
	}
	// Every subsequent load hits L1.
	for addr := int64(0); addr < 4096; addr += 8 {
		if lv := h.Access(addr, Load); lv != L1 {
			t.Fatalf("load after prefetch at %d hit %s, want L1", addr, lv)
		}
	}
}

func TestSharedL3AcrossCores(t *testing.T) {
	cfg := DefaultHierarchy()
	l3 := NewCache(cfg.L3)
	c0 := NewHierarchy(cfg, l3)
	c1 := NewHierarchy(cfg, l3)
	c0.Access(8192, Load) // miss to Mem, fills shared L3
	if lv := c1.Access(8192, Load); lv != L3 {
		t.Errorf("cross-core access level = %s, want L3 (shared)", lv)
	}
}

func TestStatsHelpers(t *testing.T) {
	var s Stats
	s.At[Load][L1] = 10
	s.At[Load][L2] = 5
	s.At[Load][Mem] = 2
	if s.Total(Load) != 17 {
		t.Error("Total")
	}
	if s.MissesBeyond(Load, L2) != 7 {
		t.Error("MissesBeyond")
	}
	var s2 Stats
	s2.At[Load][L1] = 1
	s.Add(s2)
	if s.At[Load][L1] != 11 {
		t.Error("Add")
	}
}

func TestFlushAndReset(t *testing.T) {
	cfg := DefaultHierarchy()
	l3 := NewCache(cfg.L3)
	h := NewHierarchy(cfg, l3)
	h.Access(0, Load)
	h.ResetStats()
	if h.Stats.Total(Load) != 0 {
		t.Error("ResetStats should clear counters")
	}
	if lv := h.Access(0, Load); lv != L1 {
		t.Error("cache contents should survive ResetStats")
	}
	h.FlushAll()
	if lv := h.Access(0, Load); lv == L1 {
		t.Error("FlushAll should empty caches")
	}
}

// Property: Contains agrees with a map-based model of an LRU cache.
func TestCacheMatchesReferenceModel(t *testing.T) {
	type ref struct {
		lines map[int64][]int64 // set → MRU-first lines
	}
	prop := func(seed int64) bool {
		c := NewCache(Config{SizeBytes: 512, LineBytes: 64, Assoc: 2}) // 4 sets
		r := ref{lines: map[int64][]int64{}}
		rng := rand.New(rand.NewSource(seed))
		for op := 0; op < 500; op++ {
			addr := int64(rng.Intn(64)) * 64
			ln := addr >> 6
			si := ln & 3
			// reference lookup
			set := r.lines[si]
			found := -1
			for i, tag := range set {
				if tag == ln {
					found = i
					break
				}
			}
			refHit := found >= 0
			if refHit {
				set = append(set[:found], set[found+1:]...)
			} else if len(set) == 2 {
				set = set[:1]
			}
			r.lines[si] = append([]int64{ln}, set...)
			if c.Lookup(addr) != refHit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
