package mem

import "testing"

// BenchmarkHierarchyAccessSequential walks lines in order, the
// spatially-local pattern the interpreter's kernels produce: within a line
// every access after the first is an L1 MRU-way hit, the case AccessHit and
// the open-coded probe in Access are built around.
func BenchmarkHierarchyAccessSequential(b *testing.B) {
	cfg := EvalHierarchy()
	h := NewHierarchy(cfg, NewCache(cfg.L3))
	b.ResetTimer()
	addr := int64(1 << 20)
	for i := 0; i < b.N; i++ {
		h.Access(addr, Load)
		addr += 8
	}
}

// BenchmarkHierarchyAccessStrided jumps a cache line per access, defeating
// the MRU fast path so the set-scan, fill, and L2/L3 promotion paths (the
// accessSlow side) dominate.
func BenchmarkHierarchyAccessStrided(b *testing.B) {
	cfg := EvalHierarchy()
	h := NewHierarchy(cfg, NewCache(cfg.L3))
	b.ResetTimer()
	addr := int64(1 << 20)
	for i := 0; i < b.N; i++ {
		h.Access(addr, Load)
		addr += int64(cfg.L1.LineBytes)
	}
}

// BenchmarkHierarchyAccessHit measures the inlinable fast-path probe alone
// on a guaranteed MRU hit.
func BenchmarkHierarchyAccessHit(b *testing.B) {
	cfg := EvalHierarchy()
	h := NewHierarchy(cfg, NewCache(cfg.L3))
	h.Access(1<<20, Load)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.AccessHit(1<<20, Load)
	}
}
