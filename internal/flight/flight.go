// Package flight provides in-process call deduplication (singleflight):
// concurrent callers asking for the same key share one execution of the
// underlying function instead of each computing it independently. The trace
// cache uses it so two goroutines missing on the same key run one collection
// and write one disk envelope; the daed server builds its request-level
// deduplication on the same primitive.
//
// Unlike golang.org/x/sync/singleflight (not vendored here; the repo is
// dependency-free by policy), Group is generic over key and value types and
// reports whether the caller was the leader — the goroutine that actually
// executed the function — which the callers use both for statistics
// (collapse ratios) and to decide whether a shared failure is worth
// retrying under their own context.
package flight

import "sync"

// call is one in-flight (or just-completed) execution.
type call[V any] struct {
	wg  sync.WaitGroup
	val V
	err error
}

// Group deduplicates concurrent executions per key. The zero value is ready
// to use. A Group must not be copied after first use.
type Group[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*call[V]
}

// Do executes fn, making sure only one execution per key is in flight at a
// time. Concurrent callers with the same key wait for the in-flight
// execution and receive its value and error. leader reports whether this
// caller ran fn itself; followers (leader == false) that receive an error
// scoped to the leader — a deadline expiry of the leader's context, say —
// can call Do again to compute under their own context, because the entry
// is removed as soon as fn returns (completed calls are never memoized;
// caching is the caller's concern).
func (g *Group[K, V]) Do(key K, fn func() (V, error)) (v V, err error, leader bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[K]*call[V])
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, false
	}
	c := &call[V]{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	// Release the waiters even when fn panics: the entry is removed and the
	// panic propagates from the leader, while followers observe the zero
	// value and a nil error — callers that guard fn with fault.Recover (as
	// the whole pipeline does) never reach this path with a live panic.
	defer func() {
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		c.wg.Done()
	}()
	c.val, c.err = fn()
	return c.val, c.err, true
}
