package flight

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDoCollapsesConcurrent: N concurrent callers on one key execute fn
// exactly once and all observe the leader's value.
func TestDoCollapsesConcurrent(t *testing.T) {
	var g Group[string, int]
	var execs atomic.Int64

	// One leader enters the flight and holds it open on gate; the followers
	// then join the same key and park; releasing the gate completes all of
	// them from the single execution. The 100ms grace is only there to let
	// the followers reach Do — a follower that somehow missed the window
	// would surface as a second leader and fail the execs assertion.
	inFlight := make(chan struct{})
	gate := make(chan struct{})

	const n = 32
	vals := make([]int, n)
	leaders := make([]bool, n)
	var wg sync.WaitGroup
	run := func(i int) {
		defer wg.Done()
		v, err, leader := g.Do("k", func() (int, error) {
			if execs.Add(1) == 1 {
				close(inFlight)
			}
			<-gate
			return 42, nil
		})
		if err != nil {
			t.Errorf("caller %d: unexpected error %v", i, err)
		}
		vals[i], leaders[i] = v, leader
	}
	wg.Add(1)
	go run(0)
	<-inFlight
	for i := 1; i < n; i++ {
		wg.Add(1)
		go run(i)
	}
	time.Sleep(100 * time.Millisecond)
	close(gate)
	wg.Wait()

	nLeaders := 0
	for i := 0; i < n; i++ {
		if vals[i] != 42 {
			t.Fatalf("caller %d got %d, want 42", i, vals[i])
		}
		if leaders[i] {
			nLeaders++
		}
	}
	if got := execs.Load(); got != 1 || nLeaders != 1 {
		t.Fatalf("executions=%d leaders=%d, want exactly 1 of each", got, nLeaders)
	}
}

// TestDoSharesError: followers of a failing flight see the same error.
func TestDoSharesError(t *testing.T) {
	var g Group[int, string]
	errBoom := errors.New("boom")
	started := make(chan struct{})
	release := make(chan struct{})

	go g.Do(7, func() (string, error) {
		close(started)
		<-release
		return "", errBoom
	})
	<-started
	done := make(chan error, 1)
	go func() {
		_, err, leader := g.Do(7, func() (string, error) { return "fresh", nil })
		if leader {
			done <- errors.New("follower became leader while flight in progress")
			return
		}
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the follower park on the flight
	close(release)
	if err := <-done; !errors.Is(err, errBoom) {
		t.Fatalf("follower error = %v, want %v", err, errBoom)
	}

	// The entry is removed on completion: the next call computes afresh.
	v, err, leader := g.Do(7, func() (string, error) { return "fresh", nil })
	if err != nil || v != "fresh" || !leader {
		t.Fatalf("post-failure call = (%q, %v, leader=%t), want fresh leader", v, err, leader)
	}
}

// TestDoDistinctKeysIndependent: different keys never block each other.
func TestDoDistinctKeysIndependent(t *testing.T) {
	var g Group[int, int]
	blockerIn := make(chan struct{})
	go g.Do(1, func() (int, error) { <-blockerIn; return 0, nil })

	v, err, leader := g.Do(2, func() (int, error) { return 9, nil })
	close(blockerIn)
	if v != 9 || err != nil || !leader {
		t.Fatalf("key 2 = (%d, %v, %t), want (9, nil, true)", v, err, leader)
	}
}

// TestDoPanicReleasesWaiters: a panicking leader does not strand followers
// or wedge the key.
func TestDoPanicReleasesWaiters(t *testing.T) {
	var g Group[string, int]
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		defer func() { recover() }()
		g.Do("p", func() (int, error) {
			close(started)
			<-release
			panic("leader died")
		})
	}()
	<-started
	done := make(chan struct{})
	go func() {
		g.Do("p", func() (int, error) { return 0, nil })
		close(done)
	}()
	close(release)
	<-done // would hang forever if the panic leaked the entry

	v, err, leader := g.Do("p", func() (int, error) { return 5, nil })
	if v != 5 || err != nil || !leader {
		t.Fatalf("post-panic call = (%d, %v, %t), want fresh leader", v, err, leader)
	}
}
