package chaosnet

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dae/internal/fault"
)

// backend starts a plain HTTP server answering every request with body.
func backend(t *testing.T, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// proxyFor wraps the backend in a proxy with a forced fault cycle.
func proxyFor(t *testing.T, ts *httptest.Server, cfg Config, forced ...Fault) *Proxy {
	t.Helper()
	cfg.Target = strings.TrimPrefix(ts.URL, "http://")
	cfg.Force = forced
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// get issues one HTTP GET through the proxy with a client-side timeout.
func get(p *Proxy, timeout time.Duration) (string, error) {
	c := &http.Client{Timeout: timeout}
	resp, err := c.Get(p.URL())
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// TestPassThrough: a transparent proxy (negative FaultRate) forwards
// byte-identically.
func TestPassThrough(t *testing.T) {
	ts := backend(t, "hello through the proxy")
	p := proxyFor(t, ts, Config{Seed: 1, FaultRate: -1})
	body, err := get(p, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if body != "hello through the proxy" {
		t.Fatalf("body = %q", body)
	}
	if p.Injected() != 0 {
		t.Fatalf("transparent proxy injected %d faults", p.Injected())
	}
}

// TestReset: a reset connection surfaces as a retryable transport error
// under the fault taxonomy — exactly what the cluster client needs to see
// to fail over.
func TestReset(t *testing.T) {
	ts := backend(t, "never delivered")
	p := proxyFor(t, ts, Config{Seed: 1}, Reset)
	_, err := get(p, 2*time.Second)
	if err == nil {
		t.Fatal("reset connection produced a clean response")
	}
	cerr := fault.ClassifyTransport(err)
	if !errors.Is(cerr, fault.ErrTransport) {
		t.Fatalf("reset classified as %v, want transport", cerr)
	}
	if !fault.IsRetryable(cerr) {
		t.Fatal("transport error not marked retryable")
	}
}

// TestBlackhole: the client hangs until its own deadline.
func TestBlackhole(t *testing.T) {
	ts := backend(t, "swallowed")
	p := proxyFor(t, ts, Config{Seed: 1}, Blackhole)
	start := time.Now()
	_, err := get(p, 150*time.Millisecond)
	if err == nil {
		t.Fatal("blackholed request completed")
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("failed after %v — blackhole answered instead of hanging", elapsed)
	}
}

// TestTruncate: a truncated response is a transport-level failure, not a
// short-but-clean body.
func TestTruncate(t *testing.T) {
	ts := backend(t, strings.Repeat("x", 64<<10))
	p := proxyFor(t, ts, Config{Seed: 1, TruncateAfter: 256}, Truncate)
	body, err := get(p, 2*time.Second)
	if err == nil && len(body) == 64<<10 {
		t.Fatal("truncated response arrived complete")
	}
}

// TestSlowLoris: the response drips too slowly to finish inside the
// client's deadline.
func TestSlowLoris(t *testing.T) {
	ts := backend(t, strings.Repeat("y", 8<<10))
	p := proxyFor(t, ts, Config{Seed: 1, SlowChunk: 64, SlowPause: 80 * time.Millisecond}, SlowLoris)
	_, err := get(p, 250*time.Millisecond)
	if err == nil {
		t.Fatal("slow-loris response completed inside the deadline")
	}
}

// TestLatency: the injected delay is observable end to end.
func TestLatency(t *testing.T) {
	ts := backend(t, "delayed")
	p := proxyFor(t, ts, Config{Seed: 1, Latency: 60 * time.Millisecond}, Latency)
	start := time.Now()
	body, err := get(p, 5*time.Second)
	if err != nil || body != "delayed" {
		t.Fatalf("latency fault corrupted the exchange: %q, %v", body, err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("roundtrip took %v, injected latency is 60ms", elapsed)
	}
}

// TestPartitionAndHeal: a partitioned proxy refuses everything; healing
// restores service without restarting anything.
func TestPartitionAndHeal(t *testing.T) {
	ts := backend(t, "reachable")
	p := proxyFor(t, ts, Config{Seed: 1, FaultRate: -1})
	if _, err := get(p, time.Second); err != nil {
		t.Fatalf("pre-partition request failed: %v", err)
	}
	p.Partition()
	if _, err := get(p, time.Second); err == nil {
		t.Fatal("request crossed a partition")
	}
	p.Heal()
	body, err := get(p, time.Second)
	if err != nil || body != "reachable" {
		t.Fatalf("post-heal request: %q, %v", body, err)
	}
}

// TestDeterministicSchedule: the fault schedule is a pure function of the
// seed.
func TestDeterministicSchedule(t *testing.T) {
	mk := func() *Proxy {
		return &Proxy{cfg: Config{FaultRate: 500}, rng: 42 | 1}
	}
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		if fa, fb := a.pick(), b.pick(); fa != fb {
			t.Fatalf("schedules diverge at %d: %v vs %v", i, fa, fb)
		}
	}
	c := &Proxy{cfg: Config{FaultRate: 500}, rng: 43 | 1}
	same := true
	for i := 0; i < 50; i++ {
		if a.pick() != c.pick() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestPartitionOneWay: an outbound-dropped proxy swallows responses (the
// client times out even though the server answered), an inbound-dropped
// proxy swallows requests, and Heal restores byte-identical service in both
// cases. Each HTTP attempt uses a fresh connection (Client keep-alives
// disabled) so the drop applies per request deterministically.
func TestPartitionOneWay(t *testing.T) {
	ts := backend(t, "asym")
	p := proxyFor(t, ts, Config{Seed: 1, FaultRate: -1})

	fresh := func(timeout time.Duration) (string, error) {
		c := &http.Client{
			Timeout:   timeout,
			Transport: &http.Transport{DisableKeepAlives: true},
		}
		resp, err := c.Get(p.URL())
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return string(b), err
	}

	p.PartitionOneWay(DirOutbound)
	if body, err := fresh(300 * time.Millisecond); err == nil {
		t.Fatalf("outbound-dropped request succeeded: %q", body)
	}
	p.Heal()
	if body, err := fresh(2 * time.Second); err != nil || body != "asym" {
		t.Fatalf("after heal: %q, %v", body, err)
	}

	p.PartitionOneWay(DirInbound)
	if body, err := fresh(300 * time.Millisecond); err == nil {
		t.Fatalf("inbound-dropped request succeeded: %q", body)
	}
	p.Heal()
	if body, err := fresh(2 * time.Second); err != nil || body != "asym" {
		t.Fatalf("after second heal: %q, %v", body, err)
	}
}

// TestDirectionString pins the log names.
func TestDirectionString(t *testing.T) {
	cases := map[Direction]string{
		DirInbound:               "inbound",
		DirOutbound:              "outbound",
		DirInbound | DirOutbound: "both",
		0:                        "none",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Fatalf("Direction(%d).String() = %q, want %q", d, got, want)
		}
	}
}
