// Package chaosnet is an in-process TCP fault-injection proxy: it sits
// between a client and a real listener and injects the network's failure
// modes — added latency, connection resets, blackholes, slow-loris drip,
// truncated responses — on a seeded per-connection schedule. Tests wrap a
// daed node's listener in a Proxy and point clients at the proxy address;
// the node under test is untouched, the wire between it and its clients
// misbehaves deterministically.
//
// Faults are chosen per accepted connection by a seeded xorshift PRNG, so a
// chaos scenario replays the exact same fault sequence for the same seed —
// the property that lets ClusterSoak run in CI. A Proxy can also be
// Partition()ed (every new connection refused, established ones reset) and
// healed, modeling a node falling off the network without killing it.
package chaosnet

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Fault is one injectable network failure mode.
type Fault int

const (
	// Pass forwards the connection untouched.
	Pass Fault = iota
	// Latency delays every chunk in both directions.
	Latency
	// Reset forcibly resets the connection (RST, not FIN) after a few
	// forwarded bytes — the client sees ECONNRESET mid-exchange.
	Reset
	// Blackhole reads the request and never answers: the client hangs
	// until its own deadline fires.
	Blackhole
	// SlowLoris forwards the response one small chunk at a time with long
	// pauses — enough progress to defeat naive liveness checks, too slow
	// to finish inside a sane deadline.
	SlowLoris
	// Truncate forwards a prefix of the response, then closes — the client
	// sees a syntactically broken payload (io.ErrUnexpectedEOF territory).
	Truncate
	numFaults
)

// String names the fault for logs.
func (f Fault) String() string {
	switch f {
	case Pass:
		return "pass"
	case Latency:
		return "latency"
	case Reset:
		return "reset"
	case Blackhole:
		return "blackhole"
	case SlowLoris:
		return "slow-loris"
	case Truncate:
		return "truncate"
	default:
		return "unknown"
	}
}

// Direction identifies one flow through the proxy, for asymmetric
// partitions.
type Direction int32

const (
	// DirInbound is the client→server flow: requests reaching the node.
	DirInbound Direction = 1 << iota
	// DirOutbound is the server→client flow: responses leaving the node.
	DirOutbound
)

// String names the direction for logs.
func (d Direction) String() string {
	switch d {
	case DirInbound:
		return "inbound"
	case DirOutbound:
		return "outbound"
	case DirInbound | DirOutbound:
		return "both"
	default:
		return "none"
	}
}

// Config configures a Proxy.
type Config struct {
	// Target is the real listener's address (host:port).
	Target string
	// Seed drives the per-connection fault schedule.
	Seed uint64
	// FaultRate is the fraction of connections (scaled by 1000: 250 =
	// 25.0%) that receive a non-Pass fault; 0 means 250, negative means
	// never (a transparent proxy). The fault kind itself is drawn uniformly
	// from the non-Pass modes.
	FaultRate int
	// Latency is the per-chunk delay of the Latency fault; 0 means 20ms.
	Latency time.Duration
	// SlowChunk is the slow-loris chunk size; 0 means 64 bytes.
	SlowChunk int
	// SlowPause is the slow-loris inter-chunk pause; 0 means 200ms.
	SlowPause time.Duration
	// TruncateAfter is how many response bytes the Truncate fault forwards
	// before closing; 0 means 128.
	TruncateAfter int
	// Log, when non-nil, receives one line per injected fault.
	Log func(format string, args ...any)
	// Force, when non-empty, overrides the seeded schedule entirely: the
	// proxy cycles through the listed faults connection by connection.
	// Tests use it to pin one failure mode.
	Force []Fault
}

// Proxy is a fault-injecting TCP forwarder. Create with New, point clients
// at Addr(), Close when done.
type Proxy struct {
	cfg Config
	ln  net.Listener

	mu          sync.Mutex
	rng         uint64
	partitioned bool
	conns       map[net.Conn]struct{} // live client conns, for Partition/Close

	accepted atomic.Int64
	injected atomic.Int64
	forceIdx atomic.Int64
	oneWay   atomic.Int32 // Direction bitmask of dropped flows
	closed   atomic.Bool
	wg       sync.WaitGroup
}

// New starts a proxy on a fresh loopback port forwarding to cfg.Target.
func New(cfg Config) (*Proxy, error) {
	if cfg.FaultRate == 0 {
		cfg.FaultRate = 250
	}
	if cfg.FaultRate < 0 {
		cfg.FaultRate = 0
	}
	if cfg.Latency <= 0 {
		cfg.Latency = 20 * time.Millisecond
	}
	if cfg.SlowChunk <= 0 {
		cfg.SlowChunk = 64
	}
	if cfg.SlowPause <= 0 {
		cfg.SlowPause = 200 * time.Millisecond
	}
	if cfg.TruncateAfter <= 0 {
		cfg.TruncateAfter = 128
	}
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		cfg:   cfg,
		ln:    ln,
		rng:   cfg.Seed | 1, // xorshift must not start at 0
		conns: make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address for clients.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL returns the proxy's base URL for HTTP clients.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// Accepted reports how many connections the proxy accepted.
func (p *Proxy) Accepted() int64 { return p.accepted.Load() }

// Injected reports how many connections received a non-Pass fault.
func (p *Proxy) Injected() int64 { return p.injected.Load() }

// Partition simulates the node falling off the network: new connections
// are reset on accept and every established connection is torn down.
func (p *Proxy) Partition() {
	p.mu.Lock()
	p.partitioned = true
	for c := range p.conns {
		reset(c)
		delete(p.conns, c)
	}
	p.mu.Unlock()
}

// PartitionOneWay blackholes every chunk flowing in direction d while the
// opposite direction keeps forwarding — the asymmetric failure where a node
// can hear the network but not be heard (or vice versa), the classic
// gray-failure mode that symmetric Partition cannot model. Connections stay
// established: bytes silently vanish with no RST, exactly like a dead link.
// Applies to live and future connections until Heal. Deterministic: no
// randomness is involved in which chunks drop (all of them do).
func (p *Proxy) PartitionOneWay(d Direction) {
	p.oneWay.Store(int32(d))
}

// Heal ends a Partition and/or PartitionOneWay.
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.partitioned = false
	p.mu.Unlock()
	p.oneWay.Store(0)
}

// dropping reports whether a chunk flowing in the given direction (request =
// client→server) is currently swallowed by a one-way partition.
func (p *Proxy) dropping(request bool) bool {
	d := Direction(p.oneWay.Load())
	if request {
		return d&DirInbound != 0
	}
	return d&DirOutbound != 0
}

// Close stops the proxy and tears down every live connection.
func (p *Proxy) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := p.ln.Close()
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
		delete(p.conns, c)
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

// next draws from the seeded xorshift64 stream.
func (p *Proxy) next() uint64 {
	p.mu.Lock()
	x := p.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	p.rng = x
	p.mu.Unlock()
	return x
}

// pick decides this connection's fault.
func (p *Proxy) pick() Fault {
	if len(p.cfg.Force) > 0 {
		i := int(p.forceIdx.Add(1) - 1)
		return p.cfg.Force[i%len(p.cfg.Force)]
	}
	r := p.next()
	if int(r%1000) >= p.cfg.FaultRate {
		return Pass
	}
	return Fault(1 + p.next()%uint64(numFaults-1))
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.accepted.Add(1)
		p.mu.Lock()
		part := p.partitioned
		if !part {
			p.conns[c] = struct{}{}
		}
		p.mu.Unlock()
		if part {
			reset(c)
			continue
		}
		p.wg.Add(1)
		go p.serve(c)
	}
}

// forget drops a finished connection from the live set.
func (p *Proxy) forget(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// reset closes a TCP connection with an RST instead of a graceful FIN, so
// the peer observes ECONNRESET — the signature of a crashed process.
func reset(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Close()
}

// serve handles one client connection under its chosen fault.
func (p *Proxy) serve(client net.Conn) {
	defer p.wg.Done()
	defer p.forget(client)
	fault := p.pick()
	if fault != Pass {
		p.injected.Add(1)
		p.cfg.Log("chaosnet: %s -> %s: injecting %s", client.RemoteAddr(), p.cfg.Target, fault)
	}
	upstream, err := net.DialTimeout("tcp", p.cfg.Target, 5*time.Second)
	if err != nil {
		reset(client)
		return
	}
	defer upstream.Close()
	defer client.Close()

	switch fault {
	case Reset:
		// Let a few request bytes through so the failure lands mid-exchange,
		// then slam the door.
		io.CopyN(upstream, client, int64(16+p.next()%64))
		reset(client)
		return
	case Blackhole:
		// Consume the request, answer nothing; hold until the client goes
		// away (its read returns) or the proxy closes.
		io.Copy(io.Discard, client)
		return
	default:
	}

	done := make(chan struct{}, 2)
	// Upstream direction: requests forward unmodified (Latency delays both
	// directions below via the response path being the slow one that
	// matters; request chunks get the same treatment for symmetry).
	go func() {
		p.pipe(upstream, client, fault, true)
		// Half-close toward the server so it sees EOF on a streaming body.
		if tc, ok := upstream.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	go func() {
		p.pipe(client, upstream, fault, false)
		done <- struct{}{}
	}()
	<-done
	<-done
}

// pipe forwards src to dst under the fault's traffic shaping. request marks
// the client→server direction.
func (p *Proxy) pipe(dst io.Writer, src io.Reader, fault Fault, request bool) {
	switch fault {
	case Latency:
		p.copyChunks(dst, src, request, p.cfg.Latency, 4096)
	case SlowLoris:
		if request {
			p.copyChunks(dst, src, request, 0, 4096)
			return
		}
		p.copyChunks(dst, src, request, p.cfg.SlowPause, p.cfg.SlowChunk)
	case Truncate:
		if request {
			p.copyChunks(dst, src, request, 0, 4096)
			return
		}
		if _, err := io.CopyN(dst, src, int64(p.cfg.TruncateAfter)); err != nil && !errors.Is(err, io.EOF) {
			return
		}
		// Reset the client side so the truncation is abrupt, not a clean FIN
		// that HTTP might mistake for end-of-body.
		if c, ok := dst.(net.Conn); ok {
			reset(c)
		}
	default:
		p.copyChunks(dst, src, request, 0, 4096)
	}
}

// copyChunks forwards src to dst chunk by chunk, pausing before each write
// when pause > 0 and discarding chunks while a one-way partition drops this
// direction. Discarded bytes vanish without closing anything: the sender
// keeps writing into the void, which is what a dead link looks like.
func (p *Proxy) copyChunks(dst io.Writer, src io.Reader, request bool, pause time.Duration, chunk int) {
	buf := make([]byte, chunk)
	for {
		n, err := src.Read(buf)
		if n > 0 && !p.dropping(request) {
			if pause > 0 {
				time.Sleep(pause)
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}
