// Package cpu implements the interval timing model the paper's evaluation
// methodology rests on (§3.1–3.2, citing Keramidas et al. [13]): a phase's
// execution time at frequency f decomposes into a frequency-scaled core
// component and a frequency-independent memory component,
//
//	T(f) = C_cpu / f + T_mem .
//
// C_cpu comes from the dynamic instruction mix (issue width, long-latency
// operations, private-cache hits); T_mem comes from accesses serviced by the
// shared L3 and DRAM, with memory-level parallelism (MLP) factors that give
// prefetches much more overlap than blocking loads — the paper's reason for
// turning loads into prefetches in access phases.
package cpu

import (
	"dae/internal/interp"
	"dae/internal/mem"
)

// Params are the microarchitectural constants of the model.
type Params struct {
	// IssueWidth is the sustained instructions per cycle of the pipeline.
	IssueWidth float64
	// DivCycles is the extra latency charged per FP divide.
	DivCycles float64
	// MathCycles is the extra latency charged per math intrinsic.
	MathCycles float64
	// L2HitCycles is the extra core cycles per load serviced by the L2.
	L2HitCycles float64
	// L3HitNs is the (frequency-independent) time per L3-serviced access.
	L3HitNs float64
	// MemNs is the DRAM access latency.
	MemNs float64
	// MLPLoad is the average overlap of blocking-load DRAM misses.
	MLPLoad float64
	// MLPPrefetch is the average overlap of prefetch DRAM accesses; the
	// non-blocking builtin prefetch retires immediately, so it reaches the
	// MSHR limit (§3.1).
	MLPPrefetch float64
	// MLPStore is the overlap of store (RFO) misses drained from the store
	// buffer; stores rarely stall retirement (§5.2.1 footnote) but do
	// consume memory time, which is what couples LBM's writes to its
	// execute phase (§6.1).
	MLPStore float64
}

// DefaultParams returns constants representative of the evaluation machine.
func DefaultParams() Params {
	return Params{
		IssueWidth:  4,
		DivCycles:   14,
		MathCycles:  18,
		L2HitCycles: 6,
		L3HitNs:     10,
		MemNs:       65,
		MLPLoad:     2.5,
		MLPPrefetch: 7,
		MLPStore:    6,
	}
}

// PhaseWork is the measured work of one task phase: the dynamic instruction
// mix and the cache service levels of its memory accesses.
type PhaseWork struct {
	Counts interp.Counts
	Mem    mem.Stats
}

// Add accumulates other into w.
func (w *PhaseWork) Add(other PhaseWork) {
	w.Counts.Add(other.Counts)
	w.Mem.Add(other.Mem)
}

// Components decomposes the phase into core cycles, blocking memory seconds
// (demand loads serviced by the L3 or DRAM, which stall the pipeline), and
// streaming memory seconds (prefetches and stores, which are non-blocking
// and overlap with computation up to the MSHR/bandwidth limit).
func (p Params) Components(w PhaseWork) (cpuCycles, blockingSec, streamSec float64) {
	c := w.Counts
	cpuCycles = float64(c.Total()) / p.IssueWidth
	cpuCycles += float64(c.FloatDiv) * p.DivCycles
	cpuCycles += float64(c.MathOps) * p.MathCycles
	cpuCycles += float64(w.Mem.At[mem.Load][mem.L2]) * p.L2HitCycles

	blocking := float64(w.Mem.At[mem.Load][mem.L3])*p.L3HitNs +
		float64(w.Mem.At[mem.Load][mem.Mem])*p.MemNs/p.MLPLoad
	stream := float64(w.Mem.At[mem.Prefetch][mem.L3])*p.L3HitNs/p.MLPPrefetch +
		float64(w.Mem.At[mem.Prefetch][mem.Mem])*p.MemNs/p.MLPPrefetch +
		float64(w.Mem.At[mem.Store][mem.L3])*p.L3HitNs/p.MLPStore +
		float64(w.Mem.At[mem.Store][mem.Mem])*p.MemNs/p.MLPStore
	return cpuCycles, blocking * 1e-9, stream * 1e-9
}

// Time returns the phase duration in seconds at core frequency fGHz:
//
//	T(f) = T_blocking + max(C_cpu/f, T_stream)
//
// Blocking loads serialize with everything; the non-blocking prefetch/store
// streams overlap with computation (the out-of-order core keeps issuing
// while the MSHRs drain), so whichever of the two is longer bounds the
// phase.
func (p Params) Time(w PhaseWork, fGHz float64) float64 {
	cpuCycles, blocking, stream := p.Components(w)
	cpuSec := cpuCycles / (fGHz * 1e9)
	if stream > cpuSec {
		return blocking + stream
	}
	return blocking + cpuSec
}

// IPC returns the committed instructions per core cycle at fGHz (the input
// to the paper's Ceff power model). Higher frequency lowers IPC for
// memory-bound phases because the same memory seconds span more cycles.
func (p Params) IPC(w PhaseWork, fGHz float64) float64 {
	cycles := p.Time(w, fGHz) * fGHz * 1e9
	if cycles <= 0 {
		return 0
	}
	return float64(w.Counts.Total()) / cycles
}

// MemBoundedness returns the fraction of the phase's time at fGHz that is
// memory-bound (would not shrink if the core ran infinitely fast).
func (p Params) MemBoundedness(w PhaseWork, fGHz float64) float64 {
	_, blocking, stream := p.Components(w)
	t := p.Time(w, fGHz)
	if t <= 0 {
		return 0
	}
	memOnly := blocking + stream
	if memOnly > t {
		memOnly = t
	}
	return memOnly / t
}
