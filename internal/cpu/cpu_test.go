package cpu

import (
	"math"
	"testing"

	"dae/internal/interp"
	"dae/internal/mem"
)

func computeBoundWork() PhaseWork {
	var w PhaseWork
	w.Counts.Float = 800_000
	w.Counts.Int = 150_000
	w.Counts.Loads = 50_000
	w.Mem.At[mem.Load][mem.L1] = 50_000
	return w
}

func memoryBoundWork() PhaseWork {
	var w PhaseWork
	w.Counts.Int = 20_000
	w.Counts.Loads = 10_000
	w.Mem.At[mem.Load][mem.Mem] = 10_000
	return w
}

func TestComputeBoundScalesWithFrequency(t *testing.T) {
	p := DefaultParams()
	w := computeBoundWork()
	t16 := p.Time(w, 1.6)
	t34 := p.Time(w, 3.4)
	speedup := t16 / t34
	want := 3.4 / 1.6
	if math.Abs(speedup-want)/want > 0.02 {
		t.Errorf("compute-bound speedup = %.3f, want ≈ %.3f", speedup, want)
	}
}

func TestMemoryBoundFlatWithFrequency(t *testing.T) {
	p := DefaultParams()
	w := memoryBoundWork()
	t16 := p.Time(w, 1.6)
	t34 := p.Time(w, 3.4)
	if t16/t34 > 1.05 {
		t.Errorf("memory-bound phase scaled %.3f× with frequency, want ≈ flat", t16/t34)
	}
	if p.MemBoundedness(w, 3.4) < 0.9 {
		t.Errorf("mem-boundedness = %.2f, want > 0.9", p.MemBoundedness(w, 3.4))
	}
}

func TestPrefetchMLPBeatsLoads(t *testing.T) {
	p := DefaultParams()
	var loads, prefs PhaseWork
	loads.Counts.Loads = 10_000
	loads.Mem.At[mem.Load][mem.Mem] = 10_000
	prefs.Counts.Prefetches = 10_000
	prefs.Mem.At[mem.Prefetch][mem.Mem] = 10_000
	tl := p.Time(loads, 1.6)
	tp := p.Time(prefs, 1.6)
	if tp*2 > tl {
		t.Errorf("prefetch phase (%.3g s) should be much faster than load phase (%.3g s)", tp, tl)
	}
}

func TestIPCBehaviour(t *testing.T) {
	p := DefaultParams()
	cb := computeBoundWork()
	mb := memoryBoundWork()
	// Compute-bound IPC approaches the issue width and is stable across f.
	if ipc := p.IPC(cb, 3.4); ipc < 3 {
		t.Errorf("compute-bound IPC = %.2f, want near issue width", ipc)
	}
	if math.Abs(p.IPC(cb, 1.6)-p.IPC(cb, 3.4)) > 0.2 {
		t.Error("compute-bound IPC should not depend on frequency much")
	}
	// Memory-bound IPC is low and drops as frequency rises.
	if p.IPC(mb, 3.4) >= p.IPC(mb, 1.6) {
		t.Error("memory-bound IPC should fall with frequency")
	}
	if p.IPC(mb, 3.4) > 0.5 {
		t.Errorf("memory-bound IPC = %.2f, want < 0.5", p.IPC(mb, 3.4))
	}
}

func TestDivAndMathPenalties(t *testing.T) {
	p := DefaultParams()
	var plain, div PhaseWork
	plain.Counts.Float = 1000
	div.Counts.Float = 900
	div.Counts.FloatDiv = 100
	if p.Time(div, 2.0) <= p.Time(plain, 2.0) {
		t.Error("divides should cost more than adds")
	}
	var math0, math1 PhaseWork
	math0.Counts.Int = 1000
	math1.Counts.Int = 900
	math1.Counts.MathOps = 100
	if p.Time(math1, 2.0) <= p.Time(math0, 2.0) {
		t.Error("math intrinsics should cost more")
	}
}

func TestL2HitCyclesScaleWithFrequency(t *testing.T) {
	p := DefaultParams()
	var w PhaseWork
	w.Counts.Loads = 1000
	w.Mem.At[mem.Load][mem.L2] = 1000
	// L2 hits are core-clocked: time should scale with frequency.
	if p.Time(w, 1.6)/p.Time(w, 3.2) < 1.8 {
		t.Error("L2-hit-bound phase should scale with frequency")
	}
}

func TestAddPhaseWork(t *testing.T) {
	a := computeBoundWork()
	b := memoryBoundWork()
	sum := a
	sum.Add(b)
	if sum.Counts.Total() != a.Counts.Total()+b.Counts.Total() {
		t.Error("counts add")
	}
	if sum.Mem.Total(mem.Load) != a.Mem.Total(mem.Load)+b.Mem.Total(mem.Load) {
		t.Error("mem stats add")
	}
}

func TestInterpCountsIntegration(t *testing.T) {
	var c interp.Counts
	c.Int = 5
	c.Loads = 3
	var w PhaseWork
	w.Counts = c
	if p := DefaultParams(); p.Time(w, 2.0) <= 0 {
		t.Error("time must be positive for nonzero work")
	}
}
