package daed

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dae/internal/analysis"
	"dae/internal/bench"
	daepass "dae/internal/dae"
	"dae/internal/daed/ring"
	"dae/internal/daed/store"
	"dae/internal/eval"
	"dae/internal/fault"
	"dae/internal/fault/inject"
)

// Config configures a Server.
type Config struct {
	// Dir is the root of the persistent store. Traces live under Dir/traces
	// (the eval.TraceCache envelope format — a directory shared with
	// daebench/daerun -cache-dir warms both ways), rendered artifacts under
	// Dir/artifacts. Empty means memory-only.
	Dir string
	// Workers bounds concurrent pipeline executions; <= 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds how many executions may wait for a worker slot
	// before admission control starts rejecting with 429; < 0 means 0
	// (reject as soon as every worker is busy), 0 means the default 64.
	QueueDepth int
	// RunWorkers bounds the per-request collection parallelism (the three
	// run kinds of one app); <= 0 means 1, keeping one admitted request ≈
	// one busy worker so queue capacity stays an honest model of load.
	RunWorkers int
	// DefaultTimeout bounds a request's wait when it names none; 0 means
	// 60s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested waits; 0 means 5m.
	MaxTimeout time.Duration
	// MaxRunTime bounds one pipeline execution regardless of waiters; 0
	// means 10m. It is the server's hard defense against a pathological
	// workload outliving every client.
	MaxRunTime time.Duration
	// MaxSteps, when positive, caps (and defaults) every request's
	// interpreter step budget: a request asking for more (or for no budget
	// at all) is clamped to this ceiling.
	MaxSteps int64
	// StoreMaxBytes, when positive, is the artifact store's disk budget:
	// past it, least-recently-used artifacts are evicted (keys with requests
	// in flight are pinned and never evicted).
	StoreMaxBytes int64
	// Self is this node's advertised base URL (e.g. http://127.0.0.1:8081)
	// — its identity on the cluster ring. Empty (or no Peers) means
	// standalone.
	Self string
	// Peers lists the other cluster members' advertised base URLs. Every
	// member must be configured with the same total membership (its own
	// Self plus its Peers) for the rings to agree.
	Peers []string
	// Replicas is the replication factor R: each content key lives on its
	// ring primary plus R-1 replicas. <= 0 means DefaultReplicas, clamped
	// to the membership size.
	Replicas int
	// RingSeed seeds the consistent-hash ring; 0 means DefaultRingSeed.
	// All members and clients must agree.
	RingSeed uint64
	// RepairInterval is the anti-entropy period: how often the background
	// repair loop walks the local store, pushes under-replicated envelopes
	// to their owners, and releases keys this node no longer owns. 0 means
	// 30s; negative disables the loop.
	RepairInterval time.Duration
	// WarmKeys bounds how many hot keys a joining node streams per prior
	// owner during warmup; <= 0 means 64.
	WarmKeys int
	// DrainTimeout bounds the drain protocol a membership removal triggers
	// in the background (an admin leave); 0 means 30s. SIGTERM drains are
	// bounded by the caller's context instead.
	DrainTimeout time.Duration
	// Log receives serving events; nil discards them.
	Log *log.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.RunWorkers <= 0 {
		c.RunWorkers = 1
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxRunTime <= 0 {
		c.MaxRunTime = 10 * time.Minute
	}
	if c.RepairInterval == 0 {
		c.RepairInterval = 30 * time.Second
	}
	if c.WarmKeys <= 0 {
		c.WarmKeys = drainHandoffKeys
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Log == nil {
		c.Log = log.New(io.Discard, "", 0)
	}
	return c
}

// Server is the daed service: an http.Handler serving the compile/simulate
// pipeline behind a content-addressed artifact store, request singleflight,
// an admission-controlled job queue, and per-tenant quarantine.
type Server struct {
	cfg      Config
	traces   *eval.TraceCache
	store    *store.Store
	q            *queue
	sims         flightMap[*simArtifact]
	comps        flightMap[*compileArtifact]
	traceFlights flightMap[*traceArtifact]
	tenants  tenantRegistry
	stats    stats
	mux      *http.ServeMux
	cluster  *cluster
	draining atomic.Bool
	repWG    sync.WaitGroup // in-flight write-behind replications

	stop         chan struct{}  // closed by Close: stops repair/gossip/warmup
	loopWG       sync.WaitGroup // background loops (repair, gossip, warmup, leave-drain)
	closed       atomic.Bool
	warming      atomic.Bool // join warmup still streaming envelopes
	readRepaired sync.Map    // (epoch, key) pairs already read-repaired
}

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	traceDir, artifactDir := "", ""
	if cfg.Dir != "" {
		traceDir = cfg.Dir + "/traces"
		artifactDir = cfg.Dir + "/artifacts"
	}
	s := &Server{
		cfg:     cfg,
		traces:  eval.NewTraceCache(traceDir),
		store:   store.Open(store.Config{Dir: artifactDir, MaxBytes: cfg.StoreMaxBytes}),
		cluster: newCluster(cfg),
	}
	s.q = newQueue(cfg.Workers, cfg.QueueDepth, &s.stats)
	s.stop = make(chan struct{})
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/compile", s.handleCompile)
	s.mux.HandleFunc("POST /v1/trace", s.handleTrace)
	s.mux.HandleFunc("PUT /v1/artifact", s.handleArtifactPut)
	s.mux.HandleFunc("GET /v1/artifact", s.handleArtifactGet)
	s.mux.HandleFunc("HEAD /v1/artifact", s.handleArtifactHead)
	s.mux.HandleFunc("GET /v1/keys", s.handleKeys)
	s.mux.HandleFunc("POST /v1/members", s.handleMembers)
	s.mux.HandleFunc("GET /v1/ring", s.handleRing)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("DELETE /v1/quarantine", s.handleClearQuarantine)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	if s.cluster != nil && cfg.RepairInterval > 0 {
		s.loopWG.Add(1)
		go s.repairLoop()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the background loops (repair, gossip, warmup) and waits for
// them plus in-flight write-behind replication. It does not drain — call
// Drain first for a graceful exit. Idempotent.
func (s *Server) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	close(s.stop)
	s.loopWG.Wait()
	s.repWG.Wait()
}

// clusterView returns the membership view a request pins at entry (nil on a
// standalone server).
func (s *Server) clusterView() *ring.View {
	if s.cluster == nil {
		return nil
	}
	return s.cluster.current()
}

// boundedCtx returns a context bounded by d that is also canceled when the
// server closes, so background loops never outlive Close.
func (s *Server) boundedCtx(d time.Duration) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	stopper := make(chan struct{})
	go func() {
		select {
		case <-s.stop:
			cancel()
		case <-ctx.Done():
		}
		close(stopper)
	}()
	return ctx, func() { cancel(); <-stopper }
}

// Stats returns a point-in-time snapshot of the serving counters.
func (s *Server) Stats() StatsSnapshot {
	snap := s.stats.snapshot(s.tenants.tenants())
	snap.Store = s.store.Stats()
	snap.Draining = s.draining.Load()
	if c := s.cluster; c != nil {
		v := c.current()
		snap.Ring = &RingSnapshot{
			Epoch:     v.Epoch,
			Self:      c.self,
			Members:   v.Members(),
			Replicas:  c.replicasFor(v),
			Ownership: v.Fractions(),
			Warming:   s.warming.Load(),
		}
	}
	return snap
}

// tenantOf resolves the requesting tenant.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get(TenantHeader); t != "" {
		return t
	}
	return DefaultTenant
}

// writeJSON renders one JSON response.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps a pipeline failure to its HTTP shape and counts it: 429 +
// Retry-After for admission rejections (already counted by the queue), 504
// for deadline/cancellation (counted canceled), 500 with the fault taxonomy
// class otherwise (counted faults).
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	var sat *saturatedError
	switch {
	case errors.As(err, &sat):
		w.Header().Set("Retry-After", strconv.Itoa(int((sat.retryAfter+time.Second-1)/time.Second)))
		s.writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
			Error: err.Error(), Class: "saturated", RetryAfterMs: sat.retryAfter.Milliseconds(),
		})
	case errors.Is(err, fault.ErrTimeout):
		s.stats.canceled.Add(1)
		if r.Context().Err() != nil {
			// The client is gone; nothing we write is deliverable. Let the
			// connection close.
			return
		}
		s.writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: err.Error(), Class: fault.ClassOf(err)})
	default:
		s.stats.faults.Add(1)
		s.writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error(), Class: fault.ClassOf(err)})
	}
}

// clampSteps applies the server's step-budget ceiling to a request budget.
func (s *Server) clampSteps(req int64) int64 {
	if s.cfg.MaxSteps > 0 && (req <= 0 || req > s.cfg.MaxSteps) {
		return s.cfg.MaxSteps
	}
	return req
}

// handleSimulate serves POST /v1/simulate.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.stats.requests.Add(1)
	if s.draining.Load() {
		s.rejectDraining(w)
		return
	}
	var req SimulateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad request: " + err.Error(), Class: "parse"})
		return
	}
	req.MaxSteps = s.clampSteps(req.MaxSteps)
	p, err := req.plan()
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Class: "parse"})
		return
	}
	tenant := tenantOf(r)
	// Pin the key for the life of the request: budget eviction must never
	// race an in-flight execution (or a hit being re-read) on this key.
	s.store.Pin(p.key)
	defer s.store.Unpin(p.key)
	ctx, cancel := context.WithTimeout(r.Context(), req.timeout(s.cfg.DefaultTimeout, s.cfg.MaxTimeout))
	defer cancel()

	// Fault injection and prior tenant quarantine route to the
	// tenant-scoped path: isolated from the shared store in both
	// directions, so one tenant's poison is never another tenant's result.
	if prior := s.tenants.quarantined(tenant, p.app.Name); len(p.rules) > 0 || len(prior) > 0 {
		s.simulateTenant(w, r, ctx, p, tenant, prior, start)
		return
	}

	v := s.clusterView() // pin the membership epoch for this request
	if b, ok := s.store.Get(p.key); ok {
		var art simArtifact
		if err := json.Unmarshal(b, &art); err == nil {
			s.stats.storeHits.Add(1)
			s.respondSim(w, &art, p.key, tenant, true, false, start)
			s.maybeReadRepair(v, p.key, b)
			return
		}
	}
	// A stale epoch-aware client is redirected to the current view (421)
	// instead of served off-placement.
	if s.notOwnerRedirect(w, r, v, p.key) {
		return
	}
	// An owner that misses the envelope pulls it from a co-owner before
	// paying a pipeline execution (read-repair, pull direction).
	if b, ok := s.pullFromReplicas(ctx, v, p.key); ok {
		var art simArtifact
		if err := json.Unmarshal(b, &art); err == nil {
			s.stats.storeHits.Add(1)
			s.respondSim(w, &art, p.key, tenant, true, false, start)
			return
		}
	}
	// A miss on a key this node does not own goes to the owners first: they
	// likely hold the artifact, and executing there keeps placement honest.
	// If no owner can serve, fall through and execute locally.
	if v != nil && s.proxy(w, r.WithContext(ctx), v, "/v1/simulate", p.key, &req) {
		return
	}
	for {
		f, leader := s.sims.join(p.key, func(pctx context.Context) (*simArtifact, error) {
			return s.runSimulate(pctx, p, true)
		})
		art, err := f.wait(ctx)
		if err != nil {
			if !leader && errors.Is(err, fault.ErrTimeout) && ctx.Err() == nil {
				// The flight we joined died under someone else's deadline;
				// ours is alive, so retry on a fresh flight.
				continue
			}
			s.writeError(w, r, err)
			return
		}
		if !leader {
			s.stats.collapsed.Add(1)
		}
		s.respondSim(w, art, p.key, tenant, false, !leader, start)
		return
	}
}

// respondSim assembles and writes one successful simulate response,
// recording any quarantine under the requesting tenant.
func (s *Server) respondSim(w http.ResponseWriter, art *simArtifact, key, tenant string, cacheHit, collapsed bool, start time.Time) {
	if len(art.Quarantined) > 0 {
		s.tenants.record(tenant, art.App, art.Quarantined)
	}
	resp := &SimulateResponse{
		App:         art.App,
		Report:      art.Report,
		Degraded:    len(art.Quarantined) > 0,
		Quarantined: art.Quarantined,
		CacheHit:    cacheHit,
		Collapsed:   collapsed,
		Key:         key,
		ElapsedMs:   float64(time.Since(start)) / float64(time.Millisecond),
	}
	if resp.Degraded {
		s.stats.degraded.Add(1)
	}
	s.stats.observe(resp.ElapsedMs)
	s.writeJSON(w, http.StatusOK, resp)
}

// simulateTenant serves the tenant-scoped path: requests carrying fault
// injection or arriving from a tenant with quarantine history. The
// execution still shares the trace cache (healthy traces are
// injection-invariant and degraded traces are never cached, so the shared
// cache cannot be poisoned), but its artifacts are never stored and its
// quarantines are recorded against this tenant only.
func (s *Server) simulateTenant(w http.ResponseWriter, r *http.Request, ctx context.Context, p *simPlan, tenant string, prior map[string]string, start time.Time) {
	art, err := s.runSimulate(ctx, p, false)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	if len(art.Quarantined) > 0 {
		s.tenants.record(tenant, art.App, art.Quarantined)
	}
	merged := make(map[string]string, len(prior)+len(art.Quarantined))
	for k, v := range prior {
		merged[k] = v
	}
	for k, v := range art.Quarantined {
		merged[k] = v
	}
	resp := &SimulateResponse{
		App:         art.App,
		Report:      art.Report,
		Degraded:    len(merged) > 0,
		Quarantined: merged,
		Key:         p.key,
		ElapsedMs:   float64(time.Since(start)) / float64(time.Millisecond),
	}
	if resp.Degraded {
		s.stats.degraded.Add(1)
	}
	s.stats.observe(resp.ElapsedMs)
	s.writeJSON(w, http.StatusOK, resp)
}

// runSimulate executes the collect+evaluate pipeline for one plan under the
// admission-controlled queue. store controls whether a clean artifact is
// persisted in the shared store (the tenant-scoped path never stores).
func (s *Server) runSimulate(ctx context.Context, p *simPlan, storeArtifact bool) (*simArtifact, error) {
	if err := s.q.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.q.release()
	s.stats.executions.Add(1)
	s.stats.inFlight.Add(1)
	defer s.stats.inFlight.Add(-1)
	ctx, cancel := context.WithTimeout(ctx, s.cfg.MaxRunTime)
	defer cancel()

	opts := eval.CollectOptions{Workers: s.cfg.RunWorkers, Cache: s.traces}
	if p.refine {
		opts.Refine = &eval.RefineSpec{Options: daepass.DefaultRefine(), PerTask: 4}
	}
	if len(p.rules) > 0 {
		// Injection must observe a real collection: a warm shared trace
		// cache would serve the healthy trace and the fault would never
		// fire. Injected requests collect uncached — and never write, so
		// their degraded traces cannot reach other tenants either.
		opts.Cache = nil
		in := inject.New(p.rules...)
		opts.Inject = in.Hook()
		opts.InjectPhase = in.PhaseFunc()
	}
	data, err := eval.CollectWith(ctx, p.app, p.cfg, opts)
	if err != nil {
		return nil, err
	}
	art := &simArtifact{App: p.app.Name, Report: eval.FormatRunReport(data, p.machine)}
	for _, row := range eval.DegradationRows([]*eval.AppData{data}) {
		for task, kind := range row.Quarantined {
			if art.Quarantined == nil {
				art.Quarantined = make(map[string]string)
			}
			art.Quarantined[task] = kind
		}
	}
	if storeArtifact && len(art.Quarantined) == 0 {
		if b, err := json.Marshal(art); err == nil {
			if err := s.store.Put(p.key, b); err != nil {
				s.cfg.Log.Printf("daed: artifact store write failed for %s: %v", p.key, err)
			}
			s.replicate(p.key, b)
		}
	}
	return art, nil
}

// handleCompile serves POST /v1/compile.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.stats.requests.Add(1)
	if s.draining.Load() {
		s.rejectDraining(w)
		return
	}
	var req CompileRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad request: " + err.Error(), Class: "parse"})
		return
	}
	app, err := bench.AppByName(req.App)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Class: "parse"})
		return
	}
	key := req.compileKey()
	s.store.Pin(key)
	defer s.store.Unpin(key)
	ctx, cancel := context.WithTimeout(r.Context(), req.timeout(s.cfg.DefaultTimeout, s.cfg.MaxTimeout))
	defer cancel()

	v := s.clusterView()
	if b, ok := s.store.Get(key); ok {
		var art compileArtifact
		if err := json.Unmarshal(b, &art); err == nil {
			s.stats.storeHits.Add(1)
			s.respondCompile(w, &art, key, true, false, start)
			s.maybeReadRepair(v, key, b)
			return
		}
	}
	if s.notOwnerRedirect(w, r, v, key) {
		return
	}
	if b, ok := s.pullFromReplicas(ctx, v, key); ok {
		var art compileArtifact
		if err := json.Unmarshal(b, &art); err == nil {
			s.stats.storeHits.Add(1)
			s.respondCompile(w, &art, key, true, false, start)
			return
		}
	}
	if v != nil && s.proxy(w, r.WithContext(ctx), v, "/v1/compile", key, &req) {
		return
	}
	for {
		f, leader := s.comps.join(key, func(pctx context.Context) (*compileArtifact, error) {
			return s.runCompile(pctx, app, req.Refine, key)
		})
		art, err := f.wait(ctx)
		if err != nil {
			if !leader && errors.Is(err, fault.ErrTimeout) && ctx.Err() == nil {
				continue
			}
			s.writeError(w, r, err)
			return
		}
		if !leader {
			s.stats.collapsed.Add(1)
		}
		s.respondCompile(w, art, key, false, !leader, start)
		return
	}
}

func (s *Server) respondCompile(w http.ResponseWriter, art *compileArtifact, key string, cacheHit, collapsed bool, start time.Time) {
	resp := &CompileResponse{
		App:        art.App,
		Strategies: art.Strategies,
		Purity:     art.Purity,
		Modules:    art.Modules,
		CacheHit:   cacheHit,
		Collapsed:  collapsed,
		Key:        key,
		ElapsedMs:  float64(time.Since(start)) / float64(time.Millisecond),
	}
	s.stats.observe(resp.ElapsedMs)
	s.writeJSON(w, http.StatusOK, resp)
}

// runCompile builds one app and renders its static artifacts: the
// generation-decision report, per-task purity verdicts, and the generated
// access variants' IR listings. Compilation is deterministic, so the
// artifact always enters the shared store.
func (s *Server) runCompile(ctx context.Context, app bench.App, refine bool, key string) (art *compileArtifact, err error) {
	if err := s.q.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.q.release()
	s.stats.executions.Add(1)
	s.stats.inFlight.Add(1)
	defer s.stats.inFlight.Add(-1)
	defer fault.Recover(&err, "compile")

	b, err := app.Build(bench.Auto)
	if err != nil {
		return nil, err
	}
	if refine {
		if _, err := b.Refine(daepass.DefaultRefine(), 4); err != nil {
			return nil, err
		}
	}
	art = &compileArtifact{
		App:        app.Name,
		Strategies: eval.FormatStrategies([]*eval.AppData{{Name: app.Name, Results: b.Results}}),
		Modules:    make(map[string]string),
	}
	names := make([]string, 0, len(b.Results))
	for n := range b.Results {
		names = append(names, n)
	}
	sort.Strings(names)
	purity := ""
	for _, n := range names {
		res := b.Results[n]
		if res.Access == nil {
			purity += fmt.Sprintf("task @%s: no access version (%s)\n", n, res.Reason)
			continue
		}
		diags := analysis.VerifyAccessPurity(res.Access)
		if analysis.HasErrors(diags) {
			purity += fmt.Sprintf("task @%s: purity FAIL\n%s", n, analysis.Format(diags))
		} else {
			purity += fmt.Sprintf("task @%s: purity PASS (strategy=%s)\n", n, res.Strategy)
		}
		art.Modules[n] = res.Access.String()
	}
	art.Purity = purity
	if b, err := json.Marshal(art); err == nil {
		if err := s.store.Put(key, b); err != nil {
			s.cfg.Log.Printf("daed: artifact store write failed for %s: %v", key, err)
		}
		s.replicate(key, b)
	}
	return art, nil
}

// handleStats serves GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Stats())
}

// handleClearQuarantine serves DELETE /v1/quarantine: it lifts every
// quarantine recorded for the requesting tenant (an explicit admin action,
// mirroring how runtime quarantine is monotone within a trace). Quarantine
// is per-node process state, so on a cluster member the lift fans out to
// every peer — one DELETE unblocks the tenant cluster-wide.
func (s *Server) handleClearQuarantine(w http.ResponseWriter, r *http.Request) {
	tenant := tenantOf(r)
	n := s.tenants.clear(tenant)
	n += s.clearQuarantinePeers(r, tenant)
	s.writeJSON(w, http.StatusOK, map[string]any{"tenant": tenant, "cleared": n})
}
