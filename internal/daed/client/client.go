// Package client implements the cluster-aware daed client: the resilience
// layer between a caller (daeload, daerun -server, daebench -server, the
// chaos harness) and a set of daed nodes. It routes each request to the
// nodes that own its content key on the shared consistent-hash ring, tracks
// per-node health (consecutive-failure ejection with probation probes),
// backs off saturated nodes per their Retry-After hint with seeded jitter,
// and fails over to replicas on transport errors, 5xx, and draining nodes —
// so a node killed mid-load costs latency, never an accepted request.
//
// All failover decisions ride on the fault taxonomy: transport errors are
// classified by fault.ClassifyTransport, and the jittered exponential
// backoff between full failover rounds is PR-4's fault.Backoff, seeded so
// every run of a test or load drill sleeps the same schedule.
package client

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dae/internal/daed"
	"dae/internal/daed/ring"
	"dae/internal/fault"
)

// Config configures a Cluster client.
type Config struct {
	// Nodes lists the cluster members' base URLs — the same membership every
	// daed node was configured with, so client and servers agree on the ring.
	Nodes []string
	// Seed is the ring seed; 0 means daed.DefaultRingSeed. Must match the
	// servers'.
	Seed uint64
	// Replicas is the replication factor R; <= 0 means daed.DefaultReplicas.
	// The first R ring nodes for a key are its owners (preferred order);
	// the remaining nodes are last-resort fallbacks.
	Replicas int
	// FailureThreshold is how many consecutive transport/5xx failures eject
	// a node; <= 0 means 3.
	FailureThreshold int
	// Probation is how long an ejected node sits out before the next
	// request is allowed to probe it; <= 0 means 2s.
	Probation time.Duration
	// BackoffBase is the base of the jittered exponential backoff between
	// full failover rounds; <= 0 means 25ms.
	BackoffBase time.Duration
	// BackoffSeed seeds the backoff jitter and the Retry-After jitter;
	// 0 means 1.
	BackoffSeed uint64
	// MaxRounds bounds how many full passes over the preference list a
	// request makes before giving up with the last error; <= 0 means 3.
	MaxRounds int
	// MaxSheds bounds how many 429 + Retry-After sleep/retry cycles one
	// request performs; <= 0 means 16. The request context's deadline is
	// the real bound — this is the backstop when there is none.
	MaxSheds int
	// AttemptTimeout, when positive, bounds each individual node attempt
	// with its own deadline. A node behind a one-way partition hangs
	// instead of erroring; without an attempt bound that hang consumes the
	// whole request deadline. With one, the attempt times out and the
	// client fails over to a replica.
	AttemptTimeout time.Duration
	// Pin disables epoch adoption: no epoch header is sent and 421
	// redirects are treated as plain failovers. Use it when the addresses
	// this client dials differ from the cluster's advertised member URLs
	// (e.g. chaos proxies fronting each node) — adopting advertised URLs
	// would silently route around the proxies.
	Pin bool
	// HTTP is the underlying client; nil means http.DefaultClient semantics
	// (per-request deadlines travel via context).
	HTTP *http.Client
}

// Counters is a snapshot of the client's resilience accounting.
type Counters struct {
	// Sheds counts 429 admission rejections encountered (each one slept out
	// per the server's Retry-After hint and re-issued).
	Sheds int64
	// Retries counts request re-issues after a shed backoff.
	Retries int64
	// Failovers counts node switches forced by transport errors, 5xx, or a
	// draining node.
	Failovers int64
	// Ejections counts nodes placed on probation by consecutive failures.
	Ejections int64
	// Redirects counts 421 "not owner, epoch N" answers that made the
	// client adopt a newer membership view and re-route.
	Redirects int64
}

// node is the per-member health record.
type node struct {
	url string

	mu           sync.Mutex
	fails        int       // consecutive failures
	ejectedUntil time.Time // zero when healthy
}

// state classifies a node for the routing loop.
type nodeState int

const (
	healthy  nodeState = iota
	probing            // probation expired; one request may probe it
	ejected
)

func (n *node) state(threshold int, now time.Time) nodeState {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.fails < threshold {
		return healthy
	}
	if now.After(n.ejectedUntil) {
		return probing
	}
	return ejected
}

// fail records one failure, ejecting the node when it crosses the
// threshold (and re-ejecting a failed probe). Reports whether this call
// ejected it.
func (n *node) fail(threshold int, probation time.Duration, now time.Time) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	wasEjected := n.fails >= threshold
	n.fails++
	if n.fails >= threshold {
		n.ejectedUntil = now.Add(probation)
	}
	return !wasEjected && n.fails >= threshold
}

// ok restores the node to full health (a successful probe clears history).
func (n *node) ok() {
	n.mu.Lock()
	n.fails = 0
	n.ejectedUntil = time.Time{}
	n.mu.Unlock()
}

// Cluster is a failover-aware client over a daed cluster. It is safe for
// concurrent use; the tenant travels per call, so one Cluster serves every
// tenant of a load generator.
type Cluster struct {
	cfg Config

	// viewMu guards the adoptive membership view: the epoch, the ring built
	// from it, and the per-member health records (grown on adoption, never
	// shrunk — a removed member keeps its history in case it rejoins).
	viewMu sync.Mutex
	epoch  uint64
	ring   *ring.Ring
	nodes  map[string]*node

	rngMu sync.Mutex
	rng   uint64

	sheds     atomic.Int64
	retries   atomic.Int64
	failovers atomic.Int64
	ejections atomic.Int64
	redirects atomic.Int64
}

// New builds a Cluster client over cfg. A single-node Nodes list degrades
// gracefully to "retry the one node with backoff".
func New(cfg Config) *Cluster {
	if cfg.Seed == 0 {
		cfg.Seed = daed.DefaultRingSeed
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = daed.DefaultReplicas
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 3
	}
	if cfg.Probation <= 0 {
		cfg.Probation = 2 * time.Second
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 25 * time.Millisecond
	}
	if cfg.BackoffSeed == 0 {
		cfg.BackoffSeed = 1
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 3
	}
	if cfg.MaxSheds <= 0 {
		cfg.MaxSheds = 16
	}
	cl := &Cluster{
		cfg: cfg,
		// Epoch 1 matches every correctly-booted cluster's initial view, so
		// a fresh client neither redirects on a fresh cluster nor misses a
		// redirect on an evolved one.
		epoch: 1,
		ring:  ring.New(cfg.Nodes, 0, cfg.Seed),
		nodes: make(map[string]*node, len(cfg.Nodes)),
		rng:   cfg.BackoffSeed,
	}
	if cl.cfg.Replicas > cl.ring.Len() {
		cl.cfg.Replicas = cl.ring.Len()
	}
	for _, u := range cl.ring.Members() {
		cl.nodes[u] = &node{url: u}
	}
	return cl
}

// Epoch returns the membership epoch the client currently routes under.
func (cl *Cluster) Epoch() uint64 {
	cl.viewMu.Lock()
	defer cl.viewMu.Unlock()
	return cl.epoch
}

// Members returns the current view's member URLs in canonical order.
func (cl *Cluster) Members() []string {
	cl.viewMu.Lock()
	defer cl.viewMu.Unlock()
	return cl.ring.Members()
}

// adopt installs a strictly newer membership view, growing the health map
// for members this client has not seen before. Pinned clients never adopt.
func (cl *Cluster) adopt(epoch uint64, members []string) bool {
	if cl.cfg.Pin || epoch == 0 || len(members) == 0 {
		return false
	}
	cl.viewMu.Lock()
	defer cl.viewMu.Unlock()
	if epoch <= cl.epoch {
		return false
	}
	cl.epoch = epoch
	cl.ring = ring.New(members, 0, cl.cfg.Seed)
	for _, u := range cl.ring.Members() {
		if _, ok := cl.nodes[u]; !ok {
			cl.nodes[u] = &node{url: u}
		}
	}
	return true
}

// Refresh fetches the current membership from the first node that answers
// GET /v1/ring and adopts it if newer. Pinned clients no-op: their dialed
// addresses are not the advertised membership.
func (cl *Cluster) Refresh(ctx context.Context) error {
	if cl.cfg.Pin {
		return nil
	}
	var lastErr error
	for _, n := range cl.prefs("ring") {
		c := &daed.Client{Base: n.url, HTTP: cl.cfg.HTTP}
		r, err := c.Ring(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		cl.adopt(r.Epoch, r.Members)
		return nil
	}
	return lastErr
}

// epochHeader renders the current epoch for the request header ("" when
// pinned, so the servers treat the client as legacy).
func (cl *Cluster) epochHeader() string {
	if cl.cfg.Pin {
		return ""
	}
	return strconv.FormatUint(cl.Epoch(), 10)
}

// Counters returns a snapshot of the resilience accounting.
func (cl *Cluster) Counters() Counters {
	return Counters{
		Sheds:     cl.sheds.Load(),
		Retries:   cl.retries.Load(),
		Failovers: cl.failovers.Load(),
		Ejections: cl.ejections.Load(),
		Redirects: cl.redirects.Load(),
	}
}

// jitter returns a seeded pseudo-random duration in [0, max). xorshift64,
// mutex-guarded: deterministic for a fixed seed and call order.
func (cl *Cluster) jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	cl.rngMu.Lock()
	x := cl.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	cl.rng = x
	cl.rngMu.Unlock()
	return time.Duration(x % uint64(max))
}

// sleep waits d (or until ctx expires).
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return fault.Wrap(fault.KindTimeout, ctx.Err())
	case <-t.C:
		return nil
	}
}

// prefs returns the node preference order for key under the current view:
// the R owners first, the remaining members after — availability beats
// placement, so a request whose owners are all down still lands somewhere.
func (cl *Cluster) prefs(key string) []*node {
	cl.viewMu.Lock()
	defer cl.viewMu.Unlock()
	order := cl.ring.Nodes(key, 0)
	out := make([]*node, 0, len(order))
	for _, u := range order {
		out = append(out, cl.nodes[u])
	}
	return out
}

// maxAdopts bounds how many 421 redirect adoptions one request performs:
// each adoption restarts routing under the fresh view, and a healthy
// cluster is never more than a few epochs ahead of a client.
const maxAdopts = 4

// dispatch routes one request: walk the preference list, skipping ejected
// nodes (unless every node is ejected — then try them all anyway, because
// an answer from a suspect node beats no answer), shed-backoff on 429,
// adopt-and-re-route on 421 (stale membership epoch), fail over on
// transport/5xx/draining/attempt-timeout, and between full rounds sleep a
// jittered exponential backoff.
func (cl *Cluster) dispatch(ctx context.Context, tenant, key string, call func(ctx context.Context, c *daed.Client) error) error {
	backoff := fault.Backoff(cl.cfg.BackoffBase, cl.cfg.BackoffSeed^uint64(len(key)))
	var lastErr error
	sheds, adopts := 0, 0
restart:
	prefs := cl.prefs(key)
	if len(prefs) == 0 {
		return errors.New("client: no cluster nodes configured")
	}
	for round := 0; round < cl.cfg.MaxRounds; round++ {
		if round > 0 {
			if err := sleepCtx(ctx, backoff(round-1)); err != nil {
				return err
			}
		}
		// Two passes per round: healthy/probing nodes first, then — only if
		// nothing answered — the ejected ones as a last resort.
		for _, desperate := range []bool{false, true} {
			for _, n := range prefs {
				st := n.state(cl.cfg.FailureThreshold, time.Now())
				if st == ejected && !desperate {
					continue
				}
				if err := ctx.Err(); err != nil {
					if lastErr != nil {
						return lastErr
					}
					return fault.Wrap(fault.KindTimeout, err)
				}
			issue:
				actx := ctx
				acancel := context.CancelFunc(func() {})
				if cl.cfg.AttemptTimeout > 0 {
					actx, acancel = context.WithTimeout(ctx, cl.cfg.AttemptTimeout)
				}
				err := call(actx, &daed.Client{Base: n.url, Tenant: tenant, Epoch: cl.epochHeader(), HTTP: cl.cfg.HTTP})
				acancel()
				if err == nil {
					n.ok()
					return nil
				}
				var re *daed.RemoteError
				if errors.As(err, &re) {
					switch {
					case re.Saturated():
						// Admission shed: the node is healthy, just busy.
						// Sleep out its hint (plus jitter so a fleet of
						// clients does not re-arrive in lockstep) and
						// re-issue to the same node.
						cl.sheds.Add(1)
						sheds++
						if sheds > cl.cfg.MaxSheds {
							return err
						}
						hint := re.RetryAfter
						if hint <= 0 {
							hint = cl.cfg.BackoffBase
						}
						if err := sleepCtx(ctx, hint+cl.jitter(hint/2+time.Millisecond)); err != nil {
							return err
						}
						cl.retries.Add(1)
						goto issue
					case re.Status == http.StatusMisdirectedRequest:
						// Not the owner at a newer epoch: adopt the view the
						// node answered with and re-route immediately (no
						// backoff — the node is healthy, the routing was
						// stale).
						lastErr = err
						if adopts < maxAdopts && cl.adopt(re.Body.Epoch, re.Body.Members) {
							adopts++
							cl.redirects.Add(1)
							goto restart
						}
						// Pinned, malformed, or already-adopted: plain
						// failover.
						cl.failovers.Add(1)
						continue
					case re.Status == http.StatusServiceUnavailable:
						// Draining (or dying): eject immediately so other
						// requests skip it, and fail over.
						n.mu.Lock()
						n.fails = cl.cfg.FailureThreshold
						n.ejectedUntil = time.Now().Add(cl.cfg.Probation)
						n.mu.Unlock()
						cl.ejections.Add(1)
						cl.failovers.Add(1)
						lastErr = err
						continue
					case re.Status/100 == 5:
						if n.fail(cl.cfg.FailureThreshold, cl.cfg.Probation, time.Now()) {
							cl.ejections.Add(1)
						}
						cl.failovers.Add(1)
						lastErr = err
						continue
					default:
						// 4xx: the request itself is wrong; no node will
						// differ.
						return err
					}
				}
				cerr := fault.ClassifyTransport(err)
				if errors.Is(cerr, fault.ErrTimeout) {
					if ctx.Err() == nil && cl.cfg.AttemptTimeout > 0 {
						// The per-attempt budget fired while the request
						// deadline is alive: the node is hung (blackhole,
						// one-way partition). Fail over.
						if n.fail(cl.cfg.FailureThreshold, cl.cfg.Probation, time.Now()) {
							cl.ejections.Add(1)
						}
						cl.failovers.Add(1)
						lastErr = cerr
						continue
					}
					// Our own deadline, not the node's fault.
					if lastErr != nil {
						return lastErr
					}
					return cerr
				}
				if errors.Is(cerr, fault.ErrTransport) {
					if n.fail(cl.cfg.FailureThreshold, cl.cfg.Probation, time.Now()) {
						cl.ejections.Add(1)
					}
					cl.failovers.Add(1)
					lastErr = cerr
					continue
				}
				// Unclassified (decode failure, truncated body): treat like a
				// node fault and fail over — a replica may answer cleanly.
				if n.fail(cl.cfg.FailureThreshold, cl.cfg.Probation, time.Now()) {
					cl.ejections.Add(1)
				}
				cl.failovers.Add(1)
				lastErr = err
				continue
			}
		}
	}
	return lastErr
}

// Simulate runs one simulate request against the cluster, routed by its
// content key.
func (cl *Cluster) Simulate(ctx context.Context, tenant string, req *daed.SimulateRequest) (*daed.SimulateResponse, error) {
	key, err := req.Key()
	if err != nil {
		return nil, err
	}
	var resp *daed.SimulateResponse
	err = cl.dispatch(ctx, tenant, key, func(ctx context.Context, c *daed.Client) error {
		r, err := c.Simulate(ctx, req)
		if err == nil {
			resp = r
		}
		return err
	})
	return resp, err
}

// Compile runs one compile request against the cluster.
func (cl *Cluster) Compile(ctx context.Context, tenant string, req *daed.CompileRequest) (*daed.CompileResponse, error) {
	key, _ := req.Key()
	var resp *daed.CompileResponse
	err := cl.dispatch(ctx, tenant, key, func(ctx context.Context, c *daed.Client) error {
		r, err := c.Compile(ctx, req)
		if err == nil {
			resp = r
		}
		return err
	})
	return resp, err
}

// Trace fetches one app's collected trace set from the cluster.
func (cl *Cluster) Trace(ctx context.Context, tenant string, req *daed.TraceRequest) (*daed.TraceResponse, error) {
	key, err := req.Key()
	if err != nil {
		return nil, err
	}
	var resp *daed.TraceResponse
	err = cl.dispatch(ctx, tenant, key, func(ctx context.Context, c *daed.Client) error {
		r, err := c.Trace(ctx, req)
		if err == nil {
			resp = r
		}
		return err
	})
	return resp, err
}

// Stats fetches serving counters from the first node that answers.
func (cl *Cluster) Stats(ctx context.Context) (*daed.StatsSnapshot, error) {
	var resp *daed.StatsSnapshot
	err := cl.dispatch(ctx, "", "stats", func(ctx context.Context, c *daed.Client) error {
		r, err := c.Stats(ctx)
		if err == nil {
			resp = r
		}
		return err
	})
	return resp, err
}

// StatsAll fetches serving counters from every reachable member, keyed by
// the member's advertised URL. Partial results are returned; unreachable
// members are simply absent. Used by load drivers to sum cluster-wide
// repair and handoff counters at exit.
func (cl *Cluster) StatsAll(ctx context.Context) map[string]*daed.StatsSnapshot {
	out := make(map[string]*daed.StatsSnapshot)
	for _, u := range cl.Members() {
		c := &daed.Client{Base: u, HTTP: cl.cfg.HTTP}
		if s, err := c.Stats(ctx); err == nil {
			out[u] = s
		}
	}
	return out
}

// ClearQuarantine lifts the tenant's quarantines on every reachable node
// (quarantine state is per-node), returning the total cleared.
func (cl *Cluster) ClearQuarantine(ctx context.Context, tenant string) (int, error) {
	total := 0
	var lastErr error
	for _, u := range cl.Members() {
		c := &daed.Client{Base: u, Tenant: tenant, HTTP: cl.cfg.HTTP}
		n, err := c.ClearQuarantine(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		total += n
	}
	if total == 0 && lastErr != nil {
		return 0, lastErr
	}
	return total, nil
}
