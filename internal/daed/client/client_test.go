package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"dae/internal/daed"
)

// fakeNode is a scripted daed stand-in: a handler that answers /v1/simulate
// according to a swappable per-request script and counts hits.
type fakeNode struct {
	ts      *httptest.Server
	hits    atomic.Int64
	handler atomic.Value // func(n int, w http.ResponseWriter, r *http.Request)
}

func newFakeNode(t *testing.T, handler func(n int, w http.ResponseWriter, r *http.Request)) *fakeNode {
	t.Helper()
	f := &fakeNode{}
	f.handler.Store(handler)
	f.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(f.hits.Add(1))
		f.handler.Load().(func(int, http.ResponseWriter, *http.Request))(n, w, r)
	}))
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakeNode) set(handler func(n int, w http.ResponseWriter, r *http.Request)) {
	f.handler.Store(handler)
}

// primaryFor returns the fake node that is first in the cluster's
// preference order for req's key — the node a failure test must sabotage
// for the failover path to be exercised deterministically.
func primaryFor(t *testing.T, cl *Cluster, req *daed.SimulateRequest, nodes ...*fakeNode) *fakeNode {
	t.Helper()
	key, err := req.Key()
	if err != nil {
		t.Fatal(err)
	}
	first := cl.prefs(key)[0].url
	for _, n := range nodes {
		if n.ts.URL == first {
			return n
		}
	}
	t.Fatalf("no fake node matches primary %s", first)
	return nil
}

func okSim(w http.ResponseWriter, report string) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(&daed.SimulateResponse{App: "CG", Report: report})
}

func simReq() *daed.SimulateRequest { return &daed.SimulateRequest{App: "CG", Cores: 2} }

func testConfig(nodes ...string) Config {
	return Config{
		Nodes:            nodes,
		FailureThreshold: 2,
		Probation:        50 * time.Millisecond,
		BackoffBase:      time.Millisecond,
		BackoffSeed:      7,
	}
}

// TestFailoverOnNodeDeath: with one node hard-closed, every request still
// succeeds via the survivors, and the dead node is ejected after its
// failure threshold instead of being dialed forever.
func TestFailoverOnNodeDeath(t *testing.T) {
	alive := func(n int, w http.ResponseWriter, r *http.Request) { okSim(w, "report") }
	a, b, c := newFakeNode(t, alive), newFakeNode(t, alive), newFakeNode(t, alive)
	cl := New(testConfig(a.ts.URL, b.ts.URL, c.ts.URL))
	ctx := context.Background()

	// SIGKILL stand-in: close the key's primary, so every request must fail
	// over. Connections are refused from here on.
	primaryFor(t, cl, simReq(), a, b, c).ts.Close()
	for i := 0; i < 12; i++ {
		resp, err := cl.Simulate(ctx, "t", simReq())
		if err != nil {
			t.Fatalf("request %d lost after node death: %v", i, err)
		}
		if resp.Report != "report" {
			t.Fatalf("request %d: wrong payload %q", i, resp.Report)
		}
	}
	got := cl.Counters()
	if got.Failovers == 0 {
		t.Fatalf("no failovers recorded despite a dead node: %+v", got)
	}
	if got.Ejections == 0 {
		t.Fatalf("dead node was never ejected: %+v", got)
	}
}

// TestShedBackoffHonorsRetryAfter: a 429 with a Retry-After hint is slept
// out (with jitter) and the request re-issued to the same node — counted as
// a shed + retry, never as loss or failover.
func TestShedBackoffHonorsRetryAfter(t *testing.T) {
	const hintMs = 30
	n := newFakeNode(t, func(hit int, w http.ResponseWriter, r *http.Request) {
		if hit == 1 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(&daed.ErrorResponse{
				Error: "saturated", Class: "saturated", RetryAfterMs: hintMs,
			})
			return
		}
		okSim(w, "after-shed")
	})
	cl := New(testConfig(n.ts.URL))
	start := time.Now()
	resp, err := cl.Simulate(context.Background(), "t", simReq())
	if err != nil {
		t.Fatalf("shed request failed: %v", err)
	}
	if resp.Report != "after-shed" {
		t.Fatalf("wrong payload %q", resp.Report)
	}
	if elapsed := time.Since(start); elapsed < hintMs*time.Millisecond {
		t.Fatalf("retried after %v, before the %dms hint elapsed", elapsed, hintMs)
	}
	got := cl.Counters()
	if got.Sheds != 1 || got.Retries != 1 || got.Failovers != 0 {
		t.Fatalf("counters = %+v, want 1 shed, 1 retry, 0 failovers", got)
	}
}

// TestEjectionAndProbation: a persistently failing node is ejected after
// FailureThreshold consecutive failures, skipped while on probation, and
// probed again after probation expires.
func TestEjectionAndProbation(t *testing.T) {
	ok := func(hit int, w http.ResponseWriter, r *http.Request) { okSim(w, "ok") }
	n1, n2 := newFakeNode(t, ok), newFakeNode(t, ok)
	cl := New(testConfig(n1.ts.URL, n2.ts.URL))
	ctx := context.Background()
	bad := primaryFor(t, cl, simReq(), n1, n2)
	bad.set(func(hit int, w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	})

	for i := 0; i < 10; i++ {
		if _, err := cl.Simulate(ctx, "t", simReq()); err != nil {
			t.Fatalf("request %d failed despite a healthy peer: %v", i, err)
		}
	}
	hitsBeforeProbation := bad.hits.Load()
	// At most FailureThreshold hits before ejection; while ejected the bad
	// node must not be dialed (the healthy peer absorbs everything).
	if hitsBeforeProbation > 2 {
		t.Fatalf("ejected node was dialed %d times, threshold is 2", hitsBeforeProbation)
	}
	if cl.Counters().Ejections != 1 {
		t.Fatalf("ejections = %d, want 1", cl.Counters().Ejections)
	}
	time.Sleep(60 * time.Millisecond) // probation (50ms) expires
	for i := 0; i < 4; i++ {
		if _, err := cl.Simulate(ctx, "t", simReq()); err != nil {
			t.Fatalf("post-probation request failed: %v", err)
		}
	}
	if bad.hits.Load() == hitsBeforeProbation {
		t.Fatal("node was never probed after probation expired")
	}
}

// TestDrainingNodeIsEjectedImmediately: a 503 draining response ejects the
// node at once — no threshold — and the request fails over.
func TestDrainingNodeIsEjectedImmediately(t *testing.T) {
	ok := func(hit int, w http.ResponseWriter, r *http.Request) { okSim(w, "ok") }
	n1, n2 := newFakeNode(t, ok), newFakeNode(t, ok)
	cl := New(testConfig(n1.ts.URL, n2.ts.URL))
	draining := primaryFor(t, cl, simReq(), n1, n2)
	draining.set(func(hit int, w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(&daed.ErrorResponse{Error: "daed: draining", Class: "draining"})
	})
	for i := 0; i < 6; i++ {
		if _, err := cl.Simulate(context.Background(), "t", simReq()); err != nil {
			t.Fatalf("request %d failed: %v", i, err)
		}
	}
	got := cl.Counters()
	if got.Ejections != 1 {
		t.Fatalf("ejections = %d, want exactly 1 (immediate on draining)", got.Ejections)
	}
	if draining.hits.Load() > 1 {
		t.Fatalf("draining node dialed %d times, want 1", draining.hits.Load())
	}
}

// TestClientErrorIsTerminal: a 4xx is the request's own fault; no failover,
// no node penalty.
func TestClientErrorIsTerminal(t *testing.T) {
	ok := func(hit int, w http.ResponseWriter, r *http.Request) { okSim(w, "ok") }
	a, b := newFakeNode(t, ok), newFakeNode(t, ok)
	cl := New(testConfig(a.ts.URL, b.ts.URL))
	primaryFor(t, cl, simReq(), a, b).set(func(hit int, w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(&daed.ErrorResponse{Error: "bad request", Class: "parse"})
	})
	_, err := cl.Simulate(context.Background(), "t", simReq())
	var re *daed.RemoteError
	if !errors.As(err, &re) || re.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want the 400 RemoteError", err)
	}
	if got := cl.Counters(); got.Failovers != 0 {
		t.Fatalf("4xx caused failover: %+v", got)
	}
	if a.hits.Load()+b.hits.Load() != 1 {
		t.Fatalf("4xx was retried: %d+%d dials", a.hits.Load(), b.hits.Load())
	}
}

// TestAllNodesDownReturnsTransportError: when the whole cluster is gone the
// client gives up with the last transport error after bounded rounds.
func TestAllNodesDownReturnsTransportError(t *testing.T) {
	a := newFakeNode(t, func(hit int, w http.ResponseWriter, r *http.Request) {})
	b := newFakeNode(t, func(hit int, w http.ResponseWriter, r *http.Request) {})
	a.ts.Close()
	b.ts.Close()
	cl := New(testConfig(a.ts.URL, b.ts.URL))
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := cl.Simulate(ctx, "t", simReq()); err == nil {
		t.Fatal("request against a fully-dead cluster succeeded")
	}
}

// TestDeterministicRouting: two clients with the same seed and membership
// agree on every key's preference order (the property daeload and the
// servers rely on).
func TestDeterministicRouting(t *testing.T) {
	nodes := []string{"http://n1", "http://n2", "http://n3"}
	a, b := New(testConfig(nodes...)), New(testConfig(nodes...))
	for _, key := range []string{"k1", "k2", "sim/v1;app=CG", "compile/v1;app=LU"} {
		pa, pb := a.prefs(key), b.prefs(key)
		for i := range pa {
			if pa[i].url != pb[i].url {
				t.Fatalf("clients disagree on %q: %v vs %v", key, pa[i].url, pb[i].url)
			}
		}
	}
}

// TestRedirectAdoption: a 421 Misdirected Request carrying a newer view
// makes the client adopt the epoch and member list and re-route
// immediately; the retried request succeeds against the grown cluster and
// the adoption is counted as a redirect, not a failover round of backoff.
func TestRedirectAdoption(t *testing.T) {
	alive := func(n int, w http.ResponseWriter, r *http.Request) { okSim(w, "fresh") }
	b := newFakeNode(t, alive)
	var a *fakeNode
	a = newFakeNode(t, func(n int, w http.ResponseWriter, r *http.Request) {
		if n == 1 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusMisdirectedRequest)
			_ = json.NewEncoder(w).Encode(&daed.ErrorResponse{
				Error: "not the owner", Class: "misdirected",
				Epoch: 2, Members: []string{a.ts.URL, b.ts.URL},
			})
			return
		}
		okSim(w, "fresh")
	})
	cl := New(testConfig(a.ts.URL)) // boots knowing only a, at epoch 1
	resp, err := cl.Simulate(context.Background(), "t", simReq())
	if err != nil {
		t.Fatalf("simulate after redirect: %v", err)
	}
	if resp.Report != "fresh" {
		t.Fatalf("wrong payload %q", resp.Report)
	}
	if got := cl.Epoch(); got != 2 {
		t.Fatalf("epoch = %d, want 2 after adoption", got)
	}
	if got := cl.Members(); len(got) != 2 {
		t.Fatalf("members = %v, want both nodes after adoption", got)
	}
	if got := cl.Counters(); got.Redirects != 1 {
		t.Fatalf("redirects = %d, want 1 (counters %+v)", got.Redirects, got)
	}
}

// TestPinnedClientIgnoresRedirects: with Pin set the client never adopts a
// server view (its dialed URLs may be chaos proxies that the server's
// advertised member list would bypass); a 421 is handled as a plain
// failover to the next preference.
func TestPinnedClientIgnoresRedirects(t *testing.T) {
	alive := func(n int, w http.ResponseWriter, r *http.Request) { okSim(w, "pinned") }
	a, b := newFakeNode(t, alive), newFakeNode(t, alive)
	cfg := testConfig(a.ts.URL, b.ts.URL)
	cfg.Pin = true
	cl := New(cfg)
	primaryFor(t, cl, simReq(), a, b).set(func(n int, w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(daed.EpochHeader) != "" {
			t.Errorf("pinned client sent epoch header %q", r.Header.Get(daed.EpochHeader))
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusMisdirectedRequest)
		_ = json.NewEncoder(w).Encode(&daed.ErrorResponse{
			Error: "not the owner", Class: "misdirected",
			Epoch: 99, Members: []string{"http://bogus"},
		})
	})
	resp, err := cl.Simulate(context.Background(), "t", simReq())
	if err != nil {
		t.Fatalf("simulate via failover: %v", err)
	}
	if resp.Report != "pinned" {
		t.Fatalf("wrong payload %q", resp.Report)
	}
	if got := cl.Epoch(); got != 1 {
		t.Fatalf("pinned client adopted epoch %d", got)
	}
	if got := cl.Counters(); got.Redirects != 0 || got.Failovers == 0 {
		t.Fatalf("want failover without adoption, got %+v", got)
	}
}

// TestAttemptTimeoutFailsOver: a node that accepts the connection but never
// answers (one-way partition, blackhole) must not pin the request until the
// caller's deadline — the per-attempt budget fires and the request fails
// over to a healthy replica.
func TestAttemptTimeoutFailsOver(t *testing.T) {
	alive := func(n int, w http.ResponseWriter, r *http.Request) { okSim(w, "alive") }
	a, b := newFakeNode(t, alive), newFakeNode(t, alive)
	cfg := testConfig(a.ts.URL, b.ts.URL)
	cfg.AttemptTimeout = 100 * time.Millisecond
	cl := New(cfg)
	hang := make(chan struct{})
	defer close(hang) // release hung handlers so server Close can finish
	primaryFor(t, cl, simReq(), a, b).set(func(n int, w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-hang:
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	resp, err := cl.Simulate(ctx, "t", simReq())
	if err != nil {
		t.Fatalf("simulate with hung primary: %v", err)
	}
	if resp.Report != "alive" {
		t.Fatalf("wrong payload %q", resp.Report)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("failover took %v, attempt timeout did not fire", elapsed)
	}
	if got := cl.Counters(); got.Failovers == 0 {
		t.Fatalf("no failover recorded for hung node: %+v", got)
	}
}

// TestStatsAll: counters come back per-member, skipping unreachable nodes.
func TestStatsAll(t *testing.T) {
	stats := func(n int, w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(&daed.StatsSnapshot{Requests: int64(7)})
	}
	a, b := newFakeNode(t, stats), newFakeNode(t, stats)
	cl := New(testConfig(a.ts.URL, b.ts.URL))
	b.ts.Close()
	got := cl.StatsAll(context.Background())
	if len(got) != 1 {
		t.Fatalf("StatsAll = %d members, want 1 reachable", len(got))
	}
	if s := got[a.ts.URL]; s == nil || s.Requests != 7 {
		t.Fatalf("StatsAll[%s] = %+v", a.ts.URL, s)
	}
}
