package daed

import (
	"context"
	"sync"

	"dae/internal/fault"
)

// pipeFlight is one in-flight pipeline execution shared by every concurrent
// identical request. The execution runs in its own goroutine under a
// context governed by a reference count of joined requests: a client that
// disconnects releases only its own reference, and when the last interested
// client is gone the pipeline context is canceled — the interpreter aborts
// at its next cancellation poll and the worker slot frees mid-collection.
type pipeFlight[A any] struct {
	fm     *flightMap[A]
	key    string
	cancel context.CancelFunc
	done   chan struct{}
	art    A
	err    error
	refs   int // guarded by fm.mu
}

// flightMap deduplicates pipeline executions per content key. The zero
// value is ready to use.
type flightMap[A any] struct {
	mu sync.Mutex
	m  map[string]*pipeFlight[A]
}

// join returns the in-flight execution for key, starting one (in a new
// goroutine, under a refcounted context) when none is running. leader
// reports whether this call started the execution.
func (fm *flightMap[A]) join(key string, run func(ctx context.Context) (A, error)) (f *pipeFlight[A], leader bool) {
	fm.mu.Lock()
	if f, ok := fm.m[key]; ok {
		f.refs++
		fm.mu.Unlock()
		return f, false
	}
	if fm.m == nil {
		fm.m = make(map[string]*pipeFlight[A])
	}
	ctx, cancel := context.WithCancel(context.Background())
	f = &pipeFlight[A]{fm: fm, key: key, cancel: cancel, done: make(chan struct{}), refs: 1}
	fm.m[key] = f
	fm.mu.Unlock()
	go func() {
		art, err := run(ctx)
		fm.mu.Lock()
		f.art, f.err = art, err
		delete(fm.m, key)
		fm.mu.Unlock()
		close(f.done)
		cancel()
	}()
	return f, true
}

// wait blocks until the flight completes or ctx dies, then releases this
// caller's reference. A caller whose context dies while waiting receives a
// fault.KindTimeout error; if it was the last interested caller, the
// pipeline context is canceled and the execution aborts mid-collection.
func (f *pipeFlight[A]) wait(ctx context.Context) (A, error) {
	select {
	case <-f.done:
		f.leave()
		return f.art, f.err
	case <-ctx.Done():
		f.leave()
		var zero A
		return zero, fault.Wrap(fault.KindTimeout, ctx.Err())
	}
}

// leave drops one reference; the last leaver of a still-running flight
// cancels its pipeline context. The decision happens under the map lock so
// a concurrent join cannot resurrect a flight that is about to be canceled
// — a join that loses that race observes a doomed flight, receives its
// timeout error, and retries on a fresh one (the handlers' retry loop).
// Canceling a completed flight is a no-op.
func (f *pipeFlight[A]) leave() {
	f.fm.mu.Lock()
	f.refs--
	if f.refs == 0 {
		select {
		case <-f.done:
		default:
			f.cancel()
		}
	}
	f.fm.mu.Unlock()
}
