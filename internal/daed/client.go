package daed

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"dae/internal/fault"
)

// Client is a typed client for the daed HTTP API, used by daerun -server,
// daeload, and the tests.
type Client struct {
	// Base is the server's base URL, e.g. "http://127.0.0.1:8787".
	Base string
	// Tenant, when non-empty, is sent as the X-Dae-Tenant header.
	Tenant string
	// Epoch, when non-empty, is sent as the X-Dae-Epoch header, marking the
	// client epoch-aware: a non-owner node at a newer membership epoch
	// answers 421 with the fresh view instead of serving off-placement.
	Epoch string
	// HTTP is the underlying client; nil means a dedicated client with no
	// overall timeout (deadlines travel per-request via context and the
	// request's timeout_ms budget).
	HTTP *http.Client
}

// RemoteError is a non-2xx response decoded into the server's error shape.
type RemoteError struct {
	Status     int
	Body       ErrorResponse
	RetryAfter time.Duration
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("daed: server returned %d: %s", e.Status, e.Body.Error)
}

// Saturated reports whether the failure was an admission rejection (HTTP
// 429); the client should back off RetryAfter before retrying.
func (e *RemoteError) Saturated() bool { return e.Status == http.StatusTooManyRequests }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do posts one JSON request and decodes the JSON response into out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	if c.Epoch != "" {
		req.Header.Set(EpochHeader, c.Epoch)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return fault.Wrap(fault.KindTimeout, err)
		}
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		re := &RemoteError{Status: resp.StatusCode}
		_ = json.Unmarshal(raw, &re.Body)
		if re.Body.Error == "" {
			re.Body.Error = string(bytes.TrimSpace(raw))
		}
		re.RetryAfter = time.Duration(re.Body.RetryAfterMs) * time.Millisecond
		return re
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// Simulate runs one simulate request against the server.
func (c *Client) Simulate(ctx context.Context, req *SimulateRequest) (*SimulateResponse, error) {
	var resp SimulateResponse
	if err := c.do(ctx, http.MethodPost, "/v1/simulate", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Trace fetches one app's collected trace set from the server.
func (c *Client) Trace(ctx context.Context, req *TraceRequest) (*TraceResponse, error) {
	var resp TraceResponse
	if err := c.do(ctx, http.MethodPost, "/v1/trace", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Compile runs one compile request against the server.
func (c *Client) Compile(ctx context.Context, req *CompileRequest) (*CompileResponse, error) {
	var resp CompileResponse
	if err := c.do(ctx, http.MethodPost, "/v1/compile", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the server's serving counters.
func (c *Client) Stats(ctx context.Context) (*StatsSnapshot, error) {
	var resp StatsSnapshot
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Ring fetches the server's current membership view.
func (c *Client) Ring(ctx context.Context) (*RingResponse, error) {
	var resp RingResponse
	if err := c.do(ctx, http.MethodGet, "/v1/ring", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Members performs one membership operation (admin join/leave, or gossip)
// and returns the server's resulting view.
func (c *Client) Members(ctx context.Context, req *MembersRequest) (*MembersResponse, error) {
	var resp MembersResponse
	if err := c.do(ctx, http.MethodPost, "/v1/members", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Join asks the server to admit node into the cluster at the next epoch.
func (c *Client) Join(ctx context.Context, node string) (*MembersResponse, error) {
	return c.Members(ctx, &MembersRequest{Op: "join", Node: node})
}

// Leave asks the server to remove node from the cluster at the next epoch;
// the removed node drains and hands its hot artifacts off.
func (c *Client) Leave(ctx context.Context, node string) (*MembersResponse, error) {
	return c.Members(ctx, &MembersRequest{Op: "leave", Node: node})
}

// ClearQuarantine lifts every quarantine recorded for the client's tenant,
// returning how many (app, task) entries were cleared.
func (c *Client) ClearQuarantine(ctx context.Context) (int, error) {
	var resp struct {
		Cleared int `json:"cleared"`
	}
	if err := c.do(ctx, http.MethodDelete, "/v1/quarantine", nil, &resp); err != nil {
		return 0, err
	}
	return resp.Cleared, nil
}
