package daed

import (
	"fmt"
	"sync"
	"testing"
)

func TestTenantRegistryRecordAndIsolation(t *testing.T) {
	var tr tenantRegistry
	if q := tr.quarantined("a", "LU"); q != nil {
		t.Fatalf("fresh registry reports quarantine: %v", q)
	}
	tr.record("a", "LU", map[string]string{"diag": "trap"})
	tr.record("a", "LU", map[string]string{"diag": "panic", "bmod": "panic"})

	q := tr.quarantined("a", "LU")
	// Quarantine is monotone: the first recorded kind for a task wins.
	if len(q) != 2 || q["diag"] != "trap" || q["bmod"] != "panic" {
		t.Fatalf("quarantined(a, LU) = %v, want diag:trap bmod:panic", q)
	}
	// The returned map is a copy: mutating it must not leak back.
	q["diag"] = "mutated"
	if got := tr.quarantined("a", "LU")["diag"]; got != "trap" {
		t.Fatalf("registry mutated through returned copy: diag = %q", got)
	}

	// Other tenants and other apps stay clean.
	if q := tr.quarantined("b", "LU"); q != nil {
		t.Errorf("tenant b inherited tenant a's quarantine: %v", q)
	}
	if q := tr.quarantined("a", "FFT"); q != nil {
		t.Errorf("app FFT inherited app LU's quarantine: %v", q)
	}
	if n := tr.tenants(); n != 1 {
		t.Errorf("tenants() = %d, want 1", n)
	}

	if n := tr.clear("a"); n != 2 {
		t.Errorf("clear(a) = %d entries, want 2", n)
	}
	if q := tr.quarantined("a", "LU"); q != nil {
		t.Errorf("quarantine survived clear: %v", q)
	}
	if n := tr.clear("a"); n != 0 {
		t.Errorf("second clear(a) = %d, want 0", n)
	}
}

func TestTenantRegistryConcurrent(t *testing.T) {
	var tr tenantRegistry
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", i%4)
			tr.record(tenant, "LU", map[string]string{"diag": "trap"})
			tr.quarantined(tenant, "LU")
			tr.tenants()
		}(i)
	}
	wg.Wait()
	if n := tr.tenants(); n != 4 {
		t.Errorf("tenants() = %d, want 4", n)
	}
}
