package daed_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"dae/internal/chaosnet"
	"dae/internal/daed"
	"dae/internal/daed/client"
	"dae/internal/daed/ring"
)

// memberNode is one in-process cluster member with the knobs the membership
// tests need (fast repair loops, own artifact dir, restartable listener).
type memberNode struct {
	srv *daed.Server
	hs  *http.Server
	url string
}

// bootMember starts one daed node on a fresh loopback port. peers may be
// empty: that is a cluster of one, joinable later. repair < 0 disables the
// anti-entropy loop so a test can observe read-repair in isolation.
func bootMember(t *testing.T, peers []string, repair time.Duration) *memberNode {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return bootMemberOn(t, ln, peers, repair)
}

func bootMemberOn(t *testing.T, ln net.Listener, peers []string, repair time.Duration) *memberNode {
	t.Helper()
	url := "http://" + ln.Addr().String()
	srv := daed.New(daed.Config{
		Workers: 2, Dir: t.TempDir(),
		Self: url, Peers: peers, Replicas: 2,
		RepairInterval: repair,
	})
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	n := &memberNode{srv: srv, hs: hs, url: url}
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return n
}

// bootCluster3 starts three members that know each other from boot.
func bootCluster3(t *testing.T, repair time.Duration) []*memberNode {
	t.Helper()
	lns := make([]net.Listener, 3)
	urls := make([]string, 3)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*memberNode, 3)
	for i := range nodes {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		nodes[i] = bootMemberOn(t, lns[i], peers, repair)
	}
	return nodes
}

// putSynthetic installs a synthetic simulate artifact under key on one node
// via the peer replication sink — the same path repair and handoff use.
func putSynthetic(t *testing.T, nodeURL, key, report string) {
	t.Helper()
	payload, _ := json.Marshal(map[string]string{"app": "CG", "report": report})
	body, _ := json.Marshal(daed.ArtifactPutRequest{Key: key, Payload: payload})
	req, err := http.NewRequest(http.MethodPut, nodeURL+"/v1/artifact", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("artifact put to %s: %v", nodeURL, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact put to %s: status %d", nodeURL, resp.StatusCode)
	}
}

// hasKey probes one node for key presence over HEAD /v1/artifact.
func hasKey(t *testing.T, nodeURL, key string) bool {
	t.Helper()
	req, err := http.NewRequest(http.MethodHead, nodeURL+"/v1/artifact?key="+urlQueryEscape(key), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func urlQueryEscape(s string) string {
	// net/url is not imported elsewhere in this file; keep the helper tiny.
	buf := make([]byte, 0, len(s))
	const hex = "0123456789ABCDEF"
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.', c == '~':
			buf = append(buf, c)
		default:
			buf = append(buf, '%', hex[c>>4], hex[c&0xf])
		}
	}
	return string(buf)
}

// ringOf fetches one node's current view.
func ringOf(t *testing.T, nodeURL string) *daed.RingResponse {
	t.Helper()
	r, err := (&daed.Client{Base: nodeURL}).Ring(context.Background())
	if err != nil {
		t.Fatalf("ring from %s: %v", nodeURL, err)
	}
	return r
}

// simKey returns the content key for a CG simulate at the given core count.
func simKey(t *testing.T, cores int) string {
	t.Helper()
	key, err := (&daed.SimulateRequest{App: "CG", Cores: cores}).Key()
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// TestMembershipJoinAndGossip: an admin join against any member mints the
// next epoch, gossip carries it to every node including the joiner, and
// GET /v1/ring reports a consistent, fully-owned view everywhere.
func TestMembershipJoinAndGossip(t *testing.T) {
	a := bootMember(t, nil, -1)
	b := bootMember(t, []string{a.url}, -1)
	// b booted knowing a, but a booted alone: converge them via a join so
	// both sides agree before growing further.
	ctx := context.Background()
	if _, err := (&daed.Client{Base: a.url}).Join(ctx, b.url); err != nil {
		t.Fatalf("join b: %v", err)
	}
	c := bootMember(t, nil, -1)
	mr, err := (&daed.Client{Base: b.url}).Join(ctx, c.url)
	if err != nil {
		t.Fatalf("join c: %v", err)
	}
	if len(mr.Members) != 3 {
		t.Fatalf("join answered %d members, want 3", len(mr.Members))
	}
	nodes := []*memberNode{a, b, c}
	waitFor(t, 5*time.Second, "gossip convergence", func() bool {
		for _, n := range nodes {
			v := ringOf(t, n.url)
			if v.Epoch != mr.Epoch || len(v.Members) != 3 {
				return false
			}
		}
		return true
	})
	v := ringOf(t, a.url)
	if v.Self != a.url {
		t.Fatalf("ring self = %q, want %q", v.Self, a.url)
	}
	if v.Replicas != 2 {
		t.Fatalf("ring replicas = %d, want 2", v.Replicas)
	}
	sum := 0.0
	for _, f := range v.Ownership {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("ownership fractions sum to %v, want 1", sum)
	}
	// Re-joining a member is idempotent: same epoch, same view.
	again, err := (&daed.Client{Base: a.url}).Join(ctx, c.url)
	if err != nil {
		t.Fatalf("idempotent join: %v", err)
	}
	if again.Epoch != mr.Epoch {
		t.Fatalf("re-join minted epoch %d, want unchanged %d", again.Epoch, mr.Epoch)
	}
	// The view also rides along in /v1/stats for operators.
	st := a.srv.Stats()
	if st.Ring == nil || st.Ring.Epoch != mr.Epoch {
		t.Fatalf("stats ring section missing or stale: %+v", st.Ring)
	}
}

// TestMembershipJoinStreamsWarmup: a joining node streams the hot envelopes
// it now owns from the prior owners before serving, so its share of the key
// space is warm without a single client request.
func TestMembershipJoinStreamsWarmup(t *testing.T) {
	a := bootMember(t, nil, -1)
	b := bootMember(t, []string{a.url}, -1)
	ctx := context.Background()
	if _, err := (&daed.Client{Base: a.url}).Join(ctx, b.url); err != nil {
		t.Fatalf("join b: %v", err)
	}
	keys := make([]string, 24)
	for i := range keys {
		keys[i] = fmt.Sprintf("drill/warm-%02d", i)
		putSynthetic(t, a.url, keys[i], "warm")
		putSynthetic(t, b.url, keys[i], "warm")
	}
	j := bootMember(t, nil, -1)
	if _, err := (&daed.Client{Base: a.url}).Join(ctx, j.url); err != nil {
		t.Fatalf("join joiner: %v", err)
	}
	waitFor(t, 10*time.Second, "joiner warmup", func() bool {
		return j.srv.Stats().Warmed >= 1 && !ringOf(t, j.url).Warming
	})
	// Every key the joiner now owns must be present locally.
	v := ringOf(t, j.url)
	rg := ring.New(v.Members, 0, daed.DefaultRingSeed)
	owned, present := 0, 0
	for _, k := range keys {
		for _, o := range rg.Nodes(k, v.Replicas) {
			if o == j.url {
				owned++
				if hasKey(t, j.url, k) {
					present++
				}
			}
		}
	}
	if owned == 0 {
		t.Fatal("joiner owns none of 24 keys — ring distribution broken")
	}
	if present != owned {
		t.Fatalf("joiner holds %d of its %d owned keys after warmup", present, owned)
	}
}

// TestMembershipLeaveDrainsRemoved: an admin leave removes the node at the
// next epoch; the removed node learns via gossip, drains, hands its
// envelopes to the surviving owners, and refuses new work.
func TestMembershipLeaveDrainsRemoved(t *testing.T) {
	nodes := bootCluster3(t, -1)
	ctx := context.Background()
	key := "drill/leave-0"
	putSynthetic(t, nodes[2].url, key, "handoff")
	mr, err := (&daed.Client{Base: nodes[0].url}).Leave(ctx, nodes[2].url)
	if err != nil {
		t.Fatalf("leave: %v", err)
	}
	if len(mr.Members) != 2 {
		t.Fatalf("leave answered %d members, want 2", len(mr.Members))
	}
	waitFor(t, 10*time.Second, "survivors converge and removed node drains", func() bool {
		for _, n := range nodes[:2] {
			v := ringOf(t, n.url)
			if v.Epoch < mr.Epoch || len(v.Members) != 2 {
				return false
			}
		}
		return nodes[2].srv.Stats().HandedOff >= 1
	})
	// The handed-off envelope reached a surviving owner.
	rg := ring.New(mr.Members, 0, daed.DefaultRingSeed)
	holders := 0
	for _, o := range rg.Nodes(key, 2) {
		if hasKey(t, o, key) {
			holders++
		}
	}
	if holders == 0 {
		t.Fatal("no surviving owner holds the handed-off envelope")
	}
	// The removed node sheds new work with the draining contract.
	_, err = (&daed.Client{Base: nodes[2].url}).Simulate(ctx, &daed.SimulateRequest{App: "CG"})
	var re *daed.RemoteError
	if !errors.As(err, &re) || re.Status != http.StatusServiceUnavailable {
		t.Fatalf("removed node answered %v, want 503 draining", err)
	}
}

// TestAntiEntropyPushesAndDrops: the repair loop pushes an envelope that
// landed on a non-owner to both owners, then — only after a round confirming
// R copies elsewhere — releases the misplaced local copy.
func TestAntiEntropyPushesAndDrops(t *testing.T) {
	nodes := bootCluster3(t, 100*time.Millisecond)
	urls := []string{nodes[0].url, nodes[1].url, nodes[2].url}
	key := "drill/repair-0"
	rg := ring.New(urls, 0, daed.DefaultRingSeed)
	owners := rg.Nodes(key, 2)
	var outsider *memberNode
	for _, n := range nodes {
		if n.url != owners[0] && n.url != owners[1] {
			outsider = n
		}
	}
	putSynthetic(t, outsider.url, key, "stray")
	waitFor(t, 10*time.Second, "repair push to both owners", func() bool {
		return hasKey(t, owners[0], key) && hasKey(t, owners[1], key)
	})
	waitFor(t, 10*time.Second, "repair drop of the stray copy", func() bool {
		return !hasKey(t, outsider.url, key)
	})
	st := outsider.srv.Stats()
	if st.RepairPushed < 2 {
		t.Fatalf("repair pushed %d installs, want >= 2", st.RepairPushed)
	}
	if st.RepairDropped < 1 {
		t.Fatalf("repair dropped %d keys, want >= 1", st.RepairDropped)
	}
	if st.RepairRounds < 1 {
		t.Fatal("repair rounds counter never advanced")
	}
}

// TestReadRepairPushOnMisplacedHit: serving a store hit for a key this node
// does not own installs the envelope on the real owners, write-behind.
func TestReadRepairPushOnMisplacedHit(t *testing.T) {
	nodes := bootCluster3(t, -1) // no anti-entropy: isolate read-repair
	urls := []string{nodes[0].url, nodes[1].url, nodes[2].url}
	key := simKey(t, 2)
	rg := ring.New(urls, 0, daed.DefaultRingSeed)
	owners := rg.Nodes(key, 2)
	var outsider *memberNode
	for _, n := range nodes {
		if n.url != owners[0] && n.url != owners[1] {
			outsider = n
		}
	}
	putSynthetic(t, outsider.url, key, "synthetic-read-repair")
	resp, err := (&daed.Client{Base: outsider.url}).Simulate(context.Background(), &daed.SimulateRequest{App: "CG", Cores: 2})
	if err != nil {
		t.Fatalf("simulate against holder: %v", err)
	}
	if !resp.CacheHit || resp.Report != "synthetic-read-repair" {
		t.Fatalf("holder did not serve its store: hit=%v report=%q", resp.CacheHit, resp.Report)
	}
	waitFor(t, 10*time.Second, "read-repair install on owners", func() bool {
		return hasKey(t, owners[0], key) && hasKey(t, owners[1], key)
	})
	if got := outsider.srv.Stats().ReadRepairs; got < 1 {
		t.Fatalf("read_repairs = %d, want >= 1", got)
	}
}

// TestReadRepairPullOnOwnerMiss: an owner missing an envelope a co-owner
// holds pulls it before paying a pipeline execution, and serves it as a
// cache hit.
func TestReadRepairPullOnOwnerMiss(t *testing.T) {
	nodes := bootCluster3(t, -1)
	urls := []string{nodes[0].url, nodes[1].url, nodes[2].url}
	key := simKey(t, 3)
	rg := ring.New(urls, 0, daed.DefaultRingSeed)
	owners := rg.Nodes(key, 2)
	putSynthetic(t, owners[1], key, "synthetic-pull")
	missingOwner := byMemberURL(t, nodes, owners[0])
	resp, err := (&daed.Client{Base: owners[0]}).Simulate(context.Background(), &daed.SimulateRequest{App: "CG", Cores: 3})
	if err != nil {
		t.Fatalf("simulate against missing owner: %v", err)
	}
	if !resp.CacheHit || resp.Report != "synthetic-pull" {
		t.Fatalf("owner did not pull from replica: hit=%v report=%q", resp.CacheHit, resp.Report)
	}
	if !hasKey(t, owners[0], key) {
		t.Fatal("pulled envelope was not installed locally")
	}
	if got := missingOwner.srv.Stats().ReadRepairs; got < 1 {
		t.Fatalf("read_repairs = %d, want >= 1", got)
	}
	if got := missingOwner.srv.Stats().Executions; got != 0 {
		t.Fatalf("owner executed %d pipelines despite a replica holding the envelope", got)
	}
}

func byMemberURL(t *testing.T, nodes []*memberNode, url string) *memberNode {
	t.Helper()
	for _, n := range nodes {
		if n.url == url {
			return n
		}
	}
	t.Fatalf("no member with url %s", url)
	return nil
}

// TestStaleEpochRedirects421: a request stamped with an older epoch hitting
// a non-owner is answered 421 with the fresh view instead of being proxied —
// the client-visible signal that its routing table is stale.
func TestStaleEpochRedirects421(t *testing.T) {
	nodes := bootCluster3(t, -1)
	ctx := context.Background()
	j := bootMember(t, nil, -1)
	mr, err := (&daed.Client{Base: nodes[0].url}).Join(ctx, j.url)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	all := append([]*memberNode{}, nodes...)
	all = append(all, j)
	waitFor(t, 5*time.Second, "gossip convergence", func() bool {
		for _, n := range all {
			if ringOf(t, n.url).Epoch != mr.Epoch {
				return false
			}
		}
		return true
	})
	key := simKey(t, 4)
	rg := ring.New(mr.Members, 0, daed.DefaultRingSeed)
	owned := map[string]bool{}
	for _, o := range rg.Nodes(key, 2) {
		owned[o] = true
	}
	var outsider *memberNode
	for _, n := range all {
		if !owned[n.url] {
			outsider = n
		}
	}
	_, err = (&daed.Client{Base: outsider.url, Epoch: "1"}).Simulate(ctx, &daed.SimulateRequest{App: "CG", Cores: 4})
	var re *daed.RemoteError
	if !errors.As(err, &re) || re.Status != http.StatusMisdirectedRequest {
		t.Fatalf("stale-epoch request answered %v, want 421", err)
	}
	if re.Body.Class != "misdirected" {
		t.Fatalf("421 class %q, want misdirected", re.Body.Class)
	}
	if re.Body.Epoch != mr.Epoch || len(re.Body.Members) != len(mr.Members) {
		t.Fatalf("421 carries view epoch=%d members=%v, want epoch=%d with %d members",
			re.Body.Epoch, re.Body.Members, mr.Epoch, len(mr.Members))
	}
	if got := outsider.srv.Stats().Redirected; got < 1 {
		t.Fatalf("redirected = %d, want >= 1", got)
	}
}

// TestMembershipChurnDrill is the acceptance drill for the self-healing
// cluster: a 3-node cluster takes writes; one replica is killed mid-load and
// requests keep succeeding behind a one-way chaosnet partition (zero lost);
// the dead node is removed and a replacement joins at a new epoch with a
// cold store; anti-entropy restores R=2 for every journaled key without a
// single client request touching them; read-repair fires on a misplaced
// hit; and every response stays byte-identical to a single-node reference.
func TestMembershipChurnDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full pipeline executions")
	}
	ctx := context.Background()
	req := &daed.SimulateRequest{App: "CG"}
	key, err := req.Key()
	if err != nil {
		t.Fatal(err)
	}

	// Single-node reference: the byte-identity oracle for every later phase.
	refNode := bootMember(t, nil, -1)
	ref, err := (&daed.Client{Base: refNode.url}).Simulate(ctx, req)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	nodes := bootCluster3(t, 150*time.Millisecond)
	urls := []string{nodes[0].url, nodes[1].url, nodes[2].url}
	rg := ring.New(urls, 0, daed.DefaultRingSeed)
	victim := byMemberURL(t, nodes, rg.Primary(key))

	// One non-victim member sits behind a chaos proxy for the client path,
	// so a one-way partition can be staged without touching peer traffic.
	var proxied *memberNode
	for _, n := range nodes {
		if n != victim {
			proxied = n
			break
		}
	}
	target := proxied.url[len("http://"):]
	px, err := chaosnet.New(chaosnet.Config{Target: target, Seed: 0xdae, FaultRate: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	clientNodes := make([]string, 0, 3)
	for _, u := range urls {
		if u == proxied.url {
			clientNodes = append(clientNodes, px.URL())
		} else {
			clientNodes = append(clientNodes, u)
		}
	}
	// Pin: the dialed URLs include a chaos proxy the server-side member list
	// would bypass; AttemptTimeout: a one-way partition hangs, it does not
	// refuse.
	cl := client.New(client.Config{
		Nodes: clientNodes, Pin: true,
		AttemptTimeout: 1500 * time.Millisecond,
		BackoffBase:    5 * time.Millisecond,
		Probation:      200 * time.Millisecond,
		BackoffSeed:    13,
	})

	// Phase 1: warm the cluster and wait for write-behind replication.
	warm, err := cl.Simulate(ctx, "drill", req)
	if err != nil {
		t.Fatalf("warm request: %v", err)
	}
	if warm.Report != ref.Report {
		t.Fatal("cluster warm report differs from single-node reference")
	}
	waitFor(t, 15*time.Second, "write-behind replication", func() bool {
		var in int64
		for _, n := range nodes {
			if n != victim {
				in += n.srv.Stats().ReplicatedIn
			}
		}
		return in >= 1
	})

	// Seed extra journaled keys (synthetic, sim-keyed) on their owners so
	// the later churn provably moves ownership around.
	seeded := []string{}
	for cores := 2; cores <= 6; cores++ {
		k := simKey(t, cores)
		seeded = append(seeded, k)
		for _, o := range rg.Nodes(k, 2) {
			putSynthetic(t, o, k, fmt.Sprintf("synthetic-%d", cores))
		}
	}

	// Phase 2: one-way partition between client and the proxied member —
	// requests go in, answers never come back. Zero accepted requests lost.
	px.PartitionOneWay(chaosnet.DirOutbound)
	for i := 0; i < 6; i++ {
		resp, err := cl.Simulate(ctx, "drill", req)
		if err != nil {
			t.Fatalf("request %d lost behind one-way partition: %v", i, err)
		}
		if resp.Report != ref.Report {
			t.Fatalf("request %d behind partition not byte-identical", i)
		}
	}
	px.Heal()

	// Phase 3: kill the key's primary outright and keep writing through the
	// degraded cluster.
	victim.hs.Close()
	for i := 0; i < 6; i++ {
		resp, err := cl.Simulate(ctx, "drill", req)
		if err != nil {
			t.Fatalf("request %d lost after primary death: %v", i, err)
		}
		if resp.Report != ref.Report {
			t.Fatalf("request %d after primary death not byte-identical", i)
		}
	}

	// Phase 4: remove the dead node at the next epoch, then join a cold
	// replacement at the one after.
	var admin *memberNode
	for _, n := range nodes {
		if n != victim {
			admin = n
			break
		}
	}
	if _, err := (&daed.Client{Base: admin.url}).Leave(ctx, victim.url); err != nil {
		t.Fatalf("leave dead node: %v", err)
	}
	replacement := bootMember(t, nil, 150*time.Millisecond)
	mr, err := (&daed.Client{Base: admin.url}).Join(ctx, replacement.url)
	if err != nil {
		t.Fatalf("join replacement: %v", err)
	}
	final := []*memberNode{replacement}
	for _, n := range nodes {
		if n != victim {
			final = append(final, n)
		}
	}
	waitFor(t, 10*time.Second, "epoch convergence after churn", func() bool {
		for _, n := range final {
			if ringOf(t, n.url).Epoch != mr.Epoch {
				return false
			}
		}
		return true
	})

	// Phase 5: anti-entropy alone restores R=2 for every journaled key — no
	// client request touches them. The replacement booted with an empty
	// store, so every key it now owns must arrive via repair (or warmup).
	rg3 := ring.New(mr.Members, 0, daed.DefaultRingSeed)
	all := append([]string{key}, seeded...)
	waitFor(t, 30*time.Second, "anti-entropy restores R=2", func() bool {
		for _, k := range all {
			for _, o := range rg3.Nodes(k, 2) {
				if !hasKey(t, o, k) {
					return false
				}
			}
		}
		return true
	})
	var pushed int64
	for _, n := range final {
		pushed += n.srv.Stats().RepairPushed
	}
	if pushed < 1 {
		t.Fatalf("repair pushed %d installs across the cluster, want >= 1", pushed)
	}

	// Phase 6: read-repair fires on a misplaced hit. A fresh sim-keyed
	// envelope lands on its non-owner; serving it installs on the owners.
	k7 := simKey(t, 7)
	owned := map[string]bool{}
	for _, o := range rg3.Nodes(k7, 2) {
		owned[o] = true
	}
	var outsider *memberNode
	for _, n := range final {
		if !owned[n.url] {
			outsider = n
		}
	}
	putSynthetic(t, outsider.url, k7, "synthetic-7")
	resp7, err := (&daed.Client{Base: outsider.url}).Simulate(ctx, &daed.SimulateRequest{App: "CG", Cores: 7})
	if err != nil {
		t.Fatalf("misplaced-hit request: %v", err)
	}
	if !resp7.CacheHit || resp7.Report != "synthetic-7" {
		t.Fatalf("misplaced hit not served from store: hit=%v report=%q", resp7.CacheHit, resp7.Report)
	}
	waitFor(t, 15*time.Second, "read-repair install on owners", func() bool {
		if outsider.srv.Stats().ReadRepairs < 1 {
			return false
		}
		for o := range owned {
			if !hasKey(t, o, k7) {
				return false
			}
		}
		return true
	})

	// Phase 7: a fresh epoch-aware client refreshes into the final view and
	// the warm key still answers byte-identically.
	cl2 := client.New(client.Config{
		Nodes: []string{admin.url}, BackoffBase: 5 * time.Millisecond,
		Probation: 200 * time.Millisecond, BackoffSeed: 17,
	})
	if err := cl2.Refresh(ctx); err != nil {
		t.Fatalf("client refresh: %v", err)
	}
	if cl2.Epoch() != mr.Epoch || len(cl2.Members()) != len(mr.Members) {
		t.Fatalf("refreshed client at epoch %d with %d members, want %d/%d",
			cl2.Epoch(), len(cl2.Members()), mr.Epoch, len(mr.Members))
	}
	finalResp, err := cl2.Simulate(ctx, "drill", req)
	if err != nil {
		t.Fatalf("final request: %v", err)
	}
	if finalResp.Report != ref.Report {
		t.Fatal("final report differs from single-node reference after churn")
	}
}
