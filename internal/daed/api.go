// Package daed implements the persistent compile/simulate service: a
// long-running HTTP/JSON server that amortizes the whole pipeline —
// compile, access generation, trace collection, evaluation — across
// requests via a content-addressed artifact store, collapses concurrent
// identical requests onto one execution, bounds concurrent work with an
// admission-controlled job queue (429 + Retry-After when saturated), and
// contains per-tenant faults with the runtime's quarantine ladder so one
// tenant's poisoned task type degrades that tenant's requests, never the
// process.
package daed

import (
	"fmt"
	"time"

	"dae/internal/bench"
	"dae/internal/dvfs"
	"dae/internal/fault/inject"
	"dae/internal/interp"
	"dae/internal/rt"
)

// TenantHeader carries the requesting tenant's identity. Requests without
// it share the DefaultTenant.
const TenantHeader = "X-Dae-Tenant"

// DefaultTenant is the tenant of requests that carry no TenantHeader.
const DefaultTenant = "default"

// EpochHeader carries the membership epoch an epoch-aware client routed
// under. When a node at a newer epoch receives a request for a key it does
// not own, it answers 421 Misdirected Request carrying the fresh epoch and
// membership instead of serving off-placement, and the client re-routes.
// Requests without the header get the legacy behavior (proxy to the owners,
// fall back to local execution) so plain clients keep working.
const EpochHeader = "X-Dae-Epoch"

// SimulateRequest asks the server for one app's full evaluation: collect
// the coupled, manual-DAE and compiler-DAE traces and render the policy
// comparison report (byte-identical to a local daerun of the same flags).
type SimulateRequest struct {
	// App names the benchmark (LU, Cholesky, FFT, LBM, LibQ, Cigar, CG).
	App string `json:"app"`
	// Cores is the simulated core count; 0 means the default 4.
	Cores int `json:"cores,omitempty"`
	// ZeroLatency evaluates under instantaneous DVFS transitions (§6.1).
	ZeroLatency bool `json:"zero_latency,omitempty"`
	// Refine applies profile-guided prefetch pruning before tracing.
	Refine bool `json:"refine,omitempty"`
	// MaxSteps, when positive, is the per-task-phase interpreter step
	// budget; it maps directly onto the runtime's fault.ErrStepBudget
	// fuel accounting and participates in the content key.
	MaxSteps int64 `json:"max_steps,omitempty"`
	// Degrade selects the runtime supervision mode: "off", "access"
	// (default), or "full".
	Degrade string `json:"degrade,omitempty"`
	// Engine selects the interpreter execution engine ("bytecode" default,
	// "tree" oracle). Excluded from the content key: the engines are
	// byte-identical, so artifacts are shared across them.
	Engine string `json:"engine,omitempty"`
	// TimeoutMs, when positive, bounds how long this request waits for its
	// result — a QoS knob, not content, so it is excluded from the key;
	// the server maps it onto context cancellation.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Inject carries fault-injection rules in the CLI's -inject syntax
	// (testing and chaos only). Requests with injection run on the
	// tenant-scoped path: they are never served from nor written to the
	// shared store, so injected faults cannot poison other tenants.
	Inject string `json:"inject,omitempty"`
}

// simPlan is a validated, defaulted SimulateRequest resolved to the
// pipeline's own types.
type simPlan struct {
	app     bench.App
	cfg     rt.TraceConfig
	machine rt.Machine
	refine  bool
	rules   []inject.Rule
	key     string
}

// plan validates the request and resolves it against the pipeline types.
// Validation failures are client errors (HTTP 400).
func (req *SimulateRequest) plan() (*simPlan, error) {
	app, err := bench.AppByName(req.App)
	if err != nil {
		return nil, err
	}
	degrade := req.Degrade
	if degrade == "" {
		degrade = "access"
	}
	degradeMode, err := rt.ParseDegradeMode(degrade)
	if err != nil {
		return nil, err
	}
	engine := req.Engine
	if engine == "" {
		engine = "bytecode"
	}
	engineKind, err := interp.ParseEngine(engine)
	if err != nil {
		return nil, err
	}
	rules, err := inject.ParseRules(req.Inject)
	if err != nil {
		return nil, err
	}
	if req.Cores < 0 || req.MaxSteps < 0 || req.TimeoutMs < 0 {
		return nil, fmt.Errorf("daed: negative cores/max_steps/timeout_ms")
	}
	cfg := rt.DefaultTraceConfig()
	if req.Cores > 0 {
		cfg.Cores = req.Cores
	}
	cfg.MaxSteps = req.MaxSteps
	cfg.Degrade = degradeMode
	cfg.Engine = engineKind
	m := rt.DefaultMachine()
	if req.ZeroLatency {
		m.DVFS = dvfs.Ideal()
	}
	p := &simPlan{app: app, cfg: cfg, machine: m, refine: req.Refine, rules: rules}
	// The content key covers everything that changes the report: the app,
	// the full trace-config fingerprint (cores, hierarchy, budgets,
	// degrade mode), the machine variant, and refinement. Engine and
	// TimeoutMs are QoS/transport knobs; tenant identity never keys shared
	// content.
	p.key = fmt.Sprintf("sim/v1;app=%s;%s;zerolat=%t;refine=%t",
		app.Name, cfg.Fingerprint(), req.ZeroLatency, req.Refine)
	return p, nil
}

// Key returns the request's content key — the same key the server plans,
// so cluster clients can route a request to the ring owners that likely
// hold its artifact. Invalid requests return an error (the server would
// reject them with 400 anyway).
func (req *SimulateRequest) Key() (string, error) {
	p, err := req.plan()
	if err != nil {
		return "", err
	}
	return p.key, nil
}

// timeout resolves the request's wait deadline against the server default
// and ceiling.
func (req *SimulateRequest) timeout(def, max time.Duration) time.Duration {
	d := def
	if req.TimeoutMs > 0 {
		d = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if max > 0 && d > max {
		d = max
	}
	return d
}

// simArtifact is the stored (and therefore shareable) part of a simulate
// result: everything except per-request serving metadata.
type simArtifact struct {
	App string `json:"app"`
	// Report is the rendered evaluation report, byte-identical to the
	// local daerun output for the same parameters.
	Report string `json:"report"`
	// Quarantined maps task types the runtime supervisor quarantined
	// during this collection to their fault kinds. Non-empty artifacts are
	// never stored in the shared store.
	Quarantined map[string]string `json:"quarantined,omitempty"`
}

// SimulateResponse is the wire response of POST /v1/simulate.
type SimulateResponse struct {
	App string `json:"app"`
	// Report is byte-identical to the local daerun rendering.
	Report string `json:"report"`
	// Degraded marks a response served through a degraded pipeline: the
	// runtime quarantined task types during collection, or the tenant has
	// prior quarantine history for this app.
	Degraded bool `json:"degraded,omitempty"`
	// Quarantined merges this run's quarantines with the tenant's recorded
	// history for the app.
	Quarantined map[string]string `json:"quarantined,omitempty"`
	// CacheHit reports the response was served from the artifact store
	// without touching the pipeline.
	CacheHit bool `json:"cache_hit"`
	// Collapsed reports the request joined an identical in-flight request
	// instead of executing the pipeline itself.
	Collapsed bool `json:"collapsed"`
	// Key is the content key of the result in the artifact store.
	Key string `json:"key"`
	// ElapsedMs is the server-side latency of this request.
	ElapsedMs float64 `json:"elapsed_ms"`
}

// CompileRequest asks the server to compile one app and return the static
// artifacts: generation decisions, purity proofs, and the generated access
// variants' IR.
type CompileRequest struct {
	App string `json:"app"`
	// Refine applies profile-guided prefetch pruning to the generated
	// access versions before reporting them.
	Refine bool `json:"refine,omitempty"`
	// TimeoutMs bounds the wait, as in SimulateRequest.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// compileKey is the content key of a compile artifact.
func (req *CompileRequest) compileKey() string {
	return fmt.Sprintf("compile/v1;app=%s;refine=%t", req.App, req.Refine)
}

// Key returns the request's content key (see SimulateRequest.Key).
func (req *CompileRequest) Key() (string, error) { return req.compileKey(), nil }

func (req *CompileRequest) timeout(def, max time.Duration) time.Duration {
	d := def
	if req.TimeoutMs > 0 {
		d = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if max > 0 && d > max {
		d = max
	}
	return d
}

// CompileResponse is the wire response of POST /v1/compile. Strategies is
// the generation-decision report; Purity holds the per-task purity verdict
// lines; Modules maps each task with a generated access version to its IR
// listing.
type CompileResponse struct {
	App        string            `json:"app"`
	Strategies string            `json:"strategies"`
	Purity     string            `json:"purity"`
	Modules    map[string]string `json:"modules,omitempty"`
	CacheHit   bool              `json:"cache_hit"`
	Collapsed  bool              `json:"collapsed"`
	Key        string            `json:"key"`
	ElapsedMs  float64           `json:"elapsed_ms"`
}

// compileArtifact is the stored part of a compile result.
type compileArtifact struct {
	App        string            `json:"app"`
	Strategies string            `json:"strategies"`
	Purity     string            `json:"purity"`
	Modules    map[string]string `json:"modules,omitempty"`
}

// ErrorResponse is the wire form of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Class is the fault taxonomy class of the failure (fault.ClassOf).
	Class string `json:"class,omitempty"`
	// RetryAfterMs accompanies 429 responses: the client should back off
	// at least this long before retrying.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
	// Epoch and Members accompany 421 Misdirected Request responses: the
	// node's current membership epoch and member list, so an epoch-aware
	// client adopts the fresh view and re-routes instead of blindly failing
	// over.
	Epoch   uint64   `json:"epoch,omitempty"`
	Members []string `json:"members,omitempty"`
}

// MembersRequest is the wire body of POST /v1/members: admin join/leave
// plus peer gossip of the newest membership epoch.
type MembersRequest struct {
	// Op is "join" or "leave" (admin operations naming Node), or "gossip"
	// (peer-to-peer propagation carrying Epoch and Members).
	Op string `json:"op"`
	// Node is the advertised base URL joining or leaving (admin ops).
	Node string `json:"node,omitempty"`
	// Epoch and Members carry a full view for gossip. A receiver adopts the
	// view iff it is newer than its own; receivers never re-gossip, so one
	// admin change fans out exactly once.
	Epoch   uint64   `json:"epoch,omitempty"`
	Members []string `json:"members,omitempty"`
}

// MembersResponse answers POST /v1/members with the node's view after the
// operation.
type MembersResponse struct {
	Epoch   uint64   `json:"epoch"`
	Members []string `json:"members"`
}

// RingResponse is the wire response of GET /v1/ring: the node's current
// view of the cluster, for debugging and for client Refresh.
type RingResponse struct {
	Epoch    uint64   `json:"epoch"`
	Self     string   `json:"self"`
	Members  []string `json:"members"`
	Replicas int      `json:"replicas"`
	// Ownership maps each member to its fraction of the key space (primary
	// arc length).
	Ownership map[string]float64 `json:"ownership"`
	// Warming reports the node is still streaming its newly-owned hot
	// envelopes from prior owners after a join.
	Warming bool `json:"warming,omitempty"`
}
