package daed

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dae/internal/eval"
)

// newTestServer starts a daed server over httptest and returns it with a
// ready client.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, &Client{Base: ts.URL}
}

// TestSimulateCollapseAndStore is the tentpole acceptance test: N identical
// concurrent requests trigger exactly one pipeline execution — every
// response is either the leader's, collapsed onto the in-flight execution,
// or served from the artifact store — and all N reports are byte-identical.
func TestSimulateCollapseAndStore(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2})
	const n = 12
	ctx := context.Background()
	req := &SimulateRequest{App: "CG"}

	var wg sync.WaitGroup
	resps := make([]*SimulateResponse, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = c.Simulate(ctx, req)
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := s.Stats().Executions; got != 1 {
		t.Fatalf("pipeline executions = %d, want exactly 1 for %d identical requests", got, n)
	}
	leaders, collapsed, hits := 0, 0, 0
	for i, r := range resps {
		if r.Report != resps[0].Report {
			t.Errorf("request %d report differs from request 0", i)
		}
		if r.Degraded {
			t.Errorf("request %d unexpectedly degraded", i)
		}
		switch {
		case r.CacheHit:
			hits++
		case r.Collapsed:
			collapsed++
		default:
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("leaders = %d (collapsed %d, store hits %d), want exactly 1", leaders, collapsed, hits)
	}

	// A later identical request is a pure store hit: still one execution.
	r, err := c.Simulate(ctx, req)
	if err != nil {
		t.Fatalf("warm request: %v", err)
	}
	if !r.CacheHit || r.Report != resps[0].Report {
		t.Errorf("warm request: cacheHit=%t, report identical=%t; want true, true",
			r.CacheHit, r.Report == resps[0].Report)
	}
	if got := s.Stats().Executions; got != 1 {
		t.Errorf("executions after warm request = %d, want 1", got)
	}
}

// TestSimulateByteIdenticalToLocal: the server's report is byte-identical
// to running the same plan through the local pipeline — one formatter, one
// trace semantics, two transports.
func TestSimulateByteIdenticalToLocal(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 2})
	req := &SimulateRequest{App: "CG", Cores: 2}
	resp, err := c.Simulate(context.Background(), req)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}

	p, err := req.plan()
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	data, err := eval.CollectWith(context.Background(), p.app, p.cfg, eval.CollectOptions{Workers: 1})
	if err != nil {
		t.Fatalf("local collection: %v", err)
	}
	want := eval.FormatRunReport(data, p.machine)
	if resp.Report != want {
		t.Fatalf("remote report differs from local rendering:\nremote:\n%q\nlocal:\n%q", resp.Report, want)
	}
}

// TestSimulateSaturation: with one worker and no wait queue, a burst of
// distinct-key requests is shed at admission with 429 + Retry-After while
// admitted work completes normally.
func TestSimulateSaturation(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, QueueDepth: -1})
	const n = 6
	var wg sync.WaitGroup
	errs := make([]error, n)
	resps := make([]*SimulateResponse, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct core counts give every request its own content key,
			// so nothing collapses and admission control must arbitrate.
			resps[i], errs[i] = c.Simulate(context.Background(), &SimulateRequest{App: "CG", Cores: i + 1})
		}(i)
	}
	wg.Wait()

	ok, saturated := 0, 0
	for i, err := range errs {
		switch {
		case err == nil:
			ok++
			if resps[i].Report == "" {
				t.Errorf("request %d: admitted but empty report", i)
			}
		default:
			var re *RemoteError
			if !asRemote(err, &re) || !re.Saturated() {
				t.Fatalf("request %d: %v, want nil or 429", i, err)
			}
			saturated++
			if re.RetryAfter <= 0 {
				t.Errorf("request %d: 429 without a Retry-After hint", i)
			}
		}
	}
	if ok == 0 {
		t.Error("saturated server served nothing")
	}
	if saturated == 0 {
		t.Errorf("burst of %d distinct requests on 1 worker with no queue produced no 429", n)
	}
	if got := s.Stats().Rejected; got != int64(saturated) {
		t.Errorf("stats.Rejected = %d, want %d", got, saturated)
	}
}

func asRemote(err error, re **RemoteError) bool { return errors.As(err, re) }

// TestClientDisconnectFreesWorker: the only worker is occupied by a request
// whose client disconnects mid-collection. The refcounted flight context
// aborts the pipeline, the slot frees, and a subsequent request is served.
// The aborted key was never stored, so retrying it re-executes.
func TestClientDisconnectFreesWorker(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	// LU is the slowest benchmark (hundreds of ms even without -race), so
	// canceling 100ms in lands mid-collection.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Simulate(ctx, &SimulateRequest{App: "LU"})
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	if err := <-done; err == nil {
		t.Fatal("canceled request returned a result")
	}

	// The worker slot must free promptly: a fresh request on the sole
	// worker completes well before LU could have finished had it leaked.
	start := time.Now()
	resp, err := c.Simulate(context.Background(), &SimulateRequest{App: "CG"})
	if err != nil {
		t.Fatalf("request after disconnect: %v (slot leaked?)", err)
	}
	if resp.Report == "" {
		t.Error("empty report after disconnect recovery")
	}
	t.Logf("post-disconnect request served in %v", time.Since(start))

	// The aborted artifact never entered the store: the same key re-executes.
	resp, err = c.Simulate(context.Background(), &SimulateRequest{App: "LU"})
	if err != nil {
		t.Fatalf("retry of aborted key: %v", err)
	}
	if resp.CacheHit {
		t.Error("aborted execution left an artifact in the store")
	}
	st := s.Stats()
	if st.Canceled == 0 {
		t.Errorf("stats.Canceled = 0, want >= 1")
	}
	if st.InFlight != 0 || st.Waiting != 0 {
		t.Errorf("gauges not drained: inFlight=%d waiting=%d", st.InFlight, st.Waiting)
	}
}

// TestTenantQuarantineIsolation: an injected access fault degrades the
// injecting tenant's requests — and only that tenant's. Other tenants keep
// getting clean, store-served results; clearing the quarantine restores the
// tenant.
func TestTenantQuarantineIsolation(t *testing.T) {
	s, cDefault := newTestServer(t, Config{Workers: 2})
	cChaos := &Client{Base: cDefault.Base, Tenant: "chaos"}
	ctx := context.Background()

	// The chaos tenant injects an access-phase trap into CG's compiler-DAE
	// run: the supervisor quarantines the task type and the response is
	// flagged degraded.
	resp, err := cChaos.Simulate(ctx, &SimulateRequest{App: "CG", Inject: "access-phase,CG,compiler-dae,,trap!"})
	if err != nil {
		t.Fatalf("injected simulate: %v", err)
	}
	if !resp.Degraded || len(resp.Quarantined) == 0 {
		t.Fatalf("injected access fault not quarantined: degraded=%t quarantined=%v",
			resp.Degraded, resp.Quarantined)
	}
	for task, kind := range resp.Quarantined {
		if kind != "trap" {
			t.Errorf("task %s quarantined as %q, want trap", task, kind)
		}
	}

	// The chaos tenant's later CLEAN request for the same app still serves
	// degraded: quarantine is a tenant property, not a request property.
	resp, err = cChaos.Simulate(ctx, &SimulateRequest{App: "CG"})
	if err != nil {
		t.Fatalf("chaos clean simulate: %v", err)
	}
	if !resp.Degraded || len(resp.Quarantined) == 0 {
		t.Error("chaos tenant's quarantine did not persist across requests")
	}

	// The default tenant is untouched: clean result, clean flags, and its
	// report matches an independent local rendering (the chaos tenant's
	// poison never reached the shared store).
	clean, err := cDefault.Simulate(ctx, &SimulateRequest{App: "CG"})
	if err != nil {
		t.Fatalf("default tenant simulate: %v", err)
	}
	if clean.Degraded || len(clean.Quarantined) != 0 {
		t.Fatalf("default tenant inherited chaos quarantine: %+v", clean)
	}
	p, _ := (&SimulateRequest{App: "CG"}).plan()
	data, err := eval.CollectWith(ctx, p.app, p.cfg, eval.CollectOptions{Workers: 1})
	if err != nil {
		t.Fatalf("local collection: %v", err)
	}
	if want := eval.FormatRunReport(data, p.machine); clean.Report != want {
		t.Error("default tenant's report differs from a clean local run: store was poisoned")
	}
	if st := s.Stats(); st.QuarantinedTenants != 1 {
		t.Errorf("QuarantinedTenants = %d, want 1", st.QuarantinedTenants)
	}

	// Clearing the quarantine restores the chaos tenant to the clean path.
	n, err := cChaos.ClearQuarantine(ctx)
	if err != nil || n == 0 {
		t.Fatalf("ClearQuarantine = %d, %v; want > 0, nil", n, err)
	}
	resp, err = cChaos.Simulate(ctx, &SimulateRequest{App: "CG"})
	if err != nil {
		t.Fatalf("chaos simulate after clear: %v", err)
	}
	if resp.Degraded {
		t.Error("chaos tenant still degraded after clearing quarantine")
	}
	if resp.Report != clean.Report {
		t.Error("restored chaos tenant does not see the shared clean artifact")
	}
}

// TestCompileEndpoint: compile artifacts — strategy report, purity
// verdicts, generated module IR — are served, stored, and collapsed like
// simulate artifacts.
func TestCompileEndpoint(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	resp, err := c.Compile(ctx, &CompileRequest{App: "CG"})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if resp.Strategies == "" || !strings.Contains(resp.Strategies, "CG") {
		t.Errorf("strategy report missing or empty: %q", resp.Strategies)
	}
	if !strings.Contains(resp.Purity, "purity PASS") {
		t.Errorf("purity report has no PASS verdict:\n%s", resp.Purity)
	}
	if len(resp.Modules) == 0 {
		t.Error("no generated access modules returned")
	}
	for task, ir := range resp.Modules {
		if ir == "" {
			t.Errorf("task %s: empty IR listing", task)
		}
	}

	warm, err := c.Compile(ctx, &CompileRequest{App: "CG"})
	if err != nil {
		t.Fatalf("warm compile: %v", err)
	}
	if !warm.CacheHit {
		t.Error("second identical compile was not a store hit")
	}
	if warm.Strategies != resp.Strategies || warm.Purity != resp.Purity {
		t.Error("warm compile artifact differs from cold")
	}
	if got := s.Stats().Executions; got != 1 {
		t.Errorf("compile executions = %d, want 1", got)
	}
}

// TestBadRequests: malformed requests are client errors, not executions.
func TestBadRequests(t *testing.T) {
	s, c := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	cases := []SimulateRequest{
		{App: "NoSuchApp"},
		{App: "CG", Degrade: "sometimes"},
		{App: "CG", Engine: "jit"},
		{App: "CG", Inject: "nonsense"},
		{App: "CG", Cores: -1},
	}
	for _, req := range cases {
		_, err := c.Simulate(ctx, &req)
		var re *RemoteError
		if !asRemote(err, &re) || re.Status != http.StatusBadRequest {
			t.Errorf("request %+v: err = %v, want 400", req, err)
		}
	}
	if got := s.Stats().Executions; got != 0 {
		t.Errorf("bad requests triggered %d executions", got)
	}
}

// TestServerStepBudgetClamp: the server-wide MaxSteps ceiling applies to
// requests that ask for more (or for no budget), surfacing as a pipeline
// fault rather than unbounded work.
func TestServerStepBudgetClamp(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1, MaxSteps: 1})
	_, err := c.Simulate(context.Background(), &SimulateRequest{App: "CG"})
	var re *RemoteError
	if !asRemote(err, &re) || re.Status != http.StatusInternalServerError {
		t.Fatalf("clamped request err = %v, want 500", err)
	}
	if !strings.Contains(re.Body.Class, "step-budget") {
		t.Errorf("fault class = %q, want step-budget", re.Body.Class)
	}
}

// TestThousandConcurrentRequests: a kilorequest burst on a warm key — every
// request answered, none lost or hung, all byte-identical, and the pipeline
// ran exactly once.
func TestThousandConcurrentRequests(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns 1000 concurrent requests")
	}
	s, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	warm, err := c.Simulate(ctx, &SimulateRequest{App: "CG"})
	if err != nil {
		t.Fatalf("warming request: %v", err)
	}

	const n = 1000
	var wg sync.WaitGroup
	errsc := make(chan error, n)
	diff := make(chan int, n)
	deadline, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := c.Simulate(deadline, &SimulateRequest{App: "CG"})
			if err != nil {
				errsc <- err
				return
			}
			if r.Report != warm.Report {
				diff <- i
			}
		}(i)
	}
	wg.Wait()
	close(errsc)
	close(diff)
	for err := range errsc {
		t.Fatalf("request lost under kilorequest burst: %v", err)
	}
	for i := range diff {
		t.Errorf("request %d: report differs under load", i)
	}
	st := s.Stats()
	if st.Executions != 1 {
		t.Errorf("executions under hot-key burst = %d, want 1", st.Executions)
	}
	if st.Requests < n+1 {
		t.Errorf("requests = %d, want >= %d", st.Requests, n+1)
	}
	if st.InFlight != 0 || st.Waiting != 0 {
		t.Errorf("gauges not drained: inFlight=%d waiting=%d", st.InFlight, st.Waiting)
	}
}

// TestStatsEndpoint: the counters are served over the wire.
func TestStatsEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{Workers: 1})
	if _, err := c.Simulate(context.Background(), &SimulateRequest{App: "CG"}); err != nil {
		t.Fatalf("simulate: %v", err)
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Requests != 1 || st.Executions != 1 {
		t.Errorf("stats = %+v, want 1 request and 1 execution", st)
	}
	if st.LatencyP50Ms <= 0 {
		t.Errorf("p50 latency = %v, want > 0", st.LatencyP50Ms)
	}
}

// TestStorePersistsAcrossServers: a new server over the same directory
// serves the old server's artifacts without re-executing — the store (and
// the trace cache under it) is the durable layer.
func TestStorePersistsAcrossServers(t *testing.T) {
	dir := t.TempDir()
	s1, c1 := newTestServer(t, Config{Workers: 1, Dir: dir})
	cold, err := c1.Simulate(context.Background(), &SimulateRequest{App: "CG"})
	if err != nil {
		t.Fatalf("cold simulate: %v", err)
	}
	if got := s1.Stats().Executions; got != 1 {
		t.Fatalf("cold executions = %d, want 1", got)
	}

	s2, c2 := newTestServer(t, Config{Workers: 1, Dir: dir})
	warm, err := c2.Simulate(context.Background(), &SimulateRequest{App: "CG"})
	if err != nil {
		t.Fatalf("warm simulate: %v", err)
	}
	if !warm.CacheHit {
		t.Error("restarted server missed its persisted store")
	}
	if warm.Report != cold.Report {
		t.Error("persisted artifact differs from the original")
	}
	if got := s2.Stats().Executions; got != 0 {
		t.Errorf("restarted server executed %d pipelines, want 0", got)
	}
}
