package daed

import (
	"context"
	"errors"
	"testing"
	"time"

	"dae/internal/fault"
)

// TestQueueAdmission: workers=1, depth=1. The first acquire takes the slot,
// the second waits, the third is rejected with a saturatedError carrying a
// Retry-After hint, and releasing the slot admits the waiter.
func TestQueueAdmission(t *testing.T) {
	var st stats
	q := newQueue(1, 1, &st)
	if err := q.acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	admitted := make(chan error, 1)
	go func() { admitted <- q.acquire(context.Background()) }()
	// Wait until the second caller is parked in the wait queue.
	deadline := time.Now().Add(5 * time.Second)
	for st.waiting.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second acquire never queued")
		}
		time.Sleep(time.Millisecond)
	}

	err := q.acquire(context.Background())
	if !errors.Is(err, errSaturated) {
		t.Fatalf("third acquire = %v, want errSaturated", err)
	}
	var sat *saturatedError
	if !errors.As(err, &sat) || sat.retryAfter <= 0 {
		t.Fatalf("saturation error carries no retry hint: %v", err)
	}
	if got := st.rejected.Load(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}

	q.release()
	if err := <-admitted; err != nil {
		t.Fatalf("queued acquire after release: %v", err)
	}
	q.release()
}

// TestQueueCancelWhileWaiting: a caller whose context dies in the wait queue
// gets a fault.KindTimeout error, frees its queue position, and never holds
// a slot.
func TestQueueCancelWhileWaiting(t *testing.T) {
	var st stats
	q := newQueue(1, 1, &st)
	if err := q.acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- q.acquire(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for st.waiting.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("acquire never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	err := <-errc
	if !errors.Is(err, fault.ErrTimeout) {
		t.Fatalf("canceled wait = %v, want fault.ErrTimeout", err)
	}
	if st.waiting.Load() != 0 {
		t.Errorf("waiting gauge = %d after cancellation, want 0", st.waiting.Load())
	}
	// The abandoned wait must have freed its queue position: a new caller
	// can queue again (depth is 1).
	go func() { errc <- q.acquire(context.Background()) }()
	for st.waiting.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue position was not freed by the canceled waiter")
		}
		time.Sleep(time.Millisecond)
	}
	q.release()
	if err := <-errc; err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	q.release()
}
