package daed

import (
	"sort"
	"sync"
	"sync/atomic"

	"dae/internal/daed/store"
)

// latencyWindow is how many recent request latencies the percentile
// reservoir keeps. 4096 spans several daeload bursts while bounding the
// server's accounting footprint.
const latencyWindow = 4096

// stats aggregates the server's serving counters. All fields are updated
// atomically; the latency reservoir is a mutex-guarded ring.
type stats struct {
	requests   atomic.Int64 // requests accepted into a handler
	storeHits  atomic.Int64 // served directly from the artifact store
	collapsed  atomic.Int64 // joined an identical in-flight execution
	executions atomic.Int64 // pipeline executions actually run
	rejected   atomic.Int64 // 429s (queue saturated)
	canceled   atomic.Int64 // requests whose wait ended in cancellation/deadline
	faults     atomic.Int64 // pipeline executions that failed
	degraded   atomic.Int64 // responses served degraded (tenant quarantine)
	inFlight   atomic.Int64 // executions currently holding a worker slot
	waiting    atomic.Int64 // executions currently queued for a slot

	// cluster traffic
	proxied       atomic.Int64 // requests relayed to a key's owner
	replicatedIn  atomic.Int64 // artifact envelopes accepted from peers
	replicatedOut atomic.Int64 // artifact envelopes pushed to peers
	handedOff     atomic.Int64 // envelopes handed to survivors during drain

	// self-healing
	repairRounds  atomic.Int64 // anti-entropy passes over the local store
	repairPushed  atomic.Int64 // envelopes pushed to under-replicated owners
	repairDropped atomic.Int64 // no-longer-owned keys released after confirming R copies
	readRepairs   atomic.Int64 // envelopes installed by read-repair (push or pull)
	warmed        atomic.Int64 // envelopes streamed from prior owners on join
	redirected    atomic.Int64 // 421s answered to stale epoch-aware clients

	mu   sync.Mutex
	ring [latencyWindow]float64
	n    int // total recorded; ring index is n % latencyWindow
}

// observe records one served request's latency in milliseconds.
func (s *stats) observe(ms float64) {
	s.mu.Lock()
	s.ring[s.n%latencyWindow] = ms
	s.n++
	s.mu.Unlock()
}

// percentiles returns the p50 and p99 of the reservoir (0, 0 when empty).
func (s *stats) percentiles() (p50, p99 float64) {
	s.mu.Lock()
	n := s.n
	if n > latencyWindow {
		n = latencyWindow
	}
	lat := make([]float64, n)
	copy(lat, s.ring[:n])
	s.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Float64s(lat)
	idx := func(p float64) int {
		i := int(p * float64(n-1))
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return i
	}
	return lat[idx(0.50)], lat[idx(0.99)]
}

// StatsSnapshot is the wire form of GET /v1/stats.
type StatsSnapshot struct {
	Requests   int64 `json:"requests"`
	StoreHits  int64 `json:"store_hits"`
	Collapsed  int64 `json:"collapsed"`
	Executions int64 `json:"executions"`
	Rejected   int64 `json:"rejected"`
	Canceled   int64 `json:"canceled"`
	Faults     int64 `json:"faults"`
	Degraded   int64 `json:"degraded"`
	InFlight   int64 `json:"in_flight"`
	Waiting    int64 `json:"waiting"`
	// QuarantinedTenants counts tenants with recorded quarantine state.
	QuarantinedTenants int64   `json:"quarantined_tenants"`
	LatencyP50Ms       float64 `json:"latency_p50_ms"`
	LatencyP99Ms       float64 `json:"latency_p99_ms"`
	// Cluster traffic: requests proxied to a key's owner, artifact envelopes
	// replicated in/out, and envelopes handed to survivors during drain.
	Proxied       int64 `json:"proxied"`
	ReplicatedIn  int64 `json:"replicated_in"`
	ReplicatedOut int64 `json:"replicated_out"`
	HandedOff     int64 `json:"handed_off"`
	// Self-healing: anti-entropy rounds/pushes/drops, read-repair installs,
	// join warmup streams, and 421 redirects answered to stale clients.
	RepairRounds  int64 `json:"repair_rounds"`
	RepairPushed  int64 `json:"repair_pushed"`
	RepairDropped int64 `json:"repair_dropped"`
	ReadRepairs   int64 `json:"read_repairs"`
	Warmed        int64 `json:"warmed"`
	Redirected    int64 `json:"redirected"`
	// Draining reports the node has begun its drain protocol.
	Draining bool `json:"draining,omitempty"`
	// Ring is the node's membership view (nil on a standalone server).
	Ring *RingSnapshot `json:"ring,omitempty"`
	// Store is the artifact store's accounting: retained bytes vs budget,
	// evictions, and the startup scrub report.
	Store store.Stats `json:"store"`
}

// RingSnapshot is the ring section of GET /v1/stats.
type RingSnapshot struct {
	Epoch    uint64   `json:"epoch"`
	Self     string   `json:"self"`
	Members  []string `json:"members"`
	Replicas int      `json:"replicas"`
	// Ownership maps each member to its primary share of the key space.
	Ownership map[string]float64 `json:"ownership"`
	// Warming reports a join warmup still streaming envelopes.
	Warming bool `json:"warming,omitempty"`
}

func (s *stats) snapshot(quarantinedTenants int64) StatsSnapshot {
	p50, p99 := s.percentiles()
	return StatsSnapshot{
		Requests:           s.requests.Load(),
		StoreHits:          s.storeHits.Load(),
		Collapsed:          s.collapsed.Load(),
		Executions:         s.executions.Load(),
		Rejected:           s.rejected.Load(),
		Canceled:           s.canceled.Load(),
		Faults:             s.faults.Load(),
		Degraded:           s.degraded.Load(),
		InFlight:           s.inFlight.Load(),
		Waiting:            s.waiting.Load(),
		QuarantinedTenants: quarantinedTenants,
		LatencyP50Ms:       p50,
		LatencyP99Ms:       p99,
		Proxied:            s.proxied.Load(),
		ReplicatedIn:       s.replicatedIn.Load(),
		ReplicatedOut:      s.replicatedOut.Load(),
		HandedOff:          s.handedOff.Load(),
		RepairRounds:       s.repairRounds.Load(),
		RepairPushed:       s.repairPushed.Load(),
		RepairDropped:      s.repairDropped.Load(),
		ReadRepairs:        s.readRepairs.Load(),
		Warmed:             s.warmed.Load(),
		Redirected:         s.redirected.Load(),
	}
}
