package daed

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	daepass "dae/internal/dae"
	"dae/internal/eval"
	"dae/internal/fault"
)

// TraceRequest asks the server for one app's full collected trace set (the
// coupled, manual-DAE and compiler-DAE traces plus compiler result
// summaries). It is the bulk-data sibling of SimulateRequest: instead of a
// rendered report, the client gets the traces themselves and evaluates any
// number of policies locally — this is how a remote daebench reproduces
// every experiment from one round-trip per app.
type TraceRequest struct {
	App string `json:"app"`
	// Cores is the simulated core count; 0 means the default 4.
	Cores int `json:"cores,omitempty"`
	// Refine applies profile-guided prefetch pruning before tracing.
	Refine bool `json:"refine,omitempty"`
	// MaxSteps, Degrade and Engine are as in SimulateRequest.
	MaxSteps int64  `json:"max_steps,omitempty"`
	Degrade  string `json:"degrade,omitempty"`
	Engine   string `json:"engine,omitempty"`
	// TimeoutMs bounds the wait (QoS, not content).
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// TraceResponse is the wire response of POST /v1/trace.
type TraceResponse struct {
	Data *eval.AppDataWire `json:"data"`
	// Degraded marks a trace set collected through a degraded pipeline
	// (runtime quarantines fired). Degraded sets are never stored.
	Degraded  bool    `json:"degraded,omitempty"`
	CacheHit  bool    `json:"cache_hit"`
	Collapsed bool    `json:"collapsed"`
	Key       string  `json:"key"`
	ElapsedMs float64 `json:"elapsed_ms"`
}

// traceArtifact is the stored part of a trace response.
type traceArtifact struct {
	Data     *eval.AppDataWire `json:"data"`
	Degraded bool              `json:"degraded,omitempty"`
}

// simulateRequest projects the trace request onto the simulate planner —
// same validation, same defaults — then rekeys the plan under the trace/
// namespace (traces are frequency-independent, so ZeroLatency never
// appears here).
func (req *TraceRequest) plan() (*simPlan, error) {
	sr := SimulateRequest{
		App: req.App, Cores: req.Cores, Refine: req.Refine,
		MaxSteps: req.MaxSteps, Degrade: req.Degrade, Engine: req.Engine,
	}
	p, err := sr.plan()
	if err != nil {
		return nil, err
	}
	p.key = "trace/v1;" + p.key
	return p, nil
}

// Key returns the request's content key (see SimulateRequest.Key).
func (req *TraceRequest) Key() (string, error) {
	p, err := req.plan()
	if err != nil {
		return "", err
	}
	return p.key, nil
}

func (req *TraceRequest) timeout(def, max time.Duration) time.Duration {
	d := def
	if req.TimeoutMs > 0 {
		d = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if max > 0 && d > max {
		d = max
	}
	return d
}

// handleTrace serves POST /v1/trace.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.stats.requests.Add(1)
	if s.draining.Load() {
		s.rejectDraining(w)
		return
	}
	var req TraceRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad request: " + err.Error(), Class: "parse"})
		return
	}
	req.MaxSteps = s.clampSteps(req.MaxSteps)
	p, err := req.plan()
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Class: "parse"})
		return
	}
	s.store.Pin(p.key)
	defer s.store.Unpin(p.key)
	ctx, cancel := context.WithTimeout(r.Context(), req.timeout(s.cfg.DefaultTimeout, s.cfg.MaxTimeout))
	defer cancel()

	v := s.clusterView()
	if b, ok := s.store.Get(p.key); ok {
		var art traceArtifact
		if err := json.Unmarshal(b, &art); err == nil {
			s.stats.storeHits.Add(1)
			s.respondTrace(w, &art, p.key, true, false, start)
			s.maybeReadRepair(v, p.key, b)
			return
		}
	}
	if s.notOwnerRedirect(w, r, v, p.key) {
		return
	}
	if b, ok := s.pullFromReplicas(ctx, v, p.key); ok {
		var art traceArtifact
		if err := json.Unmarshal(b, &art); err == nil {
			s.stats.storeHits.Add(1)
			s.respondTrace(w, &art, p.key, true, false, start)
			return
		}
	}
	if v != nil && s.proxy(w, r.WithContext(ctx), v, "/v1/trace", p.key, &req) {
		return
	}
	for {
		f, leader := s.traceFlights.join(p.key, func(pctx context.Context) (*traceArtifact, error) {
			return s.runTrace(pctx, p)
		})
		art, err := f.wait(ctx)
		if err != nil {
			if !leader && errors.Is(err, fault.ErrTimeout) && ctx.Err() == nil {
				continue
			}
			s.writeError(w, r, err)
			return
		}
		if !leader {
			s.stats.collapsed.Add(1)
		}
		s.respondTrace(w, art, p.key, false, !leader, start)
		return
	}
}

func (s *Server) respondTrace(w http.ResponseWriter, art *traceArtifact, key string, cacheHit, collapsed bool, start time.Time) {
	if art.Degraded {
		s.stats.degraded.Add(1)
	}
	resp := &TraceResponse{
		Data:      art.Data,
		Degraded:  art.Degraded,
		CacheHit:  cacheHit,
		Collapsed: collapsed,
		Key:       key,
		ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
	}
	s.stats.observe(resp.ElapsedMs)
	s.writeJSON(w, http.StatusOK, resp)
}

// runTrace collects one app's trace set under the admission-controlled
// queue and encodes it for the wire. Clean sets enter the shared store and
// replicate; degraded sets (transient runtime faults) are returned but
// never stored, mirroring the trace cache's own rule.
func (s *Server) runTrace(ctx context.Context, p *simPlan) (*traceArtifact, error) {
	if err := s.q.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.q.release()
	s.stats.executions.Add(1)
	s.stats.inFlight.Add(1)
	defer s.stats.inFlight.Add(-1)
	ctx, cancel := context.WithTimeout(ctx, s.cfg.MaxRunTime)
	defer cancel()

	opts := eval.CollectOptions{Workers: s.cfg.RunWorkers, Cache: s.traces}
	if p.refine {
		opts.Refine = &eval.RefineSpec{Options: daepass.DefaultRefine(), PerTask: 4}
	}
	data, err := eval.CollectWith(ctx, p.app, p.cfg, opts)
	if err != nil {
		return nil, err
	}
	wire, err := eval.EncodeAppData(data)
	if err != nil {
		return nil, err
	}
	art := &traceArtifact{Data: wire}
	for _, row := range eval.DegradationRows([]*eval.AppData{data}) {
		if len(row.Quarantined) > 0 || row.FailedTasks > 0 {
			art.Degraded = true
		}
	}
	if !art.Degraded {
		if b, err := json.Marshal(art); err == nil {
			if err := s.store.Put(p.key, b); err != nil {
				s.cfg.Log.Printf("daed: artifact store write failed for %s: %v", p.key, err)
			}
			s.replicate(p.key, b)
		}
	}
	return art, nil
}
