package daed

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"dae/internal/daed/ring"
)

// DefaultRingSeed seeds the cluster's consistent-hash ring. Every node and
// every client must agree on it (it is part of the cluster's identity, like
// the membership list), so it has a fixed default; deployments that want a
// different ring set the same seed everywhere.
const DefaultRingSeed = ring.DefaultSeed

// ForwardHeader marks a request as proxied by a cluster peer. A node never
// re-forwards a forwarded request, so a stale ring view cannot loop a
// request around the cluster.
const ForwardHeader = "X-Dae-Forward"

// DefaultReplicas is the replication factor when the config names none:
// every artifact lives on its primary plus one replica, so any single node
// loss keeps the full artifact set reachable.
const DefaultReplicas = 2

// drainHandoffKeys bounds how many hot keys a draining node pushes to the
// surviving owners on exit (and how many a joining node streams per prior
// owner when the config names no WarmKeys). The hottest keys dominate hit
// rate; shipping the whole store would stretch the window for artifacts the
// ring will re-derive on demand anyway.
const drainHandoffKeys = 64

// cluster holds a Server's mutable membership view: the epoch-stamped ring,
// the replication factor, and the HTTP plumbing for replication, proxying,
// gossip, repair, and drain handoff. nil on a standalone server (no Self
// configured); a Self with no Peers is a cluster of one that peers can join.
type cluster struct {
	self        string // this node's advertised base URL (a ring member)
	seed        uint64
	cfgReplicas int // configured R, clamped to the view size at use
	http        *http.Client

	mu   sync.Mutex
	view *ring.View // immutable; membership changes install a new one
}

// newCluster builds the cluster view, or nil when the config describes a
// standalone node.
func newCluster(cfg Config) *cluster {
	if cfg.Self == "" {
		return nil
	}
	seed := cfg.RingSeed
	if seed == 0 {
		seed = DefaultRingSeed
	}
	c := &cluster{
		self:        cfg.Self,
		seed:        seed,
		cfgReplicas: cfg.Replicas,
		http:        &http.Client{},
	}
	if c.cfgReplicas <= 0 {
		c.cfgReplicas = DefaultReplicas
	}
	// Every correctly-configured member boots the same epoch-1 view, so the
	// cluster agrees from the first request; later changes only ever move
	// the epoch forward.
	c.view = ring.At(1, append([]string{cfg.Self}, cfg.Peers...), 0, seed)
	return c
}

// current returns the view a request pins at entry: ownership for the whole
// request is computed against this epoch even if the cluster changes shape
// while it is in flight.
func (c *cluster) current() *ring.View {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.view
}

// adopt installs (epoch, members) if it beats the current view: strictly
// newer epoch wins; an equal epoch with different members resolves
// deterministically to the lexically greater canonical member list, so two
// concurrent changes minting the same epoch converge cluster-wide without
// coordination. Returns the view now in force and whether it changed.
func (c *cluster) adopt(epoch uint64, members []string) (*ring.View, bool) {
	nv := ring.At(epoch, members, 0, c.seed)
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.view
	if nv.Epoch < cur.Epoch {
		return cur, false
	}
	if nv.Epoch == cur.Epoch {
		if strings.Join(nv.Members(), ",") <= strings.Join(cur.Members(), ",") {
			return cur, false
		}
	}
	c.view = nv
	return nv, true
}

// replicasFor clamps the configured replication factor to a view's size.
func (c *cluster) replicasFor(v *ring.View) int {
	r := c.cfgReplicas
	if r > v.Len() {
		r = v.Len()
	}
	return r
}

// owns reports whether this node is in key's replica set under v.
func (c *cluster) owns(v *ring.View, key string) bool {
	return v.Owns(key, c.self, c.replicasFor(v))
}

// owners returns key's replica set under v, in preference order.
func (c *cluster) owners(v *ring.View, key string) []string {
	return v.Nodes(key, c.replicasFor(v))
}

// replicaPeers returns key's owners excluding self, in preference order.
func (c *cluster) replicaPeers(v *ring.View, key string) []string {
	owners := c.owners(v, key)
	out := make([]string, 0, len(owners))
	for _, o := range owners {
		if o != c.self {
			out = append(out, o)
		}
	}
	return out
}

// peers returns every member of v but self.
func (c *cluster) peers(v *ring.View) []string {
	ms := v.Members()
	out := make([]string, 0, len(ms))
	for _, m := range ms {
		if m != c.self {
			out = append(out, m)
		}
	}
	return out
}

// survivors returns the view with self removed at the next epoch: the
// ownership a drain hands off under, and the leave view Drain gossips.
func (c *cluster) survivors(v *ring.View) *ring.View {
	return ring.At(v.Epoch+1, c.peers(v), 0, c.seed)
}

// ArtifactPutRequest is the wire body of PUT /v1/artifact: peer-to-peer
// artifact replication (write-behind, drain handoff, repair, read-repair).
type ArtifactPutRequest struct {
	Key     string          `json:"key"`
	Payload json.RawMessage `json:"payload"`
}

// handleArtifactPut serves PUT /v1/artifact. It is the replication sink:
// peers push envelopes here after executing a pipeline for a key this node
// co-owns, on drain handoff, and from the repair loops. The store
// re-validates and re-checksums the payload, so a damaged envelope is
// rejected, never stored. 204 means installed; 200 means the node already
// held the key, so senders can count real installs.
func (s *Server) handleArtifactPut(w http.ResponseWriter, r *http.Request) {
	var req ArtifactPutRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad request: " + err.Error(), Class: "parse"})
		return
	}
	if req.Key == "" || len(req.Payload) == 0 {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "daed: artifact put needs key and payload", Class: "parse"})
		return
	}
	if s.store.Has(req.Key) {
		w.WriteHeader(http.StatusOK)
		return
	}
	if err := s.store.Put(req.Key, req.Payload); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Class: "parse"})
		return
	}
	s.stats.replicatedIn.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// handleArtifactGet serves GET /v1/artifact?key=: the raw stored envelope,
// for join warmup, read-repair pulls, and repair pushes between peers. 404
// on a miss. The receiving store re-verifies the envelope on install, so
// this endpoint never needs to.
func (s *Server) handleArtifactGet(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "daed: artifact get needs key", Class: "parse"})
		return
	}
	b, ok := s.store.Get(key)
	if !ok {
		s.writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "daed: no artifact for key", Class: "missing"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

// handleArtifactHead serves HEAD /v1/artifact?key=: a presence probe that
// does not bump the key's recency (repair must not distort the LRU signal).
func (s *Server) handleArtifactHead(w http.ResponseWriter, r *http.Request) {
	if s.store.Has(r.URL.Query().Get("key")) {
		w.WriteHeader(http.StatusOK)
		return
	}
	w.WriteHeader(http.StatusNotFound)
}

// handleKeys serves GET /v1/keys?n=: up to n hottest retained keys,
// most-recently-used first — what a joining node streams from prior owners.
func (s *Server) handleKeys(w http.ResponseWriter, r *http.Request) {
	n := 0
	fmt.Sscanf(r.URL.Query().Get("n"), "%d", &n)
	if n <= 0 {
		n = drainHandoffKeys
	}
	s.writeJSON(w, http.StatusOK, map[string][]string{"keys": s.store.Hottest(n)})
}

// replicate pushes one artifact envelope to key's other owners,
// write-behind: the response to the executing request never waits on peers.
// Failures are logged and dropped — the artifact is re-derivable, the next
// execution on a surviving owner re-replicates, and the anti-entropy loop
// converges whatever both miss.
func (s *Server) replicate(key string, payload []byte) {
	c := s.cluster
	if c == nil {
		return
	}
	v := c.current()
	peers := c.replicaPeers(v, key)
	if len(peers) == 0 {
		return
	}
	body := append([]byte(nil), payload...)
	s.repWG.Add(1)
	go func() {
		defer s.repWG.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, peer := range peers {
			if err := s.putArtifact(ctx, peer, key, body); err != nil {
				s.cfg.Log.Printf("daed: replicate %s to %s: %v", key, peer, err)
				continue
			}
			s.stats.replicatedOut.Add(1)
		}
	}()
}

// putArtifact PUTs one envelope to a peer's replication sink. The returned
// installed flag distinguishes a fresh install (204) from a peer that
// already held the key (200).
func (s *Server) putArtifact(ctx context.Context, peer, key string, payload []byte) error {
	_, err := s.putArtifactInstalled(ctx, peer, key, payload)
	return err
}

func (s *Server) putArtifactInstalled(ctx context.Context, peer, key string, payload []byte) (bool, error) {
	b, err := json.Marshal(ArtifactPutRequest{Key: key, Payload: payload})
	if err != nil {
		return false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, peer+"/v1/artifact", bytes.NewReader(b))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.cluster.http.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("daed: peer %s: artifact put status %d", peer, resp.StatusCode)
	}
	return resp.StatusCode == http.StatusNoContent, nil
}

// clearQuarantinePeers relays a tenant's quarantine lift to every peer.
// Forwarded lifts stay local (ForwardHeader), so two nodes cannot bounce a
// lift between each other. Unreachable peers are logged and skipped: they
// lose their quarantine state anyway when they restart.
func (s *Server) clearQuarantinePeers(r *http.Request, tenant string) int {
	c := s.cluster
	if c == nil || r.Header.Get(ForwardHeader) != "" {
		return 0
	}
	total := 0
	for _, peer := range c.peers(c.current()) {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodDelete, peer+"/v1/quarantine", nil)
		if err != nil {
			continue
		}
		req.Header.Set(ForwardHeader, "1")
		if t := r.Header.Get(TenantHeader); t != "" {
			req.Header.Set(TenantHeader, t)
		}
		resp, err := c.http.Do(req)
		if err != nil {
			s.cfg.Log.Printf("daed: quarantine lift for %s to %s: %v", tenant, peer, err)
			continue
		}
		var body struct {
			Cleared int `json:"cleared"`
		}
		json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body)
		resp.Body.Close()
		total += body.Cleared
	}
	return total
}

// notOwnerRedirect answers 421 Misdirected Request when an epoch-aware
// client at a stale epoch routed a key this node does not own: the response
// carries the fresh epoch and membership so the client adopts and re-routes
// to the real owner. Clients at the current epoch that land here anyway are
// deliberately failing over (their owners are down), so they get the legacy
// proxy path instead — a redirect would just bounce them.
func (s *Server) notOwnerRedirect(w http.ResponseWriter, r *http.Request, v *ring.View, key string) bool {
	c := s.cluster
	if c == nil || r.Header.Get(ForwardHeader) != "" {
		return false
	}
	var clientEpoch uint64
	if _, err := fmt.Sscanf(r.Header.Get(EpochHeader), "%d", &clientEpoch); err != nil || clientEpoch == 0 {
		return false
	}
	if clientEpoch >= v.Epoch || c.owns(v, key) {
		return false
	}
	s.stats.redirected.Add(1)
	s.writeJSON(w, http.StatusMisdirectedRequest, ErrorResponse{
		Error:   fmt.Sprintf("daed: not an owner of this key at epoch %d", v.Epoch),
		Class:   "misdirected",
		Epoch:   v.Epoch,
		Members: v.Members(),
	})
	return true
}

// proxy forwards a request for a key this node does not own (under the
// request's pinned view v) to the key's owners in preference order, relaying
// the first successful response verbatim (so a proxied response is
// byte-identical to one served by the owner). It reports false when no owner
// could serve — the caller then executes locally, because availability beats
// placement.
func (s *Server) proxy(w http.ResponseWriter, r *http.Request, v *ring.View, path, key string, reqBody any) bool {
	c := s.cluster
	if c == nil || c.owns(v, key) || r.Header.Get(ForwardHeader) != "" {
		return false
	}
	b, err := json.Marshal(reqBody)
	if err != nil {
		return false
	}
	for _, owner := range c.owners(v, key) {
		if owner == c.self {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, owner+path, bytes.NewReader(b))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(ForwardHeader, "1")
		if t := r.Header.Get(TenantHeader); t != "" {
			req.Header.Set(TenantHeader, t)
		}
		resp, err := c.http.Do(req)
		if err != nil {
			s.cfg.Log.Printf("daed: proxy %s to %s: %v", key, owner, err)
			continue
		}
		// Only relay definitive successes. A saturated, draining, or failing
		// owner is this node's cue to serve the request itself.
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			s.cfg.Log.Printf("daed: proxy %s to %s: status %d, serving locally", key, owner, resp.StatusCode)
			continue
		}
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(http.StatusOK)
		io.Copy(w, resp.Body)
		resp.Body.Close()
		s.stats.proxied.Add(1)
		return true
	}
	return false
}

// Draining reports whether the server has begun its drain protocol.
func (s *Server) Draining() bool { return s.draining.Load() }

// rejectDraining answers a request arriving after drain began: 503 with a
// Retry-After hint, so resilient clients fail over to a peer immediately.
func (s *Server) rejectDraining(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	s.writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
		Error: "daed: draining", Class: "draining", RetryAfterMs: 1000,
	})
}

// Drain runs the graceful-shutdown protocol: flip /healthz and admission to
// draining (new work is refused with 503 + Retry-After), gossip the leave
// view (membership minus self at the next epoch) so peers converge without
// an admin call, let in-flight and queued executions finish, wait out
// write-behind replication, then hand the hottest artifact envelopes to the
// nodes that own them once this node has left the ring. ctx bounds the whole
// protocol; on expiry Drain returns ctx.Err() with whatever handoff it
// managed. SIGTERM and an admin leave both land here, so every exit is a
// leave.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	s.cfg.Log.Printf("daed: drain: refusing new work")
	var leave *ring.View
	if c := s.cluster; c != nil {
		if cur := c.current(); cur.Len() > 1 {
			leave = c.survivors(cur)
			s.gossip(ctx, leave, c.peers(cur))
		}
	}
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for s.stats.inFlight.Load() > 0 || s.stats.waiting.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
	// Write-behind replication still in flight belongs to executions that
	// just finished; bound the wait with ctx.
	done := make(chan struct{})
	go func() { s.repWG.Wait(); close(done) }()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-done:
	}
	if leave == nil {
		s.cfg.Log.Printf("daed: drain: complete")
		return nil
	}
	c := s.cluster
	handed := 0
	replicas := c.replicasFor(leave)
	for _, key := range s.store.Hottest(drainHandoffKeys) {
		payload, ok := s.store.Get(key)
		if !ok {
			continue
		}
		for _, peer := range leave.Nodes(key, replicas) {
			if err := s.putArtifact(ctx, peer, key, payload); err != nil {
				s.cfg.Log.Printf("daed: drain: handoff %s to %s: %v", key, peer, err)
				if ctx.Err() != nil {
					return ctx.Err()
				}
				continue
			}
			s.stats.handedOff.Add(1)
			handed++
		}
	}
	s.cfg.Log.Printf("daed: drain: complete, handed off %d envelopes", handed)
	return nil
}
