package daed

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"dae/internal/daed/ring"
)

// DefaultRingSeed seeds the cluster's consistent-hash ring. Every node and
// every client must agree on it (it is part of the cluster's identity, like
// the membership list), so it has a fixed default; deployments that want a
// different ring set the same seed everywhere.
const DefaultRingSeed = 0xdae

// ForwardHeader marks a request as proxied by a cluster peer. A node never
// re-forwards a forwarded request, so a stale ring view cannot loop a
// request around the cluster.
const ForwardHeader = "X-Dae-Forward"

// DefaultReplicas is the replication factor when the config names none:
// every artifact lives on its primary plus one replica, so any single node
// loss keeps the full artifact set reachable.
const DefaultReplicas = 2

// drainHandoffKeys bounds how many hot keys a draining node pushes to the
// surviving owners on exit. The hottest keys dominate hit rate; shipping
// the whole store would stretch the drain window for artifacts the ring
// will re-derive on demand anyway.
const drainHandoffKeys = 64

// cluster holds a Server's view of its peers: the shared ring, the
// replication factor, and the HTTP plumbing for replication, proxying, and
// drain handoff. nil on a standalone server.
type cluster struct {
	self     string   // this node's advertised base URL (a ring member)
	members  *ring.Ring
	survivors *ring.Ring // the ring without self: ownership after this node exits
	replicas int
	peers    []string // every member but self
	http     *http.Client
}

// newCluster builds the cluster view, or nil when the config describes a
// standalone node.
func newCluster(cfg Config) *cluster {
	if cfg.Self == "" || len(cfg.Peers) == 0 {
		return nil
	}
	seed := cfg.RingSeed
	if seed == 0 {
		seed = DefaultRingSeed
	}
	members := append([]string{cfg.Self}, cfg.Peers...)
	c := &cluster{
		self:      cfg.Self,
		members:   ring.New(members, 0, seed),
		survivors: ring.New(cfg.Peers, 0, seed),
		http:      &http.Client{},
	}
	c.replicas = cfg.Replicas
	if c.replicas <= 0 {
		c.replicas = DefaultReplicas
	}
	if c.replicas > c.members.Len() {
		c.replicas = c.members.Len()
	}
	for _, m := range c.members.Members() {
		if m != cfg.Self {
			c.peers = append(c.peers, m)
		}
	}
	return c
}

// owns reports whether this node is in key's replica set.
func (c *cluster) owns(key string) bool {
	return c.members.Owns(key, c.self, c.replicas)
}

// replicaPeers returns key's owners excluding self, in preference order.
func (c *cluster) replicaPeers(key string) []string {
	owners := c.members.Nodes(key, c.replicas)
	out := make([]string, 0, len(owners))
	for _, o := range owners {
		if o != c.self {
			out = append(out, o)
		}
	}
	return out
}

// handoffTargets returns the nodes that own key once this node has left
// the ring — the peers a drain must hand the artifact to.
func (c *cluster) handoffTargets(key string) []string {
	n := c.replicas
	if n > c.survivors.Len() {
		n = c.survivors.Len()
	}
	return c.survivors.Nodes(key, n)
}

// ArtifactPutRequest is the wire body of PUT /v1/artifact: peer-to-peer
// artifact replication (write-behind and drain handoff).
type ArtifactPutRequest struct {
	Key     string          `json:"key"`
	Payload json.RawMessage `json:"payload"`
}

// handleArtifactPut serves PUT /v1/artifact. It is the replication sink:
// peers push envelopes here after executing a pipeline for a key this node
// co-owns, and on drain handoff. The store re-validates and re-checksums the
// payload, so a damaged envelope is rejected, never stored.
func (s *Server) handleArtifactPut(w http.ResponseWriter, r *http.Request) {
	var req ArtifactPutRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad request: " + err.Error(), Class: "parse"})
		return
	}
	if req.Key == "" || len(req.Payload) == 0 {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "daed: artifact put needs key and payload", Class: "parse"})
		return
	}
	if err := s.store.Put(req.Key, req.Payload); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Class: "parse"})
		return
	}
	s.stats.replicatedIn.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// replicate pushes one artifact envelope to key's other owners,
// write-behind: the response to the executing request never waits on peers.
// Failures are logged and dropped — the artifact is re-derivable, and the
// next execution on a surviving owner re-replicates.
func (s *Server) replicate(key string, payload []byte) {
	c := s.cluster
	if c == nil {
		return
	}
	peers := c.replicaPeers(key)
	if len(peers) == 0 {
		return
	}
	body := append([]byte(nil), payload...)
	s.repWG.Add(1)
	go func() {
		defer s.repWG.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, peer := range peers {
			if err := s.putArtifact(ctx, peer, key, body); err != nil {
				s.cfg.Log.Printf("daed: replicate %s to %s: %v", key, peer, err)
				continue
			}
			s.stats.replicatedOut.Add(1)
		}
	}()
}

// putArtifact PUTs one envelope to a peer's replication sink.
func (s *Server) putArtifact(ctx context.Context, peer, key string, payload []byte) error {
	b, err := json.Marshal(ArtifactPutRequest{Key: key, Payload: payload})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, peer+"/v1/artifact", bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.cluster.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("daed: peer %s: artifact put status %d", peer, resp.StatusCode)
	}
	return nil
}

// clearQuarantinePeers relays a tenant's quarantine lift to every peer.
// Forwarded lifts stay local (ForwardHeader), so two nodes cannot bounce a
// lift between each other. Unreachable peers are logged and skipped: they
// lose their quarantine state anyway when they restart.
func (s *Server) clearQuarantinePeers(r *http.Request, tenant string) int {
	c := s.cluster
	if c == nil || r.Header.Get(ForwardHeader) != "" {
		return 0
	}
	total := 0
	for _, peer := range c.peers {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodDelete, peer+"/v1/quarantine", nil)
		if err != nil {
			continue
		}
		req.Header.Set(ForwardHeader, "1")
		if t := r.Header.Get(TenantHeader); t != "" {
			req.Header.Set(TenantHeader, t)
		}
		resp, err := c.http.Do(req)
		if err != nil {
			s.cfg.Log.Printf("daed: quarantine lift for %s to %s: %v", tenant, peer, err)
			continue
		}
		var body struct {
			Cleared int `json:"cleared"`
		}
		json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body)
		resp.Body.Close()
		total += body.Cleared
	}
	return total
}

// proxy forwards a request for a key this node does not own to the key's
// owners in preference order, relaying the first successful response
// verbatim (so a proxied response is byte-identical to one served by the
// owner). It reports false when no owner could serve — the caller then
// executes locally, because availability beats placement.
func (s *Server) proxy(w http.ResponseWriter, r *http.Request, path, key string, reqBody any) bool {
	c := s.cluster
	if c == nil || c.owns(key) || r.Header.Get(ForwardHeader) != "" {
		return false
	}
	b, err := json.Marshal(reqBody)
	if err != nil {
		return false
	}
	for _, owner := range c.members.Nodes(key, c.replicas) {
		if owner == c.self {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, owner+path, bytes.NewReader(b))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(ForwardHeader, "1")
		if t := r.Header.Get(TenantHeader); t != "" {
			req.Header.Set(TenantHeader, t)
		}
		resp, err := c.http.Do(req)
		if err != nil {
			s.cfg.Log.Printf("daed: proxy %s to %s: %v", key, owner, err)
			continue
		}
		// Only relay definitive successes. A saturated, draining, or failing
		// owner is this node's cue to serve the request itself.
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			s.cfg.Log.Printf("daed: proxy %s to %s: status %d, serving locally", key, owner, resp.StatusCode)
			continue
		}
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(http.StatusOK)
		io.Copy(w, resp.Body)
		resp.Body.Close()
		s.stats.proxied.Add(1)
		return true
	}
	return false
}

// Draining reports whether the server has begun its drain protocol.
func (s *Server) Draining() bool { return s.draining.Load() }

// rejectDraining answers a request arriving after drain began: 503 with a
// Retry-After hint, so resilient clients fail over to a peer immediately.
func (s *Server) rejectDraining(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	s.writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
		Error: "daed: draining", Class: "draining", RetryAfterMs: 1000,
	})
}

// Drain runs the graceful-shutdown protocol: flip /healthz and admission to
// draining (new work is refused with 503 + Retry-After), let in-flight and
// queued executions finish, wait out write-behind replication, then hand the
// hottest artifact envelopes to the nodes that own them once this node has
// left the ring. ctx bounds the whole protocol; on expiry Drain returns
// ctx.Err() with whatever handoff it managed.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	s.cfg.Log.Printf("daed: drain: refusing new work")
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for s.stats.inFlight.Load() > 0 || s.stats.waiting.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
	// Write-behind replication still in flight belongs to executions that
	// just finished; bound the wait with ctx.
	done := make(chan struct{})
	go func() { s.repWG.Wait(); close(done) }()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-done:
	}
	if s.cluster == nil {
		s.cfg.Log.Printf("daed: drain: complete")
		return nil
	}
	handed := 0
	for _, key := range s.store.Hottest(drainHandoffKeys) {
		payload, ok := s.store.Get(key)
		if !ok {
			continue
		}
		for _, peer := range s.cluster.handoffTargets(key) {
			if err := s.putArtifact(ctx, peer, key, payload); err != nil {
				s.cfg.Log.Printf("daed: drain: handoff %s to %s: %v", key, peer, err)
				if ctx.Err() != nil {
					return ctx.Err()
				}
				continue
			}
			s.stats.handedOff.Add(1)
			handed++
		}
	}
	s.cfg.Log.Printf("daed: drain: complete, handed off %d envelopes", handed)
	return nil
}
