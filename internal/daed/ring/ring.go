// Package ring implements the seeded consistent-hash ring that maps daed
// content keys onto cluster nodes. Every node is projected onto the ring at
// VirtualNodes seeded positions; a key hashes to a point on the ring and is
// owned by the next VirtualNode clockwise, with the following distinct nodes
// as its replicas. Because both projections are pure functions of (seed,
// node name) and (key), every member of the cluster — and every client —
// derives the same ownership without coordination, and a test can predict
// placements exactly.
//
// The ring is immutable once built: membership changes build a new Ring.
// Consistent hashing keeps that cheap in the only sense that matters here —
// removing one node reassigns only the keys it owned, so a cluster that
// loses a member keeps ~(n-1)/n of its artifact placement intact.
package ring

import (
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the per-node virtual-node count when New is given
// none. 64 points per node keeps the expected ownership imbalance of a small
// cluster within a few percent while the ring stays tiny (3 nodes = 192
// points).
const DefaultVirtualNodes = 64

// DefaultSeed is the ring seed the daed cluster (and its clients) use when
// none is configured. It is part of the cluster's identity: every member
// and every client must project nodes with the same seed, or they derive
// different rings from the same membership.
const DefaultSeed = 0xdae

// point is one virtual node on the ring.
type point struct {
	hash uint64
	node int // index into Ring.nodes
}

// Ring is an immutable consistent-hash ring over a set of named nodes.
type Ring struct {
	nodes  []string
	points []point // sorted by hash
}

// hash64 hashes the parts with FNV-1a, separated so ("ab","c") and
// ("a","bc") land differently.
func hash64(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// New builds a ring over nodes with vnodes virtual nodes per member (<= 0
// selects DefaultVirtualNodes), seeded by seed. Node order does not matter:
// two rings built from permutations of the same membership are identical.
// Duplicate names collapse to one member; an empty membership yields a ring
// whose lookups return nil.
func New(nodes []string, vnodes int, seed uint64) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	uniq := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	// Canonical member order: the ring must not depend on argument order.
	sort.Strings(uniq)
	r := &Ring{nodes: uniq, points: make([]point, 0, len(uniq)*vnodes)}
	var seedBuf [8]byte
	for i := range seedBuf {
		seedBuf[i] = byte(seed >> (8 * i))
	}
	for ni, name := range uniq {
		for v := 0; v < vnodes; v++ {
			// Mix the seed and the vnode index into the projection.
			var vb [4]byte
			vb[0], vb[1], vb[2], vb[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
			h := hash64(string(seedBuf[:]), name, string(vb[:]))
			r.points = append(r.points, point{hash: h, node: ni})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Members returns the ring's node names in canonical (sorted) order.
func (r *Ring) Members() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Len reports the number of distinct members.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns up to n distinct nodes for key in preference order: the
// primary (the first virtual node at or after the key's point) followed by
// the replicas (the next virtual nodes clockwise belonging to nodes not yet
// chosen). n <= 0 or n > Len() returns every member, still in ring order.
func (r *Ring) Nodes(key string, n int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.nodes) {
		n = len(r.nodes)
	}
	kh := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	out := make([]string, 0, n)
	taken := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if taken[p.node] {
			continue
		}
		taken[p.node] = true
		out = append(out, r.nodes[p.node])
	}
	return out
}

// Primary returns the key's owner ("" on an empty ring).
func (r *Ring) Primary(key string) string {
	ns := r.Nodes(key, 1)
	if len(ns) == 0 {
		return ""
	}
	return ns[0]
}

// Owns reports whether node is among the first replicas nodes for key — the
// set that stores the key's artifact.
func (r *Ring) Owns(key, node string, replicas int) bool {
	for _, n := range r.Nodes(key, replicas) {
		if n == node {
			return true
		}
	}
	return false
}

// Fractions returns each member's share of the key space as the fraction of
// ring arc whose primary it is. Virtual node p_i owns the arc (p_{i-1}, p_i]
// counter-clockwise behind it (the first point also owns the wraparound arc
// past the last point), so the fractions sum to 1 on any non-empty ring.
func (r *Ring) Fractions() map[string]float64 {
	if len(r.points) == 0 {
		return map[string]float64{}
	}
	out := make(map[string]float64, len(r.nodes))
	if len(r.points) == 1 {
		out[r.nodes[r.points[0].node]] = 1
		return out
	}
	// Accumulate in float64: individual arcs fit a uint64 but their total is
	// exactly 2^64, which does not.
	prev := r.points[len(r.points)-1].hash // wraparound: arc from last point to first
	for _, p := range r.points {
		arc := p.hash - prev // uint64 wraparound is the arc length
		out[r.nodes[p.node]] += float64(arc) / (1 << 63) / 2
		prev = p.hash
	}
	return out
}

// View is a Ring stamped with the membership epoch it was built from. Views
// are immutable; a membership change builds a new View at a higher epoch.
// Request handlers capture one View at entry so an in-flight request keeps
// computing ownership against the epoch it started with even if the cluster
// changes shape underneath it.
type View struct {
	Epoch uint64
	*Ring
}

// At builds the View for (epoch, members) with the given projection
// parameters. Two nodes that agree on (epoch, members, vnodes, seed) derive
// identical views without coordination.
func At(epoch uint64, members []string, vnodes int, seed uint64) *View {
	return &View{Epoch: epoch, Ring: New(members, vnodes, seed)}
}
