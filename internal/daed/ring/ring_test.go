package ring

import (
	"fmt"
	"reflect"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("sim/v1;app=CG;cores=%d", i)
	}
	return out
}

// TestDeterministicAndOrderIndependent: the ring is a pure function of
// (membership set, vnodes, seed) — argument order and repetition are
// irrelevant, so every cluster member and client agrees on placement.
func TestDeterministicAndOrderIndependent(t *testing.T) {
	a := New([]string{"n1", "n2", "n3"}, 64, 42)
	b := New([]string{"n3", "n1", "n2", "n1"}, 64, 42)
	for _, k := range keys(200) {
		if got, want := a.Nodes(k, 2), b.Nodes(k, 2); !reflect.DeepEqual(got, want) {
			t.Fatalf("placement of %q differs across build orders: %v vs %v", k, got, want)
		}
	}
	if got := a.Members(); !reflect.DeepEqual(got, []string{"n1", "n2", "n3"}) {
		t.Fatalf("Members() = %v", got)
	}
}

// TestSeedChangesPlacement: a different seed is a different ring.
func TestSeedChangesPlacement(t *testing.T) {
	a := New([]string{"n1", "n2", "n3"}, 64, 1)
	b := New([]string{"n1", "n2", "n3"}, 64, 2)
	moved := 0
	for _, k := range keys(200) {
		if a.Primary(k) != b.Primary(k) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("seed had no effect on placement")
	}
}

// TestReplicaSetsAreDistinct: Nodes returns distinct members in preference
// order, capped at the membership size.
func TestReplicaSetsAreDistinct(t *testing.T) {
	r := New([]string{"n1", "n2", "n3"}, 64, 7)
	for _, k := range keys(100) {
		ns := r.Nodes(k, 2)
		if len(ns) != 2 || ns[0] == ns[1] {
			t.Fatalf("Nodes(%q, 2) = %v", k, ns)
		}
		all := r.Nodes(k, 0)
		if len(all) != 3 {
			t.Fatalf("Nodes(%q, 0) = %v, want all 3", k, all)
		}
		if all[0] != ns[0] || all[1] != ns[1] {
			t.Fatalf("prefix of full order %v differs from Nodes(...,2) %v", all, ns)
		}
		if !r.Owns(k, ns[0], 2) || !r.Owns(k, ns[1], 2) || r.Owns(k, all[2], 2) {
			t.Fatalf("Owns disagrees with Nodes for %q: %v", k, all)
		}
	}
}

// TestBalance: with 64 vnodes the per-node share of many keys stays within
// a loose bound — consistent hashing, not perfect partitioning.
func TestBalance(t *testing.T) {
	r := New([]string{"n1", "n2", "n3"}, 64, 42)
	counts := map[string]int{}
	const n = 3000
	for _, k := range keys(n) {
		counts[r.Primary(k)]++
	}
	for node, c := range counts {
		if c < n/3/3 || c > n {
			t.Fatalf("node %s owns %d/%d keys — pathological imbalance", node, c, n)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d nodes own keys: %v", len(counts), counts)
	}
}

// TestStabilityUnderMemberLoss: removing one node reassigns only keys it
// owned; every other key keeps its primary.
func TestStabilityUnderMemberLoss(t *testing.T) {
	full := New([]string{"n1", "n2", "n3"}, 64, 42)
	less := New([]string{"n1", "n3"}, 64, 42)
	for _, k := range keys(500) {
		if p := full.Primary(k); p != "n2" {
			if got := less.Primary(k); got != p {
				t.Fatalf("key %q moved from %s to %s though its owner survived", k, p, got)
			}
		} else if got := less.Primary(k); got == "n2" || got == "" {
			t.Fatalf("key %q still mapped to the removed node", k)
		}
	}
}

// TestEmptyAndSingle: degenerate memberships behave.
func TestEmptyAndSingle(t *testing.T) {
	if got := New(nil, 0, 1).Nodes("k", 2); got != nil {
		t.Fatalf("empty ring returned %v", got)
	}
	one := New([]string{"solo"}, 0, 1)
	if got := one.Nodes("k", 5); len(got) != 1 || got[0] != "solo" {
		t.Fatalf("single-node ring returned %v", got)
	}
	if one.Primary("k") != "solo" {
		t.Fatal("single-node primary mismatch")
	}
}
