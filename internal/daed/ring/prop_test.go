package ring

import (
	"fmt"
	"math/rand"
	"testing"
)

// propKeys generates a deterministic key population large enough that
// movement fractions are statistically tight.
func propKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("sim/v1;app=K%d;cores=%d", i, i%32)
	}
	return keys
}

func members(n int) []string {
	ms := make([]string, n)
	for i := range ms {
		ms[i] = fmt.Sprintf("http://10.0.0.%d:8787", i+1)
	}
	return ms
}

// TestPropMinimalMovementOnJoin checks consistent hashing's defining
// property: adding one node to an N-node ring moves only about 1/(N+1) of
// the keys to a new primary — never a wholesale reshuffle — and the moved
// keys all land on the new node.
func TestPropMinimalMovementOnJoin(t *testing.T) {
	keys := propKeys(4000)
	for _, n := range []int{2, 3, 5, 8} {
		old := New(members(n), 0, DefaultSeed)
		joined := fmt.Sprintf("http://10.0.1.99:%d", 9000+n)
		grown := New(append(members(n), joined), 0, DefaultSeed)
		moved := 0
		for _, k := range keys {
			op, np := old.Primary(k), grown.Primary(k)
			if op != np {
				moved++
				if np != joined {
					t.Fatalf("n=%d key %q moved %s -> %s, not to the joining node", n, k, op, np)
				}
			}
		}
		frac := float64(moved) / float64(len(keys))
		ideal := 1 / float64(n+1)
		// Allow 3x the ideal share: with 64 vnodes per member the realized
		// share of one node has real variance, but a reshuffle would move
		// ~n/(n+1) of the keys and fail this loudly.
		if frac > 3*ideal {
			t.Fatalf("n=%d join moved %.1f%% of keys, want <= %.1f%%", n, frac*100, 3*ideal*100)
		}
		if moved == 0 {
			t.Fatalf("n=%d join moved no keys; the new node owns nothing", n)
		}
	}
}

// TestPropMinimalMovementOnLeave is the mirror bound: removing one node
// re-homes only the keys it owned, and every surviving key keeps its owner.
func TestPropMinimalMovementOnLeave(t *testing.T) {
	keys := propKeys(4000)
	for _, n := range []int{3, 5, 8} {
		ms := members(n)
		full := New(ms, 0, DefaultSeed)
		gone := ms[1]
		shrunk := New(append(append([]string{}, ms[:1]...), ms[2:]...), 0, DefaultSeed)
		moved := 0
		for _, k := range keys {
			op, np := full.Primary(k), shrunk.Primary(k)
			if op != np {
				moved++
				if op != gone {
					t.Fatalf("n=%d key %q moved %s -> %s but %s left", n, k, op, np, gone)
				}
			}
		}
		frac := float64(moved) / float64(len(keys))
		if ideal := 1 / float64(n); frac > 3*ideal {
			t.Fatalf("n=%d leave moved %.1f%% of keys, want <= %.1f%%", n, frac*100, 3*ideal*100)
		}
	}
}

// TestPropReplicaInvariants fuzzes memberships and replica counts under a
// seeded generator: the replica set is never empty on a non-empty ring,
// never contains duplicates, never exceeds the membership, and is exactly
// reproducible under DefaultSeed.
func TestPropReplicaInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(0xdae))
	keys := propKeys(200)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(9)
		ms := members(n)
		rng.Shuffle(len(ms), func(i, j int) { ms[i], ms[j] = ms[j], ms[i] })
		r := New(ms, 0, DefaultSeed)
		replicas := 1 + rng.Intn(4)
		for _, k := range keys {
			got := r.Nodes(k, replicas)
			if len(got) == 0 {
				t.Fatalf("trial %d: empty replica set for %q on %d-node ring", trial, k, n)
			}
			want := replicas
			if want > n {
				want = n
			}
			if len(got) != want {
				t.Fatalf("trial %d: %d replicas for %q, want %d (n=%d)", trial, len(got), k, want, n)
			}
			seen := map[string]bool{}
			for _, node := range got {
				if seen[node] {
					t.Fatalf("trial %d: duplicate replica %s for %q", trial, node, k)
				}
				seen[node] = true
			}
		}
		// Determinism: a second ring from a fresh shuffle of the same
		// membership must agree on every placement.
		rng.Shuffle(len(ms), func(i, j int) { ms[i], ms[j] = ms[j], ms[i] })
		r2 := New(ms, 0, DefaultSeed)
		for _, k := range keys {
			a, b := r.Nodes(k, replicas), r2.Nodes(k, replicas)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trial %d: permuted membership changed placement of %q: %v vs %v", trial, k, a, b)
				}
			}
		}
	}
}

// TestFractionsSumToOne pins the ownership-fraction arithmetic: fractions
// sum to ~1 and every member owns a nonzero share.
func TestFractionsSumToOne(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 9} {
		r := New(members(n), 0, DefaultSeed)
		fr := r.Fractions()
		if len(fr) != n {
			t.Fatalf("n=%d: %d fractions", n, len(fr))
		}
		sum := 0.0
		for m, f := range fr {
			if f <= 0 || f >= 1 {
				if n > 1 || f != 1 {
					t.Fatalf("n=%d: member %s owns fraction %v", n, m, f)
				}
			}
			sum += f
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("n=%d: fractions sum to %v", n, sum)
		}
	}
	if got := New(nil, 0, DefaultSeed).Fractions(); len(got) != 0 {
		t.Fatalf("empty ring fractions = %v", got)
	}
}

// TestViewStampsEpoch pins the View construction used for epoch-pinned
// request handling.
func TestViewStampsEpoch(t *testing.T) {
	v := At(7, members(3), 0, DefaultSeed)
	if v.Epoch != 7 {
		t.Fatalf("epoch = %d", v.Epoch)
	}
	if v.Len() != 3 {
		t.Fatalf("len = %d", v.Len())
	}
	if v.Primary("k") != New(members(3), 0, DefaultSeed).Primary("k") {
		t.Fatalf("view ring disagrees with plain ring")
	}
}
