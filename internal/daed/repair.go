package daed

import (
	"context"
	"fmt"
	"time"

	"dae/internal/daed/ring"
)

// repairLoop is the anti-entropy background loop: every RepairInterval it
// walks the journal-backed store index, recomputes each key's ownership
// under the current epoch, pushes under-replicated envelopes to the owners
// that miss them, and releases keys this node no longer owns once R copies
// are confirmed elsewhere. A peer that was down during writes — or a
// topology change that moved keys — converges without a client request ever
// touching those keys.
func (s *Server) repairLoop() {
	defer s.loopWG.Done()
	t := time.NewTicker(s.cfg.RepairInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			if s.draining.Load() {
				continue
			}
			s.repairRound()
		}
	}
}

// repairRound runs one anti-entropy pass. The discipline is
// push-then-confirm-then-drop: a key is only released after a round in
// which every owner answered a presence probe positively, so a partitioned
// probe can delay convergence but never lose the last copy.
func (s *Server) repairRound() {
	c := s.cluster
	v := c.current()
	if v.Len() < 2 {
		return
	}
	ctx, cancel := s.boundedCtx(time.Minute)
	defer cancel()
	replicas := c.replicasFor(v)
	for _, key := range s.store.Keys() {
		select {
		case <-s.stop:
			return
		default:
		}
		owners := c.owners(v, key)
		mine := false
		confirmed := 0
		var missing []string
		probeFailed := false
		for _, o := range owners {
			if o == c.self {
				mine = true
				confirmed++
				continue
			}
			has, err := s.peerHas(ctx, o, key)
			switch {
			case err != nil:
				// Partial information: act on nothing for this key this
				// round. Dropping on a failed probe could destroy the last
				// reachable copy.
				probeFailed = true
			case has:
				confirmed++
			default:
				missing = append(missing, o)
			}
		}
		if probeFailed {
			continue
		}
		if len(missing) > 0 {
			payload, ok := s.store.Get(key)
			if !ok {
				continue
			}
			for _, o := range missing {
				installed, err := s.putArtifactInstalled(ctx, o, key, payload)
				if err != nil {
					s.cfg.Log.Printf("daed: repair: push %s to %s: %v", key, o, err)
					continue
				}
				if installed {
					s.stats.repairPushed.Add(1)
				}
			}
			// The drop (if due) waits for the next round's confirmation.
			continue
		}
		if !mine && confirmed >= replicas {
			if s.store.Release(key) {
				s.stats.repairDropped.Add(1)
			}
		}
	}
	s.stats.repairRounds.Add(1)
}

// maybeReadRepair is the push direction of read-repair: this node just
// served key from its local store but does not own it under the current
// view (the key moved in a membership change, or a handoff landed here).
// Install the verified envelope on the owners that miss it, write-behind,
// deduplicated per (epoch, key) so a hot mis-placed key costs one repair,
// not one per hit.
func (s *Server) maybeReadRepair(v *ring.View, key string, payload []byte) {
	c := s.cluster
	if c == nil || v == nil || c.owns(v, key) {
		return
	}
	if _, dup := s.readRepaired.LoadOrStore(fmt.Sprintf("%d/%s", v.Epoch, key), struct{}{}); dup {
		return
	}
	body := append([]byte(nil), payload...)
	s.repWG.Add(1)
	go func() {
		defer s.repWG.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, o := range c.owners(v, key) {
			if o == c.self {
				continue
			}
			has, err := s.peerHas(ctx, o, key)
			if err != nil || has {
				continue
			}
			installed, err := s.putArtifactInstalled(ctx, o, key, body)
			if err != nil {
				s.cfg.Log.Printf("daed: read-repair: push %s to %s: %v", key, o, err)
				continue
			}
			if installed {
				s.stats.readRepairs.Add(1)
			}
		}
	}()
}

// pullFromReplicas is the pull direction of read-repair: this node owns key
// under the request's view but misses the envelope (it joined after the
// write, or lost the replication push). Before paying a pipeline execution,
// fetch the envelope from a co-owner; the store re-verifies it on install.
// Returns the decoded payload when a replica supplied it.
func (s *Server) pullFromReplicas(ctx context.Context, v *ring.View, key string) ([]byte, bool) {
	c := s.cluster
	if c == nil || v == nil || !c.owns(v, key) {
		return nil, false
	}
	for _, o := range c.owners(v, key) {
		if o == c.self {
			continue
		}
		payload, err := s.fetchArtifact(ctx, o, key)
		if err != nil {
			continue
		}
		if err := s.store.Put(key, payload); err != nil {
			s.cfg.Log.Printf("daed: read-repair: install %s: %v", key, err)
			continue
		}
		s.stats.readRepairs.Add(1)
		return payload, true
	}
	return nil, false
}
