package daed

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dae/internal/fault"
)

// errSaturated is returned by queue.acquire when both every worker slot and
// the whole wait queue are full. The server maps it to HTTP 429 with a
// Retry-After hint — shedding load at admission instead of letting latency
// collapse under an unbounded backlog.
var errSaturated = errors.New("daed: job queue saturated")

// saturatedError carries the backoff hint for one rejection.
type saturatedError struct {
	retryAfter time.Duration
}

func (e *saturatedError) Error() string {
	return fmt.Sprintf("%v (retry after %v)", errSaturated, e.retryAfter)
}

func (e *saturatedError) Is(target error) bool { return target == errSaturated }

// queue is the admission-controlled job queue: workers bounds concurrent
// pipeline executions, depth bounds how many executions may wait for a
// slot. Store hits and collapsed requests never touch the queue — only
// work that would actually run the pipeline is admitted, so a warm server
// keeps serving cache traffic even while saturated with cold work.
type queue struct {
	slots   chan struct{}
	waiting chan struct{}
	stats   *stats
}

func newQueue(workers, depth int, st *stats) *queue {
	if workers <= 0 {
		workers = 1
	}
	if depth < 0 {
		depth = 0
	}
	return &queue{
		slots:   make(chan struct{}, workers),
		waiting: make(chan struct{}, depth),
		stats:   st,
	}
}

// acquire claims a worker slot, waiting in the bounded queue when all slots
// are busy. It fails with a saturatedError when the queue is full, and with
// a fault.KindTimeout error when ctx dies while waiting — in both cases the
// caller never held a slot.
func (q *queue) acquire(ctx context.Context) error {
	select {
	case q.slots <- struct{}{}:
		return nil
	default:
	}
	select {
	case q.waiting <- struct{}{}:
	default:
		q.stats.rejected.Add(1)
		return &saturatedError{retryAfter: q.retryAfter()}
	}
	q.stats.waiting.Add(1)
	defer func() {
		q.stats.waiting.Add(-1)
		<-q.waiting
	}()
	select {
	case q.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fault.Wrap(fault.KindTimeout, ctx.Err())
	}
}

// release frees a slot claimed by acquire.
func (q *queue) release() { <-q.slots }

// retryAfter estimates how long a rejected client should back off: the
// deeper the backlog relative to the worker pool, the longer the hint.
// It is deliberately coarse — a scheduling signal, not a promise.
func (q *queue) retryAfter() time.Duration {
	backlog := len(q.waiting) + len(q.slots)
	per := 250 * time.Millisecond
	d := time.Duration(1+backlog/cap(q.slots)) * per
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}
