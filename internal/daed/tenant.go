package daed

import (
	"sync"
)

// tenantRegistry is the server's per-tenant quarantine ledger: the PR-4
// runtime quarantine ladder lifted to serving scope. When a tenant's
// request quarantines a task type (an access-phase fault, usually injected
// through that tenant's own rules), the poisoning is recorded against the
// tenant — that tenant's later requests for the app are served through the
// degraded, tenant-scoped path and flagged, while every other tenant keeps
// hitting the clean shared store and the process itself never degrades.
type tenantRegistry struct {
	mu sync.Mutex
	// m maps tenant -> app -> task type -> fault kind.
	m map[string]map[string]map[string]string
}

// record merges one collection's quarantined task types into the tenant's
// ledger. Quarantine is monotone at the runtime level; the ledger mirrors
// that — entries accumulate until the tenant explicitly clears them.
func (tr *tenantRegistry) record(tenant, app string, quarantined map[string]string) {
	if len(quarantined) == 0 {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.m == nil {
		tr.m = make(map[string]map[string]map[string]string)
	}
	apps := tr.m[tenant]
	if apps == nil {
		apps = make(map[string]map[string]string)
		tr.m[tenant] = apps
	}
	tasks := apps[app]
	if tasks == nil {
		tasks = make(map[string]string)
		apps[app] = tasks
	}
	for task, kind := range quarantined {
		if _, ok := tasks[task]; !ok {
			tasks[task] = kind
		}
	}
}

// quarantined returns a copy of the tenant's quarantine set for app (nil
// when clean).
func (tr *tenantRegistry) quarantined(tenant, app string) map[string]string {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tasks := tr.m[tenant][app]
	if len(tasks) == 0 {
		return nil
	}
	out := make(map[string]string, len(tasks))
	for k, v := range tasks {
		out[k] = v
	}
	return out
}

// clear drops every quarantine recorded for tenant, returning how many
// (app, task) entries were lifted.
func (tr *tenantRegistry) clear(tenant string) int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := 0
	for _, tasks := range tr.m[tenant] {
		n += len(tasks)
	}
	delete(tr.m, tenant)
	return n
}

// tenants counts tenants with recorded quarantine state.
func (tr *tenantRegistry) tenants() int64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return int64(len(tr.m))
}
