package daed

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dae/internal/fault"
)

// TestFlightMapCollapses: concurrent joins on one key share a single
// execution and all observe its result.
func TestFlightMapCollapses(t *testing.T) {
	var fm flightMap[int]
	var execs atomic.Int32
	gate := make(chan struct{})
	started := make(chan struct{})

	lead, leader := fm.join("k", func(ctx context.Context) (int, error) {
		close(started)
		execs.Add(1)
		<-gate
		return 42, nil
	})
	if !leader {
		t.Fatal("first join is not the leader")
	}
	<-started

	const followers = 16
	var wg sync.WaitGroup
	results := make([]int, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, lead := fm.join("k", func(ctx context.Context) (int, error) {
				execs.Add(1)
				return -1, nil
			})
			if lead {
				t.Error("follower became leader while flight in progress")
			}
			v, err := f.wait(context.Background())
			if err != nil {
				t.Errorf("follower wait: %v", err)
			}
			results[i] = v
		}(i)
	}
	time.Sleep(50 * time.Millisecond)
	close(gate)
	if v, err := lead.wait(context.Background()); v != 42 || err != nil {
		t.Fatalf("leader wait = %d, %v; want 42, nil", v, err)
	}
	wg.Wait()
	if n := execs.Load(); n != 1 {
		t.Fatalf("executions = %d, want 1", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Errorf("follower %d got %d, want 42", i, v)
		}
	}
}

// TestFlightMapLastLeaverCancels: when every joined caller abandons the
// flight, the pipeline context is canceled — the execution aborts
// mid-collection and a later join starts fresh.
func TestFlightMapLastLeaverCancels(t *testing.T) {
	var fm flightMap[int]
	pipelineDead := make(chan struct{})

	f, leader := fm.join("k", func(ctx context.Context) (int, error) {
		<-ctx.Done()
		close(pipelineDead)
		return 0, fault.Wrap(fault.KindTimeout, ctx.Err())
	})
	if !leader {
		t.Fatal("first join is not the leader")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.wait(ctx); !errors.Is(err, fault.ErrTimeout) {
		t.Fatalf("abandoned wait = %v, want fault.ErrTimeout", err)
	}
	select {
	case <-pipelineDead:
	case <-time.After(5 * time.Second):
		t.Fatal("pipeline context was not canceled by the last leaver")
	}

	// The key is free again once the doomed flight unwinds; a fresh join
	// must eventually lead a new execution.
	deadline := time.Now().Add(5 * time.Second)
	for {
		f2, lead2 := fm.join("k", func(ctx context.Context) (int, error) { return 7, nil })
		v, err := f2.wait(context.Background())
		if lead2 && err == nil && v == 7 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fresh join never led: leader=%t v=%d err=%v", lead2, v, err)
		}
	}
}

// TestFlightMapSurvivesOneLeaver: a flight with two joined callers keeps its
// pipeline alive when only one disconnects.
func TestFlightMapSurvivesOneLeaver(t *testing.T) {
	var fm flightMap[int]
	gate := make(chan struct{})
	canceled := make(chan struct{}, 1)

	f1, _ := fm.join("k", func(ctx context.Context) (int, error) {
		<-gate
		select {
		case <-ctx.Done():
			canceled <- struct{}{}
			return 0, ctx.Err()
		default:
		}
		return 9, nil
	})
	f2, leader2 := fm.join("k", nil)
	if leader2 {
		t.Fatal("second join became leader")
	}

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f1.wait(dead); !errors.Is(err, fault.ErrTimeout) {
		t.Fatalf("first leaver = %v, want timeout", err)
	}
	close(gate)
	v, err := f2.wait(context.Background())
	if err != nil || v != 9 {
		t.Fatalf("surviving waiter = %d, %v; want 9, nil", v, err)
	}
	select {
	case <-canceled:
		t.Fatal("pipeline was canceled while a caller was still joined")
	default:
	}
}
