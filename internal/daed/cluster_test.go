package daed_test

import (
	"context"
	"errors"
	"net"
	"net/http"
	"testing"
	"time"

	"dae/internal/daed"
	"dae/internal/daed/client"
	"dae/internal/daed/ring"
)

// clusterNode is one in-process daed cluster member: its server, the HTTP
// front end, and its advertised URL.
type clusterNode struct {
	srv *daed.Server
	hs  *http.Server
	url string
}

// startCluster boots n daed nodes on loopback ports that all know each
// other's advertised URLs, with replication factor r.
func startCluster(t *testing.T, n, r int) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		srv := daed.New(daed.Config{
			Workers: 2, Dir: t.TempDir(),
			Self: urls[i], Peers: peers, Replicas: r,
		})
		hs := &http.Server{Handler: srv}
		go hs.Serve(lns[i])
		nodes[i] = &clusterNode{srv: srv, hs: hs, url: urls[i]}
		t.Cleanup(func() {
			hs.Close()
			srv.Close()
		})
	}
	return nodes
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// byURL finds a node by its advertised URL.
func byURL(t *testing.T, nodes []*clusterNode, url string) *clusterNode {
	t.Helper()
	for _, n := range nodes {
		if n.url == url {
			return n
		}
	}
	t.Fatalf("no node with url %s", url)
	return nil
}

// TestClusterKillDrill is the tentpole acceptance drill: a 3-node cluster
// with replication factor 2 takes a warm key, its primary is killed
// mid-load (hard close: connections refused, like SIGKILL), and every
// subsequent request still succeeds through the survivors with a
// byte-identical report — zero accepted requests lost.
func TestClusterKillDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full pipeline execution")
	}
	nodes := startCluster(t, 3, 2)
	urls := []string{nodes[0].url, nodes[1].url, nodes[2].url}
	cl := client.New(client.Config{
		Nodes: urls, BackoffBase: 5 * time.Millisecond,
		Probation: 200 * time.Millisecond, BackoffSeed: 9,
	})
	ctx := context.Background()
	req := &daed.SimulateRequest{App: "CG"}

	ref, err := cl.Simulate(ctx, "drill", req)
	if err != nil {
		t.Fatalf("warm-up request: %v", err)
	}

	// The executing owner replicates write-behind; wait until at least one
	// replica holds the envelope before pulling the trigger.
	key, err := req.Key()
	if err != nil {
		t.Fatal(err)
	}
	rg := ring.New(urls, 0, daed.DefaultRingSeed)
	primary := byURL(t, nodes, rg.Primary(key))
	waitFor(t, 10*time.Second, "write-behind replication", func() bool {
		var in int64
		for _, n := range nodes {
			if n != primary {
				in += n.srv.Stats().ReplicatedIn
			}
		}
		return in >= 1
	})

	primary.hs.Close() // SIGKILL stand-in: refuse everything from here on

	for i := 0; i < 12; i++ {
		resp, err := cl.Simulate(ctx, "drill", req)
		if err != nil {
			t.Fatalf("request %d lost after primary death: %v", i, err)
		}
		if resp.Report != ref.Report {
			t.Fatalf("request %d report differs from pre-kill reference", i)
		}
	}
	if got := cl.Counters(); got.Failovers == 0 {
		t.Fatalf("no failovers recorded despite a dead primary: %+v", got)
	}
}

// TestClusterProxyServesUnownedKey: a request landing on the one node
// outside a key's replica set is proxied to an owner and relayed verbatim —
// the client sees the owner's byte-identical response, and the non-owner
// executes nothing itself.
func TestClusterProxyServesUnownedKey(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full pipeline execution")
	}
	nodes := startCluster(t, 3, 2)
	urls := []string{nodes[0].url, nodes[1].url, nodes[2].url}
	req := &daed.SimulateRequest{App: "CG"}
	key, err := req.Key()
	if err != nil {
		t.Fatal(err)
	}
	rg := ring.New(urls, 0, daed.DefaultRingSeed)
	owners := rg.Nodes(key, 2)
	var outsider *clusterNode
	for _, n := range nodes {
		if n.url != owners[0] && n.url != owners[1] {
			outsider = n
		}
	}
	ctx := context.Background()
	c := &daed.Client{Base: outsider.url}
	resp, err := c.Simulate(ctx, req)
	if err != nil {
		t.Fatalf("request via non-owner: %v", err)
	}
	ownerResp, err := (&daed.Client{Base: owners[0]}).Simulate(ctx, req)
	if err != nil {
		t.Fatalf("request via owner: %v", err)
	}
	if resp.Report != ownerResp.Report {
		t.Fatal("proxied report differs from the owner's")
	}
	st := outsider.srv.Stats()
	if st.Proxied == 0 {
		t.Fatalf("non-owner did not proxy: %+v", st)
	}
	if st.Executions != 0 {
		t.Fatalf("non-owner executed %d pipelines for a key it does not own", st.Executions)
	}
}

// TestClusterQuarantineLiftFansOut: quarantine is per-node state, so one
// DELETE /v1/quarantine against any member must lift the tenant's
// quarantine on every node — otherwise the "lifted" tenant keeps getting
// degraded answers from whichever nodes still remember it.
func TestClusterQuarantineLiftFansOut(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full pipeline execution")
	}
	nodes := startCluster(t, 3, 2)
	ctx := context.Background()
	inj := &daed.SimulateRequest{App: "CG", Inject: "access-phase,CG,compiler-dae,,trap!"}
	for _, n := range nodes {
		resp, err := (&daed.Client{Base: n.url, Tenant: "X"}).Simulate(ctx, inj)
		if err != nil {
			t.Fatalf("injected request on %s: %v", n.url, err)
		}
		if !resp.Degraded {
			t.Fatalf("injected request on %s not degraded", n.url)
		}
	}
	cleared, err := (&daed.Client{Base: nodes[0].url, Tenant: "X"}).ClearQuarantine(ctx)
	if err != nil {
		t.Fatalf("quarantine lift: %v", err)
	}
	if cleared < 3 {
		t.Fatalf("lift cleared %d quarantines, want >=3 (one per node)", cleared)
	}
	clean := &daed.SimulateRequest{App: "CG"}
	for _, n := range nodes {
		resp, err := (&daed.Client{Base: n.url, Tenant: "X"}).Simulate(ctx, clean)
		if err != nil {
			t.Fatalf("post-lift request on %s: %v", n.url, err)
		}
		if resp.Degraded {
			t.Fatalf("node %s still degrades tenant X after a cluster-wide lift", n.url)
		}
	}
}

// TestClusterDrainHandsOff: Drain refuses new work with 503 + Retry-After
// and class "draining", finishes cleanly, and hands its hot envelopes to
// the surviving owners — which keep serving the key byte-identically.
func TestClusterDrainHandsOff(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full pipeline execution")
	}
	nodes := startCluster(t, 3, 2)
	urls := []string{nodes[0].url, nodes[1].url, nodes[2].url}
	ctx := context.Background()
	req := &daed.SimulateRequest{App: "CG"}
	key, err := req.Key()
	if err != nil {
		t.Fatal(err)
	}
	rg := ring.New(urls, 0, daed.DefaultRingSeed)
	primary := byURL(t, nodes, rg.Primary(key))

	ref, err := (&daed.Client{Base: primary.url}).Simulate(ctx, req)
	if err != nil {
		t.Fatalf("warm-up request: %v", err)
	}

	drainCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := primary.srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if primary.srv.Stats().HandedOff == 0 {
		t.Fatal("drain handed off no envelopes")
	}

	// The drained node sheds new work with the draining contract.
	_, err = (&daed.Client{Base: primary.url}).Simulate(ctx, req)
	var re *daed.RemoteError
	if !errors.As(err, &re) || re.Status != http.StatusServiceUnavailable {
		t.Fatalf("drained node answered %v, want 503", err)
	}
	if re.Body.Class != "draining" {
		t.Fatalf("drained node rejected with class %q, want draining", re.Body.Class)
	}
	if re.RetryAfter <= 0 {
		t.Fatal("draining rejection carries no Retry-After hint")
	}

	// The cluster client routes around the drained node; the survivors hold
	// the handed-off envelope and answer byte-identically from the store.
	cl := client.New(client.Config{
		Nodes: urls, BackoffBase: 5 * time.Millisecond,
		Probation: 200 * time.Millisecond, BackoffSeed: 11,
	})
	resp, err := cl.Simulate(ctx, "t", req)
	if err != nil {
		t.Fatalf("request after drain: %v", err)
	}
	if resp.Report != ref.Report {
		t.Fatal("post-drain report differs from pre-drain reference")
	}
	if !resp.CacheHit {
		t.Fatal("survivor re-executed a handed-off key instead of serving its store")
	}
}
