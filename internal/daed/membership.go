package daed

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"dae/internal/daed/ring"
)

// handleMembers serves POST /v1/members: the admin join/leave operations and
// the peer-to-peer gossip that fans an adopted view out. Admin changes mint
// the next epoch and gossip it to the union of the old and new memberships
// (so both a joiner and a removed node learn their fate); gossip receivers
// adopt-if-newer and never re-gossip, which makes propagation loop-free.
func (s *Server) handleMembers(w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	if c == nil {
		s.writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "daed: standalone node has no membership", Class: "standalone"})
		return
	}
	var req MembersRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad request: " + err.Error(), Class: "parse"})
		return
	}
	switch req.Op {
	case "join", "leave":
		if req.Node == "" {
			s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "daed: " + req.Op + " needs node", Class: "parse"})
			return
		}
		s.handleAdminChange(w, req.Op, req.Node)
	case "gossip", "":
		if req.Epoch == 0 || len(req.Members) == 0 {
			s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "daed: gossip needs epoch and members", Class: "parse"})
			return
		}
		v, _ := s.adoptView(req.Epoch, req.Members)
		s.writeJSON(w, http.StatusOK, MembersResponse{Epoch: v.Epoch, Members: v.Members()})
	default:
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "daed: unknown op " + req.Op, Class: "parse"})
	}
}

// handleAdminChange mints the next epoch for a join or leave and fans it
// out. Idempotent: joining a member or removing a non-member answers the
// current view unchanged, so operators can retry safely.
func (s *Server) handleAdminChange(w http.ResponseWriter, op, node string) {
	c := s.cluster
	for attempt := 0; attempt < 4; attempt++ {
		cur := c.current()
		members := cur.Members()
		present := false
		for _, m := range members {
			present = present || m == node
		}
		var next []string
		switch op {
		case "join":
			if present {
				s.writeJSON(w, http.StatusOK, MembersResponse{Epoch: cur.Epoch, Members: members})
				return
			}
			next = append(append([]string{}, members...), node)
		case "leave":
			if !present {
				s.writeJSON(w, http.StatusOK, MembersResponse{Epoch: cur.Epoch, Members: members})
				return
			}
			if len(members) == 1 {
				s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "daed: cannot remove the last member", Class: "parse"})
				return
			}
			next = make([]string, 0, len(members)-1)
			for _, m := range members {
				if m != node {
					next = append(next, m)
				}
			}
		}
		nv, ok := s.adoptView(cur.Epoch+1, next)
		if !ok && nv.Epoch >= cur.Epoch+1 && nv != cur {
			// A concurrent change won the epoch race; re-derive from the
			// fresher view.
			continue
		}
		if ok {
			// Fan out to the union of old and new members so a joiner learns
			// its first real view and a removed node learns it should drain.
			targets := map[string]bool{}
			for _, m := range members {
				targets[m] = true
			}
			for _, m := range next {
				targets[m] = true
			}
			delete(targets, c.self)
			urls := make([]string, 0, len(targets))
			for m := range targets {
				urls = append(urls, m)
			}
			s.loopWG.Add(1)
			go func(v *ring.View) {
				defer s.loopWG.Done()
				ctx, cancel := s.boundedCtx(10 * time.Second)
				defer cancel()
				s.gossip(ctx, v, urls)
			}(nv)
		}
		s.writeJSON(w, http.StatusOK, MembersResponse{Epoch: nv.Epoch, Members: nv.Members()})
		return
	}
	s.writeJSON(w, http.StatusConflict, ErrorResponse{Error: "daed: membership changing too fast, retry", Class: "conflict"})
}

// adoptView routes a candidate view through the cluster's adoption rule and
// runs the Server-level side effects of a change: a view that drops self
// starts the drain/handoff path in the background (a leave is a drain), and
// a fresh joiner absorbed into a larger cluster starts streaming its
// newly-owned hot envelopes from the prior owners (warmup).
func (s *Server) adoptView(epoch uint64, members []string) (*ring.View, bool) {
	c := s.cluster
	old := c.current()
	nv, changed := c.adopt(epoch, members)
	if !changed {
		return nv, false
	}
	s.cfg.Log.Printf("daed: membership epoch %d: %v", nv.Epoch, nv.Members())
	selfIn := false
	for _, m := range nv.Members() {
		selfIn = selfIn || m == c.self
	}
	if !selfIn {
		if !s.draining.Load() {
			s.loopWG.Add(1)
			go func() {
				defer s.loopWG.Done()
				ctx, cancel := s.boundedCtx(s.cfg.DrainTimeout)
				defer cancel()
				if err := s.Drain(ctx); err != nil {
					s.cfg.Log.Printf("daed: drain after removal: %v", err)
				}
			}()
		}
		return nv, true
	}
	if old.Len() == 1 && nv.Len() > 1 && old.Members()[0] == c.self {
		// This node booted as a cluster of one and was just absorbed: it is
		// a joiner. Stream newly-owned hot envelopes before primary traffic
		// arrives (clients route here only after they adopt the new epoch).
		s.warming.Store(true)
		s.loopWG.Add(1)
		go func() {
			defer s.loopWG.Done()
			defer s.warming.Store(false)
			s.warmup(nv)
		}()
	}
	return nv, true
}

// gossip pushes one view to targets sequentially, each with a bounded
// per-peer timeout. Unreachable peers are logged and skipped: the repair
// loop and 421 redirects converge them later.
func (s *Server) gossip(ctx context.Context, v *ring.View, targets []string) {
	body, err := json.Marshal(MembersRequest{Op: "gossip", Epoch: v.Epoch, Members: v.Members()})
	if err != nil {
		return
	}
	for _, peer := range targets {
		pctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		req, err := http.NewRequestWithContext(pctx, http.MethodPost, peer+"/v1/members", bytes.NewReader(body))
		if err != nil {
			cancel()
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := s.cluster.http.Do(req)
		if err != nil {
			s.cfg.Log.Printf("daed: gossip epoch %d to %s: %v", v.Epoch, peer, err)
			cancel()
			continue
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		cancel()
	}
}

// warmup streams the hottest envelopes this node now owns from the other
// members — the join-time transfer that lets a new node serve its share of
// the key space warm instead of re-deriving every artifact on demand.
func (s *Server) warmup(v *ring.View) {
	c := s.cluster
	ctx, cancel := s.boundedCtx(60 * time.Second)
	defer cancel()
	streamed := 0
	for _, peer := range c.peers(v) {
		keys, err := s.peerKeys(ctx, peer, s.cfg.WarmKeys)
		if err != nil {
			s.cfg.Log.Printf("daed: warmup: keys from %s: %v", peer, err)
			continue
		}
		for _, key := range keys {
			if !c.owns(v, key) || s.store.Has(key) {
				continue
			}
			payload, err := s.fetchArtifact(ctx, peer, key)
			if err != nil {
				continue
			}
			if err := s.store.Put(key, payload); err != nil {
				s.cfg.Log.Printf("daed: warmup: install %s: %v", key, err)
				continue
			}
			s.stats.warmed.Add(1)
			streamed++
		}
	}
	s.cfg.Log.Printf("daed: warmup: streamed %d envelopes at epoch %d", streamed, v.Epoch)
}

// peerKeys fetches up to n hottest keys from a peer (GET /v1/keys).
func (s *Server) peerKeys(ctx context.Context, peer string, n int) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, fmt.Sprintf("%s/v1/keys?n=%d", peer, n), nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.cluster.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("daed: peer %s: keys status %d", peer, resp.StatusCode)
	}
	var body struct {
		Keys []string `json:"keys"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&body); err != nil {
		return nil, err
	}
	return body.Keys, nil
}

// fetchArtifact fetches one stored envelope from a peer (GET /v1/artifact).
// The local store re-verifies the envelope on install, so a damaged or
// tampered payload is rejected there, never served.
func (s *Server) fetchArtifact(ctx context.Context, peer, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/artifact?key="+url.QueryEscape(key), nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.cluster.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("daed: peer %s: artifact get status %d", peer, resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 8<<20))
}

// peerHas probes a peer for key presence (HEAD /v1/artifact) without
// bumping the key's recency there.
func (s *Server) peerHas(ctx context.Context, peer, key string) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, peer+"/v1/artifact?key="+url.QueryEscape(key), nil)
	if err != nil {
		return false, err
	}
	resp, err := s.cluster.http.Do(req)
	if err != nil {
		return false, err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 256))
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("daed: peer %s: artifact head status %d", peer, resp.StatusCode)
	}
}

// handleRing serves GET /v1/ring: the node's current membership view, for
// debugging and for client Refresh.
func (s *Server) handleRing(w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	if c == nil {
		s.writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "daed: standalone node has no ring", Class: "standalone"})
		return
	}
	v := c.current()
	s.writeJSON(w, http.StatusOK, RingResponse{
		Epoch:     v.Epoch,
		Self:      c.self,
		Members:   v.Members(),
		Replicas:  c.replicasFor(v),
		Ownership: v.Fractions(),
		Warming:   s.warming.Load(),
	})
}
