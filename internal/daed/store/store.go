// Package store implements daed's content-addressed artifact store: the
// serving-layer generalization of the trace cache. Where eval.TraceCache
// holds exactly one shape (collected traces keyed by run configuration),
// Store holds any JSON artifact — rendered simulate reports, compiled-module
// listings, generated access variants, analysis reports — under
// caller-chosen content keys, with the same integrity discipline the trace
// cache established: versioned envelopes, a SHA-256 content checksum
// validated on load, and atomic write-then-rename persistence so concurrent
// servers (or a server racing a CLI) sharing one directory never observe a
// torn artifact.
//
// Corrupt, stale, or unreadable entries degrade to misses; the store never
// fails a request over a damaged disk entry.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
)

// version is bumped whenever the envelope layout changes, invalidating
// stale on-disk artifacts.
const version = 1

// envelope is the on-disk form of one artifact.
type envelope struct {
	Version int             `json:"version"`
	Key     string          `json:"key"`
	Sum     string          `json:"sum"`
	Payload json.RawMessage `json:"payload"`
}

// Store is a two-level (memory, disk) content-addressed artifact store,
// safe for concurrent use. The memory level is bounded; the disk level
// (enabled by a non-empty directory) persists across processes.
type Store struct {
	dir    string
	maxMem int

	mu  sync.Mutex
	mem map[string][]byte
}

// DefaultMaxMem bounds the in-memory level when New is given no explicit
// cap. Artifacts are small (rendered reports, a few KB), so a few thousand
// entries cost single-digit MB.
const DefaultMaxMem = 4096

// New returns a store. dir may be empty for a purely in-memory store;
// maxMem <= 0 selects DefaultMaxMem.
func New(dir string, maxMem int) *Store {
	if maxMem <= 0 {
		maxMem = DefaultMaxMem
	}
	return &Store{dir: dir, maxMem: maxMem, mem: make(map[string][]byte)}
}

// path maps a key to its artifact file.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:16])+".json")
}

func contentSum(payload json.RawMessage) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// Get returns the artifact payload stored under key, consulting memory
// first and then disk. Damaged or stale entries are misses.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	b, ok := s.mem[key]
	s.mu.Unlock()
	if ok {
		return b, true
	}
	if s.dir == "" {
		return nil, false
	}
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, false
	}
	if env.Version != version || env.Key != key || contentSum(env.Payload) != env.Sum {
		return nil, false
	}
	s.remember(key, env.Payload)
	return env.Payload, true
}

// Put stores payload (which must be valid JSON) under key, in memory and —
// when persistence is enabled — on disk via an atomic write-then-rename.
// Disk failures are non-fatal: the store degrades to memory-only for that
// artifact.
func (s *Store) Put(key string, payload []byte) error {
	// Compact through a RawMessage round-trip so the checksummed bytes are
	// exactly the bytes a later load decodes (json re-encoding strips
	// whitespace and escapes HTML).
	var compact json.RawMessage
	if err := json.Unmarshal(payload, &compact); err != nil {
		return err
	}
	enc, err := json.Marshal(compact)
	if err != nil {
		return err
	}
	s.remember(key, enc)
	if s.dir == "" {
		return nil
	}
	env := envelope{Version: version, Key: key, Payload: enc}
	// Round-trip once more so Sum covers the stored form of the payload.
	pre, err := json.Marshal(env)
	if err != nil {
		return err
	}
	var stored envelope
	if err := json.Unmarshal(pre, &stored); err != nil {
		return err
	}
	env.Sum = contentSum(stored.Payload)
	b, err := json.Marshal(env)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, "artifact-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmpName, s.path(key))
}

// remember installs an entry in the bounded memory level, evicting an
// arbitrary entry when full (map iteration order; disk still holds every
// artifact, so eviction only costs a re-read).
func (s *Store) remember(key string, payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.mem[key]; !ok && len(s.mem) >= s.maxMem {
		for k := range s.mem {
			delete(s.mem, k)
			break
		}
	}
	s.mem[key] = payload
}

// Len reports the number of artifacts in the memory level (tests).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}
