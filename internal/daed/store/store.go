// Package store implements daed's content-addressed artifact store: the
// serving-layer generalization of the trace cache. Where eval.TraceCache
// holds exactly one shape (collected traces keyed by run configuration),
// Store holds any JSON artifact — rendered simulate reports, compiled-module
// listings, encoded trace sets, analysis reports — under caller-chosen
// content keys, with the same integrity discipline the trace cache
// established: versioned envelopes, a SHA-256 content checksum validated on
// load, and atomic write-then-rename persistence so concurrent servers (or a
// server racing a CLI) sharing one directory never observe a torn artifact.
//
// The store is bounded. A byte budget (Config.MaxBytes) caps the persistent
// level; when a write pushes the store over budget, least-recently-used
// artifacts are evicted until it fits — except keys pinned by an in-flight
// request, which are never evicted. Recency survives restarts through an
// append-only access journal (crash-safe: a torn tail line degrades to lost
// recency, never to a lost artifact), and Open scrubs the directory up
// front, quarantining truncated or bit-flipped envelopes into a quarantine/
// subdirectory so they become clean misses instead of latent read errors.
//
// Corrupt, stale, or unreadable entries degrade to misses; the store never
// fails a request over a damaged disk entry.
package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// version is bumped whenever the envelope layout changes, invalidating
// stale on-disk artifacts.
const version = 1

// journalName is the access journal file inside the store directory.
const journalName = "atime.journal"

// quarantineDir is where the startup scrub moves damaged envelopes,
// relative to the store directory.
const quarantineDir = "quarantine"

// envelope is the on-disk form of one artifact.
type envelope struct {
	Version int             `json:"version"`
	Key     string          `json:"key"`
	Sum     string          `json:"sum"`
	Payload json.RawMessage `json:"payload"`
}

// entry is the store's index record for one retained artifact at the
// authoritative level (disk when persistence is on, memory otherwise).
type entry struct {
	key   string
	stem  string // hex filename stem (disk level)
	bytes int64  // envelope file size (or payload size in memory-only mode)
	seq   int64  // LRU clock: higher = more recently used
}

// Config configures a Store.
type Config struct {
	// Dir is the persistence root; empty means memory-only.
	Dir string
	// MaxMem bounds the in-memory payload cache entry count; <= 0 selects
	// DefaultMaxMem.
	MaxMem int
	// MaxBytes is the byte budget of the authoritative level; 0 means
	// unbounded. A single artifact larger than the budget is still
	// retained (evicting it immediately would make its key thrash), but it
	// evicts everything else unpinned.
	MaxBytes int64
}

// Stats is a point-in-time snapshot of the store's accounting, exposed
// through the server's GET /v1/stats.
type Stats struct {
	// Entries and Bytes describe the retained artifact set.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// MaxBytes echoes the configured budget (0 = unbounded).
	MaxBytes int64 `json:"max_bytes"`
	// Evictions counts artifacts removed by the LRU budget enforcement.
	Evictions int64 `json:"evictions"`
	// ScrubScanned and ScrubQuarantined report the startup scrub: envelopes
	// examined and envelopes moved aside as damaged. Entries quarantined
	// lazily (damage detected on a later Get) also count here.
	ScrubScanned     int `json:"scrub_scanned"`
	ScrubQuarantined int `json:"scrub_quarantined"`
	// Pinned is the number of keys currently protected from eviction by
	// in-flight requests.
	Pinned int `json:"pinned"`
}

// Store is a two-level (memory, disk) content-addressed artifact store,
// safe for concurrent use. The memory level is a bounded payload cache; the
// disk level (enabled by a non-empty directory) persists across processes
// and enforces the byte budget.
type Store struct {
	dir      string
	maxMem   int
	maxBytes int64

	mu        sync.Mutex
	mem       map[string][]byte
	entries   map[string]*entry
	pins      map[string]int
	seq       int64
	diskBytes int64
	evictions int64
	scanned   int
	quarant   int
	journal   *os.File
	jLines    int
}

// DefaultMaxMem bounds the in-memory level when the config names no
// explicit cap. Artifacts are small (rendered reports, a few KB), so a few
// thousand entries cost single-digit MB.
const DefaultMaxMem = 4096

// New returns a store with default budget (unbounded). dir may be empty for
// a purely in-memory store; maxMem <= 0 selects DefaultMaxMem.
func New(dir string, maxMem int) *Store {
	return Open(Config{Dir: dir, MaxMem: maxMem})
}

// Open returns a store over cfg. With persistence enabled it scrubs the
// directory (damaged envelopes move to quarantine/ and become clean misses),
// indexes the surviving artifacts, and replays the access journal to restore
// LRU order across restarts. Open never fails: an unreadable directory
// degrades to an empty store that repopulates on write.
func Open(cfg Config) *Store {
	if cfg.MaxMem <= 0 {
		cfg.MaxMem = DefaultMaxMem
	}
	s := &Store{
		dir:      cfg.Dir,
		maxMem:   cfg.MaxMem,
		maxBytes: cfg.MaxBytes,
		mem:      make(map[string][]byte),
		entries:  make(map[string]*entry),
		pins:     make(map[string]int),
	}
	if s.dir != "" {
		s.scrubAndIndex()
		s.replayJournal()
		s.openJournal()
		s.enforceBudget("")
	}
	return s
}

// Close releases the journal handle (tests; long-running servers hold it
// for life).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	err := s.journal.Close()
	s.journal = nil
	return err
}

// path maps a key to its artifact file.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, stemOf(key)+".json")
}

// stemOf is the stable filename stem of a key.
func stemOf(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:16])
}

func contentSum(payload json.RawMessage) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// scrubAndIndex walks the store directory once, indexing valid envelopes
// and quarantining damaged ones. Files are visited in name order so the
// initial (pre-journal) LRU order is deterministic.
func (s *Store) scrubAndIndex() {
	names, err := filepath.Glob(filepath.Join(s.dir, "*.json"))
	if err != nil {
		return
	}
	sort.Strings(names)
	for _, name := range names {
		s.scanned++
		env, size, ok := readEnvelope(name)
		if !ok {
			s.quarantineFile(name)
			continue
		}
		if got := filepath.Base(name); got != stemOf(env.Key)+".json" {
			// An envelope under the wrong name (a copy, a renamed file)
			// would shadow nothing and leak bytes: quarantine it too.
			s.quarantineFile(name)
			continue
		}
		s.seq++
		s.entries[env.Key] = &entry{key: env.Key, stem: stemOf(env.Key), bytes: size, seq: s.seq}
		s.diskBytes += size
	}
}

// readEnvelope loads and validates one envelope file, returning its decoded
// form and file size. ok is false for any damage: unreadable, unparseable,
// stale version, or checksum mismatch.
func readEnvelope(name string) (env envelope, size int64, ok bool) {
	raw, err := os.ReadFile(name)
	if err != nil {
		return env, 0, false
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		return env, 0, false
	}
	if env.Version != version || env.Key == "" || contentSum(env.Payload) != env.Sum {
		return env, 0, false
	}
	return env, int64(len(raw)), true
}

// quarantineFile moves a damaged envelope into the quarantine
// subdirectory (falling back to deletion if the move fails) so it can never
// shadow a future clean write, and counts it.
func (s *Store) quarantineFile(name string) {
	s.quarant++
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if os.Rename(name, filepath.Join(qdir, filepath.Base(name))) == nil {
			return
		}
	}
	_ = os.Remove(name)
}

// replayJournal restores recency: each journal line is a key whose access
// bumps its LRU clock. Lines naming unknown keys — including a torn final
// line from a crash mid-append — are skipped.
func (s *Store) replayJournal() {
	f, err := os.Open(filepath.Join(s.dir, journalName))
	if err != nil {
		return
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		key := sc.Text()
		s.jLines++
		if e, ok := s.entries[key]; ok {
			s.seq++
			e.seq = s.seq
		}
	}
}

// openJournal opens the journal for appending.
func (s *Store) openJournal() {
	f, err := os.OpenFile(filepath.Join(s.dir, journalName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	s.journal = f
}

// touch bumps key's recency and appends it to the journal. Called with mu
// held. Journal growth is bounded by periodic compaction: when the journal
// holds many more lines than there are entries, it is rewritten to one line
// per retained key (tmp + rename, so a crash leaves either journal intact).
func (s *Store) touch(key string) {
	e, ok := s.entries[key]
	if !ok {
		return
	}
	s.seq++
	e.seq = s.seq
	if s.journal == nil {
		return
	}
	if _, err := s.journal.WriteString(key + "\n"); err == nil {
		s.jLines++
	}
	if s.jLines > 4*len(s.entries)+1024 {
		s.compactJournal()
	}
}

// compactJournal rewrites the journal as the retained keys in LRU order.
// Called with mu held.
func (s *Store) compactJournal() {
	ordered := make([]*entry, 0, len(s.entries))
	for _, e := range s.entries {
		ordered = append(ordered, e)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].seq < ordered[j].seq })
	var b strings.Builder
	for _, e := range ordered {
		b.WriteString(e.key)
		b.WriteByte('\n')
	}
	tmp, err := os.CreateTemp(s.dir, "journal-*.tmp")
	if err != nil {
		return
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if _, err := tmp.WriteString(b.String()); err != nil {
		tmp.Close()
		return
	}
	if tmp.Close() != nil {
		return
	}
	if os.Rename(tmpName, filepath.Join(s.dir, journalName)) != nil {
		return
	}
	if s.journal != nil {
		s.journal.Close()
	}
	s.journal = nil
	s.jLines = len(ordered)
	s.openJournal()
}

// Get returns the artifact payload stored under key, consulting memory
// first and then disk. Damaged or stale entries are misses (and damaged
// ones are quarantined on sight).
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	b, ok := s.mem[key]
	if ok {
		s.touch(key)
		s.mu.Unlock()
		return b, true
	}
	s.mu.Unlock()
	if s.dir == "" {
		return nil, false
	}
	name := s.path(key)
	env, _, ok := readEnvelope(name)
	if !ok || env.Key != key {
		s.mu.Lock()
		if _, tracked := s.entries[key]; tracked {
			// The index says this key exists but the envelope is damaged
			// (post-scrub bit rot or a torn copy): quarantine it now so the
			// bytes stop counting against the budget.
			if _, err := os.Stat(name); err == nil {
				s.quarantineFile(name)
			}
			s.dropLocked(key)
		}
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	s.rememberLocked(key, env.Payload)
	s.touch(key)
	s.mu.Unlock()
	return env.Payload, true
}

// Put stores payload (which must be valid JSON) under key, in memory and —
// when persistence is enabled — on disk via an atomic write-then-rename,
// then enforces the byte budget by evicting least-recently-used, unpinned
// artifacts. Disk failures are non-fatal: the store degrades to memory-only
// for that artifact.
func (s *Store) Put(key string, payload []byte) error {
	// Compact through a RawMessage round-trip so the checksummed bytes are
	// exactly the bytes a later load decodes (json re-encoding strips
	// whitespace and escapes HTML).
	var compact json.RawMessage
	if err := json.Unmarshal(payload, &compact); err != nil {
		return err
	}
	enc, err := json.Marshal(compact)
	if err != nil {
		return err
	}
	if s.dir == "" {
		s.mu.Lock()
		s.rememberLocked(key, enc)
		if old, ok := s.entries[key]; ok {
			s.diskBytes -= old.bytes
		}
		s.seq++
		s.entries[key] = &entry{key: key, bytes: int64(len(enc)), seq: s.seq}
		s.diskBytes += int64(len(enc))
		s.enforceBudget(key)
		s.mu.Unlock()
		return nil
	}
	env := envelope{Version: version, Key: key, Payload: enc}
	// Round-trip once more so Sum covers the stored form of the payload.
	pre, err := json.Marshal(env)
	if err != nil {
		return err
	}
	var stored envelope
	if err := json.Unmarshal(pre, &stored); err != nil {
		return err
	}
	env.Sum = contentSum(stored.Payload)
	b, err := json.Marshal(env)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, "artifact-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, s.path(key)); err != nil {
		return err
	}
	s.mu.Lock()
	s.rememberLocked(key, enc)
	if old, ok := s.entries[key]; ok {
		s.diskBytes -= old.bytes
	}
	s.seq++
	s.entries[key] = &entry{key: key, stem: stemOf(key), bytes: int64(len(b)), seq: s.seq}
	s.diskBytes += int64(len(b))
	s.touchJournalOnly(key)
	s.enforceBudget(key)
	s.mu.Unlock()
	return nil
}

// touchJournalOnly appends key to the journal without re-bumping seq (Put
// already assigned the newest seq). Called with mu held.
func (s *Store) touchJournalOnly(key string) {
	if s.journal == nil {
		return
	}
	if _, err := s.journal.WriteString(key + "\n"); err == nil {
		s.jLines++
	}
	if s.jLines > 4*len(s.entries)+1024 {
		s.compactJournal()
	}
}

// enforceBudget evicts least-recently-used unpinned artifacts until the
// authoritative level fits the budget. keep, when non-empty, names the key
// that triggered enforcement — it is never evicted in its own enforcement
// pass even when it alone exceeds the budget (thrashing its own writer
// helps no one; the next write will reconsider it). Called with mu held.
func (s *Store) enforceBudget(keep string) {
	if s.maxBytes <= 0 {
		return
	}
	for s.diskBytes > s.maxBytes {
		var victim *entry
		for _, e := range s.entries {
			if e.key == keep || s.pins[e.key] > 0 {
				continue
			}
			if victim == nil || e.seq < victim.seq {
				victim = e
			}
		}
		if victim == nil {
			return // everything left is pinned (or the keeper)
		}
		s.dropLocked(victim.key)
		s.evictions++
	}
}

// dropLocked removes key from every level: the index, the memory cache,
// and (when persistent) the disk file. Called with mu held.
func (s *Store) dropLocked(key string) {
	if e, ok := s.entries[key]; ok {
		s.diskBytes -= e.bytes
		delete(s.entries, key)
		if s.dir != "" && e.stem != "" {
			_ = os.Remove(filepath.Join(s.dir, e.stem+".json"))
		}
	}
	delete(s.mem, key)
}

// Delete removes key from the store (drain handoff bookkeeping, tests).
func (s *Store) Delete(key string) {
	s.mu.Lock()
	s.dropLocked(key)
	s.mu.Unlock()
}

// Release removes key only if no request holds it pinned, and reports
// whether it was dropped. The anti-entropy loop uses it to shed keys the
// node no longer owns: a pinned key is mid-request and will be retried on a
// later repair round rather than yanked out from under the reader.
func (s *Store) Release(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pins[key] > 0 {
		return false
	}
	if _, ok := s.entries[key]; !ok {
		return false
	}
	s.dropLocked(key)
	return true
}

// Has reports whether key is retained, without promoting it in the LRU
// order: repair probes must not distort the recency signal that decides
// eviction and drain handoff.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Keys returns every retained key in sorted order: the anti-entropy loop's
// walk of the journal-backed index. Sorted so repair rounds visit keys in a
// stable order regardless of map iteration.
func (s *Store) Keys() []string {
	s.mu.Lock()
	out := make([]string, 0, len(s.entries))
	for k := range s.entries {
		out = append(out, k)
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// Pin protects key from eviction until the matching Unpin: a request that
// decided to execute against this key must not lose the artifact (or have a
// concurrent writer's artifact evicted) mid-flight. Pins are counted, so
// concurrent requests on one key nest.
func (s *Store) Pin(key string) {
	s.mu.Lock()
	s.pins[key]++
	s.mu.Unlock()
}

// Unpin releases one Pin reference.
func (s *Store) Unpin(key string) {
	s.mu.Lock()
	if s.pins[key] > 1 {
		s.pins[key]--
	} else {
		delete(s.pins, key)
	}
	s.mu.Unlock()
}

// Hottest returns up to n retained keys in most-recently-used-first order:
// the working set a draining node hands to its replicas.
func (s *Store) Hottest(n int) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ordered := make([]*entry, 0, len(s.entries))
	for _, e := range s.entries {
		ordered = append(ordered, e)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].seq > ordered[j].seq })
	if n > 0 && n < len(ordered) {
		ordered = ordered[:n]
	}
	out := make([]string, len(ordered))
	for i, e := range ordered {
		out[i] = e.key
	}
	return out
}

// rememberLocked installs an entry in the bounded memory level, evicting an
// arbitrary entry when full (map iteration order; the authoritative level
// still holds every artifact, so this eviction only costs a re-read).
// Called with mu held.
func (s *Store) rememberLocked(key string, payload []byte) {
	if _, ok := s.mem[key]; !ok && len(s.mem) >= s.maxMem {
		for k := range s.mem {
			delete(s.mem, k)
			break
		}
	}
	s.mem[key] = payload
}

// Len reports the number of artifacts in the memory level (tests).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// Stats returns a snapshot of the store's accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:          len(s.entries),
		Bytes:            s.diskBytes,
		MaxBytes:         s.maxBytes,
		Evictions:        s.evictions,
		ScrubScanned:     s.scanned,
		ScrubQuarantined: s.quarant,
		Pinned:           len(s.pins),
	}
}
