package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestPutGetRoundtrip(t *testing.T) {
	s := New(t.TempDir(), 0)
	payload := []byte(`{"report":"hello","n":3}`)
	if err := s.Put("k1", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k1")
	if !ok {
		t.Fatal("miss after put")
	}
	var v struct {
		Report string `json:"report"`
		N      int    `json:"n"`
	}
	if err := json.Unmarshal(got, &v); err != nil {
		t.Fatal(err)
	}
	if v.Report != "hello" || v.N != 3 {
		t.Fatalf("payload mangled: %s", got)
	}
}

func TestDiskPersistsAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	if err := New(dir, 0).Put("k", []byte(`"artifact"`)); err != nil {
		t.Fatal(err)
	}
	got, ok := New(dir, 0).Get("k")
	if !ok || !bytes.Equal(got, []byte(`"artifact"`)) {
		t.Fatalf("second instance: got %q ok=%t", got, ok)
	}
}

func TestCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	s := New(dir, 0)
	if err := s.Put("k", []byte(`"good"`)); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("want 1 envelope, got %v (%v)", entries, err)
	}
	// Flip payload bytes in place: the checksum must catch it.
	raw, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	corrupted := bytes.Replace(raw, []byte(`"good"`), []byte(`"evil"`), 1)
	if bytes.Equal(raw, corrupted) {
		t.Fatal("corruption did not apply")
	}
	if err := os.WriteFile(entries[0], corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := New(dir, 0).Get("k"); ok {
		t.Fatal("corrupt envelope served as a hit")
	}
	// Truncated file: also a miss, not an error.
	if err := os.WriteFile(entries[0], raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := New(dir, 0).Get("k"); ok {
		t.Fatal("truncated envelope served as a hit")
	}
}

func TestWrongKeyIsMiss(t *testing.T) {
	s := New(t.TempDir(), 0)
	if err := s.Put("k", []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("other"); ok {
		t.Fatal("hit on a key never stored")
	}
}

func TestInvalidJSONPayloadRejected(t *testing.T) {
	s := New("", 0)
	if err := s.Put("k", []byte(`{not json`)); err == nil {
		t.Fatal("invalid JSON payload accepted")
	}
}

func TestMemoryBound(t *testing.T) {
	s := New("", 8)
	for i := 0; i < 64; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte(`1`)); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Len(); n > 8 {
		t.Fatalf("memory level holds %d entries, cap is 8", n)
	}
}

// TestConcurrentPutGet exercises the store under -race: concurrent writers
// and readers on overlapping keys, plus eviction pressure.
func TestConcurrentPutGet(t *testing.T) {
	s := New(t.TempDir(), 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				key := fmt.Sprintf("k%d", i%4)
				if err := s.Put(key, []byte(`"v"`)); err != nil {
					t.Errorf("put %s: %v", key, err)
				}
				if b, ok := s.Get(key); ok && !bytes.Equal(b, []byte(`"v"`)) {
					t.Errorf("get %s: damaged payload %q", key, b)
				}
			}
		}(w)
	}
	wg.Wait()
	if b, ok := s.Get("k0"); !ok || !bytes.Equal(b, []byte(`"v"`)) {
		t.Fatalf("final get: %q ok=%t", b, ok)
	}
}

// TestBudgetEvictsLRU: writes past the byte budget evict least-recently-used
// artifacts; a Get refreshes recency and spares its key.
func TestBudgetEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(fmt.Sprintf(`{"pad":%q}`, make([]byte, 0)))
	_ = payload
	big := func(i int) []byte {
		return []byte(fmt.Sprintf(`{"i":%d,"pad":"%s"}`, i, bytes.Repeat([]byte("x"), 200)))
	}
	probe := New(dir, 0)
	if err := probe.Put("size-probe", big(0)); err != nil {
		t.Fatal(err)
	}
	st := probe.Stats()
	perEntry := st.Bytes
	probe.Delete("size-probe")
	probe.Close()

	s := Open(Config{Dir: dir, MaxBytes: 3 * perEntry})
	defer s.Close()
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), big(i)); err != nil {
			t.Fatal(err)
		}
	}
	// k0 is oldest; touch it so k1 becomes the LRU victim.
	if _, ok := s.Get("k0"); !ok {
		t.Fatal("k0 evicted before budget exceeded")
	}
	if err := s.Put("k3", big(3)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k1"); ok {
		t.Fatal("LRU key k1 survived past the budget")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("recently-used key %s was evicted", k)
		}
	}
	st = s.Stats()
	if st.Evictions == 0 || st.Bytes > st.MaxBytes || st.Entries != 3 {
		t.Fatalf("stats after eviction: %+v", st)
	}
}

// TestPinnedKeysSurviveEviction: a pinned (in-flight) key is never the
// eviction victim, regardless of recency.
func TestPinnedKeysSurviveEviction(t *testing.T) {
	dir := t.TempDir()
	big := func(i int) []byte {
		return []byte(fmt.Sprintf(`{"i":%d,"pad":"%s"}`, i, bytes.Repeat([]byte("x"), 200)))
	}
	probe := New(dir, 0)
	if err := probe.Put("size-probe", big(0)); err != nil {
		t.Fatal(err)
	}
	perEntry := probe.Stats().Bytes
	probe.Delete("size-probe")
	probe.Close()

	s := Open(Config{Dir: dir, MaxBytes: 2 * perEntry})
	defer s.Close()
	if err := s.Put("pinned", big(0)); err != nil {
		t.Fatal(err)
	}
	s.Pin("pinned")
	defer s.Unpin("pinned")
	for i := 0; i < 6; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), big(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get("pinned"); !ok {
		t.Fatal("pinned key was evicted under budget pressure")
	}
	if st := s.Stats(); st.Pinned != 1 {
		t.Fatalf("Pinned = %d, want 1", st.Pinned)
	}
}

// TestStartupScrubQuarantines: truncated and bit-flipped envelopes planted
// on disk are moved to quarantine/ at Open, reported in Stats, and served
// as clean misses — the node never crashes over them.
func TestStartupScrubQuarantines(t *testing.T) {
	dir := t.TempDir()
	seed := New(dir, 0)
	for i := 0; i < 3; i++ {
		if err := seed.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf(`{"v":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	seed.Close()
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 3 {
		t.Fatalf("want 3 envelopes, got %v (%v)", entries, err)
	}
	// Truncate one, bit-flip another.
	raw, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entries[0], raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	raw2, err := os.ReadFile(entries[1])
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(raw2, []byte(`"payload"`))
	raw2[i+12] ^= 0x40
	if err := os.WriteFile(entries[1], raw2, 0o644); err != nil {
		t.Fatal(err)
	}

	s := New(dir, 0)
	defer s.Close()
	st := s.Stats()
	if st.ScrubScanned != 3 || st.ScrubQuarantined != 2 || st.Entries != 1 {
		t.Fatalf("scrub stats: %+v", st)
	}
	hits := 0
	for i := 0; i < 3; i++ {
		if _, ok := s.Get(fmt.Sprintf("k%d", i)); ok {
			hits++
		}
	}
	if hits != 1 {
		t.Fatalf("%d keys hit after scrub, want 1 survivor", hits)
	}
	q, err := filepath.Glob(filepath.Join(dir, quarantineDir, "*.json"))
	if err != nil || len(q) != 2 {
		t.Fatalf("quarantine dir holds %v (%v), want 2 files", q, err)
	}
	// A clean re-write of a quarantined key works and persists.
	if err := s.Put("k0", []byte(`{"v":0}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k0"); !ok {
		t.Fatal("re-written key missed")
	}
}

// TestJournalPersistsRecencyAcrossRestart: Get bumps survive a restart via
// the atime journal, changing which key a post-restart budget squeeze
// evicts.
func TestJournalPersistsRecencyAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	big := func(i int) []byte {
		return []byte(fmt.Sprintf(`{"i":%d,"pad":"%s"}`, i, bytes.Repeat([]byte("x"), 200)))
	}
	s := New(dir, 0)
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), big(i)); err != nil {
			t.Fatal(err)
		}
	}
	perEntry := s.Stats().Bytes / 3
	// Touch k0 last so the journal records k0 as most recent.
	if _, ok := s.Get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	s.Close()

	// Reopen with a budget that forces one eviction: without the journal the
	// scan order would evict by filename; with it, k1 (least recent) goes.
	r := Open(Config{Dir: dir, MaxBytes: 2 * perEntry})
	defer r.Close()
	if _, ok := r.Get("k0"); !ok {
		t.Fatal("most-recent key k0 evicted: journal recency lost across restart")
	}
	if _, ok := r.Get("k1"); ok {
		t.Fatal("least-recent key k1 survived the post-restart squeeze")
	}
}

// TestJournalTornTailTolerated: a crash mid-append leaves a torn last line;
// reopen must not fail or mis-index.
func TestJournalTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s := New(dir, 0)
	if err := s.Put("k", []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("k-torn-no-newline"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	r := New(dir, 0)
	defer r.Close()
	if _, ok := r.Get("k"); !ok {
		t.Fatal("torn journal tail broke reopen")
	}
	if st := r.Stats(); st.Entries != 1 {
		t.Fatalf("entries after torn-tail reopen: %+v", st)
	}
}

// TestHottest: most-recently-used-first ordering for drain handoff.
func TestHottest(t *testing.T) {
	s := New(t.TempDir(), 0)
	defer s.Close()
	for i := 0; i < 4; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte(`1`)); err != nil {
			t.Fatal(err)
		}
	}
	s.Get("k1") // k1 becomes hottest
	got := s.Hottest(2)
	if len(got) != 2 || got[0] != "k1" || got[1] != "k3" {
		t.Fatalf("Hottest(2) = %v, want [k1 k3]", got)
	}
	if all := s.Hottest(0); len(all) != 4 {
		t.Fatalf("Hottest(0) = %v, want all 4", all)
	}
}

// TestJournalCompaction: the journal is rewritten when it grows far past the
// entry count, and recency survives the rewrite.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	s := New(dir, 0)
	defer s.Close()
	if err := s.Put("a", []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		s.Get("a")
	}
	raw, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(raw, []byte("\n")); n > 2000 {
		t.Fatalf("journal never compacted: %d lines", n)
	}
	if got := s.Hottest(1); len(got) != 1 || got[0] != "a" {
		t.Fatalf("recency lost across compaction: %v", got)
	}
}

// TestKeysHasRelease covers the anti-entropy hooks: Keys walks the retained
// index sorted, Has probes without bumping recency, and Release respects
// pins.
func TestKeysHasRelease(t *testing.T) {
	s := New(t.TempDir(), 0)
	defer s.Close()
	for _, k := range []string{"b", "a", "c"} {
		if err := s.Put(k, []byte(`1`)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Keys(); len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("Keys() = %v", got)
	}
	if !s.Has("b") || s.Has("zz") {
		t.Fatalf("Has misreported")
	}
	// Has must not promote: after probing "a" repeatedly, "a" is still the
	// coldest (Puts set recency in order b, a, c... actually a was second).
	s.Get("c")
	s.Get("b")
	for i := 0; i < 10; i++ {
		s.Has("a")
	}
	hot := s.Hottest(3)
	if hot[len(hot)-1] != "a" {
		t.Fatalf("Has promoted a: order %v", hot)
	}
	s.Pin("b")
	if s.Release("b") {
		t.Fatalf("Release dropped a pinned key")
	}
	if !s.Has("b") {
		t.Fatalf("pinned key vanished")
	}
	s.Unpin("b")
	if !s.Release("b") {
		t.Fatalf("Release refused an unpinned key")
	}
	if s.Has("b") {
		t.Fatalf("released key still present")
	}
	if s.Release("b") {
		t.Fatalf("Release of a missing key reported true")
	}
}
