package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestPutGetRoundtrip(t *testing.T) {
	s := New(t.TempDir(), 0)
	payload := []byte(`{"report":"hello","n":3}`)
	if err := s.Put("k1", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k1")
	if !ok {
		t.Fatal("miss after put")
	}
	var v struct {
		Report string `json:"report"`
		N      int    `json:"n"`
	}
	if err := json.Unmarshal(got, &v); err != nil {
		t.Fatal(err)
	}
	if v.Report != "hello" || v.N != 3 {
		t.Fatalf("payload mangled: %s", got)
	}
}

func TestDiskPersistsAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	if err := New(dir, 0).Put("k", []byte(`"artifact"`)); err != nil {
		t.Fatal(err)
	}
	got, ok := New(dir, 0).Get("k")
	if !ok || !bytes.Equal(got, []byte(`"artifact"`)) {
		t.Fatalf("second instance: got %q ok=%t", got, ok)
	}
}

func TestCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	s := New(dir, 0)
	if err := s.Put("k", []byte(`"good"`)); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("want 1 envelope, got %v (%v)", entries, err)
	}
	// Flip payload bytes in place: the checksum must catch it.
	raw, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	corrupted := bytes.Replace(raw, []byte(`"good"`), []byte(`"evil"`), 1)
	if bytes.Equal(raw, corrupted) {
		t.Fatal("corruption did not apply")
	}
	if err := os.WriteFile(entries[0], corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := New(dir, 0).Get("k"); ok {
		t.Fatal("corrupt envelope served as a hit")
	}
	// Truncated file: also a miss, not an error.
	if err := os.WriteFile(entries[0], raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := New(dir, 0).Get("k"); ok {
		t.Fatal("truncated envelope served as a hit")
	}
}

func TestWrongKeyIsMiss(t *testing.T) {
	s := New(t.TempDir(), 0)
	if err := s.Put("k", []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("other"); ok {
		t.Fatal("hit on a key never stored")
	}
}

func TestInvalidJSONPayloadRejected(t *testing.T) {
	s := New("", 0)
	if err := s.Put("k", []byte(`{not json`)); err == nil {
		t.Fatal("invalid JSON payload accepted")
	}
}

func TestMemoryBound(t *testing.T) {
	s := New("", 8)
	for i := 0; i < 64; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte(`1`)); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Len(); n > 8 {
		t.Fatalf("memory level holds %d entries, cap is 8", n)
	}
}

// TestConcurrentPutGet exercises the store under -race: concurrent writers
// and readers on overlapping keys, plus eviction pressure.
func TestConcurrentPutGet(t *testing.T) {
	s := New(t.TempDir(), 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				key := fmt.Sprintf("k%d", i%4)
				if err := s.Put(key, []byte(`"v"`)); err != nil {
					t.Errorf("put %s: %v", key, err)
				}
				if b, ok := s.Get(key); ok && !bytes.Equal(b, []byte(`"v"`)) {
					t.Errorf("get %s: damaged payload %q", key, b)
				}
			}
		}(w)
	}
	wg.Wait()
	if b, ok := s.Get("k0"); !ok || !bytes.Equal(b, []byte(`"v"`)) {
		t.Fatalf("final get: %q ok=%t", b, ok)
	}
}
