package analysis

import (
	"fmt"

	"dae/internal/interp"
	"dae/internal/ir"
)

// covTracer records, per cache line, whether the access phase touched it and
// whether the execute phase read it. The interpreter emits events only for
// heap (external) segments, so task-local traffic is excluded for free.
type covTracer struct {
	lineBytes int64
	inAccess  bool
	lines     map[int64]uint8
}

const (
	lineWarmed uint8 = 1 << iota
	lineRead
)

func (t *covTracer) mark(addr int64, bit uint8) {
	t.lines[addr/t.lineBytes] |= bit
}

func (t *covTracer) Load(addr int64) {
	if t.inAccess {
		t.mark(addr, lineWarmed)
	} else {
		t.mark(addr, lineRead)
	}
}

func (t *covTracer) Store(addr int64) {}

func (t *covTracer) Prefetch(addr int64) {
	if t.inAccess {
		t.mark(addr, lineWarmed)
	}
}

// DynamicCoverage measures the line-granular prefetch coverage of one task
// invocation by running the access phase (if any) and then the execute phase
// on cloned arguments, and intersecting the recorded line sets: read is the
// number of distinct cache lines the execute phase loads, covered the subset
// the access phase touched first. The cloned arguments keep the execute
// phase's stores away from live data, so the measurement is repeatable.
//
// This is the dynamic ground truth the static StaticCoverage figure is
// cross-validated against in internal/eval.
func DynamicCoverage(mod *ir.Module, task, access *ir.Func, h *interp.Heap, args []interp.Value, lineBytes int64) (read, covered int, err error) {
	if lineBytes <= 0 {
		lineBytes = 64
	}
	tr := &covTracer{lineBytes: lineBytes, lines: make(map[int64]uint8)}
	prog := interp.NewProgram(mod)
	env := interp.NewEnv(prog, tr)
	cl := interp.CloneArgs(h, args)
	if access != nil {
		tr.inAccess = true
		if _, err := env.Call(access, cl...); err != nil {
			return 0, 0, fmt.Errorf("analysis: access phase of %s: %w", task.Name, err)
		}
	}
	tr.inAccess = false
	if _, err := env.Call(task, cl...); err != nil {
		return 0, 0, fmt.Errorf("analysis: execute phase of %s: %w", task.Name, err)
	}
	for _, bits := range tr.lines {
		if bits&lineRead != 0 {
			read++
			if bits&lineWarmed != 0 {
				covered++
			}
		}
	}
	return read, covered, nil
}
