// Package wcec bounds the worst-case execution cycles (WCEC) and energy of
// every task function statically, using the same calibrated machine model
// (internal/cpu, internal/power) the simulator charges dynamically.
//
// The analysis assigns each basic block a cycle cost from its instruction
// mix, bounds how often each block can execute via trip-count analysis
// (exact lattice counts on affine nests, per-loop interval bounds, then
// caller-supplied profile hints), and folds callee bounds in at call sites —
// interprocedurally, at concrete argument values where they are evaluable.
// Loops with no finite bound make the whole verdict BoundUnbounded with a
// positioned diagnostic naming the loop; the bound is reported as +Inf,
// never silently clamped.
//
// On top of the total the analyzer derives remaining-WCEC (RWCEC)
// annotations at the function's top-level decision points: type-B edges
// (conditional branches) and type-L edges (loop exits), following the
// cfg-wcec-sim formulation. These drive the intra-task DVFS policy in
// internal/rt: at each decision point the frequency is re-picked from
// RWCEC(n)/deadline.
package wcec

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dae/internal/analysis"
	"dae/internal/cpu"
	"dae/internal/interp"
	"dae/internal/ir"
	"dae/internal/scev"
)

// CostModel converts an instruction-mix count vector into core cycles. It is
// the static mirror of cpu.Params' timing terms: a sustained issue width over
// all retired instructions plus fixed penalties for FP divides, math
// intrinsics, and loads (charged at the L2-hit latency; the static model has
// no cache, so every load pays the same — an intentional mid-point that the
// soundness gate compensates for by applying the same model to the observed
// counts).
type CostModel struct {
	IssueWidth float64
	DivCycles  float64
	MathCycles float64
	LoadCycles float64
}

// NewCostModel derives the static cost model from the simulator's CPU
// parameters, so static and dynamic cycle accounting share one calibration.
func NewCostModel(p cpu.Params) CostModel {
	return CostModel{
		IssueWidth: p.IssueWidth,
		DivCycles:  p.DivCycles,
		MathCycles: p.MathCycles,
		LoadCycles: p.L2HitCycles,
	}
}

// Cycles converts a count vector into core cycles. The mapping is linear, so
// it applies equally to a single block's static mix and to a whole run's
// observed counts — which is exactly what the soundness gate compares.
func (m CostModel) Cycles(c interp.Counts) float64 {
	return float64(c.Total())/m.IssueWidth +
		float64(c.FloatDiv)*m.DivCycles +
		float64(c.MathOps)*m.MathCycles +
		float64(c.Loads)*m.LoadCycles
}

// BoundKind classifies the provenance of a WCEC bound, ordered by decreasing
// confidence. It aggregates the trip-count kinds of every loop contributing
// to the bound (and of every callee's bound): one profile-hinted loop makes
// the whole bound BoundProfile.
type BoundKind int

// Bound provenance, strongest first.
const (
	BoundExact BoundKind = iota
	BoundStatic
	BoundProfile
	BoundUnbounded
)

// String returns the report spelling of the kind.
func (k BoundKind) String() string {
	switch k {
	case BoundExact:
		return "exact"
	case BoundStatic:
		return "static"
	case BoundProfile:
		return "profile"
	}
	return "unbounded"
}

func (k BoundKind) worse(o BoundKind) BoundKind {
	if o > k {
		return o
	}
	return k
}

func tripBoundKind(k analysis.TripKind) BoundKind {
	switch k {
	case analysis.TripExact:
		return BoundExact
	case analysis.TripStatic:
		return BoundStatic
	case analysis.TripHinted:
		return BoundProfile
	}
	return BoundUnbounded
}

// Segment is one top-level piece of a function's worst-case execution: either
// a single straight-line block or a whole top-level loop (nested loops and
// calls folded in). Segments appear in reverse-postorder, so their suffix
// sums are the RWCEC at each boundary; the rt rwcec policy replays them as
// DVFS chunks.
type Segment struct {
	// Loop is the top-level loop this segment collapses, nil for a
	// straight-line block.
	Loop *ir.Loop
	// Block is the segment's representative block (the loop header for loop
	// segments).
	Block *ir.Block
	Pos   ir.Pos
	// Cycles is the worst-case cycle total of the whole segment.
	Cycles float64
	// Iters bounds the header visits for loop segments (1 for straight-line).
	Iters int64
}

// PointKind distinguishes the two decision-point edge types of the
// cfg-wcec-sim formulation.
type PointKind byte

// Decision-point kinds.
const (
	// PointBranch is a type-B edge: a top-level conditional branch.
	PointBranch PointKind = 'B'
	// PointLoopExit is a type-L edge: the exit of a top-level loop.
	PointLoopExit PointKind = 'L'
)

// Point is one DVFS decision point with its remaining-work annotation.
type Point struct {
	Kind PointKind
	Pos  ir.Pos
	// Block names the CFG node the point hangs off (the branch's block or
	// the exited loop's header).
	Block string
	// RWCEC is the worst-case cycles remaining after the point is crossed.
	RWCEC float64
}

// Bound is the static WCEC verdict for one function at one concrete
// parameter binding.
type Bound struct {
	Fn   *ir.Func
	Kind BoundKind
	// Cycles is the worst-case core-cycle bound; +Inf when Kind is
	// BoundUnbounded.
	Cycles float64
	// Segments is the top-level worst-case execution structure (empty when
	// unbounded).
	Segments []Segment
	// Points are the RWCEC-annotated decision points, in execution order.
	Points []Point
	// Diags carries positioned wcec diagnostics (unbounded loops, recursion).
	Diags []analysis.Diagnostic
}

// Analyzer computes and memoizes WCEC bounds across a module.
type Analyzer struct {
	Model CostModel
	// MaxPoints caps exact lattice enumeration per loop nest (<= 0 default).
	MaxPoints int
	// LoopHint supplies profile/annotation fallback iteration bounds for
	// loops the static analysis cannot bound; may be nil.
	LoopHint func(fn *ir.Func, l *ir.Loop) (int64, bool)

	memo   map[memoKey]*Bound
	active map[*ir.Func]bool
}

type memoKey struct {
	fn  *ir.Func
	env string
}

// New returns an analyzer over the given cost model.
func New(model CostModel) *Analyzer {
	return &Analyzer{
		Model:  model,
		memo:   make(map[memoKey]*Bound),
		active: make(map[*ir.Func]bool),
	}
}

// envKey renders a parameter binding deterministically for memoization.
func envKey(env map[string]int64) string {
	if len(env) == 0 {
		return ""
	}
	names := make([]string, 0, len(env))
	for n := range env {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		fmt.Fprintf(&sb, "%s=%d;", n, env[n])
	}
	return sb.String()
}

// BoundFunc bounds fn's worst-case execution cycles at the given concrete
// integer parameter values (by parameter name). Results are memoized per
// (function, binding).
func (a *Analyzer) BoundFunc(fn *ir.Func, env map[string]int64) *Bound {
	key := memoKey{fn, envKey(env)}
	if b, ok := a.memo[key]; ok {
		return b
	}
	if a.active[fn] {
		// Recursive call chain: no static bound.
		b := &Bound{Fn: fn, Kind: BoundUnbounded, Cycles: math.Inf(1)}
		b.Diags = append(b.Diags, diag(fn, fn.Entry().Pos(),
			"recursive call cycle through @%s has no static bound", fn.Name))
		return b
	}
	a.active[fn] = true
	b := a.bound(fn, env)
	delete(a.active, fn)
	a.memo[key] = b
	return b
}

func diag(fn *ir.Func, pos ir.Pos, format string, args ...any) analysis.Diagnostic {
	return analysis.Diagnostic{
		Pass: "wcec",
		Sev:  analysis.SevWarning,
		Task: fn.Name,
		Pos:  pos,
		Msg:  fmt.Sprintf(format, args...),
	}
}

func (a *Analyzer) bound(fn *ir.Func, env map[string]int64) *Bound {
	var hint analysis.LoopHint
	if a.LoopHint != nil {
		hint = func(l *ir.Loop) (int64, bool) { return a.LoopHint(fn, l) }
	}
	trips := analysis.TripCounts(fn, env, a.MaxPoints, hint)
	li := ir.FindLoops(fn, ir.NewDomTree(fn))

	b := &Bound{Fn: fn, Kind: BoundExact}
	// Per-block worst-case cycles (callees folded in), then weight by the
	// block's visit bound. Unbounded loops poison the total but the walk
	// continues so every offending loop gets its own diagnostic.
	blockCost := make(map[*ir.Block]float64, len(fn.Blocks))
	unboundedLoops := make(map[*ir.Loop]bool)
	total := 0.0
	for _, blk := range fn.ReversePostorder() {
		bt, ok := trips[blk]
		if !ok {
			continue // unreachable
		}
		cost := a.Model.Cycles(blockCounts(blk))
		for _, in := range blk.Instrs {
			call, okc := in.(*ir.Call)
			if !okc {
				continue
			}
			cb := a.BoundFunc(call.Callee, calleeEnv(call, env))
			b.Kind = b.Kind.worse(cb.Kind)
			if cb.Kind == BoundUnbounded {
				b.Diags = append(b.Diags, diag(fn, in.Pos(),
					"call to @%s has no static bound", call.Callee.Name))
				for _, d := range cb.Diags {
					if d.Task == call.Callee.Name {
						b.Diags = append(b.Diags, d)
					}
				}
			}
			cost += cb.Cycles // +Inf propagates
		}
		blockCost[blk] = cost

		if bt.Kind == analysis.TripUnbounded {
			b.Kind = BoundUnbounded
			if bt.Loop != nil && !unboundedLoops[bt.Loop] {
				unboundedLoops[bt.Loop] = true
				b.Diags = append(b.Diags, diag(fn, bt.Loop.Header.Pos(),
					"loop at %s has no static trip bound: %s", bt.Loop.Header.Name, bt.Reason))
			}
			total = math.Inf(1)
			continue
		}
		b.Kind = b.Kind.worse(tripBoundKind(bt.Kind))
		total += float64(bt.Visits) * cost
	}
	b.Cycles = total
	if b.Kind == BoundUnbounded {
		b.Cycles = math.Inf(1)
		return b
	}

	b.Segments = a.segments(fn, li, trips, blockCost)
	b.Points = points(fn, b.Segments)
	return b
}

// calleeEnv binds the callee's integer parameters to concretely evaluable
// argument values in the caller's environment. Arguments that depend on loop
// IVs (or otherwise fail to evaluate) are left unbound; the callee's own
// analysis then reports any loop that needed them.
func calleeEnv(call *ir.Call, env map[string]int64) map[string]int64 {
	cenv := make(map[string]int64)
	for i, p := range call.Callee.Params {
		if i >= len(call.Args) || !p.Typ.IsInt() {
			continue
		}
		if v, ok := scev.EvalInt(call.Args[i], env); ok {
			cenv[p.Nam] = v
		}
	}
	return cenv
}

// segments collapses the function's reverse-postorder into its top-level
// worst-case execution structure: each top-level loop becomes one segment
// holding the weighted cost of every block it contains; every other block is
// its own straight-line segment.
func (a *Analyzer) segments(fn *ir.Func, li *ir.LoopInfo, trips map[*ir.Block]analysis.BlockTrips, blockCost map[*ir.Block]float64) []Segment {
	top := func(b *ir.Block) *ir.Loop {
		l := li.Of[b]
		for l != nil && l.Parent != nil {
			l = l.Parent
		}
		return l
	}
	var segs []Segment
	seen := make(map[*ir.Loop]bool)
	for _, blk := range fn.ReversePostorder() {
		bt, ok := trips[blk]
		if !ok {
			continue
		}
		l := top(blk)
		if l == nil {
			segs = append(segs, Segment{
				Block:  blk,
				Pos:    blk.Pos(),
				Cycles: float64(bt.Visits) * blockCost[blk],
				Iters:  1,
			})
			continue
		}
		if seen[l] {
			continue
		}
		seen[l] = true
		cycles := 0.0
		for _, lb := range fn.Blocks {
			if lbt, ok := trips[lb]; ok && l.Contains(lb) {
				cycles += float64(lbt.Visits) * blockCost[lb]
			}
		}
		segs = append(segs, Segment{
			Loop:   l,
			Block:  l.Header,
			Pos:    l.Header.Pos(),
			Cycles: cycles,
			Iters:  trips[l.Header].Visits,
		})
	}
	return segs
}

// points derives the RWCEC-annotated decision points from the segment
// sequence: suffix sums give the worst-case work remaining after each
// boundary. A loop segment contributes a type-L point (its exit edge); a
// straight-line segment ending in a conditional branch contributes a type-B
// point.
func points(fn *ir.Func, segs []Segment) []Point {
	suffix := make([]float64, len(segs)+1)
	for i := len(segs) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + segs[i].Cycles
	}
	var pts []Point
	for i, s := range segs {
		switch {
		case s.Loop != nil:
			pts = append(pts, Point{
				Kind:  PointLoopExit,
				Pos:   s.Pos,
				Block: s.Block.Name,
				RWCEC: suffix[i+1],
			})
		default:
			if _, ok := s.Block.Term().(*ir.CondBr); ok {
				pts = append(pts, Point{
					Kind:  PointBranch,
					Pos:   s.Block.Term().Pos(),
					Block: s.Block.Name,
					RWCEC: suffix[i+1],
				})
			}
		}
	}
	return pts
}

// blockCounts mirrors the interpreter's per-instruction count accounting
// exactly (see internal/interp): terminators count as branches, phis,
// allocas, and returns are free, and calls count one Calls event at the site
// (the callee's own counts are charged separately).
func blockCounts(b *ir.Block) interp.Counts {
	var c interp.Counts
	for _, in := range b.Instrs {
		switch i := in.(type) {
		case *ir.Bin:
			switch {
			case i.Op == ir.FDiv:
				c.FloatDiv++
			case i.Op.IsFloat():
				c.Float++
			default:
				c.Int++
			}
		case *ir.Cmp, *ir.Cast, *ir.Select:
			c.Int++
		case *ir.Math:
			c.MathOps++
		case *ir.Load:
			c.Loads++
		case *ir.Store:
			c.Stores++
		case *ir.Prefetch:
			c.Prefetches++
		case *ir.GEP:
			c.GEPs++
		case *ir.Call:
			c.Calls++
		case *ir.Br, *ir.CondBr:
			c.Branches++
		}
	}
	return c
}
