package wcec

import (
	"math"
	"testing"

	"dae/internal/cpu"
	"dae/internal/interp"
	"dae/internal/ir"
	"dae/internal/lower"
	"dae/internal/passes"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	mod, err := lower.Compile(src, "test")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if _, err := passes.OptimizeModule(mod); err != nil {
		t.Fatalf("optimize: %v", err)
	}
	return mod
}

// observe runs fn in the interpreter with a float array of n elements per
// array parameter and n bound to every int parameter, returning the observed
// count vector.
func observe(t *testing.T, mod *ir.Module, fn *ir.Func, n int) interp.Counts {
	t.Helper()
	h := interp.NewHeap()
	var args []interp.Value
	for _, p := range fn.Params {
		switch {
		case p.Typ.IsInt():
			args = append(args, interp.Int(int64(n)))
		case p.Typ.IsFloat():
			args = append(args, interp.Float(1.5))
		default:
			seg := h.AllocFloat(p.Nam, n*n) // enough for 1-D and n x n 2-D
			for i := 0; i < seg.Len(); i++ {
				seg.F[i] = float64(i%7) + 0.5
			}
			args = append(args, interp.Ptr(seg))
		}
	}
	env := interp.NewEnv(interp.NewProgram(mod), nil)
	if _, err := env.Call(fn, args...); err != nil {
		t.Fatalf("interp %s: %v", fn.Name, err)
	}
	return env.Counts()
}

// checkSound asserts bound >= observed under the shared cost model and
// returns the tightness ratio bound/observed.
func checkSound(t *testing.T, m CostModel, b *Bound, obs interp.Counts) float64 {
	t.Helper()
	got := m.Cycles(obs)
	if b.Cycles < got {
		t.Fatalf("unsound: static %.1f < observed %.1f cycles", b.Cycles, got)
	}
	if got == 0 {
		return 1
	}
	return b.Cycles / got
}

func TestBoundRectangularNestExactAndTight(t *testing.T) {
	mod := compile(t, `
task mm(float A[n][n], float B[n][n], float C[n][n], int n) {
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < n; j++) {
			float s = 0.0;
			for (int k = 0; k < n; k++) {
				s += A[i][k] * B[k][j];
			}
			C[i][j] = s;
		}
	}
}`)
	fn := mod.Func("mm")
	m := NewCostModel(cpu.DefaultParams())
	a := New(m)
	const n = 12
	b := a.BoundFunc(fn, map[string]int64{"n": n})
	if b.Kind != BoundExact {
		t.Fatalf("kind = %s, want exact (diags %v)", b.Kind, b.Diags)
	}
	ratio := checkSound(t, m, b, observe(t, mod, fn, n))
	if ratio > 1.05 {
		t.Errorf("affine bound not tight: %.3fx observed", ratio)
	}
	if len(b.Segments) == 0 {
		t.Fatal("no segments")
	}
	// The nest collapses to one type-L decision point with zero remaining
	// work after it (nothing follows the loop but the return).
	var lPoints int
	for _, p := range b.Points {
		if p.Kind == PointLoopExit {
			lPoints++
			if p.RWCEC > b.Cycles/10 {
				t.Errorf("loop-exit RWCEC = %.0f, want near 0 of %.0f", p.RWCEC, b.Cycles)
			}
		}
	}
	if lPoints != 1 {
		t.Errorf("type-L points = %d, want 1", lPoints)
	}
}

func TestBoundBranchesAreWorstCase(t *testing.T) {
	// Data-dependent branch: the static bound must cover whichever arm is
	// costlier (here the sqrt arm), and the top-level structure of two
	// sequential loops must yield a mid-function type-L point with nonzero
	// RWCEC.
	mod := compile(t, `
task k(float A[n], float B[n], int n) {
	for (int i = 0; i < n; i++) {
		if (A[i] < 1.0) {
			B[i] = sqrt(A[i] + 2.0);
		} else {
			B[i] = A[i];
		}
	}
	for (int i = 0; i < n; i++) {
		B[i] = B[i] * 0.5;
	}
}`)
	fn := mod.Func("k")
	m := NewCostModel(cpu.DefaultParams())
	a := New(m)
	const n = 64
	b := a.BoundFunc(fn, map[string]int64{"n": n})
	if b.Kind != BoundExact {
		t.Fatalf("kind = %s, want exact (diags %v)", b.Kind, b.Diags)
	}
	checkSound(t, m, b, observe(t, mod, fn, n))

	var withWork int
	for _, p := range b.Points {
		if p.Kind == PointLoopExit && p.RWCEC > 0 {
			withWork++
		}
	}
	if withWork == 0 {
		t.Errorf("no loop-exit point with remaining work; points = %+v", b.Points)
	}
}

func TestBoundInterprocedural(t *testing.T) {
	mod := compile(t, `
void scale(float A[n], int n, float f) {
	for (int i = 0; i < n; i++) {
		A[i] = A[i] * f;
	}
}
task k(float A[n], int n) {
	scale(A, n, 2.0);
	scale(A, n, 0.5);
}`)
	fn := mod.Func("k")
	m := NewCostModel(cpu.DefaultParams())
	a := New(m)
	const n = 32
	b := a.BoundFunc(fn, map[string]int64{"n": n})
	if b.Kind != BoundExact {
		t.Fatalf("kind = %s, want exact (diags %v)", b.Kind, b.Diags)
	}
	ratio := checkSound(t, m, b, observe(t, mod, fn, n))
	if ratio > 1.05 {
		t.Errorf("interprocedural bound not tight: %.3fx observed", ratio)
	}
}

func TestBoundUnboundedIsDiagnosedNotClamped(t *testing.T) {
	mod := compile(t, `
task k(float A[n], int n) {
	int i = 0;
	while (A[i & 7] < 100.0) {
		A[i & 7] = A[i & 7] + 1.0;
		i = i + 1;
	}
}`)
	fn := mod.Func("k")
	a := New(NewCostModel(cpu.DefaultParams()))
	b := a.BoundFunc(fn, map[string]int64{"n": 8})
	if b.Kind != BoundUnbounded {
		t.Skipf("front end bounded the while loop: %s", b.Kind)
	}
	if !math.IsInf(b.Cycles, 1) {
		t.Errorf("unbounded bound has finite cycles %.0f", b.Cycles)
	}
	if len(b.Diags) == 0 {
		t.Fatal("unbounded verdict carries no diagnostic")
	}
	d := b.Diags[0]
	if d.Pass != "wcec" || d.Task != "k" {
		t.Errorf("diagnostic misattributed: %+v", d)
	}

	// A profile hint turns the same loop into a finite profile-kind bound.
	a2 := New(NewCostModel(cpu.DefaultParams()))
	a2.LoopHint = func(fn *ir.Func, l *ir.Loop) (int64, bool) { return 1000, true }
	b2 := a2.BoundFunc(fn, map[string]int64{"n": 8})
	if b2.Kind != BoundProfile {
		t.Fatalf("hinted kind = %s, want profile", b2.Kind)
	}
	if math.IsInf(b2.Cycles, 1) || b2.Cycles <= 0 {
		t.Errorf("hinted bound not finite positive: %v", b2.Cycles)
	}
}

func TestBoundRecursionUnbounded(t *testing.T) {
	// The optimizer's inliner rejects recursion outright, so this guard is
	// only reachable on unoptimized IR — analyze the lowered module directly.
	mod, err := lower.Compile(`
void r(float A[n], int n) {
	if (n > 0) {
		A[0] = A[0] + 1.0;
		r(A, n - 1);
	}
}
task k(float A[n], int n) {
	r(A, n);
}`, "test")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	fn := mod.Func("k")
	a := New(NewCostModel(cpu.DefaultParams()))
	b := a.BoundFunc(fn, map[string]int64{"n": 4})
	if b.Kind != BoundUnbounded {
		t.Fatalf("recursive call bound = %s, want unbounded", b.Kind)
	}
	found := false
	for _, d := range b.Diags {
		if d.Pass == "wcec" {
			found = true
		}
	}
	if !found {
		t.Errorf("no wcec diagnostic for recursion: %v", b.Diags)
	}
}

func TestBoundMemoized(t *testing.T) {
	mod := compile(t, `
task k(float A[n], int n) {
	for (int i = 0; i < n; i++) { A[i] = 0.0; }
}`)
	fn := mod.Func("k")
	a := New(NewCostModel(cpu.DefaultParams()))
	b1 := a.BoundFunc(fn, map[string]int64{"n": 16})
	b2 := a.BoundFunc(fn, map[string]int64{"n": 16})
	if b1 != b2 {
		t.Error("same binding not memoized")
	}
	b3 := a.BoundFunc(fn, map[string]int64{"n": 32})
	if b3 == b1 || b3.Cycles <= b1.Cycles {
		t.Errorf("different binding shares or shrinks the bound: %v vs %v", b3.Cycles, b1.Cycles)
	}
}
