// Package analysis implements the static DAE-contract checkers: a purity
// verifier that proves a generated access phase has no externally visible
// effects beyond prefetching, a prefetch-coverage analysis that bounds how
// much of the execute phase's external read set the access phase warms (the
// compile-time companion to the paper's Table 1 TA%), and a polyhedral race
// detector that intersects the affine access sets of tasks the runtime would
// schedule in the same parallel batch.
//
// The passes work on the optimized SSA IR of internal/ir, reuse the
// scalar-evolution (internal/scev) and polyhedral (internal/poly) machinery
// the access generator itself is built on, and report their findings as
// positioned Diagnostics: every finding carries the TaskC source position the
// front end threaded through lowering into the IR instruction metadata.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"dae/internal/ir"
)

// Severity ranks a diagnostic.
type Severity uint8

// Severities. Only SevError findings are contract violations; SevWarning
// marks suspicious-but-sound results and SevInfo marks analysis limits
// (e.g. a non-affine task the race detector cannot check).
const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

// String returns the lowercase severity name.
func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	}
	return "info"
}

// Diagnostic is one positioned finding of a static-analysis pass.
type Diagnostic struct {
	// Pass names the producing pass: "purity", "coverage", or "race".
	Pass string
	// Sev is the severity.
	Sev Severity
	// Task is the task (or function) the finding is about.
	Task string
	// Pos is the primary TaskC source position (zero when unknown, e.g. for
	// compiler-synthesized instructions).
	Pos ir.Pos
	// RelPos is a secondary position (the other side of a race), if any.
	RelPos ir.Pos
	// Msg is the human-readable description.
	Msg string
}

// String renders "task:line:col: severity: [pass] msg", the format the golden
// tests pin down.
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%s: %s: [%s] %s", d.Task, d.Pos, d.Sev, d.Pass, d.Msg)
	if d.RelPos.IsValid() {
		s += fmt.Sprintf(" (conflicting access at %s)", d.RelPos)
	}
	return s
}

// SortDiagnostics orders diagnostics deterministically: by task, position,
// pass, and message.
func SortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Msg < b.Msg
	})
}

// Format renders diagnostics sorted, one per line (empty string when none).
func Format(ds []Diagnostic) string {
	sorted := append([]Diagnostic(nil), ds...)
	SortDiagnostics(sorted)
	var sb strings.Builder
	for _, d := range sorted {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// HasErrors reports whether any diagnostic is SevError.
func HasErrors(ds []Diagnostic) bool {
	for _, d := range ds {
		if d.Sev == SevError {
			return true
		}
	}
	return false
}

// CountSev returns the number of diagnostics at exactly severity sev.
func CountSev(ds []Diagnostic, sev Severity) int {
	n := 0
	for _, d := range ds {
		if d.Sev == sev {
			n++
		}
	}
	return n
}
