package analysis

import (
	"fmt"

	"dae/internal/ir"
)

// DefaultMaxPoints caps the lattice points enumerated per phase before the
// coverage analysis degrades to the may-read approximation.
const DefaultMaxPoints = 1 << 22

// Coverage is the static prefetch-coverage result for one task invocation:
// how much of the execute phase's external read set (at cache-line
// granularity) the access phase's prefetch set warms.
type Coverage struct {
	// Task is the execute-phase function name.
	Task string
	// Exact is true when both phases were fully affine and enumerable, so
	// ReadLines/CoveredLines are exact lattice-point counts. When false the
	// figures come from the conservative may-read approximation (see
	// MatchedReads/StaticReads) and only bound the truth.
	Exact bool
	// ReadLines is the number of distinct (array, cache line) pairs the
	// execute phase reads; CoveredLines of them are touched by the access
	// phase (prefetched or loaded). Meaningful when Exact.
	ReadLines, CoveredLines int
	// StaticReads counts the execute phase's static external loads;
	// MatchedReads of them have a same-source-position counterpart
	// (prefetch or load of the same array) in the access phase. This is the
	// skeleton-path approximation: the access phase is a slice of the task,
	// so source positions survive cloning and identify the matching access.
	StaticReads, MatchedReads int
	// Notes carries per-task informational diagnostics (analysis limits).
	Notes []Diagnostic
}

// Fraction returns the coverage in [0,1]: exact line coverage when Exact,
// the static may-read match ratio otherwise. A task that reads nothing
// external is fully covered by definition.
func (c Coverage) Fraction() float64 {
	if c.Exact {
		if c.ReadLines == 0 {
			return 1
		}
		return float64(c.CoveredLines) / float64(c.ReadLines)
	}
	if c.StaticReads == 0 {
		return 1
	}
	return float64(c.MatchedReads) / float64(c.StaticReads)
}

// String renders a one-line summary.
func (c Coverage) String() string {
	if c.Exact {
		return fmt.Sprintf("%s: coverage %.1f%% (exact: %d/%d lines)",
			c.Task, 100*c.Fraction(), c.CoveredLines, c.ReadLines)
	}
	return fmt.Sprintf("%s: coverage %.1f%% (may-read: %d/%d static loads matched)",
		c.Task, 100*c.Fraction(), c.MatchedReads, c.StaticReads)
}

// lineKey identifies one cache line of one array parameter. Arrays are keyed
// by parameter index: the access version shares the task's signature, so
// position i names the same runtime array in both phases.
type lineKey struct {
	param int
	line  int64
}

// StaticCoverage computes the prefetch coverage of access over task at the
// given concrete integer parameter values (by parameter name) and cache-line
// size. A nil access function means the task runs coupled: coverage is 0
// unless the task performs no external reads.
func StaticCoverage(task, access *ir.Func, env map[string]int64, lineBytes int64, maxPoints int) Coverage {
	if lineBytes <= 0 {
		lineBytes = 64
	}
	if maxPoints <= 0 {
		maxPoints = DefaultMaxPoints
	}
	cov := Coverage{Task: task.Name}
	taskAcc := extractAccesses(task, env)

	if access == nil {
		cov.Exact = taskAcc.exact() && len(taskAcc.reads) == 0
		cov.StaticReads = len(taskAcc.reads) + len(taskAcc.vagueReads)
		if cov.StaticReads > 0 {
			cov.Notes = append(cov.Notes, Diagnostic{
				Pass: "coverage", Sev: SevInfo, Task: task.Name,
				Msg: "no access phase: external reads are never prefetched",
			})
		}
		return cov
	}
	accAcc := extractAccesses(access, env)

	if taskAcc.exact() && accAcc.exact() {
		read := make(map[lineKey]struct{})
		if collectLines(taskAcc.reads, lineBytes, maxPoints, read) {
			warmed := make(map[lineKey]struct{})
			okP := collectLines(accAcc.prefs, lineBytes, maxPoints, warmed)
			okL := collectLines(accAcc.reads, lineBytes, maxPoints, warmed)
			if okP && okL {
				cov.Exact = true
				cov.ReadLines = len(read)
				for k := range read {
					if _, ok := warmed[k]; ok {
						cov.CoveredLines++
					}
				}
				return cov
			}
		}
		cov.Notes = append(cov.Notes, Diagnostic{
			Pass: "coverage", Sev: SevInfo, Task: task.Name,
			Msg: fmt.Sprintf("iteration space exceeds %d points; falling back to may-read approximation", maxPoints),
		})
	} else {
		cov.Notes = append(cov.Notes, Diagnostic{
			Pass: "coverage", Sev: SevInfo, Task: task.Name,
			Msg: "non-affine accesses; using conservative may-read approximation",
		})
	}

	// May-read approximation: the skeleton access phase is a clone-and-slice
	// of the task, so every retained prefetch/load keeps the source position
	// of the task access it covers. Count the task's external loads that
	// have a position- and array-matched counterpart in the access phase.
	warm := make(map[warmKey]bool)
	for _, ma := range accAcc.prefs {
		warm[warmKeyOf(ma.in, ma.param)] = true
	}
	for _, ma := range accAcc.reads {
		warm[warmKeyOf(ma.in, ma.param)] = true
	}
	for _, in := range accAcc.vaguePrefs {
		warm[warmKeyOf(in, paramOf(prefetchPtr(in)))] = true
	}
	for _, in := range accAcc.vagueReads {
		warm[warmKeyOf(in, paramOf(loadPtr(in)))] = true
	}
	count := func(in ir.Instr, p *ir.Param) {
		cov.StaticReads++
		if warm[warmKeyOf(in, p)] {
			cov.MatchedReads++
		}
	}
	for _, ma := range taskAcc.reads {
		count(ma.in, ma.param)
	}
	for _, in := range taskAcc.vagueReads {
		count(in, paramOf(loadPtr(in)))
	}
	return cov
}

// warmKey matches a task access with its access-phase counterpart by source
// position and array name.
type warmKey struct {
	pos   ir.Pos
	array string
}

func warmKeyOf(in ir.Instr, p *ir.Param) warmKey {
	k := warmKey{pos: in.Pos()}
	if p != nil {
		k.array = p.Nam
	}
	return k
}

func prefetchPtr(in ir.Instr) ir.Value { return in.(*ir.Prefetch).Ptr }
func loadPtr(in ir.Instr) ir.Value     { return in.(*ir.Load).Ptr }

// paramOf resolves the base parameter of a pointer, or nil.
func paramOf(v ir.Value) *ir.Param {
	for {
		switch x := v.(type) {
		case *ir.GEP:
			v = x.Base
		case *ir.Param:
			return x
		default:
			return nil
		}
	}
}

// collectLines enumerates the accesses' index points into dst as cache-line
// keys. It reports false when an enumeration exceeded maxPoints.
func collectLines(accs []*memAccess, lineBytes int64, maxPoints int, dst map[lineKey]struct{}) bool {
	const wordSize = 8 // interp.WordSize, kept literal to avoid the dependency
	for _, ma := range accs {
		ok := ma.sp.enumerate(maxPoints, func(t []int64) {
			idx := ma.flat.eval(t)
			dst[lineKey{param: ma.param.Index, line: idx * wordSize / lineBytes}] = struct{}{}
		})
		if !ok {
			return false
		}
	}
	return true
}
