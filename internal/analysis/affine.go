package analysis

import (
	"dae/internal/ir"
	"dae/internal/poly"
	"dae/internal/scev"
)

// The affine extraction instantiates every analyzable memory access of a
// function at concrete integer parameter values: the access's enclosing loop
// nest becomes a trip-count space over fresh variables t₀..t_{n-1} (t_k ≥ 0,
// iv_k = lower_k + step_k·t_k), and the flattened element index becomes a
// linear function of the t's with integer coefficients. Working in t-space
// rather than iv-space keeps non-unit strides (blocked loops) exact under
// both lattice-point enumeration (coverage) and Fourier–Motzkin emptiness
// tests (races).

// lin is a linear expression c·t + k over the trip counters of one nest.
type lin struct {
	c []int64
	k int64
}

func newLin(n int, k int64) lin { return lin{c: make([]int64, n), k: k} }

func (l lin) clone() lin {
	c := make([]int64, len(l.c))
	copy(c, l.c)
	return lin{c: c, k: l.k}
}

func (l lin) add(o lin) lin {
	r := l.clone()
	for i := range o.c {
		r.c[i] += o.c[i]
	}
	r.k += o.k
	return r
}

func (l lin) sub(o lin) lin { return l.add(o.scale(-1)) }

func (l lin) scale(s int64) lin {
	r := l.clone()
	for i := range r.c {
		r.c[i] *= s
	}
	r.k *= s
	return r
}

// eval evaluates the expression at a concrete t vector. Coefficients of
// variables beyond position limit are zero by construction for nest level
// expressions, so partially filled vectors are safe.
func (l lin) eval(t []int64) int64 {
	v := l.k
	for i, c := range l.c {
		if c != 0 {
			v += c * t[i]
		}
	}
	return v
}

// row renders the expression as a poly constraint row (vars..., 1).
func (l lin) row() []int64 {
	r := make([]int64, len(l.c)+1)
	copy(r, l.c)
	r[len(l.c)] = l.k
	return r
}

// evalInt evaluates a loop-invariant integer value at concrete parameter
// values (by parameter name). The evaluator lives in internal/scev
// (scev.EvalInt) so the trip-count bounds and the affine extraction agree on
// exactly which value shapes are concretely evaluable.
func evalInt(v ir.Value, env map[string]int64) (int64, bool) {
	return scev.EvalInt(v, env)
}

// nestSpace is the trip-count space of one loop nest at concrete parameters.
type nestSpace struct {
	ivs []*scev.IVInfo
	// ivLin maps each nest IV phi to its value as a linear function of t.
	ivLin map[*ir.Phi]lin
	// pred/bound describe the continuation condition of level k:
	// the body runs while ivLin[k] pred bound[k].
	pred  []ir.CmpPred
	bound []lin
	// dom is the trip polytope: t_k >= 0 plus the continuation conditions.
	dom *poly.Polyhedron
	ok  bool
}

func (sp *nestSpace) depth() int { return len(sp.ivs) }

// memAccess is one affine-analyzable external memory access instantiated at
// concrete parameters.
type memAccess struct {
	in    ir.Instr
	param *ir.Param // base array parameter
	sp    *nestSpace
	flat  lin // flattened element index over sp's trip counters

	// elemSet memoizes the concrete element-index set for integer overlap
	// confirmation (see memAccess.elems).
	elemSet  map[int64]bool
	elemDone bool
}

// elems returns the access's concrete element-index set by enumerating the
// trip space's lattice points (memoized). ok is false when the domain holds
// more than maxPoints points, in which case the set is unavailable.
func (m *memAccess) elems(maxPoints int) (map[int64]bool, bool) {
	if m.elemDone {
		return m.elemSet, m.elemSet != nil
	}
	m.elemDone = true
	set := make(map[int64]bool)
	if !m.sp.enumerate(maxPoints, func(t []int64) {
		set[m.flat.eval(t)] = true
	}) {
		return nil, false
	}
	m.elemSet = set
	return set, true
}

// funcAccesses partitions a function's external memory accesses.
type funcAccesses struct {
	reads, writes, prefs []*memAccess
	// The vague lists hold external accesses the affine machinery could not
	// model (non-affine subscripts, unrecognized loops, symbolic values with
	// no concrete binding). Their presence makes set-based results
	// approximate.
	vagueReads, vagueWrites, vaguePrefs []ir.Instr
}

func (fa *funcAccesses) exact() bool {
	return len(fa.vagueReads) == 0 && len(fa.vagueWrites) == 0 && len(fa.vaguePrefs) == 0
}

type extractor struct {
	f      *ir.Func
	env    map[string]int64
	an     *scev.Analysis
	spaces map[*ir.Block]*nestSpace
}

// extractAccesses classifies every load, store, and prefetch of f that
// targets parameter (external) memory, at the given concrete integer
// parameter values. Accesses to alloca-rooted memory are task-local and
// skipped entirely.
func extractAccesses(f *ir.Func, env map[string]int64) *funcAccesses {
	x := &extractor{f: f, env: env, an: scev.Analyze(f), spaces: make(map[*ir.Block]*nestSpace)}
	fa := &funcAccesses{}
	cl := &classifier{memo: make(map[ir.Value]ptrClass)}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			var ptr ir.Value
			var kind int // 0 read, 1 write, 2 prefetch
			switch i := in.(type) {
			case *ir.Load:
				ptr, kind = i.Ptr, 0
			case *ir.Store:
				ptr, kind = i.Ptr, 1
			case *ir.Prefetch:
				ptr, kind = i.Ptr, 2
			default:
				continue
			}
			if cl.classify(ptr) == ptrLocal {
				continue
			}
			ma := x.accessOf(in, ptr)
			switch {
			case ma != nil && kind == 0:
				fa.reads = append(fa.reads, ma)
			case ma != nil && kind == 1:
				fa.writes = append(fa.writes, ma)
			case ma != nil:
				fa.prefs = append(fa.prefs, ma)
			case kind == 0:
				fa.vagueReads = append(fa.vagueReads, in)
			case kind == 1:
				fa.vagueWrites = append(fa.vagueWrites, in)
			default:
				fa.vaguePrefs = append(fa.vaguePrefs, in)
			}
		}
	}
	return fa
}

// space returns (building and memoizing) the trip space of b's loop nest.
// The zero-depth space (straight-line code) is always ok.
func (x *extractor) space(b *ir.Block) *nestSpace {
	if sp, ok := x.spaces[b]; ok {
		return sp
	}
	sp := x.buildSpace(b)
	x.spaces[b] = sp
	return sp
}

func (x *extractor) buildSpace(b *ir.Block) *nestSpace {
	bad := &nestSpace{}
	ivs, ok := x.an.LoopNestOf(b)
	if !ok {
		return bad
	}
	n := len(ivs)
	sp := &nestSpace{
		ivs:   ivs,
		ivLin: make(map[*ir.Phi]lin, n),
		pred:  make([]ir.CmpPred, n),
		bound: make([]lin, n),
		dom:   poly.NewPolyhedron(n, 0),
	}
	for k, iv := range ivs {
		if iv.Step == 0 {
			return bad
		}
		lo, ok := x.linOf(iv.Lower, sp, n)
		if !ok {
			return bad
		}
		ivl := lo.clone()
		ivl.c[k] += iv.Step
		sp.ivLin[iv.Phi] = ivl

		bd, ok := x.linOf(iv.Bound, sp, n)
		if !ok {
			return bad
		}
		// The trip space is finite only when the IV moves toward the bound:
		// ascending with < / <=, or descending with > / >=.
		up := iv.Pred == ir.LT || iv.Pred == ir.LE
		down := iv.Pred == ir.GT || iv.Pred == ir.GE
		if (iv.Step > 0 && !up) || (iv.Step < 0 && !down) {
			return bad
		}
		var con lin
		switch iv.Pred {
		case ir.LT:
			con = bd.sub(ivl)
			con.k--
		case ir.LE:
			con = bd.sub(ivl)
		case ir.GT:
			con = ivl.sub(bd)
			con.k--
		case ir.GE:
			con = ivl.sub(bd)
		default:
			return bad
		}
		sp.pred[k] = iv.Pred
		sp.bound[k] = bd
		tpos := newLin(n, 0)
		tpos.c[k] = 1
		sp.dom.AddConstraint(tpos.row())
		sp.dom.AddConstraint(con.row())
	}
	sp.ok = true
	return sp
}

// linOf instantiates a scalar-evolution affine expression in a nest's trip
// space: IV terms expand to their t-space forms, symbol terms must evaluate
// to concrete integers.
func (x *extractor) linOf(a scev.Affine, sp *nestSpace, n int) (lin, bool) {
	res := newLin(n, a.Const)
	for phi, co := range a.IV {
		pl, ok := sp.ivLin[phi]
		if !ok {
			return lin{}, false // IV of an unrelated nest
		}
		res = res.add(pl.scale(co))
	}
	for sym, co := range a.Sym {
		v, ok := evalInt(sym, x.env)
		if !ok {
			return lin{}, false
		}
		res.k += co * v
	}
	return res, true
}

// accessOf models one memory access, or nil when it is not affine at the
// given parameters.
func (x *extractor) accessOf(in ir.Instr, ptr ir.Value) *memAccess {
	sp := x.space(in.Parent())
	if !sp.ok {
		return nil
	}
	flat, param, ok := x.flatIndex(ptr, sp)
	if !ok {
		return nil
	}
	return &memAccess{in: in, param: param, sp: sp, flat: flat}
}

// flatIndex flattens a GEP chain over a parameter base into a single linear
// element index (row-major, matching the interpreter's address arithmetic).
func (x *extractor) flatIndex(ptr ir.Value, sp *nestSpace) (lin, *ir.Param, bool) {
	n := sp.depth()
	switch g := ptr.(type) {
	case *ir.Param:
		return newLin(n, 0), g, true
	case *ir.GEP:
		base, param, ok := x.flatIndex(g.Base, sp)
		if !ok {
			return lin{}, nil, false
		}
		// stride_k = Π_{j>k} dims_j, evaluated at the concrete parameters.
		stride := int64(1)
		idx := newLin(n, 0)
		for k := len(g.Idx) - 1; k >= 0; k-- {
			a, ok := x.an.AffineOf(g.Idx[k])
			if !ok {
				return lin{}, nil, false
			}
			il, ok := x.linOf(a, sp, n)
			if !ok {
				return lin{}, nil, false
			}
			idx = idx.add(il.scale(stride))
			d, ok := evalInt(g.Dims[k], x.env)
			if !ok || d <= 0 {
				return lin{}, nil, false
			}
			stride *= d
		}
		return base.add(idx), param, true
	default:
		return lin{}, nil, false
	}
}

// enumerate visits every lattice point of the nest's trip space, calling fn
// with the t vector (valid only for the duration of the call). It returns
// false when more than maxPoints points exist (the enumeration stops early).
func (sp *nestSpace) enumerate(maxPoints int, fn func(t []int64)) bool {
	if !sp.ok {
		return false
	}
	n := sp.depth()
	t := make([]int64, n)
	count := 0
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == n {
			count++
			if count > maxPoints {
				return false
			}
			fn(t)
			return true
		}
		iv := sp.ivLin[sp.ivs[k].Phi]
		for tv := int64(0); ; tv++ {
			t[k] = tv
			if !predHolds(sp.pred[k], iv.eval(t), sp.bound[k].eval(t)) {
				break
			}
			if !rec(k + 1) {
				return false
			}
		}
		t[k] = 0
		return true
	}
	return rec(0)
}

func predHolds(p ir.CmpPred, a, b int64) bool {
	switch p {
	case ir.LT:
		return a < b
	case ir.LE:
		return a <= b
	case ir.GT:
		return a > b
	case ir.GE:
		return a >= b
	case ir.EQ:
		return a == b
	case ir.NE:
		return a != b
	}
	return false
}
