package analysis

import (
	"dae/internal/ir"
	"dae/internal/scev"
)

// This file exports per-block visit bounds for the WCEC cost analysis
// (internal/analysis/wcec): how many times can each block of a function
// execute in one invocation at concrete parameter values? On affine nests
// the answer is exact lattice-point counting over the same trip-count
// polytopes the coverage and race analyses instantiate (non-unit strides and
// triangular bounds included); elsewhere it falls back to the product of
// per-loop scev trip bounds, then to caller-supplied loop hints, and finally
// to an explicit Unbounded verdict — never a silent clamp.

// TripKind classifies the provenance of a visit bound, ordered by decreasing
// confidence.
type TripKind int

// Trip-bound provenance, from strongest to weakest.
const (
	// TripExact: the nest's trip polytope was enumerated exactly.
	TripExact TripKind = iota
	// TripStatic: a static interval bound (sound, possibly loose — e.g. a
	// triangular inner loop charged its worst outer iteration).
	TripStatic
	// TripHinted: at least one enclosing loop used a caller-supplied
	// (annotated or profile-derived) iteration bound.
	TripHinted
	// TripUnbounded: no finite bound exists; Reason names the loop and cause.
	TripUnbounded
)

// String returns the report spelling of the kind.
func (k TripKind) String() string {
	switch k {
	case TripExact:
		return "exact"
	case TripStatic:
		return "static"
	case TripHinted:
		return "profile"
	}
	return "unbounded"
}

// worse returns the weaker of two kinds.
func (k TripKind) worse(o TripKind) TripKind {
	if o > k {
		return o
	}
	return k
}

// BlockTrips bounds the executions of one block in one function invocation.
type BlockTrips struct {
	// Visits is the execution bound (meaningless when Kind is TripUnbounded).
	Visits int64
	Kind   TripKind
	// Reason explains an unbounded verdict.
	Reason string
	// Loop is the innermost enclosing loop that forced TripUnbounded (nil
	// otherwise).
	Loop *ir.Loop
}

// LoopHint supplies a fallback iteration bound (per loop entry) for loops the
// static analysis cannot bound; return false when no hint exists.
type LoopHint func(l *ir.Loop) (int64, bool)

// tripSat is the saturation ceiling for visit-count products: large enough
// that any real workload stays far below it, small enough that downstream
// float conversions and additions cannot overflow.
const tripSat = int64(1) << 50

// TripCounts bounds, for every reachable block of f, how many times the block
// executes in one invocation at the given concrete integer parameters.
// maxPoints caps the lattice enumeration per loop (<= 0 selects a default);
// hint may be nil. Loop headers are charged their extra bound-check
// execution (trips+1 per entry), mirroring the interpreter's accounting.
func TripCounts(f *ir.Func, env map[string]int64, maxPoints int, hint LoopHint) map[*ir.Block]BlockTrips {
	if maxPoints <= 0 {
		maxPoints = 1 << 20
	}
	x := &extractor{f: f, env: env, an: scev.Analyze(f), spaces: make(map[*ir.Block]*nestSpace)}
	tc := &tripCounter{x: x, maxPoints: maxPoints, hint: hint, loops: make(map[*ir.Loop]BlockTrips)}

	out := make(map[*ir.Block]BlockTrips)
	for _, b := range f.ReversePostorder() {
		l := x.an.Loops.Of[b]
		bt := tc.ofLoop(l)
		if l != nil && b == l.Header && bt.Kind != TripUnbounded {
			// The header executes once more per loop entry: the final,
			// failing bound check.
			entries := tc.ofLoop(l.Parent)
			if entries.Kind == TripUnbounded {
				bt = entries
			} else {
				bt.Visits = satAdd(bt.Visits, entries.Visits)
				bt.Kind = bt.Kind.worse(entries.Kind)
			}
		}
		out[b] = bt
	}
	return out
}

type tripCounter struct {
	x         *extractor
	maxPoints int
	hint      LoopHint
	loops     map[*ir.Loop]BlockTrips
}

// ofLoop bounds the total body executions of loop l across the whole
// function invocation (all entries). The nil loop is the function's straight-
// line top level, which runs exactly once.
func (tc *tripCounter) ofLoop(l *ir.Loop) BlockTrips {
	if l == nil {
		return BlockTrips{Visits: 1, Kind: TripExact}
	}
	if bt, ok := tc.loops[l]; ok {
		return bt
	}
	// Recursion guard: self-referential parent chains cannot occur in valid
	// loop forests, but memoize a pessimistic default first anyway.
	tc.loops[l] = BlockTrips{Kind: TripUnbounded, Reason: "cyclic loop nest", Loop: l}
	bt := tc.computeLoop(l)
	tc.loops[l] = bt
	return bt
}

func (tc *tripCounter) computeLoop(l *ir.Loop) BlockTrips {
	// Exact path: enumerate the lattice points of the nest's trip polytope.
	// The polytope includes every enclosing level's continuation constraint,
	// so the count is the total body executions across all entries — exact
	// for affine nests with non-unit strides and triangular bounds alike.
	sp := tc.x.space(l.Header)
	if sp.ok {
		n := int64(0)
		if sp.enumerate(tc.maxPoints, func([]int64) { n++ }) {
			return BlockTrips{Visits: n, Kind: TripExact}
		}
	}

	// Fallback: entries(parent) x per-entry trip bound of this level, where
	// the trip bound comes from scev's interval analysis or, failing that,
	// from a caller-supplied hint.
	parent := tc.ofLoop(l.Parent)
	if parent.Kind == TripUnbounded {
		return parent
	}
	tr := tc.x.an.TripOf(l, tc.x.env)
	kind := TripStatic
	if tr.Exact {
		kind = TripExact
	}
	count := tr.Count
	if tr.Unbounded {
		h, ok := int64(0), false
		if tc.hint != nil {
			h, ok = tc.hint(l)
		}
		if !ok {
			return BlockTrips{Kind: TripUnbounded, Reason: tr.Reason, Loop: l}
		}
		count, kind = h, TripHinted
	}
	return BlockTrips{
		Visits: satMul(parent.Visits, count),
		Kind:   parent.Kind.worse(kind),
	}
}

func satAdd(a, b int64) int64 {
	if a > tripSat-b {
		return tripSat
	}
	return a + b
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > tripSat/b {
		return tripSat
	}
	return a * b
}
