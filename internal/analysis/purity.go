package analysis

import (
	"fmt"

	"dae/internal/ir"
)

// ptrClass is the escape lattice the purity verifier runs on: where a
// pointer-typed value may point.
//
//	    mixed (⊤: may point anywhere)
//	    /   \
//	local   external
//	    \   /
//	  unknown (⊥: no evidence yet / cyclic)
type ptrClass uint8

const (
	ptrUnknown  ptrClass = iota
	ptrLocal             // derived from an alloca: task-local, invisible to the caller
	ptrExternal          // derived from a parameter: caller-visible memory
	ptrMixed             // join of incompatible classes, or underivable
)

func (c ptrClass) String() string {
	switch c {
	case ptrLocal:
		return "local"
	case ptrExternal:
		return "external"
	case ptrMixed:
		return "mixed"
	}
	return "unknown"
}

// joinClass is the lattice join; unknown is the identity.
func joinClass(a, b ptrClass) ptrClass {
	switch {
	case a == ptrUnknown:
		return b
	case b == ptrUnknown:
		return a
	case a == b:
		return a
	default:
		return ptrMixed
	}
}

// classifier memoizes pointer classification over use-def chains.
type classifier struct {
	memo map[ir.Value]ptrClass
}

// classify walks the use-def chain of a pointer value down to its roots.
// Cyclic chains (loop-carried pointer phis) contribute ⊥ on the back edge,
// which the join absorbs; a phi whose only inputs are the cycle itself stays
// unknown and is reported as unprovable by the caller.
func (c *classifier) classify(v ir.Value) ptrClass {
	if got, ok := c.memo[v]; ok {
		return got
	}
	c.memo[v] = ptrUnknown // recursion guard
	var r ptrClass
	switch x := v.(type) {
	case *ir.Alloca:
		r = ptrLocal
	case *ir.Param:
		r = ptrExternal
	case *ir.GEP:
		r = c.classify(x.Base)
	case *ir.Phi:
		r = ptrUnknown
		for _, in := range x.In {
			r = joinClass(r, c.classify(in.Val))
		}
	case *ir.Select:
		r = joinClass(c.classify(x.X), c.classify(x.Y))
	default:
		r = ptrMixed
	}
	c.memo[v] = r
	return r
}

// baseName names the memory a pointer is derived from, for diagnostics.
func baseName(v ir.Value) string {
	for {
		switch x := v.(type) {
		case *ir.GEP:
			v = x.Base
		case *ir.Param:
			return "parameter " + x.Nam
		case *ir.Alloca:
			return "local " + x.Var
		default:
			return x.Ref()
		}
	}
}

// VerifyAccessPurity proves that f — a generated access phase — performs no
// stores to external (non-alloca) memory and makes no calls, i.e. that its
// only observable effects are prefetches and loop control. Each violation is
// one SevError diagnostic carrying the TaskC position of the offending
// instruction. An empty result is the proof of purity.
//
// Stores to provably task-local memory (alloca-rooted) are allowed: they
// model registers and spill slots, and the interpreter gives them no memory
// events. A store whose target cannot be classified is conservatively
// rejected — the verifier never errs on the side of admitting an effect.
func VerifyAccessPurity(f *ir.Func) []Diagnostic {
	cl := &classifier{memo: make(map[ir.Value]ptrClass)}
	var diags []Diagnostic
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch x := in.(type) {
			case *ir.Store:
				switch cl.classify(x.Ptr) {
				case ptrLocal:
					// task-local: no observable effect
				case ptrExternal:
					diags = append(diags, Diagnostic{
						Pass: "purity", Sev: SevError, Task: f.Name, Pos: in.Pos(),
						Msg: fmt.Sprintf("access phase stores to external memory (%s)", baseName(x.Ptr)),
					})
				default:
					diags = append(diags, Diagnostic{
						Pass: "purity", Sev: SevError, Task: f.Name, Pos: in.Pos(),
						Msg: fmt.Sprintf("access phase stores to statically unresolved memory (%s)", baseName(x.Ptr)),
					})
				}
			case *ir.Call:
				diags = append(diags, Diagnostic{
					Pass: "purity", Sev: SevError, Task: f.Name, Pos: in.Pos(),
					Msg: fmt.Sprintf("access phase calls @%s, which may have side effects", x.Callee.Name),
				})
			}
		}
	}
	return diags
}
