package analysis_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"dae"
	"dae/internal/analysis"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden byte-compares got against testdata/<name>.golden.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func compileFixture(t *testing.T, name string) *dae.Module {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name+".tc"))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := dae.Compile(string(data), name)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	return mod
}

func fixtureOpts(hints map[string]int64) dae.Options {
	opts := dae.DefaultOptions()
	opts.ParamHints = hints
	if hints == nil {
		opts.HullTest = false
	}
	return opts
}

// analysisReport renders the contract checker's verdicts for every task of a
// compiled module: generation strategy, purity verdict over the access
// version, the coverage summary, and every diagnostic in rendered form.
func analysisReport(results map[string]*dae.Result, env map[string]int64) string {
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		r := results[n]
		fmt.Fprintf(&sb, "task %s: strategy=%s\n", n, r.Strategy)
		if r.Access == nil {
			fmt.Fprintf(&sb, "  no access version: %s\n", r.Reason)
			continue
		}
		diags := analysis.VerifyAccessPurity(r.Access)
		if analysis.HasErrors(diags) {
			fmt.Fprintf(&sb, "  purity: FAIL\n%s", indent(analysis.Format(diags)))
		} else {
			fmt.Fprintf(&sb, "  purity: PASS\n")
		}
		cov := analysis.StaticCoverage(r.Task, r.Access, env, 64, 0)
		fmt.Fprintf(&sb, "  %s\n", cov)
		if len(cov.Notes) > 0 {
			fmt.Fprint(&sb, indent(analysis.Format(cov.Notes)))
		}
	}
	return sb.String()
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n") + "\n"
}

func TestGoldenAffineStencil(t *testing.T) {
	mod := compileFixture(t, "affine-stencil")
	hints := map[string]int64{"N": 64, "Block": 8, "Ax": 0, "Ay": 0, "Dx": 32, "Dy": 32}
	results, err := dae.GenerateAccess(mod, fixtureOpts(hints))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "affine-stencil", analysisReport(results, hints))
}

func TestGoldenPointerChase(t *testing.T) {
	mod := compileFixture(t, "pointer-chase")
	results, err := dae.GenerateAccess(mod, fixtureOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	hints := map[string]int64{"n": 64, "one": 1, "start": 0, "steps": 16}
	checkGolden(t, "pointer-chase", analysisReport(results, hints))
}

// TestGoldenRaced schedules two instances of the raced fixture with
// overlapping index ranges in one batch: the detector must produce exactly
// one positioned write-write diagnostic for the pair.
func TestGoldenRaced(t *testing.T) {
	mod := compileFixture(t, "raced")
	// The affine machinery works on optimized (canonical) IR; GenerateAccess
	// optimizes the module as a side effect.
	if _, err := dae.GenerateAccess(mod, fixtureOpts(nil)); err != nil {
		t.Fatal(err)
	}
	fn := mod.Func("scale")
	if fn == nil {
		t.Fatal("no task scale")
	}
	shared := "array-A"
	batch := []analysis.TaskInstance{
		{
			Label: "scale#0", Fn: fn,
			Ints:   map[string]int64{"n": 64, "lo": 0, "hi": 32},
			Arrays: map[string]analysis.ArrayID{"A": shared},
		},
		{
			Label: "scale#1", Fn: fn,
			Ints:   map[string]int64{"n": 64, "lo": 16, "hi": 48},
			Arrays: map[string]analysis.ArrayID{"A": shared},
		},
	}
	diags := analysis.CheckBatch(batch)
	if got := analysis.CountSev(diags, analysis.SevError); got != 1 {
		t.Errorf("want exactly 1 race diagnostic, got %d", got)
	}
	for _, d := range diags {
		if d.Sev == analysis.SevError && !d.Pos.IsValid() {
			t.Errorf("race diagnostic missing source position: %s", d)
		}
	}
	checkGolden(t, "raced", analysis.Format(diags))

	// Disjoint ranges on the same array, and identical ranges on different
	// arrays, must both verify as independent.
	batch[1].Ints = map[string]int64{"n": 64, "lo": 32, "hi": 64}
	if ds := analysis.CheckBatch(batch); len(ds) != 0 {
		t.Errorf("disjoint ranges flagged: %v", ds)
	}
	batch[1].Ints = map[string]int64{"n": 64, "lo": 0, "hi": 32}
	batch[1].Arrays = map[string]analysis.ArrayID{"A": "array-B"}
	if ds := analysis.CheckBatch(batch); len(ds) != 0 {
		t.Errorf("distinct arrays flagged: %v", ds)
	}
}

// TestGoldenImpureAccess runs the purity verifier over a function that
// retains an external store — the shape of a buggy access phase (access
// versions are slices of the task, so a retained store looks exactly like
// this). The verifier must produce one positioned diagnostic.
func TestGoldenImpureAccess(t *testing.T) {
	mod := compileFixture(t, "raced")
	if _, err := dae.GenerateAccess(mod, fixtureOpts(nil)); err != nil {
		t.Fatal(err)
	}
	fn := mod.Func("scale")
	if fn == nil {
		t.Fatal("no task scale")
	}
	diags := analysis.VerifyAccessPurity(fn)
	if got := analysis.CountSev(diags, analysis.SevError); got != 1 {
		t.Errorf("want exactly 1 purity diagnostic, got %d: %v", got, diags)
	}
	for _, d := range diags {
		if !d.Pos.IsValid() {
			t.Errorf("purity diagnostic missing source position: %s", d)
		}
	}
	checkGolden(t, "impure", analysis.Format(diags))
}
