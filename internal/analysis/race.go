package analysis

import (
	"fmt"
	"sort"

	"dae/internal/ir"
	"dae/internal/poly"
)

// ArrayID identifies a concrete array argument; any comparable value works.
// The runtime adapter uses the *interp.Seg of the argument, so two
// invocations conflict only when they were handed the same allocation.
type ArrayID any

// TaskInstance is one task invocation of a parallel batch, with its concrete
// arguments split into the integer environment the affine machinery
// instantiates subscripts with, and the array identities overlap is decided
// on.
type TaskInstance struct {
	// Label names the invocation in diagnostics (e.g. "lublock#3").
	Label string
	// Fn is the execute-phase function.
	Fn *ir.Func
	// Ints maps integer parameter names to the invocation's values.
	Ints map[string]int64
	// Arrays maps array parameter names to the identity of the argument.
	Arrays map[string]ArrayID
}

// MaxRacePairs caps the number of instance pairs CheckBatch examines per
// batch; beyond it the batch is reported as partially checked.
const MaxRacePairs = 20000

// CheckBatch intersects the affine read/write sets of every pair of task
// instances the rt scheduler would run concurrently in one batch, flagging
// write-write and read-write overlaps on shared arrays. Emptiness of each
// pairwise intersection is decided by Fourier–Motzkin elimination over the
// combined trip spaces (poly.Feasible), which is exact over the rationals —
// a reported overlap on an integer-affine region is real up to the integer
// relaxation, and an empty intersection is a proof of independence.
//
// Instances whose access sets are not fully affine (data-dependent
// subscripts, unrecognized loops) are skipped with one SevInfo diagnostic
// per task name: the polyhedral machinery cannot bound their footprint, and
// guessing would produce unfounded race reports.
func CheckBatch(tasks []TaskInstance) []Diagnostic {
	var diags []Diagnostic
	type inst struct {
		fa *funcAccesses
		ok bool
	}
	infos := make([]inst, len(tasks))
	skipped := make(map[string]bool)
	byFunc := make(map[*ir.Func]map[string]*funcAccesses)
	for i, ti := range tasks {
		if ti.Fn == nil {
			continue
		}
		// Memoize extraction per (function, int-env): batches repeat the same
		// task with varying array offsets far more often than varying sizes.
		key := envKey(ti.Ints)
		perEnv := byFunc[ti.Fn]
		if perEnv == nil {
			perEnv = make(map[string]*funcAccesses)
			byFunc[ti.Fn] = perEnv
		}
		fa := perEnv[key]
		if fa == nil {
			fa = extractAccesses(ti.Fn, ti.Ints)
			perEnv[key] = fa
		}
		infos[i] = inst{fa: fa, ok: fa.exact()}
		if !infos[i].ok && !skipped[ti.Fn.Name] {
			skipped[ti.Fn.Name] = true
			diags = append(diags, Diagnostic{
				Pass: "race", Sev: SevInfo, Task: ti.Fn.Name,
				Msg: "non-affine access set; overlap analysis skipped for this task",
			})
		}
	}
	pairs := 0
	caps := &capTracker{}
	for i := range tasks {
		if tasks[i].Fn == nil || !infos[i].ok {
			continue
		}
		for j := i + 1; j < len(tasks); j++ {
			if tasks[j].Fn == nil || !infos[j].ok {
				continue
			}
			pairs++
			if pairs > MaxRacePairs {
				diags = append(diags, Diagnostic{
					Pass: "race", Sev: SevInfo, Task: tasks[i].Fn.Name,
					Msg: fmt.Sprintf("batch exceeds %d instance pairs; remaining pairs unchecked", MaxRacePairs),
				})
				return append(diags, caps.diags...)
			}
			if d, found := conflict(&tasks[i], infos[i].fa, &tasks[j], infos[j].fa, caps); found {
				diags = append(diags, d)
			}
		}
	}
	return append(diags, caps.diags...)
}

// capTracker collects the integer-confirmation skips of one batch: when a
// rational overlap cannot be confirmed over the integers because the trip
// space exceeds RaceEnumPoints, the conservative verdict must not be silent.
// Notes are deduplicated per (task, array) — one batch repeats the same
// access pattern across many instances.
type capTracker struct {
	seen  map[string]bool
	diags []Diagnostic
}

func (c *capTracker) note(task, array string, pos ir.Pos) {
	key := task + "/" + array
	if c.seen[key] {
		return
	}
	if c.seen == nil {
		c.seen = make(map[string]bool)
	}
	c.seen[key] = true
	c.diags = append(c.diags, Diagnostic{
		Pass: "race", Sev: SevInfo, Task: task, Pos: pos,
		Msg: fmt.Sprintf("array %s: trip space exceeds %d points; integer confirmation skipped, rational verdict stands",
			array, RaceEnumPoints),
	})
}

// conflict finds the first overlapping access pair between two instances:
// write-write first (the more severe report), then each direction of
// read-write. At most one diagnostic is produced per instance pair, so one
// racy loop nest yields one report instead of one per subscript pair.
func conflict(a *TaskInstance, fa *funcAccesses, b *TaskInstance, fb *funcAccesses, caps *capTracker) (Diagnostic, bool) {
	if d, ok := overlapAny(a, fa.writes, b, fb.writes, "write-write", caps); ok {
		return d, true
	}
	if d, ok := overlapAny(a, fa.writes, b, fb.reads, "write-read", caps); ok {
		return d, true
	}
	if d, ok := overlapAny(a, fa.reads, b, fb.writes, "read-write", caps); ok {
		return d, true
	}
	return Diagnostic{}, false
}

func overlapAny(a *TaskInstance, as []*memAccess, b *TaskInstance, bs []*memAccess, kind string, caps *capTracker) (Diagnostic, bool) {
	for _, ma := range as {
		ida, ok := a.Arrays[ma.param.Nam]
		if !ok || ida == nil {
			continue
		}
		for _, mb := range bs {
			idb, ok := b.Arrays[mb.param.Nam]
			if !ok || idb == nil || ida != idb {
				continue
			}
			hit, capped := overlaps(ma, mb)
			if capped {
				caps.note(a.Fn.Name, ma.param.Nam, ma.in.Pos())
			}
			if hit {
				return Diagnostic{
					Pass: "race", Sev: SevError, Task: a.Fn.Name,
					Pos: ma.in.Pos(), RelPos: mb.in.Pos(),
					Msg: fmt.Sprintf("%s overlap on array %s between %s and %s",
						kind, ma.param.Nam, a.Label, b.Label),
				}, true
			}
		}
	}
	return Diagnostic{}, false
}

// RaceEnumPoints caps the lattice-point enumeration used to confirm a
// rational overlap over the integers.
const RaceEnumPoints = 1 << 20

// overlaps decides whether two accesses can touch the same element. The
// Fourier–Motzkin emptiness test over { (t^a, t^b) : t^a ∈ dom_a, t^b ∈
// dom_b, flat_a(t^a) = flat_b(t^b) } runs first: it is exact over ℚ, so an
// empty intersection is a proof of independence. A ℚ-feasible intersection
// can still be integer-empty (e.g. row-major tiles in the same block row:
// N·Δr = jj_b − jj_a has rational but no integral solutions within the trip
// bounds), so it is confirmed by intersecting the concrete element sets —
// the environment is fully instantiated, making enumeration exact. Only when
// a domain exceeds RaceEnumPoints does the rational verdict stand
// unconfirmed, erring toward reporting; capped is set so the caller can say
// which array the confirmation was skipped for.
func overlaps(a, b *memAccess) (hit, capped bool) {
	if !rationalOverlap(a, b) {
		return false, false
	}
	sa, oka := a.elems(RaceEnumPoints)
	sb, okb := b.elems(RaceEnumPoints)
	if !oka || !okb {
		return true, true
	}
	if len(sb) < len(sa) {
		sa, sb = sb, sa
	}
	for e := range sa {
		if sb[e] {
			return true, false
		}
	}
	return false, false
}

func rationalOverlap(a, b *memAccess) bool {
	na, nb := a.sp.depth(), b.sp.depth()
	p := poly.NewPolyhedron(na+nb, 0)
	for _, c := range a.sp.dom.Cons {
		row := make([]int64, na+nb+1)
		copy(row[:na], c.V[:na])
		row[na+nb] = c.V[na]
		p.AddConstraint(row)
	}
	for _, c := range b.sp.dom.Cons {
		row := make([]int64, na+nb+1)
		copy(row[na:na+nb], c.V[:nb])
		row[na+nb] = c.V[nb]
		p.AddConstraint(row)
	}
	eq := make([]int64, na+nb+1)
	copy(eq[:na], a.flat.c)
	for i, v := range b.flat.c {
		eq[na+i] = -v
	}
	eq[na+nb] = a.flat.k - b.flat.k
	p.AddEquality(eq)
	return p.Feasible(nil)
}

// envKey canonicalizes an integer environment for memoization.
func envKey(m map[string]int64) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("%s=%d;", k, m[k])
	}
	return s
}
