package analysis

import (
	"strings"
	"testing"

	"dae/internal/interp"
	"dae/internal/ir"
	"dae/internal/lower"
	"dae/internal/passes"
)

// compileOpt lowers TaskC source and optimizes every function into the
// canonical form the affine machinery expects.
func compileOpt(t *testing.T, src string) *ir.Module {
	t.Helper()
	mod, err := lower.Compile(src, "test")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if _, err := passes.OptimizeModule(mod); err != nil {
		t.Fatalf("optimize: %v", err)
	}
	return mod
}

func TestPurityFlagsExternalStore(t *testing.T) {
	mod := compileOpt(t, `
task f(float A[n], int n) {
	for (int i = 0; i < n; i++) {
		A[i] = 1.0;
	}
}
`)
	diags := VerifyAccessPurity(mod.Func("f"))
	if CountSev(diags, SevError) != 1 {
		t.Fatalf("want 1 error, got %v", diags)
	}
	d := diags[0]
	if !strings.Contains(d.Msg, "stores to external memory") {
		t.Errorf("unexpected message: %s", d.Msg)
	}
	if !d.Pos.IsValid() {
		t.Errorf("diagnostic has no source position: %s", d)
	}
}

func TestPurityAllowsLocalStoresAndPrefetches(t *testing.T) {
	mod := compileOpt(t, `
void f(float A[n], int n) {
	float s = 0;
	for (int i = 0; i < n; i++) {
		prefetch A[i];
		s += A[i];
	}
}
`)
	if diags := VerifyAccessPurity(mod.Func("f")); len(diags) != 0 {
		t.Fatalf("pure function flagged: %v", diags)
	}
}

func TestPurityFlagsCalls(t *testing.T) {
	// Unoptimized on purpose: dead-code elimination would delete the call to
	// the empty helper, and the verifier must work on any well-formed IR.
	mod, err := lower.Compile(`
void g(int n) {
}
void f(int n) {
	g(n);
}
`, "test")
	if err != nil {
		t.Fatal(err)
	}
	diags := VerifyAccessPurity(mod.Func("f"))
	if CountSev(diags, SevError) != 1 || !strings.Contains(diags[0].Msg, "calls @g") {
		t.Fatalf("want one call diagnostic, got %v", diags)
	}
}

func TestExtractAccessesAffineLoop(t *testing.T) {
	mod := compileOpt(t, `
task f(float A[n], float B[n], int n, int lo, int hi) {
	for (int i = lo; i < hi; i++) {
		A[i] = B[i] + 1.0;
	}
}
`)
	env := map[string]int64{"n": 64, "lo": 8, "hi": 24}
	fa := extractAccesses(mod.Func("f"), env)
	if !fa.exact() {
		t.Fatalf("affine loop classified vague: %+v", fa)
	}
	if len(fa.reads) != 1 || len(fa.writes) != 1 {
		t.Fatalf("want 1 read + 1 write, got %d/%d", len(fa.reads), len(fa.writes))
	}
	// The write covers A[8..24): 16 lattice points, flat indices 8..23.
	set, ok := fa.writes[0].elems(1 << 16)
	if !ok {
		t.Fatal("enumeration hit the cap")
	}
	if len(set) != 16 || !set[8] || !set[23] || set[7] || set[24] {
		t.Fatalf("wrong element set (len %d): %v", len(set), set)
	}
}

func TestExtractAccessesNonUnitStride(t *testing.T) {
	// A blocked loop (stride B) must stay exact in t-space.
	mod := compileOpt(t, `
task f(float A[n], int n) {
	for (int i = 0; i < n; i += 8) {
		A[i] = 0.0;
	}
}
`)
	fa := extractAccesses(mod.Func("f"), map[string]int64{"n": 32})
	if !fa.exact() || len(fa.writes) != 1 {
		t.Fatalf("blocked loop not modeled: %+v", fa)
	}
	set, _ := fa.writes[0].elems(1 << 16)
	want := map[int64]bool{0: true, 8: true, 16: true, 24: true}
	if len(set) != len(want) {
		t.Fatalf("want %v, got %v", want, set)
	}
	for k := range want {
		if !set[k] {
			t.Fatalf("missing element %d in %v", k, set)
		}
	}
}

func TestStaticCoverageHalfPrefetched(t *testing.T) {
	mod := compileOpt(t, `
task f(float A[n], float Out[one], int n, int one) {
	float s = 0;
	for (int i = 0; i < n; i++) {
		s += A[i];
	}
	Out[0] = s;
}
void f_access(float A[n], float Out[one], int n, int one) {
	for (int i = 0; i < n; i += 2) {
		prefetch A[i];
	}
}
`)
	// Full-line strides: with lineBytes == wordSize every element is its own
	// line, so prefetching every other element covers exactly half.
	cov := StaticCoverage(mod.Func("f"), mod.Func("f_access"), map[string]int64{"n": 16, "one": 1}, 8, 0)
	if !cov.Exact {
		t.Fatalf("expected exact coverage, notes: %v", cov.Notes)
	}
	// 16 lines of A read; Out[0] is written, not read, so it stays out of
	// the read set. Half of A's lines are prefetched.
	if cov.ReadLines != 16 || cov.CoveredLines != 8 {
		t.Fatalf("want 8/16 lines, got %d/%d", cov.CoveredLines, cov.ReadLines)
	}
	if f := cov.Fraction(); f != 0.5 {
		t.Fatalf("fraction %v, want 0.5", f)
	}
}

func TestDynamicCoverageMatchesStatic(t *testing.T) {
	mod := compileOpt(t, `
task f(float A[n], float Out[one], int n, int one) {
	float s = 0;
	for (int i = 0; i < n; i++) {
		s += A[i];
	}
	Out[0] = s;
}
void f_access(float A[n], float Out[one], int n, int one) {
	for (int i = 0; i < n; i += 2) {
		prefetch A[i];
	}
}
`)
	h := interp.NewHeap()
	seg := h.AllocFloat("A", 16)
	out := h.AllocFloat("Out", 1)
	args := []interp.Value{interp.Ptr(seg), interp.Ptr(out), interp.Int(16), interp.Int(1)}
	read, covered, err := DynamicCoverage(mod, mod.Func("f"), mod.Func("f_access"), h, args, 8)
	if err != nil {
		t.Fatal(err)
	}
	if read != 16 || covered != 8 {
		t.Fatalf("dynamic %d/%d, want 8/16", covered, read)
	}
}

// TestRaceIntegerConfirmation is the regression test for the rational-
// relaxation false positive: two B×B tiles in the same block row of a
// row-major N×N array satisfy N·Δr = Δcol over ℚ but not over ℤ, so the
// detector must NOT flag them; a genuinely overlapping pair must be flagged
// with positioned diagnostics.
func TestRaceIntegerConfirmation(t *testing.T) {
	mod := compileOpt(t, `
task tile(float A[N][N], int N, int B, int row, int col) {
	for (int r = 0; r < B; r++) {
		for (int c = 0; c < B; c++) {
			A[row+r][col+c] = 0.0;
		}
	}
}
`)
	fn := mod.Func("tile")
	inst := func(label string, row, col int64) TaskInstance {
		return TaskInstance{
			Label: label, Fn: fn,
			Ints:   map[string]int64{"N": 64, "B": 8, "row": row, "col": col},
			Arrays: map[string]ArrayID{"A": "shared-A"},
		}
	}

	// Same block row, adjacent columns: rationally feasible, integrally empty.
	if ds := CheckBatch([]TaskInstance{inst("t0", 0, 0), inst("t1", 0, 8)}); len(ds) != 0 {
		t.Fatalf("disjoint same-row tiles flagged: %v", ds)
	}
	// Disjoint block rows.
	if ds := CheckBatch([]TaskInstance{inst("t0", 0, 0), inst("t1", 8, 0)}); len(ds) != 0 {
		t.Fatalf("disjoint rows flagged: %v", ds)
	}
	// Half-overlapping tiles race.
	ds := CheckBatch([]TaskInstance{inst("t0", 0, 0), inst("t1", 0, 4)})
	if CountSev(ds, SevError) != 1 {
		t.Fatalf("overlapping tiles not flagged exactly once: %v", ds)
	}
	if !ds[0].Pos.IsValid() || !strings.Contains(ds[0].Msg, "write-write") {
		t.Fatalf("bad diagnostic: %s", ds[0])
	}
}

func TestRaceSkipsNonAffineWithNote(t *testing.T) {
	mod := compileOpt(t, `
task gather(float A[n], int Idx[n], int n) {
	for (int i = 0; i < n; i++) {
		A[Idx[i]] = 0.0;
	}
}
`)
	fn := mod.Func("gather")
	shared := "A"
	batch := []TaskInstance{
		{Label: "g0", Fn: fn, Ints: map[string]int64{"n": 8}, Arrays: map[string]ArrayID{"A": shared}},
		{Label: "g1", Fn: fn, Ints: map[string]int64{"n": 8}, Arrays: map[string]ArrayID{"A": shared}},
	}
	ds := CheckBatch(batch)
	if CountSev(ds, SevError) != 0 {
		t.Fatalf("non-affine task produced race errors: %v", ds)
	}
	if CountSev(ds, SevInfo) != 1 {
		t.Fatalf("want one skip note, got %v", ds)
	}
}

func TestEvalIntArithmetic(t *testing.T) {
	env := map[string]int64{}
	two := &ir.ConstInt{V: 2}
	seven := &ir.ConstInt{V: 7}
	cases := []struct {
		op   ir.BinOp
		want int64
	}{
		{ir.IAdd, 9}, {ir.ISub, -5}, {ir.IMul, 14}, {ir.IDiv, 0},
		{ir.IRem, 2}, {ir.IMin, 2}, {ir.IMax, 7}, {ir.IShl, 256},
	}
	for _, tc := range cases {
		got, ok := evalInt(ir.NewBin(tc.op, two, seven), env)
		if !ok || got != tc.want {
			t.Errorf("%s(2,7) = %d,%v want %d", tc.op, got, ok, tc.want)
		}
	}
	if _, ok := evalInt(ir.NewBin(ir.IDiv, two, &ir.ConstInt{V: 0}), env); ok {
		t.Error("division by zero evaluated")
	}
}

func TestDiagnosticRendering(t *testing.T) {
	d := Diagnostic{
		Pass: "race", Sev: SevError, Task: "t",
		Pos: ir.Pos{Line: 3, Col: 7}, RelPos: ir.Pos{Line: 5, Col: 2},
		Msg: "overlap",
	}
	want := "t:3:7: error: [race] overlap (conflicting access at 5:2)"
	if got := d.String(); got != want {
		t.Errorf("got %q want %q", got, want)
	}
	ds := []Diagnostic{
		{Task: "b", Pos: ir.Pos{Line: 2}, Sev: SevInfo, Pass: "p", Msg: "later"},
		{Task: "a", Pos: ir.Pos{Line: 9}, Sev: SevError, Pass: "p", Msg: "earlier task"},
	}
	out := Format(ds)
	if !strings.Contains(out, "a:9") || strings.Index(out, "a:9") > strings.Index(out, "b:2") {
		t.Errorf("not sorted by task: %q", out)
	}
	if !HasErrors(ds) || CountSev(ds, SevInfo) != 1 {
		t.Error("severity helpers broken")
	}
}

// TestRaceEnumCapNotesSkippedArray: when the trip space is too large to
// confirm a rational overlap over the integers, the conservative verdict must
// come with an info note naming the skipped array — once per (task, array),
// not once per instance pair.
func TestRaceEnumCapNotesSkippedArray(t *testing.T) {
	mod := compileOpt(t, `
task big(float A[n], int n) {
	for (int i = 0; i < n; i++) {
		A[i] = A[i] + 1.0;
	}
}
`)
	fn := mod.Func("big")
	inst := func(label string) TaskInstance {
		return TaskInstance{
			Label: label, Fn: fn,
			// 2^21 iterations: past RaceEnumPoints, so elems() bails.
			Ints:   map[string]int64{"n": int64(2 * RaceEnumPoints)},
			Arrays: map[string]ArrayID{"A": "shared-A"},
		}
	}
	ds := CheckBatch([]TaskInstance{inst("b0"), inst("b1"), inst("b2")})
	if CountSev(ds, SevError) == 0 {
		t.Fatalf("capped overlap must still err toward reporting: %v", ds)
	}
	notes := 0
	for _, d := range ds {
		if d.Sev != SevInfo {
			continue
		}
		notes++
		if !strings.Contains(d.Msg, "array A") || !strings.Contains(d.Msg, "integer confirmation skipped") {
			t.Errorf("cap note does not name the array: %s", d)
		}
	}
	if notes != 1 {
		t.Fatalf("want exactly one deduplicated cap note, got %d: %v", notes, ds)
	}
}
