package analysis

import (
	"testing"

	"dae/internal/ir"
)

// headerAndBody finds the given function's outermost loop header plus one
// body block that is not a header (nil when the body is the header itself).
func loopBlocks(t *testing.T, f *ir.Func, trips map[*ir.Block]BlockTrips) (header, body *ir.Block) {
	t.Helper()
	li := ir.FindLoops(f, ir.NewDomTree(f))
	if len(li.Top) == 0 {
		t.Fatalf("no loops in %s", f.Name)
	}
	l := li.Top[0]
	for len(l.Children) > 0 {
		l = l.Children[0]
	}
	header = l.Header
	for _, b := range f.Blocks {
		if l.Contains(b) && b != l.Header {
			body = b
			break
		}
	}
	return header, body
}

func TestTripCountsRectangular(t *testing.T) {
	mod := compileOpt(t, `
task k(float A[n][n], int n) {
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < n; j++) {
			A[i][j] = 0.0;
		}
	}
}`)
	f := mod.Func("k")
	trips := TripCounts(f, map[string]int64{"n": 8}, 0, nil)
	header, body := loopBlocks(t, f, trips)
	if body == nil {
		t.Fatal("no inner body block")
	}
	bt := trips[body]
	if bt.Kind != TripExact || bt.Visits != 64 {
		t.Fatalf("inner body = %+v, want exact 64", bt)
	}
	// Inner header: 64 body visits + 8 entries (one failing check each).
	ht := trips[header]
	if ht.Kind != TripExact || ht.Visits != 64+8 {
		t.Fatalf("inner header = %+v, want exact 72", ht)
	}
	if et := trips[f.Entry()]; et.Visits != 1 || et.Kind != TripExact {
		t.Fatalf("entry = %+v, want exact 1", et)
	}
}

func TestTripCountsTriangular(t *testing.T) {
	mod := compileOpt(t, `
task k(float A[N][N], int N) {
	for (int i = 0; i < N; i++) {
		for (int j = i + 1; j < N; j++) {
			A[i][j] = 0.0;
		}
	}
}`)
	f := mod.Func("k")
	trips := TripCounts(f, map[string]int64{"N": 8}, 0, nil)
	_, body := loopBlocks(t, f, trips)
	if body == nil {
		t.Fatal("no inner body block")
	}
	// Exact lattice count: sum_{i=0}^{7} (7-i) = 28, not the 8*7=56 a
	// per-loop product bound would give.
	if bt := trips[body]; bt.Kind != TripExact || bt.Visits != 28 {
		t.Fatalf("inner body = %+v, want exact 28", bt)
	}
}

func TestTripCountsHintFallback(t *testing.T) {
	mod := compileOpt(t, `
task k(float A[n], int n) {
	int i = 0;
	while (A[i & 7] < 10.0) {
		A[i & 7] = A[i & 7] + 1.0;
		i = i + 1;
	}
}`)
	f := mod.Func("k")
	env := map[string]int64{"n": 8}

	// Without a hint: unbounded, with a reason and the offending loop.
	trips := TripCounts(f, env, 0, nil)
	var unb *BlockTrips
	for _, bt := range trips {
		if bt.Kind == TripUnbounded {
			bt := bt
			unb = &bt
			break
		}
	}
	if unb == nil {
		t.Skip("front end bounded the while loop")
	}
	if unb.Reason == "" || unb.Loop == nil {
		t.Fatalf("unbounded verdict lacks reason/loop: %+v", unb)
	}

	// With a hint: every block gets a finite bound of TripHinted provenance.
	trips = TripCounts(f, env, 0, func(l *ir.Loop) (int64, bool) { return 100, true })
	for b, bt := range trips {
		if bt.Kind == TripUnbounded {
			t.Fatalf("block %s still unbounded under hint: %s", b.Name, bt.Reason)
		}
		if lt := trips[b]; lt.Loop != nil {
			t.Fatalf("bounded block records a culprit loop: %+v", lt)
		}
	}
	_, body := loopBlocks(t, f, trips)
	if body == nil {
		t.Skip("single-block loop body")
	}
	if bt := trips[body]; bt.Kind != TripHinted || bt.Visits != 100 {
		t.Fatalf("hinted body = %+v, want profile 100", bt)
	}
}

func TestTripKindString(t *testing.T) {
	for k, want := range map[TripKind]string{
		TripExact: "exact", TripStatic: "static", TripHinted: "profile", TripUnbounded: "unbounded",
	} {
		if k.String() != want {
			t.Errorf("TripKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
