package passes

import "dae/internal/ir"

// DeleteDeadLoops removes loops that compute nothing observable: no stores,
// prefetches, or calls inside, and no value defined in the loop used outside
// it. Such loops appear after DCE has gutted a loop body (e.g. when
// profile-guided refinement prunes every prefetch of an access-version
// loop); deleting them saves the spin entirely. Conservative conditions:
// the loop must have a preheader and a single exit block without phis.
// Like LLVM's mustprogress-based deletion, it assumes loops terminate (the
// front end's counted loops always do; a hypothetical infinite loop would be
// deleted rather than preserved as a hang). It returns the number of deleted
// loops.
func DeleteDeadLoops(f *ir.Func) int {
	deleted := 0
	for {
		f.RemoveUnreachable()
		dt := ir.NewDomTree(f)
		li := ir.FindLoops(f, dt)
		removed := false
		for _, l := range li.AllLoops() {
			if tryDeleteLoop(f, l) {
				deleted++
				removed = true
				break // CFG changed; recompute analyses
			}
		}
		if !removed {
			return deleted
		}
	}
}

func tryDeleteLoop(f *ir.Func, l *ir.Loop) bool {
	pre := l.Preheader()
	if pre == nil {
		return false
	}
	exits := l.Exits()
	if len(exits) != 1 {
		return false
	}
	exit := exits[0]
	if len(exit.Phis()) != 0 {
		return false
	}
	// The exit must be reached only from this loop; otherwise redirecting
	// the preheader is still fine, but other preds keep it alive — that is
	// acceptable. What must hold: the loop has no observable effects.
	for _, b := range l.Blocks {
		for _, in := range b.Instrs {
			switch in.(type) {
			case *ir.Store, *ir.Prefetch, *ir.Call:
				return false
			}
		}
	}
	// No loop-defined value may be used outside the loop.
	inLoop := make(map[ir.Value]bool)
	for _, b := range l.Blocks {
		for _, in := range b.Instrs {
			inLoop[in] = true
		}
	}
	escape := false
	f.Instrs(func(in ir.Instr) {
		if escape || l.Contains(in.Parent()) {
			return
		}
		for _, op := range in.Operands() {
			if inLoop[op] {
				escape = true
			}
		}
	})
	if escape {
		return false
	}

	// Redirect the preheader around the loop.
	term := pre.Term()
	for i, tgt := range term.Targets() {
		if tgt == l.Header {
			term.SetTarget(i, exit)
		}
	}
	f.RemoveUnreachable()
	return true
}
