package passes

import "dae/internal/ir"

// SimplifyCFG performs branch folding, jump threading over empty blocks, and
// straight-line block merging, iterating to a fixpoint. It returns the
// number of transformations applied.
func SimplifyCFG(f *ir.Func) int {
	total := 0
	for {
		n := f.RemoveUnreachable()
		n += foldConstBranches(f)
		n += threadEmptyBlocks(f)
		n += mergeStraightLine(f)
		if n == 0 {
			return total
		}
		total += n
	}
}

// foldConstBranches turns condbr true/false into unconditional branches, and
// condbr with identical targets into a plain branch.
func foldConstBranches(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		cb, ok := b.Term().(*ir.CondBr)
		if !ok {
			continue
		}
		if c, isConst := ir.ConstBoolValue(cb.Cond); isConst {
			taken, dropped := cb.Then, cb.Else
			if !c {
				taken, dropped = cb.Else, cb.Then
			}
			if dropped != taken {
				for _, phi := range dropped.Phis() {
					phi.RemoveIncoming(b)
				}
			}
			b.Remove(cb)
			b.Append(ir.NewBr(taken))
			n++
			continue
		}
		if cb.Then == cb.Else {
			// A block cannot feed two phi edges; drop one.
			b.Remove(cb)
			b.Append(ir.NewBr(cb.Then))
			n++
		}
	}
	return n
}

// threadEmptyBlocks redirects edges that pass through a block containing only
// an unconditional branch, when phi constraints allow.
func threadEmptyBlocks(f *ir.Func) int {
	n := 0
	preds := f.Preds()
	for _, b := range f.Blocks {
		if b == f.Entry() || len(b.Instrs) != 1 {
			continue
		}
		br, ok := b.Term().(*ir.Br)
		if !ok || br.Target == b {
			continue
		}
		target := br.Target
		// If the target has phis, threading requires rewriting incoming
		// edges; only safe when, for every predecessor p of b, the target's
		// phi gains the value that flowed through b, and p is not already a
		// predecessor of target (which would need duplicate edges).
		tPreds := preds[target]
		ok = true
		for _, p := range preds[b] {
			if blockIn(tPreds, p) && len(target.Phis()) > 0 {
				ok = false
				break
			}
		}
		if !ok || len(preds[b]) == 0 {
			continue
		}
		for _, p := range preds[b] {
			t := p.Term()
			for i, tgt := range t.Targets() {
				if tgt == b {
					t.SetTarget(i, target)
				}
			}
			for _, phi := range target.Phis() {
				v := phi.Incoming(b)
				if v != nil {
					phi.AddIncoming(v, p)
				}
			}
		}
		for _, phi := range target.Phis() {
			phi.RemoveIncoming(b)
		}
		f.RemoveBlock(b)
		n++
		// CFG changed; recompute predecessor map.
		preds = f.Preds()
	}
	return n
}

// mergeStraightLine merges b and its unique successor s when s has b as its
// only predecessor.
func mergeStraightLine(f *ir.Func) int {
	n := 0
	preds := f.Preds()
	for _, b := range f.Blocks {
		br, ok := b.Term().(*ir.Br)
		if !ok {
			continue
		}
		s := br.Target
		if s == b || s == f.Entry() || len(preds[s]) != 1 {
			continue
		}
		// Fold s's phis (single predecessor → single incoming value).
		for _, phi := range s.Phis() {
			v := phi.Incoming(b)
			f.ReplaceAllUses(phi, v)
			s.Remove(phi)
		}
		b.Remove(br)
		for _, in := range append([]ir.Instr{}, s.Instrs...) {
			s.Remove(in)
			b.Append(in)
		}
		// Successor phis that referenced s must now reference b.
		for _, succ := range b.Succs() {
			for _, phi := range succ.Phis() {
				for i := range phi.In {
					if phi.In[i].Pred == s {
						phi.In[i].Pred = b
					}
				}
			}
		}
		f.RemoveBlock(s)
		n++
		preds = f.Preds()
	}
	return n
}

func blockIn(s []*ir.Block, b *ir.Block) bool {
	for _, x := range s {
		if x == b {
			return true
		}
	}
	return false
}
