package passes

import (
	"fmt"
	"strings"

	"dae/internal/ir"
)

// CSE performs dominator-scoped common-subexpression elimination on pure
// instructions (arithmetic, comparisons, casts, math intrinsics, selects,
// and address computations). Loads are not candidates (memory may change);
// phis are structural. Commutative operations are normalized so a+b and b+a
// unify. It returns the number of eliminated instructions.
func CSE(f *ir.Func) int {
	f.RemoveUnreachable()
	dt := ir.NewDomTree(f)

	removed := 0
	// Scoped table: walk the dominator tree, adding this block's expressions
	// and removing them on exit.
	var visit func(b *ir.Block, table map[string]ir.Value)
	visit = func(b *ir.Block, table map[string]ir.Value) {
		var added []string
		for _, in := range append([]ir.Instr{}, b.Instrs...) {
			key, ok := exprKey(in)
			if !ok {
				continue
			}
			if prev, dup := table[key]; dup {
				f.ReplaceAllUses(in, prev)
				b.Remove(in)
				removed++
				continue
			}
			table[key] = in
			added = append(added, key)
		}
		for _, c := range dt.Children(b) {
			visit(c, table)
		}
		for _, k := range added {
			delete(table, k)
		}
	}
	if e := f.Entry(); e != nil {
		visit(e, make(map[string]ir.Value))
	}
	return removed
}

// exprKey returns a canonical key for pure instructions, or ok=false when
// the instruction must not be unified.
func exprKey(in ir.Instr) (string, bool) {
	switch x := in.(type) {
	case *ir.Bin:
		a, b := valueKey(x.X), valueKey(x.Y)
		if commutative(x.Op) && b < a {
			a, b = b, a
		}
		return fmt.Sprintf("bin/%d/%s/%s", x.Op, a, b), true
	case *ir.Cmp:
		return fmt.Sprintf("cmp/%d/%s/%s", x.Pred, valueKey(x.X), valueKey(x.Y)), true
	case *ir.Cast:
		return fmt.Sprintf("cast/%d/%s", x.Op, valueKey(x.X)), true
	case *ir.Math:
		return fmt.Sprintf("math/%d/%s", x.Op, valueKey(x.X)), true
	case *ir.Select:
		return fmt.Sprintf("sel/%s/%s/%s", valueKey(x.Cond), valueKey(x.X), valueKey(x.Y)), true
	case *ir.GEP:
		var sb strings.Builder
		fmt.Fprintf(&sb, "gep/%s", valueKey(x.Base))
		for _, d := range x.Dims {
			fmt.Fprintf(&sb, "/d%s", valueKey(d))
		}
		for _, i := range x.Idx {
			fmt.Fprintf(&sb, "/i%s", valueKey(i))
		}
		return sb.String(), true
	}
	return "", false
}

func commutative(op ir.BinOp) bool {
	switch op {
	case ir.IAdd, ir.IMul, ir.IAnd, ir.IOr, ir.IXor, ir.IMin, ir.IMax, ir.FAdd, ir.FMul:
		return true
	}
	return false
}

// valueKey identifies an operand: constants by value, everything else by
// identity.
func valueKey(v ir.Value) string {
	switch c := v.(type) {
	case *ir.ConstInt:
		return fmt.Sprintf("ci%d", c.V)
	case *ir.ConstFloat:
		return fmt.Sprintf("cf%x", c.V)
	case *ir.ConstBool:
		return fmt.Sprintf("cb%v", c.V)
	}
	return fmt.Sprintf("p%p", v)
}
