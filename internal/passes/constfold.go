package passes

import "dae/internal/ir"

// ConstFold folds constant expressions and applies simple algebraic
// identities (x+0, x*1, x*0, single-entry phis, constant selects). It
// returns the number of simplifications performed.
func ConstFold(f *ir.Func) int {
	n := 0
	for {
		changed := 0
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if v := foldInstr(in); v != nil {
					f.ReplaceAllUses(in, v)
					changed++
				}
			}
		}
		if changed == 0 {
			return n
		}
		n += changed
		DCE(f)
	}
}

// foldInstr returns a replacement value for in, or nil.
func foldInstr(in ir.Instr) ir.Value {
	switch x := in.(type) {
	case *ir.Bin:
		return foldBin(x)
	case *ir.Cmp:
		return foldCmp(x)
	case *ir.Cast:
		if c, ok := ir.ConstIntValue(x.X); ok && x.Op == ir.IntToFloat {
			return ir.CF(float64(c))
		}
		if c, ok := ir.ConstFloatValue(x.X); ok && x.Op == ir.FloatToInt {
			return ir.CI(int64(c))
		}
	case *ir.Select:
		if c, ok := ir.ConstBoolValue(x.Cond); ok {
			if c {
				return x.X
			}
			return x.Y
		}
		if x.X == x.Y {
			return x.X
		}
	case *ir.Phi:
		// A phi whose incomings are all the same value (or itself) folds.
		var only ir.Value
		for _, e := range x.In {
			if e.Val == x {
				continue
			}
			if only == nil {
				only = e.Val
				continue
			}
			if e.Val != only && !ir.SameConst(e.Val, only) {
				return nil
			}
		}
		return only
	}
	return nil
}

func foldBin(x *ir.Bin) ir.Value {
	xi, xIsI := ir.ConstIntValue(x.X)
	yi, yIsI := ir.ConstIntValue(x.Y)
	xf, xIsF := ir.ConstFloatValue(x.X)
	yf, yIsF := ir.ConstFloatValue(x.Y)

	if xIsI && yIsI {
		if v, ok := foldIntBin(x.Op, xi, yi); ok {
			return ir.CI(v)
		}
	}
	if xIsF && yIsF {
		if v, ok := foldFloatBin(x.Op, xf, yf); ok {
			return ir.CF(v)
		}
	}

	// Identities.
	switch x.Op {
	case ir.IAdd:
		if yIsI && yi == 0 {
			return x.X
		}
		if xIsI && xi == 0 {
			return x.Y
		}
	case ir.ISub:
		if yIsI && yi == 0 {
			return x.X
		}
	case ir.IMul:
		if yIsI && yi == 1 {
			return x.X
		}
		if xIsI && xi == 1 {
			return x.Y
		}
		if (yIsI && yi == 0) || (xIsI && xi == 0) {
			return ir.CI(0)
		}
	case ir.IDiv:
		if yIsI && yi == 1 {
			return x.X
		}
	case ir.IMin:
		if x.X == x.Y {
			return x.X
		}
		// min(x, max(x, y)) = x (and symmetric forms).
		if m, ok := x.Y.(*ir.Bin); ok && m.Op == ir.IMax && (m.X == x.X || m.Y == x.X) {
			return x.X
		}
		if m, ok := x.X.(*ir.Bin); ok && m.Op == ir.IMax && (m.X == x.Y || m.Y == x.Y) {
			return x.Y
		}
	case ir.IMax:
		if x.X == x.Y {
			return x.X
		}
		// max(x, min(x, y)) = x (and symmetric forms).
		if m, ok := x.Y.(*ir.Bin); ok && m.Op == ir.IMin && (m.X == x.X || m.Y == x.X) {
			return x.X
		}
		if m, ok := x.X.(*ir.Bin); ok && m.Op == ir.IMin && (m.X == x.Y || m.Y == x.Y) {
			return x.Y
		}
	case ir.IShl, ir.IShr:
		if yIsI && yi == 0 {
			return x.X
		}
	case ir.IAnd:
		if (yIsI && yi == 0) || (xIsI && xi == 0) {
			return ir.CI(0)
		}
	case ir.IOr, ir.IXor:
		if yIsI && yi == 0 {
			return x.X
		}
		if xIsI && xi == 0 {
			return x.Y
		}
	case ir.FAdd:
		if yIsF && yf == 0 {
			return x.X
		}
		if xIsF && xf == 0 {
			return x.Y
		}
	case ir.FSub:
		if yIsF && yf == 0 {
			return x.X
		}
	case ir.FMul:
		if yIsF && yf == 1 {
			return x.X
		}
		if xIsF && xf == 1 {
			return x.Y
		}
	case ir.FDiv:
		if yIsF && yf == 1 {
			return x.X
		}
	}
	return nil
}

func foldIntBin(op ir.BinOp, x, y int64) (int64, bool) {
	switch op {
	case ir.IAdd:
		return x + y, true
	case ir.ISub:
		return x - y, true
	case ir.IMul:
		return x * y, true
	case ir.IDiv:
		if y == 0 {
			return 0, false
		}
		return x / y, true
	case ir.IRem:
		if y == 0 {
			return 0, false
		}
		return x % y, true
	case ir.IAnd:
		return x & y, true
	case ir.IOr:
		return x | y, true
	case ir.IXor:
		return x ^ y, true
	case ir.IShl:
		return x << uint64(y&63), true
	case ir.IShr:
		return x >> uint64(y&63), true
	case ir.IMin:
		if y < x {
			return y, true
		}
		return x, true
	case ir.IMax:
		if y > x {
			return y, true
		}
		return x, true
	}
	return 0, false
}

func foldFloatBin(op ir.BinOp, x, y float64) (float64, bool) {
	switch op {
	case ir.FAdd:
		return x + y, true
	case ir.FSub:
		return x - y, true
	case ir.FMul:
		return x * y, true
	case ir.FDiv:
		return x / y, true
	}
	return 0, false
}

func foldCmp(x *ir.Cmp) ir.Value {
	if xi, ok := ir.ConstIntValue(x.X); ok {
		if yi, ok2 := ir.ConstIntValue(x.Y); ok2 {
			return ir.CB(cmpInt(x.Pred, xi, yi))
		}
	}
	if xf, ok := ir.ConstFloatValue(x.X); ok {
		if yf, ok2 := ir.ConstFloatValue(x.Y); ok2 {
			return ir.CB(cmpFloat(x.Pred, xf, yf))
		}
	}
	if xb, ok := ir.ConstBoolValue(x.X); ok {
		if yb, ok2 := ir.ConstBoolValue(x.Y); ok2 {
			switch x.Pred {
			case ir.EQ:
				return ir.CB(xb == yb)
			case ir.NE:
				return ir.CB(xb != yb)
			}
		}
	}
	return nil
}

func cmpInt(p ir.CmpPred, x, y int64) bool {
	switch p {
	case ir.EQ:
		return x == y
	case ir.NE:
		return x != y
	case ir.LT:
		return x < y
	case ir.LE:
		return x <= y
	case ir.GT:
		return x > y
	default:
		return x >= y
	}
}

func cmpFloat(p ir.CmpPred, x, y float64) bool {
	switch p {
	case ir.EQ:
		return x == y
	case ir.NE:
		return x != y
	case ir.LT:
		return x < y
	case ir.LE:
		return x <= y
	case ir.GT:
		return x > y
	default:
		return x >= y
	}
}
