package passes

import (
	"testing"

	"dae/internal/interp"
	"dae/internal/ir"
)

func loopCount(f *ir.Func) int {
	dt := ir.NewDomTree(f)
	return len(ir.FindLoops(f, dt).AllLoops())
}

func TestDeleteDeadLoop(t *testing.T) {
	m := compile(t, `
int f(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) {
		int dead = i * i;
	}
	return s;
}`)
	f := m.Func("f")
	Mem2Reg(f)
	ConstFold(f)
	DCE(f)
	if n := DeleteDeadLoops(f); n != 1 {
		t.Fatalf("deleted %d loops, want 1:\n%s", n, f)
	}
	if loopCount(f) != 0 {
		t.Errorf("loops remain:\n%s", f)
	}
	env := interp.NewEnv(interp.NewProgram(m), nil)
	out, err := env.Call(f, interp.Int(100))
	if err != nil {
		t.Fatal(err)
	}
	if out.Int64() != 0 {
		t.Errorf("f = %d, want 0", out.Int64())
	}
}

func TestKeepLoopWithStore(t *testing.T) {
	m := compile(t, `
task f(float A[n], int n) {
	for (int i = 0; i < n; i++) {
		A[i] = 1.0;
	}
}`)
	f := m.Func("f")
	Mem2Reg(f)
	if n := DeleteDeadLoops(f); n != 0 {
		t.Fatalf("deleted a loop with stores")
	}
}

func TestKeepLoopWithLiveOut(t *testing.T) {
	m := compile(t, `
int f(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) {
		s += i;
	}
	return s;
}`)
	f := m.Func("f")
	Mem2Reg(f)
	if n := DeleteDeadLoops(f); n != 0 {
		t.Fatalf("deleted a loop whose accumulator escapes:\n%s", f)
	}
	env := interp.NewEnv(interp.NewProgram(m), nil)
	out, _ := env.Call(f, interp.Int(100))
	if out.Int64() != 4950 {
		t.Errorf("f = %d, want 4950", out.Int64())
	}
}

func TestKeepLoopWithPrefetch(t *testing.T) {
	m := compile(t, `
task f(float A[n], int n) {
	for (int i = 0; i < n; i++) {
		prefetch A[i];
	}
}`)
	f := m.Func("f")
	Mem2Reg(f)
	if n := DeleteDeadLoops(f); n != 0 {
		t.Fatal("deleted an access-version prefetch loop")
	}
}

func TestDeleteNestedDeadLoops(t *testing.T) {
	m := compile(t, `
int f(int n) {
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < n; j++) {
			int dead = i + j;
		}
	}
	return 7;
}`)
	f := m.Func("f")
	Mem2Reg(f)
	ConstFold(f)
	DCE(f)
	DeleteDeadLoops(f)
	if loopCount(f) != 0 {
		t.Errorf("nested dead loops remain:\n%s", f)
	}
	env := interp.NewEnv(interp.NewProgram(m), nil)
	out, _ := env.Call(f, interp.Int(50))
	if out.Int64() != 7 {
		t.Errorf("f = %d, want 7", out.Int64())
	}
}
