package passes

import "dae/internal/ir"

// Stats summarizes what a pipeline run did.
type Stats struct {
	Inlined    int
	Promoted   int
	Folded     int
	CSEed      int
	Hoisted    int
	DCEed      int
	CFGChanges int
}

// Optimize runs the full pre-DAE pipeline on one function: inline calls,
// promote scalars to SSA, then iterate constant folding, DCE, and CFG
// simplification to a fixpoint. This is the "-O3" the paper applies before
// deriving access phases; it is also applied to generated access versions.
func Optimize(f *ir.Func) (Stats, error) {
	var st Stats
	n, err := InlineCalls(f)
	if err != nil {
		return st, err
	}
	st.Inlined = n
	st.Promoted = Mem2Reg(f)
	for {
		changed := 0
		c := ConstFold(f)
		e := CSE(f)
		h := LICM(f)
		d := DCE(f)
		s := SimplifyCFG(f) + DeleteDeadLoops(f)
		st.Folded += c
		st.CSEed += e
		st.Hoisted += h
		st.DCEed += d
		st.CFGChanges += s
		changed = c + e + h + d + s
		if changed == 0 {
			break
		}
	}
	return st, nil
}

// OptimizeModule runs Optimize on every function in m.
func OptimizeModule(m *ir.Module) (Stats, error) {
	var total Stats
	for _, f := range m.Funcs {
		st, err := Optimize(f)
		if err != nil {
			return total, err
		}
		total.Inlined += st.Inlined
		total.Promoted += st.Promoted
		total.Folded += st.Folded
		total.CSEed += st.CSEed
		total.Hoisted += st.Hoisted
		total.DCEed += st.DCEed
		total.CFGChanges += st.CFGChanges
	}
	return total, nil
}

// CleanupOnly runs the non-inlining cleanups (used on generated access
// versions, which never contain calls).
func CleanupOnly(f *ir.Func) {
	Mem2Reg(f)
	for {
		if ConstFold(f)+CSE(f)+LICM(f)+DCE(f)+SimplifyCFG(f)+DeleteDeadLoops(f) == 0 {
			return
		}
	}
}
