package passes

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dae/internal/interp"
	"dae/internal/ir"
	"dae/internal/lower"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := lower.Compile(src, "test")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func countAllocas(f *ir.Func) int {
	n := 0
	f.Instrs(func(in ir.Instr) {
		if _, ok := in.(*ir.Alloca); ok {
			n++
		}
	})
	return n
}

func countCalls(f *ir.Func) int {
	n := 0
	f.Instrs(func(in ir.Instr) {
		if _, ok := in.(*ir.Call); ok {
			n++
		}
	})
	return n
}

func TestMem2RegRemovesAllocas(t *testing.T) {
	m := compile(t, `
int sum(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) {
		s += i;
	}
	return s;
}`)
	f := m.Func("sum")
	if countAllocas(f) == 0 {
		t.Fatal("expected allocas before mem2reg")
	}
	promoted := Mem2Reg(f)
	if promoted == 0 {
		t.Fatal("mem2reg promoted nothing")
	}
	if countAllocas(f) != 0 {
		t.Errorf("allocas remain after mem2reg:\n%s", f)
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("verify after mem2reg: %v\n%s", err, f)
	}
	env := interp.NewEnv(interp.NewProgram(m), nil)
	out, err := env.Call(f, interp.Int(100))
	if err != nil {
		t.Fatal(err)
	}
	if out.Int64() != 4950 {
		t.Errorf("sum(100) = %d after mem2reg, want 4950", out.Int64())
	}
}

func TestMem2RegDiamond(t *testing.T) {
	m := compile(t, `
int f(int a, int b) {
	int x = 0;
	if (a > b) {
		x = a;
	} else {
		x = b;
	}
	return x;
}`)
	f := m.Func("f")
	Mem2Reg(f)
	if err := f.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, f)
	}
	// The join block needs a phi.
	hasPhi := false
	f.Instrs(func(in ir.Instr) {
		if _, ok := in.(*ir.Phi); ok {
			hasPhi = true
		}
	})
	if !hasPhi {
		t.Errorf("expected a phi after mem2reg on a diamond:\n%s", f)
	}
	env := interp.NewEnv(interp.NewProgram(m), nil)
	out, _ := env.Call(f, interp.Int(3), interp.Int(9))
	if out.Int64() != 9 {
		t.Errorf("max(3,9) = %d", out.Int64())
	}
}

func TestConstFold(t *testing.T) {
	m := compile(t, `
int f(int a) {
	int x = 2 + 3 * 4;
	int y = x * 1 + 0;
	return y + a * 0;
}`)
	f := m.Func("f")
	Mem2Reg(f)
	ConstFold(f)
	DCE(f)
	// Everything folds to ret 14.
	env := interp.NewEnv(interp.NewProgram(m), nil)
	out, _ := env.Call(f, interp.Int(77))
	if out.Int64() != 14 {
		t.Errorf("f = %d, want 14", out.Int64())
	}
	nonTrivial := 0
	f.Instrs(func(in ir.Instr) {
		switch in.(type) {
		case *ir.Ret, *ir.Br:
		default:
			nonTrivial++
		}
	})
	if nonTrivial > 0 {
		t.Errorf("expected fully folded body, %d instrs remain:\n%s", nonTrivial, f)
	}
}

func TestSimplifyCFGFoldsConstBranch(t *testing.T) {
	m := compile(t, `
int f(int a) {
	if (1 < 2) {
		return a;
	}
	return 0 - a;
}`)
	f := m.Func("f")
	Mem2Reg(f)
	ConstFold(f)
	SimplifyCFG(f)
	if len(f.Blocks) != 1 {
		t.Errorf("blocks = %d, want 1 after simplify:\n%s", len(f.Blocks), f)
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDCERemovesUnusedComputation(t *testing.T) {
	m := compile(t, `
int f(int a) {
	int unused = a * a + 42;
	return a;
}`)
	f := m.Func("f")
	Mem2Reg(f)
	n := DCE(f)
	if n == 0 {
		t.Errorf("DCE removed nothing:\n%s", f)
	}
	if got := f.NumInstrs(); got != 2 { // br-less entry: just ret; plus maybe br
		// Allow small structure differences but no arithmetic.
		f.Instrs(func(in ir.Instr) {
			if _, ok := in.(*ir.Bin); ok {
				t.Errorf("arithmetic survived DCE (total %d):\n%s", got, f)
			}
		})
	}
}

func TestInlineSimpleCall(t *testing.T) {
	m := compile(t, `
float square(float x) { return x * x; }
float f(float a, float b) {
	return square(a) + square(b);
}`)
	f := m.Func("f")
	n, err := InlineCalls(f)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("inlined %d calls, want 2", n)
	}
	if countCalls(f) != 0 {
		t.Errorf("calls remain:\n%s", f)
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("verify after inline: %v\n%s", err, f)
	}
	env := interp.NewEnv(interp.NewProgram(m), nil)
	out, err := env.Call(f, interp.Float(3), interp.Float(4))
	if err != nil {
		t.Fatal(err)
	}
	if out.Float64() != 25 {
		t.Errorf("f(3,4) = %g, want 25", out.Float64())
	}
}

func TestInlineMultiReturn(t *testing.T) {
	m := compile(t, `
int mymax(int a, int b) {
	if (a > b) { return a; }
	return b;
}
int f(int a, int b, int c) {
	return mymax(mymax(a, b), c);
}`)
	f := m.Func("f")
	if _, err := InlineCalls(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, f)
	}
	env := interp.NewEnv(interp.NewProgram(m), nil)
	out, _ := env.Call(f, interp.Int(5), interp.Int(9), interp.Int(7))
	if out.Int64() != 9 {
		t.Errorf("max3 = %d, want 9", out.Int64())
	}
}

func TestInlineTransitive(t *testing.T) {
	m := compile(t, `
int inc(int x) { return x + 1; }
int inc2(int x) { return inc(inc(x)); }
int f(int x) { return inc2(x) * inc(x); }
`)
	f := m.Func("f")
	n, err := InlineCalls(f)
	if err != nil {
		t.Fatal(err)
	}
	if n < 3 {
		t.Errorf("inlined %d, want >= 3 (transitive)", n)
	}
	if countCalls(f) != 0 {
		t.Error("calls remain after transitive inlining")
	}
	env := interp.NewEnv(interp.NewProgram(m), nil)
	out, _ := env.Call(f, interp.Int(10))
	if out.Int64() != 12*11 {
		t.Errorf("f(10) = %d, want 132", out.Int64())
	}
}

func TestInlineRejectsRecursion(t *testing.T) {
	m := compile(t, `
int fact(int n) {
	if (n <= 1) { return 1; }
	return n * fact(n - 1);
}
int f(int n) { return fact(n); }
`)
	if _, err := InlineCalls(m.Func("f")); err == nil {
		t.Fatal("expected recursion error")
	}
}

func TestInlineVoidCallWithArrayEffects(t *testing.T) {
	m := compile(t, `
void setone(float A[n], int n, int i) { A[i] = 1.0; }
task t(float A[n], int n) {
	for (int i = 0; i < n; i++) {
		setone(A, n, i);
	}
}`)
	f := m.Func("t")
	if _, err := InlineCalls(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, f)
	}
	h := interp.NewHeap()
	a := h.AllocFloat("A", 5)
	env := interp.NewEnv(interp.NewProgram(m), nil)
	if _, err := env.Call(f, interp.Ptr(a), interp.Int(5)); err != nil {
		t.Fatal(err)
	}
	for i, v := range a.F {
		if v != 1 {
			t.Errorf("A[%d] = %g, want 1", i, v)
		}
	}
}

// TestOptimizeDifferential checks that the full pipeline preserves semantics
// on a matrix kernel: the optimized task must produce bit-identical array
// contents to the unoptimized one.
func TestOptimizeDifferential(t *testing.T) {
	src := `
task lu(float A[N][N], int N) {
	for (int i = 0; i < N; i++) {
		for (int j = i+1; j < N; j++) {
			A[j][i] /= A[i][i];
			for (int k = i+1; k < N; k++) {
				A[j][k] -= A[j][i] * A[i][k];
			}
		}
	}
}`
	const n = 12
	init := func(seg *interp.Seg) {
		rng := rand.New(rand.NewSource(42))
		for i := range seg.F {
			seg.F[i] = rng.Float64() + 1 // diagonally safe enough
		}
	}

	run := func(optimize bool) []float64 {
		m := compile(t, src)
		f := m.Func("lu")
		if optimize {
			if _, err := Optimize(f); err != nil {
				t.Fatal(err)
			}
			if err := f.Verify(); err != nil {
				t.Fatalf("verify: %v\n%s", err, f)
			}
		}
		h := interp.NewHeap()
		a := h.AllocFloat("A", n*n)
		init(a)
		env := interp.NewEnv(interp.NewProgram(m), nil)
		if _, err := env.Call(f, interp.Ptr(a), interp.Int(n)); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(a.F))
		copy(out, a.F)
		return out
	}

	ref := run(false)
	opt := run(true)
	for i := range ref {
		if ref[i] != opt[i] {
			t.Fatalf("optimization changed result at %d: %g vs %g", i, ref[i], opt[i])
		}
	}
}

// TestOptimizeReducesWork checks the pipeline shrinks dynamic instruction
// count (the paper's premise that compiled access phases start from leaner
// optimized code).
func TestOptimizeReducesWork(t *testing.T) {
	src := `
float poly(float x) { return (x * 1.0 + 0.0) * (2.0 + 3.0); }
task t(float A[n], int n) {
	for (int i = 0; i < n; i++) {
		A[i] = poly(A[i]);
	}
}`
	countDyn := func(optimize bool) int64 {
		m := compile(t, src)
		f := m.Func("t")
		if optimize {
			if _, err := Optimize(f); err != nil {
				t.Fatal(err)
			}
		}
		h := interp.NewHeap()
		a := h.AllocFloat("A", 64)
		env := interp.NewEnv(interp.NewProgram(m), nil)
		if _, err := env.Call(f, interp.Ptr(a), interp.Int(64)); err != nil {
			t.Fatal(err)
		}
		return env.Counts().Total()
	}
	before, after := countDyn(false), countDyn(true)
	if after >= before {
		t.Errorf("optimization did not reduce dynamic instructions: %d → %d", before, after)
	}
}

// Property test: for random inputs, the optimized integer function computes
// the same value as the original.
func TestOptimizePropertyRandomInputs(t *testing.T) {
	src := `
int mix(int a, int b) {
	int x = (a ^ b) * 31 + (a & 7);
	int y = 0;
	for (int i = 0; i < (b & 15) + 1; i++) {
		y += x % 1000003;
		x = x * 2 + 1;
	}
	if (y < 0) { y = 0 - y; }
	return y;
}`
	mRef := compile(t, src)
	mOpt := compile(t, src)
	if _, err := Optimize(mOpt.Func("mix")); err != nil {
		t.Fatal(err)
	}
	envRef := interp.NewEnv(interp.NewProgram(mRef), nil)
	envOpt := interp.NewEnv(interp.NewProgram(mOpt), nil)

	prop := func(a, b int32) bool {
		r1, err1 := envRef.Call(mRef.Func("mix"), interp.Int(int64(a)), interp.Int(int64(b)))
		r2, err2 := envOpt.Call(mOpt.Func("mix"), interp.Int(int64(a)), interp.Int(int64(b)))
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return r1.Int64() == r2.Int64()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOptimizeModuleAll(t *testing.T) {
	m := compile(t, `
float helper(float x) { return sqrt(x); }
task t1(float A[n], int n) {
	for (int i = 0; i < n; i++) { A[i] = helper(A[i]); }
}
task t2(float A[n], int n) {
	for (int i = 0; i < n; i++) { A[i] = A[i] + 1.0; }
}`)
	st, err := OptimizeModule(m)
	if err != nil {
		t.Fatal(err)
	}
	if st.Inlined == 0 || st.Promoted == 0 {
		t.Errorf("stats look empty: %+v", st)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	h := interp.NewHeap()
	a := h.AllocFloat("A", 4)
	for i := range a.F {
		a.F[i] = float64(i * i)
	}
	env := interp.NewEnv(interp.NewProgram(m), nil)
	if _, err := env.Call(m.Func("t1"), interp.Ptr(a), interp.Int(4)); err != nil {
		t.Fatal(err)
	}
	for i, v := range a.F {
		if math.Abs(v-float64(i)) > 1e-12 {
			t.Errorf("sqrt(A)[%d] = %g, want %d", i, v, i)
		}
	}
}

func TestCleanupOnly(t *testing.T) {
	m := compile(t, `
task t(float A[n], int n) {
	int dead = 1 + 2;
	for (int i = 0; i < n; i++) {
		A[i] = A[i] * 1.0;
	}
}`)
	f := m.Func("t")
	CleanupOnly(f)
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	if countAllocas(f) != 0 {
		t.Error("allocas remain after CleanupOnly")
	}
}
