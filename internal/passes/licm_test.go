package passes

import (
	"testing"

	"dae/internal/interp"
	"dae/internal/ir"
)

// binsInLoop counts arithmetic instructions inside loop bodies.
func binsInLoops(f *ir.Func) int {
	dt := ir.NewDomTree(f)
	li := ir.FindLoops(f, dt)
	n := 0
	f.Instrs(func(in ir.Instr) {
		if _, ok := in.(*ir.Bin); ok && li.Of[in.Parent()] != nil {
			n++
		}
	})
	return n
}

func TestLICMHoistsInvariant(t *testing.T) {
	m := compile(t, `
task f(float A[n], int n, int a, int b) {
	for (int i = 0; i < n; i++) {
		A[i] = A[i] + 1.0;
		int dead = (a * b + 7) * (a * b + 7);
		A[i] = A[i] + dead;
	}
}`)
	f := m.Func("f")
	Mem2Reg(f)
	before := binsInLoops(f)
	hoisted := LICM(f)
	after := binsInLoops(f)
	if hoisted == 0 || after >= before {
		t.Errorf("LICM hoisted %d (loop bins %d → %d):\n%s", hoisted, before, after, f)
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, f)
	}
	h := interp.NewHeap()
	a := h.AllocFloat("A", 4)
	env := interp.NewEnv(interp.NewProgram(m), nil)
	if _, err := env.Call(f, interp.Ptr(a), interp.Int(4), interp.Int(2), interp.Int(3)); err != nil {
		t.Fatal(err)
	}
	want := 1.0 + float64((2*3+7)*(2*3+7))
	for i, v := range a.F {
		if v != want {
			t.Errorf("A[%d] = %g, want %g", i, v, want)
		}
	}
}

func TestLICMNestedLoops(t *testing.T) {
	// An expression invariant in both loops bubbles through the inner
	// preheader out to the outer one.
	m := compile(t, `
int f(int n, int a) {
	int s = 0;
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < n; j++) {
			s += a * a;
		}
	}
	return s;
}`)
	f := m.Func("f")
	Mem2Reg(f)
	LICM(f)
	if n := binsInLoops(f); n > 3 { // iv increments + accumulate only
		t.Errorf("a*a should leave the nest entirely; %d bins remain in loops:\n%s", n, f)
	}
	env := interp.NewEnv(interp.NewProgram(m), nil)
	out, _ := env.Call(f, interp.Int(3), interp.Int(5))
	if out.Int64() != 9*25 {
		t.Errorf("f = %d, want 225", out.Int64())
	}
}

func TestLICMDoesNotHoistDivByVariable(t *testing.T) {
	// The division is guarded: hoisting it above the loop condition would
	// fault when d == 0 and n == 0.
	m := compile(t, `
int f(int n, int d) {
	int s = 0;
	for (int i = 0; i < n; i++) {
		s += 100 / d;
	}
	return s;
}`)
	f := m.Func("f")
	Mem2Reg(f)
	LICM(f)
	env := interp.NewEnv(interp.NewProgram(m), nil)
	// n == 0: the loop never runs, so d == 0 must not fault.
	out, err := env.Call(f, interp.Int(0), interp.Int(0))
	if err != nil {
		t.Fatalf("hoisted a guarded division: %v", err)
	}
	if out.Int64() != 0 {
		t.Errorf("f(0,0) = %d, want 0", out.Int64())
	}
}

func TestLICMDoesNotHoistLoads(t *testing.T) {
	// A[0] may be written inside the loop; the load must stay put.
	m := compile(t, `
task f(float A[n], int n) {
	for (int i = 1; i < n; i++) {
		A[i] = A[0];
		A[0] = A[0] + 1.0;
	}
}`)
	f := m.Func("f")
	Mem2Reg(f)
	LICM(f)
	h := interp.NewHeap()
	a := h.AllocFloat("A", 4)
	env := interp.NewEnv(interp.NewProgram(m), nil)
	if _, err := env.Call(f, interp.Ptr(a), interp.Int(4)); err != nil {
		t.Fatal(err)
	}
	// A[1]=0, A[2]=1, A[3]=2
	for i := 1; i < 4; i++ {
		if a.F[i] != float64(i-1) {
			t.Errorf("A[%d] = %g, want %d", i, a.F[i], i-1)
		}
	}
}

func TestLICMHoistsGEPs(t *testing.T) {
	m := compile(t, `
task f(float A[n], int n, int k) {
	for (int i = 0; i < n; i++) {
		A[k] = A[k] + 1.0;
	}
}`)
	f := m.Func("f")
	Mem2Reg(f)
	LICM(f)
	dt := ir.NewDomTree(f)
	li := ir.FindLoops(f, dt)
	f.Instrs(func(in ir.Instr) {
		if _, ok := in.(*ir.GEP); ok {
			if li.Of[in.Parent()] != nil {
				t.Errorf("invariant GEP not hoisted:\n%s", f)
			}
		}
	})
}
