package passes

import (
	"testing"

	"dae/internal/interp"
	"dae/internal/ir"
)

func countBins(f *ir.Func) int {
	n := 0
	f.Instrs(func(in ir.Instr) {
		if _, ok := in.(*ir.Bin); ok {
			n++
		}
	})
	return n
}

func TestCSEEliminatesDuplicates(t *testing.T) {
	m := compile(t, `
int f(int a, int b) {
	int x = a + b;
	int y = a + b;
	int z = b + a;
	return x + y + z;
}`)
	f := m.Func("f")
	Mem2Reg(f)
	n := CSE(f)
	if n < 2 {
		t.Errorf("CSE removed %d, want >= 2 (duplicate and commuted):\n%s", n, f)
	}
	env := interp.NewEnv(interp.NewProgram(m), nil)
	out, err := env.Call(f, interp.Int(3), interp.Int(4))
	if err != nil {
		t.Fatal(err)
	}
	if out.Int64() != 21 {
		t.Errorf("f(3,4) = %d, want 21", out.Int64())
	}
}

func TestCSERespectsdominance(t *testing.T) {
	// The same expression in two sibling branches must NOT unify (neither
	// dominates the other).
	m := compile(t, `
int f(int a, int b, int c) {
	int r = 0;
	if (c > 0) {
		r = a * b;
	} else {
		r = a * b;
	}
	return r;
}`)
	f := m.Func("f")
	Mem2Reg(f)
	CSE(f)
	if err := f.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, f)
	}
	env := interp.NewEnv(interp.NewProgram(m), nil)
	for _, c := range []int64{1, -1} {
		out, err := env.Call(f, interp.Int(6), interp.Int(7), interp.Int(c))
		if err != nil {
			t.Fatal(err)
		}
		if out.Int64() != 42 {
			t.Errorf("f(6,7,%d) = %d, want 42", c, out.Int64())
		}
	}
}

func TestCSEDominatorScoping(t *testing.T) {
	// An expression computed before a branch unifies with a recomputation
	// inside the branch (the definition dominates the use).
	m := compile(t, `
int f(int a, int b, int c) {
	int x = a * b;
	int r = x;
	if (c > 0) {
		r = r + a * b;
	}
	return r;
}`)
	f := m.Func("f")
	Mem2Reg(f)
	before := countBins(f)
	CSE(f)
	after := countBins(f)
	if after >= before {
		t.Errorf("CSE should remove the recomputed a*b: %d → %d\n%s", before, after, f)
	}
	env := interp.NewEnv(interp.NewProgram(m), nil)
	out, _ := env.Call(f, interp.Int(2), interp.Int(5), interp.Int(1))
	if out.Int64() != 20 {
		t.Errorf("f = %d, want 20", out.Int64())
	}
}

func TestCSEDoesNotUnifyLoads(t *testing.T) {
	// Two loads of the same address may see different values (a store in
	// between); CSE must leave them alone.
	m := compile(t, `
task f(float A[n], int n) {
	float x = A[0];
	A[0] = x + 1.0;
	float y = A[0];
	A[1] = y;
}`)
	f := m.Func("f")
	Mem2Reg(f)
	CSE(f)
	ConstFold(f)
	DCE(f)
	h := interp.NewHeap()
	a := h.AllocFloat("A", 2)
	a.F[0] = 5
	env := interp.NewEnv(interp.NewProgram(m), nil)
	if _, err := env.Call(f, interp.Ptr(a), interp.Int(2)); err != nil {
		t.Fatal(err)
	}
	if a.F[1] != 6 {
		t.Errorf("A[1] = %g, want 6 (the second load must see the store)", a.F[1])
	}
}

func TestCSEGEPs(t *testing.T) {
	m := compile(t, `
task f(float A[n], int n) {
	A[3] = A[3] * 2.0;
}`)
	f := m.Func("f")
	Mem2Reg(f)
	geps := 0
	CSE(f)
	f.Instrs(func(in ir.Instr) {
		if _, ok := in.(*ir.GEP); ok {
			geps++
		}
	})
	if geps != 1 {
		t.Errorf("identical GEPs should unify: %d remain\n%s", geps, f)
	}
}

func TestMinMaxIdentities(t *testing.T) {
	// max(x, min(x, y)) == x and friends, as produced by the affine access
	// generator's bound chains.
	x := &ir.Param{Nam: "x", Typ: ir.IntT}
	y := &ir.Param{Nam: "y", Typ: ir.IntT}
	f := ir.NewFunc("g", ir.IntT, []*ir.Param{x, y})
	bd := ir.NewBuilder(f)
	bd.SetBlock(bd.NewBlock("entry"))
	mn := bd.Bin(ir.IMin, x, y)
	mx := bd.Bin(ir.IMax, x, mn)
	bd.Ret(mx)
	ConstFold(f)
	ret := f.Entry().Term().(*ir.Ret)
	if ret.X != x {
		t.Errorf("max(x, min(x,y)) should fold to x:\n%s", f)
	}
}

func TestMinMaxSelfFold(t *testing.T) {
	x := &ir.Param{Nam: "x", Typ: ir.IntT}
	f := ir.NewFunc("g", ir.IntT, []*ir.Param{x})
	bd := ir.NewBuilder(f)
	bd.SetBlock(bd.NewBlock("entry"))
	v := bd.Bin(ir.IMin, x, x)
	bd.Ret(v)
	ConstFold(f)
	ret := f.Entry().Term().(*ir.Ret)
	if ret.X != x {
		t.Errorf("min(x,x) should fold to x:\n%s", f)
	}
}

func TestAccessBoundsFullySimplified(t *testing.T) {
	// End-to-end: the LU access version's entry block must collapse to a
	// couple of instructions (the Listing 1(c) shape), not a min/max chain.
	m := compile(t, `
task lu(float A[N][N], int N) {
	for (int i = 0; i < N; i++) {
		for (int j = i+1; j < N; j++) {
			A[j][i] /= A[i][i];
			for (int k = i+1; k < N; k++) {
				A[j][k] -= A[j][i] * A[i][k];
			}
		}
	}
}`)
	f := m.Func("lu")
	if _, err := Optimize(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	// The optimized task's entry block is pure control (the GEP dims are
	// the parameter N itself; no leftover arithmetic).
	for _, in := range f.Entry().Instrs {
		if _, ok := in.(*ir.Bin); ok {
			t.Errorf("entry block retains arithmetic after optimize:\n%s", f)
		}
	}
}
