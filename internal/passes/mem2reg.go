// Package passes implements the classic scalar optimizations the paper's
// compiler applies before deriving access phases: SSA construction
// (mem2reg), constant folding, dead-code elimination, CFG simplification,
// and function inlining. RunO3 chains them to a fixpoint.
package passes

import "dae/internal/ir"

// Mem2Reg promotes scalar allocas to SSA registers, inserting phis at
// iterated dominance frontiers (the standard SSA construction algorithm).
// It returns the number of promoted allocas.
func Mem2Reg(f *ir.Func) int {
	f.RemoveUnreachable()
	dt := ir.NewDomTree(f)
	df := dt.Frontiers()

	// Collect promotable allocas: every use is a direct Load or a Store's
	// pointer operand. (The front end only produces such allocas, but guard
	// anyway so hand-built IR is safe.)
	allocas := promotable(f)
	if len(allocas) == 0 {
		return 0
	}

	// Phase 1: place phis at the iterated dominance frontier of each
	// alloca's defining blocks.
	phiFor := make(map[*ir.Phi]*ir.Alloca)
	for _, a := range allocas {
		defBlocks := make(map[*ir.Block]bool)
		f.Instrs(func(in ir.Instr) {
			if st, ok := in.(*ir.Store); ok && st.Ptr == a {
				defBlocks[in.Parent()] = true
			}
		})
		hasPhi := make(map[*ir.Block]bool)
		work := make([]*ir.Block, 0, len(defBlocks))
		for b := range defBlocks {
			work = append(work, b)
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, y := range df[b] {
				if hasPhi[y] {
					continue
				}
				hasPhi[y] = true
				phi := ir.NewPhi(a.Type().Elem, a.Var)
				insertPhi(y, phi)
				phiFor[phi] = a
				if !defBlocks[y] {
					work = append(work, y)
				}
			}
		}
	}

	// Phase 2: rename along the dominator tree.
	type frame struct {
		b     *ir.Block
		saved map[*ir.Alloca]ir.Value
	}
	cur := make(map[*ir.Alloca]ir.Value, len(allocas))
	allocaSet := make(map[ir.Value]*ir.Alloca, len(allocas))
	for _, a := range allocas {
		allocaSet[a] = a
	}

	var rename func(b *ir.Block)
	rename = func(b *ir.Block) {
		saved := make(map[*ir.Alloca]ir.Value)
		record := func(a *ir.Alloca) {
			if _, ok := saved[a]; !ok {
				saved[a] = cur[a]
			}
		}

		var dead []ir.Instr
		for _, in := range b.Instrs {
			switch x := in.(type) {
			case *ir.Phi:
				if a, ok := phiFor[x]; ok {
					record(a)
					cur[a] = x
				}
			case *ir.Load:
				if a, ok := allocaSet[x.Ptr]; ok {
					v := cur[a]
					if v == nil {
						v = zeroOf(a.Type().Elem)
					}
					f.ReplaceAllUses(x, v)
					dead = append(dead, x)
				}
			case *ir.Store:
				if a, ok := allocaSet[x.Ptr]; ok {
					record(a)
					cur[a] = x.Val
					dead = append(dead, x)
				}
			}
		}

		// Fill phi operands of successors with current values.
		for _, s := range b.Succs() {
			for _, phi := range s.Phis() {
				a, ok := phiFor[phi]
				if !ok {
					continue
				}
				v := cur[a]
				if v == nil {
					v = zeroOf(a.Type().Elem)
				}
				phi.AddIncoming(v, b)
			}
		}

		for _, c := range dt.Children(b) {
			rename(c)
		}
		for _, in := range dead {
			b.Remove(in)
		}
		for a, v := range saved {
			cur[a] = v
		}
	}
	rename(f.Entry())

	// Remove the allocas themselves.
	for _, a := range allocas {
		a.Parent().Remove(a)
	}
	return len(allocas)
}

func promotable(f *ir.Func) []*ir.Alloca {
	var allocas []*ir.Alloca
	bad := make(map[ir.Value]bool)
	f.Instrs(func(in ir.Instr) {
		for i, op := range in.Operands() {
			a, ok := op.(*ir.Alloca)
			if !ok {
				continue
			}
			switch x := in.(type) {
			case *ir.Load:
				// ok
			case *ir.Store:
				if i != 1 || x.Val == op {
					bad[a] = true
				}
			default:
				bad[a] = true
			}
		}
	})
	f.Instrs(func(in ir.Instr) {
		if a, ok := in.(*ir.Alloca); ok && !bad[a] {
			allocas = append(allocas, a)
		}
	})
	return allocas
}

func insertPhi(b *ir.Block, phi *ir.Phi) {
	i := b.FirstNonPhi()
	if i < len(b.Instrs) {
		b.InsertBefore(phi, b.Instrs[i])
		return
	}
	// Block of only phis cannot happen (must have terminator), but guard.
	b.Append(phi)
}

func zeroOf(t *ir.Type) ir.Value {
	switch {
	case t.IsFloat():
		return ir.CF(0)
	case t.IsBool():
		return ir.CB(false)
	default:
		return ir.CI(0)
	}
}
