package passes

import "dae/internal/ir"

// LICM hoists loop-invariant pure computations into loop preheaders — the
// "avoiding recomputation of memory addresses" optimization the paper lists
// in §5.2.3. An instruction is hoisted when it is pure (no memory access, no
// possible fault) and every operand is defined outside the loop. Loops are
// processed innermost-first so invariants bubble outward through enclosing
// preheaders. It returns the number of hoisted instructions.
func LICM(f *ir.Func) int {
	f.RemoveUnreachable()
	dt := ir.NewDomTree(f)
	li := ir.FindLoops(f, dt)
	loops := li.AllLoops()

	hoisted := 0
	// innermost first: reverse of the outermost-first AllLoops order.
	for i := len(loops) - 1; i >= 0; i-- {
		l := loops[i]
		pre := l.Preheader()
		if pre == nil {
			continue
		}
		term := pre.Term()
		if term == nil {
			continue
		}
		for {
			moved := 0
			for _, b := range l.Blocks {
				for _, in := range append([]ir.Instr{}, b.Instrs...) {
					if !hoistable(in) {
						continue
					}
					if !operandsOutside(in, l) {
						continue
					}
					b.Remove(in)
					pre.InsertBefore(in, term)
					moved++
				}
			}
			if moved == 0 {
				break
			}
			hoisted += moved
		}
	}
	return hoisted
}

// hoistable reports whether in may be executed speculatively: pure and
// fault-free. Integer division and remainder can trap on a zero divisor
// that the original control flow may have guarded, so they only hoist with
// a provably nonzero constant divisor.
func hoistable(in ir.Instr) bool {
	switch x := in.(type) {
	case *ir.Bin:
		if x.Op == ir.IDiv || x.Op == ir.IRem {
			c, ok := ir.ConstIntValue(x.Y)
			return ok && c != 0
		}
		return true
	case *ir.Cmp, *ir.Cast, *ir.Select, *ir.Math, *ir.GEP:
		return true
	}
	return false
}

func operandsOutside(in ir.Instr, l *ir.Loop) bool {
	for _, op := range in.Operands() {
		def, ok := op.(ir.Instr)
		if !ok {
			continue // constants and parameters are invariant
		}
		if def.Parent() == nil || l.Contains(def.Parent()) {
			return false
		}
	}
	return true
}
