package passes

import "dae/internal/ir"

// hasSideEffects reports whether an instruction must be kept even when its
// result is unused.
func hasSideEffects(in ir.Instr) bool {
	switch x := in.(type) {
	case *ir.Store, *ir.Prefetch, *ir.Br, *ir.CondBr, *ir.Ret:
		return true
	case *ir.Bin:
		// Division and remainder can fault; folding them away changes
		// behaviour only for faulting programs, which we treat as erroneous,
		// so they are removable when unused — except integer division by a
		// non-constant, which we keep conservative about.
		_ = x
		return false
	case *ir.Call:
		// Calls may write arrays through pointer arguments.
		return true
	}
	return false
}

// DCE removes instructions whose results are unused and that have no side
// effects, iterating to a fixpoint. It returns the number of removed
// instructions.
func DCE(f *ir.Func) int {
	removed := 0
	for {
		uses := f.UseCounts()
		var dead []ir.Instr
		f.Instrs(func(in ir.Instr) {
			if hasSideEffects(in) {
				return
			}
			if uses[in] == 0 {
				dead = append(dead, in)
			}
		})
		if len(dead) == 0 {
			return removed
		}
		for _, in := range dead {
			in.Parent().Remove(in)
			removed++
		}
	}
}
