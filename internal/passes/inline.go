package passes

import (
	"fmt"

	"dae/internal/ir"
)

// InlineCalls inlines every call in f whose callee is non-recursive,
// repeating until no calls remain (so transitively called functions are
// flattened too). It returns the number of inlined calls, or an error on
// recursion, mirroring the paper's requirement that a task must contain no
// un-inlinable calls before an access version can be generated.
func InlineCalls(f *ir.Func) (int, error) {
	n := 0
	for {
		call := findCall(f)
		if call == nil {
			return n, nil
		}
		if call.Callee == f || reachesFunc(call.Callee, call.Callee) {
			return n, fmt.Errorf("passes: cannot inline recursive call to @%s in @%s",
				call.Callee.Name, f.Name)
		}
		inlineOne(f, call)
		n++
	}
}

func findCall(f *ir.Func) *ir.Call {
	var found *ir.Call
	f.Instrs(func(in ir.Instr) {
		if found != nil {
			return
		}
		if c, ok := in.(*ir.Call); ok {
			found = c
		}
	})
	return found
}

// reachesFunc reports whether target is reachable through the call graph by
// following calls from the bodies of functions called by from (i.e. whether
// from participates in a cycle when from == target).
func reachesFunc(from, target *ir.Func) bool {
	seen := map[*ir.Func]bool{}
	var walk func(g *ir.Func) bool
	walk = func(g *ir.Func) bool {
		if seen[g] {
			return false
		}
		seen[g] = true
		hit := false
		g.Instrs(func(in ir.Instr) {
			if hit {
				return
			}
			if c, ok := in.(*ir.Call); ok {
				if c.Callee == target || walk(c.Callee) {
					hit = true
				}
			}
		})
		return hit
	}
	return walk(from)
}

// inlineOne splices a clone of call.Callee into f at the call site.
func inlineOne(f *ir.Func, call *ir.Call) {
	clone := ir.CloneFunc(call.Callee, call.Callee.Name+".inl")
	site := call.Parent()

	// Split the call block; the continuation receives everything after the
	// call, including the terminator.
	cont := f.SplitBlock(site, call)
	site.Remove(call)

	// Splice the clone's blocks into f and rewrite parameter references to
	// the call arguments.
	cloneBlocks := append([]*ir.Block{}, clone.Blocks...)
	entry := f.Absorb(clone)
	for _, prm := range clone.Params {
		arg := call.Args[prm.Index]
		for _, b := range cloneBlocks {
			for _, in := range b.Instrs {
				ops := in.Operands()
				for i, op := range ops {
					if op == prm {
						in.SetOperand(i, arg)
					}
				}
			}
		}
	}

	// Branch from the call site into the inlined entry.
	site.Append(ir.NewBr(entry))

	// Rewrite returns as branches to the continuation, merging return values
	// through a phi when there are several.
	type retSite struct {
		val ir.Value
		blk *ir.Block
	}
	var rets []retSite
	for _, b := range cloneBlocks {
		if r, ok := b.Term().(*ir.Ret); ok {
			rets = append(rets, retSite{val: r.X, blk: b})
		}
	}
	for _, rs := range rets {
		rs.blk.Remove(rs.blk.Term())
		rs.blk.Append(ir.NewBr(cont))
	}

	if !call.Type().IsVoid() {
		var result ir.Value
		switch len(rets) {
		case 0:
			result = zeroOf(call.Type())
		case 1:
			result = rets[0].val
		default:
			phi := ir.NewPhi(call.Type(), "")
			for _, rs := range rets {
				phi.AddIncoming(rs.val, rs.blk)
			}
			if len(cont.Instrs) > 0 {
				cont.InsertBefore(phi, cont.Instrs[0])
			} else {
				cont.Append(phi)
			}
			result = phi
		}
		f.ReplaceAllUses(call, result)
	}
}
