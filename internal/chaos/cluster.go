// Cluster chaos: the network-level soak scenario. Three in-process daed
// nodes form a replicated cluster; every client byte crosses a chaosnet
// proxy that injects latency, resets, and truncations on a seeded schedule;
// and one node is hard-killed mid-run. The scenario asserts the cluster's
// contract under all of it: every accepted request is answered, answers for
// one key are byte-identical no matter which node (or failover path) served
// them, and tenant quarantine isolation survives both the wire faults and
// the node death.
package chaos

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"dae/internal/chaosnet"
	"dae/internal/daed"
	"dae/internal/daed/client"
	"dae/internal/daed/ring"
)

// clusterScenario runs the network-chaos cluster drill once. seed drives the
// chaosnet fault schedules and the client's backoff jitter, so one seed
// replays one exact drill.
func clusterScenario(seed int64, iterTimeout time.Duration) (err error) {
	const nNodes = 3
	dir, err := os.MkdirTemp("", "chaos-cluster-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Boot the cluster on direct loopback URLs: peer replication and proxying
	// run on the clean wire, the chaos sits between the clients and the
	// cluster where the network actually fails.
	lns := make([]net.Listener, nNodes)
	direct := make([]string, nNodes)
	for i := range lns {
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			return lerr
		}
		lns[i] = ln
		direct[i] = "http://" + ln.Addr().String()
	}
	srvs := make([]*daed.Server, nNodes)
	hss := make([]*http.Server, nNodes)
	for i := range srvs {
		var peers []string
		for j, u := range direct {
			if j != i {
				peers = append(peers, u)
			}
		}
		srvs[i] = daed.New(daed.Config{
			Workers: 2, Dir: fmt.Sprintf("%s/node%d", dir, i),
			Self: direct[i], Peers: peers, Replicas: 2,
			RepairInterval: -1, // this drill is about wire faults, not repair
		})
		hss[i] = &http.Server{Handler: srvs[i]}
		go hss[i].Serve(lns[i])
		defer srvs[i].Close()
		defer hss[i].Close()
	}

	// One chaos proxy per node. The forced cycle keeps the schedule an exact
	// function of the connection order: mostly clean, with latency, an RST,
	// and a truncation recurring — every fault the failover client must
	// absorb without losing a request.
	cycle := []chaosnet.Fault{
		chaosnet.Pass, chaosnet.Pass, chaosnet.Latency, chaosnet.Pass,
		chaosnet.Reset, chaosnet.Pass, chaosnet.Pass, chaosnet.Truncate,
	}
	proxies := make([]*chaosnet.Proxy, nNodes)
	proxyURLs := make([]string, nNodes)
	for i := range proxies {
		p, perr := chaosnet.New(chaosnet.Config{
			Target: lns[i].Addr().String(), Seed: uint64(seed) + uint64(i),
			Force: cycle, Latency: 5 * time.Millisecond, TruncateAfter: 256,
		})
		if perr != nil {
			return perr
		}
		proxies[i] = p
		defer p.Close()
		proxyURLs[i] = p.URL()
	}

	// Pin: the client dials chaos-proxy URLs; adopting a server view would
	// swap in the direct member URLs and route every later request around
	// the chaos this drill exists to inject.
	cl := client.New(client.Config{
		Nodes: proxyURLs, Pin: true, BackoffBase: 5 * time.Millisecond,
		Probation: 100 * time.Millisecond, FailureThreshold: 2,
		BackoffSeed: uint64(seed) | 1,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 4*iterTimeout)
	defer cancel()

	hot := &daed.SimulateRequest{App: "CG"}
	ref, err := cl.Simulate(ctx, "clean", hot)
	if err != nil {
		return fmt.Errorf("chaos: cluster reference request: %w", err)
	}

	// Kill the client's first-choice node for the hot key (the client ring
	// hashes the proxy URLs), once half the drill has run: every later
	// request must fail over off a dead preference head, and replication
	// guarantees the survivors can still answer — whether or not the dead
	// node was also the artifact's storage primary.
	key, err := hot.Key()
	if err != nil {
		return err
	}
	victim := 0
	head := ring.New(proxyURLs, 0, daed.DefaultRingSeed).Primary(key)
	for i, u := range proxyURLs {
		if u == head {
			victim = i
		}
	}

	const drill = 24
	for i := 0; i < drill; i++ {
		if i == drill/2 {
			hss[victim].Close()
			proxies[victim].Close()
		}
		if i%6 == 3 {
			// A poisoned tenant: the injected access fault must degrade this
			// tenant's request and only this tenant's.
			resp, err := cl.Simulate(ctx, "chaos-tenant", &daed.SimulateRequest{
				App: "CG", Inject: "access-phase,CG,compiler-dae,,trap!",
			})
			if err != nil {
				return fmt.Errorf("chaos: cluster injected request %d lost: %w", i, err)
			}
			if !resp.Degraded || len(resp.Quarantined) == 0 {
				return fmt.Errorf("chaos: cluster injected request %d not quarantined", i)
			}
			continue
		}
		resp, err := cl.Simulate(ctx, "clean", hot)
		if err != nil {
			return fmt.Errorf("chaos: cluster request %d lost (accepted work must survive faults): %w", i, err)
		}
		if resp.Report != ref.Report {
			return fmt.Errorf("chaos: cluster request %d diverged from the reference report", i)
		}
		if resp.Degraded {
			return fmt.Errorf("chaos: tenant poison leaked into clean request %d", i)
		}
	}
	if got := cl.Counters(); got.Failovers == 0 {
		return fmt.Errorf("chaos: cluster drill recorded no failovers despite injected faults and a dead node: %+v", got)
	}
	return nil
}
