// Membership chaos: the self-healing cluster soak scenario. Three daed
// nodes take load through chaosnet proxies while the membership itself
// churns: an asymmetric one-way partition opens and heals in each
// direction, a cold fourth node joins mid-load, and an original member is
// removed and drains. The scenario asserts the self-healing contract under
// all of it: zero accepted requests lost, answers byte-identical across
// every epoch, and the repair machinery (warmup, anti-entropy, handoff)
// demonstrably moving envelopes — not just counters sitting at zero.
package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"dae/internal/chaosnet"
	"dae/internal/daed"
	"dae/internal/daed/client"
	"dae/internal/daed/ring"
)

// membershipScenario runs the membership-churn drill once. seed drives the
// client's backoff jitter; the fault schedule itself is fully scripted
// (partition windows, join point, leave point), so one run replays exactly.
func membershipScenario(seed int64, iterTimeout time.Duration) (err error) {
	const nNodes = 3
	dir, err := os.MkdirTemp("", "chaos-membership-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Boot the three originals plus a cold joiner (a cluster of one until
	// the admin join absorbs it). Peer traffic runs on the direct wire; the
	// chaos sits on the client side.
	lns := make([]net.Listener, nNodes+1)
	direct := make([]string, nNodes+1)
	for i := range lns {
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			return lerr
		}
		lns[i] = ln
		direct[i] = "http://" + ln.Addr().String()
	}
	srvs := make([]*daed.Server, nNodes+1)
	hss := make([]*http.Server, nNodes+1)
	for i := range srvs {
		var peers []string
		if i < nNodes {
			for j := 0; j < nNodes; j++ {
				if j != i {
					peers = append(peers, direct[j])
				}
			}
		}
		srvs[i] = daed.New(daed.Config{
			Workers: 2, Dir: fmt.Sprintf("%s/node%d", dir, i),
			Self: direct[i], Peers: peers, Replicas: 2,
			RepairInterval: 200 * time.Millisecond,
		})
		hss[i] = &http.Server{Handler: srvs[i]}
		go hss[i].Serve(lns[i])
		defer srvs[i].Close()
		defer hss[i].Close()
	}
	joiner := nNodes

	// Clean pass-through proxies for the three originals: this drill's chaos
	// is asymmetric partitions, not byte-level faults.
	proxies := make([]*chaosnet.Proxy, nNodes)
	proxyURLs := make([]string, nNodes)
	for i := range proxies {
		p, perr := chaosnet.New(chaosnet.Config{
			Target: lns[i].Addr().String(), Seed: uint64(seed) + uint64(i), FaultRate: -1,
		})
		if perr != nil {
			return perr
		}
		proxies[i] = p
		defer p.Close()
		proxyURLs[i] = p.URL()
	}

	// Pin: the dialed URLs are chaos proxies the server member list would
	// bypass. AttemptTimeout: a one-way partition hangs connections instead
	// of refusing them, so failover needs a per-attempt budget.
	cl := client.New(client.Config{
		Nodes: proxyURLs, Pin: true,
		AttemptTimeout: 1500 * time.Millisecond,
		BackoffBase:    5 * time.Millisecond,
		Probation:      100 * time.Millisecond, FailureThreshold: 2,
		BackoffSeed: uint64(seed) | 1,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 6*iterTimeout)
	defer cancel()

	hot := &daed.SimulateRequest{App: "CG"}
	ref, err := cl.Simulate(ctx, "clean", hot)
	if err != nil {
		return fmt.Errorf("chaos: membership reference request: %w", err)
	}
	mustServe := func(phase string, n int) error {
		for i := 0; i < n; i++ {
			resp, rerr := cl.Simulate(ctx, "clean", hot)
			if rerr != nil {
				return fmt.Errorf("chaos: membership %s request %d lost (accepted work must survive churn): %w", phase, i, rerr)
			}
			if resp.Report != ref.Report {
				return fmt.Errorf("chaos: membership %s request %d diverged from the reference report", phase, i)
			}
		}
		return nil
	}

	// Seed synthetic journaled envelopes chosen so the later churn provably
	// moves ownership: at least two keys the joiner will own. Its store is
	// fresh, so warmup or anti-entropy must stream them — the drill's proof
	// that repair moves real envelopes, not just counters.
	oldRing := ring.New(direct[:nNodes], 0, daed.DefaultRingSeed)
	joinedRing := ring.New(direct, 0, daed.DefaultRingSeed)
	const leaver = nNodes - 1 // node 0 stays the admin throughout
	var seeded []string
	joinerOwned := 0
	for n := 0; len(seeded) < 8 || joinerOwned < 2; n++ {
		if n > 256 {
			return fmt.Errorf("chaos: membership key selection did not converge")
		}
		k := fmt.Sprintf("chaos/mem-%03d", n)
		ownsJoiner := false
		for _, o := range joinedRing.Nodes(k, 2) {
			ownsJoiner = ownsJoiner || o == direct[joiner]
		}
		if len(seeded) >= 8 && !ownsJoiner {
			continue
		}
		if ownsJoiner {
			joinerOwned++
		}
		seeded = append(seeded, k)
		for _, o := range oldRing.Nodes(k, 2) {
			if perr := putSyntheticArtifact(ctx, o, k, "chaos-membership"); perr != nil {
				return perr
			}
		}
	}

	// Phase 1: asymmetric partitions, one direction at a time, against the
	// client's first-choice proxy for the hot key. Outbound: requests arrive
	// but answers vanish. Inbound: requests vanish. Both hang rather than
	// refuse — only the attempt budget gets the client off the dead wire.
	victim := 0
	head := ring.New(proxyURLs, 0, daed.DefaultRingSeed).Primary(mustKey(hot))
	for i, u := range proxyURLs {
		if u == head {
			victim = i
		}
	}
	proxies[victim].PartitionOneWay(chaosnet.DirOutbound)
	if err := mustServe("outbound-partition", 5); err != nil {
		return err
	}
	proxies[victim].Heal()
	proxies[victim].PartitionOneWay(chaosnet.DirInbound)
	if err := mustServe("inbound-partition", 4); err != nil {
		return err
	}
	proxies[victim].Heal()

	// Phase 2: a cold node joins mid-load.
	admin := &daed.Client{Base: direct[0]}
	jr, err := admin.Join(ctx, direct[joiner])
	if err != nil {
		return fmt.Errorf("chaos: membership join: %w", err)
	}
	if err := mustServe("join", 4); err != nil {
		return err
	}
	if err := waitCond(ctx, 15*time.Second, "joiner converges with its owned envelopes", func() bool {
		if r, rerr := admin.Ring(ctx); rerr != nil || r.Epoch < jr.Epoch {
			return false
		}
		for _, k := range seeded {
			owns := false
			for _, o := range joinedRing.Nodes(k, 2) {
				owns = owns || o == direct[joiner]
			}
			if owns && !peerHasArtifact(ctx, direct[joiner], k) {
				return false
			}
		}
		return true
	}); err != nil {
		return err
	}

	// Phase 3: an original member leaves and drains mid-load.
	if _, err := admin.Leave(ctx, direct[leaver]); err != nil {
		return fmt.Errorf("chaos: membership leave: %w", err)
	}
	if err := mustServe("leave", 5); err != nil {
		return err
	}

	// The repair machinery must have demonstrably moved envelopes.
	var moved int64
	for _, s := range srvs {
		st := s.Stats()
		moved += st.Warmed + st.RepairPushed + st.HandedOff + st.ReadRepairs
	}
	if moved == 0 {
		return fmt.Errorf("chaos: membership drill moved no envelopes (warmup, repair, and handoff all idle)")
	}
	if r, rerr := admin.Ring(ctx); rerr != nil || r.Epoch < jr.Epoch+1 {
		return fmt.Errorf("chaos: membership epoch did not advance past the leave (ring %+v, err %v)", r, rerr)
	}
	if got := cl.Counters(); got.Failovers == 0 {
		return fmt.Errorf("chaos: membership drill recorded no failovers despite partitions and a drained node: %+v", got)
	}
	return nil
}

func mustKey(req *daed.SimulateRequest) string {
	k, _ := req.Key()
	return k
}

// putSyntheticArtifact installs one synthetic simulate envelope through a
// node's peer replication sink — the same path repair and handoff use.
func putSyntheticArtifact(ctx context.Context, nodeURL, key, report string) error {
	payload, _ := json.Marshal(map[string]string{"app": "CG", "report": report})
	body, _ := json.Marshal(daed.ArtifactPutRequest{Key: key, Payload: payload})
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, nodeURL+"/v1/artifact", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("chaos: seed artifact on %s: %w", nodeURL, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("chaos: seed artifact on %s: status %d", nodeURL, resp.StatusCode)
	}
	return nil
}

// peerHasArtifact probes one node for key presence (HEAD /v1/artifact).
func peerHasArtifact(ctx context.Context, nodeURL, key string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, nodeURL+"/v1/artifact?key="+key, nil)
	if err != nil {
		return false
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// waitCond polls cond until it holds or the bound passes.
func waitCond(ctx context.Context, d time.Duration, what string, cond func() bool) error {
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) || ctx.Err() != nil {
			return fmt.Errorf("chaos: timed out waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil
}
