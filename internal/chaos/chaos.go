// Package chaos is the randomized soak harness for the supervised DAE
// runtime. A Soak builds a small two-task workload once, then drives many
// randomized iterations of the runtime under fault injection — access-phase
// and execute-phase traps, panics, exhausted budgets, plain errors, and
// (optionally) on-disk trace-cache corruption — checking the supervision
// invariants after every run:
//
//   - no iteration hangs (each run is bounded by a watchdog context);
//   - fault-free runs are byte-identical to the fault-free baseline trace,
//     whatever the degradation mode;
//   - an access-phase fault degrades the run instead of failing it, the
//     faulted task type is quarantined with the fault's class, and the
//     quarantine is monotone (a quarantined task type never runs its access
//     variant again within the run);
//   - an execute-phase fault always surfaces as an error — supervision never
//     masks it — while DegradeFull still completes the rest of the batch;
//   - the computed output stays correct whenever the runtime reports success;
//   - the evaluation layer accepts every degraded trace it is handed.
//
// Everything is driven by a single seed: the same Config reproduces the same
// iteration sequence, so a soak failure is replayable from its log line.
package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"reflect"
	"strings"
	"sync"
	"time"

	"dae/internal/bench"
	"dae/internal/dae"
	"dae/internal/daed"
	"dae/internal/eval"
	"dae/internal/fault"
	"dae/internal/fault/inject"
	"dae/internal/interp"
	"dae/internal/rt"
)

// soakSrc is the soak workload: two independent affine streaming tasks, both
// idempotent (outputs are pure functions of untouched inputs), so the heap
// can be reused across iterations without rebuilding.
const soakSrc = `
task triad(float A[n], float B[n], float C[n], int n, int lo, int hi) {
	for (int i = lo; i < hi; i++) {
		A[i] = B[i] + 2.5 * C[i];
	}
}

task scale(float D[n], float B[n], int n, int lo, int hi) {
	for (int i = lo; i < hi; i++) {
		D[i] = 0.5 * B[i];
	}
}
`

// Config parameterizes a soak. The zero value is usable: a short,
// deterministic soak with seed 0.
type Config struct {
	// Seed drives every random choice; equal Configs reproduce equal soaks.
	Seed int64
	// Iterations is the number of randomized runtime iterations. When 0,
	// Duration bounds the soak instead; when both are 0, 32 iterations run.
	Iterations int
	// Duration bounds the soak by wall clock when Iterations is 0. The soak
	// always completes at least one iteration.
	Duration time.Duration
	// IterTimeout is the per-iteration hang watchdog (default 30s). An
	// iteration exceeding it is reported as a hang, the worst invariant
	// violation.
	IterTimeout time.Duration
	// CacheSoak additionally exercises trace-cache corruption through the
	// evaluation layer (one benchmark collection, corrupt the entries,
	// re-collect). It is optional because it costs a few seconds.
	CacheSoak bool
	// ServerSoak additionally exercises the daed service path: an in-process
	// server takes a concurrent burst of identical, tenant-poisoned, and
	// client-canceled requests, and the scenario checks request singleflight,
	// per-tenant quarantine isolation, and worker-slot recovery. Optional for
	// the same reason as CacheSoak.
	ServerSoak bool
	// ClusterSoak additionally runs the network-chaos cluster drill: a
	// 3-node replicated daed cluster behind chaosnet fault-injecting proxies,
	// with one node hard-killed mid-run — zero accepted requests lost,
	// byte-identical answers across failover, tenant isolation intact.
	ClusterSoak bool
	// MembershipSoak additionally runs the membership-churn drill: a
	// replicated cluster under load while asymmetric one-way partitions
	// open and heal, a cold node joins, and an original member leaves and
	// drains — zero accepted requests lost, byte-identical answers across
	// epochs, and the repair machinery demonstrably moving envelopes.
	MembershipSoak bool
	// Log, when non-nil, receives one progress line per scenario class.
	Log func(format string, args ...any)
}

// Report summarizes a completed soak.
type Report struct {
	Iterations   int
	Healthy      int // fault-free iterations (byte-identity checked)
	AccessFaults int // iterations with an access-phase fault (degraded)
	ExecFaults   int // iterations with an execute-phase fault (surfaced)
	Mixed        int // iterations with both
	Quarantines  int // total task types quarantined across iterations
	CacheRuns    int // cache-corruption scenarios exercised
	ServerRuns   int // daed service-path scenarios exercised
	ClusterRuns  int // network-chaos cluster drills exercised
	// MembershipRuns counts membership-churn drills exercised.
	MembershipRuns int
}

// String renders the report as one line.
func (r *Report) String() string {
	return fmt.Sprintf("chaos: %d iterations (%d healthy, %d access-fault, %d exec-fault, %d mixed), %d quarantines, %d cache runs, %d server runs, %d cluster runs, %d membership runs",
		r.Iterations, r.Healthy, r.AccessFaults, r.ExecFaults, r.Mixed, r.Quarantines, r.CacheRuns, r.ServerRuns, r.ClusterRuns, r.MembershipRuns)
}

// scenario is the fault shape of one iteration.
type scenario int

const (
	scenHealthy scenario = iota
	scenAccess
	scenExec
	scenMixed
)

// modeClass maps an injection mode to the fault class the quarantine should
// record.
func modeClass(m inject.Mode) string { return m.String() }

// soakState is the prebuilt workload shared by all iterations.
type soakState struct {
	w        *rt.Workload
	heap     *interp.Heap
	total    int
	tasks    []string // task type names, for random targeting
	baseline []byte   // fault-free trace bytes
}

// buildSoak constructs the soak workload: total elements chunked into tasks
// of chunk elements, the two task types interleaved across two batches.
func buildSoak(total, chunk int) (*soakState, error) {
	opts := dae.Defaults()
	opts.ParamHints = map[string]int64{"n": int64(total), "lo": 0, "hi": int64(chunk)}
	w, results, err := rt.BuildWorkload("chaos-soak", soakSrc, opts)
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"triad", "scale"} {
		if results[name].Access == nil {
			return nil, fmt.Errorf("chaos: no access version for %s: %s", name, results[name].Reason)
		}
	}
	h := interp.NewHeap()
	a := h.AllocFloat("A", total)
	b := h.AllocFloat("B", total)
	c := h.AllocFloat("C", total)
	d := h.AllocFloat("D", total)
	for i := 0; i < total; i++ {
		b.F[i] = float64(i)
		c.F[i] = float64(2 * i)
	}
	var b1, b2 []rt.Task
	for lo := 0; lo < total; lo += chunk {
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		n, l, h2 := interp.Int(int64(total)), interp.Int(int64(lo)), interp.Int(int64(hi))
		triad := rt.Task{Name: "triad", Args: []interp.Value{interp.Ptr(a), interp.Ptr(b), interp.Ptr(c), n, l, h2}}
		scale := rt.Task{Name: "scale", Args: []interp.Value{interp.Ptr(d), interp.Ptr(b), n, l, h2}}
		if (lo/chunk)%2 == 0 {
			b1 = append(b1, triad, scale)
		} else {
			b2 = append(b2, triad, scale)
		}
	}
	w.Batches = [][]rt.Task{b1, b2}
	return &soakState{w: w, heap: h, total: total, tasks: []string{"triad", "scale"}}, nil
}

// verifyOutput checks the soak arrays against the reference computation.
func (s *soakState) verifyOutput() error {
	segs := s.heap.Segs()
	a, b, c, d := segs[0], segs[1], segs[2], segs[3]
	for i := 0; i < s.total; i += 251 {
		if want := b.F[i] + 2.5*c.F[i]; math.Abs(a.F[i]-want) > 1e-9 {
			return fmt.Errorf("chaos: A[%d] = %g, want %g", i, a.F[i], want)
		}
		if want := 0.5 * b.F[i]; math.Abs(d.F[i]-want) > 1e-9 {
			return fmt.Errorf("chaos: D[%d] = %g, want %g", i, d.F[i], want)
		}
	}
	return nil
}

// checkQuarantineMonotone verifies that once a task type is degraded, every
// later record of that type is degraded too — the supervisor never re-enables
// a quarantined access variant within a run.
func checkQuarantineMonotone(tr *rt.Trace) error {
	quarantined := make(map[string]bool)
	for i := range tr.Records {
		rec := &tr.Records[i]
		if rec.Degraded {
			quarantined[rec.Name] = true
			continue
		}
		if quarantined[rec.Name] {
			return fmt.Errorf("chaos: task %s record %d ran healthy after quarantine", rec.Name, i)
		}
	}
	for name, class := range tr.Quarantined {
		if class == "" {
			return fmt.Errorf("chaos: quarantined task %s has empty fault class", name)
		}
	}
	return nil
}

// modeSentinel maps an injection mode to the fault sentinel an execute-phase
// failure must match (nil for ModeError, which stays unclassified).
func modeSentinel(m inject.Mode) error {
	switch m {
	case inject.ModePanic:
		return fault.ErrPanic
	case inject.ModeTrap:
		return fault.ErrTrap
	case inject.ModeStepBudget:
		return fault.ErrStepBudget
	case inject.ModeHeapBudget:
		return fault.ErrHeapBudget
	case inject.ModeTimeout:
		return fault.ErrTimeout
	}
	return nil
}

// randomMode draws a fault shape (and trap kind) for one rule.
func randomMode(rng *rand.Rand) (inject.Mode, fault.TrapKind) {
	switch rng.Intn(5) {
	case 0:
		return inject.ModePanic, fault.TrapNone
	case 1:
		traps := []fault.TrapKind{fault.TrapDivByZero, fault.TrapOutOfBounds, fault.TrapNilDeref}
		return inject.ModeTrap, traps[rng.Intn(len(traps))]
	case 2:
		return inject.ModeStepBudget, fault.TrapNone
	case 3:
		return inject.ModeHeapBudget, fault.TrapNone
	default:
		return inject.ModeError, fault.TrapNone
	}
}

// Soak runs the randomized fault soak and returns its report. A non-nil
// error is an invariant violation (or a setup failure), formatted with the
// seed and iteration needed to reproduce it.
func Soak(cfg Config) (*Report, error) {
	iterTimeout := cfg.IterTimeout
	if iterTimeout <= 0 {
		iterTimeout = 30 * time.Second
	}
	iters := cfg.Iterations
	if iters <= 0 && cfg.Duration <= 0 {
		iters = 32
	}

	st, err := buildSoak(4096, 256)
	if err != nil {
		return nil, err
	}

	// Fault-free baseline: the byte-identity reference for healthy runs.
	base := rt.DefaultTraceConfig()
	base.Decoupled = true
	base.Degrade = rt.DegradeAccess
	ctx, cancel := context.WithTimeout(context.Background(), iterTimeout)
	btr, err := rt.RunContext(ctx, st.w, base)
	cancel()
	if err != nil {
		return nil, fmt.Errorf("chaos: fault-free baseline failed: %w", err)
	}
	if st.baseline, err = rt.EncodeTrace(btr); err != nil {
		return nil, err
	}
	if err := st.verifyOutput(); err != nil {
		return nil, fmt.Errorf("chaos: baseline output wrong: %w", err)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := &Report{}
	start := time.Now()
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// cacheAt schedules the (expensive) cache-corruption scenario at one
	// random point of the soak. Drawn unconditionally so the iteration
	// stream is identical with and without CacheSoak.
	cacheAt := rng.Intn(1000)

	for it := 0; ; it++ {
		if iters > 0 {
			if it >= iters {
				break
			}
		} else if it > 0 && time.Since(start) >= cfg.Duration {
			break
		}
		if err := soakIteration(st, rng, iterTimeout, rep, logf); err != nil {
			return rep, fmt.Errorf("seed %d iteration %d: %w", cfg.Seed, it, err)
		}
		rep.Iterations++
		if cfg.CacheSoak && rep.CacheRuns == 0 && (iters > 0 && it == cacheAt%iters || iters <= 0 && it == 0) {
			if err := cacheScenario(rng, iterTimeout); err != nil {
				return rep, fmt.Errorf("seed %d cache scenario: %w", cfg.Seed, err)
			}
			rep.CacheRuns++
			logf("chaos: cache-corruption scenario ok")
		}
		if cfg.ServerSoak && rep.ServerRuns == 0 && (iters > 0 && it == cacheAt%iters || iters <= 0 && it == 0) {
			if err := serverScenario(iterTimeout); err != nil {
				return rep, fmt.Errorf("seed %d server scenario: %w", cfg.Seed, err)
			}
			rep.ServerRuns++
			logf("chaos: server-path scenario ok")
		}
		if cfg.ClusterSoak && rep.ClusterRuns == 0 && (iters > 0 && it == cacheAt%iters || iters <= 0 && it == 0) {
			if err := clusterScenario(cfg.Seed, iterTimeout); err != nil {
				return rep, fmt.Errorf("seed %d cluster scenario: %w", cfg.Seed, err)
			}
			rep.ClusterRuns++
			logf("chaos: cluster network-chaos scenario ok")
		}
		if cfg.MembershipSoak && rep.MembershipRuns == 0 && (iters > 0 && it == cacheAt%iters || iters <= 0 && it == 0) {
			if err := membershipScenario(cfg.Seed, iterTimeout); err != nil {
				return rep, fmt.Errorf("seed %d membership scenario: %w", cfg.Seed, err)
			}
			rep.MembershipRuns++
			logf("chaos: membership-churn scenario ok")
		}
	}
	return rep, nil
}

// soakIteration runs one randomized scenario and checks its invariants.
func soakIteration(st *soakState, rng *rand.Rand, iterTimeout time.Duration, rep *Report, logf func(string, ...any)) error {
	var scen scenario
	switch r := rng.Intn(10); {
	case r < 3:
		scen = scenHealthy
	case r < 7:
		scen = scenAccess
	case r < 9:
		scen = scenExec
	default:
		scen = scenMixed
	}

	cfg := rt.DefaultTraceConfig()
	cfg.Decoupled = true

	var rules []inject.Rule
	accessTask, execTask := "", ""
	var accessMode, execMode inject.Mode
	switch scen {
	case scenHealthy:
		// Any degradation mode: a healthy run must be identical in all.
		cfg.Degrade = rt.DegradeMode(rng.Intn(3))
	case scenAccess:
		cfg.Degrade = rt.DegradeAccess
		if rng.Intn(2) == 1 {
			cfg.Degrade = rt.DegradeFull
		}
		accessTask = st.tasks[rng.Intn(len(st.tasks))]
		var trap fault.TrapKind
		accessMode, trap = randomMode(rng)
		rules = append(rules, inject.Rule{Site: inject.SiteAccessPhase, Task: accessTask,
			Mode: accessMode, Trap: trap, Once: true})
	case scenExec:
		// Every mode must surface an execute fault, including DegradeOff.
		cfg.Degrade = rt.DegradeMode(rng.Intn(3))
		execTask = st.tasks[rng.Intn(len(st.tasks))]
		var trap fault.TrapKind
		execMode, trap = randomMode(rng)
		rules = append(rules, inject.Rule{Site: inject.SiteExecPhase, Task: execTask,
			Mode: execMode, Trap: trap, Once: true})
	case scenMixed:
		cfg.Degrade = rt.DegradeFull
		accessTask, execTask = st.tasks[0], st.tasks[1]
		if rng.Intn(2) == 1 {
			accessTask, execTask = execTask, accessTask
		}
		var atrap, etrap fault.TrapKind
		accessMode, atrap = randomMode(rng)
		execMode, etrap = randomMode(rng)
		rules = append(rules,
			inject.Rule{Site: inject.SiteAccessPhase, Task: accessTask, Mode: accessMode, Trap: atrap, Once: true},
			inject.Rule{Site: inject.SiteExecPhase, Task: execTask, Mode: execMode, Trap: etrap, Once: true})
	}

	in := inject.New(rules...)
	if len(rules) > 0 {
		hook := in.PhaseFunc()
		cfg.PhaseHook = func(task string, access bool) error {
			return hook("chaos-soak", "compiler-dae", task, access)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), iterTimeout)
	tr, err := rt.RunContext(ctx, st.w, cfg)
	hung := ctx.Err() != nil &&
		(errors.Is(err, context.DeadlineExceeded) || errors.Is(err, fault.ErrTimeout))
	cancel()
	if hung {
		return fmt.Errorf("chaos: %v scenario hung (watchdog %s)", scen, iterTimeout)
	}

	switch scen {
	case scenHealthy:
		if err != nil {
			return fmt.Errorf("chaos: healthy run failed: %w", err)
		}
		b, eerr := rt.EncodeTrace(tr)
		if eerr != nil {
			return eerr
		}
		if !bytes.Equal(b, st.baseline) {
			return fmt.Errorf("chaos: healthy run (degrade=%s) diverged from fault-free baseline", cfg.Degrade)
		}
		rep.Healthy++

	case scenAccess:
		if err != nil {
			return fmt.Errorf("chaos: access-phase %s fault was not degraded: %w", accessMode, err)
		}
		if len(in.Fired()) == 0 {
			return fmt.Errorf("chaos: access rule for %s never fired", accessTask)
		}
		class, ok := tr.Quarantined[accessTask]
		if !ok {
			return fmt.Errorf("chaos: task %s not quarantined after access %s fault (quarantine %v)",
				accessTask, accessMode, tr.Quarantined)
		}
		if want := modeClass(accessMode); class != want {
			return fmt.Errorf("chaos: task %s quarantined as %q, want %q", accessTask, class, want)
		}
		if err := checkQuarantineMonotone(tr); err != nil {
			return err
		}
		if err := st.verifyOutput(); err != nil {
			return fmt.Errorf("chaos: degraded run corrupted output: %w", err)
		}
		// The evaluation layer must account the degraded trace.
		met := rt.Evaluate(tr, rt.DefaultMachine(), rt.PolicyOptimalEDP)
		if met.DegradedTasks == 0 {
			return fmt.Errorf("chaos: Evaluate lost the degraded tasks of %s", accessTask)
		}
		rep.AccessFaults++
		rep.Quarantines += len(tr.Quarantined)

	case scenExec, scenMixed:
		execFired := false
		for _, at := range in.Fired() {
			if strings.HasPrefix(at, string(inject.SiteExecPhase)+"/") {
				execFired = true
			}
		}
		if !execFired {
			return fmt.Errorf("chaos: exec rule for %s never fired", execTask)
		}
		if err == nil {
			return fmt.Errorf("chaos: execute-phase %s fault on %s was masked (degrade=%s)",
				execMode, execTask, cfg.Degrade)
		}
		if s := modeSentinel(execMode); s != nil && !errors.Is(err, s) {
			return fmt.Errorf("chaos: execute fault lost its class (%s): %w", execMode, err)
		}
		if cfg.Degrade == rt.DegradeFull {
			// Containment: the batch still completed around the failed task.
			if tr == nil {
				return fmt.Errorf("chaos: DegradeFull dropped the trace on an execute fault")
			}
			failed := 0
			for i := range tr.Records {
				if tr.Records[i].Failed {
					failed++
				}
			}
			if failed == 0 {
				return fmt.Errorf("chaos: DegradeFull surfaced an error but marked no task failed")
			}
			if err := checkQuarantineMonotone(tr); err != nil {
				return err
			}
			met := rt.Evaluate(tr, rt.DefaultMachine(), rt.PolicyOptimalEDP)
			if met.FailedTasks != failed {
				return fmt.Errorf("chaos: Evaluate counted %d failed tasks, trace has %d", met.FailedTasks, failed)
			}
		}
		if scen == scenExec {
			rep.ExecFaults++
		} else {
			rep.Mixed++
			if tr != nil {
				rep.Quarantines += len(tr.Quarantined)
			}
		}
	}
	if (rep.Iterations+1)%16 == 0 {
		logf("chaos: %d iterations so far", rep.Iterations+1)
	}
	return nil
}

// cacheScenario exercises trace-cache corruption end to end: collect a
// benchmark into a disk cache, damage every entry (torn write or bit flip),
// and re-collect — the checksummed cache must turn the damage into clean
// misses and reproduce the identical traces.
func cacheScenario(rng *rand.Rand, iterTimeout time.Duration) error {
	app, err := bench.AppByName("LibQ")
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "chaos-cache-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg := rt.DefaultTraceConfig()
	ctx, cancel := context.WithTimeout(context.Background(), 4*iterTimeout)
	defer cancel()
	first, err := eval.CollectWith(ctx, app, cfg, eval.CollectOptions{Workers: 3, Cache: eval.NewTraceCache(dir)})
	if err != nil {
		return fmt.Errorf("chaos: cache warm-up collection: %w", err)
	}
	truncate := rng.Intn(2) == 1
	n, err := inject.CorruptCacheDir(dir, truncate)
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("chaos: cache scenario corrupted no entries")
	}
	second, err := eval.CollectWith(ctx, app, cfg, eval.CollectOptions{Workers: 3, Cache: eval.NewTraceCache(dir)})
	if err != nil {
		return fmt.Errorf("chaos: corrupted cache (truncate=%t) broke re-collection: %w", truncate, err)
	}
	if !reflect.DeepEqual(first.Auto, second.Auto) || !reflect.DeepEqual(first.CAE, second.CAE) {
		return fmt.Errorf("chaos: re-collection after cache corruption diverged")
	}
	return nil
}

// serverScenario exercises the daed service path end to end over one
// ephemeral in-process server: a concurrent burst of identical requests
// (which must collapse onto a single pipeline execution and return
// byte-identical reports), a tenant whose injected fault must be
// quarantined without leaking to other tenants or the shared store, and a
// client cancellation whose worker slot must free. Any violation — a lost
// request, a cross-tenant leak, a wedged gauge — fails the soak.
func serverScenario(iterTimeout time.Duration) error {
	dir, err := os.MkdirTemp("", "chaos-daed-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: daed.New(daed.Config{Workers: 2, Dir: dir})}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	ctx, cancel := context.WithTimeout(context.Background(), 4*iterTimeout)
	defer cancel()
	clean := &daed.Client{Base: base}

	// Burst of identical requests: request singleflight plus the artifact
	// store must reduce them to exactly one execution.
	const burst = 12
	reports := make([]string, burst)
	errs := make([]error, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := clean.Simulate(ctx, &daed.SimulateRequest{App: "CG"})
			if err != nil {
				errs[i] = err
				return
			}
			reports[i] = resp.Report
		}(i)
	}
	wg.Wait()
	for i := 0; i < burst; i++ {
		if errs[i] != nil {
			return fmt.Errorf("chaos: server burst request %d lost: %w", i, errs[i])
		}
		if reports[i] != reports[0] {
			return fmt.Errorf("chaos: server burst request %d diverged from request 0", i)
		}
	}
	st, err := clean.Stats(ctx)
	if err != nil {
		return fmt.Errorf("chaos: server stats: %w", err)
	}
	if st.Executions != 1 {
		return fmt.Errorf("chaos: %d identical requests ran %d executions, want 1", burst, st.Executions)
	}

	// Tenant poisoning: the injected fault degrades the chaos tenant only.
	chaosTenant := &daed.Client{Base: base, Tenant: "chaos"}
	poisoned, err := chaosTenant.Simulate(ctx, &daed.SimulateRequest{
		App: "CG", Inject: "access-phase,CG,compiler-dae,,trap!",
	})
	if err != nil {
		return fmt.Errorf("chaos: injected server request: %w", err)
	}
	if !poisoned.Degraded || len(poisoned.Quarantined) == 0 {
		return fmt.Errorf("chaos: injected access fault not quarantined by the server")
	}
	after, err := clean.Simulate(ctx, &daed.SimulateRequest{App: "CG"})
	if err != nil {
		return fmt.Errorf("chaos: clean-tenant request after poisoning: %w", err)
	}
	if after.Degraded || after.Report != reports[0] {
		return fmt.Errorf("chaos: tenant poison leaked to the default tenant (degraded=%t, identical=%t)",
			after.Degraded, after.Report == reports[0])
	}

	// Client cancellation: a cold request abandoned mid-collection must free
	// its worker slot; the server keeps serving and its gauges drain.
	shortCtx, shortCancel := context.WithTimeout(ctx, 20*time.Millisecond)
	_, err = clean.Simulate(shortCtx, &daed.SimulateRequest{App: "LU"})
	shortCancel()
	if err == nil {
		return fmt.Errorf("chaos: 20ms-canceled cold request reported success")
	}
	if _, err := clean.Simulate(ctx, &daed.SimulateRequest{App: "CG"}); err != nil {
		return fmt.Errorf("chaos: server wedged after client cancellation: %w", err)
	}
	deadline := time.Now().Add(iterTimeout)
	for {
		st, err = clean.Stats(ctx)
		if err != nil {
			return fmt.Errorf("chaos: server stats after cancellation: %w", err)
		}
		if st.InFlight == 0 && st.Waiting == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: server gauges wedged after cancellation: inFlight=%d waiting=%d",
				st.InFlight, st.Waiting)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
