package chaos

import (
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"
)

// checkGoroutines fails the test if the soak leaked goroutines. The runtime
// is single-threaded per run and the collection pools drain on return, so
// the count must settle back to the pre-soak level.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d before soak, %d after", before, runtime.NumGoroutine())
}

// TestSoakShort is the tier-1 smoke: a fixed-seed randomized soak must
// uphold every supervision invariant and leak nothing.
func TestSoakShort(t *testing.T) {
	before := runtime.NumGoroutine()
	rep, err := Soak(Config{Seed: 1, Iterations: 48, IterTimeout: 20 * time.Second})
	if err != nil {
		t.Fatalf("invariant violation: %v", err)
	}
	if rep.Iterations != 48 {
		t.Fatalf("iterations = %d, want 48", rep.Iterations)
	}
	if got := rep.Healthy + rep.AccessFaults + rep.ExecFaults + rep.Mixed; got != rep.Iterations {
		t.Errorf("scenario counts sum to %d, want %d: %s", got, rep.Iterations, rep)
	}
	// With 48 draws at 30/40/20/10%, every scenario class occurs (the seed
	// is fixed, so this is a deterministic fact, not a flaky probability).
	if rep.Healthy == 0 || rep.AccessFaults == 0 || rep.ExecFaults == 0 || rep.Mixed == 0 {
		t.Errorf("a scenario class never ran: %s", rep)
	}
	if rep.Quarantines == 0 {
		t.Errorf("no quarantine ever happened: %s", rep)
	}
	checkGoroutines(t, before)
	t.Log(rep.String())
}

// TestSoakReproducible: the same seed reproduces the same soak, scenario by
// scenario — the property that makes a chaos failure debuggable.
func TestSoakReproducible(t *testing.T) {
	cfg := Config{Seed: 42, Iterations: 24, IterTimeout: 20 * time.Second}
	a, err := Soak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Soak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("same seed, different soaks:\n  %s\n  %s", a, b)
	}
}

// TestSoakTimed is the CI chaos job and the long local soak: set
// CHAOS_SOAK_SECONDS to enable (the CI smoke uses 30). It adds the
// trace-cache corruption scenario on top of the runtime iterations.
func TestSoakTimed(t *testing.T) {
	secs, err := strconv.Atoi(os.Getenv("CHAOS_SOAK_SECONDS"))
	if err != nil || secs <= 0 {
		t.Skip("set CHAOS_SOAK_SECONDS to run the timed soak")
	}
	before := runtime.NumGoroutine()
	rep, err := Soak(Config{
		Seed:        7,
		Duration:    time.Duration(secs) * time.Second,
		IterTimeout: 60 * time.Second,
		CacheSoak:      true,
		ServerSoak:     true,
		ClusterSoak:    true,
		MembershipSoak: true,
		Log:            t.Logf,
	})
	if err != nil {
		t.Fatalf("invariant violation: %v", err)
	}
	if rep.Iterations == 0 {
		t.Fatal("timed soak ran no iterations")
	}
	if rep.CacheRuns != 1 {
		t.Errorf("cache-corruption scenario ran %d times, want 1", rep.CacheRuns)
	}
	if rep.ServerRuns != 1 {
		t.Errorf("server-path scenario ran %d times, want 1", rep.ServerRuns)
	}
	if rep.ClusterRuns != 1 {
		t.Errorf("cluster network-chaos scenario ran %d times, want 1", rep.ClusterRuns)
	}
	if rep.MembershipRuns != 1 {
		t.Errorf("membership-churn scenario ran %d times, want 1", rep.MembershipRuns)
	}
	checkGoroutines(t, before)
	t.Log(rep.String())
}

// TestClusterScenario runs the network-chaos cluster drill directly: a
// 3-node replicated daed cluster behind chaosnet proxies, one node killed
// mid-run, zero accepted requests lost and byte-identical answers across
// failover.
func TestClusterScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 3-node cluster and runs pipeline executions")
	}
	if err := clusterScenario(13, 30*time.Second); err != nil {
		t.Fatalf("cluster drill invariant violation: %v", err)
	}
}

// TestMembershipScenario runs the membership-churn drill directly: load
// through one-way partitions, a cold node joining, an original member
// leaving — zero accepted requests lost and repair demonstrably moving
// envelopes across epochs.
func TestMembershipScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 4-node cluster and runs pipeline executions")
	}
	if err := membershipScenario(29, 30*time.Second); err != nil {
		t.Fatalf("membership drill invariant violation: %v", err)
	}
}
