package interp

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"dae/internal/fault"
)

// TestStepBudgetStopsInfiniteLoop is the acceptance scenario: a TaskC task
// that never terminates must return fault.ErrStepBudget — naming the
// function and the instruction it stopped at — instead of hanging.
func TestStepBudgetStopsInfiniteLoop(t *testing.T) {
	m := compileSrc(t, `
task spin(int n) {
	int i = 0;
	while (i < n || 1 == 1) {
		i = i + 1;
	}
}`)
	env := NewEnv(NewProgram(m), nil)
	env.SetMaxSteps(10_000)
	done := make(chan error, 1)
	go func() {
		_, err := env.Call(m.Func("spin"), Int(4))
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, fault.ErrStepBudget) {
			t.Fatalf("want ErrStepBudget, got %v", err)
		}
		var fe *fault.Error
		if !errors.As(err, &fe) {
			t.Fatalf("not a *fault.Error: %v", err)
		}
		if fe.Func != "spin" {
			t.Errorf("fault names function %q, want spin", fe.Func)
		}
		if fe.Pos == "" {
			t.Error("fault carries no instruction position")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("interpreter hung despite step budget")
	}
}

// TestStepBudgetCoversNestedCalls: fuel is shared across the whole call
// tree, so a helper cannot reset the caller's budget.
func TestStepBudgetCoversNestedCalls(t *testing.T) {
	m := compileSrc(t, `
int work(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) {
		s = s + i;
	}
	return s;
}
int outer(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) {
		s = s + work(n);
	}
	return s;
}`)
	env := NewEnv(NewProgram(m), nil)
	env.SetMaxSteps(500)
	if _, err := env.Call(m.Func("outer"), Int(100)); !errors.Is(err, fault.ErrStepBudget) {
		t.Fatalf("want ErrStepBudget, got %v", err)
	}
	// A generous budget lets the same call finish, and the env is reusable.
	env.SetMaxSteps(10_000_000)
	out, err := env.Call(m.Func("outer"), Int(10))
	if err != nil {
		t.Fatalf("unexpected error with large budget: %v", err)
	}
	if got := out.Int64(); got != 450 {
		t.Errorf("outer(10) = %d, want 450", got)
	}
}

// TestStepBudgetDoesNotChangeResults: the budget machinery must be inert for
// runs that fit it.
func TestStepBudgetDoesNotChangeResults(t *testing.T) {
	m := compileSrc(t, `
int f(int n) {
	int s = 0;
	for (int i = 1; i <= n; i++) {
		s = s + i * i;
	}
	return s;
}`)
	plain := NewEnv(NewProgram(m), nil)
	want, err := plain.Call(m.Func("f"), Int(100))
	if err != nil {
		t.Fatal(err)
	}
	budgeted := NewEnv(NewProgram(m), nil)
	budgeted.SetMaxSteps(1 << 30)
	budgeted.SetContext(context.Background())
	got, err := budgeted.Call(m.Func("f"), Int(100))
	if err != nil {
		t.Fatal(err)
	}
	if want.Int64() != got.Int64() {
		t.Errorf("budgeted run computed %d, want %d", got.Int64(), want.Int64())
	}
	if plain.Counts() != budgeted.Counts() {
		t.Errorf("instruction counts differ: %+v vs %+v", plain.Counts(), budgeted.Counts())
	}
}

// TestContextCancelsRun: a context deadline interrupts an in-flight call
// with a fault.ErrTimeout that wraps the context error.
func TestContextCancelsRun(t *testing.T) {
	m := compileSrc(t, `
task spin(int n) {
	int i = 0;
	while (i < n || 1 == 1) {
		i = i + 1;
	}
}`)
	env := NewEnv(NewProgram(m), nil)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	env.SetContext(ctx)
	done := make(chan error, 1)
	go func() {
		_, err := env.Call(m.Func("spin"), Int(4))
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, fault.ErrTimeout) {
			t.Fatalf("want ErrTimeout, got %v", err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("timeout fault does not wrap the context error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("interpreter ignored the context deadline")
	}

	// A context that is already done rejects the call up front.
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	env2 := NewEnv(NewProgram(m), nil)
	env2.SetContext(cctx)
	if _, err := env2.Call(m.Func("spin"), Int(4)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled context not honored: %v", err)
	}
}

// TestTrapErrors: traps are typed, classified, and carry segment, offset,
// and instruction position.
func TestTrapErrors(t *testing.T) {
	m := compileSrc(t, `
float oob(float A[n], int n) { return A[n]; }
int div(int a, int b) { return a / b; }`)
	prog := NewProgram(m)

	h := NewHeap()
	a := h.AllocFloat("A", 8)
	env := NewEnv(prog, nil)
	_, err := env.Call(m.Func("oob"), Ptr(a), Int(8))
	if !errors.Is(err, fault.ErrTrap) {
		t.Fatalf("want ErrTrap, got %v", err)
	}
	if fault.TrapOf(err) != fault.TrapOutOfBounds {
		t.Errorf("trap kind = %v, want out-of-bounds", fault.TrapOf(err))
	}
	for _, want := range []string{"seg=A", "off=8", "len=8", "@oob", "load"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("trap %q missing %q", err, want)
		}
	}

	_, err = NewEnv(prog, nil).Call(m.Func("div"), Int(1), Int(0))
	if fault.TrapOf(err) != fault.TrapDivByZero {
		t.Fatalf("want div-by-zero trap, got %v", err)
	}

	// A nil segment pointer is a nil-deref trap, not an out-of-bounds one.
	_, err = NewEnv(prog, nil).Call(m.Func("oob"), Ptr(nil), Int(0))
	if fault.TrapOf(err) != fault.TrapNilDeref {
		t.Fatalf("want nil-deref trap, got %v", err)
	}
}

// TestHeapBudget: the byte cap fails allocations with typed errors, and the
// legacy panicking API raises the same *fault.Error for boundary recovery.
func TestHeapBudget(t *testing.T) {
	h := NewHeap()
	h.SetBudget(1024)
	if _, err := h.TryAllocFloat("ok", 64); err != nil { // 512 bytes
		t.Fatalf("within budget: %v", err)
	}
	_, err := h.TryAllocInt("big", 128) // another 1024 bytes: over
	if !errors.Is(err, fault.ErrHeapBudget) {
		t.Fatalf("want ErrHeapBudget, got %v", err)
	}
	if !strings.Contains(err.Error(), `"big"`) {
		t.Errorf("budget error does not name the allocation: %v", err)
	}
	if got := len(h.Segs()); got != 1 {
		t.Errorf("failed alloc left %d segments, want 1", got)
	}

	var rec error
	func() {
		defer fault.Recover(&rec, "compile")
		h.AllocFloat("huge", 1<<20)
	}()
	if !errors.Is(rec, fault.ErrHeapBudget) {
		t.Fatalf("panicking alloc not recovered as heap-budget fault: %v", rec)
	}
}
