package interp

import (
	"fmt"

	"dae/internal/fault"
	"dae/internal/ir"
)

// Prepared is an engine-bound, resolution-free handle on one function. The
// rt batch dispatcher prepares each task function once per core and then
// invokes it once per task, so the per-task hot path carries no map lookup
// or compile check — only frame setup and execution. A Prepared is tied to
// its Env (not safe for concurrent use, like the Env itself) and keeps the
// engine it was prepared with even if the Env's engine changes later.
type Prepared struct {
	env *Env
	fn  *ir.Func
	tc  *code  // tree engine
	bc  *bcode // bytecode engine
}

// Prepare resolves f on the Env's current engine.
func (e *Env) Prepare(f *ir.Func) (*Prepared, error) {
	p := &Prepared{env: e, fn: f}
	if e.engine == EngineTree {
		c, err := e.compiledMemo(f)
		if err != nil {
			return nil, err
		}
		p.tc = c
		return p, nil
	}
	b, err := e.bytecodeMemo(f)
	if err != nil {
		return nil, err
	}
	p.bc = b
	return p, nil
}

// Call invokes the prepared function. Check ordering, step accounting, and
// every error string are identical to Env.Call.
func (p *Prepared) Call(args ...Value) (Value, error) {
	e := p.env
	if e.ctx != nil {
		if err := e.ctx.Err(); err != nil {
			return Value{}, &fault.Error{Kind: fault.KindTimeout, Func: p.fn.Name, Err: err}
		}
	}
	e.steps = 0
	e.armCheck()
	if len(args) != len(p.fn.Params) {
		return Value{}, fmt.Errorf("interp: call @%s with %d args, want %d", p.fn.Name, len(args), len(p.fn.Params))
	}
	if p.bc != nil {
		out, err := e.brun(p.bc, args)
		if err != nil {
			return Value{}, err
		}
		return retValue(p.fn, out), nil
	}
	if cap(e.callArgs) < len(args) {
		e.callArgs = make([]val, len(args))
	}
	vs := e.callArgs[:len(args)]
	for i, a := range args {
		vs[i] = a.v
	}
	out, err := e.run(p.tc, vs)
	if err != nil {
		return Value{}, err
	}
	return retValue(p.fn, out), nil
}
