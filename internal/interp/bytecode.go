package interp

import (
	"fmt"
	"sort"
	"strings"

	"dae/internal/ir"
)

// Engine selects which execution engine an Env runs compiled functions on.
//
// The register-bytecode VM (EngineBytecode, the default) executes a compact
// flat instruction array with typed register planes, superinstructions for
// the dominant op pairs, and the cache probe fused into the memory
// instructions. The compiled-op interpreter (EngineTree) is the original
// engine, kept as a differential oracle: both engines are required to
// produce byte-identical traces, counts, step accounting and typed faults on
// every program.
type Engine uint8

// Engines.
const (
	EngineBytecode Engine = iota
	EngineTree
)

// String returns the CLI spelling of the engine.
func (e Engine) String() string {
	if e == EngineTree {
		return "tree"
	}
	return "bytecode"
}

// ParseEngine parses the CLI spelling ("bytecode", "tree").
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "bytecode":
		return EngineBytecode, nil
	case "tree":
		return EngineTree, nil
	}
	return EngineBytecode, fmt.Errorf("interp: unknown engine %q (want bytecode or tree)", s)
}

// bop enumerates the bytecode opcodes. The first block is a 1:1 lowering of
// the compiled-op kinds; the final block is the superinstruction set, chosen
// from the measured dynamic op-pair histogram (see OpStats): cmp feeding the
// immediately-following conditional branch, the induction-variable increment
// feeding a loop back-edge, and a load followed by a prefetch (the signature
// pair of access phases).
type bop uint8

const (
	bBinI     bop = iota // ri[dst] = ri[a] <aux:ir.BinOp> ri[b]
	bBinF                // rf[dst] = rf[a] <aux:ir.BinOp> rf[b]
	bCmpI                // ri[dst] = cmp<aux:ir.CmpPred>(ri[a], ri[b])
	bCmpF                // ri[dst] = cmp<aux:ir.CmpPred>(rf[a], rf[b])
	bCastIF              // rf[dst] = float64(ri[a])
	bCastFI              // ri[dst] = int64(rf[a])
	bMath                // rf[dst] = <aux:ir.MathOp>(rf[a])
	bSelI                // ri[dst] = ri[a] != 0 ? ri[b] : ri[c]
	bSelF                // rf[dst] = ri[a] != 0 ? rf[b] : rf[c]
	bSelP                // rp[dst] = ri[a] != 0 ? rp[b] : rp[c]
	bLoadF               // rf[dst] = *rp[a]
	bLoadI               // ri[dst] = *rp[a]
	bStoreF              // *rp[b] = rf[a]
	bStoreI              // *rp[b] = ri[a]
	bPrefetch            // prefetch rp[a]
	bGEP1                // rp[dst] = rp[a] + ri[b] (single-index GEP)
	bGEP                 // rp[dst] = rp[a] + horner(pool[b:], c indices)
	bCall                // call callees[c] with moves[a:a+b] arg copies; result -> plane<aux>[dst]
	bBr                  // jump arms[a]
	bCondBr              // ri[a] != 0 ? arms[b] : arms[b+1]
	bRet                 // return plane<aux>[a] (a < 0: void)
	bNop
	// Superinstructions (two fused component ops each; src2 carries the
	// second component's IR instruction for faults and hooks).
	bCmpBrI   // ri[dst] = cmp<aux>(ri[a], ri[b]); branch arms[c]/arms[c+1]
	bCmpBrF   // ri[dst] = cmp<aux>(rf[a], rf[b]); branch arms[c]/arms[c+1]
	bIncBr    // ri[dst] = ri[a] + ri[b]; jump arms[c]
	bLoadPreF // rf[dst] = *rp[a]; prefetch rp[b]
	bLoadPreI // ri[dst] = *rp[a]; prefetch rp[b]
	// Address-compute fusion: a GEP whose result immediately feeds the
	// following memory op (gep->loadF alone is the hottest measured pair).
	// The GEP result register is still written — later ops may reuse it.
	bGEPLoadF  // rp[dst] = rp[a]+ri[b]; rf[c] = *rp[dst]
	bGEPLoadI  // rp[dst] = rp[a]+ri[b]; ri[c] = *rp[dst]
	bGEPPre    // rp[dst] = rp[a]+ri[b]; prefetch rp[dst]
	bGEPNLoadF // rp[dst] = rp[a]+horner(pool[b:], c); rf[d] = *rp[dst]
	bGEPNLoadI // rp[dst] = rp[a]+horner(pool[b:], c); ri[d] = *rp[dst]
	bGEPNPre   // rp[dst] = rp[a]+horner(pool[b:], c); prefetch rp[dst]
	// Float ALU fusion: back-to-back float binops where the second consumes
	// the first's result (multiply-add chains in the numeric kernels).
	bBinFF // rf[dst] = rf[a]<aux>rf[b]; rf[d] = rf[dst]<aux2>rf[c] (or swapped)
	// Back-edge fusion (four components): the induction increment, the loop
	// back-edge, and the loop-header compare-and-branch it jumps to. The
	// header instruction itself stays in place for its other predecessors;
	// the fused op merely inlines the unconditional continuation, so the pair
	// incBr->cmpBrI (the hottest pair in the bytecode stream, ~14% of all
	// dispatches) costs one dispatch per iteration instead of two. Operands
	// beyond the increment live in the pool: [backArm, cmpDst, cmpX, cmpY,
	// condArmBase].
	bIncCmpBr // ri[dst]=ri[a]+ri[b]; moves[backArm]; cmp; branch
)

// binFFRight, set in aux2, marks that the first component's result is the
// RIGHT operand of the second: rf[d] = rf[c] <op2> rf[dst].
const binFFRight = 0x80

// plane identifies a typed register file: the bytecode VM splits the
// all-purpose 32-byte val registers of the tree engine into dense int64,
// float64 and ptr planes, quartering register-file traffic for scalar code.
type plane uint8

const (
	planeI plane = iota
	planeF
	planeP
	planeNone
)

// binstr is one fixed-width bytecode instruction (24 bytes, vs ~200 for the
// tree engine's cop): all operands are plane-local register indices or pool
// offsets, and branch targets are resolved instruction offsets. aux2 and d
// carry the second component of three-address superinstructions (bBinFF, the
// multi-index GEP fusions); they are zero elsewhere.
type binstr struct {
	op         bop
	aux, aux2  uint8
	dst        int32
	a, b, c, d int32
}

// bmove is one typed register copy, used for phi edge moves and call
// argument passing (caller register -> callee parameter register).
type bmove struct {
	src, dst int32
	pl       plane
}

// barm is one branch edge: the resolved target offset and the phi move list
// for the edge.
type barm struct {
	target     int32
	moff, mlen int32
}

// bconst is a register pre-initialized with a constant at frame entry.
type bconst struct {
	reg int32
	pl  plane
	i   int64
	f   float64
}

// balloca is a pointer register pre-initialized with a frame-local stack
// slot at frame entry.
type balloca struct {
	reg  int32
	elem ElemKind
	slot int64
}

// paramReg locates one parameter in the callee's register planes.
type paramReg struct {
	reg int32
	pl  plane
}

// bcode is a function body compiled to register bytecode.
type bcode struct {
	fn      *ir.Func
	ins     []binstr
	src     []ir.Instr // per-pc originating IR instruction (faults, hooks)
	src2    []ir.Instr // second component of a fused pair, nil otherwise
	src3    []ir.Instr // third/fourth components (bIncCmpBr only); allocated
	src4    []ir.Instr // lazily by the back-edge fusion pass
	pool    []int32    // multi-index GEP operands: idx0, dim1, idx1, ...
	moves   []bmove    // phi edge and call argument copies
	arms    []barm
	callees []*bcode
	consts  []bconst
	allocas []balloca
	params  []paramReg

	nI, nF, nP       int // register-plane sizes
	nStackF, nStackI int
	maxMoves         int
}

// OpStats is the dynamic opcode histogram of a tree-engine execution: how
// often each compiled op ran, and how often each ordered pair of ops ran
// back to back in the dynamic instruction stream. The histogram is the
// measurement that justifies the bytecode engine's superinstruction set
// (fuse the hottest pairs), surfaced by `daebench -opstats`.
type OpStats struct {
	Ops   [numOpKinds]int64
	Pairs [numOpKinds][numOpKinds]int64
}

// Merge accumulates other into s.
func (s *OpStats) Merge(other *OpStats) {
	for i := range s.Ops {
		s.Ops[i] += other.Ops[i]
	}
	for i := range s.Pairs {
		for j := range s.Pairs[i] {
			s.Pairs[i][j] += other.Pairs[i][j]
		}
	}
}

// Total returns the total dynamic op count.
func (s *OpStats) Total() int64 {
	var n int64
	for _, v := range s.Ops {
		n += v
	}
	return n
}

// opNames spells the compiled-op kinds in histogram output.
var opNames = [numOpKinds]string{
	opBinI: "binI", opBinF: "binF", opCmpI: "cmpI", opCmpF: "cmpF",
	opCastIF: "castIF", opCastFI: "castFI", opMath: "math",
	opSelect: "select", opLoadF: "loadF", opLoadI: "loadI",
	opStoreF: "storeF", opStoreI: "storeI", opPrefetch: "prefetch",
	opGEP: "gep", opCall: "call", opBr: "br", opCondBr: "condbr",
	opRet: "ret", opNop: "nop",
}

// topPairs is how many op pairs Format lists.
const topPairs = 16

// Format renders the histogram as two tables: every executed op sorted by
// dynamic count, then the topPairs hottest ordered op pairs. Output is
// deterministic (count-descending, name tie-break) so it can be golden
// tested.
func (s *OpStats) Format() string {
	var b strings.Builder
	total := s.Total()
	fmt.Fprintf(&b, "dynamic op histogram (%d ops executed)\n", total)
	fmt.Fprintf(&b, "  %-10s %14s %7s\n", "op", "count", "share")
	type row struct {
		name  string
		count int64
	}
	var ops []row
	for k, n := range s.Ops {
		if n > 0 {
			ops = append(ops, row{opNames[k], n})
		}
	}
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].count != ops[j].count {
			return ops[i].count > ops[j].count
		}
		return ops[i].name < ops[j].name
	})
	share := func(n int64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(n) / float64(total)
	}
	for _, r := range ops {
		fmt.Fprintf(&b, "  %-10s %14d %6.2f%%\n", r.name, r.count, share(r.count))
	}
	var pairs []row
	for i := range s.Pairs {
		for j, n := range s.Pairs[i] {
			if n > 0 {
				pairs = append(pairs, row{opNames[i] + "->" + opNames[j], n})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].count != pairs[j].count {
			return pairs[i].count > pairs[j].count
		}
		return pairs[i].name < pairs[j].name
	})
	if len(pairs) > topPairs {
		pairs = pairs[:topPairs]
	}
	fmt.Fprintf(&b, "top op pairs (%d shown)\n", len(pairs))
	fmt.Fprintf(&b, "  %-20s %14s %7s\n", "pair", "count", "share")
	for _, r := range pairs {
		fmt.Fprintf(&b, "  %-20s %14d %6.2f%%\n", r.name, r.count, share(r.count))
	}
	return b.String()
}
