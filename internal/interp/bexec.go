package interp

import (
	"fmt"
	"math"

	"dae/internal/fault"
	"dae/internal/ir"
	"dae/internal/mem"
)

// bframe is the reusable per-call state of the bytecode VM: three typed
// register planes, per-plane phi parallel-copy scratch, and the frame-local
// alloca segments. Seg structs are embedded so alloca pointers (&f.segF)
// stay valid for the frame's lifetime.
type bframe struct {
	ri   []int64
	rf   []float64
	rp   []ptr
	tmpI []int64
	tmpF []float64
	tmpP []ptr
	segF Seg
	segI Seg
}

func sizedI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func sizedF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func sizedPtr(s []ptr, n int) []ptr {
	if cap(s) < n {
		return make([]ptr, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// getBFrame pops (or creates) a frame and sizes it for bc. Register planes
// and stack slots are zeroed so reuse is observationally identical to fresh
// allocation; the move scratch is write-before-read and only needs capacity.
func (e *Env) getBFrame(bc *bcode) *bframe {
	var f *bframe
	if n := len(e.bfree); n > 0 {
		f = e.bfree[n-1]
		e.bfree = e.bfree[:n-1]
	} else {
		f = &bframe{segF: Seg{Elem: FloatElem, Stack: true}, segI: Seg{Elem: IntElem, Stack: true}}
	}
	f.ri = sizedI64(f.ri, bc.nI)
	f.rf = sizedF64(f.rf, bc.nF)
	f.rp = sizedPtr(f.rp, bc.nP)
	if cap(f.tmpI) < bc.maxMoves {
		f.tmpI = make([]int64, bc.maxMoves)
	}
	if cap(f.tmpF) < bc.maxMoves {
		f.tmpF = make([]float64, bc.maxMoves)
	}
	if cap(f.tmpP) < bc.maxMoves {
		f.tmpP = make([]ptr, bc.maxMoves)
	}
	f.segF.F = sizedF64(f.segF.F, bc.nStackF)
	f.segI.I = sizedI64(f.segI.I, bc.nStackI)
	return f
}

func (e *Env) putBFrame(f *bframe) { e.bfree = append(e.bfree, f) }

// callBytecode is Call on the register-bytecode engine. Control flow,
// ordering of checks, and every error string mirror callTree exactly.
func (e *Env) callBytecode(f *ir.Func, args ...Value) (Value, error) {
	if e.ctx != nil {
		if err := e.ctx.Err(); err != nil {
			return Value{}, &fault.Error{Kind: fault.KindTimeout, Func: f.Name, Err: err}
		}
	}
	bc, err := e.bytecodeMemo(f)
	if err != nil {
		return Value{}, err
	}
	e.steps = 0
	e.armCheck()
	if len(args) != len(f.Params) {
		return Value{}, fmt.Errorf("interp: call @%s with %d args, want %d", f.Name, len(args), len(f.Params))
	}
	out, err := e.brun(bc, args)
	if err != nil {
		return Value{}, err
	}
	return retValue(f, out), nil
}

// brun executes bc in a pooled frame with top-level arguments placed into
// their parameter registers. The frame returns to the freelist on every exit
// path (results are scalars; nothing aliases the recycled stack segments).
func (e *Env) brun(bc *bcode, args []Value) (val, error) {
	fr := e.getBFrame(bc)
	for i, a := range args {
		pr := bc.params[i]
		switch pr.pl {
		case planeI:
			fr.ri[pr.reg] = a.v.i
		case planeF:
			fr.rf[pr.reg] = a.v.f
		default:
			fr.rp[pr.reg] = a.v.p
		}
	}
	v, err := e.bexec(bc, fr)
	e.putBFrame(fr)
	return v, err
}

// move1 performs a single-move branch edge: the dominant case (a loop-carried
// phi accumulator) on the numeric kernels' back edges. It is small enough to
// inline into the dispatch loop, so the per-iteration copy costs no call.
func move1(ri []int64, rf []float64, rp []ptr, bc *bcode, arm *barm) {
	m := &bc.moves[arm.moff]
	switch m.pl {
	case planeI:
		ri[m.dst] = ri[m.src]
	case planeF:
		rf[m.dst] = rf[m.src]
	default:
		rp[m.dst] = rp[m.src]
	}
}

// applyArm performs the phi parallel copies of one multi-move branch edge:
// every source is read before any destination is written (cyclic copies);
// planes never interact, so per-plane scratch preserves tree semantics.
// Call sites guard on mlen (zero-move edges are call-free, single moves go
// through the inlined move1), so only genuine parallel copies land here.
func applyArm(fr *bframe, bc *bcode, arm *barm) {
	ms := bc.moves[arm.moff : arm.moff+arm.mlen]
	var tI, tF, tP int
	for _, m := range ms {
		switch m.pl {
		case planeI:
			fr.tmpI[tI] = fr.ri[m.src]
			tI++
		case planeF:
			fr.tmpF[tF] = fr.rf[m.src]
			tF++
		default:
			fr.tmpP[tP] = fr.rp[m.src]
			tP++
		}
	}
	tI, tF, tP = 0, 0, 0
	for _, m := range ms {
		switch m.pl {
		case planeI:
			fr.ri[m.dst] = fr.tmpI[tI]
			tI++
		case planeF:
			fr.rf[m.dst] = fr.tmpF[tF]
			tF++
		default:
			fr.rp[m.dst] = fr.tmpP[tP]
			tP++
		}
	}
}

// bexec is the bytecode dispatch loop. Per executed component op (fused
// superinstructions count each component separately) it increments the step
// counter and runs the amortized budget/context check, keeping step
// accounting, budget faults, and timeout positions byte-identical to the
// tree engine. Memory instructions carry the fused cache probe: with a
// Hierarchy installed they feed it directly, skipping the Tracer interface.
//
// The step counter and check boundary live in locals (flushed to the Env at
// every exit, stepCheck, and call boundary) so the per-op accounting is a
// register increment instead of a heap read-modify-write.
func (e *Env) bexec(bc *bcode, fr *bframe) (val, error) {
	ri, rf, rp := fr.ri, fr.rf, fr.rp
	for _, ci := range bc.consts {
		if ci.pl == planeF {
			rf[ci.reg] = ci.f
		} else {
			ri[ci.reg] = ci.i
		}
	}
	// Frame-local stack segments for allocas: marked Stack, no memory events.
	for _, a := range bc.allocas {
		if a.elem == FloatElem {
			rp[a.reg] = ptr{seg: &fr.segF, off: a.slot}
		} else {
			rp[a.reg] = ptr{seg: &fr.segI, off: a.slot}
		}
	}

	cnt := &e.counts
	hier, tracer, prefHook := e.hier, e.tracer, e.prefHook
	steps, checkAt := e.steps, e.checkAt
	ins := bc.ins
	pc := 0
	for pc < len(ins) {
		in := &ins[pc]
		steps++
		if steps >= checkAt {
			e.steps = steps
			if err := e.stepCheck(bc.fn.Name, bc.src[pc]); err != nil {
				return val{}, err
			}
			checkAt = e.checkAt
		}
		switch in.op {
		case bBinI:
			x, y := ri[in.a], ri[in.b]
			var r int64
			switch ir.BinOp(in.aux) {
			case ir.IAdd:
				r = x + y
			case ir.ISub:
				r = x - y
			case ir.IMul:
				r = x * y
			case ir.IDiv:
				if y == 0 {
					e.steps = steps
					return val{}, trap(fault.TrapDivByZero, bc.fn.Name, bc.src[pc], "interp: integer division by zero")
				}
				r = x / y
			case ir.IRem:
				if y == 0 {
					e.steps = steps
					return val{}, trap(fault.TrapDivByZero, bc.fn.Name, bc.src[pc], "interp: integer remainder by zero")
				}
				r = x % y
			case ir.IAnd:
				r = x & y
			case ir.IOr:
				r = x | y
			case ir.IXor:
				r = x ^ y
			case ir.IShl:
				r = x << uint64(y&63)
			case ir.IShr:
				r = x >> uint64(y&63)
			case ir.IMin:
				r = x
				if y < x {
					r = y
				}
			default: // IMax
				r = x
				if y > x {
					r = y
				}
			}
			ri[in.dst] = r
			cnt.Int++

		case bBinF:
			x, y := rf[in.a], rf[in.b]
			var r float64
			switch ir.BinOp(in.aux) {
			case ir.FAdd:
				r = x + y
			case ir.FSub:
				r = x - y
			case ir.FMul:
				r = x * y
			default: // FDiv
				rf[in.dst] = x / y
				cnt.FloatDiv++
				pc++
				continue
			}
			rf[in.dst] = r
			cnt.Float++

		case bCmpI:
			ri[in.dst] = b2i(cmpI(ir.CmpPred(in.aux), ri[in.a], ri[in.b]))
			cnt.Int++

		case bCmpF:
			ri[in.dst] = b2i(cmpF(ir.CmpPred(in.aux), rf[in.a], rf[in.b]))
			cnt.Int++

		case bCastIF:
			rf[in.dst] = float64(ri[in.a])
			cnt.Int++

		case bCastFI:
			ri[in.dst] = int64(rf[in.a])
			cnt.Int++

		case bMath:
			x := rf[in.a]
			var r float64
			switch ir.MathOp(in.aux) {
			case ir.Sqrt:
				r = math.Sqrt(x)
			case ir.Sin:
				r = math.Sin(x)
			case ir.Cos:
				r = math.Cos(x)
			case ir.Fabs:
				r = math.Abs(x)
			case ir.Exp:
				r = math.Exp(x)
			case ir.Log:
				r = math.Log(x)
			default: // Floor
				r = math.Floor(x)
			}
			rf[in.dst] = r
			cnt.MathOps++

		case bSelI:
			if ri[in.a] != 0 {
				ri[in.dst] = ri[in.b]
			} else {
				ri[in.dst] = ri[in.c]
			}
			cnt.Int++

		case bSelF:
			if ri[in.a] != 0 {
				rf[in.dst] = rf[in.b]
			} else {
				rf[in.dst] = rf[in.c]
			}
			cnt.Int++

		case bSelP:
			if ri[in.a] != 0 {
				rp[in.dst] = rp[in.b]
			} else {
				rp[in.dst] = rp[in.c]
			}
			cnt.Int++

		case bLoadF:
			p := rp[in.a]
			if !p.inBounds() {
				e.steps = steps
				return val{}, memTrap(bc.fn.Name, bc.src[pc], "load", p)
			}
			rf[in.dst] = p.seg.F[p.off]
			cnt.Loads++
			if !p.seg.Stack {
				if hier != nil {
					if a := p.addr(); !hier.AccessHit(a, mem.Load) {
						hier.Access(a, mem.Load)
					}
				} else if tracer != nil {
					tracer.Load(p.addr())
				}
			}

		case bLoadI:
			p := rp[in.a]
			if !p.inBounds() {
				e.steps = steps
				return val{}, memTrap(bc.fn.Name, bc.src[pc], "load", p)
			}
			ri[in.dst] = p.seg.I[p.off]
			cnt.Loads++
			if !p.seg.Stack {
				if hier != nil {
					if a := p.addr(); !hier.AccessHit(a, mem.Load) {
						hier.Access(a, mem.Load)
					}
				} else if tracer != nil {
					tracer.Load(p.addr())
				}
			}

		case bStoreF:
			p := rp[in.b]
			if !p.inBounds() {
				e.steps = steps
				return val{}, memTrap(bc.fn.Name, bc.src[pc], "store", p)
			}
			p.seg.F[p.off] = rf[in.a]
			cnt.Stores++
			if !p.seg.Stack {
				if hier != nil {
					if a := p.addr(); !hier.AccessHit(a, mem.Store) {
						hier.Access(a, mem.Store)
					}
				} else if tracer != nil {
					tracer.Store(p.addr())
				}
			}

		case bStoreI:
			p := rp[in.b]
			if !p.inBounds() {
				e.steps = steps
				return val{}, memTrap(bc.fn.Name, bc.src[pc], "store", p)
			}
			p.seg.I[p.off] = ri[in.a]
			cnt.Stores++
			if !p.seg.Stack {
				if hier != nil {
					if a := p.addr(); !hier.AccessHit(a, mem.Store) {
						hier.Access(a, mem.Store)
					}
				} else if tracer != nil {
					tracer.Store(p.addr())
				}
			}

		case bPrefetch:
			// Prefetches never fault: out-of-bounds prefetches are dropped,
			// matching the non-binding semantics of builtin_prefetch.
			p := rp[in.a]
			cnt.Prefetches++
			if p.inBounds() && !p.seg.Stack {
				if prefHook != nil {
					prefHook(bc.src[pc], p.addr())
				} else if hier != nil {
					if a := p.addr(); !hier.AccessHit(a, mem.Prefetch) {
						hier.Access(a, mem.Prefetch)
					}
				} else if tracer != nil {
					tracer.Prefetch(p.addr())
				}
			}

		case bGEP1:
			p := rp[in.a]
			rp[in.dst] = ptr{seg: p.seg, off: p.off + ri[in.b]}
			cnt.GEPs++

		case bGEP:
			base := rp[in.a]
			pool := bc.pool[in.b:]
			off := ri[pool[0]]
			for k := 1; k < int(in.c); k++ {
				off = off*ri[pool[2*k-1]] + ri[pool[2*k]]
			}
			rp[in.dst] = ptr{seg: base.seg, off: base.off + off}
			cnt.GEPs++

		case bCall:
			cb := bc.callees[in.c]
			fr2 := e.getBFrame(cb)
			for _, m := range bc.moves[in.a : in.a+in.b] {
				switch m.pl {
				case planeI:
					fr2.ri[m.dst] = ri[m.src]
				case planeF:
					fr2.rf[m.dst] = rf[m.src]
				default:
					fr2.rp[m.dst] = rp[m.src]
				}
			}
			e.steps = steps
			out, err := e.bexec(cb, fr2)
			e.putBFrame(fr2)
			if err != nil {
				return val{}, err
			}
			steps, checkAt = e.steps, e.checkAt
			switch plane(in.aux) {
			case planeI:
				ri[in.dst] = out.i
			case planeF:
				rf[in.dst] = out.f
			case planeP:
				rp[in.dst] = out.p
			}
			cnt.Calls++

		case bBr:
			arm := &bc.arms[in.a]
			if arm.mlen == 1 {
				move1(ri, rf, rp, bc, arm)
			} else if arm.mlen != 0 {
				applyArm(fr, bc, arm)
			}
			cnt.Branches++
			pc = int(arm.target)
			continue

		case bCondBr:
			arm := &bc.arms[in.b]
			if ri[in.a] == 0 {
				arm = &bc.arms[in.b+1]
			}
			if arm.mlen == 1 {
				move1(ri, rf, rp, bc, arm)
			} else if arm.mlen != 0 {
				applyArm(fr, bc, arm)
			}
			cnt.Branches++
			pc = int(arm.target)
			continue

		case bRet:
			e.steps = steps
			switch plane(in.aux) {
			case planeI:
				return val{i: ri[in.a]}, nil
			case planeF:
				return val{f: rf[in.a]}, nil
			case planeP:
				return val{p: rp[in.a]}, nil
			}
			return val{}, nil

		case bNop:

		case bCmpBrI:
			x := b2i(cmpI(ir.CmpPred(in.aux), ri[in.a], ri[in.b]))
			ri[in.dst] = x
			cnt.Int++
			steps++
			if steps >= checkAt {
				e.steps = steps
				if err := e.stepCheck(bc.fn.Name, bc.src2[pc]); err != nil {
					return val{}, err
				}
				checkAt = e.checkAt
			}
			arm := &bc.arms[in.c]
			if x == 0 {
				arm = &bc.arms[in.c+1]
			}
			if arm.mlen == 1 {
				move1(ri, rf, rp, bc, arm)
			} else if arm.mlen != 0 {
				applyArm(fr, bc, arm)
			}
			cnt.Branches++
			pc = int(arm.target)
			continue

		case bCmpBrF:
			x := b2i(cmpF(ir.CmpPred(in.aux), rf[in.a], rf[in.b]))
			ri[in.dst] = x
			cnt.Int++
			steps++
			if steps >= checkAt {
				e.steps = steps
				if err := e.stepCheck(bc.fn.Name, bc.src2[pc]); err != nil {
					return val{}, err
				}
				checkAt = e.checkAt
			}
			arm := &bc.arms[in.c]
			if x == 0 {
				arm = &bc.arms[in.c+1]
			}
			if arm.mlen == 1 {
				move1(ri, rf, rp, bc, arm)
			} else if arm.mlen != 0 {
				applyArm(fr, bc, arm)
			}
			cnt.Branches++
			pc = int(arm.target)
			continue

		case bIncBr:
			ri[in.dst] = ri[in.a] + ri[in.b]
			cnt.Int++
			steps++
			if steps >= checkAt {
				e.steps = steps
				if err := e.stepCheck(bc.fn.Name, bc.src2[pc]); err != nil {
					return val{}, err
				}
				checkAt = e.checkAt
			}
			arm := &bc.arms[in.c]
			if arm.mlen == 1 {
				move1(ri, rf, rp, bc, arm)
			} else if arm.mlen != 0 {
				applyArm(fr, bc, arm)
			}
			cnt.Branches++
			pc = int(arm.target)
			continue

		case bIncCmpBr:
			ri[in.dst] = ri[in.a] + ri[in.b]
			cnt.Int++
			steps++
			if steps >= checkAt { // back-edge br component
				e.steps = steps
				if err := e.stepCheck(bc.fn.Name, bc.src2[pc]); err != nil {
					return val{}, err
				}
				checkAt = e.checkAt
			}
			po := bc.pool[in.c : in.c+5 : in.c+5]
			if arm := &bc.arms[po[0]]; arm.mlen == 1 {
				move1(ri, rf, rp, bc, arm)
			} else if arm.mlen != 0 {
				applyArm(fr, bc, arm)
			}
			cnt.Branches++
			steps++
			if steps >= checkAt { // header cmp component
				e.steps = steps
				if err := e.stepCheck(bc.fn.Name, bc.src3[pc]); err != nil {
					return val{}, err
				}
				checkAt = e.checkAt
			}
			x := b2i(cmpI(ir.CmpPred(in.aux), ri[po[2]], ri[po[3]]))
			ri[po[1]] = x
			cnt.Int++
			steps++
			if steps >= checkAt { // header condbr component
				e.steps = steps
				if err := e.stepCheck(bc.fn.Name, bc.src4[pc]); err != nil {
					return val{}, err
				}
				checkAt = e.checkAt
			}
			arm := &bc.arms[po[4]]
			if x == 0 {
				arm = &bc.arms[po[4]+1]
			}
			if arm.mlen == 1 {
				move1(ri, rf, rp, bc, arm)
			} else if arm.mlen != 0 {
				applyArm(fr, bc, arm)
			}
			cnt.Branches++
			pc = int(arm.target)
			continue

		case bLoadPreF:
			p := rp[in.a]
			if !p.inBounds() {
				e.steps = steps
				return val{}, memTrap(bc.fn.Name, bc.src[pc], "load", p)
			}
			rf[in.dst] = p.seg.F[p.off]
			cnt.Loads++
			if !p.seg.Stack {
				if hier != nil {
					if a := p.addr(); !hier.AccessHit(a, mem.Load) {
						hier.Access(a, mem.Load)
					}
				} else if tracer != nil {
					tracer.Load(p.addr())
				}
			}
			steps++
			if steps >= checkAt {
				e.steps = steps
				if err := e.stepCheck(bc.fn.Name, bc.src2[pc]); err != nil {
					return val{}, err
				}
				checkAt = e.checkAt
			}
			q := rp[in.b]
			cnt.Prefetches++
			if q.inBounds() && !q.seg.Stack {
				if prefHook != nil {
					prefHook(bc.src2[pc], q.addr())
				} else if hier != nil {
					if a := q.addr(); !hier.AccessHit(a, mem.Prefetch) {
						hier.Access(a, mem.Prefetch)
					}
				} else if tracer != nil {
					tracer.Prefetch(q.addr())
				}
			}

		case bLoadPreI:
			p := rp[in.a]
			if !p.inBounds() {
				e.steps = steps
				return val{}, memTrap(bc.fn.Name, bc.src[pc], "load", p)
			}
			ri[in.dst] = p.seg.I[p.off]
			cnt.Loads++
			if !p.seg.Stack {
				if hier != nil {
					if a := p.addr(); !hier.AccessHit(a, mem.Load) {
						hier.Access(a, mem.Load)
					}
				} else if tracer != nil {
					tracer.Load(p.addr())
				}
			}
			steps++
			if steps >= checkAt {
				e.steps = steps
				if err := e.stepCheck(bc.fn.Name, bc.src2[pc]); err != nil {
					return val{}, err
				}
				checkAt = e.checkAt
			}
			q := rp[in.b]
			cnt.Prefetches++
			if q.inBounds() && !q.seg.Stack {
				if prefHook != nil {
					prefHook(bc.src2[pc], q.addr())
				} else if hier != nil {
					if a := q.addr(); !hier.AccessHit(a, mem.Prefetch) {
						hier.Access(a, mem.Prefetch)
					}
				} else if tracer != nil {
					tracer.Prefetch(q.addr())
				}
			}

		case bGEPLoadF, bGEPLoadI, bGEPNLoadF, bGEPNLoadI:
			var p ptr
			if in.op == bGEPLoadF || in.op == bGEPLoadI {
				base := rp[in.a]
				p = ptr{seg: base.seg, off: base.off + ri[in.b]}
			} else {
				base := rp[in.a]
				pool := bc.pool[in.b:]
				off := ri[pool[0]]
				for k := 1; k < int(in.c); k++ {
					off = off*ri[pool[2*k-1]] + ri[pool[2*k]]
				}
				p = ptr{seg: base.seg, off: base.off + off}
			}
			rp[in.dst] = p
			cnt.GEPs++
			steps++
			if steps >= checkAt {
				e.steps = steps
				if err := e.stepCheck(bc.fn.Name, bc.src2[pc]); err != nil {
					return val{}, err
				}
				checkAt = e.checkAt
			}
			if !p.inBounds() {
				e.steps = steps
				return val{}, memTrap(bc.fn.Name, bc.src2[pc], "load", p)
			}
			switch in.op {
			case bGEPLoadF:
				rf[in.c] = p.seg.F[p.off]
			case bGEPLoadI:
				ri[in.c] = p.seg.I[p.off]
			case bGEPNLoadF:
				rf[in.d] = p.seg.F[p.off]
			default:
				ri[in.d] = p.seg.I[p.off]
			}
			cnt.Loads++
			if !p.seg.Stack {
				if hier != nil {
					if a := p.addr(); !hier.AccessHit(a, mem.Load) {
						hier.Access(a, mem.Load)
					}
				} else if tracer != nil {
					tracer.Load(p.addr())
				}
			}

		case bGEPPre, bGEPNPre:
			var p ptr
			if in.op == bGEPPre {
				base := rp[in.a]
				p = ptr{seg: base.seg, off: base.off + ri[in.b]}
			} else {
				base := rp[in.a]
				pool := bc.pool[in.b:]
				off := ri[pool[0]]
				for k := 1; k < int(in.c); k++ {
					off = off*ri[pool[2*k-1]] + ri[pool[2*k]]
				}
				p = ptr{seg: base.seg, off: base.off + off}
			}
			rp[in.dst] = p
			cnt.GEPs++
			steps++
			if steps >= checkAt {
				e.steps = steps
				if err := e.stepCheck(bc.fn.Name, bc.src2[pc]); err != nil {
					return val{}, err
				}
				checkAt = e.checkAt
			}
			cnt.Prefetches++
			if p.inBounds() && !p.seg.Stack {
				if prefHook != nil {
					prefHook(bc.src2[pc], p.addr())
				} else if hier != nil {
					if a := p.addr(); !hier.AccessHit(a, mem.Prefetch) {
						hier.Access(a, mem.Prefetch)
					}
				} else if tracer != nil {
					tracer.Prefetch(p.addr())
				}
			}

		case bBinFF:
			x, y := rf[in.a], rf[in.b]
			var r float64
			op1 := ir.BinOp(in.aux)
			switch op1 {
			case ir.FAdd:
				r = x + y
			case ir.FSub:
				r = x - y
			case ir.FMul:
				r = x * y
			default: // FDiv
				r = x / y
			}
			rf[in.dst] = r
			if op1 == ir.FDiv {
				cnt.FloatDiv++
			} else {
				cnt.Float++
			}
			steps++
			if steps >= checkAt {
				e.steps = steps
				if err := e.stepCheck(bc.fn.Name, bc.src2[pc]); err != nil {
					return val{}, err
				}
				checkAt = e.checkAt
			}
			x2, y2 := r, rf[in.c]
			if in.aux2&binFFRight != 0 {
				x2, y2 = y2, x2
			}
			var r2 float64
			op2 := ir.BinOp(in.aux2 &^ binFFRight)
			switch op2 {
			case ir.FAdd:
				r2 = x2 + y2
			case ir.FSub:
				r2 = x2 - y2
			case ir.FMul:
				r2 = x2 * y2
			default: // FDiv
				r2 = x2 / y2
			}
			rf[in.d] = r2
			if op2 == ir.FDiv {
				cnt.FloatDiv++
			} else {
				cnt.Float++
			}
		}
		pc++
	}
	e.steps = steps
	return val{}, fault.New(fault.KindVerify, "interp: fell off end of @%s", bc.fn.Name)
}
