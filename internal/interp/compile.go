package interp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dae/internal/ir"
)

// opKind enumerates the register-machine opcodes.
type opKind uint8

const (
	opBinI   opKind = iota // integer arithmetic; aux = ir.BinOp
	opBinF                 // float arithmetic; aux = ir.BinOp
	opCmpI                 // integer/bool compare; aux = ir.CmpPred
	opCmpF                 // float compare; aux = ir.CmpPred
	opCastIF               // int → float
	opCastFI               // float → int
	opMath                 // aux = ir.MathOp
	opSelect
	opLoadF
	opLoadI
	opStoreF
	opStoreI
	opPrefetch
	opGEP
	opCall
	opBr
	opCondBr
	opRet
	opNop
)

// numOpKinds sizes the OpStats histograms.
const numOpKinds = int(opNop) + 1

// move is one phi-edge register copy.
type move struct {
	src int
	dst int
}

// cop is one compiled operation.
type cop struct {
	kind opKind
	aux  uint8
	dst  int
	a    int
	b    int
	c    int
	// gep
	dims []int
	idx  []int
	// branch targets (code offsets) and their phi move lists
	t0, t1         int
	moves0, moves1 []move
	// call
	callee *code
	args   []int
	// src is the originating IR instruction: profiling attributes prefetch
	// events to it, and trap/budget faults report it as their position.
	src ir.Instr
}

// constReg is a register pre-initialized with a constant at frame entry.
type constReg struct {
	reg int
	v   val
}

// allocaReg is a register pre-initialized with a frame-local stack pointer.
type allocaReg struct {
	reg  int
	elem ElemKind
	slot int64 // element index within the frame's stack segment of that kind
}

// code is a compiled function body.
type code struct {
	fn        *ir.Func
	nregs     int
	regPlane  []plane // typed plane of each register, for the bytecode lowering
	params    []int   // register of each parameter
	consts    []constReg
	allocas   []allocaReg
	nStackF   int
	nStackI   int
	ops       []cop
	maxMoves  int
	hasResult bool
}

// Program compiles IR functions on demand and caches the result. Lookups
// read an immutable published snapshot through an atomic pointer, so
// parallel collection workers sharing one Program never contend on a lock in
// steady state; the mutex only serializes compilation of functions absent
// from the snapshot. The compiled code itself is immutable after
// construction.
type Program struct {
	mod *ir.Module

	// snap is the immutable prepared-program snapshot: a consistent pair of
	// maps rebuilt and republished after every compilation. Readers load it
	// lock-free; writers mutate the master maps below under mu and publish
	// fresh copies.
	snap atomic.Pointer[progSnap]

	mu     sync.Mutex
	cache  map[*ir.Func]*code  // master tree map; nil entry = in-progress (recursion guard)
	bcache map[*ir.Func]*bcode // master bytecode map; same guard convention
}

// progSnap is one immutable published view of the compilation caches.
type progSnap struct {
	tree map[*ir.Func]*code
	bc   map[*ir.Func]*bcode
}

// NewProgram returns a compilation cache for mod. The module is not copied;
// callers must not mutate functions after their first execution.
func NewProgram(mod *ir.Module) *Program {
	return &Program{
		mod:    mod,
		cache:  make(map[*ir.Func]*code),
		bcache: make(map[*ir.Func]*bcode),
	}
}

// compiled returns the compiled form of f.
func (p *Program) compiled(f *ir.Func) (*code, error) {
	if s := p.snap.Load(); s != nil {
		if c, ok := s.tree[f]; ok {
			return c, nil
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	c, err := p.compiledLocked(f)
	if err != nil {
		return nil, err
	}
	p.publishLocked()
	return c, nil
}

// bytecode returns the register-bytecode form of f, compiling (and caching)
// the tree form first: the bytecode is a translation of the compiled ops, so
// both engines agree structurally by construction.
func (p *Program) bytecode(f *ir.Func) (*bcode, error) {
	if s := p.snap.Load(); s != nil {
		if b, ok := s.bc[f]; ok {
			return b, nil
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	c, err := p.compiledLocked(f)
	if err != nil {
		return nil, err
	}
	b, err := p.bytecodeLocked(c)
	if err != nil {
		return nil, err
	}
	p.publishLocked()
	return b, nil
}

// publishLocked rebuilds and publishes the immutable snapshot from the
// master maps. In-progress (nil) entries are excluded.
func (p *Program) publishLocked() {
	s := &progSnap{
		tree: make(map[*ir.Func]*code, len(p.cache)),
		bc:   make(map[*ir.Func]*bcode, len(p.bcache)),
	}
	for f, c := range p.cache {
		if c != nil {
			s.tree[f] = c
		}
	}
	for f, b := range p.bcache {
		if b != nil {
			s.bc[f] = b
		}
	}
	p.snap.Store(s)
}

// bytecodeLocked translates c (and, recursively, its callees) under the lock.
func (p *Program) bytecodeLocked(c *code) (*bcode, error) {
	if b, ok := p.bcache[c.fn]; ok {
		if b == nil {
			return nil, fmt.Errorf("interp: recursive call to @%s", c.fn.Name)
		}
		return b, nil
	}
	p.bcache[c.fn] = nil // recursion guard (the tree compiler already rejects cycles)
	b, err := translate(p, c)
	if err != nil {
		delete(p.bcache, c.fn)
		return nil, err
	}
	p.bcache[c.fn] = b
	return b, nil
}

// compiledLocked is compiled without the lock; the compiler's recursive
// callee resolution runs entirely under the outer call's lock.
func (p *Program) compiledLocked(f *ir.Func) (*code, error) {
	if c, ok := p.cache[f]; ok {
		if c == nil {
			return nil, fmt.Errorf("interp: recursive call to @%s", f.Name)
		}
		return c, nil
	}
	p.cache[f] = nil // recursion guard
	c, err := p.compile(f)
	if err != nil {
		delete(p.cache, f)
		return nil, err
	}
	p.cache[f] = c
	return c, nil
}

type compiler struct {
	prog   *Program
	c      *code
	regOf  map[ir.Value]int
	blocks []*ir.Block
	bOff   map[*ir.Block]int

	// cur is the IR instruction being compiled; emit stamps it onto every op
	// so runtime faults can report their source position.
	cur ir.Instr

	// patch records ops whose branch targets must be resolved after layout.
	patch []patchEntry
}

type patchEntry struct {
	op     int
	b0, b1 *ir.Block
}

func (p *Program) compile(f *ir.Func) (*code, error) {
	cp := &compiler{
		prog:  p,
		c:     &code{fn: f, hasResult: !f.RetType.IsVoid()},
		regOf: make(map[ir.Value]int),
		bOff:  make(map[*ir.Block]int),
	}
	// Use only reachable blocks, entry first.
	cp.blocks = f.ReversePostorder()
	if len(cp.blocks) == 0 {
		return nil, fmt.Errorf("interp: function @%s has no blocks", f.Name)
	}

	for _, prm := range f.Params {
		cp.c.params = append(cp.c.params, cp.reg(prm))
	}

	// Assign registers to every instruction result and set up allocas.
	for _, b := range cp.blocks {
		for _, in := range b.Instrs {
			if in.Type().IsVoid() {
				continue
			}
			r := cp.reg(in)
			if a, ok := in.(*ir.Alloca); ok {
				elem := FloatElem
				slot := &cp.c.nStackF
				if !a.Type().Elem.IsFloat() {
					elem = IntElem
					slot = &cp.c.nStackI
				}
				cp.c.allocas = append(cp.c.allocas, allocaReg{reg: r, elem: elem, slot: int64(*slot)})
				*slot++
			}
		}
	}

	for _, b := range cp.blocks {
		cp.bOff[b] = len(cp.c.ops)
		for _, in := range b.Instrs {
			if err := cp.instr(b, in); err != nil {
				return nil, err
			}
		}
	}
	for i := range cp.c.ops {
		if n := len(cp.c.ops[i].moves0); n > cp.c.maxMoves {
			cp.c.maxMoves = n
		}
		if n := len(cp.c.ops[i].moves1); n > cp.c.maxMoves {
			cp.c.maxMoves = n
		}
	}
	// Patch branch targets.
	for _, pe := range cp.patch {
		op := &cp.c.ops[pe.op]
		if pe.b0 != nil {
			op.t0 = cp.bOff[pe.b0]
		}
		if pe.b1 != nil {
			op.t1 = cp.bOff[pe.b1]
		}
	}
	return cp.c, nil
}

// planeOf maps an IR type to the typed register plane that holds its values
// in the bytecode VM. Bools live in the integer plane as 0/1, matching the
// tree engine's val.i convention.
func planeOf(t *ir.Type) plane {
	switch {
	case t.IsFloat():
		return planeF
	case t.IsPtr():
		return planeP
	default:
		return planeI
	}
}

// reg returns the register index of v, allocating one if needed. Constants
// get a dedicated register recorded in the const-init list.
func (cp *compiler) reg(v ir.Value) int {
	if r, ok := cp.regOf[v]; ok {
		return r
	}
	r := cp.c.nregs
	cp.c.nregs++
	cp.regOf[v] = r
	cp.c.regPlane = append(cp.c.regPlane, planeOf(v.Type()))
	switch k := v.(type) {
	case *ir.ConstInt:
		cp.c.consts = append(cp.c.consts, constReg{reg: r, v: val{i: k.V}})
	case *ir.ConstFloat:
		cp.c.consts = append(cp.c.consts, constReg{reg: r, v: val{f: k.V}})
	case *ir.ConstBool:
		b := int64(0)
		if k.V {
			b = 1
		}
		cp.c.consts = append(cp.c.consts, constReg{reg: r, v: val{i: b}})
	}
	return r
}

// edgeMoves builds the phi copies for the CFG edge from → to.
func (cp *compiler) edgeMoves(from, to *ir.Block) []move {
	var ms []move
	for _, phi := range to.Phis() {
		in := phi.Incoming(from)
		if in == nil {
			continue
		}
		ms = append(ms, move{src: cp.reg(in), dst: cp.reg(phi)})
	}
	return ms
}

func (cp *compiler) emit(op cop) int {
	if op.src == nil {
		op.src = cp.cur
	}
	cp.c.ops = append(cp.c.ops, op)
	return len(cp.c.ops) - 1
}

func (cp *compiler) instr(b *ir.Block, in ir.Instr) error {
	cp.cur = in
	switch x := in.(type) {
	case *ir.Phi:
		return nil // handled by edge moves
	case *ir.Alloca:
		return nil // handled by frame setup

	case *ir.Bin:
		kind := opBinI
		if x.Op.IsFloat() {
			kind = opBinF
		}
		cp.emit(cop{kind: kind, aux: uint8(x.Op), dst: cp.reg(x), a: cp.reg(x.X), b: cp.reg(x.Y)})

	case *ir.Cmp:
		kind := opCmpI
		if x.X.Type().IsFloat() {
			kind = opCmpF
		}
		cp.emit(cop{kind: kind, aux: uint8(x.Pred), dst: cp.reg(x), a: cp.reg(x.X), b: cp.reg(x.Y)})

	case *ir.Cast:
		kind := opCastIF
		if x.Op == ir.FloatToInt {
			kind = opCastFI
		}
		cp.emit(cop{kind: kind, dst: cp.reg(x), a: cp.reg(x.X)})

	case *ir.Math:
		cp.emit(cop{kind: opMath, aux: uint8(x.Op), dst: cp.reg(x), a: cp.reg(x.X)})

	case *ir.Select:
		cp.emit(cop{kind: opSelect, dst: cp.reg(x), a: cp.reg(x.Cond), b: cp.reg(x.X), c: cp.reg(x.Y)})

	case *ir.Load:
		kind := opLoadF
		if !x.Type().IsFloat() {
			kind = opLoadI
		}
		cp.emit(cop{kind: kind, dst: cp.reg(x), a: cp.reg(x.Ptr)})

	case *ir.Store:
		kind := opStoreF
		if !x.Val.Type().IsFloat() {
			kind = opStoreI
		}
		cp.emit(cop{kind: kind, a: cp.reg(x.Val), b: cp.reg(x.Ptr)})

	case *ir.Prefetch:
		cp.emit(cop{kind: opPrefetch, a: cp.reg(x.Ptr), src: x})

	case *ir.GEP:
		dims := make([]int, len(x.Dims))
		for i, d := range x.Dims {
			dims[i] = cp.reg(d)
		}
		idx := make([]int, len(x.Idx))
		for i, v := range x.Idx {
			idx[i] = cp.reg(v)
		}
		cp.emit(cop{kind: opGEP, dst: cp.reg(x), a: cp.reg(x.Base), dims: dims, idx: idx})

	case *ir.Call:
		callee, err := cp.prog.compiledLocked(x.Callee)
		if err != nil {
			return err
		}
		args := make([]int, len(x.Args))
		for i, a := range x.Args {
			args[i] = cp.reg(a)
		}
		op := cop{kind: opCall, callee: callee, args: args}
		if !x.Type().IsVoid() {
			op.dst = cp.reg(x)
		} else {
			op.dst = -1
		}
		cp.emit(op)

	case *ir.Br:
		i := cp.emit(cop{kind: opBr, moves0: cp.edgeMoves(b, x.Target)})
		cp.patch = append(cp.patch, patchEntry{op: i, b0: x.Target})

	case *ir.CondBr:
		i := cp.emit(cop{
			kind:   opCondBr,
			a:      cp.reg(x.Cond),
			moves0: cp.edgeMoves(b, x.Then),
			moves1: cp.edgeMoves(b, x.Else),
		})
		cp.patch = append(cp.patch, patchEntry{op: i, b0: x.Then, b1: x.Else})

	case *ir.Ret:
		op := cop{kind: opRet, a: -1}
		if x.X != nil {
			op.a = cp.reg(x.X)
		}
		cp.emit(op)

	default:
		return fmt.Errorf("interp: cannot compile %T", in)
	}
	return nil
}
