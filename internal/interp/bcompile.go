package interp

import (
	"fmt"

	"dae/internal/ir"
)

// translate lowers a compiled-op function body to flat register bytecode in
// one pass: tree registers are remapped onto dense typed planes, branch
// targets become resolved instruction offsets (no block-pointer chasing),
// phi edge moves and call argument copies move into shared side pools, and
// the dominant op pairs from the measured histogram are fused into
// superinstructions. Callees are translated first (the call graph is acyclic;
// the tree compiler rejects recursion), so bCall references resolved *bcode.
func translate(p *Program, c *code) (*bcode, error) {
	var callees []*bcode
	calleeIdx := make(map[*code]int32)
	for i := range c.ops {
		op := &c.ops[i]
		if op.kind != opCall {
			continue
		}
		if _, ok := calleeIdx[op.callee]; ok {
			continue
		}
		cb, err := p.bytecodeLocked(op.callee)
		if err != nil {
			return nil, err
		}
		calleeIdx[op.callee] = int32(len(callees))
		callees = append(callees, cb)
	}

	bc := &bcode{
		fn:      c.fn,
		callees: callees,
		nStackF: c.nStackF,
		nStackI: c.nStackI,
	}

	// Remap every tree register onto a dense index in its typed plane.
	nreg := make([]int32, c.nregs)
	var nI, nF, nP int32
	for r := 0; r < c.nregs; r++ {
		switch c.regPlane[r] {
		case planeI:
			nreg[r] = nI
			nI++
		case planeF:
			nreg[r] = nF
			nF++
		default:
			nreg[r] = nP
			nP++
		}
	}
	bc.nI, bc.nF, bc.nP = int(nI), int(nF), int(nP)

	for _, pr := range c.params {
		bc.params = append(bc.params, paramReg{reg: nreg[pr], pl: c.regPlane[pr]})
	}
	for _, ci := range c.consts {
		bc.consts = append(bc.consts, bconst{
			reg: nreg[ci.reg], pl: c.regPlane[ci.reg], i: ci.v.i, f: ci.v.f,
		})
	}
	for _, a := range c.allocas {
		bc.allocas = append(bc.allocas, balloca{reg: nreg[a.reg], elem: a.elem, slot: a.slot})
	}

	// Superinstruction selection. consumed[i] marks an op absorbed as the
	// second component of the pair headed at i-1. A pair is only legal when
	// its second op is not a branch target; structurally that always holds
	// (blocks end in terminators and targets point at block starts, while
	// every pair head is a non-terminator), but the guard keeps the remap
	// sound even if the tree layout ever changes.
	isTarget := make([]bool, len(c.ops)+1)
	for i := range c.ops {
		switch c.ops[i].kind {
		case opBr:
			isTarget[c.ops[i].t0] = true
		case opCondBr:
			isTarget[c.ops[i].t0] = true
			isTarget[c.ops[i].t1] = true
		}
	}
	consumed := make([]bool, len(c.ops))
	fused := make([]bool, len(c.ops))
	for i := 0; i+1 < len(c.ops); i++ {
		if consumed[i] || isTarget[i+1] {
			continue
		}
		a, b := &c.ops[i], &c.ops[i+1]
		ok := false
		switch {
		case (a.kind == opCmpI || a.kind == opCmpF) && b.kind == opCondBr && b.a == a.dst:
			ok = true // cmp feeding the immediately-following conditional branch
		case a.kind == opBinI && ir.BinOp(a.aux) == ir.IAdd && b.kind == opBr:
			ok = true // induction-variable increment + loop back-edge
		case (a.kind == opLoadF || a.kind == opLoadI) && b.kind == opPrefetch:
			ok = true // access-phase signature: load then prefetch
		case a.kind == opGEP && (b.kind == opLoadF || b.kind == opLoadI || b.kind == opPrefetch) && b.a == a.dst:
			ok = true // address compute feeding the memory op it addresses
		case a.kind == opBinF && b.kind == opBinF && (b.a == a.dst || b.b == a.dst):
			ok = true // float multiply-add (and similar) chains
		}
		if ok {
			fused[i] = true
			consumed[i+1] = true
		}
	}

	// Old-pc -> new-pc map for branch target resolution. Consumed ops map to
	// the following emitted instruction; no branch ever targets one.
	newPC := make([]int32, len(c.ops)+1)
	n := int32(0)
	for i := range c.ops {
		newPC[i] = n
		if !consumed[i] {
			n++
		}
	}
	newPC[len(c.ops)] = n

	emit := func(in binstr, src, src2 ir.Instr) {
		bc.ins = append(bc.ins, in)
		bc.src = append(bc.src, src)
		bc.src2 = append(bc.src2, src2)
	}
	addMoves := func(ms []move) (int32, int32) {
		off := int32(len(bc.moves))
		for _, m := range ms {
			bc.moves = append(bc.moves, bmove{src: nreg[m.src], dst: nreg[m.dst], pl: c.regPlane[m.dst]})
		}
		if len(ms) > bc.maxMoves {
			bc.maxMoves = len(ms)
		}
		return off, int32(len(ms))
	}
	addArm := func(target int, ms []move) int32 {
		moff, mlen := addMoves(ms)
		bc.arms = append(bc.arms, barm{target: newPC[target], moff: moff, mlen: mlen})
		return int32(len(bc.arms) - 1)
	}

	for i := 0; i < len(c.ops); i++ {
		if consumed[i] {
			continue
		}
		op := &c.ops[i]
		if fused[i] {
			nx := &c.ops[i+1]
			switch {
			case op.kind == opCmpI || op.kind == opCmpF:
				k := bCmpBrI
				if op.kind == opCmpF {
					k = bCmpBrF
				}
				arm := addArm(nx.t0, nx.moves0) // then-arm; else-arm is arm+1
				addArm(nx.t1, nx.moves1)
				emit(binstr{op: k, aux: op.aux, dst: nreg[op.dst], a: nreg[op.a], b: nreg[op.b], c: arm}, op.src, nx.src)
			case op.kind == opBinI:
				arm := addArm(nx.t0, nx.moves0)
				emit(binstr{op: bIncBr, dst: nreg[op.dst], a: nreg[op.a], b: nreg[op.b], c: arm}, op.src, nx.src)
			case op.kind == opLoadF || op.kind == opLoadI:
				k := bLoadPreF
				if op.kind == opLoadI {
					k = bLoadPreI
				}
				emit(binstr{op: k, dst: nreg[op.dst], a: nreg[op.a], b: nreg[nx.a]}, op.src, nx.src)
			case op.kind == opGEP && len(op.idx) == 1:
				k, c2 := bGEPPre, int32(0)
				switch nx.kind {
				case opLoadF:
					k, c2 = bGEPLoadF, nreg[nx.dst]
				case opLoadI:
					k, c2 = bGEPLoadI, nreg[nx.dst]
				}
				emit(binstr{op: k, dst: nreg[op.dst], a: nreg[op.a], b: nreg[op.idx[0]], c: c2}, op.src, nx.src)
			case op.kind == opGEP:
				off := int32(len(bc.pool))
				bc.pool = append(bc.pool, nreg[op.idx[0]])
				for k := 1; k < len(op.idx); k++ {
					bc.pool = append(bc.pool, nreg[op.dims[k]], nreg[op.idx[k]])
				}
				k := bGEPNPre
				switch nx.kind {
				case opLoadF:
					k = bGEPNLoadF
				case opLoadI:
					k = bGEPNLoadI
				}
				var d int32
				if nx.kind != opPrefetch {
					d = nreg[nx.dst]
				}
				emit(binstr{op: k, dst: nreg[op.dst], a: nreg[op.a], b: off, c: int32(len(op.idx)), d: d}, op.src, nx.src)
			default: // binF + binF
				aux2 := nx.aux
				other := nx.b
				if nx.a != op.dst {
					// First result is the right operand of the second op.
					aux2 |= binFFRight
					other = nx.a
				}
				emit(binstr{op: bBinFF, aux: op.aux, aux2: aux2, dst: nreg[op.dst],
					a: nreg[op.a], b: nreg[op.b], c: nreg[other], d: nreg[nx.dst]}, op.src, nx.src)
			}
			continue
		}
		switch op.kind {
		case opBinI:
			emit(binstr{op: bBinI, aux: op.aux, dst: nreg[op.dst], a: nreg[op.a], b: nreg[op.b]}, op.src, nil)
		case opBinF:
			emit(binstr{op: bBinF, aux: op.aux, dst: nreg[op.dst], a: nreg[op.a], b: nreg[op.b]}, op.src, nil)
		case opCmpI:
			emit(binstr{op: bCmpI, aux: op.aux, dst: nreg[op.dst], a: nreg[op.a], b: nreg[op.b]}, op.src, nil)
		case opCmpF:
			emit(binstr{op: bCmpF, aux: op.aux, dst: nreg[op.dst], a: nreg[op.a], b: nreg[op.b]}, op.src, nil)
		case opCastIF:
			emit(binstr{op: bCastIF, dst: nreg[op.dst], a: nreg[op.a]}, op.src, nil)
		case opCastFI:
			emit(binstr{op: bCastFI, dst: nreg[op.dst], a: nreg[op.a]}, op.src, nil)
		case opMath:
			emit(binstr{op: bMath, aux: op.aux, dst: nreg[op.dst], a: nreg[op.a]}, op.src, nil)
		case opSelect:
			k := bSelI
			switch c.regPlane[op.dst] {
			case planeF:
				k = bSelF
			case planeP:
				k = bSelP
			}
			emit(binstr{op: k, dst: nreg[op.dst], a: nreg[op.a], b: nreg[op.b], c: nreg[op.c]}, op.src, nil)
		case opLoadF:
			emit(binstr{op: bLoadF, dst: nreg[op.dst], a: nreg[op.a]}, op.src, nil)
		case opLoadI:
			emit(binstr{op: bLoadI, dst: nreg[op.dst], a: nreg[op.a]}, op.src, nil)
		case opStoreF:
			emit(binstr{op: bStoreF, a: nreg[op.a], b: nreg[op.b]}, op.src, nil)
		case opStoreI:
			emit(binstr{op: bStoreI, a: nreg[op.a], b: nreg[op.b]}, op.src, nil)
		case opPrefetch:
			emit(binstr{op: bPrefetch, a: nreg[op.a]}, op.src, nil)
		case opGEP:
			if len(op.idx) == 1 {
				emit(binstr{op: bGEP1, dst: nreg[op.dst], a: nreg[op.a], b: nreg[op.idx[0]]}, op.src, nil)
				break
			}
			off := int32(len(bc.pool))
			bc.pool = append(bc.pool, nreg[op.idx[0]])
			for k := 1; k < len(op.idx); k++ {
				bc.pool = append(bc.pool, nreg[op.dims[k]], nreg[op.idx[k]])
			}
			emit(binstr{op: bGEP, dst: nreg[op.dst], a: nreg[op.a], b: off, c: int32(len(op.idx))}, op.src, nil)
		case opCall:
			cb := bc.callees[calleeIdx[op.callee]]
			moff := int32(len(bc.moves))
			for ai, r := range op.args {
				bc.moves = append(bc.moves, bmove{src: nreg[r], dst: cb.params[ai].reg, pl: cb.params[ai].pl})
			}
			dst, aux := int32(-1), uint8(planeNone)
			if op.dst >= 0 {
				dst, aux = nreg[op.dst], uint8(c.regPlane[op.dst])
			}
			emit(binstr{op: bCall, aux: aux, dst: dst, a: moff, b: int32(len(op.args)), c: calleeIdx[op.callee]}, op.src, nil)
		case opBr:
			arm := addArm(op.t0, op.moves0)
			emit(binstr{op: bBr, a: arm}, op.src, nil)
		case opCondBr:
			arm := addArm(op.t0, op.moves0) // then-arm; else-arm is arm+1
			addArm(op.t1, op.moves1)
			emit(binstr{op: bCondBr, a: nreg[op.a], b: arm}, op.src, nil)
		case opRet:
			a, aux := int32(-1), uint8(planeNone)
			if op.a >= 0 {
				a, aux = nreg[op.a], uint8(c.regPlane[op.a])
			}
			emit(binstr{op: bRet, aux: aux, a: a}, op.src, nil)
		case opNop:
			emit(binstr{op: bNop}, op.src, nil)
		default:
			return nil, fmt.Errorf("interp: cannot lower op kind %d in @%s", op.kind, c.fn.Name)
		}
	}
	if int32(len(bc.ins)) != n {
		return nil, fmt.Errorf("interp: bytecode layout mismatch in @%s (emitted %d, mapped %d)", c.fn.Name, len(bc.ins), n)
	}

	// Back-edge fusion pass: an incBr whose (unconditional) target is a
	// cmpBrI becomes one bIncCmpBr executing all four components. The header
	// cmpBrI stays at its offset for the loop's other predecessors; the
	// rewrite only inlines the continuation the back-edge was going to run
	// anyway, so it is behavior-preserving no matter how control reaches the
	// rewritten pc. Runs after layout so targets are resolved.
	for pc := range bc.ins {
		in := &bc.ins[pc]
		if in.op != bIncBr {
			continue
		}
		t := bc.arms[in.c].target
		h := bc.ins[t]
		if h.op != bCmpBrI {
			continue
		}
		if bc.src3 == nil {
			bc.src3 = make([]ir.Instr, len(bc.ins))
			bc.src4 = make([]ir.Instr, len(bc.ins))
		}
		off := int32(len(bc.pool))
		bc.pool = append(bc.pool, in.c, h.dst, h.a, h.b, h.c)
		bc.ins[pc] = binstr{op: bIncCmpBr, aux: h.aux, dst: in.dst, a: in.a, b: in.b, c: off}
		bc.src3[pc] = bc.src[t]
		bc.src4[pc] = bc.src2[t]
	}
	return bc, nil
}
