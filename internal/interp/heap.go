// Package interp executes IR functions against a simulated heap, reporting
// every memory access to a pluggable tracer (the cache model) and counting
// executed instructions by class (the timing model's input). Functions are
// compiled once into a compact register machine and then run; this keeps
// benchmark-scale executions (tens of millions of instructions) fast.
package interp

import "fmt"

// ElemKind is the element type of a heap segment.
type ElemKind uint8

// Element kinds.
const (
	FloatElem ElemKind = iota
	IntElem
)

// WordSize is the size in bytes of every TaskC array element (both i64 and
// f64), used to map element indices to byte addresses.
const WordSize = 8

// Seg is one contiguous allocation in the simulated address space.
type Seg struct {
	// Base is the byte address of element 0.
	Base int64
	// Elem is the element type of the segment.
	Elem ElemKind
	// F holds the data for FloatElem segments.
	F []float64
	// I holds the data for IntElem segments.
	I []int64
	// Stack marks interpreter-internal allocations (allocas); accesses to
	// stack segments model registers/stack and produce no memory events.
	Stack bool
	name  string
}

// Len returns the number of elements in the segment.
func (s *Seg) Len() int {
	if s.Elem == FloatElem {
		return len(s.F)
	}
	return len(s.I)
}

// Name returns the allocation name given to Alloc*.
func (s *Seg) Name() string { return s.name }

// Addr returns the byte address of element i.
func (s *Seg) Addr(i int64) int64 { return s.Base + i*WordSize }

// Heap is a simulated address space. Allocations are laid out contiguously
// with a guard gap between them so distinct arrays never share a cache line.
type Heap struct {
	next int64
	segs []*Seg
}

// segGap separates allocations (in bytes) so that prefetching past the end of
// one array cannot pull in another array's lines.
const segGap = 4096

// NewHeap returns an empty heap. Addresses start away from zero so that a
// zero address is never valid.
func NewHeap() *Heap { return &Heap{next: 1 << 20} }

// AllocFloat allocates a zeroed float array of n elements.
func (h *Heap) AllocFloat(name string, n int) *Seg {
	s := &Seg{Base: h.next, Elem: FloatElem, F: make([]float64, n), name: name}
	h.grow(s, n)
	return s
}

// AllocInt allocates a zeroed int array of n elements.
func (h *Heap) AllocInt(name string, n int) *Seg {
	s := &Seg{Base: h.next, Elem: IntElem, I: make([]int64, n), name: name}
	h.grow(s, n)
	return s
}

func (h *Heap) grow(s *Seg, n int) {
	h.segs = append(h.segs, s)
	h.next += int64(n)*WordSize + segGap
	// Keep every base cache-line aligned.
	const line = 64
	if rem := h.next % line; rem != 0 {
		h.next += line - rem
	}
}

// Segs returns all allocations in allocation order.
func (h *Heap) Segs() []*Seg { return h.segs }

// Footprint returns the total allocated bytes (excluding guard gaps).
func (h *Heap) Footprint() int64 {
	var total int64
	for _, s := range h.segs {
		total += int64(s.Len()) * WordSize
	}
	return total
}

// ptr is a runtime pointer: a segment plus an element offset. Offsets may be
// transiently out of bounds (address arithmetic); dereferencing checks.
type ptr struct {
	seg *Seg
	off int64
}

func (p ptr) addr() int64 { return p.seg.Addr(p.off) }

func (p ptr) inBounds() bool { return p.seg != nil && p.off >= 0 && p.off < int64(p.seg.Len()) }

// RuntimeError is an execution fault (out-of-bounds access, division by
// zero, nil segment).
type RuntimeError struct {
	Msg string
}

// Error implements error.
func (e *RuntimeError) Error() string { return "interp: " + e.Msg }

func rtErrf(format string, args ...any) *RuntimeError {
	return &RuntimeError{Msg: fmt.Sprintf(format, args...)}
}
