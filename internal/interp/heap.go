// Package interp executes IR functions against a simulated heap, reporting
// every memory access to a pluggable tracer (the cache model) and counting
// executed instructions by class (the timing model's input). Functions are
// compiled once into a compact register machine and then run; this keeps
// benchmark-scale executions (tens of millions of instructions) fast.
package interp

import "dae/internal/fault"

// ElemKind is the element type of a heap segment.
type ElemKind uint8

// Element kinds.
const (
	FloatElem ElemKind = iota
	IntElem
)

// WordSize is the size in bytes of every TaskC array element (both i64 and
// f64), used to map element indices to byte addresses.
const WordSize = 8

// Seg is one contiguous allocation in the simulated address space.
type Seg struct {
	// Base is the byte address of element 0.
	Base int64
	// Elem is the element type of the segment.
	Elem ElemKind
	// F holds the data for FloatElem segments.
	F []float64
	// I holds the data for IntElem segments.
	I []int64
	// Stack marks interpreter-internal allocations (allocas); accesses to
	// stack segments model registers/stack and produce no memory events.
	Stack bool
	name  string
}

// Len returns the number of elements in the segment.
func (s *Seg) Len() int {
	if s.Elem == FloatElem {
		return len(s.F)
	}
	return len(s.I)
}

// Name returns the allocation name given to Alloc*.
func (s *Seg) Name() string { return s.name }

// Addr returns the byte address of element i.
func (s *Seg) Addr(i int64) int64 { return s.Base + i*WordSize }

// Heap is a simulated address space. Allocations are laid out contiguously
// with a guard gap between them so distinct arrays never share a cache line.
type Heap struct {
	next int64
	segs []*Seg
	// budget, when positive, caps the total allocated bytes (excluding guard
	// gaps); allocations beyond it fail with fault.ErrHeapBudget.
	budget int64
}

// segGap separates allocations (in bytes) so that prefetching past the end of
// one array cannot pull in another array's lines.
const segGap = 4096

// NewHeap returns an empty heap. Addresses start away from zero so that a
// zero address is never valid.
func NewHeap() *Heap { return &Heap{next: 1 << 20} }

// SetBudget caps the heap's total allocated bytes (excluding guard gaps).
// Allocations that would exceed the cap fail with a typed
// fault.ErrHeapBudget error from TryAllocFloat/TryAllocInt, or panic with
// the same *fault.Error value from the legacy AllocFloat/AllocInt — the
// pipeline boundaries recover that panic into the run's error. n <= 0
// removes the cap.
func (h *Heap) SetBudget(n int64) { h.budget = n }

// Budget returns the heap's byte cap (0 when unlimited).
func (h *Heap) Budget() int64 { return h.budget }

// AllocFloat allocates a zeroed float array of n elements. With a budget set
// it panics with a *fault.Error when the cap is exceeded; use TryAllocFloat
// to handle the fault as a value.
func (h *Heap) AllocFloat(name string, n int) *Seg {
	s, err := h.TryAllocFloat(name, n)
	if err != nil {
		panic(err)
	}
	return s
}

// AllocInt allocates a zeroed int array of n elements. With a budget set it
// panics with a *fault.Error when the cap is exceeded; use TryAllocInt to
// handle the fault as a value.
func (h *Heap) AllocInt(name string, n int) *Seg {
	s, err := h.TryAllocInt(name, n)
	if err != nil {
		panic(err)
	}
	return s
}

// TryAllocFloat allocates a zeroed float array of n elements, failing with
// fault.ErrHeapBudget when the allocation would exceed the byte budget.
func (h *Heap) TryAllocFloat(name string, n int) (*Seg, error) {
	if err := h.charge(name, n); err != nil {
		return nil, err
	}
	s := &Seg{Base: h.next, Elem: FloatElem, F: make([]float64, n), name: name}
	h.grow(s, n)
	return s, nil
}

// TryAllocInt allocates a zeroed int array of n elements, failing with
// fault.ErrHeapBudget when the allocation would exceed the byte budget.
func (h *Heap) TryAllocInt(name string, n int) (*Seg, error) {
	if err := h.charge(name, n); err != nil {
		return nil, err
	}
	s := &Seg{Base: h.next, Elem: IntElem, I: make([]int64, n), name: name}
	h.grow(s, n)
	return s, nil
}

// charge enforces the byte budget for an n-element allocation.
func (h *Heap) charge(name string, n int) error {
	if h.budget <= 0 {
		return nil
	}
	want := int64(n) * WordSize
	if used := h.Footprint(); used+want > h.budget {
		return fault.New(fault.KindHeapBudget,
			"interp: alloc %q of %d bytes exceeds heap budget (%d of %d bytes in use)",
			name, want, used, h.budget)
	}
	return nil
}

func (h *Heap) grow(s *Seg, n int) {
	h.segs = append(h.segs, s)
	h.next += int64(n)*WordSize + segGap
	// Keep every base cache-line aligned.
	const line = 64
	if rem := h.next % line; rem != 0 {
		h.next += line - rem
	}
}

// Segs returns all allocations in allocation order.
func (h *Heap) Segs() []*Seg { return h.segs }

// Footprint returns the total allocated bytes (excluding guard gaps).
func (h *Heap) Footprint() int64 {
	var total int64
	for _, s := range h.segs {
		total += int64(s.Len()) * WordSize
	}
	return total
}

// ptr is a runtime pointer: a segment plus an element offset. Offsets may be
// transiently out of bounds (address arithmetic); dereferencing checks.
type ptr struct {
	seg *Seg
	off int64
}

func (p ptr) addr() int64 { return p.seg.Addr(p.off) }

func (p ptr) inBounds() bool { return p.seg != nil && p.off >= 0 && p.off < int64(p.seg.Len()) }
