package interp

// CloneArgs deep-copies the array arguments of a task invocation into the
// given heap, preserving scalar arguments as-is. Repeated references to the
// same segment map to one clone. Profiling runs use this to execute
// destructive phases (the execute version mutates its arrays) without
// touching live benchmark data; clones keep the original alignment, so the
// cache behaviour is equivalent.
func CloneArgs(h *Heap, args []Value) []Value {
	clones := make(map[*Seg]*Seg)
	out := make([]Value, len(args))
	for i, a := range args {
		if a.k != ptrVal || a.v.p.seg == nil {
			out[i] = a
			continue
		}
		src := a.v.p.seg
		dst, ok := clones[src]
		if !ok {
			if src.Elem == FloatElem {
				dst = h.AllocFloat(src.name+".clone", len(src.F))
				copy(dst.F, src.F)
			} else {
				dst = h.AllocInt(src.name+".clone", len(src.I))
				copy(dst.I, src.I)
			}
			clones[src] = dst
		}
		out[i] = Value{v: val{p: ptr{seg: dst, off: a.v.p.off}}, k: ptrVal}
	}
	return out
}
